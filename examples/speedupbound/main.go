// Speedupbound: explores the paper's two quantitative results empirically.
//
//  1. Example 2 — for constrained deadlines, no capacity augmentation bound
//     exists: the program builds the n-task construction (C=1, D=1, T=n),
//     whose utilization stays ≤ 1 while the processors required grow as n.
//  2. Theorem 1 — FEDCONS has speedup bound 3 − 1/m: the program probes the
//     bound's conservatism by generating random systems, finding for each
//     the smallest platform m* FEDCONS needs, and comparing against the
//     necessary-condition lower bound m⁰ on what an optimal scheduler
//     needs. The observed ratio m*/m⁰ stays far below the platform
//     inflation Theorem 1 would permit.
//
// Run with:
//
//	go run ./examples/speedupbound
package main

import (
	"fmt"
	"math/rand"

	"fedsched/internal/baseline"
	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/task"
)

func main() {
	example2()
	theorem1Probe()
}

func example2() {
	fmt.Println("== Example 2: capacity augmentation is meaningless for constrained deadlines ==")
	fmt.Printf("%4s %8s %8s %14s\n", "n", "U_sum", "Σδ", "min m (FEDCONS)")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		var sys task.System
		for i := 0; i < n; i++ {
			sys = append(sys, task.MustNew(fmt.Sprintf("e%d", i), dag.Singleton(1), 1, int64(n)))
		}
		minM := 0
		for m := 1; m <= n+1; m++ {
			if core.Schedulable(sys, m, core.Options{}) {
				minM = m
				break
			}
		}
		fmt.Printf("%4d %8.3f %8.1f %14d\n", n, sys.USum(), sys.DensitySum(), minM)
	}
	fmt.Println("U_sum ≤ 1 throughout, yet required processors grow linearly in n:")
	fmt.Println("any fixed-speed augmentation of a fixed platform eventually fails → speedup bounds, not")
	fmt.Println("capacity augmentation, are the right metric beyond implicit deadlines (Section II).")
	fmt.Println()
}

func theorem1Probe() {
	fmt.Println("== Theorem 1 probe: how conservative is the 3 − 1/m bound? ==")
	r := rand.New(rand.NewSource(2015))
	const trials = 300
	worst := 1.0
	var sumRatio float64
	counted := 0
	for i := 0; i < trials; i++ {
		p := gen.DefaultParams(6, 2+r.Float64()*4)
		p.MinVerts, p.MaxVerts = 10, 30
		sys, err := gen.System(r, p)
		if err != nil {
			continue
		}
		m0 := minWhere(64, func(m int) bool { return baseline.Necessary(sys, m) })
		mStar := minWhere(64, func(m int) bool { return core.Schedulable(sys, m, core.Options{}) })
		if m0 == 0 || mStar == 0 {
			continue
		}
		ratio := float64(mStar) / float64(m0)
		sumRatio += ratio
		counted++
		if ratio > worst {
			worst = ratio
		}
	}
	fmt.Printf("random systems probed: %d\n", counted)
	fmt.Printf("processors needed by FEDCONS vs necessary-condition lower bound:\n")
	fmt.Printf("  mean ratio m*/m0 = %.3f, worst observed = %.3f\n", sumRatio/float64(counted), worst)
	fmt.Println("Theorem 1 permits FEDCONS to need (3 − 1/m)× the *speed* of the optimal scheduler's")
	fmt.Println("platform; the measured platform inflation is far smaller — the worst-case bound is a")
	fmt.Println("conservative characterization, exactly as the paper's schedulability experiments report.")
}

func minWhere(cap int, ok func(int) bool) int {
	for m := 1; m <= cap; m++ {
		if ok(m) {
			return m
		}
	}
	return 0
}

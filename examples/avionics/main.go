// Avionics: a constrained-deadline workload in the style the paper's
// introduction motivates — multi-threaded sensing/control computations whose
// internal parallelism is naturally expressed as DAGs, with deadlines
// shorter than periods (the output must be ready early in the frame).
//
// The example builds a flight-control task set:
//
//   - sensor-fusion: a wide fork-join fusing IMU/GPS/vision at 50 Hz frames,
//     deadline at 40% of the frame → high-density, needs federation;
//   - mpc-control: a layered model-predictive-control DAG, tight deadline →
//     high-density;
//   - telemetry, health-monitor, logger: light sequential housekeeping tasks
//     that share the leftover processors under partitioned EDF.
//
// It then shows the full workflow: schedulability analysis, what-if sizing
// (the minimum platform that fits), deadline-tightening sensitivity, and a
// long simulation with jittered arrivals and early completions.
//
// Run with:
//
//	go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/sim"
	"fedsched/internal/task"
)

// Time units: microseconds. Frame of 20 ms = 20_000 µs.
const frame = 20_000

func sensorFusion() *task.DAGTask {
	b := dag.NewBuilder(12)
	acquire := b.AddVertex("acquire", 500)
	var feats []int
	for _, sensor := range []string{"imu", "gps", "vis0", "vis1", "vis2", "lidar0", "lidar1", "radar"} {
		v := b.AddVertex("feat-"+sensor, 3_000)
		b.AddEdge(acquire, v)
		feats = append(feats, v)
	}
	assoc := b.AddVertex("associate", 1_500)
	for _, f := range feats {
		b.AddEdge(f, assoc)
	}
	est := b.AddVertex("estimate", 1_000)
	b.AddEdge(assoc, est)
	out := b.AddVertex("publish", 500)
	b.AddEdge(est, out)
	g := b.MustBuild()
	// vol = 27.5 ms > D = 8 ms: needs parallel execution (high-density).
	return task.MustNew("sensor-fusion", g, 8_000, frame)
}

func mpcControl() *task.DAGTask {
	b := dag.NewBuilder(10)
	lin := b.AddVertex("linearize", 800)
	var horizon []int
	for i := 0; i < 4; i++ {
		v := b.AddVertex(fmt.Sprintf("qp-block%d", i), 2_500)
		b.AddEdge(lin, v)
		horizon = append(horizon, v)
	}
	var reduce []int
	for i := 0; i < 2; i++ {
		v := b.AddVertex(fmt.Sprintf("reduce%d", i), 1_200)
		b.AddEdge(horizon[2*i], v)
		b.AddEdge(horizon[2*i+1], v)
		reduce = append(reduce, v)
	}
	solve := b.AddVertex("solve", 1_500)
	b.AddEdge(reduce[0], solve)
	b.AddEdge(reduce[1], solve)
	act := b.AddVertex("actuate", 400)
	b.AddEdge(solve, act)
	g := b.MustBuild()
	// vol = 15.1 ms, D = 7 ms: high-density.
	return task.MustNew("mpc-control", g, 7_000, frame/2)
}

func housekeeping() task.System {
	return task.System{
		task.MustNew("telemetry", dag.Chain(900, 600), 15_000, 40_000),
		task.MustNew("health-monitor", dag.Singleton(2_000), 10_000, 50_000),
		task.MustNew("logger", dag.Chain(400, 400, 400), 30_000, 100_000),
	}
}

func main() {
	sys := task.System{sensorFusion(), mpcControl()}
	sys = append(sys, housekeeping()...)

	fmt.Println("flight-control task set:")
	for _, tk := range sys {
		fmt.Printf("  %-15s |V|=%-3d vol=%-6dµs len=%-6dµs D=%-6dµs T=%-6dµs δ=%.2f %s\n",
			tk.Name, tk.G.N(), tk.Volume(), tk.Len(), tk.D, tk.T, tk.Density(), densityTag(tk))
	}
	fmt.Printf("U_sum = %.2f, Σδ = %.2f\n\n", sys.USum(), sys.DensitySum())

	// What-if sizing: smallest platform FEDCONS accepts.
	minM := 0
	for m := 1; m <= 32; m++ {
		if core.Schedulable(sys, m, core.Options{}) {
			minM = m
			break
		}
	}
	if minM == 0 {
		log.Fatal("not schedulable on any platform up to 32 processors")
	}
	fmt.Printf("minimum platform: m = %d processors\n", minM)

	alloc, err := core.Schedule(sys, minM, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Verify(sys, minM, alloc); err != nil {
		log.Fatal(err)
	}
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		fmt.Printf("  %-15s → %d dedicated procs, template makespan %dµs (deadline %dµs)\n",
			tk.Name, len(h.Procs), h.Template.Makespan, tk.D)
	}
	for k, p := range alloc.SharedProcs {
		fmt.Printf("  shared proc %d:", p)
		for _, i := range alloc.TasksOnShared(k) {
			fmt.Printf(" %s", sys[i].Name)
		}
		fmt.Println()
	}

	// Sensitivity: tighten the fusion deadline until the platform no longer
	// suffices — the constrained-deadline effect the paper analyzes.
	fmt.Printf("\ndeadline sensitivity (platform fixed at m=%d):\n", minM)
	for _, d := range []task.Time{8_000, 7_000, 6_000, 5_000, 4_500, 4_200} {
		probe := sys.Clone()
		probe[0] = task.MustNew("sensor-fusion", probe[0].G, d, probe[0].T)
		ok := core.Schedulable(probe, minM, core.Options{})
		fmt.Printf("  fusion D=%5dµs → %v\n", d, verdict(ok))
	}

	// Long simulation on the chosen platform.
	rep, err := sim.Federated(sys, alloc, sim.Config{
		Horizon:  5_000_000, // 5 s of flight
		Arrivals: sim.SporadicRandom,
		Exec:     sim.UniformExec,
		Seed:     2015,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-second simulation: %d dag-jobs, %d deadline misses\n",
		rep.TotalReleased(), rep.TotalMissed())
	for _, st := range rep.PerTask {
		fmt.Printf("  %-15s released=%-5d maxResp=%-6dµs meanResp=%.0fµs headroom=%dµs\n",
			st.Name, st.Released, st.MaxResponse, st.MeanResponse(), -st.MaxLateness)
	}
}

func densityTag(tk *task.DAGTask) string {
	if tk.HighDensity() {
		return "[high-density: dedicated processors]"
	}
	return "[low-density: shared processor]"
}

func verdict(ok bool) string {
	if ok {
		return "schedulable"
	}
	return "UNSCHEDULABLE"
}

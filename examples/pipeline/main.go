// Pipeline: a multi-stage video-analytics workload — the "complex
// multi-threaded computations naturally expressed as directed acyclic
// graphs" of the paper's introduction — taken through the full fedsched
// workflow: model → analysis → allocation artifact → run-time traces.
//
// The system processes two camera streams. Each frame spawns a layered DAG
// (decode → tile-parallel detect → track → encode overlay) with a deadline
// at 60% of the frame period (results must be ready before the next
// pipeline stage downstream). A diagnostics task and a stats uploader share
// whatever processors remain.
//
// The example shows, beyond quickstart/avionics:
//
//   - exact antichain width as the parallelism ceiling per task;
//   - the allocation as a serializable artifact (what a deployment ships);
//   - execution traces audited by the independent trace checkers and
//     rendered as a Gantt chart;
//   - per-processor utilization extracted from the traces; and
//   - the EDF vs deadline-monotonic shared-processor ablation.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/partition"
	"fedsched/internal/sim"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// Time unit: microseconds. 30 fps ⇒ 33.3 ms frames.
const framePeriod = 33_300

// cameraDAG builds one stream's per-frame DAG: decode feeds a grid of
// tile-level detectors, detections merge into a tracker, and an encoder
// emits the overlay.
func cameraDAG(tiles int, detectCost task.Time) *dag.DAG {
	b := dag.NewBuilder(tiles + 3)
	decode := b.AddVertex("decode", 2_500)
	track := tiles + 1 // index after the detect vertices
	for i := 0; i < tiles; i++ {
		v := b.AddVertex(fmt.Sprintf("detect-%d", i), detectCost)
		b.AddEdge(decode, v)
		b.AddEdge(v, track)
	}
	b.AddVertex("track", 3_000)
	enc := b.AddVertex("encode", 1_500)
	b.AddEdge(track, enc)
	return b.MustBuild()
}

func main() {
	camA := task.MustNew("cam-A", cameraDAG(6, 4_000), 20_000, framePeriod)
	camB := task.MustNew("cam-B", cameraDAG(4, 5_000), 20_000, framePeriod)
	diag := task.MustNew("diagnostics", dag.Chain(1_200, 800), 25_000, 100_000)
	stats := task.MustNew("stats-upload", dag.Singleton(2_000), 50_000, 200_000)
	sys := task.System{camA, camB, diag, stats}

	fmt.Println("video pipeline task set:")
	for _, tk := range sys {
		fmt.Printf("  %-14s vol=%-6d len=%-6d width=%d δ=%.2f u=%.2f\n",
			tk.Name, tk.Volume(), tk.Len(), tk.G.Width(), tk.Density(), tk.Utilization())
	}

	const m = 5
	alloc, err := core.Schedule(sys, m, core.Options{})
	if err != nil {
		log.Fatalf("unschedulable on m=%d: %v", m, err)
	}
	if err := core.Verify(sys, m, alloc); err != nil {
		log.Fatal(err)
	}
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		fmt.Printf("  %-14s → %d dedicated procs (width ceiling %d), makespan %d ≤ D=%d\n",
			tk.Name, len(h.Procs), tk.G.Width(), h.Template.Makespan, tk.D)
	}

	// The allocation is a deployable artifact: serialize, then reload with
	// the auditor in the loop (a stale or tampered file is rejected).
	blob, err := core.EncodeAllocation(alloc)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.DecodeAllocation(blob, sys, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallocation artifact: %d bytes of JSON, reloads and re-verifies cleanly\n", len(blob))

	// Simulate one second of frames with jitter and early completions,
	// collecting full execution traces.
	cfg := sim.Config{
		Horizon:  1_000_000,
		Arrivals: sim.SporadicRandom,
		Exec:     sim.UniformExec,
		Seed:     33,
	}
	rep, pt, err := sim.FederatedTraced(sys, reloaded, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 s simulation: %d dag-jobs, %d misses\n", rep.TotalReleased(), rep.TotalMissed())

	// Audit the traces with the independent checkers.
	for gi, tr := range pt.High {
		if err := tr.Check(); err != nil {
			log.Fatalf("trace audit: %v", err)
		}
		h := reloaded.High[gi]
		var cons []trace.Precedence
		for _, e := range sys[h.TaskIndex].G.Edges() {
			cons = append(cons, trace.Precedence{Task: h.TaskIndex, From: e[0], To: e[1]})
		}
		if err := tr.CheckPrecedence(cons); err != nil {
			log.Fatalf("precedence audit: %v", err)
		}
	}
	for _, tr := range pt.Shared {
		if err := tr.Check(); err != nil {
			log.Fatalf("trace audit: %v", err)
		}
		if err := tr.CheckEDF(); err != nil {
			log.Fatalf("EDF audit: %v", err)
		}
	}
	fmt.Println("trace audit: platform rules, DAG precedence and the EDF rule all hold")

	// Per-processor utilization over the first 100 ms, from the traces.
	fmt.Println("\nprocessor utilization (first 100 ms):")
	util := make([]float64, m)
	for _, tr := range append(append([]*trace.Trace(nil), pt.High...), pt.Shared...) {
		for p, u := range tr.Utilization(0, 100_000) {
			util[p] += u
		}
	}
	for p, u := range util {
		fmt.Printf("  P%d %5.1f%% %s\n", p, u*100, bar(u))
	}

	// A glimpse of the run-time schedule: the first frame of cam-A.
	fmt.Println("\ncam-A dedicated group, first frame (1 char = 250 µs):")
	fmt.Print(pt.High[0].Gantt(0, 20_000, 250))

	// Ablation: what if the shared processor ran deadline-monotonic
	// fixed-priority instead of EDF?
	dmOK := core.Schedulable(sys, m, core.Options{Partition: partition.Options{Test: partition.DMRta}})
	fmt.Printf("\nshared-processor ablation: EDF+DBF* schedulable=true, DM+RTA schedulable=%v\n", dmOK)
}

func bar(u float64) string {
	n := int(u * 30)
	if n > 30 {
		n = 30
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// Quickstart: build the paper's Example 1 DAG task, inspect its quantities,
// assemble a small mixed task system, run Algorithm FEDCONS on it, and
// simulate the resulting allocation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/sim"
	"fedsched/internal/task"
)

func main() {
	// --- 1. A DAG task, by hand: the paper's Example 1 (Figure 1). ---
	tau1 := task.MustNew("tau1", dag.Example1(), dag.Example1D, dag.Example1T)
	fmt.Println("Example 1 task:", tau1)
	fmt.Printf("  vol=%d len=%d density=%s utilization=%s → %s\n",
		tau1.Volume(), tau1.Len(), tau1.DensityRat().RatString(),
		tau1.UtilizationRat().RatString(), kind(tau1))

	// --- 2. Build a second, high-density task with the Builder API. ---
	b := dag.NewBuilder(6)
	src := b.AddVertex("sense", 2)
	l := b.AddVertex("left", 6)
	r := b.AddVertex("right", 6)
	m := b.AddVertex("mid", 6)
	fuse := b.AddVertex("fuse", 2)
	b.AddEdge(src, l)
	b.AddEdge(src, r)
	b.AddEdge(src, m)
	b.AddEdge(l, fuse)
	b.AddEdge(r, fuse)
	b.AddEdge(m, fuse)
	g := b.MustBuild()
	// vol = 22, len = 10; D = 14 < vol makes it high-density (δ = 22/14).
	tau2 := task.MustNew("tau2", g, 14, 20)
	fmt.Println("hand-built task:", tau2, "→", kind(tau2))

	// --- 3. A couple of light sequential tasks. ---
	tau3 := task.MustNew("tau3", dag.Singleton(3), 12, 30)
	tau4 := task.MustNew("tau4", dag.Chain(2, 2), 18, 25)

	sys := task.System{tau1, tau2, tau3, tau4}
	const procs = 4

	// --- 4. Run FEDCONS. ---
	alloc, err := core.Schedule(sys, procs, core.Options{})
	if err != nil {
		log.Fatalf("unschedulable: %v", err)
	}
	if err := core.Verify(sys, procs, alloc); err != nil {
		log.Fatalf("allocation failed audit: %v", err)
	}
	ded, shared := alloc.ProcessorsUsed()
	fmt.Printf("\nFEDCONS verdict: schedulable on %d processors (%d dedicated, %d shared)\n",
		procs, ded, shared)
	for _, h := range alloc.High {
		fmt.Printf("  %s gets procs %v; template makespan %d ≤ D=%d\n",
			sys[h.TaskIndex].Name, h.Procs, h.Template.Makespan, sys[h.TaskIndex].D)
	}
	for k, p := range alloc.SharedProcs {
		fmt.Printf("  shared proc %d runs EDF over:", p)
		for _, i := range alloc.TasksOnShared(k) {
			fmt.Printf(" %s", sys[i].Name)
		}
		fmt.Println()
	}

	// --- 5. Simulate 100k ticks of sporadic arrivals with early completions. ---
	rep, err := sim.Federated(sys, alloc, sim.Config{
		Horizon:  100_000,
		Arrivals: sim.SporadicRandom,
		Exec:     sim.UniformExec,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %d dag-jobs: %d deadline misses\n", rep.TotalReleased(), rep.TotalMissed())
	for _, st := range rep.PerTask {
		fmt.Printf("  %-5s released=%-5d maxResp=%-5d meanResp=%.1f\n",
			st.Name, st.Released, st.MaxResponse, st.MeanResponse())
	}
}

func kind(tk *task.DAGTask) string {
	if tk.HighDensity() {
		return "high-density (gets dedicated processors)"
	}
	return "low-density (partitioned onto shared processors)"
}

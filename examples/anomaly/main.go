// Anomaly: reproduces Graham's timing anomaly and demonstrates why FEDCONS
// replays the template schedule σ_i as a lookup table at run time instead of
// re-running List Scheduling (paper footnote 2).
//
// The program searches random DAGs for an instance where shrinking one job's
// execution time by a single tick makes the LS makespan *longer*, then turns
// the instance into a constrained-deadline task whose deadline equals the
// nominal makespan and contrasts the two run-time policies:
//
//   - template replay: jobs held to their tabulated start times; finishing
//     early only creates idle time, so the dag-job always meets its deadline;
//   - naive online re-run: the work-conserving LS dispatcher reacts to the
//     early completion and produces the anomalous (longer) schedule — a
//     deadline miss.
//
// Run with:
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedsched/internal/listsched"
)

func main() {
	an := listsched.FindAnomaly(rand.New(rand.NewSource(1)), 50_000, nil)
	if an == nil {
		log.Fatal("no anomaly found in search budget (unexpected)")
	}

	fmt.Printf("anomaly instance: %d jobs on m=%d processors\n", an.Original.N(), an.M)
	fmt.Printf("reduced job: vertex %d, WCET %d → %d\n\n",
		an.Vertex, an.Original.WCET(an.Vertex), an.Reduced.WCET(an.Vertex))

	tmpl, err := listsched.Run(an.Original, an.M, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("template schedule σ (all jobs at WCET):")
	printSchedule(tmpl)
	deadline := tmpl.Makespan
	fmt.Printf("→ makespan %d; take the dag-job deadline D = %d\n\n", tmpl.Makespan, deadline)

	rerun, err := listsched.Run(an.Reduced, an.M, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive online LS re-run after vertex %d finishes %d tick(s) early:\n",
		an.Vertex, an.Original.WCET(an.Vertex)-an.Reduced.WCET(an.Vertex))
	printSchedule(rerun)
	fmt.Printf("→ makespan %d > D = %d: DEADLINE MISS (Graham's anomaly: less work, later finish)\n\n",
		rerun.Makespan, deadline)

	replayFinish := int64(0)
	for v := 0; v < an.Original.N(); v++ {
		end := tmpl.Intervals[v].Start + an.Reduced.WCET(v)
		if end > replayFinish {
			replayFinish = end
		}
	}
	fmt.Printf("template replay of the same execution (jobs pinned to tabulated starts):\n")
	fmt.Printf("→ worst finish %d ≤ D = %d: deadline met; the early completion only idles a processor\n",
		replayFinish, deadline)
	fmt.Println("\nThis is why MINPROCS stores σ_i and the run-time dispatcher uses it as a lookup table.")
}

func printSchedule(s *listsched.Schedule) {
	for p, ivs := range s.ByProcessor() {
		fmt.Printf("  P%d:", p)
		for _, iv := range ivs {
			fmt.Printf(" [v%d %d–%d]", iv.Job, iv.Start, iv.End)
		}
		fmt.Println()
	}
}

package core

import (
	"errors"
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

func lowTask(name string, c, d, t Time) *task.DAGTask {
	return task.MustNew(name, dag.Singleton(c), d, t)
}

// highTask builds a high-density parallel task: k independent jobs of WCET w
// with deadline d and period t; δ = k·w/min(d,t).
func highTask(name string, k int, w, d, t Time) *task.DAGTask {
	wcets := make([]Time, k)
	for i := range wcets {
		wcets[i] = w
	}
	return task.MustNew(name, dag.Independent(wcets...), d, t)
}

func TestMinprocsSingleProcessorSuffices(t *testing.T) {
	// δ = 1 with vol ≤ D: one processor is enough.
	tk := task.MustNew("x", dag.Singleton(10), 10, 10)
	mu, tmpl, ok := Minprocs(tk, 4, nil)
	if !ok || mu != 1 {
		t.Fatalf("Minprocs = %d,%v, want 1,true", mu, ok)
	}
	if tmpl.Makespan != 10 {
		t.Errorf("template makespan = %d, want 10", tmpl.Makespan)
	}
}

func TestMinprocsParallelTask(t *testing.T) {
	// 4 independent jobs of 5, D = 10: needs exactly 2 processors.
	tk := highTask("p", 4, 5, 10, 10)
	mu, tmpl, ok := Minprocs(tk, 8, nil)
	if !ok || mu != 2 {
		t.Fatalf("Minprocs = %d,%v, want 2,true", mu, ok)
	}
	if tmpl.Makespan > 10 {
		t.Errorf("template makespan = %d > D", tmpl.Makespan)
	}
}

func TestMinprocsStartsAtCeilDensity(t *testing.T) {
	// vol = 20, D = 5 ⇒ δ = 4: scan starts at 4, and with 4 independent
	// jobs of 5 the answer is exactly 4.
	tk := highTask("q", 4, 5, 5, 5)
	mu, _, ok := Minprocs(tk, 8, nil)
	if !ok || mu != 4 {
		t.Fatalf("Minprocs = %d,%v, want 4,true", mu, ok)
	}
}

func TestMinprocsInfeasibleCriticalPath(t *testing.T) {
	// len = 12 > D = 10: no processor count helps (paper: return ∞).
	tk := task.MustNew("c", dag.Chain(6, 6), 10, 20)
	if _, _, ok := Minprocs(tk, 64, nil); ok {
		t.Fatal("Minprocs accepted len > D")
	}
}

func TestMinprocsExhaustsBudget(t *testing.T) {
	// Needs 4 processors but only 3 remain: ∞.
	tk := highTask("q", 4, 5, 5, 5)
	if _, _, ok := Minprocs(tk, 3, nil); ok {
		t.Fatal("Minprocs exceeded the remaining-processor budget")
	}
}

func TestMinprocsAnalyticNeverSmallerCapacity(t *testing.T) {
	// Analytic sizing must be ≥ the LS-scan answer (it's derived from an
	// upper bound on LS makespan) and always meet the deadline.
	r := rand.New(rand.NewSource(31))
	compared := 0
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(15)
		b := dag.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddJob(Time(1 + r.Intn(8)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.2 {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.MustBuild()
		// Deadline strictly between len and vol makes the task high-density
		// with real parallel slack.
		if g.Volume() <= g.LongestChain()+1 {
			continue
		}
		d := g.LongestChain() + 1 + Time(r.Intn(int(g.Volume()-g.LongestChain())))
		tk := task.MustNew("r", g, d, d)
		muScan, _, okScan := Minprocs(tk, 64, nil)
		muAna, tmplAna, okAna := MinprocsAnalytic(tk, 64, nil)
		if !okScan {
			t.Fatalf("scan failed with huge budget for feasible task %s", tk)
		}
		if !okAna {
			t.Fatalf("analytic failed with huge budget for %s", tk)
		}
		compared++
		if muAna < muScan {
			t.Fatalf("analytic %d < scan %d for %s", muAna, muScan, tk)
		}
		if tmplAna.Makespan > tk.D {
			t.Fatalf("analytic template misses deadline for %s", tk)
		}
	}
	if compared == 0 {
		t.Fatal("test vacuous")
	}
}

func TestScheduleLowDensityOnly(t *testing.T) {
	sys := task.System{
		task.MustNew("e1", dag.Example1(), dag.Example1D, dag.Example1T),
		lowTask("a", 2, 8, 16),
		lowTask("b", 3, 12, 24),
	}
	alloc, err := Schedule(sys, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.High) != 0 {
		t.Errorf("no high-density tasks expected, got %d", len(alloc.High))
	}
	if len(alloc.SharedProcs) != 2 {
		t.Errorf("all processors should be shared, got %d", len(alloc.SharedProcs))
	}
	if err := Verify(sys, 2, alloc); err != nil {
		t.Error(err)
	}
}

func TestScheduleMixedSystem(t *testing.T) {
	sys := task.System{
		highTask("h1", 4, 5, 10, 10), // needs 2 processors
		lowTask("l1", 2, 8, 16),
		highTask("h2", 3, 4, 6, 12), // vol=12, D=6: δ=2, needs 2 (LS: 4,4 | 4)
		lowTask("l2", 3, 12, 24),
	}
	alloc, err := Schedule(sys, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.High) != 2 {
		t.Fatalf("want 2 high assignments, got %d", len(alloc.High))
	}
	if err := Verify(sys, 6, alloc); err != nil {
		t.Fatal(err)
	}
	ded, shared := alloc.ProcessorsUsed()
	if ded+shared != 6 {
		t.Errorf("processors: %d dedicated + %d shared != 6", ded, shared)
	}
	// Order preserved and indices correct.
	if alloc.High[0].TaskIndex != 0 || alloc.High[1].TaskIndex != 2 {
		t.Errorf("high task order: %d, %d", alloc.High[0].TaskIndex, alloc.High[1].TaskIndex)
	}
	if len(alloc.LowIndices) != 2 || alloc.LowIndices[0] != 1 || alloc.LowIndices[1] != 3 {
		t.Errorf("low indices = %v", alloc.LowIndices)
	}
}

func TestScheduleFailsWhenHighTasksExhaustPlatform(t *testing.T) {
	sys := task.System{
		highTask("h1", 4, 5, 10, 10), // 2 procs
		highTask("h2", 4, 5, 10, 10), // 2 procs
	}
	_, err := Schedule(sys, 3, Options{})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("want FailureError, got %v", err)
	}
	if fe.Phase != PhaseHighDensity {
		t.Errorf("phase = %v, want high-density", fe.Phase)
	}
	if fe.TaskIndex != 1 {
		t.Errorf("failing task = %d, want 1", fe.TaskIndex)
	}
}

func TestScheduleFailsInPartitionPhase(t *testing.T) {
	sys := task.System{
		highTask("h", 4, 5, 10, 10), // takes 2 of 3 processors
		lowTask("l1", 4, 5, 100),
		lowTask("l2", 4, 5, 100), // cannot share the single leftover
	}
	_, err := Schedule(sys, 3, Options{})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("want FailureError, got %v", err)
	}
	if fe.Phase != PhaseLowDensity {
		t.Errorf("phase = %v, want low-density", fe.Phase)
	}
	// TaskIndex must refer to the original system (1 or 2, not 0).
	if fe.TaskIndex != 1 && fe.TaskIndex != 2 {
		t.Errorf("failing task index = %d, want a low task", fe.TaskIndex)
	}
	// On 4 processors it works.
	alloc, err := Schedule(sys, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sys, 4, alloc); err != nil {
		t.Error(err)
	}
}

func TestScheduleRejectsInvalidInput(t *testing.T) {
	if _, err := Schedule(nil, 4, Options{}); err == nil {
		t.Error("accepted empty system")
	}
	sys := task.System{lowTask("a", 1, 2, 3)}
	if _, err := Schedule(sys, 0, Options{}); err == nil {
		t.Error("accepted m=0")
	}
}

func TestExample2SystemBehaviour(t *testing.T) {
	// Paper Example 2: n singleton tasks (C=1, D=1, T=n). Every task is
	// high-density (δ = 1), so FEDCONS gives each a dedicated processor:
	// schedulable iff m ≥ n. This matches the optimal federated scheduler —
	// the example's point is about capacity augmentation, not FEDCONS.
	n := 5
	var sys task.System
	for i := 0; i < n; i++ {
		sys = append(sys, task.MustNew("e", dag.Singleton(1), 1, Time(n)))
	}
	if Schedulable(sys, n-1, Options{}) {
		t.Errorf("Example 2 with m=%d must fail", n-1)
	}
	alloc, err := Schedule(sys, n, Options{})
	if err != nil {
		t.Fatalf("Example 2 with m=n must succeed: %v", err)
	}
	if err := Verify(sys, n, alloc); err != nil {
		t.Error(err)
	}
	if len(alloc.High) != n {
		t.Errorf("all %d tasks are high-density, got %d dedicated", n, len(alloc.High))
	}
}

func randomSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(8)
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.25 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		l := g.LongestChain()
		d := l + Time(r.Intn(int(2*g.Volume())))
		tt := d + Time(r.Intn(40))
		sys = append(sys, task.MustNew("r", g, d, tt))
	}
	return sys
}

func TestRandomSchedulesAlwaysVerify(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	accepted := 0
	for trial := 0; trial < 200; trial++ {
		sys := randomSystem(r, 1+r.Intn(8))
		m := 1 + r.Intn(12)
		for _, opt := range []Options{
			{},
			{Minprocs: Analytic},
			{Priority: listsched.LongestPathFirst},
			{Partition: partition.Options{Heuristic: partition.WorstFit}},
			{Partition: partition.Options{Test: partition.ExactEDF}},
		} {
			alloc, err := Schedule(sys, m, opt)
			if err != nil {
				continue
			}
			accepted++
			if verr := Verify(sys, m, alloc); verr != nil {
				t.Fatalf("trial %d opts %+v: %v", trial, opt, verr)
			}
		}
	}
	if accepted < 20 {
		t.Fatalf("test too vacuous: only %d acceptances", accepted)
	}
}

func TestLSScanNeverUsesMoreProcsThanAnalytic(t *testing.T) {
	// The E7 ablation direction: the scan finds the true minimum under LS,
	// so a system schedulable under Analytic is schedulable under LSScan.
	r := rand.New(rand.NewSource(34))
	for trial := 0; trial < 100; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(10)
		if Schedulable(sys, m, Options{Minprocs: Analytic}) &&
			!Schedulable(sys, m, Options{}) {
			t.Fatalf("trial %d: analytic accepted but LS scan rejected", trial)
		}
	}
}

func TestSchedulableSpeedupMonotone(t *testing.T) {
	// If schedulable on m processors, schedulable on m+1 (more capacity
	// never hurts FEDCONS: the scan budget and the partition bins grow).
	r := rand.New(rand.NewSource(35))
	for trial := 0; trial < 100; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		if Schedulable(sys, m, Options{}) && !Schedulable(sys, m+1, Options{}) {
			t.Fatalf("trial %d: schedulable on %d but not %d", trial, m, m+1)
		}
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	sys := task.System{
		highTask("h", 4, 5, 10, 10),
		lowTask("l", 2, 8, 16),
	}
	alloc, err := Schedule(sys, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong m.
	if err := Verify(sys, 4, alloc); err == nil {
		t.Error("Verify accepted wrong platform size")
	}
	// Steal a processor.
	tampered := *alloc
	tampered.High = append([]HighAssignment(nil), alloc.High...)
	tampered.High[0].Procs = alloc.High[0].Procs[:1]
	if err := Verify(sys, 3, &tampered); err == nil {
		t.Error("Verify accepted template/processor-count mismatch")
	}
	// Overlap shared and dedicated.
	tampered2 := *alloc
	tampered2.SharedProcs = []int{0}
	if err := Verify(sys, 3, &tampered2); err == nil {
		t.Error("Verify accepted overlapping processor sets")
	}
	// Nil allocation.
	if err := Verify(sys, 3, nil); err == nil {
		t.Error("Verify accepted nil allocation")
	}
}

func TestTasksOnShared(t *testing.T) {
	sys := task.System{
		highTask("h", 4, 5, 10, 10),
		lowTask("l1", 2, 8, 16),
		lowTask("l2", 1, 9, 18),
	}
	alloc, err := Schedule(sys, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for k := range alloc.SharedProcs {
		for _, i := range alloc.TasksOnShared(k) {
			got[i] = true
		}
	}
	if !got[1] || !got[2] || got[0] {
		t.Errorf("TasksOnShared covered %v, want {1,2}", got)
	}
}

func BenchmarkScheduleMixed(b *testing.B) {
	r := rand.New(rand.NewSource(36))
	sys := randomSystem(r, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Schedule(sys, 16, Options{})
	}
}

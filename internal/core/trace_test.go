package core

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// traceSystem is a small mixed system: one high-density parallel task plus
// two low-density singletons, schedulable on 4 processors.
func traceSystem() task.System {
	return task.System{
		highTask("hi", 4, 5, 10, 10), // δ = 2 → dedicated pair
		lowTask("lo1", 2, 8, 16),
		lowTask("lo2", 3, 12, 24),
	}
}

func TestScheduleTraceShape(t *testing.T) {
	rec := obs.New(obs.DefaultLimits)
	if _, err := Schedule(traceSystem(), 4, Options{Trace: rec}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	roots := rec.Roots()
	if len(roots) != 1 || roots[0].Name() != "fedcons" {
		t.Fatalf("roots = %v", roots)
	}
	root := roots[0]
	if v, ok := root.Lookup("schedulable"); !ok || !v.Bool() {
		t.Errorf("root schedulable attr = %v, %v", v, ok)
	}
	p1 := root.Children()[0]
	if p1.Name() != "phase1" {
		t.Fatalf("first child = %q, want phase1", p1.Name())
	}
	tasks := p1.Children()
	if len(tasks) != 3 {
		t.Fatalf("phase1 has %d task spans, want 3", len(tasks))
	}
	hi := tasks[0]
	if v, _ := hi.Lookup("high"); !v.Bool() {
		t.Errorf("task %q not classified high-density", "hi")
	}
	if v, ok := hi.Lookup("density"); !ok || v.Float64() != 2.0 {
		t.Errorf("density attr = %v, want 2.0", v)
	}
	mus := hi.Children()
	if len(mus) == 0 {
		t.Fatal("no mu candidate spans under the high-density task")
	}
	last := mus[len(mus)-1]
	if v, _ := last.Lookup("ok"); !v.Bool() {
		t.Errorf("final mu candidate not ok: %v", last.Attrs())
	}
	if _, ok := last.Lookup("lemma1_bound"); !ok {
		t.Error("mu span lacks lemma1_bound")
	}
	if v, ok := hi.Lookup("mu"); !ok || v.Int64() != 2 {
		t.Errorf("chosen mu attr = %v, want 2", v)
	}
	// Phase 2 places both low tasks.
	p2 := root.Children()[1]
	if p2.Name() != "phase2" {
		t.Fatalf("second child = %q, want phase2", p2.Name())
	}
	places := p2.Children()
	if len(places) != 2 {
		t.Fatalf("phase2 has %d place spans, want 2", len(places))
	}
	for _, pl := range places {
		if pl.Name() != "place" {
			t.Errorf("phase2 child %q, want place", pl.Name())
		}
		if len(pl.Children()) == 0 {
			t.Errorf("place span %v has no fit probes", pl.Attrs())
		}
	}
}

func TestScheduleTracePhase1Rejection(t *testing.T) {
	// Four independent jobs of 6, D = 11, T = 12: δ = 24/11 → scan starts at
	// 3, capped at min(width 4, m_r 3) = 3, and μ = 3 gives makespan 12 > 11.
	sys := task.System{task.MustNew("hot", dag.Independent(6, 6, 6, 6), 11, 12)}
	rec := obs.New(obs.DefaultLimits)
	if _, err := Schedule(sys, 3, Options{Trace: rec}); err == nil {
		t.Fatal("want rejection")
	}
	root := rec.Roots()[0]
	if v, _ := root.Lookup("schedulable"); v.Bool() {
		t.Error("root claims schedulable after failure")
	}
	if v, _ := root.Lookup("phase"); v.Str() != "high-density" {
		t.Errorf("failure phase = %q", v.Str())
	}
	tsp := root.Children()[0].Children()[0]
	if v, _ := tsp.Lookup("failed"); !v.Bool() {
		t.Error("task span not marked failed")
	}
	mus := tsp.Children()
	if len(mus) != 1 {
		t.Fatalf("tried %d mu candidates, want 1 (scan 3..3)", len(mus))
	}
	if v, _ := mus[0].Lookup("makespan"); v.Int64() != 12 {
		t.Errorf("mu=3 makespan = %d, want 12", v.Int64())
	}
	if v, _ := mus[0].Lookup("ok"); v.Bool() {
		t.Error("failing candidate marked ok")
	}
}

func TestScheduleTracePhase2Rejection(t *testing.T) {
	// One processor, two C=3 D=5 T=10 singletons: the second demands
	// 3 + 3 = 6 > 5 at its own deadline.
	sys := task.System{lowTask("a", 3, 5, 10), lowTask("b", 3, 5, 10)}
	rec := obs.New(obs.DefaultLimits)
	if _, err := Schedule(sys, 1, Options{Trace: rec}); err == nil {
		t.Fatal("want rejection")
	}
	root := rec.Roots()[0]
	if v, _ := root.Lookup("phase"); v.Str() != "low-density" {
		t.Errorf("failure phase = %q", v.Str())
	}
	p2 := root.Children()[1]
	places := p2.Children()
	if len(places) != 2 {
		t.Fatalf("%d place spans, want 2", len(places))
	}
	fail := places[1]
	if v, _ := fail.Lookup("failed"); !v.Bool() {
		t.Error("second place span not marked failed")
	}
	fits := fail.Children()
	if len(fits) != 1 {
		t.Fatalf("%d fit probes, want 1", len(fits))
	}
	if v, ok := fits[0].Lookup("demand_ok"); !ok || v.Bool() {
		t.Errorf("demand_ok = %v, %v; want recorded false", v, ok)
	}
	if v, ok := fits[0].Lookup("demand"); !ok || v.Float64() != 6 {
		t.Errorf("demand = %v, want 6", v)
	}
}

// TestTraceAnalyticMode covers the MinprocsAnalyticTrace path.
func TestTraceAnalyticMode(t *testing.T) {
	rec := obs.New(obs.DefaultLimits)
	if _, err := Schedule(traceSystem(), 4, Options{Minprocs: Analytic, Trace: rec}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	hi := rec.Roots()[0].Children()[0].Children()[0]
	mus := hi.Children()
	if len(mus) != 1 {
		t.Fatalf("analytic mode tried %d candidates, want 1", len(mus))
	}
	if v, _ := mus[0].Lookup("ok"); !v.Bool() {
		t.Error("analytic candidate not ok")
	}
}

// TestNoopTraceZeroOverhead pins the disabled-tracing contract: Schedule with
// a nil recorder (explicitly spelled obs.Noop) allocates exactly as much as
// Schedule with no Trace field at all.
func TestNoopTraceZeroOverhead(t *testing.T) {
	sys := traceSystem()
	base := testing.AllocsPerRun(50, func() {
		if _, err := Schedule(sys, 4, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	noop := testing.AllocsPerRun(50, func() {
		if _, err := Schedule(sys, 4, Options{Trace: obs.Noop}); err != nil {
			t.Fatal(err)
		}
	})
	if noop != base {
		t.Errorf("Noop-traced Schedule allocates %v, untraced %v", noop, base)
	}
}

// BenchmarkScheduleTrace quantifies the cost of decision tracing on the
// 20-task mixed workload of BenchmarkScheduleMixed: "off" is the pre-obs
// baseline (no Trace field), "noop" the explicit disabled recorder, and "on"
// a live recorder rebuilt per run. The off/noop pair must be statistically
// indistinguishable; off-vs-on is the enabled overhead recorded in
// results/timing_obs.json.
func BenchmarkScheduleTrace(b *testing.B) {
	r := rand.New(rand.NewSource(36))
	sys := randomSystem(r, 20)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = Schedule(sys, 16, Options{})
		}
	})
	b.Run("noop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = Schedule(sys, 16, Options{Trace: obs.Noop})
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = Schedule(sys, 16, Options{Trace: obs.New(obs.Limits{})})
		}
	})
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// Property: whenever Minprocs succeeds, the witness schedule fits the
// min(D,T) window, uses exactly μ processors, and validates against the DAG;
// and μ never exceeds the DAG's width.
func TestPropertyMinprocsWitness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		b := dag.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddJob(Time(1 + r.Intn(6)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.MustBuild()
		d := g.LongestChain() + Time(r.Intn(int(g.Volume())+1))
		tt := d + Time(r.Intn(20))
		tk := task.MustNew("p", g, d, tt)
		mu, tmpl, ok := Minprocs(tk, 64, nil)
		if !ok {
			return true // nothing to check; feasibility tested elsewhere
		}
		if mu > g.Width() && g.Width() > 0 {
			return false
		}
		if tmpl.M != mu {
			return false
		}
		if tmpl.Makespan > d {
			return false
		}
		return tmpl.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: a successful allocation uses disjoint, contiguous processor
// numbering covering 0..M-1 exactly (dedicated blocks then shared).
func TestPropertyAllocationProcessorCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	checked := 0
	for trial := 0; trial < 150; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		alloc, err := Schedule(sys, m, Options{})
		if err != nil {
			continue
		}
		checked++
		seen := make([]bool, m)
		mark := func(p int) {
			if p < 0 || p >= m || seen[p] {
				t.Fatalf("processor %d invalid or duplicated", p)
			}
			seen[p] = true
		}
		for _, h := range alloc.High {
			for _, p := range h.Procs {
				mark(p)
			}
		}
		for _, p := range alloc.SharedProcs {
			mark(p)
		}
		for p, ok := range seen {
			if !ok {
				t.Fatalf("processor %d unassigned to any role", p)
			}
		}
		ded, shared := alloc.ProcessorsUsed()
		if ded+shared != m {
			t.Fatalf("ProcessorsUsed %d+%d != %d", ded, shared, m)
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous")
	}
}

// Property: schedulability is invariant under task reordering (the paper's
// phases process high-density tasks in input order and sort the rest, so
// the verdict — not the allocation — must be order-independent).
func TestPropertyOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(302))
	for trial := 0; trial < 100; trial++ {
		sys := randomSystem(r, 2+r.Intn(5))
		m := 1 + r.Intn(8)
		want := Schedulable(sys, m, Options{})
		shuffled := sys.Clone()
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := Schedulable(shuffled, m, Options{}); got != want {
			// High-density tasks draw from a shared budget in input order,
			// but each task's μ is order-independent and Σμ is what matters;
			// low tasks are sorted internally. A flip would be a real bug.
			t.Fatalf("trial %d: verdict changed under reordering (%v → %v)", trial, want, got)
		}
	}
}

// Property: adding a fresh processor-free task can only require more
// capacity — removing any task from a schedulable system keeps it
// schedulable.
func TestPropertySubsetSchedulable(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		sys := randomSystem(r, 2+r.Intn(5))
		m := 1 + r.Intn(8)
		if !Schedulable(sys, m, Options{}) {
			continue
		}
		checked++
		drop := r.Intn(len(sys))
		sub := append(sys.Clone()[:drop], sys[drop+1:]...)
		if len(sub) == 0 {
			continue
		}
		if !Schedulable(sub, m, Options{}) {
			t.Fatalf("trial %d: subset unschedulable after removing task %d", trial, drop)
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous")
	}
}

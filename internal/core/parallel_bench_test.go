package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fedsched/internal/gen"
	"fedsched/internal/task"
)

// benchParSystem draws the workload BenchmarkSchedulePar measures: a batch of
// large DAGs with tight constrained deadlines, so nearly every task is
// high-density and Phase-1 LS scans dominate — the regime the worker pool
// exists for.
func benchParSystem(b *testing.B) (task.System, int) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	p := gen.DefaultParams(16, 16)
	p.MinVerts, p.MaxVerts = 150, 250
	p.BetaMin, p.BetaMax = 0.1, 0.3
	sys, err := gen.System(r, p)
	if err != nil {
		b.Fatal(err)
	}
	for m := 8; m <= 4096; m *= 2 {
		if _, err := Schedule(sys, m, Options{}); err == nil {
			return sys, m
		}
	}
	b.Fatal("benchmark system unschedulable at every platform size")
	return nil, 0
}

// BenchmarkSchedulePar measures the Phase-1 worker pool's speedup on a cold
// full FEDCONS run. par=1 is the sequential engine (the pool is bypassed);
// the output is byte-identical at every size (TestSchedulePar), so the only
// difference between sub-benchmarks is wall-clock. Recorded in
// results/timing_parallel_phase1.json.
func BenchmarkSchedulePar(b *testing.B) {
	sys, m := benchParSystem(b)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Schedule(sys, m, Options{Par: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

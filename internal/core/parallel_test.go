package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// parallelSystem draws a system where roughly half the tasks are
// high-density, so the Phase-1 pool has real fan-out and the m sweep below
// exercises success, high-density failure (scan cut by m_r) and low-density
// failure.
func parallelSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 3 + r.Intn(8)
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(task.Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		var d task.Time
		if r.Intn(2) == 0 {
			d = g.LongestChain() + task.Time(r.Intn(3)) // tight: high-density
		} else {
			d = g.Volume() + task.Time(1+r.Intn(20)) // slack: low-density
		}
		t := d + task.Time(r.Intn(40))
		sys = append(sys, task.MustNew(fmt.Sprintf("t%d", i), g, d, t))
	}
	return sys
}

// scheduleFingerprint runs Schedule under opt and reduces every observable
// output to bytes: the verdict (error string or ""), the encoded allocation,
// and the exported decision trace with timings off.
func scheduleFingerprint(t *testing.T, sys task.System, m int, opt Options) (verdict string, alloc, trace []byte) {
	t.Helper()
	rec := obs.New(obs.Limits{})
	opt.Trace = rec
	a, err := Schedule(sys, m, opt)
	if err != nil {
		verdict = err.Error()
	} else {
		enc, encErr := EncodeAllocation(a)
		if encErr != nil {
			t.Fatalf("encoding allocation: %v", encErr)
		}
		alloc = enc
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, obs.ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	return verdict, alloc, buf.Bytes()
}

// TestSchedulePar is the differential matrix the parallel engine is pinned
// by: 20 seeds × worker counts {1, 2, 4, 8} (plus Par=0, the sequential zero
// value) × both MINPROCS modes × a platform sweep, asserting the parallel
// output — verdict, allocation bytes, trace bytes — equals the sequential
// oracle exactly. Run under -race by `make test-race` and the CI race job.
func TestSchedulePar(t *testing.T) {
	t.Parallel()
	modes := []MinprocsMode{LSScan, Analytic}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		sys := parallelSystem(r, 4+r.Intn(5))
		for _, mode := range modes {
			for _, m := range []int{2, 4, 8, 16, 32} {
				base := Options{Minprocs: mode}
				wantVerdict, wantAlloc, wantTrace := scheduleFingerprint(t, sys, m, base)
				for _, par := range []int{0, 2, 4, 8} {
					opt := base
					opt.Par = par
					gotVerdict, gotAlloc, gotTrace := scheduleFingerprint(t, sys, m, opt)
					ctx := fmt.Sprintf("seed=%d mode=%v m=%d par=%d", seed, mode, m, par)
					if gotVerdict != wantVerdict {
						t.Fatalf("%s: verdict %q, sequential %q", ctx, gotVerdict, wantVerdict)
					}
					if !bytes.Equal(gotAlloc, wantAlloc) {
						t.Fatalf("%s: allocation bytes diverge from sequential", ctx)
					}
					if !bytes.Equal(gotTrace, wantTrace) {
						t.Fatalf("%s: trace bytes diverge from sequential\npar:\n%s\nseq:\n%s", ctx, gotTrace, wantTrace)
					}
				}
			}
		}
	}
}

// TestScheduleParPriority extends the matrix to the non-default LS
// priorities, where the scan visits different schedules but must stay just as
// deterministic.
func TestScheduleParPriority(t *testing.T) {
	t.Parallel()
	prios := map[string]listsched.Priority{
		"longest-path": listsched.LongestPathFirst,
		"largest-wcet": listsched.LargestWCETFirst,
	}
	for name, prio := range prios {
		for seed := int64(0); seed < 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			sys := parallelSystem(r, 5)
			for _, m := range []int{4, 12} {
				base := Options{Priority: prio}
				wantVerdict, wantAlloc, wantTrace := scheduleFingerprint(t, sys, m, base)
				opt := base
				opt.Par = 4
				gotVerdict, gotAlloc, gotTrace := scheduleFingerprint(t, sys, m, opt)
				if gotVerdict != wantVerdict || !bytes.Equal(gotAlloc, wantAlloc) || !bytes.Equal(gotTrace, wantTrace) {
					t.Fatalf("priority=%s seed=%d m=%d: parallel output diverges from sequential", name, seed, m)
				}
			}
		}
	}
}

// TestScheduleParValidation pins the Options.Par contract: negative values
// are rejected up front, 0 and 1 are the sequential paths.
func TestScheduleParValidation(t *testing.T) {
	t.Parallel()
	sys := parallelSystem(rand.New(rand.NewSource(1)), 3)
	if _, err := Schedule(sys, 8, Options{Par: -1}); err == nil {
		t.Fatal("Schedule accepted Par = -1")
	}
	for _, par := range []int{0, 1} {
		if _, err := Schedule(sys, 32, Options{Par: par}); err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
	}
}

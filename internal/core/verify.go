package core

import (
	"fmt"

	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// Verify audits an Allocation against the system and platform it claims to
// schedule. It checks, independently of how the allocation was produced:
//
//   - every task appears exactly once (as a high assignment or in LowIndices);
//   - high assignments are exactly the high-density tasks, their processor
//     sets are disjoint, within range, and sized to their templates;
//   - each template is a valid schedule of the task's DAG with makespan ≤ D
//     (so every dag-job meets its deadline under lookup-table replay, since
//     D ≤ T serializes consecutive dag-jobs);
//   - shared processors are disjoint from dedicated ones; and
//   - the low-density partition is exactly EDF-schedulable per processor
//     (partition.Verify, which applies the exact QPA test).
//
// Verify dispatches on the allocation's shape tag: the strict
// dedicated-processor shape above when a.Policy is empty, the split shape
// (dedicated processors + reservation servers, audited against the Ueter
// service inequality by verifySplit) for "semi" and "reservation". The
// strict auditor rejects any allocation carrying servers, so a dedicated-only
// verifier can never be talked into accepting a fractional grant.
//
// Verify is the auditor used by tests, experiments and cmd/fedsched.
func Verify(sys task.System, m int, a *Allocation) error {
	if a == nil {
		return fmt.Errorf("fedcons: nil allocation")
	}
	switch a.Policy {
	case "":
		return verifyStrict(sys, m, a)
	case PolicySemi, PolicyReservation:
		return verifySplit(sys, m, a)
	case PolicyTyped:
		return verifyTyped(sys, m, a)
	default:
		return fmt.Errorf("fedcons: allocation tagged with unknown policy %q", a.Policy)
	}
}

// verifyStrict audits the paper's dedicated-processor allocation shape.
func verifyStrict(sys task.System, m int, a *Allocation) error {
	if len(a.Servers) > 0 {
		return fmt.Errorf("fedcons: a strict allocation must not carry reservation servers, found %d", len(a.Servers))
	}
	if len(a.MTypes) > 0 {
		return fmt.Errorf("fedcons: a strict allocation must not carry per-type processor budgets")
	}
	if a.M != m {
		return fmt.Errorf("fedcons: allocation for m=%d, want %d", a.M, m)
	}
	owned := make([]int, m) // 0 = unused, 1 = dedicated, 2 = shared
	covered := make([]bool, len(sys))

	for _, h := range a.High {
		if h.TaskIndex < 0 || h.TaskIndex >= len(sys) {
			return fmt.Errorf("fedcons: high assignment index %d out of range", h.TaskIndex)
		}
		tk := sys[h.TaskIndex]
		if covered[h.TaskIndex] {
			return fmt.Errorf("fedcons: task %d assigned twice", h.TaskIndex)
		}
		covered[h.TaskIndex] = true
		if !tk.HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is low-density but got dedicated processors", h.TaskIndex, tk.Density())
		}
		if len(h.Procs) == 0 {
			return fmt.Errorf("fedcons: task %d granted zero processors", h.TaskIndex)
		}
		for _, p := range h.Procs {
			if p < 0 || p >= m {
				return fmt.Errorf("fedcons: processor %d out of range", p)
			}
			if owned[p] != 0 {
				return fmt.Errorf("fedcons: processor %d claimed twice", p)
			}
			owned[p] = 1
		}
		if h.Template == nil {
			return fmt.Errorf("fedcons: task %d has no template schedule", h.TaskIndex)
		}
		if h.Template.M != len(h.Procs) {
			return fmt.Errorf("fedcons: task %d template uses %d processors, granted %d", h.TaskIndex, h.Template.M, len(h.Procs))
		}
		if err := h.Template.Validate(tk.G); err != nil {
			return fmt.Errorf("fedcons: task %d template invalid: %w", h.TaskIndex, err)
		}
		// The template must fit the scheduling window min(D, T): ≤ D meets
		// the deadline; ≤ T vacates the group before the next dag-job.
		if w := window(tk); h.Template.Makespan > w {
			return fmt.Errorf("fedcons: task %d template makespan %d exceeds window min(D,T)=%d", h.TaskIndex, h.Template.Makespan, w)
		}
	}

	for _, p := range a.SharedProcs {
		if p < 0 || p >= m {
			return fmt.Errorf("fedcons: shared processor %d out of range", p)
		}
		if owned[p] != 0 {
			return fmt.Errorf("fedcons: shared processor %d also dedicated", p)
		}
		owned[p] = 2
	}

	low := make(task.System, 0, len(a.LowIndices))
	for _, i := range a.LowIndices {
		if i < 0 || i >= len(sys) {
			return fmt.Errorf("fedcons: low index %d out of range", i)
		}
		if covered[i] {
			return fmt.Errorf("fedcons: task %d assigned twice", i)
		}
		covered[i] = true
		if sys[i].HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is high-density but was partitioned", i, sys[i].Density())
		}
		low = append(low, sys[i])
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("fedcons: task %d unassigned", i)
		}
	}

	if a.Low == nil {
		return fmt.Errorf("fedcons: nil partition result")
	}
	if err := partition.Verify(low, len(a.SharedProcs), a.Low); err != nil {
		return fmt.Errorf("fedcons: %w", err)
	}
	return nil
}

package core

import (
	"fmt"
	"sort"

	"fedsched/internal/dag"
	"fedsched/internal/dbf"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// This file is the pluggable scheduling-policy layer. The paper's FEDCONS
// rounds every high-density grant up to whole processors; semi-federated
// scheduling (Jiang et al., arXiv 1705.03245) and reservation-based federated
// scheduling (Ueter et al., arXiv 1712.05040) reclaim the rounding loss by
// granting a high-density task ⌊x⌋ dedicated processors plus fractional
// reservation servers that the ordinary Phase-2 partitioner places alongside
// the low-density tasks. Both are implemented outside this package
// (internal/semifed, internal/reservation) behind the Policy interface below;
// this file owns what must stay policy-independent:
//
//   - the policy registry Schedule and the service layer dispatch through;
//   - the split allocation shape (Allocation.Policy + Allocation.Servers) and
//     the construction of server tasks for the shared Phase-2 partitioner;
//   - the policy-aware verifier for split-shape allocations, so Verify can
//     audit any registered policy's output without importing it.
//
// Soundness of the split shape rests on one lemma (Ueter et al., Lemma 2 /
// Theorem 1 specialized to equal-deadline reservations): if a DAG task τ_i
// with volume vol_i, critical-path length len_i and scheduling window
// w_i = min(D_i, T_i) is served by r_i reservation units — d_i of them whole
// dedicated processors (budget w_i) and the rest servers with budgets
// E_j ≤ w_i released at each dag-job arrival with deadline w_i — then
// work-conserving list scheduling of the dag-job inside the reservations
// meets the deadline whenever
//
//	d_i·w_i + Σ_j E_j  ≥  vol_i + (r_i − 1)·len_i.
//
// verifySplit re-checks exactly this inequality per high-density task, plus
// EDF-feasibility of the servers' placement on the shared processors, so a
// mutated budget or dropped server never verifies.

// Policy names. PolicyFedcons is reserved: Options.Policy == "" (or
// "fedcons") selects the paper's strict algorithm directly, never through the
// registry, so the default path cannot be perturbed by registration.
const (
	PolicyFedcons     = "fedcons"
	PolicySemi        = "semi"
	PolicyReservation = "reservation"
	PolicyTyped       = "typed"
)

// ScheduleFunc is the signature of a strict-FEDCONS scheduler. Policies
// receive one as their fallback so a memoizing caller (the service layer)
// can substitute its cache-backed equivalent for core's batch Schedule.
type ScheduleFunc func(sys task.System, m int, opt Options) (*Allocation, error)

// Policy is one pluggable admission strategy. Schedule must be a pure
// function of its arguments: same inputs, byte-identical Allocation. The
// fallback is the strict FEDCONS scheduler of the calling layer; policies
// that try a split-shape allocation first and fall back on failure guarantee
// pointwise acceptance dominance over the paper's algorithm. Implementations
// must clear opt.Policy before invoking the fallback.
type Policy interface {
	// Name is the registry key (the -policy flag vocabulary).
	Name() string
	// Schedule runs the policy's admission test.
	Schedule(sys task.System, m int, opt Options, fallback ScheduleFunc) (*Allocation, error)
}

// policies is the registry. Registration happens in package init functions
// (each policy package registers itself); it is not safe for concurrent use.
var policies = make(map[string]Policy)

// RegisterPolicy adds a policy to the registry. It panics on an empty or
// duplicate name, or on the reserved name "fedcons" — programmer errors
// caught at init time.
func RegisterPolicy(p Policy) {
	name := p.Name()
	if name == "" {
		panic("core: RegisterPolicy with empty name")
	}
	if name == PolicyFedcons {
		panic("core: RegisterPolicy cannot override the built-in fedcons policy")
	}
	if _, dup := policies[name]; dup {
		panic(fmt.Sprintf("core: RegisterPolicy called twice for %q", name))
	}
	policies[name] = p
}

// LookupPolicy returns the named registered policy.
func LookupPolicy(name string) (Policy, error) {
	p, ok := policies[name]
	if !ok {
		return nil, fmt.Errorf("fedcons: unknown policy %q (have %s)", name, policyVocabulary())
	}
	return p, nil
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policies))
	for name := range policies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// policyVocabulary renders the accepted -policy values for error messages.
func policyVocabulary() string {
	s := PolicyFedcons
	for _, name := range PolicyNames() {
		s += ", " + name
	}
	return s
}

// NormalizePolicy canonicalizes a policy name: "" and "fedcons" normalize to
// "" (the strict default); any registered name passes through; anything else
// is an error.
func NormalizePolicy(name string) (string, error) {
	if name == "" || name == PolicyFedcons {
		return "", nil
	}
	if _, err := LookupPolicy(name); err != nil {
		return "", err
	}
	return name, nil
}

// Window exposes the dag-job scheduling window min(D_i, T_i) to policy
// implementations.
func Window(tk *task.DAGTask) Time { return window(tk) }

// ValidateInput mirrors Schedule's input checks for policy implementations,
// so a policy rejects malformed input with the same errors as the strict
// path.
func ValidateInput(sys task.System, m int, opt Options) error {
	if err := sys.Validate(); err != nil {
		return err
	}
	if m < 1 {
		return fmt.Errorf("fedcons: m must be ≥ 1, got %d", m)
	}
	if opt.Par < 0 {
		return fmt.Errorf("fedcons: par must be ≥ 0, got %d", opt.Par)
	}
	return nil
}

// ServerSpec is one reservation server of a split-shape allocation: a budget
// of E time units granted to the high-density task at TaskIndex within every
// scheduling window. The server is placed by the Phase-2 partitioner as an
// ordinary sporadic task (C = Budget, D = min(D_i, T_i), T = T_i).
type ServerSpec struct {
	// TaskIndex is the input index of the high-density task the server
	// belongs to.
	TaskIndex int
	// Budget is the server's execution budget per window, 1 ≤ Budget ≤
	// min(D_i, T_i).
	Budget Time
}

// ServerNames returns display names for a's servers, index aligned: the
// owner's name suffixed with a per-owner sequence number ("τ3#srv0"). The
// names are deterministic functions of the allocation, so the CLI, the
// daemon verdicts and the partitionable system built by PartitionSystem all
// agree.
func ServerNames(sys task.System, a *Allocation) []string {
	seq := make(map[int]int, len(a.Servers))
	names := make([]string, len(a.Servers))
	for j, sv := range a.Servers {
		owner := "?"
		if sv.TaskIndex >= 0 && sv.TaskIndex < len(sys) {
			owner = sys[sv.TaskIndex].Name
		}
		names[j] = fmt.Sprintf("%s#srv%d", owner, seq[sv.TaskIndex])
		seq[sv.TaskIndex]++
	}
	return names
}

// PartitionSystem builds the system the Phase-2 partitioner sees for
// allocation a: the reservation servers first (one single-vertex DAG task
// per ServerSpec, in Servers order), then the low-density tasks in input
// order. For a strict-shape allocation (no servers) this is exactly the
// low-density subsystem, so partition.Partition, partition.Verify and
// partition.Rebuild work unchanged for every shape; positions < len(Servers)
// in a.Low refer to servers, later positions to LowIndices[pos−len(Servers)].
func PartitionSystem(sys task.System, a *Allocation) (task.System, error) {
	out := make(task.System, 0, len(a.Servers)+len(a.LowIndices))
	names := ServerNames(sys, a)
	for j, sv := range a.Servers {
		if sv.TaskIndex < 0 || sv.TaskIndex >= len(sys) {
			return nil, fmt.Errorf("fedcons: server %d owner index %d out of range", j, sv.TaskIndex)
		}
		owner := sys[sv.TaskIndex]
		if sv.Budget < 1 {
			return nil, fmt.Errorf("fedcons: server %d budget must be ≥ 1, got %d", j, sv.Budget)
		}
		srv, err := task.New(names[j], dag.Chain(sv.Budget), window(owner), owner.T)
		if err != nil {
			return nil, fmt.Errorf("fedcons: server %d: %w", j, err)
		}
		out = append(out, srv)
	}
	for _, i := range a.LowIndices {
		if i < 0 || i >= len(sys) {
			return nil, fmt.Errorf("fedcons: low index %d out of range", i)
		}
		out = append(out, sys[i])
	}
	return out, nil
}

// systemSize returns the number of input tasks a covers: the low-density
// tasks plus the distinct high-density tasks appearing in High and/or
// Servers. For the strict shape this is len(High) + len(LowIndices).
func systemSize(a *Allocation) int {
	n := len(a.LowIndices) + len(a.High)
	if len(a.Servers) == 0 {
		return n
	}
	seen := make(map[int]bool, len(a.High)+len(a.Servers))
	for _, h := range a.High {
		seen[h.TaskIndex] = true
	}
	for _, sv := range a.Servers {
		if !seen[sv.TaskIndex] {
			seen[sv.TaskIndex] = true
			n++
		}
	}
	return n
}

// verifySplit audits a split-shape allocation (a.Policy "semi" or
// "reservation") from scratch; see verifySplitBase for the checks.
func verifySplit(sys task.System, m int, a *Allocation) error {
	return verifySplitBase(sys, m, a, nil, nil)
}

// verifySplitBase is the split-shape auditor. With base == nil every shared
// processor's exact EDF feasibility is re-checked (the Verify path); with a
// verified base (the VerifyDelta path) a processor's EDF test is elided when
// it provably carries the identical workload — value-equal server specs with
// pointer-identical owners, and pointer-identical low-density tasks, in
// identical order. Everything else — coverage, ownership, budget ranges, the
// Ueter service inequality — is always re-checked in full.
func verifySplitBase(sys task.System, m int, a *Allocation, baseSys task.System, base *Allocation) error {
	if a.M != m {
		return fmt.Errorf("fedcons: allocation for m=%d, want %d", a.M, m)
	}
	if len(a.MTypes) > 0 {
		return fmt.Errorf("fedcons: a %s-shape allocation must not carry per-type processor budgets", a.Policy)
	}
	owned := make([]int, m) // 0 = unused, 1 = dedicated, 2 = shared
	covered := make([]int, len(sys))

	// Dedicated-processor grants. A split-shape grant has no template: the
	// dag-job is dispatched work-conservingly inside its reservations, with
	// the service inequality below as the deadline certificate.
	dedicated := make(map[int]int, len(a.High))
	for _, h := range a.High {
		if h.TaskIndex < 0 || h.TaskIndex >= len(sys) {
			return fmt.Errorf("fedcons: high assignment index %d out of range", h.TaskIndex)
		}
		if _, dup := dedicated[h.TaskIndex]; dup {
			return fmt.Errorf("fedcons: task %d has two dedicated-processor grants", h.TaskIndex)
		}
		if !sys[h.TaskIndex].HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is low-density but got dedicated processors", h.TaskIndex, sys[h.TaskIndex].Density())
		}
		if len(h.Procs) == 0 {
			return fmt.Errorf("fedcons: task %d granted zero processors", h.TaskIndex)
		}
		if h.Template != nil {
			return fmt.Errorf("fedcons: task %d: a %s-shape grant must not carry a template schedule", h.TaskIndex, a.Policy)
		}
		for _, p := range h.Procs {
			if p < 0 || p >= m {
				return fmt.Errorf("fedcons: processor %d out of range", p)
			}
			if owned[p] != 0 {
				return fmt.Errorf("fedcons: processor %d claimed twice", p)
			}
			owned[p] = 1
		}
		dedicated[h.TaskIndex] = len(h.Procs)
		covered[h.TaskIndex] = 1
	}
	if a.Policy == PolicyReservation && len(a.High) > 0 {
		return fmt.Errorf("fedcons: a reservation-shape allocation grants no dedicated processors, found %d grants", len(a.High))
	}

	// Reservation servers.
	budgets := make(map[int][]Time, len(a.Servers))
	for j, sv := range a.Servers {
		if sv.TaskIndex < 0 || sv.TaskIndex >= len(sys) {
			return fmt.Errorf("fedcons: server %d owner index %d out of range", j, sv.TaskIndex)
		}
		tk := sys[sv.TaskIndex]
		if !tk.HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is low-density but got a reservation server", sv.TaskIndex, tk.Density())
		}
		if w := window(tk); sv.Budget < 1 || sv.Budget > w {
			return fmt.Errorf("fedcons: server %d budget %d outside [1, window=%d] of task %d", j, sv.Budget, w, sv.TaskIndex)
		}
		budgets[sv.TaskIndex] = append(budgets[sv.TaskIndex], sv.Budget)
		covered[sv.TaskIndex] = 1
	}
	if a.Policy == PolicySemi {
		// Semi-federated shape: every high task has exactly one fractional
		// server (plus ⌊x⌋ dedicated processors when x > 1).
		for i := range sys {
			if covered[i] != 1 {
				continue
			}
			if n := len(budgets[i]); n != 1 {
				return fmt.Errorf("fedcons: semi-shape task %d has %d servers, want exactly 1", i, n)
			}
		}
	}

	// The service inequality: d·w + ΣE ≥ vol + (r−1)·len per high task.
	for i := range sys {
		if covered[i] != 1 {
			continue
		}
		tk := sys[i]
		d, bs := dedicated[i], budgets[i]
		r := Time(d + len(bs))
		supply := Time(d) * window(tk)
		for _, e := range bs {
			supply += e
		}
		need := tk.Volume() + (r-1)*tk.Len()
		if supply < need {
			return fmt.Errorf("fedcons: task %d service inequality violated: %d dedicated + %d servers supply %d < vol %d + (r−1)·len %d",
				i, d, len(bs), supply, tk.Volume(), need-tk.Volume())
		}
	}

	for _, p := range a.SharedProcs {
		if p < 0 || p >= m {
			return fmt.Errorf("fedcons: shared processor %d out of range", p)
		}
		if owned[p] != 0 {
			return fmt.Errorf("fedcons: shared processor %d also dedicated", p)
		}
		owned[p] = 2
	}

	for _, i := range a.LowIndices {
		if i < 0 || i >= len(sys) {
			return fmt.Errorf("fedcons: low index %d out of range", i)
		}
		if covered[i] != 0 {
			return fmt.Errorf("fedcons: task %d assigned twice", i)
		}
		covered[i] = 2
		if sys[i].HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is high-density but was partitioned", i, sys[i].Density())
		}
	}
	for i, c := range covered {
		if c == 0 {
			return fmt.Errorf("fedcons: task %d unassigned", i)
		}
	}

	// The combined partition: servers first, then the low-density tasks,
	// EDF-feasible per shared processor.
	if a.Low == nil {
		return fmt.Errorf("fedcons: nil partition result")
	}
	combined, err := PartitionSystem(sys, a)
	if err != nil {
		return err
	}
	if base == nil {
		if err := partition.Verify(combined, len(a.SharedProcs), a.Low); err != nil {
			return fmt.Errorf("fedcons: %w", err)
		}
		return nil
	}
	if len(a.Low.Assignment) != len(a.SharedProcs) {
		return fmt.Errorf("fedcons: partition: result covers %d processors, want %d", len(a.Low.Assignment), len(a.SharedProcs))
	}
	seen := make([]bool, len(combined))
	sameShared := base.Low != nil && len(base.Low.Assignment) == len(a.Low.Assignment) && equalInts(a.SharedProcs, base.SharedProcs)
	for k := range a.Low.Assignment {
		for _, pos := range a.Low.Assignment[k] {
			if pos < 0 || pos >= len(combined) {
				return fmt.Errorf("fedcons: partition: index %d out of range", pos)
			}
			if seen[pos] {
				return fmt.Errorf("fedcons: partition: task %d assigned twice", pos)
			}
			seen[pos] = true
		}
		if sameShared && sameSplitProcTasks(sys, a, baseSys, base, k) {
			continue // identical already-audited workload on this processor
		}
		set := make([]task.Sporadic, 0, len(a.Low.Assignment[k]))
		for _, pos := range a.Low.Assignment[k] {
			set = append(set, combined[pos].AsSporadic())
		}
		if !dbf.ExactFeasible(set) {
			return fmt.Errorf("fedcons: partition: processor %d not EDF-schedulable: %v", k, set)
		}
	}
	for pos, ok := range seen {
		if !ok {
			return fmt.Errorf("fedcons: partition: task %d unassigned", pos)
		}
	}
	return nil
}

// sameSplitProcTasks reports whether shared processor k carries the identical
// workload in a and base: server positions must pair with value-equal budgets
// and pointer-identical owner tasks (server tasks are rebuilt per call, so
// pointer identity of the servers themselves is meaningless), low positions
// with pointer-identical tasks, in identical order.
func sameSplitProcTasks(sys task.System, a *Allocation, baseSys task.System, base *Allocation, k int) bool {
	ap, bp := a.Low.Assignment[k], base.Low.Assignment[k]
	if len(ap) != len(bp) {
		return false
	}
	sa, sb := len(a.Servers), len(base.Servers)
	for j := range ap {
		pa, pb := ap[j], bp[j]
		if (pa < sa) != (pb < sb) {
			return false
		}
		if pa < sa {
			va, vb := a.Servers[pa], base.Servers[pb]
			if va.Budget != vb.Budget || sys[va.TaskIndex] != baseSys[vb.TaskIndex] {
				return false
			}
		} else if sys[a.LowIndices[pa-sa]] != baseSys[base.LowIndices[pb-sb]] {
			return false
		}
	}
	return true
}

package core

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// rebuildShuffled reconstructs tk's graph with the edge list enumerated in a
// random order (vertex labels and processor types unchanged) — the
// wire-level freedom a JSON system file has in listing its "edges" array.
func rebuildShuffled(r *rand.Rand, tk *task.DAGTask) *task.DAGTask {
	g := tk.G
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), g.TypeOf(v))
	}
	edges := g.Edges()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
}

// relabel reconstructs tk's graph with vertices enumerated in the order
// perm[0], perm[1], … and edges renumbered to match — the same labeled
// structure listed in a different vertex order.
func relabel(tk *task.DAGTask, perm []int) *task.DAGTask {
	g := tk.G
	rank := make([]int, g.N()) // rank[orig] = new index
	b := dag.NewBuilder(g.N())
	for k, v := range perm {
		rank[v] = k
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), g.TypeOf(v))
	}
	for _, e := range g.Edges() {
		b.AddEdge(rank[e[0]], rank[e[1]])
	}
	return task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
}

func TestTaskHashEnumerationInvariance(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, tk := range fuzzSystem(r, 3) {
			h := TaskHash(tk)

			// Edge enumeration order is irrelevant.
			if got := TaskHash(rebuildShuffled(r, tk)); got != h {
				t.Fatalf("seed %d: hash changed under edge-list reordering", seed)
			}
			// Vertex names are irrelevant.
			renamed := task.MustNew("other", tk.G, tk.D, tk.T)
			if got := TaskHash(renamed); got != h {
				t.Fatalf("seed %d: hash depends on the task name", seed)
			}
			// Vertex enumeration order is irrelevant: relabeling the same
			// structure hashes identically.
			perm := r.Perm(tk.G.N())
			if got := TaskHash(relabel(tk, perm)); got != h {
				t.Fatalf("seed %d: hash changed under vertex reordering %v\ntask: %v", seed, perm, tk)
			}
			// Hashing is deterministic across calls.
			if got := TaskHash(tk); got != h {
				t.Fatalf("seed %d: hash not deterministic", seed)
			}
		}
	}
}

func TestTaskHashSingleFieldSensitivity(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		tk := fuzzSystem(r, 1)[0]
		h := TaskHash(tk)
		g := tk.G

		change := func(desc string, mutated *task.DAGTask) {
			t.Helper()
			if TaskHash(mutated) == h {
				t.Fatalf("seed %d: hash unchanged under %s", seed, desc)
			}
		}
		change("D+1", task.MustNew(tk.Name, g, tk.D+1, tk.T))
		change("T+1", task.MustNew(tk.Name, g, tk.D, tk.T+1))

		v := r.Intn(g.N())
		bumped, err := g.WithWCET(v, g.WCET(v)+1)
		if err != nil {
			t.Fatal(err)
		}
		change("WCET+1", task.MustNew(tk.Name, bumped, tk.D, tk.T))

		if edges := g.Edges(); len(edges) > 0 {
			drop := r.Intn(len(edges))
			b := dag.NewBuilder(g.N())
			for w := 0; w < g.N(); w++ {
				b.AddVertex(g.Vertex(w).Name, g.WCET(w))
			}
			for i, e := range edges {
				if i != drop {
					b.AddEdge(e[0], e[1])
				}
			}
			change("edge removal", task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T))
		}
		if u, w, ok := missingEdge(g); ok {
			b := dag.NewBuilder(g.N())
			for x := 0; x < g.N(); x++ {
				b.AddVertex(g.Vertex(x).Name, g.WCET(x))
			}
			for _, e := range g.Edges() {
				b.AddEdge(e[0], e[1])
			}
			b.AddEdge(u, w)
			change("edge addition", task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T))
		}

		b := dag.NewBuilder(g.N() + 1)
		for x := 0; x < g.N(); x++ {
			b.AddVertex(g.Vertex(x).Name, g.WCET(x))
		}
		b.AddJob(1)
		for _, e := range g.Edges() {
			b.AddEdge(e[0], e[1])
		}
		change("vertex addition", task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T))
	}
}

// missingEdge finds a forward pair (u, w), u < w, not already an edge —
// adding it keeps the graph acyclic.
func missingEdge(g *dag.DAG) (int, int, bool) {
	for u := 0; u < g.N(); u++ {
		for w := u + 1; w < g.N(); w++ {
			if !g.HasEdge(u, w) {
				return u, w, true
			}
		}
	}
	return 0, 0, false
}

// FuzzTaskHash drives three properties from fuzz-chosen seeds, reusing the
// system builder of FuzzVerifyAllocation: enumeration invariance, mutation
// sensitivity, and the cache-soundness property the hash exists for —
// MINPROCS of the canonical representative is an isomorphism invariant (raw
// MINPROCS is not: Graham list scheduling is list-order sensitive).
func FuzzTaskHash(f *testing.F) {
	for seed := uint32(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint32) {
		r := rand.New(rand.NewSource(int64(seed)))
		tk := fuzzSystem(r, 1)[0]
		h := TaskHash(tk)
		if TaskHash(rebuildShuffled(r, tk)) != h {
			t.Fatal("hash changed under edge-list reordering")
		}
		if TaskHash(relabel(tk, r.Perm(tk.G.N()))) != h {
			t.Fatal("hash changed under vertex reordering")
		}
		if got, want := minprocsOn(rebuildShuffled(r, tk), nil), minprocsOn(tk, nil); got != want {
			t.Fatalf("MINPROCS changed under edge-list reordering: %+v vs %+v", got, want)
		}
		if got, want := minprocsOn(canonicalize(relabel(tk, r.Perm(tk.G.N()))), nil), minprocsOn(canonicalize(tk), nil); got != want {
			t.Fatalf("canonical MINPROCS changed under vertex relabeling: %+v vs %+v", got, want)
		}
		if TaskHash(task.MustNew(tk.Name, tk.G, tk.D+1, tk.T)) == h {
			t.Fatal("hash unchanged under D+1")
		}
		v := r.Intn(tk.G.N())
		bumped, err := tk.G.WithWCET(v, tk.G.WCET(v)+1)
		if err != nil {
			t.Fatal(err)
		}
		if TaskHash(task.MustNew(tk.Name, bumped, tk.D, tk.T)) == h {
			t.Fatal("hash unchanged under WCET+1")
		}

		// Typed arm: the same enumeration freedoms must leave a typed
		// retyping's hash alone, and processor types must be part of the key
		// — an exchanged type labeling is a different task (its MINPROCS runs
		// on different budgets) and may not collide with the original.
		ttk := retypeRandomly(r, tk, 0.5)
		th := TaskHash(ttk)
		if TaskHash(rebuildShuffled(r, ttk)) != th {
			t.Fatal("typed hash changed under edge-list reordering")
		}
		if TaskHash(relabel(ttk, r.Perm(ttk.G.N()))) != th {
			t.Fatal("typed hash changed under vertex reordering")
		}
		// Exchanging the labels is only guaranteed to change the hash when it
		// changes the per-type vertex counts: with equal counts the swapped
		// graph can be isomorphic to the original (the fuzzer found such a
		// symmetric instance), and isomorphic tasks must collide.
		if c := padCounts(ttk.G.CountByType()); ttk.G.Typed() && c[0] != c[1] {
			if TaskHash(swapTaskTypes(ttk)) == th {
				t.Fatal("hash unchanged under type-label exchange")
			}
		}
	})
}

package core

import (
	"errors"
	"fmt"

	"fedsched/internal/dbf"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// This file is the incremental FEDCONS entry point: the warm-path composition
// of the (already memoized) Phase-1 outcome with an incremental Phase-2
// partition.State. A single low-density admission or removal leaves every
// Phase-1 decision untouched — high-density assignments, processor numbering
// and the shared-processor set are all functions of the high-density tasks
// only — so the new allocation is the old one with the low-density fields
// replaced by the State's replayed partition. The results are byte-identical
// to a from-scratch Schedule on the mutated system (pinned by the
// differential harnesses in internal/partition and internal/service); traced
// analyses never come here, so -trace/-explain output is produced by exactly
// the same batch code as before.

// AdmitLow returns the Allocation Schedule would produce for the system
// base system + tk appended, where tk is low-density and base is the current
// verified allocation whose Phase-2 partition st mirrors. st is mutated on
// success; on failure (the identical *FailureError Schedule would return) it
// is unchanged. base is not mutated: unchanged fields are shared.
func AdmitLow(base *Allocation, st *partition.State, tk *task.DAGTask) (*Allocation, error) {
	newIdx := systemSize(base) // tk's input index
	if err := st.Admit(tk.AsSporadic()); err != nil {
		return nil, liftPartitionError(err, base.Servers, base.LowIndices, newIdx, len(base.SharedProcs))
	}
	li := make([]int, len(base.LowIndices)+1)
	copy(li, base.LowIndices)
	li[len(li)-1] = newIdx
	return &Allocation{
		M:           base.M,
		High:        base.High,
		SharedProcs: base.SharedProcs,
		LowIndices:  li,
		Low:         st.Result(),
		Policy:      base.Policy,
		Servers:     base.Servers,
		MTypes:      base.MTypes,
	}, nil
}

// RemoveLow returns the Allocation Schedule would produce after deleting the
// low-density task at input index sysIdx from the base system (the remaining
// tasks keep their relative order, so indices above sysIdx shift down by
// one). Removal can fail — deadline-ordered bin packing is not monotone under
// removal — and then the returned error is the identical *FailureError
// Schedule would produce for the shrunken system, with st unchanged.
func RemoveLow(base *Allocation, st *partition.State, sysIdx int) (*Allocation, error) {
	pos := -1
	for i, li := range base.LowIndices {
		if li == sysIdx {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("fedcons: input index %d is not a low-density task of the base allocation", sysIdx)
	}
	// The shrunken system's low indices: drop position pos, shift the rest.
	// Schedule builds these slices by append, so an empty set is nil — keep
	// that encoding for byte-identical results.
	var li []int
	for i, v := range base.LowIndices {
		if i == pos {
			continue
		}
		if v > sysIdx {
			v--
		}
		li = append(li, v)
	}
	// The partitionable input is servers-first (see PartitionSystem), so the
	// low task at LowIndices position pos sits at combined input index
	// len(Servers)+pos.
	if err := st.Remove(len(base.Servers) + pos); err != nil {
		return nil, liftPartitionError(err, base.Servers, li, -1, len(base.SharedProcs))
	}
	var high []HighAssignment
	if len(base.High) > 0 {
		high = make([]HighAssignment, len(base.High))
		copy(high, base.High)
		for i := range high {
			if high[i].TaskIndex > sysIdx {
				high[i].TaskIndex--
			}
		}
	}
	servers := base.Servers
	if len(servers) > 0 {
		servers = make([]ServerSpec, len(base.Servers))
		copy(servers, base.Servers)
		for j := range servers {
			if servers[j].TaskIndex > sysIdx {
				servers[j].TaskIndex--
			}
		}
	}
	return &Allocation{
		M:           base.M,
		High:        high,
		SharedProcs: base.SharedProcs,
		LowIndices:  li,
		Low:         st.Result(),
		Policy:      base.Policy,
		Servers:     servers,
		MTypes:      base.MTypes,
	}, nil
}

// liftPartitionError wraps a State failure into the *FailureError Schedule
// builds for a Phase-2 rejection, mapping the partition's combined-input
// task index (servers first, then low tasks) through the mutated system's
// indices: a server position maps to its owner's input index, a low position
// through lowIndices. newIdx is the input index of a task being admitted
// (one past the combined input), or -1 for a removal.
func liftPartitionError(err error, servers []ServerSpec, lowIndices []int, newIdx, remaining int) error {
	fe := &FailureError{Phase: PhaseLowDensity, Remaining: remaining, Err: err}
	var pf *partition.FailureError
	if errors.As(err, &pf) {
		s := len(servers)
		switch {
		case pf.TaskIndex < s:
			fe.TaskIndex = servers[pf.TaskIndex].TaskIndex
		case pf.TaskIndex-s == len(lowIndices) && newIdx >= 0:
			fe.TaskIndex = newIdx
		default:
			fe.TaskIndex = lowIndices[pf.TaskIndex-s]
		}
		fe.TaskName = pf.TaskName
	}
	return fe
}

// VerifyDelta audits an allocation produced by AdmitLow/RemoveLow against the
// mutated system, assuming Verify(baseSys, m, base) == nil for the state it
// was derived from. It performs every structural check Verify performs —
// coverage, density classes, processor ownership, template shape and
// makespan-window bounds, partition coverage — in full, and elides only the
// two expensive semantic re-checks where the audited object is pointer-
// identical to its already-verified counterpart in base: a high-density
// template validation is skipped when the (task, template, processors) triple
// is unchanged, and a shared processor's exact EDF feasibility test is
// skipped when the identical task pointers sit on it in the identical order.
// Anything not provably unchanged is re-verified; callers needing an
// unconditional audit use Verify.
//
// Like Verify, VerifyDelta dispatches on the allocation's shape tag; the
// base and the new allocation must carry the same tag (a policy change is a
// full re-analysis, not a delta).
func VerifyDelta(sys task.System, m int, a *Allocation, baseSys task.System, base *Allocation) error {
	if a == nil || base == nil {
		return fmt.Errorf("fedcons: nil allocation")
	}
	if a.Policy != base.Policy {
		return fmt.Errorf("fedcons: delta audit across a policy change (%q → %q); use Verify", base.Policy, a.Policy)
	}
	switch a.Policy {
	case "":
		return verifyDeltaStrict(sys, m, a, baseSys, base)
	case PolicySemi, PolicyReservation:
		if a.M != m || base.M != m {
			return fmt.Errorf("fedcons: allocation for m=%d (base m=%d), want %d", a.M, base.M, m)
		}
		if len(a.High) != len(base.High) || len(a.Servers) != len(base.Servers) {
			return fmt.Errorf("fedcons: delta audit across a high-density change (%d+%d → %d+%d grants); use Verify",
				len(base.High), len(base.Servers), len(a.High), len(a.Servers))
		}
		return verifySplitBase(sys, m, a, baseSys, base)
	case PolicyTyped:
		// Typed allocations take the batch path (no warm deltas), so a typed
		// delta audit is simply the full audit.
		return verifyTyped(sys, m, a)
	default:
		return fmt.Errorf("fedcons: allocation tagged with unknown policy %q", a.Policy)
	}
}

// verifyDeltaStrict is the strict-shape delta auditor behind VerifyDelta.
func verifyDeltaStrict(sys task.System, m int, a *Allocation, baseSys task.System, base *Allocation) error {
	if len(a.Servers) > 0 {
		return fmt.Errorf("fedcons: a strict allocation must not carry reservation servers, found %d", len(a.Servers))
	}
	if len(a.MTypes) > 0 {
		return fmt.Errorf("fedcons: a strict allocation must not carry per-type processor budgets")
	}
	if a.M != m || base.M != m {
		return fmt.Errorf("fedcons: allocation for m=%d (base m=%d), want %d", a.M, base.M, m)
	}
	if len(a.High) != len(base.High) {
		return fmt.Errorf("fedcons: delta audit across a high-density change (%d → %d tasks); use Verify", len(base.High), len(a.High))
	}
	owned := make([]int, m) // 0 = unused, 1 = dedicated, 2 = shared
	covered := make([]bool, len(sys))

	for i, h := range a.High {
		if h.TaskIndex < 0 || h.TaskIndex >= len(sys) {
			return fmt.Errorf("fedcons: high assignment index %d out of range", h.TaskIndex)
		}
		tk := sys[h.TaskIndex]
		if covered[h.TaskIndex] {
			return fmt.Errorf("fedcons: task %d assigned twice", h.TaskIndex)
		}
		covered[h.TaskIndex] = true
		if !tk.HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is low-density but got dedicated processors", h.TaskIndex, tk.Density())
		}
		if len(h.Procs) == 0 {
			return fmt.Errorf("fedcons: task %d granted zero processors", h.TaskIndex)
		}
		for _, p := range h.Procs {
			if p < 0 || p >= m {
				return fmt.Errorf("fedcons: processor %d out of range", p)
			}
			if owned[p] != 0 {
				return fmt.Errorf("fedcons: processor %d claimed twice", p)
			}
			owned[p] = 1
		}
		if h.Template == nil {
			return fmt.Errorf("fedcons: task %d has no template schedule", h.TaskIndex)
		}
		if h.Template.M != len(h.Procs) {
			return fmt.Errorf("fedcons: task %d template uses %d processors, granted %d", h.TaskIndex, h.Template.M, len(h.Procs))
		}
		b := base.High[i]
		unchanged := h.Template == b.Template && tk == baseSys[b.TaskIndex] && equalInts(h.Procs, b.Procs)
		if !unchanged {
			if err := h.Template.Validate(tk.G); err != nil {
				return fmt.Errorf("fedcons: task %d template invalid: %w", h.TaskIndex, err)
			}
		}
		if w := window(tk); h.Template.Makespan > w {
			return fmt.Errorf("fedcons: task %d template makespan %d exceeds window min(D,T)=%d", h.TaskIndex, h.Template.Makespan, w)
		}
	}

	for _, p := range a.SharedProcs {
		if p < 0 || p >= m {
			return fmt.Errorf("fedcons: shared processor %d out of range", p)
		}
		if owned[p] != 0 {
			return fmt.Errorf("fedcons: shared processor %d also dedicated", p)
		}
		owned[p] = 2
	}

	for _, i := range a.LowIndices {
		if i < 0 || i >= len(sys) {
			return fmt.Errorf("fedcons: low index %d out of range", i)
		}
		if covered[i] {
			return fmt.Errorf("fedcons: task %d assigned twice", i)
		}
		covered[i] = true
		if sys[i].HighDensity() {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) is high-density but was partitioned", i, sys[i].Density())
		}
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("fedcons: task %d unassigned", i)
		}
	}

	if a.Low == nil {
		return fmt.Errorf("fedcons: nil partition result")
	}
	if len(a.Low.Assignment) != len(a.SharedProcs) {
		return fmt.Errorf("fedcons: partition: result covers %d processors, want %d", len(a.Low.Assignment), len(a.SharedProcs))
	}
	seen := make([]bool, len(a.LowIndices))
	sameShared := base.Low != nil && len(base.Low.Assignment) == len(a.Low.Assignment) && equalInts(a.SharedProcs, base.SharedProcs)
	for k := range a.Low.Assignment {
		for _, pos := range a.Low.Assignment[k] {
			if pos < 0 || pos >= len(a.LowIndices) {
				return fmt.Errorf("fedcons: partition: index %d out of range", pos)
			}
			if seen[pos] {
				return fmt.Errorf("fedcons: partition: task %d assigned twice", pos)
			}
			seen[pos] = true
		}
		if sameShared && sameProcTasks(sys, a, baseSys, base, k) {
			continue // identical already-audited task set on this processor
		}
		set := make([]task.Sporadic, 0, len(a.Low.Assignment[k]))
		for _, pos := range a.Low.Assignment[k] {
			set = append(set, sys[a.LowIndices[pos]].AsSporadic())
		}
		if !dbf.ExactFeasible(set) {
			return fmt.Errorf("fedcons: partition: processor %d not EDF-schedulable: %v", k, set)
		}
	}
	for pos, ok := range seen {
		if !ok {
			return fmt.Errorf("fedcons: partition: task %d unassigned", pos)
		}
	}
	return nil
}

// sameProcTasks reports whether shared processor k carries pointer-identical
// tasks, in identical order, in a and base — the condition under which base's
// exact-EDF audit of that processor transfers to a.
func sameProcTasks(sys task.System, a *Allocation, baseSys task.System, base *Allocation, k int) bool {
	ap, bp := a.Low.Assignment[k], base.Low.Assignment[k]
	if len(ap) != len(bp) {
		return false
	}
	for j := range ap {
		if sys[a.LowIndices[ap[j]]] != baseSys[base.LowIndices[bp[j]]] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

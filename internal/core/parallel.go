package core

import (
	"runtime"
	"sync"

	"fedsched/internal/listsched"
	"fedsched/internal/task"
)

// Phase-1 parallel prefetch.
//
// MINPROCS analyses of distinct high-density tasks are independent: each is a
// pure function of one task's DAG and the LS priority. What couples them in
// Fig. 2 is only the m_r bookkeeping — how many processors remain when task i
// is sized — which affects where the scan is cut off, never which schedule a
// given μ produces. The engine therefore splits the work:
//
//  1. Workers run the μ scan of every high-density task concurrently with an
//     unbounded budget (the scan self-caps at the DAG width, where success is
//     guaranteed whenever len ≤ min(D,T)), memoizing each listsched.Run
//     result by μ.
//  2. The ordinary sequential merge loop in Schedule re-runs the exact Fig. 2
//     logic — including the m_r-bounded cutoff and every decision-trace span
//     — but draws LS schedules from the memo instead of recomputing them.
//
// Determinism argument: the merge loop is the same code as the sequential
// path; the only substitution is listsched.Run ↦ memo lookup, and
// listsched.Run is a pure deterministic function of (G, μ, priority), so the
// lookup returns the identical *Schedule the live call would have built. Any
// μ the memo does not cover (possible only if the merge loop's bounded scan
// diverges from the prefetch scan, which the fallback makes harmless rather
// than fatal) is recomputed live with the same pure function. Output is
// therefore byte-identical at every Par value — including `-trace` JSONL and
// `-explain` text — which parallel_test.go pins across a seed × worker-count
// matrix. Graham anomalies make this the only safe construction: reordering
// or re-cutting the scans themselves could change which μ wins.
//
// The speculative cost: a task whose scan the sequential path would have cut
// at m_r < width may be scanned further (its excess candidates are simply
// never replayed), and tasks after a Phase-1 failure are scanned even though
// the merge loop stops at the failure. Both waste only wall-clock on
// otherwise-idle cores, never change results.

// lsResult memoizes one listsched.Run outcome.
type lsResult struct {
	s   *listsched.Schedule
	err error
}

// phase1Prefetch runs the Phase-1 LS scans of sys's high-density tasks on a
// pool of min(opt.Par, #high-density) workers and returns a per-task-index
// memoized lsRunner (nil entries for low-density tasks). It returns nil —
// meaning "run everything live" — when opt.Par ≤ 1 or fewer than two tasks
// are high-density, where a pool could not help.
func phase1Prefetch(sys task.System, opt Options) []lsRunner {
	if opt.Par <= 1 {
		return nil
	}
	var high []int
	for i, tk := range sys {
		if tk.HighDensity() {
			high = append(high, i)
		}
	}
	if len(high) < 2 {
		return nil
	}
	workers := opt.Par
	if workers > len(high) {
		workers = len(high)
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}

	memos := make([]lsRunner, len(sys))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				memos[i] = prefetchTask(sys[i], opt)
			}
		}()
	}
	for _, i := range high {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return memos
}

// prefetchTask precomputes the LS runs the merge loop can request for one
// high-density task and wraps them as a memoized lsRunner with a live
// fallback.
func prefetchTask(tk *task.DAGTask, opt Options) lsRunner {
	memo := map[int]lsResult{}
	record := func(mu int) lsResult {
		s, err := listsched.Run(tk.G, mu, opt.Priority)
		memo[mu] = lsResult{s: s, err: err}
		return memo[mu]
	}
	if opt.Minprocs == Analytic {
		// One closed-form candidate; infeasible tasks need no LS run.
		if mu, reason := analyticMu(tk); reason == "" {
			record(mu)
		}
	} else if d := window(tk); tk.Len() <= d {
		// The Fig. 3 scan, budget-unbounded: it self-caps at the DAG width,
		// where LS achieves makespan len ≤ d, so termination is certain. The
		// merge loop replays a prefix of exactly this candidate sequence.
		for mu, w := scanStart(tk), tk.G.Width(); mu <= w; mu++ {
			r := record(mu)
			if r.err != nil || r.s.Makespan <= d {
				break
			}
		}
	}
	live := liveRunner(tk, opt.Priority)
	return func(mu int) (*listsched.Schedule, error) {
		if r, ok := memo[mu]; ok {
			return r.s, r.err
		}
		return live(mu) // pure function: identical to the memoized path
	}
}

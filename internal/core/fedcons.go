// Package core implements Algorithm FEDCONS (paper Fig. 2), the federated
// scheduling algorithm for constrained-deadline sporadic DAG task systems,
// together with its procedure MINPROCS (Fig. 3).
//
// FEDCONS(τ, m) runs in two phases:
//
//  1. Every high-density task τ_i (δ_i ≥ 1) is assigned the minimum number of
//     dedicated processors m_i on which Graham's List Scheduling produces a
//     template schedule σ_i with makespan ≤ D_i (procedure MINPROCS). The
//     template is retained: at run time, dag-jobs of τ_i are dispatched by
//     table lookup from σ_i, never by re-running LS (footnote 2: LS timing
//     anomalies). If the high-density tasks exhaust the platform, FAILURE.
//  2. The remaining low-density tasks are partitioned onto the remaining
//     processors by the Baruah–Fisher first-fit algorithm (package
//     partition); each shared processor runs preemptive uniprocessor EDF.
//
// Theorem 1: if an optimal federated scheduler can schedule τ on m speed-x
// processors, FEDCONS schedules τ on m speed-(3 − 1/m)·x processors.
package core

import (
	"errors"
	"fmt"

	"fedsched/internal/listsched"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// MinprocsMode selects how the per-task processor count of a high-density
// task is determined.
type MinprocsMode int

const (
	// LSScan is the paper's Fig. 3: try μ = ⌈δ_i⌉, ⌈δ_i⌉+1, …, m_r and
	// return the first μ for which the LS makespan is ≤ D_i. A linear scan
	// is required because LS makespan is not monotone in μ (Graham
	// anomalies); see the E9 experiment.
	LSScan MinprocsMode = iota
	// Analytic uses the closed form μ = ⌈(vol−len)/(D−len)⌉ derived from
	// Graham's bound (the constrained-deadline analogue of the Li et al.
	// assignment). Never smaller-capacity than needed, but may allocate
	// more processors than LSScan finds necessary — the E7 ablation.
	Analytic
)

// String names the mode.
func (m MinprocsMode) String() string {
	switch m {
	case LSScan:
		return "ls-scan"
	case Analytic:
		return "analytic"
	default:
		return fmt.Sprintf("MinprocsMode(%d)", int(m))
	}
}

// Options configures FEDCONS. The zero value is the paper's algorithm:
// MINPROCS by LS scan with insertion-order lists, first-fit DBF* partition.
type Options struct {
	// Minprocs selects the phase-1 sizing rule.
	Minprocs MinprocsMode
	// Priority is the LS list order (nil = insertion order).
	Priority listsched.Priority
	// Partition configures the phase-2 partitioner.
	Partition partition.Options
	// Trace, when non-nil, records the complete decision trace of a
	// Schedule call: per-task density classification, every μ candidate
	// MINPROCS tried with its LS makespan against the Lemma-1 bound, and
	// every Phase-2 fit probe with its DBF* inequality. The nil default
	// (obs.Noop) costs only pointer tests — the overhead guard in
	// trace_test.go pins that it allocates nothing extra.
	Trace *obs.Recorder
	// Par bounds the Phase-1 worker pool: when > 1, the MINPROCS list-
	// scheduling scans of the high-density tasks are precomputed across
	// min(Par, #high-density) goroutines before the (sequential) merge loop
	// runs. Because listsched.Run is a pure function of (G, μ, priority),
	// precomputing it never changes what the merge loop observes, so every
	// output — verdict, allocation, decision trace — is byte-identical at
	// any Par value; the differential matrix in parallel_test.go pins this.
	// 0 and 1 both mean fully sequential; negative values are rejected.
	Par int
	// Policy selects the admission strategy: "" (or "fedcons") runs the
	// paper's strict algorithm above; any other value must name a policy
	// registered with RegisterPolicy (e.g. "semi", "reservation", "typed"),
	// and Schedule dispatches to it. The strict path never consults the
	// registry, so the default output cannot be perturbed by registration.
	Policy string
	// MTypes gives the per-type processor budgets of a heterogeneous
	// platform (MTypes[s] processors of type s, Σ MTypes = m) for the
	// "typed" policy. Empty means all m processors are the default type 0;
	// policies other than "typed" ignore it.
	MTypes []int
}

// HighAssignment is the phase-1 outcome for one high-density task.
type HighAssignment struct {
	// TaskIndex is the index of the task in the input system.
	TaskIndex int
	// Procs are the global processor ids granted exclusively to the task.
	Procs []int
	// Template is the schedule σ_i of one dag-job on len(Procs) processors;
	// Template processor p corresponds to global processor Procs[p].
	Template *listsched.Schedule
}

// Allocation is a successful FEDCONS run: a complete static mapping of the
// task system onto the platform.
type Allocation struct {
	// M is the platform size.
	M int
	// High holds one entry per high-density task, in input order.
	High []HighAssignment
	// SharedProcs are the global ids of the processors left to phase 2.
	SharedProcs []int
	// LowIndices are the input indices of the low-density tasks, in input
	// order; Low partition entries refer to positions in this slice.
	LowIndices []int
	// Low is the partition over SharedProcs: Low.Assignment[k] lists
	// positions placed on SharedProcs[k]. For the strict shape positions
	// index LowIndices; for a split shape (Policy non-empty) positions
	// < len(Servers) are servers and later positions index
	// LowIndices[pos−len(Servers)] (see PartitionSystem).
	Low *partition.Result

	// Policy tags the allocation's shape: "" is the strict FEDCONS shape
	// above; "semi" or "reservation" mark a split shape whose high-density
	// tasks are served by dedicated processors plus the reservation servers
	// in Servers. Verify dispatches on this tag. omitempty keeps the strict
	// JSON encoding byte-identical to the pre-policy format.
	Policy string `json:",omitempty"`
	// Servers are the reservation servers of a split-shape allocation,
	// placed by the Phase-2 partitioner ahead of the low-density tasks.
	Servers []ServerSpec `json:",omitempty"`
	// MTypes records the per-type processor budgets of a typed-shape
	// allocation (Policy "typed"): type s owns the global processor ids
	// [Σ_{t<s} MTypes[t], Σ_{t≤s} MTypes[t]). omitempty keeps every other
	// shape's JSON byte-identical to the pre-typed format.
	MTypes []int `json:",omitempty"`
}

// TasksOnShared returns the input-system indices assigned to shared
// processor k (an index into SharedProcs). On a split-shape allocation a
// server position maps to its owner's input index, so a high-density task
// appears once per server it has on the processor.
func (a *Allocation) TasksOnShared(k int) []int {
	out := make([]int, 0, len(a.Low.Assignment[k]))
	for _, pos := range a.Low.Assignment[k] {
		if pos < len(a.Servers) {
			out = append(out, a.Servers[pos].TaskIndex)
			continue
		}
		out = append(out, a.LowIndices[pos-len(a.Servers)])
	}
	return out
}

// ProcessorsUsed returns how many processors are dedicated to high-density
// tasks and how many are shared.
func (a *Allocation) ProcessorsUsed() (dedicated, shared int) {
	for _, h := range a.High {
		dedicated += len(h.Procs)
	}
	return dedicated, len(a.SharedProcs)
}

// FailurePhase identifies where FEDCONS gave up.
type FailurePhase int

const (
	// PhaseHighDensity: MINPROCS needed more processors than remained
	// (Fig. 2 line 4), or a high-density task cannot meet its deadline on
	// any number of processors (len_i > D_i).
	PhaseHighDensity FailurePhase = iota
	// PhaseLowDensity: PARTITION returned FAILURE (Fig. 2 line 7).
	PhaseLowDensity
)

// String names the phase.
func (p FailurePhase) String() string {
	switch p {
	case PhaseHighDensity:
		return "high-density"
	case PhaseLowDensity:
		return "low-density"
	default:
		return fmt.Sprintf("FailurePhase(%d)", int(p))
	}
}

// FailureError reports an unschedulable verdict with its cause.
type FailureError struct {
	Phase     FailurePhase
	TaskIndex int    // input index of the task that could not be placed
	TaskName  string // its name
	Remaining int    // processors remaining when the failure occurred
	Err       error  // underlying error (phase 2 only)
}

func (e *FailureError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("fedcons: FAILURE in %v phase: task %d (%q), %d processors remaining: %v",
			e.Phase, e.TaskIndex, e.TaskName, e.Remaining, e.Err)
	}
	return fmt.Sprintf("fedcons: FAILURE in %v phase: task %d (%q) needs more than the %d remaining processors",
		e.Phase, e.TaskIndex, e.TaskName, e.Remaining)
}

// Unwrap exposes the phase-2 cause.
func (e *FailureError) Unwrap() error { return e.Err }

// window returns the scheduling window of a dag-job on dedicated
// processors: min(D_i, T_i). For the paper's constrained-deadline setting
// this is simply D_i; using the min additionally makes the first phase
// sound for arbitrary-deadline tasks (D_i > T_i), where the template must
// also vacate the processor group before the next dag-job can arrive —
// the conservative handling of the extension the paper poses as future
// work (Section V).
func window(tk *task.DAGTask) Time {
	if tk.T < tk.D {
		return tk.T
	}
	return tk.D
}

// lsRunner produces the LS schedule of one task's DAG on mu processors. The
// sequential path runs listsched.Run live; the parallel engine substitutes a
// memo populated by the Phase-1 worker pool (see phase1Prefetch). Since
// listsched.Run is a pure deterministic function of (G, mu, priority), the
// substitution is observationally invisible.
type lsRunner func(mu int) (*listsched.Schedule, error)

// liveRunner is the default lsRunner: run list scheduling on demand.
func liveRunner(tk *task.DAGTask, prio listsched.Priority) lsRunner {
	return func(mu int) (*listsched.Schedule, error) {
		return listsched.Run(tk.G, mu, prio)
	}
}

// scanStart returns the first μ candidate of the Fig. 3 scan: max(⌈δ_i⌉, 1).
func scanStart(tk *task.DAGTask) int {
	start := ceilDensity(tk)
	if start < 1 {
		start = 1
	}
	return start
}

// Minprocs implements procedure MINPROCS(τ_i, m_r) of Fig. 3: the smallest
// μ ∈ [⌈δ_i⌉, mr] for which LS schedules G_i with makespan ≤ min(D_i, T_i),
// together with the witness schedule. For constrained deadlines the bound is
// exactly the paper's D_i; see window for the arbitrary-deadline case. ok is
// false when no such μ exists (the paper's ∞ return). prio selects the LS
// list order (nil = insertion order).
func Minprocs(tk *task.DAGTask, mr int, prio listsched.Priority) (mu int, tmpl *listsched.Schedule, ok bool) {
	return MinprocsTrace(tk, mr, prio, nil)
}

// MinprocsTrace is Minprocs with an optional decision-trace span: when sp is
// non-nil it records the scan window (scan_start, width, limit, remaining)
// and one "mu" child per candidate tried, carrying the LS makespan and the
// Lemma-1 bound len + (vol − len)/μ. A nil sp skips every trace computation.
func MinprocsTrace(tk *task.DAGTask, mr int, prio listsched.Priority, sp *obs.Span) (mu int, tmpl *listsched.Schedule, ok bool) {
	return minprocsTrace(tk, mr, sp, liveRunner(tk, prio))
}

// minprocsTrace is the scan body behind MinprocsTrace, with list scheduling
// abstracted behind ls so the parallel engine can replay precomputed runs.
func minprocsTrace(tk *task.DAGTask, mr int, sp *obs.Span, ls lsRunner) (mu int, tmpl *listsched.Schedule, ok bool) {
	d := window(tk)
	if tk.Len() > d {
		sp.Str("reason", "critical-path-exceeds-window")
		return 0, nil, false // no processor count can beat the critical path
	}
	start := scanStart(tk)
	// Any set of simultaneously-running jobs is an antichain of G, so on
	// Width(G) processors a work-conserving scheduler never delays an
	// available job and the LS makespan equals len(G) ≤ d exactly. Scanning
	// past the width is therefore pointless: cap the scan there (and since
	// len ≤ d, the scan is guaranteed to succeed by μ = width if the budget
	// allows it).
	limit := mr
	if w := tk.G.Width(); w < limit {
		limit = w
	}
	if sp != nil {
		sp.Int("scan_start", int64(start)).Int("width", int64(tk.G.Width())).
			Int("limit", int64(limit)).Int("remaining", int64(mr))
	}
	for mu = start; mu <= limit; mu++ {
		s, err := ls(mu)
		if err != nil {
			return 0, nil, false
		}
		if sp != nil {
			sp.Child("mu").Int("mu", int64(mu)).Int("makespan", int64(s.Makespan)).
				Float("lemma1_bound", listsched.GrahamBound(tk.G, mu)).
				Bool("ok", s.Makespan <= d).Finish()
		}
		if s.Makespan <= d {
			return mu, s, true
		}
	}
	sp.Str("reason", "scan-exhausted")
	return 0, nil, false
}

// MinprocsAnalytic sizes a high-density task by Graham's bound instead of
// searching: the smallest μ with len + (vol − len)/μ ≤ D (where D is the
// min(D_i, T_i) window), i.e. μ = ⌈(vol − len)/(D − len)⌉ (and 1 when
// vol ≤ D). The witness schedule is still built with LS, whose bound
// guarantees the deadline. ok is false when len_i > D, or len_i == D with
// parallel slack remaining, or μ exceeds mr.
func MinprocsAnalytic(tk *task.DAGTask, mr int, prio listsched.Priority) (mu int, tmpl *listsched.Schedule, ok bool) {
	return MinprocsAnalyticTrace(tk, mr, prio, nil)
}

// MinprocsAnalyticTrace is MinprocsAnalytic with an optional decision-trace
// span; the single closed-form candidate is recorded as one "mu" child,
// mirroring the LS-scan trace shape.
func MinprocsAnalyticTrace(tk *task.DAGTask, mr int, prio listsched.Priority, sp *obs.Span) (mu int, tmpl *listsched.Schedule, ok bool) {
	return minprocsAnalyticTrace(tk, mr, sp, liveRunner(tk, prio))
}

// analyticMu returns the closed-form Graham-bound processor count for tk, or
// an infeasibility reason (the span attribute value MinprocsAnalyticTrace
// records) when the bound cannot certify any count.
func analyticMu(tk *task.DAGTask) (mu int, reason string) {
	vol, l, d := tk.Volume(), tk.Len(), window(tk)
	switch {
	case l > d:
		return 0, "critical-path-exceeds-window"
	case vol <= d:
		mu = 1
	case l == d:
		return 0, "no-slack-for-graham-bound" // bound needs (vol−len)/(D−len) with D > len
	default:
		mu = int((vol - l + (d - l) - 1) / (d - l))
	}
	if mu < 1 {
		mu = 1
	}
	return mu, ""
}

// minprocsAnalyticTrace is the body behind MinprocsAnalyticTrace, with list
// scheduling abstracted behind ls (see minprocsTrace).
func minprocsAnalyticTrace(tk *task.DAGTask, mr int, sp *obs.Span, ls lsRunner) (mu int, tmpl *listsched.Schedule, ok bool) {
	mu, reason := analyticMu(tk)
	if reason != "" {
		sp.Str("reason", reason)
		return 0, nil, false
	}
	d := window(tk)
	if sp != nil {
		sp.Int("remaining", int64(mr))
	}
	if mu > mr {
		sp.Str("reason", "analytic-mu-exceeds-remaining")
		return 0, nil, false
	}
	s, err := ls(mu)
	if err != nil || s.Makespan > d {
		// Graham's bound makes the deadline certain; reaching here would
		// mean a bug in LS, so surface it as infeasible rather than panic.
		return 0, nil, false
	}
	if sp != nil {
		sp.Child("mu").Int("mu", int64(mu)).Int("makespan", int64(s.Makespan)).
			Float("lemma1_bound", listsched.GrahamBound(tk.G, mu)).
			Bool("ok", true).Finish()
	}
	return mu, s, true
}

// ceilDensity returns ⌈δ_i⌉ = ⌈vol / min(D,T)⌉ in exact integer arithmetic.
func ceilDensity(tk *task.DAGTask) int {
	den := tk.D
	if tk.T < den {
		den = tk.T
	}
	return int((tk.Volume() + den - 1) / den)
}

// Schedule runs the configured admission policy on (τ, m): the paper's
// strict FEDCONS when opt.Policy is "" or "fedcons", otherwise the
// registered policy of that name (with the strict scheduler passed as its
// fallback). On success it returns the allocation; on failure, an error —
// a *FailureError describing the phase and task responsible when the strict
// path decided.
func Schedule(sys task.System, m int, opt Options) (*Allocation, error) {
	if opt.Policy != "" && opt.Policy != PolicyFedcons {
		p, err := LookupPolicy(opt.Policy)
		if err != nil {
			return nil, err
		}
		return p.Schedule(sys, m, opt, scheduleFedcons)
	}
	return scheduleFedcons(sys, m, opt)
}

// scheduleFedcons is the strict FEDCONS(τ, m) of Fig. 2 — the body behind
// Schedule's default dispatch and the fallback handed to policies.
func scheduleFedcons(sys task.System, m int, opt Options) (*Allocation, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("fedcons: m must be ≥ 1, got %d", m)
	}
	if opt.Par < 0 {
		return nil, fmt.Errorf("fedcons: par must be ≥ 0, got %d", opt.Par)
	}

	alloc := &Allocation{M: m}
	nextProc := 0 // processors [0, nextProc) are spoken for
	mr := m       // m_r: remaining processors (Fig. 2 line 1)

	// With Par > 1 the expensive LS scans of Phase 1 are precomputed on a
	// worker pool; the merge loop below then replays them from the memo in
	// canonical (input) order, so every decision — and every trace byte —
	// is made by exactly the same code as the sequential path.
	memos := phase1Prefetch(sys, opt)
	runnerFor := func(i int, tk *task.DAGTask) lsRunner {
		if memos != nil && memos[i] != nil {
			return memos[i]
		}
		return liveRunner(tk, opt.Priority)
	}
	minprocs := minprocsTrace
	if opt.Minprocs == Analytic {
		minprocs = minprocsAnalyticTrace
	}

	root := opt.Trace.Start("fedcons")
	if root != nil {
		root.Int("m", int64(m)).Int("tasks", int64(len(sys))).
			Str("minprocs", opt.Minprocs.String())
	}

	// Phase 1: size and place each high-density task (Fig. 2 lines 2–6).
	phase1 := root.Child("phase1")
	var low task.System
	for i, tk := range sys {
		var tsp *obs.Span
		if phase1 != nil {
			vol, l, d := tk.Volume(), tk.Len(), window(tk)
			tsp = phase1.Child("task").Str("task", tk.Name).Int("index", int64(i)).
				Int("vol", int64(vol)).Int("len", int64(l)).Int("window", int64(d)).
				Float("density", float64(vol)/float64(d)).Bool("high", tk.HighDensity())
		}
		if !tk.HighDensity() {
			tsp.Finish()
			low = append(low, tk)
			alloc.LowIndices = append(alloc.LowIndices, i)
			continue
		}
		mi, tmpl, ok := minprocs(tk, mr, tsp, runnerFor(i, tk))
		if !ok {
			tsp.Bool("failed", true).Finish()
			phase1.Finish()
			root.Bool("schedulable", false).Str("phase", PhaseHighDensity.String()).Finish()
			return nil, &FailureError{Phase: PhaseHighDensity, TaskIndex: i, TaskName: tk.Name, Remaining: mr}
		}
		tsp.Int("mu", int64(mi)).Finish()
		procs := make([]int, mi)
		for p := range procs {
			procs[p] = nextProc
			nextProc++
		}
		alloc.High = append(alloc.High, HighAssignment{TaskIndex: i, Procs: procs, Template: tmpl})
		mr -= mi
	}
	phase1.Int("dedicated", int64(nextProc)).Int("remaining", int64(mr)).Finish()

	// Phase 2: partition the low-density tasks (Fig. 2 line 7).
	for p := 0; p < mr; p++ {
		alloc.SharedProcs = append(alloc.SharedProcs, nextProc+p)
	}
	phase2 := root.Child("phase2")
	if phase2 != nil {
		phase2.Int("procs", int64(mr)).Int("low", int64(len(low))).
			Str("heuristic", opt.Partition.Heuristic.String()).
			Str("test", opt.Partition.Test.String())
	}
	popt := opt.Partition
	popt.Trace = phase2
	res, err := partition.Partition(low, mr, popt)
	if err != nil {
		fe := &FailureError{Phase: PhaseLowDensity, Remaining: mr, Err: err}
		var pf *partition.FailureError
		if errors.As(err, &pf) {
			fe.TaskIndex = alloc.LowIndices[pf.TaskIndex]
			fe.TaskName = pf.TaskName
		}
		phase2.Bool("failed", true).Finish()
		root.Bool("schedulable", false).Str("phase", PhaseLowDensity.String()).Finish()
		return nil, fe
	}
	phase2.Finish()
	root.Bool("schedulable", true).Finish()
	alloc.Low = res
	return alloc, nil
}

// Schedulable is the boolean view of Schedule, for experiment harnesses.
func Schedulable(sys task.System, m int, opt Options) bool {
	_, err := Schedule(sys, m, opt)
	return err == nil
}

package core

import (
	"errors"
	"strings"
	"testing"

	"fedsched/internal/listsched"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

func TestEnumStrings(t *testing.T) {
	if LSScan.String() != "ls-scan" || Analytic.String() != "analytic" {
		t.Error("MinprocsMode strings wrong")
	}
	if !strings.Contains(MinprocsMode(99).String(), "99") {
		t.Error("unknown MinprocsMode should embed its value")
	}
	if PhaseHighDensity.String() != "high-density" || PhaseLowDensity.String() != "low-density" {
		t.Error("FailurePhase strings wrong")
	}
	if !strings.Contains(FailurePhase(7).String(), "7") {
		t.Error("unknown FailurePhase should embed its value")
	}
}

func TestFailureErrorMessages(t *testing.T) {
	// Phase 1 failure: no wrapped error.
	sys := task.System{highTask("huge", 8, 5, 10, 10)}
	_, err := Schedule(sys, 1, Options{})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("want FailureError, got %v", err)
	}
	msg := fe.Error()
	for _, want := range []string{"high-density", "huge", "FAILURE"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if fe.Unwrap() != nil {
		t.Error("phase-1 failure should not wrap an error")
	}
	// Phase 2 failure wraps the partition error.
	sys2 := task.System{lowTask("a", 4, 5, 100), lowTask("b", 4, 5, 100)}
	_, err2 := Schedule(sys2, 1, Options{})
	var fe2 *FailureError
	if !errors.As(err2, &fe2) {
		t.Fatalf("want FailureError, got %v", err2)
	}
	if fe2.Unwrap() == nil {
		t.Error("phase-2 failure should wrap the partition error")
	}
	var pf *partition.FailureError
	if !errors.As(err2, &pf) {
		t.Error("wrapped partition.FailureError not reachable via errors.As")
	}
	if !strings.Contains(fe2.Error(), "low-density") {
		t.Errorf("message: %s", fe2.Error())
	}
}

func TestVerifyMoreTamperings(t *testing.T) {
	sys := task.System{
		highTask("h", 4, 5, 10, 10),
		lowTask("l", 2, 8, 16),
	}
	alloc, err := Schedule(sys, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// High assignment index out of range.
	bad := cloneAlloc(alloc)
	bad.High[0].TaskIndex = 9
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted out-of-range high index")
	}

	// Duplicate task coverage (high task also listed as low).
	bad = cloneAlloc(alloc)
	bad.LowIndices = append(bad.LowIndices, 0)
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted duplicated task")
	}

	// Low-density task with dedicated processors.
	bad = cloneAlloc(alloc)
	bad.High[0].TaskIndex = 1
	bad.LowIndices = []int{0}
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted low-density task in a high assignment")
	}

	// Empty processor grant.
	bad = cloneAlloc(alloc)
	bad.High[0].Procs = nil
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted zero processors for a high task")
	}

	// Missing template.
	bad = cloneAlloc(alloc)
	bad.High[0].Template = nil
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted nil template")
	}

	// Processor out of range.
	bad = cloneAlloc(alloc)
	bad.High[0].Procs = []int{0, 99}
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted out-of-range processor")
	}

	// Shared processor out of range.
	bad = cloneAlloc(alloc)
	bad.SharedProcs = []int{-1}
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted negative shared processor")
	}

	// Low index out of range.
	bad = cloneAlloc(alloc)
	bad.LowIndices = []int{42}
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted out-of-range low index")
	}

	// Uncovered task.
	bad = cloneAlloc(alloc)
	bad.LowIndices = nil
	bad.Low = &partition.Result{Assignment: [][]int{{}}}
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted missing task coverage")
	}

	// Nil partition result.
	bad = cloneAlloc(alloc)
	bad.Low = nil
	if Verify(sys, 3, bad) == nil {
		t.Error("accepted nil partition")
	}
}

// cloneAlloc deep-copies an allocation — including templates and the
// partition — so mutating the clone cannot alias the original.
func cloneAlloc(a *Allocation) *Allocation {
	c := *a
	c.High = append([]HighAssignment(nil), a.High...)
	for i := range c.High {
		c.High[i].Procs = append([]int(nil), a.High[i].Procs...)
		if t := a.High[i].Template; t != nil {
			c.High[i].Template = &listsched.Schedule{
				M:         t.M,
				MTypes:    append([]int(nil), t.MTypes...),
				Intervals: append([]listsched.Interval(nil), t.Intervals...),
				Makespan:  t.Makespan,
			}
		}
	}
	c.SharedProcs = append([]int(nil), a.SharedProcs...)
	c.LowIndices = append([]int(nil), a.LowIndices...)
	c.Servers = append([]ServerSpec(nil), a.Servers...)
	c.MTypes = append([]int(nil), a.MTypes...)
	if a.Low != nil {
		low := &partition.Result{Assignment: make([][]int, len(a.Low.Assignment))}
		for k, procTasks := range a.Low.Assignment {
			low.Assignment[k] = append([]int(nil), procTasks...)
		}
		c.Low = low
	}
	return &c
}

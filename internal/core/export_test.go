package core

import (
	"fmt"
	"math/rand"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// fuzzSystem builds a small random constrained-deadline system, biased so
// the first task is often high-density (ensuring dedicated-group mutations
// have something to corrupt). It lives here, in package core, because the
// in-package property tests (hash, metamorphic) share it with the external
// fuzz harness below.
func fuzzSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(6)
		if i == 0 && r.Intn(2) == 0 {
			nv = 4 + r.Intn(5)
		}
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(task.Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		var d task.Time
		if i == 0 {
			d = g.LongestChain() + task.Time(r.Intn(3))
		} else {
			d = g.LongestChain() + task.Time(r.Intn(int(2*g.Volume())))
		}
		t := d + task.Time(r.Intn(40))
		sys = append(sys, task.MustNew(fmt.Sprintf("t%d", i), g, d, t))
	}
	return sys
}

// Exported aliases for the external fuzz harness (package core_test in
// fuzz_test.go), which imports the policy packages to obtain split-shape
// allocations and therefore cannot live in package core (that would close an
// import cycle through internal/semifed and internal/reservation).
var (
	FuzzSystemForTest = fuzzSystem
	CloneAllocForTest = cloneAlloc
)

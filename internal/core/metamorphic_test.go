package core

import (
	"math/rand"
	"testing"

	"fedsched/internal/listsched"
	"fedsched/internal/task"
)

// minprocsOutcome flattens a Minprocs run into the comparable triple the
// metamorphic tests pin: feasibility, μ*, and the witness makespan.
type minprocsOutcome struct {
	ok       bool
	mu       int
	makespan task.Time
}

func minprocsOn(tk *task.DAGTask, prio listsched.Priority) minprocsOutcome {
	mu, tmpl, ok := Minprocs(tk, tk.G.Width(), prio)
	out := minprocsOutcome{ok: ok, mu: mu}
	if tmpl != nil {
		out.makespan = tmpl.Makespan
	}
	return out
}

// canonicalize relabels tk into its canonical vertex enumeration — the
// representative AppendCanonical encodes and TaskHash fingerprints.
func canonicalize(tk *task.DAGTask) *task.DAGTask {
	return relabel(tk, tk.CanonicalOrder())
}

// TestMinprocsEdgeEnumerationInvariance: the order a wire file lists its
// edges in carries no scheduling meaning, so MINPROCS (feasibility, μ*, and
// the witness makespan) must not change when the edge list is shuffled. This
// is the semantic counterpart of the TaskHash enumeration-invariance test:
// the cache key and the cached analysis must be blind to the same freedoms.
func TestMinprocsEdgeEnumerationInvariance(t *testing.T) {
	prios := map[string]listsched.Priority{
		"insertion":    nil,
		"longest-path": listsched.LongestPathFirst,
		"largest-wcet": listsched.LargestWCETFirst,
	}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, tk := range fuzzSystem(r, 3) {
			shuffled := rebuildShuffled(r, tk)
			for name, prio := range prios {
				want, got := minprocsOn(tk, prio), minprocsOn(shuffled, prio)
				if got != want {
					t.Fatalf("seed %d prio %s: MINPROCS changed under edge-list reordering: %+v vs %+v",
						seed, name, want, got)
				}
			}
		}
	}
}

// TestMinprocsCanonicalRepresentativeInvariance: raw MINPROCS is NOT
// invariant under vertex relabeling — Graham list scheduling is sensitive to
// list order (jobs {2,2,3} on 2 processors finish at 5 or 4 depending on
// which order the ties arrive), and that anomaly is exactly why the analysis
// cache must key on a canonical representative. The metamorphic property
// that IS required: relabeling a task arbitrarily and then canonicalizing
// recovers the same labeled structure, so MINPROCS of the canonical
// representative is a true isomorphism invariant. This is the soundness
// argument for serving a cache hit computed from a differently-labeled
// submission of the same DAG.
func TestMinprocsCanonicalRepresentativeInvariance(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, tk := range fuzzSystem(r, 3) {
			canon := canonicalize(tk)
			for trial := 0; trial < 4; trial++ {
				perm := r.Perm(tk.G.N())
				recanon := canonicalize(relabel(tk, perm))
				if !task.SameAnalysisInput(canon, recanon) {
					t.Fatalf("seed %d perm %v: canonical representatives differ as labeled structures",
						seed, perm)
				}
				for _, prio := range []listsched.Priority{nil, listsched.LongestPathFirst, listsched.LargestWCETFirst} {
					want, got := minprocsOn(canon, prio), minprocsOn(recanon, prio)
					if got != want {
						t.Fatalf("seed %d perm %v: canonical MINPROCS diverged: %+v vs %+v",
							seed, perm, want, got)
					}
				}
			}
		}
	}
}

// TestMinprocsAnalyticRelabelingInvariance: the analytic sizing rule depends
// only on (vol, len, window), all isomorphism invariants, so unlike the LS
// scan it must be invariant under raw relabeling with no canonicalization
// step (the witness makespan may differ; μ and feasibility may not).
func TestMinprocsAnalyticRelabelingInvariance(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, tk := range fuzzSystem(r, 3) {
			mu, _, ok := MinprocsAnalytic(tk, tk.G.Width(), nil)
			rl := relabel(tk, r.Perm(tk.G.N()))
			rmu, _, rok := MinprocsAnalytic(rl, rl.G.Width(), nil)
			if mu != rmu || ok != rok {
				t.Fatalf("seed %d: analytic μ changed under relabeling: (%d,%v) vs (%d,%v)",
					seed, mu, ok, rmu, rok)
			}
		}
	}
}

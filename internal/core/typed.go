package core

import (
	"fmt"
	"strings"

	"fedsched/internal/listsched"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// This file is the core analysis layer of the typed/heterogeneous processor
// model (after Han et al.'s typed federated scheduling): the typed MINPROCS
// sizing procedure the "typed" policy (internal/typedfed) runs per dedicated
// task, and the typed-shape arm of Verify. Platform shape: MTypes[s]
// processors of type s, numbered type-major — type s owns the global ids
// [Σ_{t<s} MTypes[t], Σ_{t≤s} MTypes[t]).

// FormatMTypes renders per-type budgets in the -m-types flag vocabulary:
// "a:4,b:2" (type indices 0,1,… spelled a,b,…; indices past 'z' fall back to
// "t26:" and up). Used by banners, traces and error messages.
func FormatMTypes(mtypes []int) string {
	var sb strings.Builder
	for s, m := range mtypes {
		if s > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(TypeName(s))
		fmt.Fprintf(&sb, ":%d", m)
	}
	return sb.String()
}

// TypeName spells processor type index s as a letter ("a" for 0, "b" for 1,
// …), falling back to "t<index>" past "z".
func TypeName(s int) string {
	if s >= 0 && s < 26 {
		return string(rune('a' + s))
	}
	return fmt.Sprintf("t%d", s)
}

// TypedEligible reports whether the typed policy must grant tk dedicated
// processors: high-density tasks (as in strict FEDCONS) and any task whose
// vertices span more than one processor type — a mixed-type task cannot be
// collapsed to a sporadic task on a single shared processor, so Phase 2
// cannot place it regardless of density.
func TypedEligible(tk *task.DAGTask) bool {
	if tk.HighDensity() {
		return true
	}
	_, uniform := tk.G.UniformType()
	return !uniform
}

// MinprocsTyped is the typed analogue of procedure MINPROCS: the smallest
// (by the greedy residual order below) per-type budget vector μ, with
// μ[s] ≤ avail[s], for which typed list scheduling of tk's dag-job finishes
// within the scheduling window min(D, T). The scan starts each type at its
// density floor ⌈vol_s/window⌉ (≥ 1 wherever the task has type-s work) and,
// while the witness makespan overshoots, grants one more processor to the
// type with the largest per-processor residual (vol_s − len_s(λ))/μ_s —
// the term of the typed Graham bound that shrinks. Budgets are capped at
// the task's per-type vertex count: at that cap no type-s job ever waits,
// so the makespan has collapsed to len(G), which fits the window whenever
// anything does.
//
// The returned vector is padded to len(avail) entries and is also recorded
// on the witness template (Template.MTypes). ok is false when no vector
// within avail suffices. When sp is non-nil the scan window and every
// candidate vector are traced, mirroring MinprocsTrace.
func MinprocsTyped(tk *task.DAGTask, avail []int, prio listsched.Priority, sp *obs.Span) (mu []int, tmpl *listsched.Schedule, ok bool) {
	ntypes := len(avail)
	g := tk.G
	if g.NumTypes() > ntypes {
		sp.Str("reason", "task-types-exceed-platform")
		return nil, nil, false
	}
	d := window(tk)
	if tk.Len() > d {
		sp.Str("reason", "critical-path-exceeds-window")
		return nil, nil, false
	}
	counts := pad(g.CountByType(), ntypes)
	vols := padTime(g.VolumeByType(), ntypes)
	lens := padTime(listsched.ChainWorkByType(g, g.NumTypes()), ntypes)

	mu = make([]int, ntypes)
	caps := make([]int, ntypes)
	total := 0
	for s := 0; s < ntypes; s++ {
		if counts[s] == 0 {
			continue
		}
		caps[s] = counts[s]
		if avail[s] < caps[s] {
			caps[s] = avail[s]
		}
		// Density floor: vol_s work must fit in the window on μ_s type-s
		// processors, so μ_s·window ≥ vol_s is necessary.
		mu[s] = int((vols[s] + d - 1) / d)
		if mu[s] < 1 {
			mu[s] = 1
		}
		if mu[s] > avail[s] {
			sp.Str("reason", "type-density-exceeds-remaining")
			return nil, nil, false
		}
		total += mu[s]
	}
	if sp != nil {
		sp.Str("scan_start", FormatMTypes(mu)).Str("avail", FormatMTypes(avail))
	}
	for {
		s, err := listsched.RunTyped(g, mu, prio)
		if err != nil {
			return nil, nil, false
		}
		if sp != nil {
			sp.Child("mu").Str("mu", FormatMTypes(mu)).Int("mu_total", int64(total)).
				Int("makespan", int64(s.Makespan)).
				Float("typed_bound", listsched.TypedBound(g, mu)).
				Bool("ok", s.Makespan <= d).Finish()
		}
		if s.Makespan <= d {
			return mu, s, true
		}
		// Grant one more processor to the type with the largest residual
		// (vol_s − len_s)/μ_s among those below cap; exact comparison by
		// cross-multiplication, ties to the lowest type index.
		best := -1
		for s := 0; s < ntypes; s++ {
			if mu[s] >= caps[s] {
				continue
			}
			if best < 0 || (vols[s]-lens[s])*Time(mu[best]) > (vols[best]-lens[best])*Time(mu[s]) {
				best = s
			}
		}
		if best < 0 {
			sp.Str("reason", "scan-exhausted")
			return nil, nil, false
		}
		mu[best]++
		total++
	}
}

func pad(v []int, n int) []int {
	for len(v) < n {
		v = append(v, 0)
	}
	return v
}

func padTime(v []Time, n int) []Time {
	for len(v) < n {
		v = append(v, 0)
	}
	return v
}

// verifyTyped audits a typed-shape allocation (a.Policy "typed") from
// scratch: the per-type budgets must tile the platform; dedicated grants
// must be typed-eligible tasks with a valid typed template fitting the
// window, every template processor mapped to a same-type global processor;
// partitioned tasks must be low-density, uniformly typed, and placed on
// shared processors of their own type; and the partition must be exactly
// EDF-feasible per processor.
func verifyTyped(sys task.System, m int, a *Allocation) error {
	if len(a.Servers) > 0 {
		return fmt.Errorf("fedcons: a typed allocation must not carry reservation servers, found %d", len(a.Servers))
	}
	if a.M != m {
		return fmt.Errorf("fedcons: allocation for m=%d, want %d", a.M, m)
	}
	if len(a.MTypes) == 0 {
		return fmt.Errorf("fedcons: a typed allocation must declare per-type processor budgets")
	}
	total := 0
	for s, mt := range a.MTypes {
		if mt < 0 {
			return fmt.Errorf("fedcons: type %s has negative budget %d", TypeName(s), mt)
		}
		total += mt
	}
	if total != m {
		return fmt.Errorf("fedcons: per-type budgets %s sum to %d, platform has %d", FormatMTypes(a.MTypes), total, m)
	}
	base := listsched.TypedProcBase(a.MTypes)
	typeOfProc := func(p int) int {
		for s := range a.MTypes {
			if p < base[s+1] {
				return s
			}
		}
		return -1
	}

	owned := make([]int, m) // 0 = unused, 1 = dedicated, 2 = shared
	covered := make([]bool, len(sys))

	for _, h := range a.High {
		if h.TaskIndex < 0 || h.TaskIndex >= len(sys) {
			return fmt.Errorf("fedcons: high assignment index %d out of range", h.TaskIndex)
		}
		tk := sys[h.TaskIndex]
		if covered[h.TaskIndex] {
			return fmt.Errorf("fedcons: task %d assigned twice", h.TaskIndex)
		}
		covered[h.TaskIndex] = true
		if !TypedEligible(tk) {
			return fmt.Errorf("fedcons: task %d (δ=%.3f, uniformly typed) is partitionable but got dedicated processors", h.TaskIndex, tk.Density())
		}
		if len(h.Procs) == 0 {
			return fmt.Errorf("fedcons: task %d granted zero processors", h.TaskIndex)
		}
		if h.Template == nil {
			return fmt.Errorf("fedcons: task %d has no template schedule", h.TaskIndex)
		}
		if h.Template.M != len(h.Procs) {
			return fmt.Errorf("fedcons: task %d template uses %d processors, granted %d", h.TaskIndex, h.Template.M, len(h.Procs))
		}
		if len(h.Template.MTypes) != len(a.MTypes) {
			return fmt.Errorf("fedcons: task %d template declares %d processor types, platform has %d",
				h.TaskIndex, len(h.Template.MTypes), len(a.MTypes))
		}
		// Template.Validate also re-checks, per job, that its local processor
		// lies in the job's type block of Template.MTypes.
		if err := h.Template.Validate(tk.G); err != nil {
			return fmt.Errorf("fedcons: task %d template invalid: %w", h.TaskIndex, err)
		}
		if w := window(tk); h.Template.Makespan > w {
			return fmt.Errorf("fedcons: task %d template makespan %d exceeds window min(D,T)=%d", h.TaskIndex, h.Template.Makespan, w)
		}
		// The local→global processor mapping must preserve types: local
		// processor p (type-major within Template.MTypes) is global Procs[p].
		tmplBase := listsched.TypedProcBase(h.Template.MTypes)
		for p, gp := range h.Procs {
			if gp < 0 || gp >= m {
				return fmt.Errorf("fedcons: processor %d out of range", gp)
			}
			if owned[gp] != 0 {
				return fmt.Errorf("fedcons: processor %d claimed twice", gp)
			}
			owned[gp] = 1
			localType := 0
			for s := range h.Template.MTypes {
				if p < tmplBase[s+1] {
					localType = s
					break
				}
			}
			if gt := typeOfProc(gp); gt != localType {
				return fmt.Errorf("fedcons: task %d maps its type-%s template processor %d to global processor %d of type %s",
					h.TaskIndex, TypeName(localType), p, gp, TypeName(gt))
			}
		}
	}

	for _, p := range a.SharedProcs {
		if p < 0 || p >= m {
			return fmt.Errorf("fedcons: shared processor %d out of range", p)
		}
		if owned[p] != 0 {
			return fmt.Errorf("fedcons: shared processor %d also dedicated", p)
		}
		owned[p] = 2
	}

	low := make(task.System, 0, len(a.LowIndices))
	lowType := make([]int, 0, len(a.LowIndices))
	for _, i := range a.LowIndices {
		if i < 0 || i >= len(sys) {
			return fmt.Errorf("fedcons: low index %d out of range", i)
		}
		if covered[i] {
			return fmt.Errorf("fedcons: task %d assigned twice", i)
		}
		covered[i] = true
		if TypedEligible(sys[i]) {
			return fmt.Errorf("fedcons: task %d (δ=%.3f) requires dedicated processors but was partitioned", i, sys[i].Density())
		}
		t, _ := sys[i].G.UniformType()
		low = append(low, sys[i])
		lowType = append(lowType, t)
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("fedcons: task %d unassigned", i)
		}
	}

	if a.Low == nil {
		return fmt.Errorf("fedcons: nil partition result")
	}
	// Type correctness of the partition: a task may only share a processor
	// of its own type. EDF feasibility and coverage are partition.Verify's.
	if len(a.Low.Assignment) == len(a.SharedProcs) {
		for k, procID := range a.SharedProcs {
			pt := typeOfProc(procID)
			for _, pos := range a.Low.Assignment[k] {
				if pos < 0 || pos >= len(low) {
					continue // partition.Verify reports the range error
				}
				if lowType[pos] != pt {
					return fmt.Errorf("fedcons: task %d requires type-%s processors but shares processor %d of type %s",
						a.LowIndices[pos], TypeName(lowType[pos]), procID, TypeName(pt))
				}
			}
		}
	}
	if err := partition.Verify(low, len(a.SharedProcs), a.Low); err != nil {
		return fmt.Errorf("fedcons: %w", err)
	}
	return nil
}

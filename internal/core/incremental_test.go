package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// rebuildState mirrors the service layer's state reconstruction: the
// partition.State for alloc's Phase-2 outcome, built from the low-density
// subsystem in input order.
func rebuildState(t *testing.T, sys task.System, alloc *Allocation, opt Options) *partition.State {
	t.Helper()
	low := make(task.System, 0, len(alloc.LowIndices))
	for _, i := range alloc.LowIndices {
		low = append(low, sys[i])
	}
	st, err := partition.Rebuild(low, len(alloc.SharedProcs), alloc.Low, opt.Partition)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return st
}

// randIncLowTask draws strictly low-density singleton tasks (D > C, so
// δ < 1) sized so random admissions mix fits and rejections on a handful of
// shared processors.
func randIncLowTask(r *rand.Rand, name string) *task.DAGTask {
	c := Time(1 + r.Intn(6))
	d := c + 1 + Time(r.Intn(20))
	return lowTask(name, c, d, d+Time(r.Intn(20)))
}

// TestAdmitRemoveLowMatchesSchedule is the core-level differential: starting
// from a verified mixed-density allocation, every AdmitLow/RemoveLow outcome —
// the allocation on success, the *FailureError string on rejection — must be
// exactly what a from-scratch Schedule of the mutated system produces, and
// every successful delta must pass both VerifyDelta and the full Verify.
func TestAdmitRemoveLowMatchesSchedule(t *testing.T) {
	optsets := []Options{
		{},
		{Minprocs: Analytic},
		{Partition: partition.Options{Heuristic: partition.BestFit, Test: partition.ExactEDF}},
	}
	for seed := int64(0); seed < 10; seed++ {
		for oi, opt := range optsets {
			t.Run(fmt.Sprintf("seed=%d/opt=%d", seed, oi), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				m := 4 + r.Intn(5)
				sys := task.System{highTask("h0", 2, 4, 5, 6)}
				for i := 0; i < 3; i++ {
					sys = append(sys, randIncLowTask(r, fmt.Sprintf("base%d", i)))
				}
				alloc, err := Schedule(sys, m, opt)
				if err != nil {
					t.Skipf("base system unschedulable: %v", err)
				}
				st := rebuildState(t, sys, alloc, opt)
				next := 0
				for step := 0; step < 40; step++ {
					if len(alloc.LowIndices) == 0 || r.Float64() < 0.6 {
						tk := randIncLowTask(r, fmt.Sprintf("t%d", next))
						next++
						trial := append(sys.Clone(), tk)
						got, gotErr := AdmitLow(alloc, st, tk)
						want, wantErr := Schedule(trial, m, opt)
						if (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("step %d admit: incremental err %v, batch err %v", step, gotErr, wantErr)
						}
						if gotErr != nil {
							if gotErr.Error() != wantErr.Error() {
								t.Fatalf("step %d admit errors differ:\nincremental: %v\nbatch:       %v", step, gotErr, wantErr)
							}
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("step %d admit: allocations differ\nincremental: %+v\nbatch:       %+v", step, got, want)
						}
						if err := VerifyDelta(trial, m, got, sys, alloc); err != nil {
							t.Fatalf("step %d admit: delta audit failed: %v", step, err)
						}
						if err := Verify(trial, m, got); err != nil {
							t.Fatalf("step %d admit: full audit failed: %v", step, err)
						}
						sys, alloc = trial, got
					} else {
						sysIdx := alloc.LowIndices[r.Intn(len(alloc.LowIndices))]
						trial := append(append(task.System{}, sys[:sysIdx]...), sys[sysIdx+1:]...)
						got, gotErr := RemoveLow(alloc, st, sysIdx)
						want, wantErr := Schedule(trial, m, opt)
						if (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("step %d remove(%d): incremental err %v, batch err %v", step, sysIdx, gotErr, wantErr)
						}
						if gotErr != nil {
							if gotErr.Error() != wantErr.Error() {
								t.Fatalf("step %d remove errors differ:\nincremental: %v\nbatch:       %v", step, gotErr, wantErr)
							}
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("step %d remove: allocations differ\nincremental: %+v\nbatch:       %+v", step, got, want)
						}
						if err := VerifyDelta(trial, m, got, sys, alloc); err != nil {
							t.Fatalf("step %d remove: delta audit failed: %v", step, err)
						}
						sys, alloc = trial, got
					}
				}
			})
		}
	}
}

// TestRemoveLowRejectsNonLowIndex: asking to remove a high-density (or
// unknown) input index is a caller error, not a partition failure.
func TestRemoveLowRejectsNonLowIndex(t *testing.T) {
	sys := task.System{highTask("h", 2, 4, 5, 6), lowTask("l", 2, 8, 10)}
	alloc, err := Schedule(sys, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rebuildState(t, sys, alloc, Options{})
	if _, err := RemoveLow(alloc, st, 0); err == nil {
		t.Error("RemoveLow accepted the high-density task's index")
	}
	if _, err := RemoveLow(alloc, st, 99); err == nil {
		t.Error("RemoveLow accepted an out-of-range index")
	}
}

// TestVerifyDeltaCatchesCorruption corrupts genuine AdmitLow outputs one field
// at a time: the delta audit may elide re-checks only for provably unchanged
// objects, so every corruption — including ones whose expense the elision
// targets — must still be caught.
func TestVerifyDeltaCatchesCorruption(t *testing.T) {
	sys := task.System{
		highTask("h", 2, 4, 5, 6),
		lowTask("a", 2, 8, 10),
		lowTask("b", 3, 9, 12),
	}
	const m = 5
	base, err := Schedule(sys, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rebuildState(t, sys, base, Options{})
	tk := lowTask("c", 2, 10, 14)
	grown := append(sys.Clone(), tk)
	a, err := AdmitLow(base, st, tk)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDelta(grown, m, a, sys, base); err != nil {
		t.Fatalf("genuine delta rejected: %v", err)
	}

	corrupt := []struct {
		name string
		mut  func(bad *Allocation, badSys task.System)
	}{
		{"wrong-m", func(bad *Allocation, _ task.System) { bad.M = m + 1 }},
		{"duplicate-partition-slot", func(bad *Allocation, _ task.System) {
			bad.Low.Assignment[0] = append(bad.Low.Assignment[0], bad.Low.Assignment[0][0])
		}},
		{"dropped-partition-slot", func(bad *Allocation, _ task.System) {
			for k := range bad.Low.Assignment {
				if len(bad.Low.Assignment[k]) > 0 {
					bad.Low.Assignment[k] = bad.Low.Assignment[k][:len(bad.Low.Assignment[k])-1]
					return
				}
			}
		}},
		{"dedicated-proc-stolen", func(bad *Allocation, _ task.System) {
			bad.SharedProcs[0] = bad.High[0].Procs[0]
		}},
		{"template-makespan-lie", func(bad *Allocation, _ task.System) {
			bad.High[0].Template.Makespan = window(grown[bad.High[0].TaskIndex]) + 1
		}},
		{"low-task-swapped-heavier", func(_ *Allocation, badSys task.System) {
			// The installed partition was computed for the original task; the
			// swap breaks EDF feasibility on its processor. The task pointer
			// differs from base, so the elision must not transfer the audit.
			badSys[1] = lowTask("a", 7, 8, 8)
		}},
	}
	for _, tc := range corrupt {
		bad := cloneAlloc(a)
		badSys := append(task.System{}, grown...)
		tc.mut(bad, badSys)
		if err := VerifyDelta(badSys, m, bad, sys, base); err == nil {
			t.Errorf("%s: corruption passed the delta audit", tc.name)
		}
	}
}

// TestVerifyDeltaRefusesHighChange: a mutation that alters the high-density
// set is outside the delta audit's precondition and must be refused, not
// partially audited.
func TestVerifyDeltaRefusesHighChange(t *testing.T) {
	sys := task.System{highTask("h", 2, 4, 5, 6), lowTask("a", 2, 8, 10)}
	const m = 6
	base, err := Schedule(sys, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grown := append(sys.Clone(), highTask("h2", 2, 4, 5, 6))
	a, err := Schedule(grown, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDelta(grown, m, a, sys, base); err == nil {
		t.Error("delta audit accepted a high-density count change")
	}
	if _, err := RemoveLow(base, rebuildState(t, sys, base, Options{}), 0); err == nil {
		t.Error("RemoveLow accepted a high-density index")
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// fuzzSystem builds a small random constrained-deadline system, biased so
// the first task is often high-density (ensuring dedicated-group mutations
// have something to corrupt).
func fuzzSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(6)
		if i == 0 && r.Intn(2) == 0 {
			nv = 4 + r.Intn(5)
		}
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(task.Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		var d task.Time
		if i == 0 {
			d = g.LongestChain() + task.Time(r.Intn(3))
		} else {
			d = g.LongestChain() + task.Time(r.Intn(int(2*g.Volume())))
		}
		t := d + task.Time(r.Intn(40))
		sys = append(sys, task.MustNew(fmt.Sprintf("t%d", i), g, d, t))
	}
	return sys
}

// FuzzVerifyAllocation checks the two faces of core.Verify on fuzz-chosen
// systems: every allocation Schedule produces passes it unchanged, and no
// single structural corruption — wrong platform size, dropped or duplicated
// task, out-of-range or double-claimed processor, missing or inconsistent
// template, discarded partition — slips through.
func FuzzVerifyAllocation(f *testing.F) {
	for seed := uint32(0); seed < 4; seed++ {
		for mut := uint8(0); mut < 8; mut++ {
			f.Add(seed, mut)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint32, mut uint8) {
		r := rand.New(rand.NewSource(int64(seed)))
		sys := fuzzSystem(r, 2+r.Intn(4))
		var alloc *Allocation
		var m int
		for m = 2; m <= 8; m++ {
			a, err := Schedule(sys, m, Options{})
			if err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Skip("system rejected on every platform size")
		}
		if err := Verify(sys, m, alloc); err != nil {
			t.Fatalf("clean allocation failed Verify: %v", err)
		}

		mutated := cloneAlloc(alloc)
		var desc string
		switch mut % 8 {
		case 0:
			mutated.M++
			desc = "wrong platform size"
		case 1:
			if len(mutated.LowIndices) > 0 {
				mutated.LowIndices = mutated.LowIndices[:len(mutated.LowIndices)-1]
				desc = "dropped low task"
			} else {
				mutated.High = mutated.High[:len(mutated.High)-1]
				desc = "dropped high task"
			}
		case 2:
			if len(mutated.LowIndices) > 0 {
				mutated.LowIndices = append(mutated.LowIndices, mutated.LowIndices[0])
				desc = "duplicated low task"
			} else {
				mutated.High = append(mutated.High, mutated.High[0])
				desc = "duplicated high task"
			}
		case 3:
			if len(mutated.SharedProcs) > 0 {
				mutated.SharedProcs[0] = m
			} else {
				mutated.High[0].Procs[0] = -1
			}
			desc = "processor out of range"
		case 4:
			switch {
			case len(mutated.High) > 0 && len(mutated.SharedProcs) > 0:
				mutated.SharedProcs[0] = mutated.High[0].Procs[0]
			case len(mutated.SharedProcs) >= 2:
				mutated.SharedProcs[1] = mutated.SharedProcs[0]
			case len(mutated.High) >= 1 && len(mutated.High[0].Procs) >= 2:
				mutated.High[0].Procs[1] = mutated.High[0].Procs[0]
			default:
				t.Skip("no way to double-claim with one resource")
			}
			desc = "processor claimed twice"
		case 5:
			if len(mutated.High) == 0 {
				t.Skip("no dedicated groups to corrupt")
			}
			mutated.High[0].Template = nil
			desc = "missing template"
		case 6:
			if len(mutated.High) == 0 {
				t.Skip("no dedicated groups to corrupt")
			}
			mutated.High[0].Template.Makespan++
			desc = "inconsistent template makespan"
		case 7:
			mutated.Low = nil
			desc = "discarded partition"
		}
		if err := Verify(sys, m, mutated); err == nil {
			t.Fatalf("mutated allocation (%s) passed Verify; seed=%d", desc, seed)
		}
	})
}

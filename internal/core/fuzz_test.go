package core_test

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/task"

	// Registering the policies lets the fuzzer request split-shape
	// allocations through the ordinary core.Schedule dispatch. This file is
	// an external test package precisely so these imports are legal.
	_ "fedsched/internal/reservation"
	_ "fedsched/internal/semifed"
	_ "fedsched/internal/typedfed"
)

// retypeSysForFuzz rebuilds each task with every vertex independently
// re-pinned to type b with the given probability (structure, WCETs, D and T
// unchanged) — the typed-system counterpart of FuzzSystemForTest.
func retypeSysForFuzz(r *rand.Rand, sys task.System, prob float64) task.System {
	out := make(task.System, len(sys))
	for i, tk := range sys {
		g := tk.G
		b := dag.NewBuilder(g.N())
		for v := 0; v < g.N(); v++ {
			ty := 0
			if r.Float64() < prob {
				ty = 1
			}
			b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), ty)
		}
		for _, e := range g.Edges() {
			b.AddEdge(e[0], e[1])
		}
		out[i] = task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
	}
	return out
}

// flipOneVertexType rebuilds tk with exactly vertex v's processor type
// toggled a↔b.
func flipOneVertexType(tk *task.DAGTask, v int) *task.DAGTask {
	g := tk.G
	b := dag.NewBuilder(g.N())
	for w := 0; w < g.N(); w++ {
		ty := g.TypeOf(w)
		if w == v {
			ty = 1 - ty
		}
		b.AddTypedVertex(g.Vertex(w).Name, g.WCET(w), ty)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
}

// procTypeOf returns the type owning global processor p under the type-major
// numbering declared by mtypes.
func procTypeOf(mtypes []int, p int) int {
	base := 0
	for s, m := range mtypes {
		if p < base+m {
			return s
		}
		base += m
	}
	return -1
}

// FuzzVerifyAllocation checks the two faces of core.Verify on fuzz-chosen
// systems: every allocation Schedule produces passes it unchanged, and no
// single structural corruption slips through. Mutations 0–7 corrupt the
// strict FEDCONS shape — wrong platform size, dropped or duplicated task,
// out-of-range or double-claimed processor, missing or inconsistent
// template, discarded partition. Mutations 8–12 corrupt split-shape
// allocations produced by the semi-federated (even seeds) and reservation
// (odd seeds) policies: a cleared policy tag smuggling servers past the
// strict verifier, fractional-server budgets forced to zero or past the
// owner's window, and dropped or duplicated reservation servers.
// Mutations 13–16 corrupt typed allocations on a two-type platform: the
// policy tag cleared so the per-type budgets hit the strict verifier, a
// vertex's processor type flipped in the system the allocation is audited
// against, two dedicated processors of different types swapped in a grant's
// local→global mapping, and a type's budget zeroed.
func FuzzVerifyAllocation(f *testing.F) {
	for seed := uint32(0); seed < 4; seed++ {
		for mut := uint8(0); mut < 17; mut++ {
			f.Add(seed, mut)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint32, mut uint8) {
		r := rand.New(rand.NewSource(int64(seed)))
		sys := core.FuzzSystemForTest(r, 2+r.Intn(4))
		mut %= 17
		var opt core.Options
		if mut >= 13 {
			opt.Policy = core.PolicyTyped
			sys = retypeSysForFuzz(r, sys, 0.3)
		} else if mut >= 8 {
			opt.Policy = core.PolicySemi
			if seed%2 == 1 {
				opt.Policy = core.PolicyReservation
			}
		}
		var alloc *core.Allocation
		var m int
		for m = 2; m <= 8; m++ {
			if mut >= 13 {
				// Both budgets positive: a genuinely heterogeneous platform,
				// so the typed path cannot degenerate to strict FEDCONS.
				opt.MTypes = []int{m - m/2, m / 2}
			}
			a, err := core.Schedule(sys, m, opt)
			if err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Skip("system rejected on every platform size")
		}
		if mut >= 13 && len(alloc.MTypes) == 0 {
			t.Skip("typed allocation degenerated to the strict shape")
		}
		if mut >= 8 && mut < 13 && (alloc.Policy == "" || len(alloc.Servers) == 0) {
			// Either the policy fell back to the strict shape, or the system
			// has no high-density tasks so the split shape degenerates to a
			// pure partition — nothing fractional to corrupt either way.
			t.Skip("no reservation servers to corrupt")
		}
		if err := core.Verify(sys, m, alloc); err != nil {
			t.Fatalf("clean allocation failed Verify: %v", err)
		}
		checkSys := sys

		mutated := core.CloneAllocForTest(alloc)
		var desc string
		switch mut {
		case 0:
			mutated.M++
			desc = "wrong platform size"
		case 1:
			if len(mutated.LowIndices) > 0 {
				mutated.LowIndices = mutated.LowIndices[:len(mutated.LowIndices)-1]
				desc = "dropped low task"
			} else {
				mutated.High = mutated.High[:len(mutated.High)-1]
				desc = "dropped high task"
			}
		case 2:
			if len(mutated.LowIndices) > 0 {
				mutated.LowIndices = append(mutated.LowIndices, mutated.LowIndices[0])
				desc = "duplicated low task"
			} else {
				mutated.High = append(mutated.High, mutated.High[0])
				desc = "duplicated high task"
			}
		case 3:
			if len(mutated.SharedProcs) > 0 {
				mutated.SharedProcs[0] = m
			} else {
				mutated.High[0].Procs[0] = -1
			}
			desc = "processor out of range"
		case 4:
			switch {
			case len(mutated.High) > 0 && len(mutated.SharedProcs) > 0:
				mutated.SharedProcs[0] = mutated.High[0].Procs[0]
			case len(mutated.SharedProcs) >= 2:
				mutated.SharedProcs[1] = mutated.SharedProcs[0]
			case len(mutated.High) >= 1 && len(mutated.High[0].Procs) >= 2:
				mutated.High[0].Procs[1] = mutated.High[0].Procs[0]
			default:
				t.Skip("no way to double-claim with one resource")
			}
			desc = "processor claimed twice"
		case 5:
			if len(mutated.High) == 0 {
				t.Skip("no dedicated groups to corrupt")
			}
			mutated.High[0].Template = nil
			desc = "missing template"
		case 6:
			if len(mutated.High) == 0 {
				t.Skip("no dedicated groups to corrupt")
			}
			mutated.High[0].Template.Makespan++
			desc = "inconsistent template makespan"
		case 7:
			mutated.Low = nil
			desc = "discarded partition"
		case 8:
			mutated.Policy = ""
			desc = "split allocation relabeled as strict"
		case 9:
			mutated.Servers[0].Budget = 0
			desc = "zero server budget"
		case 10:
			owner := sys[mutated.Servers[0].TaskIndex]
			mutated.Servers[0].Budget = core.Window(owner) + 1
			desc = "server budget beyond the owner's window"
		case 11:
			mutated.Servers = mutated.Servers[:len(mutated.Servers)-1]
			desc = "dropped reservation server"
		case 12:
			mutated.Servers = append(mutated.Servers, mutated.Servers[0])
			desc = "duplicated reservation server"
		case 13:
			mutated.Policy = ""
			desc = "typed allocation relabeled as strict"
		case 14:
			ti := r.Intn(len(sys))
			vi := r.Intn(sys[ti].G.N())
			checkSys = append(task.System(nil), sys...)
			checkSys[ti] = flipOneVertexType(sys[ti], vi)
			desc = "vertex processor type flipped in the audited system"
		case 15:
			i, j := -1, -1
			for _, h := range mutated.High {
				for a := range h.Procs {
					for b := a + 1; b < len(h.Procs); b++ {
						if procTypeOf(mutated.MTypes, h.Procs[a]) != procTypeOf(mutated.MTypes, h.Procs[b]) {
							i, j = a, b
						}
					}
				}
				if i >= 0 {
					h.Procs[i], h.Procs[j] = h.Procs[j], h.Procs[i]
					break
				}
			}
			if i < 0 {
				t.Skip("no dedicated grant spans both processor types")
			}
			desc = "cross-type processor swap in a dedicated grant"
		case 16:
			mutated.MTypes = append([]int(nil), mutated.MTypes...)
			mutated.MTypes[1] = 0
			desc = "type-b budget zeroed"
		}
		if err := core.Verify(checkSys, m, mutated); err == nil {
			t.Fatalf("mutated allocation (%s, policy %q) passed Verify; seed=%d", desc, alloc.Policy, seed)
		}
	})
}

package core_test

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"

	// Registering the policies lets the fuzzer request split-shape
	// allocations through the ordinary core.Schedule dispatch. This file is
	// an external test package precisely so these imports are legal.
	_ "fedsched/internal/reservation"
	_ "fedsched/internal/semifed"
)

// FuzzVerifyAllocation checks the two faces of core.Verify on fuzz-chosen
// systems: every allocation Schedule produces passes it unchanged, and no
// single structural corruption slips through. Mutations 0–7 corrupt the
// strict FEDCONS shape — wrong platform size, dropped or duplicated task,
// out-of-range or double-claimed processor, missing or inconsistent
// template, discarded partition. Mutations 8–12 corrupt split-shape
// allocations produced by the semi-federated (even seeds) and reservation
// (odd seeds) policies: a cleared policy tag smuggling servers past the
// strict verifier, fractional-server budgets forced to zero or past the
// owner's window, and dropped or duplicated reservation servers.
func FuzzVerifyAllocation(f *testing.F) {
	for seed := uint32(0); seed < 4; seed++ {
		for mut := uint8(0); mut < 13; mut++ {
			f.Add(seed, mut)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint32, mut uint8) {
		r := rand.New(rand.NewSource(int64(seed)))
		sys := core.FuzzSystemForTest(r, 2+r.Intn(4))
		mut %= 13
		var opt core.Options
		if mut >= 8 {
			opt.Policy = core.PolicySemi
			if seed%2 == 1 {
				opt.Policy = core.PolicyReservation
			}
		}
		var alloc *core.Allocation
		var m int
		for m = 2; m <= 8; m++ {
			a, err := core.Schedule(sys, m, opt)
			if err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Skip("system rejected on every platform size")
		}
		if mut >= 8 && (alloc.Policy == "" || len(alloc.Servers) == 0) {
			// Either the policy fell back to the strict shape, or the system
			// has no high-density tasks so the split shape degenerates to a
			// pure partition — nothing fractional to corrupt either way.
			t.Skip("no reservation servers to corrupt")
		}
		if err := core.Verify(sys, m, alloc); err != nil {
			t.Fatalf("clean allocation failed Verify: %v", err)
		}

		mutated := core.CloneAllocForTest(alloc)
		var desc string
		switch mut {
		case 0:
			mutated.M++
			desc = "wrong platform size"
		case 1:
			if len(mutated.LowIndices) > 0 {
				mutated.LowIndices = mutated.LowIndices[:len(mutated.LowIndices)-1]
				desc = "dropped low task"
			} else {
				mutated.High = mutated.High[:len(mutated.High)-1]
				desc = "dropped high task"
			}
		case 2:
			if len(mutated.LowIndices) > 0 {
				mutated.LowIndices = append(mutated.LowIndices, mutated.LowIndices[0])
				desc = "duplicated low task"
			} else {
				mutated.High = append(mutated.High, mutated.High[0])
				desc = "duplicated high task"
			}
		case 3:
			if len(mutated.SharedProcs) > 0 {
				mutated.SharedProcs[0] = m
			} else {
				mutated.High[0].Procs[0] = -1
			}
			desc = "processor out of range"
		case 4:
			switch {
			case len(mutated.High) > 0 && len(mutated.SharedProcs) > 0:
				mutated.SharedProcs[0] = mutated.High[0].Procs[0]
			case len(mutated.SharedProcs) >= 2:
				mutated.SharedProcs[1] = mutated.SharedProcs[0]
			case len(mutated.High) >= 1 && len(mutated.High[0].Procs) >= 2:
				mutated.High[0].Procs[1] = mutated.High[0].Procs[0]
			default:
				t.Skip("no way to double-claim with one resource")
			}
			desc = "processor claimed twice"
		case 5:
			if len(mutated.High) == 0 {
				t.Skip("no dedicated groups to corrupt")
			}
			mutated.High[0].Template = nil
			desc = "missing template"
		case 6:
			if len(mutated.High) == 0 {
				t.Skip("no dedicated groups to corrupt")
			}
			mutated.High[0].Template.Makespan++
			desc = "inconsistent template makespan"
		case 7:
			mutated.Low = nil
			desc = "discarded partition"
		case 8:
			mutated.Policy = ""
			desc = "split allocation relabeled as strict"
		case 9:
			mutated.Servers[0].Budget = 0
			desc = "zero server budget"
		case 10:
			owner := sys[mutated.Servers[0].TaskIndex]
			mutated.Servers[0].Budget = core.Window(owner) + 1
			desc = "server budget beyond the owner's window"
		case 11:
			mutated.Servers = mutated.Servers[:len(mutated.Servers)-1]
			desc = "dropped reservation server"
		case 12:
			mutated.Servers = append(mutated.Servers, mutated.Servers[0])
			desc = "duplicated reservation server"
		}
		if err := core.Verify(sys, m, mutated); err == nil {
			t.Fatalf("mutated allocation (%s, policy %q) passed Verify; seed=%d", desc, alloc.Policy, seed)
		}
	})
}

package core_test

// Tests for the conservative arbitrary-deadline extension (paper Section V:
// future work): the first phase sizes high-density tasks against the window
// min(D, T) so a dag-job always vacates its dedicated group before the next
// release, and the partition phase remains sound because DBF* upper-bounds
// the demand of arbitrary-deadline sporadic tasks too.

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/sim"
	"fedsched/internal/task"
)

func TestMinprocsUsesWindowNotDeadline(t *testing.T) {
	// 4 independent jobs of 5: vol=20, len=5. With D=20, T=10 a single
	// processor would meet the deadline (makespan 20 ≤ D) but overrun the
	// period — unsound. The window min(D,T)=10 forces 2 processors.
	tk := task.MustNew("arb", dag.Independent(5, 5, 5, 5), 20, 10)
	mu, tmpl, ok := core.Minprocs(tk, 8, nil)
	if !ok {
		t.Fatal("Minprocs failed")
	}
	if mu != 2 {
		t.Fatalf("mu = %d, want 2 (window-bound, not deadline-bound)", mu)
	}
	if tmpl.Makespan > 10 {
		t.Fatalf("template makespan %d exceeds period 10", tmpl.Makespan)
	}
	// Analytic agrees on the window.
	muA, tmplA, okA := core.MinprocsAnalytic(tk, 8, nil)
	if !okA || muA < 2 || tmplA.Makespan > 10 {
		t.Fatalf("analytic: mu=%d ok=%v makespan=%d", muA, okA, tmplA.Makespan)
	}
}

func TestVerifyRejectsTemplateExceedingPeriod(t *testing.T) {
	tk := task.MustNew("arb", dag.Independent(5, 5, 5, 5), 20, 10)
	sys := task.System{tk}
	alloc, err := core.Schedule(sys, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(sys, 2, alloc); err != nil {
		t.Fatal(err)
	}
	// Tamper: replace the template with a single-processor schedule whose
	// makespan (20) meets D but overruns T. Verify must reject.
	sOne := mustLS(t, tk.G, 1)
	bad := *alloc
	bad.High = append([]core.HighAssignment(nil), alloc.High...)
	bad.High[0].Procs = []int{0}
	bad.High[0].Template = sOne
	bad.SharedProcs = []int{1}
	if err := core.Verify(sys, 2, &bad); err == nil {
		t.Fatal("Verify accepted a template overrunning the period")
	}
}

func TestArbitraryDeadlinePartitionSound(t *testing.T) {
	// Low-density arbitrary-deadline tasks: D > T exploits extra slack the
	// fully-constrained transform would forfeit.
	sys := task.System{
		task.MustNew("a", dag.Singleton(6), 14, 10), // D > T, u = 0.6
		task.MustNew("b", dag.Singleton(5), 15, 12), // D > T, u ≈ 0.417
	}
	// Σu > 1: cannot share one processor regardless of deadlines.
	if core.Schedulable(sys, 1, core.Options{}) {
		t.Fatal("Σu > 1 accepted on one processor")
	}
	alloc, err := core.Schedule(sys, 2, core.Options{})
	if err != nil {
		t.Fatalf("two processors must suffice: %v", err)
	}
	if err := core.Verify(sys, 2, alloc); err != nil {
		t.Fatal(err)
	}
	// Keeping the true (late) deadline in the partition exploits slack the
	// fully-constrained transform D' = min(D, T) forfeits: with
	// x = (C=4, D=20, T=5) and y = (C=2, D=8, T=10), the arbitrary-deadline
	// test sees demand 4 + DBF*(y, 20) = 8.4 ≤ 20 at x's deadline, while
	// the transform x' = (4,5,5) forces 2 + DBF*(x', 8) = 8.4 > 8 at y's.
	slack := task.System{
		task.MustNew("x", dag.Singleton(4), 20, 5),
		task.MustNew("y", dag.Singleton(2), 8, 10),
	}
	if !core.Schedulable(slack, 1, core.Options{}) {
		t.Fatal("arbitrary-deadline slack system must fit one processor")
	}
	transform := task.System{
		task.MustNew("x", dag.Singleton(4), 5, 5),
		task.MustNew("y", dag.Singleton(2), 8, 10),
	}
	if core.Schedulable(transform, 1, core.Options{}) {
		t.Fatal("fully-constrained transform must fail on one processor")
	}
}

func TestArbitraryAcceptedSystemsSimulateCleanly(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	validated := 0
	for trial := 0; trial < 80; trial++ {
		sys := randomArbitrarySystem(r, 1+r.Intn(5))
		m := 1 + r.Intn(6)
		alloc, err := core.Schedule(sys, m, core.Options{})
		if err != nil {
			continue
		}
		if err := core.Verify(sys, m, alloc); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		validated++
		rep, err := sim.Federated(sys, alloc, sim.Config{
			Horizon:  2000,
			Arrivals: sim.SporadicRandom,
			Exec:     sim.UniformExec,
			Seed:     int64(trial),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.TotalMissed() != 0 {
			t.Fatalf("trial %d: %d misses in accepted arbitrary-deadline system", trial, rep.TotalMissed())
		}
	}
	if validated == 0 {
		t.Fatal("test vacuous")
	}
}

func randomArbitrarySystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(6)
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(task.Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		tt := g.LongestChain() + task.Time(r.Intn(int(2*g.Volume())))
		// Deadline anywhere from len to 2.5 T: frequently arbitrary.
		d := g.LongestChain() + task.Time(r.Intn(int(2*tt)+1))
		sys = append(sys, task.MustNew("r", g, d, tt))
	}
	return sys
}

func mustLS(t *testing.T, g *dag.DAG, m int) *listsched.Schedule {
	t.Helper()
	s, err := listsched.Run(g, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

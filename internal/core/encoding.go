package core

import (
	"encoding/json"
	"fmt"

	"fedsched/internal/task"
)

// EncodeAllocation marshals an allocation (with its template schedules) to
// indented JSON. The artifact is what a deployment would ship to the target:
// the static processor assignment plus the lookup tables σ_i the run-time
// dispatcher replays.
func EncodeAllocation(a *Allocation) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("fedcons: nil allocation")
	}
	return json.MarshalIndent(a, "", "  ")
}

// DecodeAllocation unmarshals an allocation and audits it against the system
// and platform it claims to schedule (Verify). Decoding untrusted or stale
// allocation files therefore cannot smuggle an unschedulable mapping past
// the dispatcher.
func DecodeAllocation(data []byte, sys task.System, m int) (*Allocation, error) {
	var a Allocation
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("fedcons: decoding allocation: %w", err)
	}
	if err := Verify(sys, m, &a); err != nil {
		return nil, fmt.Errorf("fedcons: decoded allocation rejected: %w", err)
	}
	return &a, nil
}

package core

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/task"
)

// typedOutcome flattens a MinprocsTyped run into the comparable triple the
// metamorphic tests pin: feasibility, the budget vector, and the witness
// makespan.
type typedOutcome struct {
	ok       bool
	mu       string
	makespan task.Time
}

func minprocsTypedOn(tk *task.DAGTask, avail []int, prio listsched.Priority) typedOutcome {
	mu, tmpl, ok := MinprocsTyped(tk, avail, prio, nil)
	out := typedOutcome{ok: ok}
	if ok {
		out.mu = FormatMTypes(mu)
		out.makespan = tmpl.Makespan
	}
	return out
}

// retypeRandomly rebuilds tk with each vertex independently re-pinned to
// type b with probability prob (structure, WCETs, D and T unchanged).
func retypeRandomly(r *rand.Rand, tk *task.DAGTask, prob float64) *task.DAGTask {
	g := tk.G
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		t := 0
		if r.Float64() < prob {
			t = 1
		}
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), t)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
}

// padCounts pads a CountByType vector to at least two entries so type-b
// counts can be read off untyped or uniformly-typed graphs.
func padCounts(c []int) []int {
	for len(c) < 2 {
		c = append(c, 0)
	}
	return c
}

// swapTaskTypes rebuilds tk with types a and b exchanged on every vertex.
func swapTaskTypes(tk *task.DAGTask) *task.DAGTask {
	g := tk.G
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), 1-g.TypeOf(v))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
}

// TestMinprocsTypedEdgeEnumerationInvariance: like its homogeneous
// counterpart, the typed MINPROCS scan (feasibility, the per-type budget
// vector μ, and the witness makespan) must be blind to the order a wire file
// enumerates its edges in.
func TestMinprocsTypedEdgeEnumerationInvariance(t *testing.T) {
	prios := map[string]listsched.Priority{
		"insertion":    nil,
		"longest-path": listsched.LongestPathFirst,
		"largest-wcet": listsched.LargestWCETFirst,
	}
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, base := range fuzzSystem(r, 3) {
			tk := retypeRandomly(r, base, 0.4)
			avail := []int{1 + r.Intn(4), 1 + r.Intn(4)}
			shuffled := rebuildShuffled(r, tk)
			for name, prio := range prios {
				want, got := minprocsTypedOn(tk, avail, prio), minprocsTypedOn(shuffled, avail, prio)
				if got != want {
					t.Fatalf("seed %d prio %s avail %s: typed MINPROCS changed under edge-list reordering: %+v vs %+v",
						seed, name, FormatMTypes(avail), want, got)
				}
			}
		}
	}
}

// TestMinprocsTypedTypeSwapInvariance: processor-type labels are names, not
// semantics. Exchanging the labels a↔b on every vertex and simultaneously
// exchanging the per-type availability must produce the mirrored outcome:
// same feasibility, same witness makespan, and the budget vector with its
// entries exchanged.
func TestMinprocsTypedTypeSwapInvariance(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, base := range fuzzSystem(r, 3) {
			tk := retypeRandomly(r, base, 0.4)
			avail := []int{1 + r.Intn(4), 1 + r.Intn(4)}
			swappedAvail := []int{avail[1], avail[0]}
			want := minprocsTypedOn(tk, avail, nil)
			got := minprocsTypedOn(swapTaskTypes(tk), swappedAvail, nil)
			if got.ok != want.ok || got.makespan != want.makespan {
				t.Fatalf("seed %d avail %s: typed MINPROCS not swap-invariant: %+v vs %+v",
					seed, FormatMTypes(avail), want, got)
			}
			if want.ok {
				mu, _, _ := MinprocsTyped(tk, avail, nil, nil)
				muSwap, _, _ := MinprocsTyped(swapTaskTypes(tk), swappedAvail, nil, nil)
				if len(mu) != 2 || len(muSwap) != 2 || mu[0] != muSwap[1] || mu[1] != muSwap[0] {
					t.Fatalf("seed %d: budget vector not mirrored: %v vs %v", seed, mu, muSwap)
				}
			}
		}
	}
}

// TestMinprocsTypedUntypedDegeneracy: on a single-type platform with an
// untyped task the typed scan is the paper's MINPROCS — same feasibility,
// same μ (as the single budget entry), same witness makespan. This is the
// analysis-level half of the byte-identity pin in cmd/fedsched.
func TestMinprocsTypedUntypedDegeneracy(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, tk := range fuzzSystem(r, 3) {
			m := 1 + r.Intn(8)
			mu, tmpl, ok := Minprocs(tk, m, nil)
			muT, tmplT, okT := MinprocsTyped(tk, []int{m}, nil, nil)
			if ok != okT {
				t.Fatalf("seed %d m=%d: feasibility diverges: strict %v typed %v", seed, m, ok, okT)
			}
			if !ok {
				continue
			}
			if len(muT) != 1 || muT[0] != mu {
				t.Fatalf("seed %d m=%d: μ diverges: strict %d typed %v", seed, m, mu, muT)
			}
			if tmpl.Makespan != tmplT.Makespan {
				t.Fatalf("seed %d m=%d: makespan diverges: strict %d typed %d", seed, m, tmpl.Makespan, tmplT.Makespan)
			}
			for v := range tmpl.Intervals {
				if tmpl.Intervals[v] != tmplT.Intervals[v] {
					t.Fatalf("seed %d m=%d vertex %d: interval diverges: %+v vs %+v",
						seed, m, v, tmpl.Intervals[v], tmplT.Intervals[v])
				}
			}
		}
	}
}

// TestTaskHashTypeSensitivity: the content-addressed cache key must see
// processor types — flipping one vertex's type changes the hash — while
// staying blind to the usual enumeration freedoms on typed graphs, and typed
// hashing must not perturb untyped hashing (the typed canonical section is
// appended only for typed graphs).
func TestTaskHashTypeSensitivity(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		base := fuzzSystem(r, 1)[0]
		tk := retypeRandomly(r, base, 0.5)
		h := TaskHash(tk)
		if TaskHash(rebuildShuffled(r, tk)) != h {
			t.Fatalf("seed %d: typed hash changed under edge-list reordering", seed)
		}
		if TaskHash(relabel(tk, r.Perm(tk.G.N()))) != h {
			t.Fatalf("seed %d: typed hash changed under vertex reordering", seed)
		}
		// A full label exchange is only guaranteed to change the hash when
		// the per-type counts differ; with equal counts the exchanged graph
		// can be isomorphic to the original and must then collide.
		if c := padCounts(tk.G.CountByType()); tk.G.Typed() && c[0] != c[1] {
			if TaskHash(swapTaskTypes(tk)) == h {
				t.Fatalf("seed %d: hash unchanged under type-label flip", seed)
			}
		}
		// One-vertex flip: pick any vertex and toggle only it.
		g := tk.G
		b := dag.NewBuilder(g.N())
		v0 := r.Intn(g.N())
		for v := 0; v < g.N(); v++ {
			ty := g.TypeOf(v)
			if v == v0 {
				ty = 1 - ty
			}
			b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), ty)
		}
		for _, e := range g.Edges() {
			b.AddEdge(e[0], e[1])
		}
		oneFlip := task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
		if TaskHash(oneFlip) == h {
			t.Fatalf("seed %d: hash unchanged under single vertex type flip", seed)
		}
	}
}

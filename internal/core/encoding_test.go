package core

import (
	"strings"
	"testing"

	"fedsched/internal/task"
)

func TestAllocationRoundTrip(t *testing.T) {
	sys := task.System{
		highTask("h", 4, 5, 10, 10),
		lowTask("l1", 2, 8, 16),
		lowTask("l2", 3, 12, 24),
	}
	alloc, err := Schedule(sys, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAllocation(alloc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAllocation(data, sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != alloc.M || len(back.High) != len(alloc.High) {
		t.Fatalf("round trip changed structure: %+v", back)
	}
	if back.High[0].Template.Makespan != alloc.High[0].Template.Makespan {
		t.Error("template makespan changed")
	}
	for i := range alloc.High[0].Template.Intervals {
		if back.High[0].Template.Intervals[i] != alloc.High[0].Template.Intervals[i] {
			t.Fatal("template intervals changed")
		}
	}
	if err := Verify(sys, 4, back); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAllocationRejectsTampering(t *testing.T) {
	sys := task.System{
		highTask("h", 4, 5, 10, 10),
		lowTask("l", 2, 8, 16),
	}
	alloc, err := Schedule(sys, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAllocation(alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong platform.
	if _, err := DecodeAllocation(data, sys, 5); err == nil {
		t.Error("accepted allocation for wrong m")
	}
	// Wrong system: swap the low task for a heavier one.
	sys2 := task.System{
		highTask("h", 4, 5, 10, 10),
		lowTask("l", 200, 8, 16),
	}
	if _, err := DecodeAllocation(data, sys2, 3); err == nil {
		t.Error("accepted allocation for a different (infeasible) system")
	}
	// Corrupted JSON field: steal a processor via text surgery.
	tampered := strings.Replace(string(data), `"Procs": [`+"\n        0,\n        1\n      ]", `"Procs": [0]`, 1)
	if tampered == string(data) {
		t.Skip("tampering pattern not found; layout changed")
	}
	if _, err := DecodeAllocation([]byte(tampered), sys, 3); err == nil {
		t.Error("accepted tampered allocation")
	}
	// Garbage.
	if _, err := DecodeAllocation([]byte("{"), sys, 3); err == nil {
		t.Error("accepted malformed JSON")
	}
	// Nil encode.
	if _, err := EncodeAllocation(nil); err == nil {
		t.Error("encoded nil allocation")
	}
}

func TestDecodeAllocationEmptyShared(t *testing.T) {
	// A system with only high-density tasks round-trips with an empty (but
	// non-nil after decode-verify) partition.
	sys := task.System{highTask("h", 4, 5, 10, 10)}
	alloc, err := Schedule(sys, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAllocation(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAllocation(data, sys, 2); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"crypto/sha256"
	"encoding/hex"

	"fedsched/internal/task"
)

// Hash is a content address for a DAG task: the SHA-256 of its canonical
// analysis-relevant encoding (task.AppendCanonical).
type Hash [sha256.Size]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 12 hex digits, for logs and metrics.
func (h Hash) Short() string { return h.String()[:12] }

// TaskHash returns the content address of a task. Two tasks with equal
// hashes present identical input to the FEDCONS analysis — same D, T, vertex
// WCETs and precedence structure — regardless of vertex names, of the order
// edges were enumerated when the DAG was built, or of the order structurally
// interchangeable vertices were listed. It is the key of the admission
// service's Phase-1 memo cache: MINPROCS is a deterministic function of
// exactly the hashed content, so equal hash (guarded by
// task.SameAnalysisInput against SHA collisions and residual canonicalization
// ties) implies an identical (μ, template) result.
func TaskHash(tk *task.DAGTask) Hash {
	return sha256.Sum256(tk.AppendCanonical(nil))
}

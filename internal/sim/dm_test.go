package sim

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/fp"
	"fedsched/internal/partition"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

func dmOptions() core.Options {
	return core.Options{Partition: partition.Options{Test: partition.DMRta}}
}

func TestDMRuntimeNeverMissesOnDMAcceptedSystems(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	validated := 0
	for trial := 0; trial < 60; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(6)
		alloc, err := core.Schedule(sys, m, dmOptions())
		if err != nil {
			continue
		}
		validated++
		rep, err := Federated(sys, alloc, Config{
			Horizon:  2000,
			Arrivals: SporadicRandom,
			Exec:     UniformExec,
			Shared:   DMPolicy,
			Seed:     int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalMissed() != 0 {
			t.Fatalf("trial %d: DM-accepted system missed %d deadlines under DM runtime", trial, rep.TotalMissed())
		}
	}
	if validated == 0 {
		t.Fatal("test vacuous")
	}
}

func TestDMRuntimeObeysFixedPriorities(t *testing.T) {
	// Audit the DM runtime's traces against the fixed-priority rule.
	sys := task.System{
		lowTask("tight", 2, 5, 12),
		lowTask("mid", 3, 9, 15),
		lowTask("loose", 2, 14, 20),
	}
	alloc, err := core.Schedule(sys, 1, dmOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, pt, err := FederatedTraced(sys, alloc, Config{
		Horizon:  3000,
		Arrivals: SporadicRandom,
		Exec:     UniformExec,
		Shared:   DMPolicy,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Shared) != 1 {
		t.Fatalf("expected one shared processor, got %d", len(pt.Shared))
	}
	tr := pt.Shared[0]
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Build the DM rank on the shared group (task ids are system indices).
	idxs := alloc.TasksOnShared(0)
	sps := make([]task.Sporadic, len(idxs))
	for j, i := range idxs {
		sps[j] = sys[i].AsSporadic()
	}
	rank := map[int]int{}
	for r, j := range fp.DMOrder(sps) {
		rank[idxs[j]] = r
	}
	err = tr.CheckPriority(func(a, b trace.JobInfo) bool {
		return rank[a.ID.Task] < rank[b.ID.Task]
	})
	if err != nil {
		t.Fatalf("DM priority rule violated: %v", err)
	}
	// The same trace need not satisfy the EDF rule — DM and EDF differ.
	// (No assertion: it may coincidentally satisfy it on this workload.)
}

func TestDMPolicyCanMissWhereEDFDoesNot(t *testing.T) {
	// A classic EDF-yes/DM-no set: under DM the long-deadline task starves.
	// τ1 = (3, 6, 6) (high DM priority), τ2 = (4, 8, 8): R2 = 4+3=7 →
	// 4+⌈7/6⌉·3 = 10 > 8 → DM-infeasible; EDF: U = 1, implicit, feasible.
	sys := task.System{
		lowTask("a", 3, 6, 6),
		lowTask("b", 4, 8, 8),
	}
	if core.Schedulable(sys, 1, dmOptions()) {
		t.Fatal("DM admission must reject the EDF-only set")
	}
	alloc, err := core.Schedule(sys, 1, core.Options{})
	if err != nil {
		t.Fatalf("EDF admission must accept: %v", err)
	}
	// EDF runtime: no misses.
	rep, err := Federated(sys, alloc, Config{Horizon: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMissed() != 0 {
		t.Fatalf("EDF runtime missed %d on an EDF-feasible set", rep.TotalMissed())
	}
	// DM runtime on the same (EDF-admitted) allocation: misses appear.
	repDM, err := Federated(sys, alloc, Config{Horizon: 200, Seed: 1, Shared: DMPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if repDM.TotalMissed() == 0 {
		t.Fatal("DM runtime should miss on the DM-infeasible set")
	}
}

package sim_test

// Old-vs-new engine benchmarks at an experiment-scale horizon. The fast
// engine's cost is O(jobs · log) while the reference engine additionally
// pays per-vertex scans and per-arrival truncation, so the gap widens with
// DAG width and horizon; results are recorded in
// results/timing_sim_engine.json.

import (
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/sim"
	"fedsched/internal/sim/reference"
	"fedsched/internal/task"
)

// benchPlatform is a realistic mixed platform: one wide high-density
// fork-join task on a dedicated group plus six multi-vertex low-density
// tasks partitioned onto the shared processors.
func benchPlatform(tb testing.TB) (task.System, *core.Allocation, int) {
	tb.Helper()
	const m = 10
	sys := task.System{
		task.MustNew("high", dag.ForkJoin(2, 30, 8, 2), 60, 60),
	}
	for i := 0; i < 6; i++ {
		sys = append(sys, task.MustNew("low", dag.Chain(2, 2, 2, 2, 2), 40, 80))
	}
	alloc, err := core.Schedule(sys, m, core.Options{})
	if err != nil {
		tb.Fatalf("benchmark platform rejected: %v", err)
	}
	return sys, alloc, m
}

func BenchmarkSimFederated(b *testing.B) {
	sys, alloc, _ := benchPlatform(b)
	cfg := sim.Config{Horizon: 100_000, Arrivals: sim.Periodic, Exec: sim.FullWCET, Seed: 7}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Federated(sys, alloc, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reference.Federated(sys, alloc, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSimFederatedSporadic(b *testing.B) {
	sys, alloc, _ := benchPlatform(b)
	cfg := sim.Config{Horizon: 100_000, Arrivals: sim.SporadicRandom, Exec: sim.UniformExec, Seed: 7}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Federated(sys, alloc, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reference.Federated(sys, alloc, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSimGlobalEDF(b *testing.B) {
	sys, _, m := benchPlatform(b)
	cfg := sim.Config{Horizon: 100_000, Arrivals: sim.Periodic, Exec: sim.FullWCET, Seed: 7}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.GlobalEDF(sys, m, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reference.GlobalEDF(sys, m, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package sim

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// audit runs the full trace audit on a traced federated simulation: platform
// rules per group, DAG precedence for the high-density groups, and the EDF
// rule per shared processor.
func audit(t *testing.T, sys task.System, alloc *core.Allocation, cfg Config) {
	t.Helper()
	rep, pt, err := FederatedTraced(sys, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalReleased() == 0 {
		t.Fatal("nothing simulated")
	}
	for gi, tr := range pt.High {
		if err := tr.Check(); err != nil {
			t.Fatalf("high group %d: %v", gi, err)
		}
		h := alloc.High[gi]
		var cons []trace.Precedence
		for _, e := range sys[h.TaskIndex].G.Edges() {
			cons = append(cons, trace.Precedence{Task: h.TaskIndex, From: e[0], To: e[1]})
		}
		if err := tr.CheckPrecedence(cons); err != nil {
			t.Fatalf("high group %d: %v", gi, err)
		}
		if got, want := len(tr.Misses()), int(rep.PerTask[h.TaskIndex].Missed); got != 0 || want != 0 {
			t.Fatalf("high group %d: trace misses %d, stats misses %d", gi, got, want)
		}
	}
	for k, tr := range pt.Shared {
		if err := tr.Check(); err != nil {
			t.Fatalf("shared proc %d: %v", k, err)
		}
		if err := tr.CheckEDF(); err != nil {
			t.Fatalf("shared proc %d: %v", k, err)
		}
		if len(tr.Misses()) != 0 {
			t.Fatalf("shared proc %d: trace shows misses in accepted system", k)
		}
	}
}

func TestTracedFederatedAuditsClean(t *testing.T) {
	sys := task.System{
		parTask("h", 4, 5, 10, 10),
		lowTask("l1", 2, 8, 16),
		lowTask("l2", 3, 12, 24),
		lowTask("l3", 1, 6, 9),
	}
	alloc := mustAlloc(t, sys, 4)
	for _, cfg := range []Config{
		{Horizon: 2000, Seed: 1},
		{Horizon: 2000, Arrivals: SporadicRandom, Exec: UniformExec, Seed: 2},
	} {
		audit(t, sys, alloc, cfg)
	}
}

func TestTracedRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	audited := 0
	for trial := 0; trial < 40; trial++ {
		sys := randomSystem(r, 1+r.Intn(5))
		m := 1 + r.Intn(6)
		alloc, err := core.Schedule(sys, m, core.Options{})
		if err != nil {
			continue
		}
		audited++
		audit(t, sys, alloc, Config{
			Horizon:  1500,
			Arrivals: SporadicRandom,
			Exec:     UniformExec,
			Seed:     int64(trial),
		})
	}
	if audited == 0 {
		t.Fatal("test vacuous")
	}
}

func TestTracedStatsAgreeWithUntraced(t *testing.T) {
	sys := task.System{
		parTask("h", 3, 4, 8, 12),
		lowTask("l", 2, 9, 14),
	}
	alloc := mustAlloc(t, sys, 3)
	cfg := Config{Horizon: 3000, Arrivals: SporadicRandom, Exec: UniformExec, Seed: 9}
	plain, err := Federated(sys, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := FederatedTraced(sys, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.PerTask {
		if plain.PerTask[i] != traced.PerTask[i] {
			t.Fatalf("task %d: %+v vs %+v", i, plain.PerTask[i], traced.PerTask[i])
		}
	}
}

func TestTraceGanttRenders(t *testing.T) {
	sys := task.System{parTask("h", 4, 5, 10, 10)}
	alloc := mustAlloc(t, sys, 2)
	_, pt, err := FederatedTraced(sys, alloc, Config{Horizon: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := pt.High[0].Gantt(0, 30, 1)
	if len(g) == 0 {
		t.Fatal("empty gantt")
	}
}

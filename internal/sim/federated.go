package sim

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// ReplayMode selects how dag-jobs of high-density tasks are dispatched on
// their dedicated processors.
type ReplayMode int

const (
	// TemplateReplay uses σ_i as a lookup table: every job starts exactly at
	// its tabulated start time, processors idling when jobs finish early.
	// This is the paper's (anomaly-safe) run-time rule.
	TemplateReplay ReplayMode = iota
	// NaiveRerun re-runs Graham's LS online with the actual execution
	// times — the rule footnote 2 warns against. Subject to timing
	// anomalies; experiment E9 exhibits deadline misses under it.
	NaiveRerun
)

// Federated simulates the run-time behaviour of a FEDCONS allocation of sys
// under cfg, using TemplateReplay for the high-density tasks. It returns
// per-task statistics in input-system order.
func Federated(sys task.System, alloc *core.Allocation, cfg Config) (*Report, error) {
	return FederatedMode(sys, alloc, cfg, TemplateReplay, nil)
}

// PlatformTrace carries the per-group execution traces of a federated run.
// Federated isolation makes each group's trace independently auditable: the
// EDF rule only ever applies within one shared processor.
type PlatformTrace struct {
	// High has one trace per high-density assignment, in allocation order;
	// processor ids inside are the task's global dedicated processors.
	High []*trace.Trace
	// Shared has one trace per shared processor, indexed like
	// Allocation.SharedProcs; processor ids inside are global.
	Shared []*trace.Trace
}

// FederatedMode is Federated with an explicit replay mode and LS priority
// (the priority is used only by NaiveRerun; nil = insertion order).
func FederatedMode(sys task.System, alloc *core.Allocation, cfg Config, mode ReplayMode, prio listsched.Priority) (*Report, error) {
	rep, _, err := federated(sys, alloc, cfg, mode, prio, false)
	return rep, err
}

// FederatedTraced is Federated plus full execution traces for auditing with
// package trace.
func FederatedTraced(sys task.System, alloc *core.Allocation, cfg Config) (*Report, *PlatformTrace, error) {
	return federated(sys, alloc, cfg, TemplateReplay, nil, true)
}

func federated(sys task.System, alloc *core.Allocation, cfg Config, mode ReplayMode, prio listsched.Priority, traced bool) (*Report, *PlatformTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if alloc == nil {
		return nil, nil, fmt.Errorf("sim: nil allocation")
	}
	rep := &Report{PerTask: make([]TaskStats, len(sys))}
	for i, tk := range sys {
		rep.PerTask[i].Name = tk.Name
	}
	var pt *PlatformTrace
	if traced {
		pt = &PlatformTrace{}
	}

	needsRand := cfg.needsRand()

	// High-density tasks: isolated replay per dedicated group.
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		var rng *rand.Rand
		if needsRand {
			rng = rand.New(rand.NewSource(cfg.Seed + int64(h.TaskIndex)*7919))
		}
		var rec *trace.Recorder
		if traced {
			rec = trace.NewRecorder(alloc.M)
		}
		st, err := replayHigh(tk, h.TaskIndex, h.Procs, h.Template, cfg, mode, prio, rng, rec)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: task %d (%q): %w", h.TaskIndex, tk.Name, err)
		}
		st.Name = tk.Name
		rep.PerTask[h.TaskIndex] = st
		if traced {
			pt.High = append(pt.High, rec.Trace())
		}
	}

	// Shared processors: independent uniprocessor EDF per processor.
	for k, proc := range alloc.SharedProcs {
		idxs := alloc.TasksOnShared(k)
		group := make(task.System, len(idxs))
		for j, i := range idxs {
			group[j] = sys[i]
		}
		var rec *trace.Recorder
		if traced {
			rec = trace.NewRecorder(alloc.M)
		}
		stats := uniprocEDF(group, cfg, func(j int) *rand.Rand {
			if !needsRand {
				return nil
			}
			return rand.New(rand.NewSource(cfg.Seed + int64(idxs[j])*7919))
		}, rec, proc, idxs)
		for j, i := range idxs {
			stats[j].Name = sys[i].Name
			rep.PerTask[i] = stats[j]
		}
		if traced {
			pt.Shared = append(pt.Shared, rec.Trace())
		}
	}
	return rep, pt, nil
}

// replayHigh simulates every dag-job of one high-density task on its
// dedicated processor group. taskIdx and procs are used only for trace
// recording (rec may be nil).
//
// Template replay admits no preemption, so the event calendar degenerates to
// one (release, completion) event pair per dag-job: under full-WCET
// execution every vertex ends exactly at its template-slot end and the
// dag-job's completion event lands at start + max_v(End_v) — an O(1) lookup
// per job. Under random execution times the completion instant is the
// streamed maximum of the per-vertex end times, drawn in vertex order so the
// random stream matches the reference engine draw for draw.
func replayHigh(tk *task.DAGTask, taskIdx int, procs []int, tmpl *listsched.Schedule, cfg Config, mode ReplayMode, prio listsched.Priority, rng *rand.Rand, rec *trace.Recorder) (TaskStats, error) {
	var st TaskStats
	if tmpl == nil {
		return st, fmt.Errorf("missing template schedule")
	}
	// The template-slot envelope: with full-WCET execution a dag-job
	// released at r finishes exactly at r + maxEnd. Computed from the
	// intervals rather than trusting tmpl.Makespan, so an inconsistent
	// template cannot make the engines disagree.
	maxEnd := Time(0)
	for v := range tmpl.Intervals {
		if tmpl.Intervals[v].End > maxEnd {
			maxEnd = tmpl.Intervals[v].End
		}
	}
	prevBusyUntil := Time(0) // when the group's previous dag-job fully vacated
	err := forEachArrival(tk, cfg, rng, func(inst int, rel Time) error {
		start := rel
		if rel < prevBusyUntil {
			// Under TemplateReplay this cannot happen for a verified
			// allocation: makespan ≤ D ≤ T ≤ separation. Violations indicate
			// a broken allocation and are reported, not silently absorbed.
			if mode == TemplateReplay {
				return fmt.Errorf("dag-job released at %d while group busy until %d", rel, prevBusyUntil)
			}
			// NaiveRerun can overrun past T (that is the anomaly the E9
			// experiment demonstrates); model a dispatcher that starts the
			// next dag-job as soon as the group is vacated.
			start = prevBusyUntil
		}
		var finish Time
		switch {
		case mode == NaiveRerun:
			actual := make([]Time, tk.G.N())
			for v := range actual {
				actual[v] = execTime(tk.G.WCET(v), cfg, rng)
			}
			reduced, err := dagWithActuals(tk.G, actual)
			if err != nil {
				return err
			}
			s, err := rerunTemplate(reduced, tmpl, prio)
			if err != nil {
				return err
			}
			finish = start + s.Makespan
		case cfg.Exec == FullWCET && rec == nil:
			// Fast path: no draws, no per-vertex scan — one completion event.
			finish = start + maxEnd
		default:
			for v := 0; v < tk.G.N(); v++ {
				a := execTime(tk.G.WCET(v), cfg, rng)
				vs := start + tmpl.Intervals[v].Start
				end := vs + a
				if end > finish {
					finish = end
				}
				if rec != nil {
					id := trace.JobID{Task: taskIdx, Inst: inst, Vertex: v}
					rec.Job(trace.JobInfo{ID: id, Release: rel, Deadline: rel + tk.D, Demand: a})
					rec.Run(id, procs[tmpl.Intervals[v].Proc], vs, end)
				}
			}
		}
		st.Record(rel, finish, rel+tk.D)
		prevBusyUntil = finish
		return nil
	})
	return st, err
}

// dagWithActuals clones g with each vertex's WCET replaced by its actual
// execution time (all positive). Vertex types are preserved so a typed
// template's online rerun still respects processor-type pinning.
func dagWithActuals(g *dag.DAG, actual []Time) (*dag.DAG, error) {
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.AddTypedVertex(g.Vertex(v).Name, actual[v], g.TypeOf(v))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// rerunTemplate re-runs Graham's LS online on the template's platform: the
// typed engine when the template carries per-type budgets, the homogeneous
// one otherwise.
func rerunTemplate(g *dag.DAG, tmpl *listsched.Schedule, prio listsched.Priority) (*listsched.Schedule, error) {
	if len(tmpl.MTypes) != 0 {
		return listsched.RunTyped(g, tmpl.MTypes, prio)
	}
	return listsched.Run(g, tmpl.M, prio)
}

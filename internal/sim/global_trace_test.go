package sim

import (
	"math/rand"
	"testing"

	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// globalCons flattens every task's edges into trace precedence constraints.
// JobID.Task for global traces is the system task index; JobID.Inst is a
// global instance counter, but precedence is declared per (Task, Vertex)
// pair and instantiated per Inst by the checker, which is exactly right
// because instances of different tasks never share (Task, Inst).
func globalCons(sys task.System) []trace.Precedence {
	var cons []trace.Precedence
	for i, tk := range sys {
		for _, e := range tk.G.Edges() {
			cons = append(cons, trace.Precedence{Task: i, From: e[0], To: e[1]})
		}
	}
	return cons
}

func TestGlobalEDFTraceAudits(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	audited := 0
	for trial := 0; trial < 25; trial++ {
		sys := randomSystem(r, 1+r.Intn(4))
		m := 1 + r.Intn(4)
		rep, tr, err := GlobalEDFTraced(sys, m, Config{
			Horizon:  800,
			Arrivals: SporadicRandom,
			Exec:     UniformExec,
			Seed:     int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalReleased() == 0 {
			continue
		}
		audited++
		if err := tr.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cons := globalCons(sys)
		if err := tr.CheckPrecedence(cons); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.CheckGlobalEDF(m, cons); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if audited == 0 {
		t.Fatal("test vacuous")
	}
}

func TestGlobalEDFTracedStatsMatchUntraced(t *testing.T) {
	sys := task.System{
		parTask("p", 4, 5, 10, 10),
		lowTask("l", 2, 8, 16),
	}
	cfg := Config{Horizon: 500, Seed: 7, Arrivals: SporadicRandom, Exec: UniformExec}
	a, err := GlobalEDF(sys, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, tr, err := GlobalEDFTraced(sys, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerTask {
		if a.PerTask[i] != b.PerTask[i] {
			t.Fatalf("stats diverge: %+v vs %+v", a.PerTask[i], b.PerTask[i])
		}
	}
	// Trace misses agree with report misses.
	if got, want := len(tr.Misses()), b.TotalMissed(); (got > 0) != (want > 0) {
		t.Fatalf("trace misses %d vs report %d", got, want)
	}
}

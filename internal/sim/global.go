package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// gJob is one vertex job of one dag-job instance under global EDF.
type gJob struct {
	taskIdx   int
	inst      int // dag-job instance number within the task
	vertex    int
	release   Time // dag-job release
	deadline  Time // absolute dag-job deadline (the EDF priority)
	seq       int  // deterministic tie-break
	remaining Time
	pendPreds int
}

// GlobalEDF simulates vertex-level preemptive global EDF of the whole DAG
// task system on m identical processors: at every scheduling event the m
// available jobs with the earliest absolute dag-job deadlines execute (ties
// broken deterministically); jobs become available when their dag-job is
// released and all predecessor jobs have completed. Preemption and migration
// are free, as in the global-scheduling literature the paper cites ([5],
// [8], [16]).
//
// GlobalEDF is an observation tool, not a schedulability test: a miss-free
// simulation of the periodic/WCET scenario does not prove sporadic
// schedulability. Experiments use it as an empirical comparator.
func GlobalEDF(sys task.System, m int, cfg Config) (*Report, error) {
	rep, _, err := globalEDF(sys, m, cfg, nil)
	return rep, err
}

// GlobalEDFTraced is GlobalEDF plus the full execution trace, auditable with
// trace.CheckGlobalEDF. Processor ids in the trace are an arbitrary (but
// consistent) per-event assignment: global EDF migrates freely.
func GlobalEDFTraced(sys task.System, m int, cfg Config) (*Report, *trace.Trace, error) {
	rec := trace.NewRecorder(m)
	rep, _, err := globalEDF(sys, m, cfg, rec)
	if err != nil {
		return nil, nil, err
	}
	return rep, rec.Trace(), nil
}

func globalEDF(sys task.System, m int, cfg Config, rec *trace.Recorder) (*Report, *trace.Trace, error) {
	if m < 1 {
		return nil, nil, fmt.Errorf("sim: m must be ≥ 1, got %d", m)
	}
	if cfg.Horizon <= 0 {
		return nil, nil, fmt.Errorf("sim: horizon must be positive, got %d", cfg.Horizon)
	}
	rep := &Report{PerTask: make([]TaskStats, len(sys))}
	for i, tk := range sys {
		rep.PerTask[i].Name = tk.Name
	}

	// Materialize all vertex jobs of all dag-job instances.
	type instance struct {
		taskIdx  int
		release  Time
		deadline Time
		done     int // completed vertices
		finish   Time
	}
	var instances []instance
	var all []*gJob
	jobsOf := make(map[int][]*gJob) // instance index → its vertex jobs
	for i, tk := range sys {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		for _, rel := range arrivals(tk, cfg, rng) {
			instIdx := len(instances)
			instances = append(instances, instance{taskIdx: i, release: rel, deadline: rel + tk.D})
			for v := 0; v < tk.G.N(); v++ {
				j := &gJob{
					taskIdx: i, inst: instIdx, vertex: v,
					release: rel, deadline: rel + tk.D,
					remaining: execTime(tk.G.WCET(v), cfg, rng),
					pendPreds: tk.G.InDegree(v),
				}
				all = append(all, j)
				jobsOf[instIdx] = append(jobsOf[instIdx], j)
				if rec != nil {
					rec.Job(trace.JobInfo{
						ID:       trace.JobID{Task: i, Inst: instIdx, Vertex: v},
						Release:  rel,
						Deadline: rel + tk.D,
						Demand:   j.remaining,
					})
				}
			}
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].release < all[b].release })
	for s, j := range all {
		j.seq = s
	}

	// ready: available jobs; released[t]: source jobs pending release.
	ready := &gHeap{}
	next := 0 // next index in `all` to release
	now := Time(0)
	remainingJobs := len(all)

	releaseUpTo := func(t Time) {
		for next < len(all) && all[next].release <= t {
			if all[next].pendPreds == 0 {
				ready.push(all[next])
			}
			next++
		}
	}

	for remainingJobs > 0 {
		releaseUpTo(now)
		if ready.len() == 0 {
			if next >= len(all) {
				// Jobs remain but none ready and no future release:
				// impossible for valid DAGs (some running predecessor would
				// have completed) — guarded for robustness.
				return nil, nil, fmt.Errorf("sim: global EDF stalled at t=%d with %d jobs left", now, remainingJobs)
			}
			now = all[next].release
			continue
		}
		// Select the min(m, ready) highest-priority jobs.
		running := ready.takeUpTo(m)
		// Advance to the next event: earliest completion or next release.
		step := running[0].remaining
		for _, j := range running[1:] {
			if j.remaining < step {
				step = j.remaining
			}
		}
		if next < len(all) && all[next].release > now && all[next].release-now < step {
			step = all[next].release - now
		}
		if rec != nil {
			for p, j := range running {
				rec.Run(trace.JobID{Task: j.taskIdx, Inst: j.inst, Vertex: j.vertex}, p, now, now+step)
			}
		}
		now += step
		for _, j := range running {
			j.remaining -= step
			if j.remaining > 0 {
				ready.push(j) // preempted or still running; reconsidered next event
				continue
			}
			remainingJobs--
			inst := &instances[j.inst]
			inst.done++
			if now > inst.finish {
				inst.finish = now
			}
			if inst.done == len(jobsOf[j.inst]) {
				rep.PerTask[inst.taskIdx].record(inst.release, inst.finish, inst.deadline)
			}
			// Unblock successors.
			tk := sys[j.taskIdx]
			for _, w := range tk.G.Successors(j.vertex) {
				for _, sj := range jobsOf[j.inst] {
					if sj.vertex == w {
						sj.pendPreds--
						if sj.pendPreds == 0 && sj.release <= now {
							ready.push(sj)
						}
					}
				}
			}
		}
	}
	return rep, nil, nil
}

// gHeap is a min-heap of jobs by (deadline, seq).
type gHeap struct{ a []*gJob }

func (h *gHeap) len() int { return len(h.a) }
func (h *gHeap) less(x, y int) bool {
	if h.a[x].deadline != h.a[y].deadline {
		return h.a[x].deadline < h.a[y].deadline
	}
	return h.a[x].seq < h.a[y].seq
}

func (h *gHeap) push(j *gJob) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *gHeap) pop() *gJob {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// takeUpTo pops up to k jobs in priority order.
func (h *gHeap) takeUpTo(k int) []*gJob {
	if k > h.len() {
		k = h.len()
	}
	out := make([]*gJob, 0, k)
	for len(out) < k {
		out = append(out, h.pop())
	}
	return out
}

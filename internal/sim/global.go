package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// gJob is one vertex job of one dag-job instance under global EDF.
type gJob struct {
	taskIdx   int
	inst      int // global dag-job instance number
	vertex    int
	release   Time // dag-job release
	deadline  Time // absolute dag-job deadline (the EDF priority)
	seq       int  // deterministic tie-break
	remaining Time
	pendPreds int
	gen       uint32 // bumped when the job leaves the executing set (see calendar.go)
}

// GlobalEDF simulates vertex-level preemptive global EDF of the whole DAG
// task system on m identical processors: at every scheduling event the m
// available jobs with the earliest absolute dag-job deadlines execute (ties
// broken deterministically); jobs become available when their dag-job is
// released and all predecessor jobs have completed. Preemption and migration
// are free, as in the global-scheduling literature the paper cites ([5],
// [8], [16]).
//
// GlobalEDF is an observation tool, not a schedulability test: a miss-free
// simulation of the periodic/WCET scenario does not prove sporadic
// schedulability. Experiments use it as an empirical comparator.
func GlobalEDF(sys task.System, m int, cfg Config) (*Report, error) {
	rep, _, err := globalEDF(sys, m, cfg, nil)
	return rep, err
}

// GlobalEDFTraced is GlobalEDF plus the full execution trace, auditable with
// trace.CheckGlobalEDF. Processor ids in the trace are an arbitrary (but
// consistent) per-event assignment: global EDF migrates freely.
func GlobalEDFTraced(sys task.System, m int, cfg Config) (*Report, *trace.Trace, error) {
	rec := trace.NewRecorder(m)
	rep, _, err := globalEDF(sys, m, cfg, rec)
	if err != nil {
		return nil, nil, err
	}
	return rep, rec.Trace(), nil
}

// globalEDF is the event-calendar engine for global EDF. The calendar holds
// one completion event per executing job (invalidated lazily through the
// generation counter when the job is preempted) plus a single outstanding
// release event for the head of the sorted release lane. The executing set
// is kept sorted by (deadline, seq) — its position is the trace processor
// id — and the invariant maintained at every event is that it holds the m
// highest-priority available jobs, exactly the set the reference engine
// re-derives from scratch each step.
func globalEDF(sys task.System, m int, cfg Config, rec *trace.Recorder) (*Report, *trace.Trace, error) {
	if m < 1 {
		return nil, nil, fmt.Errorf("sim: m must be ≥ 1, got %d", m)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rep := &Report{PerTask: make([]TaskStats, len(sys))}
	for i, tk := range sys {
		rep.PerTask[i].Name = tk.Name
	}

	// Materialize all vertex jobs of all dag-job instances. Creation order —
	// per task, per release, per vertex — fixes both the random stream and
	// the global instance numbering shared with the reference engine.
	type instance struct {
		taskIdx  int
		release  Time
		deadline Time
		done     int // completed vertices
		finish   Time
	}
	var instances []instance
	var jobsOf [][]*gJob // instance index → its vertex jobs, vertex-indexed
	perTask := make([][]*gJob, len(sys))
	needsRand := cfg.needsRand()
	for i, tk := range sys {
		var rng *rand.Rand
		if needsRand {
			rng = rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		}
		g := tk.G
		list := make([]*gJob, 0, (cfg.Horizon/tk.T+1)*Time(g.N()))
		_ = forEachArrival(tk, cfg, rng, func(_ int, rel Time) error {
			instIdx := len(instances)
			instances = append(instances, instance{taskIdx: i, release: rel, deadline: rel + tk.D})
			backing := make([]gJob, g.N())
			vjobs := make([]*gJob, g.N())
			for v := 0; v < g.N(); v++ {
				j := &backing[v]
				*j = gJob{
					taskIdx: i, inst: instIdx, vertex: v,
					release: rel, deadline: rel + tk.D,
					remaining: execTime(g.WCET(v), cfg, rng),
					pendPreds: g.InDegree(v),
				}
				list = append(list, j)
				vjobs[v] = j
				if rec != nil {
					rec.Job(trace.JobInfo{
						ID:       trace.JobID{Task: i, Inst: instIdx, Vertex: v},
						Release:  rel,
						Deadline: rel + tk.D,
						Demand:   j.remaining,
					})
				}
			}
			jobsOf = append(jobsOf, vjobs)
			return nil
		})
		perTask[i] = list
	}
	// Per-task lists are already release-sorted; merge them in the stable
	// order (release, then task index) the reference engine's stable sort
	// produces, assigning the deterministic tie-break sequence.
	all := mergeJobPtrs(perTask)
	for s, j := range all {
		j.seq = s
	}

	jobLess := func(a, b *gJob) bool {
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.seq < b.seq
	}

	avail := &gHeap{}                    // available but not executing
	executing := make([]*gJob, 0, m)     // sorted by (deadline, seq); index = trace proc id
	cal := &calendar{}
	next := 0 // head of the sorted release lane
	remainingJobs := len(all)
	now := Time(0)
	segStart := Time(0) // start of the current constant-schedule segment

	// closeSegment charges [segStart, t) to every executing job and emits
	// the corresponding trace slices. It must run before any mutation of the
	// executing set; at t == segStart it is a no-op, so same-instant churn
	// (a job entering and being displaced at the same event time) costs and
	// records nothing.
	closeSegment := func(t Time) {
		if t <= segStart {
			return
		}
		for p, j := range executing {
			j.remaining -= t - segStart
			if rec != nil {
				rec.Run(trace.JobID{Task: j.taskIdx, Inst: j.inst, Vertex: j.vertex}, p, segStart, t)
			}
		}
		segStart = t
	}
	enter := func(j *gJob, t Time) {
		pos := sort.Search(len(executing), func(k int) bool { return jobLess(j, executing[k]) })
		executing = append(executing, nil)
		copy(executing[pos+1:], executing[pos:])
		executing[pos] = j
		cal.push(calEvent{at: t + j.remaining, kind: evCompletion, gen: j.gen, job: j})
	}
	leave := func(pos int) *gJob {
		j := executing[pos]
		executing = append(executing[:pos], executing[pos+1:]...)
		j.gen++ // invalidate the outstanding completion event
		return j
	}
	// rebalance restores the top-m invariant after releases or completions.
	rebalance := func(t Time) {
		for avail.len() > 0 {
			if len(executing) < m {
				closeSegment(t)
				enter(avail.pop(), t)
				continue
			}
			if !jobLess(avail.peek(), executing[len(executing)-1]) {
				break
			}
			closeSegment(t)
			avail.push(leave(len(executing) - 1))
			enter(avail.pop(), t)
		}
	}
	admit := func(t Time) {
		for next < len(all) && all[next].release <= t {
			if all[next].pendPreds == 0 {
				avail.push(all[next])
			}
			next++
		}
	}

	// complete retires one executing job whose remaining has reached zero:
	// removes it, records the instance if it was the last vertex, and
	// unblocks DAG successors. By the time a predecessor completes, the
	// release lane has passed the whole instance (it executed, so it was
	// admitted), so each successor is pushed into avail here exactly once.
	complete := func(j *gJob, t Time) {
		for pos := range executing {
			if executing[pos] == j {
				leave(pos)
				break
			}
		}
		remainingJobs--
		ins := &instances[j.inst]
		ins.done++
		if t > ins.finish {
			ins.finish = t
		}
		if ins.done == len(jobsOf[j.inst]) {
			rep.PerTask[ins.taskIdx].Record(ins.release, ins.finish, ins.deadline)
		}
		for _, w := range sys[j.taskIdx].G.Successors(j.vertex) {
			sj := jobsOf[j.inst][w]
			sj.pendPreds--
			if sj.pendPreds == 0 && sj.release <= t {
				avail.push(sj)
			}
		}
	}

	if len(all) > 0 {
		cal.push(calEvent{at: all[0].release, kind: evRelease})
	}
	for remainingJobs > 0 {
		if cal.len() == 0 {
			// Jobs remain but nothing executes and no release is pending:
			// impossible for valid DAGs (some running predecessor would have
			// completed) — guarded for robustness.
			return nil, nil, fmt.Errorf("sim: global EDF stalled at t=%d with %d jobs left", now, remainingJobs)
		}
		e := cal.pop()
		switch e.kind {
		case evCompletion:
			j := e.job
			if e.gen != j.gen {
				continue // stale: the job was preempted after this was scheduled
			}
			now = e.at
			closeSegment(now) // drives j.remaining to exactly 0
			complete(j, now)
			// Drain every other completion due at this instant before
			// rebalancing: a rebalance in between could displace a job that
			// is about to complete, deferring work the reference engine
			// retires now.
			for cal.len() > 0 && cal.a[0].at == now && cal.a[0].kind == evCompletion {
				e2 := cal.pop()
				if e2.gen != e2.job.gen {
					continue
				}
				complete(e2.job, now)
			}
			rebalance(now)
		case evRelease:
			now = e.at
			admit(now)
			if next < len(all) {
				cal.push(calEvent{at: all[next].release, kind: evRelease})
			}
			rebalance(now)
		}
	}
	return rep, nil, nil
}

// mergeJobPtrs merges per-task release-sorted vertex-job lists into one
// list ordered by release with ties broken by task index — the order a
// stable sort of the concatenation produces (see mergeByRelease in edf.go).
func mergeJobPtrs(perTask [][]*gJob) []*gJob {
	total, nonEmpty, only := 0, 0, -1
	for j, l := range perTask {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
			only = j
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return perTask[only]
	}
	out := make([]*gJob, 0, total)
	pos := make([]int, len(perTask))
	h := &idxHeap{less: func(a, b int) bool {
		ra, rb := perTask[a][pos[a]].release, perTask[b][pos[b]].release
		if ra != rb {
			return ra < rb
		}
		return a < b
	}}
	for j, l := range perTask {
		if len(l) > 0 {
			h.push(j)
		}
	}
	for h.len() > 0 {
		j := h.pop()
		out = append(out, perTask[j][pos[j]])
		pos[j]++
		if pos[j] < len(perTask[j]) {
			h.push(j)
		}
	}
	return out
}

// gHeap is a min-heap of jobs by (deadline, seq).
type gHeap struct{ a []*gJob }

func (h *gHeap) len() int    { return len(h.a) }
func (h *gHeap) peek() *gJob { return h.a[0] }
func (h *gHeap) less(x, y int) bool {
	if h.a[x].deadline != h.a[y].deadline {
		return h.a[x].deadline < h.a[y].deadline
	}
	return h.a[x].seq < h.a[y].seq
}

func (h *gHeap) push(j *gJob) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *gHeap) pop() *gJob {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

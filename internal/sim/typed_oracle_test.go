package sim_test

// Typed arm of the differential oracle: the fast event-calendar engine and
// the time-stepped reference replay typed allocations (per-type dedicated
// groups, per-type shared processors) and must agree exactly — identical
// per-task statistics and byte-identical canonical traces — across the same
// policy matrix as the untyped suite. On top of the engine agreement, every
// traced execution slice is audited against the platform's type-major
// numbering: a vertex may only ever run on a processor of its own type, and
// a shared processor only ever serves low tasks of its type.

import (
	"fmt"
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/sim"
	"fedsched/internal/sim/reference"
	"fedsched/internal/task"

	_ "fedsched/internal/typedfed"
)

// typedOracleSystem is oracleSystem with every vertex independently
// re-pinned to type b with probability 0.3.
func typedOracleSystem(r *rand.Rand, n int) task.System {
	sys := oracleSystem(r, n)
	for i, tk := range sys {
		g := tk.G
		b := dag.NewBuilder(g.N())
		for v := 0; v < g.N(); v++ {
			ty := 0
			if r.Float64() < 0.3 {
				ty = 1
			}
			b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), ty)
		}
		for _, e := range g.Edges() {
			b.AddEdge(e[0], e[1])
		}
		sys[i] = task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
	}
	return sys
}

// typedAcceptedSystem draws typed systems until the typed policy accepts one
// on some genuinely two-type platform, returning the system and its verified
// allocation.
func typedAcceptedSystem(r *rand.Rand) (task.System, *core.Allocation) {
	for tries := 0; tries < 50; tries++ {
		sys := typedOracleSystem(r, 2+r.Intn(4))
		for m := 2; m <= 10; m++ {
			mtypes := []int{m - m/2, m / 2}
			alloc, err := core.Schedule(sys, m, core.Options{Policy: core.PolicyTyped, MTypes: mtypes})
			if err != nil {
				continue
			}
			if len(alloc.MTypes) == 0 {
				continue // degenerated to the strict shape
			}
			return sys, alloc
		}
	}
	return nil, nil
}

// typeOfGlobalProc returns the type owning global processor p under the
// type-major numbering declared by mtypes.
func typeOfGlobalProc(mtypes []int, p int) int {
	base := 0
	for s, m := range mtypes {
		if p < base+m {
			return s
		}
		base += m
	}
	return -1
}

// auditTypedTraces asserts no execution slice ever runs on a wrong-type
// processor: dedicated-group slices carry global processor ids and each
// vertex must stay inside its type's block; a shared processor's slices may
// only belong to low tasks of the processor's type.
func auditTypedTraces(t *testing.T, label string, sys task.System, alloc *core.Allocation, pt *sim.PlatformTrace) {
	t.Helper()
	for k, h := range alloc.High {
		g := sys[h.TaskIndex].G
		for _, s := range pt.High[k].Slices {
			want := g.TypeOf(s.Job.Vertex)
			if got := typeOfGlobalProc(alloc.MTypes, s.Proc); got != want {
				t.Fatalf("%s: task %d vertex %d (type %d) ran on processor %d of type %d",
					label, h.TaskIndex, s.Job.Vertex, want, s.Proc, got)
			}
		}
	}
	for k, p := range alloc.SharedProcs {
		procType := typeOfGlobalProc(alloc.MTypes, p)
		for _, s := range pt.Shared[k].Slices {
			want, _ := sys[s.Job.Task].G.UniformType()
			if want != procType {
				t.Fatalf("%s: low task %d (type %d) ran on shared processor %d of type %d",
					label, s.Job.Task, want, p, procType)
			}
		}
	}
}

// TestOracleTypedFederated differentials typed allocations across the full
// policy matrix. NaiveRerun is the most typed-sensitive mode: it re-runs
// typed list scheduling per instance (RunTyped), so an engine that forgot
// the budgets would dispatch across type boundaries.
func TestOracleTypedFederated(t *testing.T) {
	const wantSystems = 10
	trials, audited := 0, 0
	for seed := int64(0); seed < 80 && trials < wantSystems*len(oracleMatrix); seed++ {
		r := rand.New(rand.NewSource(5000 + seed))
		sys, alloc := typedAcceptedSystem(r)
		if sys == nil {
			continue
		}
		for ci, combo := range oracleMatrix {
			cfg := sim.Config{
				Horizon:  1500,
				Arrivals: combo.arr,
				Exec:     combo.exec,
				Shared:   combo.shared,
				Seed:     seed*100 + int64(ci),
			}
			label := fmt.Sprintf("typed seed=%d arr=%v exec=%v shared=%v mode=%d", seed, combo.arr, combo.exec, combo.shared, combo.mode)
			if combo.mode == sim.TemplateReplay {
				fastRep, fastPT, ferr := sim.FederatedTraced(sys, alloc, cfg)
				refRep, refPT, rerr := reference.FederatedTraced(sys, alloc, cfg)
				if ferr != nil || rerr != nil {
					t.Fatalf("%s: fast err=%v, ref err=%v", label, ferr, rerr)
				}
				diffReports(t, label, fastRep, refRep)
				diffTraces(t, label+" high", fastPT.High, refPT.High)
				diffTraces(t, label+" shared", fastPT.Shared, refPT.Shared)
				auditTypedTraces(t, label+" fast", sys, alloc, fastPT)
				auditTypedTraces(t, label+" ref", sys, alloc, refPT)
				audited++
			} else {
				fastRep, ferr := sim.FederatedMode(sys, alloc, cfg, combo.mode, nil)
				refRep, rerr := reference.FederatedMode(sys, alloc, cfg, combo.mode, nil)
				if ferr != nil || rerr != nil {
					t.Fatalf("%s: fast err=%v, ref err=%v", label, ferr, rerr)
				}
				diffReports(t, label, fastRep, refRep)
			}
			trials++
		}
	}
	if trials < 100 {
		t.Fatalf("only %d typed oracle trials ran, want ≥ 100", trials)
	}
	if audited == 0 {
		t.Fatal("no traced typed trials were type-audited")
	}
	t.Logf("typed federated oracle: %d trials, %d type-audited", trials, audited)
}

// TestOracleTypedDedicatedGroups retries until systems with at least one
// dedicated typed group are found, so the template-replay and rerun paths of
// both engines demonstrably exercise multi-type grants, not just per-type
// partitioned EDF.
func TestOracleTypedDedicatedGroups(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 200 && found < 5; seed++ {
		r := rand.New(rand.NewSource(7000 + seed))
		sys, alloc := typedAcceptedSystem(r)
		if sys == nil || len(alloc.High) == 0 {
			continue
		}
		found++
		cfg := sim.Config{Horizon: 2000, Arrivals: sim.SporadicRandom, Exec: sim.UniformExec, Shared: sim.EDFPolicy, Seed: seed}
		label := fmt.Sprintf("typed-groups seed=%d", seed)
		fastRep, fastPT, ferr := sim.FederatedTraced(sys, alloc, cfg)
		refRep, refPT, rerr := reference.FederatedTraced(sys, alloc, cfg)
		if ferr != nil || rerr != nil {
			t.Fatalf("%s: fast err=%v, ref err=%v", label, ferr, rerr)
		}
		diffReports(t, label, fastRep, refRep)
		diffTraces(t, label+" high", fastPT.High, refPT.High)
		diffTraces(t, label+" shared", fastPT.Shared, refPT.Shared)
		auditTypedTraces(t, label, sys, alloc, fastPT)

		fastN, ferr := sim.FederatedMode(sys, alloc, cfg, sim.NaiveRerun, nil)
		refN, rerr := reference.FederatedMode(sys, alloc, cfg, sim.NaiveRerun, nil)
		if ferr != nil || rerr != nil {
			t.Fatalf("%s rerun: fast err=%v, ref err=%v", label, ferr, rerr)
		}
		diffReports(t, label+" rerun", fastN, refN)
	}
	if found == 0 {
		t.Fatal("no typed system with dedicated groups was accepted in 200 seeds")
	}
	t.Logf("typed dedicated-group oracle: %d systems", found)
}

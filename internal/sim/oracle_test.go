package sim_test

// The differential oracle: the fast event-calendar engine (package sim) and
// the original time-stepped engine (package sim/reference) are run on the
// same (system, allocation, Config, seed) across the full policy matrix
// {Periodic, SporadicRandom} × {FullWCET, UniformExec} × {EDF, DM} ×
// {TemplateReplay, NaiveRerun}, and must agree exactly: identical per-task
// statistics (releases, misses, response times, lateness) and byte-identical
// canonical traces (trace.Trace.Dump). Both engines seed their per-task
// random sources the same way and draw in the same order, so any divergence
// is an engine bug, not noise.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/sim"
	"fedsched/internal/sim/reference"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// oracleSystem builds a small random constrained-deadline system. The first
// task is biased toward high density (large volume, tight deadline) so that
// accepted systems regularly exercise the dedicated-group replay paths, not
// just partitioned EDF.
func oracleSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(6)
		if i == 0 && r.Intn(2) == 0 {
			nv = 4 + r.Intn(5)
		}
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(task.Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		var d task.Time
		if i == 0 {
			d = g.LongestChain() + task.Time(r.Intn(3))
		} else {
			d = g.LongestChain() + task.Time(r.Intn(int(2*g.Volume())))
		}
		t := d + task.Time(r.Intn(40))
		sys = append(sys, task.MustNew(fmt.Sprintf("t%d", i), g, d, t))
	}
	return sys
}

// acceptedSystem draws random systems until FEDCONS accepts one on some
// platform size, returning the system and its verified allocation.
func acceptedSystem(r *rand.Rand) (task.System, *core.Allocation) {
	for tries := 0; tries < 50; tries++ {
		sys := oracleSystem(r, 2+r.Intn(4))
		for m := 2; m <= 10; m++ {
			alloc, err := core.Schedule(sys, m, core.Options{})
			if err != nil {
				continue
			}
			return sys, alloc
		}
	}
	return nil, nil
}

func diffReports(t *testing.T, label string, fast, ref *sim.Report) {
	t.Helper()
	if !reflect.DeepEqual(fast.PerTask, ref.PerTask) {
		for i := range fast.PerTask {
			if fast.PerTask[i] != ref.PerTask[i] {
				t.Errorf("%s: task %d stats diverge:\n fast %+v\n ref  %+v", label, i, fast.PerTask[i], ref.PerTask[i])
			}
		}
		t.Fatalf("%s: reports diverge (fast misses=%d, ref misses=%d)", label, fast.TotalMissed(), ref.TotalMissed())
	}
}

func diffTraces(t *testing.T, label string, fast, ref []*trace.Trace) {
	t.Helper()
	if len(fast) != len(ref) {
		t.Fatalf("%s: trace count diverges: fast %d, ref %d", label, len(fast), len(ref))
	}
	for i := range fast {
		fd, rd := fast[i].Dump(), ref[i].Dump()
		if fd != rd {
			t.Fatalf("%s: trace %d diverges\n--- fast ---\n%s--- reference ---\n%s", label, i, fd, rd)
		}
	}
}

var oracleMatrix = []struct {
	arr    sim.ArrivalPolicy
	exec   sim.ExecPolicy
	shared sim.SharedPolicy
	mode   sim.ReplayMode
}{
	{sim.Periodic, sim.FullWCET, sim.EDFPolicy, sim.TemplateReplay},
	{sim.Periodic, sim.FullWCET, sim.EDFPolicy, sim.NaiveRerun},
	{sim.Periodic, sim.FullWCET, sim.DMPolicy, sim.TemplateReplay},
	{sim.Periodic, sim.FullWCET, sim.DMPolicy, sim.NaiveRerun},
	{sim.Periodic, sim.UniformExec, sim.EDFPolicy, sim.TemplateReplay},
	{sim.Periodic, sim.UniformExec, sim.EDFPolicy, sim.NaiveRerun},
	{sim.Periodic, sim.UniformExec, sim.DMPolicy, sim.TemplateReplay},
	{sim.Periodic, sim.UniformExec, sim.DMPolicy, sim.NaiveRerun},
	{sim.SporadicRandom, sim.FullWCET, sim.EDFPolicy, sim.TemplateReplay},
	{sim.SporadicRandom, sim.FullWCET, sim.EDFPolicy, sim.NaiveRerun},
	{sim.SporadicRandom, sim.FullWCET, sim.DMPolicy, sim.TemplateReplay},
	{sim.SporadicRandom, sim.FullWCET, sim.DMPolicy, sim.NaiveRerun},
	{sim.SporadicRandom, sim.UniformExec, sim.EDFPolicy, sim.TemplateReplay},
	{sim.SporadicRandom, sim.UniformExec, sim.EDFPolicy, sim.NaiveRerun},
	{sim.SporadicRandom, sim.UniformExec, sim.DMPolicy, sim.TemplateReplay},
	{sim.SporadicRandom, sim.UniformExec, sim.DMPolicy, sim.NaiveRerun},
}

// TestOracleFederated is the main differential-oracle suite: ≥ 200 seeded
// trials of the federated simulator over the full policy matrix.
func TestOracleFederated(t *testing.T) {
	const wantSystems = 16 // × 16 matrix combinations = 256 trials ≥ 200
	trials := 0
	for seed := int64(0); seed < 60 && trials < wantSystems*len(oracleMatrix); seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		sys, alloc := acceptedSystem(r)
		if sys == nil {
			continue
		}
		for ci, combo := range oracleMatrix {
			cfg := sim.Config{
				Horizon:  1500,
				Arrivals: combo.arr,
				Exec:     combo.exec,
				Shared:   combo.shared,
				Seed:     seed*100 + int64(ci),
			}
			label := fmt.Sprintf("seed=%d arr=%v exec=%v shared=%v mode=%d", seed, combo.arr, combo.exec, combo.shared, combo.mode)
			if combo.mode == sim.TemplateReplay {
				fastRep, fastPT, ferr := sim.FederatedTraced(sys, alloc, cfg)
				refRep, refPT, rerr := reference.FederatedTraced(sys, alloc, cfg)
				if ferr != nil || rerr != nil {
					t.Fatalf("%s: fast err=%v, ref err=%v", label, ferr, rerr)
				}
				diffReports(t, label, fastRep, refRep)
				diffTraces(t, label+" high", fastPT.High, refPT.High)
				diffTraces(t, label+" shared", fastPT.Shared, refPT.Shared)
			} else {
				fastRep, ferr := sim.FederatedMode(sys, alloc, cfg, combo.mode, nil)
				refRep, rerr := reference.FederatedMode(sys, alloc, cfg, combo.mode, nil)
				if ferr != nil || rerr != nil {
					t.Fatalf("%s: fast err=%v, ref err=%v", label, ferr, rerr)
				}
				diffReports(t, label, fastRep, refRep)
			}
			trials++
		}
	}
	if trials < 200 {
		t.Fatalf("only %d oracle trials ran, want ≥ 200", trials)
	}
	t.Logf("federated oracle: %d trials", trials)
}

// TestOracleGlobalEDF differentials the global-EDF simulator, whose
// event-calendar implementation (lazy completion invalidation, incremental
// executing set) is the furthest from the reference's re-derive-every-step
// loop.
func TestOracleGlobalEDF(t *testing.T) {
	trials := 0
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		sys := oracleSystem(r, 2+r.Intn(4))
		m := 1 + r.Intn(4)
		for ci, combo := range oracleMatrix[:8] { // mode/shared are irrelevant under global EDF
			if combo.shared != sim.EDFPolicy || combo.mode != sim.TemplateReplay {
				continue
			}
			cfg := sim.Config{Horizon: 1200, Arrivals: combo.arr, Exec: combo.exec, Seed: seed*10 + int64(ci)}
			label := fmt.Sprintf("seed=%d m=%d arr=%v exec=%v", seed, m, combo.arr, combo.exec)
			fastRep, fastTr, ferr := sim.GlobalEDFTraced(sys, m, cfg)
			refRep, refTr, rerr := reference.GlobalEDFTraced(sys, m, cfg)
			if ferr != nil || rerr != nil {
				t.Fatalf("%s: fast err=%v, ref err=%v", label, ferr, rerr)
			}
			diffReports(t, label, fastRep, refRep)
			diffTraces(t, label, []*trace.Trace{fastTr}, []*trace.Trace{refTr})
			trials++
		}
	}
	t.Logf("global EDF oracle: %d trials", trials)
}

// TestOracleSporadicUniformStress hammers the sporadic + uniform-execution
// corner — the only mode in which both random streams (gaps and execution
// times) are live — with more seeds at a longer horizon.
func TestOracleSporadicUniformStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress oracle skipped in -short")
	}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		sys, alloc := acceptedSystem(r)
		if sys == nil {
			continue
		}
		cfg := sim.Config{
			Horizon:  10_000,
			Arrivals: sim.SporadicRandom,
			Exec:     sim.UniformExec,
			Shared:   sim.EDFPolicy,
			Seed:     seed,
		}
		fastRep, fastPT, ferr := sim.FederatedTraced(sys, alloc, cfg)
		refRep, refPT, rerr := reference.FederatedTraced(sys, alloc, cfg)
		if ferr != nil || rerr != nil {
			t.Fatalf("seed=%d: fast err=%v, ref err=%v", seed, ferr, rerr)
		}
		label := fmt.Sprintf("stress seed=%d", seed)
		diffReports(t, label, fastRep, refRep)
		diffTraces(t, label+" high", fastPT.High, refPT.High)
		diffTraces(t, label+" shared", fastPT.Shared, refPT.Shared)
	}
}

package sim

// This file holds the event calendar at the heart of the fast engine.
//
// Each processor group is simulated by jumping between the only instants at
// which its schedule can change:
//
//   - release events — a dag-job (or, under global EDF, the batch of vertex
//     jobs of an instance) enters the system. Each release event doubles as
//     the preemption check: the newly available work is compared against the
//     lowest-priority executing job and swapped in if it wins.
//   - completion events — an executing job exhausts its remaining execution
//     and vacates its processor, possibly unblocking DAG successors.
//   - template-slot events — under TemplateReplay a vertex starts exactly at
//     start + σ_i offset; because the offsets are a lookup table, the whole
//     dag-job collapses to a single completion event at
//     start + max_v(offset_v + actual_v) (see replayHigh).
//
// Between consecutive events nothing changes, so the engine advances the
// clock directly from one event to the next: total cost is O(jobs · log)
// and never depends on the horizon length.
//
// The calendar is a binary min-heap ordered by (time, kind, seq), with
// completions sorted before releases at the same instant — the order the
// reference engine implies (a processor freed at t is available to a job
// released at t). Completion events are invalidated lazily: every job
// carries a generation counter that is bumped whenever the job is preempted
// (leaves the executing set), and a popped completion event whose generation
// no longer matches its job is stale and discarded. This avoids paying for
// heap deletion on every preemption.
//
// Degenerate forms of the same calendar appear in the other group
// schedulers, where a full heap would be overhead with no benefit:
//
//   - uniprocEDF (edf.go): one processor means at most one outstanding
//     completion event, so the calendar reduces to a two-way minimum between
//     the running job's completion and the next release in the sorted
//     release lane, plus the ready heap.
//   - replayHigh (federated.go): template replay admits no preemption at
//     all, so each dag-job is exactly one release event and one completion
//     event, processed in release order.
type calEvent struct {
	at   Time
	kind eventKind
	gen  uint32 // matches job.gen when the completion event is still valid
	job  *gJob  // nil for release events
}

type eventKind uint8

const (
	evCompletion eventKind = iota // sorted first at equal times
	evRelease
)

// calendar is a binary min-heap of events by (at, kind, job seq).
type calendar struct{ a []calEvent }

func (c *calendar) len() int { return len(c.a) }

func (c *calendar) less(x, y int) bool {
	ex, ey := &c.a[x], &c.a[y]
	if ex.at != ey.at {
		return ex.at < ey.at
	}
	if ex.kind != ey.kind {
		return ex.kind < ey.kind
	}
	if ex.job == nil || ey.job == nil {
		// At most one release event is outstanding at a time, so two nil-job
		// events never race; order is immaterial here.
		return false
	}
	return ex.job.seq < ey.job.seq
}

func (c *calendar) push(e calEvent) {
	c.a = append(c.a, e)
	i := len(c.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !c.less(i, p) {
			break
		}
		c.a[p], c.a[i] = c.a[i], c.a[p]
		i = p
	}
}

func (c *calendar) pop() calEvent {
	top := c.a[0]
	last := len(c.a) - 1
	c.a[0] = c.a[last]
	c.a[last] = calEvent{}
	c.a = c.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && c.less(l, s) {
			s = l
		}
		if r < last && c.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		c.a[i], c.a[s] = c.a[s], c.a[i]
		i = s
	}
	return top
}

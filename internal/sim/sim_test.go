package sim

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/task"
)

func lowTask(name string, c, d, t Time) *task.DAGTask {
	return task.MustNew(name, dag.Singleton(c), d, t)
}

func parTask(name string, k int, w, d, t Time) *task.DAGTask {
	wcets := make([]Time, k)
	for i := range wcets {
		wcets[i] = w
	}
	return task.MustNew(name, dag.Independent(wcets...), d, t)
}

func mustAlloc(t *testing.T, sys task.System, m int) *core.Allocation {
	t.Helper()
	alloc, err := core.Schedule(sys, m, core.Options{})
	if err != nil {
		t.Fatalf("FEDCONS failed: %v", err)
	}
	if err := core.Verify(sys, m, alloc); err != nil {
		t.Fatalf("allocation invalid: %v", err)
	}
	return alloc
}

func TestArrivalsRespectMinSeparation(t *testing.T) {
	tk := lowTask("a", 1, 5, 10)
	for _, pol := range []ArrivalPolicy{Periodic, SporadicRandom} {
		cfg := Config{Horizon: 1000, Arrivals: pol, Seed: 3}
		rng := rand.New(rand.NewSource(cfg.Seed))
		rel := arrivals(tk, cfg, rng)
		if len(rel) == 0 || rel[0] != 0 {
			t.Fatalf("%v: first release = %v", pol, rel)
		}
		for i := 1; i < len(rel); i++ {
			if rel[i]-rel[i-1] < tk.T {
				t.Fatalf("%v: separation %d < T=%d", pol, rel[i]-rel[i-1], tk.T)
			}
			if pol == Periodic && rel[i]-rel[i-1] != tk.T {
				t.Fatalf("periodic separation %d != T", rel[i]-rel[i-1])
			}
		}
		for _, r := range rel {
			if r >= cfg.Horizon {
				t.Fatalf("release %d beyond horizon", r)
			}
		}
	}
}

func TestExecTimeRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if e := execTime(7, Config{Exec: FullWCET}, rng); e != 7 {
			t.Fatalf("FullWCET returned %d", e)
		}
		e := execTime(7, Config{Exec: UniformExec}, rng)
		if e < 1 || e > 7 {
			t.Fatalf("UniformExec returned %d", e)
		}
	}
}

func TestFederatedAcceptedSystemNeverMisses(t *testing.T) {
	sys := task.System{
		parTask("h", 4, 5, 10, 10), // high-density, 2 dedicated procs
		lowTask("l1", 2, 8, 16),
		lowTask("l2", 3, 12, 24),
	}
	alloc := mustAlloc(t, sys, 3)
	for _, arr := range []ArrivalPolicy{Periodic, SporadicRandom} {
		for _, ex := range []ExecPolicy{FullWCET, UniformExec} {
			rep, err := Federated(sys, alloc, Config{Horizon: 5000, Arrivals: arr, Exec: ex, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalMissed() != 0 {
				t.Fatalf("arr=%v exec=%v: %d misses in accepted system", arr, ex, rep.TotalMissed())
			}
			if rep.TotalReleased() == 0 {
				t.Fatal("no dag-jobs released")
			}
		}
	}
}

func TestFederatedResponseBounds(t *testing.T) {
	sys := task.System{parTask("h", 4, 5, 10, 10)}
	alloc := mustAlloc(t, sys, 2)
	rep, err := Federated(sys, alloc, Config{Horizon: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.PerTask[0]
	// Template makespan is 10; with WCET execution every response is 10.
	if st.MaxResponse != 10 {
		t.Errorf("MaxResponse = %d, want 10", st.MaxResponse)
	}
	if st.MeanResponse() != 10 {
		t.Errorf("MeanResponse = %v, want 10", st.MeanResponse())
	}
	if st.MaxLateness != 0 {
		t.Errorf("MaxLateness = %d, want 0", st.MaxLateness)
	}
}

func TestFederatedEarlyCompletionShortensResponses(t *testing.T) {
	sys := task.System{parTask("h", 4, 5, 10, 10)}
	alloc := mustAlloc(t, sys, 2)
	rep, err := Federated(sys, alloc, Config{Horizon: 5000, Exec: UniformExec, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.PerTask[0]
	if st.Missed != 0 {
		t.Fatalf("template replay with early completions missed %d deadlines", st.Missed)
	}
	if st.MaxResponse > 10 {
		t.Errorf("early completion increased response beyond WCET makespan: %d", st.MaxResponse)
	}
	if st.MeanResponse() >= 10 {
		t.Errorf("mean response %v not reduced by early completions", st.MeanResponse())
	}
}

func TestUniprocEDFSingleTask(t *testing.T) {
	group := task.System{lowTask("a", 3, 5, 10)}
	stats := uniprocEDF(group, Config{Horizon: 100}, func(j int) *rand.Rand {
		return rand.New(rand.NewSource(1))
	}, nil, 0, nil)
	if stats[0].Released != 10 {
		t.Errorf("released = %d, want 10", stats[0].Released)
	}
	if stats[0].Missed != 0 {
		t.Errorf("misses = %d", stats[0].Missed)
	}
	if stats[0].MaxResponse != 3 {
		t.Errorf("MaxResponse = %d, want 3 (uncontended)", stats[0].MaxResponse)
	}
}

func TestUniprocEDFPreemption(t *testing.T) {
	// Long job released at 0 (D=100), short tight job released later must
	// preempt and meet its deadline.
	long := lowTask("long", 50, 100, 1000)
	short := lowTask("short", 2, 4, 7)
	stats := uniprocEDF(task.System{long, short}, Config{Horizon: 50}, func(j int) *rand.Rand {
		return rand.New(rand.NewSource(int64(j)))
	}, nil, 0, nil)
	if stats[1].Missed != 0 {
		t.Fatalf("short task missed %d deadlines despite EDF preemption", stats[1].Missed)
	}
	if stats[0].Missed != 0 {
		t.Fatalf("long task missed: %+v", stats[0])
	}
}

func TestUniprocEDFDetectsOverload(t *testing.T) {
	// Two always-full jobs with the same tight deadline cannot both make it.
	a := lowTask("a", 4, 5, 5)
	b := lowTask("b", 4, 5, 5)
	stats := uniprocEDF(task.System{a, b}, Config{Horizon: 10}, func(j int) *rand.Rand {
		return rand.New(rand.NewSource(int64(j)))
	}, nil, 0, nil)
	if stats[0].Missed+stats[1].Missed == 0 {
		t.Fatal("overloaded processor reported no misses")
	}
}

func TestGlobalEDFSimpleSystem(t *testing.T) {
	sys := task.System{
		parTask("p", 4, 5, 10, 10),
		lowTask("l", 2, 8, 16),
	}
	rep, err := GlobalEDF(sys, 3, Config{Horizon: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMissed() != 0 {
		t.Fatalf("global EDF missed %d on an easy system", rep.TotalMissed())
	}
	if rep.TotalReleased() == 0 {
		t.Fatal("nothing released")
	}
}

func TestGlobalEDFRespectsPrecedence(t *testing.T) {
	// A chain cannot finish faster than its length even on many processors.
	sys := task.System{task.MustNew("c", dag.Chain(3, 4, 5), 20, 30)}
	rep, err := GlobalEDF(sys, 8, Config{Horizon: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerTask[0].MaxResponse != 12 {
		t.Errorf("chain response = %d, want 12", rep.PerTask[0].MaxResponse)
	}
}

func TestGlobalEDFDetectsOverload(t *testing.T) {
	// Example 2 with n=3 on m=2: three C=1,D=1 jobs at t=0 on 2 processors.
	sys := task.System{
		task.MustNew("a", dag.Singleton(1), 1, 3),
		task.MustNew("b", dag.Singleton(1), 1, 3),
		task.MustNew("c", dag.Singleton(1), 1, 3),
	}
	rep, err := GlobalEDF(sys, 2, Config{Horizon: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMissed() == 0 {
		t.Fatal("global EDF on m=2 must miss for three simultaneous unit jobs")
	}
	rep3, err := GlobalEDF(sys, 3, Config{Horizon: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.TotalMissed() != 0 {
		t.Fatal("m=3 suffices")
	}
}

func TestNaiveRerunCanMissWhereReplayDoesNot(t *testing.T) {
	// Find an LS timing anomaly, wrap it into a high-density task whose
	// deadline sits between the nominal and the anomalous makespan, and
	// check: template replay meets every deadline while the naive online
	// re-run of LS misses when the anomalous vertex completes early.
	an := listsched.FindAnomaly(rand.New(rand.NewSource(1)), 20000, nil)
	if an == nil {
		t.Fatal("no anomaly instance found")
	}
	d := an.Before // deadline = nominal makespan: replay is exactly on time
	tk := task.MustNew("anom", an.Original, d, d+10)
	sys := task.System{tk}
	m := an.M
	tmpl, err := listsched.Run(an.Original, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := &core.Allocation{
		M:    m,
		High: []core.HighAssignment{{TaskIndex: 0, Procs: procIDs(m), Template: tmpl}},
	}
	// Deterministic "early completion" scenario: exactly the anomaly's
	// reduced instance. Build it by simulating with a custom exec policy —
	// here we reproduce it by replaying the reduced DAG manually.
	// Template replay: every job at its tabulated start, actual times from
	// the reduced DAG: finish ≤ template makespan = d. Never misses.
	worstFinish := Time(0)
	for v := 0; v < an.Original.N(); v++ {
		end := tmpl.Intervals[v].Start + an.Reduced.WCET(v)
		if end > worstFinish {
			worstFinish = end
		}
	}
	if worstFinish > d {
		t.Fatalf("template replay finish %d exceeds deadline %d", worstFinish, d)
	}
	// Naive re-run on the reduced DAG: the anomaly makes it late.
	rerun, err := listsched.Run(an.Reduced, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Makespan <= d {
		t.Fatalf("anomaly instance lost its sting: rerun %d ≤ D %d", rerun.Makespan, d)
	}
	// And end-to-end through the simulator with WCET execution: both modes
	// meet deadlines (no early completion), so the difference is strictly
	// about early completion.
	repReplay, err := FederatedMode(sys, alloc, Config{Horizon: 200}, TemplateReplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if repReplay.TotalMissed() != 0 {
		t.Fatalf("replay with WCET execution missed %d", repReplay.TotalMissed())
	}
}

func procIDs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFederatedRejectsBadInput(t *testing.T) {
	sys := task.System{lowTask("a", 1, 5, 10)}
	alloc := mustAlloc(t, sys, 1)
	if _, err := Federated(sys, alloc, Config{Horizon: 0}); err == nil {
		t.Error("accepted zero horizon")
	}
	if _, err := Federated(sys, nil, Config{Horizon: 10}); err == nil {
		t.Error("accepted nil allocation")
	}
	if _, err := GlobalEDF(sys, 0, Config{Horizon: 10}); err == nil {
		t.Error("accepted m=0")
	}
}

func TestDeterministicReports(t *testing.T) {
	sys := task.System{
		parTask("h", 3, 4, 8, 12),
		lowTask("l", 2, 9, 14),
	}
	alloc := mustAlloc(t, sys, 3)
	cfg := Config{Horizon: 3000, Arrivals: SporadicRandom, Exec: UniformExec, Seed: 99}
	a, err := Federated(sys, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Federated(sys, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerTask {
		if a.PerTask[i] != b.PerTask[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestRandomAcceptedSystemsSimulateCleanly(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	validated := 0
	for trial := 0; trial < 60; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		alloc, err := core.Schedule(sys, m, core.Options{})
		if err != nil {
			continue
		}
		validated++
		rep, err := Federated(sys, alloc, Config{
			Horizon: 2000, Arrivals: SporadicRandom, Exec: UniformExec, Seed: int64(trial),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.TotalMissed() != 0 {
			t.Fatalf("trial %d: accepted system missed %d deadlines", trial, rep.TotalMissed())
		}
	}
	if validated == 0 {
		t.Fatal("test vacuous")
	}
}

func randomSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(6)
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		d := g.LongestChain() + Time(r.Intn(int(2*g.Volume())))
		tt := d + Time(r.Intn(40))
		sys = append(sys, task.MustNew("r", g, d, tt))
	}
	return sys
}

func BenchmarkFederatedSimulation(b *testing.B) {
	sys := task.System{
		parTask("h", 4, 5, 10, 10),
		lowTask("l1", 2, 8, 16),
		lowTask("l2", 3, 12, 24),
	}
	alloc, err := core.Schedule(sys, 3, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Federated(sys, alloc, Config{Horizon: 10000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalEDFSimulation(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	sys := randomSystem(r, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GlobalEDF(sys, 8, Config{Horizon: 5000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

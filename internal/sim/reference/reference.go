// Package reference preserves the original time-stepped simulator engine
// exactly as it was before the event-calendar rewrite of package sim. It is
// deliberately naive — it re-derives the running set at every release and
// truncates execution at every arrival — which makes it easy to audit
// against the scheduling rules of the paper, and therefore the trusted side
// of the differential oracle (internal/sim/oracle_test.go): both engines
// consume identical random streams, so their reports must match field for
// field and their traces must match slice for slice after canonical
// normalization (trace.Trace.Dump).
//
// Do not optimize this package. Its value is that it stays simple enough to
// be obviously correct; speed lives in package sim.
package reference

import (
	"fmt"
	"math/rand"
	"sort"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/fp"
	"fedsched/internal/listsched"
	"fedsched/internal/sim"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// Time mirrors sim.Time for brevity.
type Time = sim.Time

// Federated simulates a FEDCONS allocation with the original engine, using
// TemplateReplay for the high-density tasks.
func Federated(sys task.System, alloc *core.Allocation, cfg sim.Config) (*sim.Report, error) {
	return FederatedMode(sys, alloc, cfg, sim.TemplateReplay, nil)
}

// FederatedMode is Federated with an explicit replay mode and LS priority
// (the priority is used only by NaiveRerun; nil = insertion order).
func FederatedMode(sys task.System, alloc *core.Allocation, cfg sim.Config, mode sim.ReplayMode, prio listsched.Priority) (*sim.Report, error) {
	rep, _, err := federated(sys, alloc, cfg, mode, prio, false)
	return rep, err
}

// FederatedTraced is Federated plus full execution traces.
func FederatedTraced(sys task.System, alloc *core.Allocation, cfg sim.Config) (*sim.Report, *sim.PlatformTrace, error) {
	return federated(sys, alloc, cfg, sim.TemplateReplay, nil, true)
}

func federated(sys task.System, alloc *core.Allocation, cfg sim.Config, mode sim.ReplayMode, prio listsched.Priority, traced bool) (*sim.Report, *sim.PlatformTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if alloc == nil {
		return nil, nil, fmt.Errorf("sim: nil allocation")
	}
	rep := &sim.Report{PerTask: make([]sim.TaskStats, len(sys))}
	for i, tk := range sys {
		rep.PerTask[i].Name = tk.Name
	}
	var pt *sim.PlatformTrace
	if traced {
		pt = &sim.PlatformTrace{}
	}

	// High-density tasks: isolated replay per dedicated group.
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(h.TaskIndex)*7919))
		var rec *trace.Recorder
		if traced {
			rec = trace.NewRecorder(alloc.M)
		}
		st, err := replayHigh(tk, h.TaskIndex, h.Procs, h.Template, cfg, mode, prio, rng, rec)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: task %d (%q): %w", h.TaskIndex, tk.Name, err)
		}
		st.Name = tk.Name
		rep.PerTask[h.TaskIndex] = st
		if traced {
			pt.High = append(pt.High, rec.Trace())
		}
	}

	// Shared processors: independent uniprocessor EDF per processor.
	for k, proc := range alloc.SharedProcs {
		idxs := alloc.TasksOnShared(k)
		group := make(task.System, len(idxs))
		for j, i := range idxs {
			group[j] = sys[i]
		}
		var rec *trace.Recorder
		if traced {
			rec = trace.NewRecorder(alloc.M)
		}
		stats := uniprocEDF(group, cfg, func(j int) *rand.Rand {
			return rand.New(rand.NewSource(cfg.Seed + int64(idxs[j])*7919))
		}, rec, proc, idxs)
		for j, i := range idxs {
			stats[j].Name = sys[i].Name
			rep.PerTask[i] = stats[j]
		}
		if traced {
			pt.Shared = append(pt.Shared, rec.Trace())
		}
	}
	return rep, pt, nil
}

// replayHigh simulates every dag-job of one high-density task on its
// dedicated processor group, scanning each vertex of each dag-job.
func replayHigh(tk *task.DAGTask, taskIdx int, procs []int, tmpl *listsched.Schedule, cfg sim.Config, mode sim.ReplayMode, prio listsched.Priority, rng *rand.Rand, rec *trace.Recorder) (sim.TaskStats, error) {
	var st sim.TaskStats
	if tmpl == nil {
		return st, fmt.Errorf("missing template schedule")
	}
	prevBusyUntil := Time(0) // when the group's previous dag-job fully vacated
	for inst, rel := range sim.Arrivals(tk, cfg, rng) {
		start := rel
		if rel < prevBusyUntil {
			if mode == sim.TemplateReplay {
				return st, fmt.Errorf("dag-job released at %d while group busy until %d", rel, prevBusyUntil)
			}
			start = prevBusyUntil
		}
		actual := make([]Time, tk.G.N())
		for v := range actual {
			actual[v] = sim.ExecTime(tk.G.WCET(v), cfg, rng)
		}
		var finish Time
		switch mode {
		case sim.NaiveRerun:
			reduced, err := dagWithActuals(tk.G, actual)
			if err != nil {
				return st, err
			}
			var s *listsched.Schedule
			if len(tmpl.MTypes) != 0 {
				s, err = listsched.RunTyped(reduced, tmpl.MTypes, prio)
			} else {
				s, err = listsched.Run(reduced, tmpl.M, prio)
			}
			if err != nil {
				return st, err
			}
			finish = start + s.Makespan
		default: // TemplateReplay
			for v := range actual {
				vs := start + tmpl.Intervals[v].Start
				end := vs + actual[v]
				if end > finish {
					finish = end
				}
				if rec != nil {
					id := trace.JobID{Task: taskIdx, Inst: inst, Vertex: v}
					rec.Job(trace.JobInfo{ID: id, Release: rel, Deadline: rel + tk.D, Demand: actual[v]})
					rec.Run(id, procs[tmpl.Intervals[v].Proc], vs, end)
				}
			}
		}
		st.Record(rel, finish, rel+tk.D)
		prevBusyUntil = finish
	}
	return st, nil
}

// dagWithActuals clones g with each vertex's WCET replaced by its actual
// execution time (all positive). Vertex types are preserved so a typed
// template's online rerun still respects processor-type pinning.
func dagWithActuals(g *dag.DAG, actual []Time) (*dag.DAG, error) {
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.AddTypedVertex(g.Vertex(v).Name, actual[v], g.TypeOf(v))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// upJob is one dag-job collapsed to a sequential job on a shared processor.
type upJob struct {
	taskIdx   int  // index into the processor's task group
	inst      int  // dag-job instance number within its task
	seq       int  // global admission order, for deterministic tie-breaking
	key       Time // scheduling priority: absolute deadline (EDF) or DM rank
	release   Time
	deadline  Time // absolute
	remaining Time
}

// uniprocEDF simulates the preemptive uniprocessor scheduler of one shared
// processor with the original arrival-by-arrival loop: it truncates the
// running job at every release, whether or not that release preempts.
func uniprocEDF(group task.System, cfg sim.Config, rngFor func(j int) *rand.Rand, rec *trace.Recorder, proc int, taskIDs []int) []sim.TaskStats {
	stats := make([]sim.TaskStats, len(group))
	// Fixed-priority rank per task (used when cfg.Shared == DMPolicy).
	rank := make([]Time, len(group))
	if cfg.Shared == sim.DMPolicy {
		sps := make([]task.Sporadic, len(group))
		for i, tk := range group {
			sps[i] = tk.AsSporadic()
		}
		for r, i := range fp.DMOrder(sps) {
			rank[i] = Time(r)
		}
	}
	jobID := func(j upJob) trace.JobID {
		id := trace.JobID{Task: j.taskIdx, Inst: j.inst}
		if taskIDs != nil {
			id.Task = taskIDs[j.taskIdx]
		}
		return id
	}

	// Generate all jobs up front.
	var jobs []upJob
	for j, tk := range group {
		rng := rngFor(j)
		for inst, rel := range sim.Arrivals(tk, cfg, rng) {
			var exec Time
			for v := 0; v < tk.G.N(); v++ {
				exec += sim.ExecTime(tk.G.WCET(v), cfg, rng)
			}
			jb := upJob{
				taskIdx:   j,
				inst:      inst,
				release:   rel,
				deadline:  rel + tk.D,
				remaining: exec,
			}
			if cfg.Shared == sim.DMPolicy {
				jb.key = rank[j]
			} else {
				jb.key = jb.deadline
			}
			jobs = append(jobs, jb)
			if rec != nil {
				rec.Job(trace.JobInfo{ID: jobID(jb), Release: rel, Deadline: jb.deadline, Demand: exec})
			}
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].release < jobs[b].release })
	for i := range jobs {
		jobs[i].seq = i
	}

	// Event loop: advance between arrivals and completions.
	pending := &edfHeap{}
	now := Time(0)
	next := 0 // next arrival index
	for next < len(jobs) || pending.len() > 0 {
		if pending.len() == 0 {
			if jobs[next].release > now {
				now = jobs[next].release
			}
		}
		for next < len(jobs) && jobs[next].release <= now {
			pending.push(jobs[next])
			next++
		}
		if pending.len() == 0 {
			continue
		}
		j := pending.peek()
		finish := now + j.remaining
		if next < len(jobs) && jobs[next].release < finish {
			// Run until the next arrival, then re-evaluate priorities.
			ran := jobs[next].release - now
			if rec != nil {
				rec.Run(jobID(j), proc, now, now+ran)
			}
			pending.a[0].remaining -= ran
			now = jobs[next].release
			continue
		}
		// Job completes before any new arrival.
		pending.pop()
		if rec != nil {
			rec.Run(jobID(j), proc, now, finish)
		}
		now = finish
		stats[j.taskIdx].Record(j.release, finish, j.deadline)
	}
	return stats
}

// edfHeap is a min-heap of jobs by (key, seq); key is the absolute deadline
// under EDF and the DM rank under fixed priority.
type edfHeap struct{ a []upJob }

func (h *edfHeap) len() int    { return len(h.a) }
func (h *edfHeap) peek() upJob { return h.a[0] }
func (h *edfHeap) less(x, y int) bool {
	if h.a[x].key != h.a[y].key {
		return h.a[x].key < h.a[y].key
	}
	return h.a[x].seq < h.a[y].seq
}

func (h *edfHeap) push(j upJob) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *edfHeap) pop() upJob {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// gJob is one vertex job of one dag-job instance under global EDF.
type gJob struct {
	taskIdx   int
	inst      int // global dag-job instance number
	vertex    int
	release   Time // dag-job release
	deadline  Time // absolute dag-job deadline (the EDF priority)
	seq       int  // deterministic tie-break
	remaining Time
	pendPreds int
}

// GlobalEDF simulates vertex-level preemptive global EDF with the original
// step-by-step loop, re-selecting the m highest-priority available jobs at
// every arrival and completion.
func GlobalEDF(sys task.System, m int, cfg sim.Config) (*sim.Report, error) {
	rep, _, err := globalEDF(sys, m, cfg, nil)
	return rep, err
}

// GlobalEDFTraced is GlobalEDF plus the full execution trace.
func GlobalEDFTraced(sys task.System, m int, cfg sim.Config) (*sim.Report, *trace.Trace, error) {
	rec := trace.NewRecorder(m)
	rep, _, err := globalEDF(sys, m, cfg, rec)
	if err != nil {
		return nil, nil, err
	}
	return rep, rec.Trace(), nil
}

func globalEDF(sys task.System, m int, cfg sim.Config, rec *trace.Recorder) (*sim.Report, *trace.Trace, error) {
	if m < 1 {
		return nil, nil, fmt.Errorf("sim: m must be ≥ 1, got %d", m)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rep := &sim.Report{PerTask: make([]sim.TaskStats, len(sys))}
	for i, tk := range sys {
		rep.PerTask[i].Name = tk.Name
	}

	// Materialize all vertex jobs of all dag-job instances.
	type instance struct {
		taskIdx  int
		release  Time
		deadline Time
		done     int // completed vertices
		finish   Time
	}
	var instances []instance
	var all []*gJob
	jobsOf := make(map[int][]*gJob) // instance index → its vertex jobs
	for i, tk := range sys {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		for _, rel := range sim.Arrivals(tk, cfg, rng) {
			instIdx := len(instances)
			instances = append(instances, instance{taskIdx: i, release: rel, deadline: rel + tk.D})
			for v := 0; v < tk.G.N(); v++ {
				j := &gJob{
					taskIdx: i, inst: instIdx, vertex: v,
					release: rel, deadline: rel + tk.D,
					remaining: sim.ExecTime(tk.G.WCET(v), cfg, rng),
					pendPreds: tk.G.InDegree(v),
				}
				all = append(all, j)
				jobsOf[instIdx] = append(jobsOf[instIdx], j)
				if rec != nil {
					rec.Job(trace.JobInfo{
						ID:       trace.JobID{Task: i, Inst: instIdx, Vertex: v},
						Release:  rel,
						Deadline: rel + tk.D,
						Demand:   j.remaining,
					})
				}
			}
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].release < all[b].release })
	for s, j := range all {
		j.seq = s
	}

	// ready: available jobs; next: head of the release order.
	ready := &gHeap{}
	next := 0
	now := Time(0)
	remainingJobs := len(all)

	releaseUpTo := func(t Time) {
		for next < len(all) && all[next].release <= t {
			if all[next].pendPreds == 0 {
				ready.push(all[next])
			}
			next++
		}
	}

	for remainingJobs > 0 {
		releaseUpTo(now)
		if ready.len() == 0 {
			if next >= len(all) {
				return nil, nil, fmt.Errorf("sim: global EDF stalled at t=%d with %d jobs left", now, remainingJobs)
			}
			now = all[next].release
			continue
		}
		// Select the min(m, ready) highest-priority jobs.
		running := ready.takeUpTo(m)
		// Advance to the next event: earliest completion or next release.
		step := running[0].remaining
		for _, j := range running[1:] {
			if j.remaining < step {
				step = j.remaining
			}
		}
		if next < len(all) && all[next].release > now && all[next].release-now < step {
			step = all[next].release - now
		}
		if rec != nil {
			for p, j := range running {
				rec.Run(trace.JobID{Task: j.taskIdx, Inst: j.inst, Vertex: j.vertex}, p, now, now+step)
			}
		}
		now += step
		for _, j := range running {
			j.remaining -= step
			if j.remaining > 0 {
				ready.push(j) // preempted or still running; reconsidered next event
				continue
			}
			remainingJobs--
			inst := &instances[j.inst]
			inst.done++
			if now > inst.finish {
				inst.finish = now
			}
			if inst.done == len(jobsOf[j.inst]) {
				rep.PerTask[inst.taskIdx].Record(inst.release, inst.finish, inst.deadline)
			}
			// Unblock successors.
			tk := sys[j.taskIdx]
			for _, w := range tk.G.Successors(j.vertex) {
				for _, sj := range jobsOf[j.inst] {
					if sj.vertex == w {
						sj.pendPreds--
						if sj.pendPreds == 0 && sj.release <= now {
							ready.push(sj)
						}
					}
				}
			}
		}
	}
	return rep, nil, nil
}

// gHeap is a min-heap of jobs by (deadline, seq).
type gHeap struct{ a []*gJob }

func (h *gHeap) len() int { return len(h.a) }
func (h *gHeap) less(x, y int) bool {
	if h.a[x].deadline != h.a[y].deadline {
		return h.a[x].deadline < h.a[y].deadline
	}
	return h.a[x].seq < h.a[y].seq
}

func (h *gHeap) push(j *gJob) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *gHeap) pop() *gJob {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// takeUpTo pops up to k jobs in priority order.
func (h *gHeap) takeUpTo(k int) []*gJob {
	if k > h.len() {
		k = h.len()
	}
	out := make([]*gJob, 0, k)
	for len(out) < k {
		out = append(out, h.pop())
	}
	return out
}

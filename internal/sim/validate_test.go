package sim

import (
	"testing"

	"fedsched/internal/task"
)

// TestConfigValidate pins the centralized validation: one cfg.Validate()
// shared by every engine entry point, with stable error messages.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"defaults invalid horizon", Config{}, "sim: horizon must be positive, got 0"},
		{"negative horizon", Config{Horizon: -7}, "sim: horizon must be positive, got -7"},
		{"minimal valid", Config{Horizon: 1}, ""},
		{"all policies set", Config{Horizon: 100, Arrivals: SporadicRandom, Exec: UniformExec, Shared: DMPolicy, Seed: -42}, ""},
		{"bad arrival policy", Config{Horizon: 10, Arrivals: ArrivalPolicy(7)}, "sim: unknown arrival policy ArrivalPolicy(7)"},
		{"bad exec policy", Config{Horizon: 10, Exec: ExecPolicy(-1)}, "sim: unknown exec policy ExecPolicy(-1)"},
		{"bad shared policy", Config{Horizon: 10, Shared: SharedPolicy(3)}, "sim: unknown shared policy SharedPolicy(3)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("Validate() = %v, want nil", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("Validate() = nil, want %q", tc.wantErr)
			case tc.wantErr != "" && err.Error() != tc.wantErr:
				t.Fatalf("Validate() = %q, want %q", err.Error(), tc.wantErr)
			}
		})
	}
}

// TestEnginesShareValidation checks that both federated and global entry
// points reject through the same Validate, so messages cannot drift.
func TestEnginesShareValidation(t *testing.T) {
	sys := task.System{}
	bad := Config{Horizon: 10, Exec: ExecPolicy(9)}
	if _, err := GlobalEDF(sys, 1, bad); err == nil || err.Error() != "sim: unknown exec policy ExecPolicy(9)" {
		t.Fatalf("GlobalEDF validation: got %v", err)
	}
	if _, err := FederatedMode(sys, nil, bad, TemplateReplay, nil); err == nil || err.Error() != "sim: unknown exec policy ExecPolicy(9)" {
		t.Fatalf("Federated validation: got %v", err)
	}
}

// TestPolicyStrings pins the String forms used in error messages and CLI
// flag parsing.
func TestPolicyStrings(t *testing.T) {
	if Periodic.String() != "periodic" || SporadicRandom.String() != "sporadic" {
		t.Errorf("arrival strings: %v %v", Periodic, SporadicRandom)
	}
	if FullWCET.String() != "wcet" || UniformExec.String() != "uniform" {
		t.Errorf("exec strings: %v %v", FullWCET, UniformExec)
	}
	if EDFPolicy.String() != "edf" || DMPolicy.String() != "dm" {
		t.Errorf("shared strings: %v %v", EDFPolicy, DMPolicy)
	}
}

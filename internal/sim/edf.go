package sim

import (
	"math/rand"
	"sort"

	"fedsched/internal/fp"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// upJob is one dag-job collapsed to a sequential job on a shared processor.
type upJob struct {
	taskIdx   int  // index into the processor's task group
	inst      int  // dag-job instance number within its task
	seq       int  // global admission order, for deterministic tie-breaking
	key       Time // scheduling priority: absolute deadline (EDF) or DM rank
	release   Time
	deadline  Time // absolute
	remaining Time
}

// uniprocEDF simulates the preemptive uniprocessor scheduler of one shared
// processor: EDF (the paper's choice) or deadline-monotonic fixed priority,
// per cfg.Shared. Intra-task structure is irrelevant on a single processor
// (Section IV-B): each dag-job executes its vertices sequentially, so only
// the total actual execution time matters. rngFor returns the deterministic
// per-task random source.
//
// When rec is non-nil, every execution slice and job is recorded (with task
// ids taken from taskIDs and the given processor id) for auditing by package
// trace.
func uniprocEDF(group task.System, cfg Config, rngFor func(j int) *rand.Rand, rec *trace.Recorder, proc int, taskIDs []int) []TaskStats {
	stats := make([]TaskStats, len(group))
	// Fixed-priority rank per task (used when cfg.Shared == DMPolicy).
	rank := make([]Time, len(group))
	if cfg.Shared == DMPolicy {
		sps := make([]task.Sporadic, len(group))
		for i, tk := range group {
			sps[i] = tk.AsSporadic()
		}
		for r, i := range fp.DMOrder(sps) {
			rank[i] = Time(r)
		}
	}
	jobID := func(j upJob) trace.JobID {
		id := trace.JobID{Task: j.taskIdx, Inst: j.inst}
		if taskIDs != nil {
			id.Task = taskIDs[j.taskIdx]
		}
		return id
	}

	// Generate all jobs up front.
	var jobs []upJob
	for j, tk := range group {
		rng := rngFor(j)
		for inst, rel := range arrivals(tk, cfg, rng) {
			var exec Time
			for v := 0; v < tk.G.N(); v++ {
				exec += execTime(tk.G.WCET(v), cfg, rng)
			}
			jb := upJob{
				taskIdx:   j,
				inst:      inst,
				release:   rel,
				deadline:  rel + tk.D,
				remaining: exec,
			}
			if cfg.Shared == DMPolicy {
				jb.key = rank[j]
			} else {
				jb.key = jb.deadline
			}
			jobs = append(jobs, jb)
			if rec != nil {
				rec.Job(trace.JobInfo{ID: jobID(jb), Release: rel, Deadline: jb.deadline, Demand: exec})
			}
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].release < jobs[b].release })
	for i := range jobs {
		jobs[i].seq = i
	}

	// Event loop: advance between arrivals and completions.
	pending := &edfHeap{}
	now := Time(0)
	next := 0 // next arrival index
	for next < len(jobs) || pending.len() > 0 {
		if pending.len() == 0 {
			if jobs[next].release > now {
				now = jobs[next].release
			}
		}
		for next < len(jobs) && jobs[next].release <= now {
			pending.push(jobs[next])
			next++
		}
		if pending.len() == 0 {
			continue
		}
		j := pending.peek()
		finish := now + j.remaining
		if next < len(jobs) && jobs[next].release < finish {
			// Run until the next arrival, then re-evaluate priorities.
			ran := jobs[next].release - now
			if rec != nil {
				rec.Run(jobID(j), proc, now, now+ran)
			}
			pending.a[0].remaining -= ran
			now = jobs[next].release
			continue
		}
		// Job completes before any new arrival.
		pending.pop()
		if rec != nil {
			rec.Run(jobID(j), proc, now, finish)
		}
		now = finish
		stats[j.taskIdx].record(j.release, finish, j.deadline)
	}
	return stats
}

// edfHeap is a min-heap of jobs by (key, seq); key is the absolute deadline
// under EDF and the DM rank under fixed priority.
type edfHeap struct{ a []upJob }

func (h *edfHeap) len() int    { return len(h.a) }
func (h *edfHeap) peek() upJob { return h.a[0] }
func (h *edfHeap) less(x, y int) bool {
	if h.a[x].key != h.a[y].key {
		return h.a[x].key < h.a[y].key
	}
	return h.a[x].seq < h.a[y].seq
}

func (h *edfHeap) push(j upJob) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *edfHeap) pop() upJob {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

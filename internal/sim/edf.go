package sim

import (
	"math/rand"

	"fedsched/internal/fp"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

// upJob is one dag-job collapsed to a sequential job on a shared processor.
type upJob struct {
	taskIdx   int  // index into the processor's task group
	inst      int  // dag-job instance number within its task
	seq       int  // global admission order, for deterministic tie-breaking
	key       Time // scheduling priority: absolute deadline (EDF) or DM rank
	release   Time
	deadline  Time // absolute
	remaining Time
}

// uniprocEDF simulates the preemptive uniprocessor scheduler of one shared
// processor: EDF (the paper's choice) or deadline-monotonic fixed priority,
// per cfg.Shared. Intra-task structure is irrelevant on a single processor
// (Section IV-B): each dag-job executes its vertices sequentially, so only
// the total actual execution time matters. rngFor returns the deterministic
// per-task random source.
//
// When rec is non-nil, every execution slice and job is recorded (with task
// ids taken from taskIDs and the given processor id) for auditing by package
// trace.
//
// On one processor at most one completion event is outstanding, so the event
// calendar (see calendar.go) degenerates to a two-way minimum between the
// running job's completion and the head of the sorted release lane; the only
// other state is the ready heap. The loop touches an instant only when a job
// is dispatched, preempted, or completed — non-preempting releases are
// batched into the ready heap without interrupting the running job, which is
// where the asymptotic win over the reference engine comes from.
func uniprocEDF(group task.System, cfg Config, rngFor func(j int) *rand.Rand, rec *trace.Recorder, proc int, taskIDs []int) []TaskStats {
	stats := make([]TaskStats, len(group))
	// Fixed-priority rank per task (used when cfg.Shared == DMPolicy).
	rank := make([]Time, len(group))
	if cfg.Shared == DMPolicy {
		sps := make([]task.Sporadic, len(group))
		for i, tk := range group {
			sps[i] = tk.AsSporadic()
		}
		for r, i := range fp.DMOrder(sps) {
			rank[i] = Time(r)
		}
	}
	jobID := func(j *upJob) trace.JobID {
		id := trace.JobID{Task: j.taskIdx, Inst: j.inst}
		if taskIDs != nil {
			id.Task = taskIDs[j.taskIdx]
		}
		return id
	}

	// Generate all jobs up front, one release-sorted list per task. Draw
	// order per task — all sporadic gaps, then execution times in (instance,
	// vertex) order — matches the reference engine so both consume identical
	// random streams. Under full WCET the per-vertex sum is the (memoized)
	// DAG volume: no draws, no vertex scan.
	perTask := make([][]upJob, len(group))
	for j, tk := range group {
		rng := rngFor(j)
		var vol Time
		if cfg.Exec == FullWCET {
			vol = tk.Volume()
		}
		list := make([]upJob, 0, cfg.Horizon/tk.T+1)
		_ = forEachArrival(tk, cfg, rng, func(inst int, rel Time) error {
			exec := vol
			if cfg.Exec != FullWCET {
				exec = 0
				for v := 0; v < tk.G.N(); v++ {
					exec += execTime(tk.G.WCET(v), cfg, rng)
				}
			}
			jb := upJob{
				taskIdx:   j,
				inst:      inst,
				release:   rel,
				deadline:  rel + tk.D,
				remaining: exec,
			}
			if cfg.Shared == DMPolicy {
				jb.key = rank[j]
			} else {
				jb.key = jb.deadline
			}
			list = append(list, jb)
			if rec != nil {
				rec.Job(trace.JobInfo{ID: jobID(&jb), Release: rel, Deadline: jb.deadline, Demand: exec})
			}
			return nil
		})
		perTask[j] = list
	}
	jobs := mergeByRelease(perTask)
	for i := range jobs {
		jobs[i].seq = i
	}

	// beats reports whether job x strictly outranks job y. Ties go to the
	// smaller seq, i.e. the earlier-released job — so an arrival with a key
	// equal to the running job's never preempts it, exactly as in the
	// reference engine.
	beats := func(x, y int) bool {
		if jobs[x].key != jobs[y].key {
			return jobs[x].key < jobs[y].key
		}
		return jobs[x].seq < jobs[y].seq
	}

	ready := &idxHeap{less: beats}
	next := 0      // head of the sorted release lane
	cur := -1      // index of the running job, -1 when the processor idles
	now := Time(0)
	var runStart Time // when cur was (re)dispatched
	for {
		if cur < 0 {
			// Dispatch: admit everything released by now, then run the top.
			for next < len(jobs) && jobs[next].release <= now {
				ready.push(next)
				next++
			}
			if ready.len() == 0 {
				if next >= len(jobs) {
					break
				}
				now = jobs[next].release // idle gap: jump to the next release
				continue
			}
			cur = ready.pop()
			runStart = now
			continue
		}
		finish := runStart + jobs[cur].remaining
		if next < len(jobs) && jobs[next].release < finish {
			// Release event fires before the completion event: admit the
			// whole batch at that instant, then run the preemption check.
			at := jobs[next].release
			for next < len(jobs) && jobs[next].release == at {
				ready.push(next)
				next++
			}
			if top := ready.peek(); beats(top, cur) {
				if rec != nil {
					rec.Run(jobID(&jobs[cur]), proc, runStart, at)
				}
				jobs[cur].remaining -= at - runStart
				ready.push(cur)
				ready.pop() // == top: it beats cur, and everything older lost to cur
				cur = top
				runStart = at
			}
			continue
		}
		// Completion event.
		if rec != nil {
			rec.Run(jobID(&jobs[cur]), proc, runStart, finish)
		}
		jb := &jobs[cur]
		stats[jb.taskIdx].Record(jb.release, finish, jb.deadline)
		now = finish
		cur = -1
	}
	return stats
}

// mergeByRelease merges per-task release-sorted job lists into one list
// ordered by release with ties broken by task index — exactly the order a
// stable sort of the concatenated lists produces (the reference engine's
// ordering) at a fraction of the cost: the lists are already sorted, so a
// k-way cursor merge does O(N log k) integer comparisons instead of
// O(N log N) reflective swaps.
func mergeByRelease(perTask [][]upJob) []upJob {
	total, nonEmpty, only := 0, 0, -1
	for j, l := range perTask {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
			only = j
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return perTask[only]
	}
	out := make([]upJob, 0, total)
	pos := make([]int, len(perTask))
	// Min-heap of task cursors by (head release, task index).
	cmp := func(a, b int) bool {
		ra, rb := perTask[a][pos[a]].release, perTask[b][pos[b]].release
		if ra != rb {
			return ra < rb
		}
		return a < b
	}
	h := &idxHeap{less: cmp}
	for j, l := range perTask {
		if len(l) > 0 {
			h.push(j)
		}
	}
	for h.len() > 0 {
		j := h.pop()
		out = append(out, perTask[j][pos[j]])
		pos[j]++
		if pos[j] < len(perTask[j]) {
			h.push(j)
		}
	}
	return out
}

// idxHeap is a min-heap over job indices with a pluggable strict order.
type idxHeap struct {
	a    []int
	less func(x, y int) bool
}

func (h *idxHeap) len() int  { return len(h.a) }
func (h *idxHeap) peek() int { return h.a[0] }

func (h *idxHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.a[i], h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *idxHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(h.a[l], h.a[s]) {
			s = l
		}
		if r < last && h.less(h.a[r], h.a[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// Package sim is a discrete-event simulator for the run-time behaviour the
// paper prescribes (Section IV): dag-jobs of high-density tasks dispatched by
// lookup from the LS template schedule σ_i on their dedicated processors, and
// the low-density tasks executed by preemptive uniprocessor EDF on their
// assigned shared processors.
//
// Federated isolation means processor groups never interact, so the engine
// simulates each high-density task's group and each shared processor
// independently and merges the per-task statistics.
//
// The simulator models the two sources of run-time variation the analysis
// must be robust to:
//
//   - sporadic release jitter — consecutive dag-jobs separated by T_i plus a
//     random extra gap; and
//   - early completion — jobs executing for less than their WCET, the
//     condition under which Graham's anomalies arise. Template replay holds
//     each job to its tabulated start time (idling early processors), which
//     footnote 2 of the paper mandates; the package also provides the unsafe
//     alternative (re-running LS with actual execution times) so experiment
//     E9 can demonstrate the anomaly ending in a deadline miss.
//
// The package additionally implements vertex-level global EDF (preemptive,
// migrating) as an empirical comparator scheduler.
//
// # Engines
//
// This package is the fast, event-calendar engine: each processor group is
// driven by its event queue (release, completion, template-slot and
// preemption-check events — see calendar.go), jumping directly from event to
// event so simulation cost scales with the number of dag-jobs, never with
// the horizon. The original engine is preserved verbatim in the
// internal/sim/reference subpackage and acts as the differential oracle: both
// engines consume identical random streams and must produce identical
// per-job traces (trace.Trace.Dump) and statistics. oracle_test.go holds the
// harness.
package sim

import (
	"fmt"
	"math/rand"

	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// ArrivalPolicy selects how dag-job release times are generated.
type ArrivalPolicy int

const (
	// Periodic releases every T_i exactly — the densest legal arrival
	// sequence and the traditional worst case.
	Periodic ArrivalPolicy = iota
	// SporadicRandom releases with gaps uniform in [T_i, 2·T_i).
	SporadicRandom
)

// String names the policy.
func (p ArrivalPolicy) String() string {
	switch p {
	case Periodic:
		return "periodic"
	case SporadicRandom:
		return "sporadic"
	default:
		return fmt.Sprintf("ArrivalPolicy(%d)", int(p))
	}
}

// ExecPolicy selects per-job actual execution times.
type ExecPolicy int

const (
	// FullWCET runs every job for exactly its WCET.
	FullWCET ExecPolicy = iota
	// UniformExec runs each job for a uniform time in [1, WCET].
	UniformExec
)

// String names the policy.
func (p ExecPolicy) String() string {
	switch p {
	case FullWCET:
		return "wcet"
	case UniformExec:
		return "uniform"
	default:
		return fmt.Sprintf("ExecPolicy(%d)", int(p))
	}
}

// SharedPolicy selects the scheduler of the shared (partitioned)
// processors.
type SharedPolicy int

const (
	// EDFPolicy is preemptive earliest-deadline-first — the paper's choice.
	EDFPolicy SharedPolicy = iota
	// DMPolicy is preemptive deadline-monotonic fixed-priority scheduling,
	// matching the partition.DMRta admission test (E16 ablation).
	DMPolicy
)

// String names the policy.
func (p SharedPolicy) String() string {
	switch p {
	case EDFPolicy:
		return "edf"
	case DMPolicy:
		return "dm"
	default:
		return fmt.Sprintf("SharedPolicy(%d)", int(p))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Horizon bounds release times: dag-jobs are released in [0, Horizon).
	// Released jobs always run to completion, past the horizon if needed.
	Horizon Time
	// Arrivals selects the release model (default Periodic).
	Arrivals ArrivalPolicy
	// Exec selects the execution-time model (default FullWCET).
	Exec ExecPolicy
	// Seed drives all randomness; runs are reproducible. Every int64 value
	// is valid.
	Seed int64
	// Shared selects the shared-processor scheduler (default EDFPolicy).
	Shared SharedPolicy
}

// Validate is the single validation point for simulation configs, shared by
// every engine entry point (fast and reference) so the checks — and their
// error messages — cannot drift apart.
func (cfg Config) Validate() error {
	if cfg.Horizon <= 0 {
		return fmt.Errorf("sim: horizon must be positive, got %d", cfg.Horizon)
	}
	switch cfg.Arrivals {
	case Periodic, SporadicRandom:
	default:
		return fmt.Errorf("sim: unknown arrival policy %v", cfg.Arrivals)
	}
	switch cfg.Exec {
	case FullWCET, UniformExec:
	default:
		return fmt.Errorf("sim: unknown exec policy %v", cfg.Exec)
	}
	switch cfg.Shared {
	case EDFPolicy, DMPolicy:
	default:
		return fmt.Errorf("sim: unknown shared policy %v", cfg.Shared)
	}
	return nil
}

// needsRand reports whether any random draw can occur under cfg. Engines
// skip creating per-task sources when false: seeding a rand.Source costs
// more than simulating a whole task under Periodic + FullWCET. arrivals and
// execTime never touch their rng in that regime, so passing nil is safe.
func (cfg Config) needsRand() bool {
	return cfg.Arrivals == SporadicRandom || cfg.Exec == UniformExec
}

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Name        string
	Released    int  // dag-jobs released
	Missed      int  // dag-jobs finishing after their absolute deadline
	MaxResponse Time // maximum dag-job response time (finish − release)
	SumResponse Time // for mean response computation
	MaxLateness Time // max(finish − deadline), negative when always early
}

// MeanResponse returns the average dag-job response time.
func (s *TaskStats) MeanResponse() float64 {
	if s.Released == 0 {
		return 0
	}
	return float64(s.SumResponse) / float64(s.Released)
}

// Report is the outcome of one simulation.
type Report struct {
	PerTask []TaskStats
}

// TotalReleased sums released dag-jobs over all tasks.
func (r *Report) TotalReleased() int {
	n := 0
	for i := range r.PerTask {
		n += r.PerTask[i].Released
	}
	return n
}

// TotalMissed sums deadline misses over all tasks.
func (r *Report) TotalMissed() int {
	n := 0
	for i := range r.PerTask {
		n += r.PerTask[i].Missed
	}
	return n
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("sim.Report{dagjobs=%d misses=%d}", r.TotalReleased(), r.TotalMissed())
}

// Arrivals generates the release instants of one task under cfg. It is the
// canonical release generator: both engines draw their sporadic gaps from it
// so their random streams coincide (all gap draws of a task precede any of
// its execution-time draws).
func Arrivals(tk *task.DAGTask, cfg Config, rng *rand.Rand) []Time {
	return arrivals(tk, cfg, rng)
}

func arrivals(tk *task.DAGTask, cfg Config, rng *rand.Rand) []Time {
	var out []Time
	for t := Time(0); t < cfg.Horizon; {
		out = append(out, t)
		gap := tk.T
		if cfg.Arrivals == SporadicRandom {
			gap += rng.Int63n(tk.T)
		}
		t += gap
	}
	return out
}

// forEachArrival visits every dag-job release of tk in [0, Horizon) in
// order, without materializing the release list when no randomness is
// involved. Under SporadicRandom it delegates to Arrivals first so that all
// gap draws precede any execution-time draws the callback makes — the draw
// order the reference engine established and the differential oracle pins.
func forEachArrival(tk *task.DAGTask, cfg Config, rng *rand.Rand, fn func(inst int, rel Time) error) error {
	if cfg.Arrivals == Periodic {
		inst := 0
		for t := Time(0); t < cfg.Horizon; t += tk.T {
			if err := fn(inst, t); err != nil {
				return err
			}
			inst++
		}
		return nil
	}
	for inst, rel := range arrivals(tk, cfg, rng) {
		if err := fn(inst, rel); err != nil {
			return err
		}
	}
	return nil
}

// ExecTime draws the actual execution time of a job with the given WCET.
// Exported for the reference engine, which must consume the identical random
// stream.
func ExecTime(wcet Time, cfg Config, rng *rand.Rand) Time {
	return execTime(wcet, cfg, rng)
}

func execTime(wcet Time, cfg Config, rng *rand.Rand) Time {
	if cfg.Exec == UniformExec {
		return 1 + rng.Int63n(wcet)
	}
	return wcet
}

// Record folds one dag-job outcome into the stats. Exported so the reference
// engine aggregates through the identical code path.
func (s *TaskStats) Record(release, finish, deadline Time) {
	s.Released++
	resp := finish - release
	if resp > s.MaxResponse {
		s.MaxResponse = resp
	}
	s.SumResponse += resp
	late := finish - deadline
	if s.Released == 1 || late > s.MaxLateness {
		s.MaxLateness = late
	}
	if finish > deadline {
		s.Missed++
	}
}

// Package sim is a discrete-event simulator for the run-time behaviour the
// paper prescribes (Section IV): dag-jobs of high-density tasks dispatched by
// lookup from the LS template schedule σ_i on their dedicated processors, and
// the low-density tasks executed by preemptive uniprocessor EDF on their
// assigned shared processors.
//
// Federated isolation means processor groups never interact, so the engine
// simulates each high-density task's group and each shared processor
// independently and merges the per-task statistics.
//
// The simulator models the two sources of run-time variation the analysis
// must be robust to:
//
//   - sporadic release jitter — consecutive dag-jobs separated by T_i plus a
//     random extra gap; and
//   - early completion — jobs executing for less than their WCET, the
//     condition under which Graham's anomalies arise. Template replay holds
//     each job to its tabulated start time (idling early processors), which
//     footnote 2 of the paper mandates; the package also provides the unsafe
//     alternative (re-running LS with actual execution times) so experiment
//     E9 can demonstrate the anomaly ending in a deadline miss.
//
// The package additionally implements vertex-level global EDF (preemptive,
// migrating) as an empirical comparator scheduler.
package sim

import (
	"fmt"
	"math/rand"

	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// ArrivalPolicy selects how dag-job release times are generated.
type ArrivalPolicy int

const (
	// Periodic releases every T_i exactly — the densest legal arrival
	// sequence and the traditional worst case.
	Periodic ArrivalPolicy = iota
	// SporadicRandom releases with gaps uniform in [T_i, 2·T_i).
	SporadicRandom
)

// ExecPolicy selects per-job actual execution times.
type ExecPolicy int

const (
	// FullWCET runs every job for exactly its WCET.
	FullWCET ExecPolicy = iota
	// UniformExec runs each job for a uniform time in [1, WCET].
	UniformExec
)

// SharedPolicy selects the scheduler of the shared (partitioned)
// processors.
type SharedPolicy int

const (
	// EDFPolicy is preemptive earliest-deadline-first — the paper's choice.
	EDFPolicy SharedPolicy = iota
	// DMPolicy is preemptive deadline-monotonic fixed-priority scheduling,
	// matching the partition.DMRta admission test (E16 ablation).
	DMPolicy
)

// Config parameterizes a simulation run.
type Config struct {
	// Horizon bounds release times: dag-jobs are released in [0, Horizon).
	// Released jobs always run to completion, past the horizon if needed.
	Horizon Time
	// Arrivals selects the release model (default Periodic).
	Arrivals ArrivalPolicy
	// Exec selects the execution-time model (default FullWCET).
	Exec ExecPolicy
	// Seed drives all randomness; runs are reproducible.
	Seed int64
	// Shared selects the shared-processor scheduler (default EDFPolicy).
	Shared SharedPolicy
}

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Name        string
	Released    int  // dag-jobs released
	Missed      int  // dag-jobs finishing after their absolute deadline
	MaxResponse Time // maximum dag-job response time (finish − release)
	SumResponse Time // for mean response computation
	MaxLateness Time // max(finish − deadline), negative when always early
}

// MeanResponse returns the average dag-job response time.
func (s *TaskStats) MeanResponse() float64 {
	if s.Released == 0 {
		return 0
	}
	return float64(s.SumResponse) / float64(s.Released)
}

// Report is the outcome of one simulation.
type Report struct {
	PerTask []TaskStats
}

// TotalReleased sums released dag-jobs over all tasks.
func (r *Report) TotalReleased() int {
	n := 0
	for i := range r.PerTask {
		n += r.PerTask[i].Released
	}
	return n
}

// TotalMissed sums deadline misses over all tasks.
func (r *Report) TotalMissed() int {
	n := 0
	for i := range r.PerTask {
		n += r.PerTask[i].Missed
	}
	return n
}

// String summarizes the report.
func (r *Report) String() string {
	return fmt.Sprintf("sim.Report{dagjobs=%d misses=%d}", r.TotalReleased(), r.TotalMissed())
}

// arrivals generates the release instants of one task under cfg.
func arrivals(tk *task.DAGTask, cfg Config, rng *rand.Rand) []Time {
	var out []Time
	for t := Time(0); t < cfg.Horizon; {
		out = append(out, t)
		gap := tk.T
		if cfg.Arrivals == SporadicRandom {
			gap += rng.Int63n(tk.T)
		}
		t += gap
	}
	return out
}

// execTime draws the actual execution time of a job with the given WCET.
func execTime(wcet Time, cfg Config, rng *rand.Rand) Time {
	if cfg.Exec == UniformExec {
		return 1 + rng.Int63n(wcet)
	}
	return wcet
}

// record folds one dag-job outcome into the stats.
func (s *TaskStats) record(release, finish, deadline Time) {
	s.Released++
	resp := finish - release
	if resp > s.MaxResponse {
		s.MaxResponse = resp
	}
	s.SumResponse += resp
	late := finish - deadline
	if s.Released == 1 || late > s.MaxLateness {
		s.MaxLateness = late
	}
	if finish > deadline {
		s.Missed++
	}
}

package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair qualifying a metric series.
type Label struct{ Key, Value string }

// Metric types a Registry can hold. The type names match the Prometheus
// exposition vocabulary and are rendered verbatim in # TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry is a labeled metric namespace with deterministic Prometheus text
// rendering: families sort by name, series within a family keep registration
// order. It exists so the daemon's fleet-level view — sums and merges across
// shards, SLO burn rates — has one place to declare itself instead of growing
// ad-hoc fmt.Fprintf blocks in the scrape handler.
//
// All methods are safe for concurrent use. Registering the same name with a
// conflicting type panics: that is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name   string
	typ    string
	series []*series
	byKey  map[string]*series
}

type series struct {
	labels  string // rendered label body, e.g. `shard="0"` ("" for none)
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // scrape-time value; overrides the typed fields
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels joins labels into the exposition body between braces, in the
// given order. Values are quoted with the JSON/Prometheus escaping rules.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

func (r *Registry) family(name, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, byKey: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels []Label, make func() *series) *series {
	key := renderLabels(labels)
	for _, s := range f.series {
		if s.labels == key {
			return s
		}
	}
	s := make()
	s.labels = key
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Counter returns (registering on first use) the counter series for
// name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	f := r.family(name, TypeCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.get(labels, func() *series { return &series{counter: new(Counter)} }).counter
}

// Gauge returns (registering on first use) the gauge series for name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	f := r.family(name, TypeGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.get(labels, func() *series { return &series{gauge: new(Gauge)} }).gauge
}

// Histogram returns (registering on first use) the histogram series for
// name{labels}.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	f := r.family(name, TypeHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.get(labels, func() *series { return &series{hist: new(Histogram)} }).hist
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the shape fleet aggregations and burn rates take, since they derive from
// other state rather than owning any.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	f := r.family(name, TypeGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.get(labels, func() *series { return &series{fn: fn} }).fn = fn
}

// CounterFunc is GaugeFunc with counter typing (the value must be
// monotonically non-decreasing; the registry trusts the caller).
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	f := r.family(name, TypeCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	f.get(labels, func() *series { return &series{fn: fn} }).fn = fn
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): families sorted by name, one # TYPE line each, series in
// registration order. Histogram series render their full
// bucket/_sum/_count block via WriteHistogram, from a single consistent
// snapshot per histogram.
func (r *Registry) WritePrometheus(buf *bytes.Buffer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(buf, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if f.typ == TypeHistogram {
				extra := s.labels
				if extra != "" {
					extra += ","
				}
				WriteHistogram(buf, f.name, extra, s.hist)
				continue
			}
			var v float64
			switch {
			case s.fn != nil:
				v = s.fn()
			case s.counter != nil:
				v = float64(s.counter.Value())
			case s.gauge != nil:
				v = s.gauge.Value()
			}
			buf.WriteString(f.name)
			if s.labels != "" {
				buf.WriteByte('{')
				buf.WriteString(s.labels)
				buf.WriteByte('}')
			}
			buf.WriteByte(' ')
			buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			buf.WriteByte('\n')
		}
	}
}

package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// WriteHistogram renders h as a Prometheus histogram sample block: cumulative
// buckets keyed by upper bound in seconds, then _sum and _count. extraLabels,
// when non-empty, is prepended inside each bucket's label set and appended
// (braced) to _sum/_count; it must end with a comma. The caller writes the
// # TYPE line (a labeled family shares one TYPE line across series).
//
// The whole block renders from one Snapshot, so the +Inf bucket, _sum and
// _count always agree even while other goroutines observe — the conformance
// property TestHistogramPrometheusConformance pins.
func WriteHistogram(buf *bytes.Buffer, name, extraLabels string, h *Histogram) {
	snap := h.Snapshot()
	var cum int64
	for _, b := range snap.Buckets {
		cum += b.Count
		le := strconv.FormatFloat(float64(b.UpperNs)/1e9, 'g', -1, 64)
		fmt.Fprintf(buf, "%s_bucket{%sle=%q} %d\n", name, extraLabels, le, cum)
	}
	fmt.Fprintf(buf, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels, snap.Count)
	suffix := ""
	if extraLabels != "" {
		suffix = "{" + strings.TrimSuffix(extraLabels, ",") + "}"
	}
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, suffix, strconv.FormatFloat(float64(snap.SumNs)/1e9, 'g', -1, 64))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, suffix, snap.Count)
}

package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one and returns the new value.
func (c *Counter) Inc() int64 { return c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram is a log-bucketed latency histogram: an observation of v
// nanoseconds lands in the bucket indexed by the bit length of v, so bucket
// i covers [2^(i−1), 2^i) and the full int64 range needs 64 buckets. The
// geometric resolution (upper/lower = 2) is coarse but cheap, bounded, and
// sufficient for the p50/p99/p999 the daemon and the experiment runner
// report; Max tightens the top quantiles to the true maximum.
//
// The zero value is an empty histogram, ready for use and safe for
// concurrent observation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets [65]int64
}

// bucketIndex returns the bucket of an observation (bit length of v).
func bucketIndex(v int64) int {
	i := 0
	for u := uint64(v); u != 0; u >>= 1 {
		i++
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Observe records a latency. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(d.Nanoseconds()) }

// ObserveNs records a raw nanosecond value.
func (h *Histogram) ObserveNs(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketIndex(v)]++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// SumNs returns the sum of all observations in nanoseconds.
func (h *Histogram) SumNs() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// MaxNs returns the largest observation (0 when empty).
func (h *Histogram) MaxNs() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// MeanNs returns the mean observation (0 when empty).
func (h *Histogram) MeanNs() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns an upper bound on the q-quantile in nanoseconds, using
// the ceil nearest-rank definition: the value returned is the upper bound of
// the bucket holding the ⌈q·n⌉-th smallest observation (never the floor
// rank, which under-reports tail quantiles on small windows — with n = 100,
// floor(0.99·(n−1)) picks the 98th order statistic while ⌈0.99·n⌉ correctly
// picks the 99th). The answer is clamped to the observed maximum and is 0
// for an empty histogram. q outside [0, 1] — including NaN — is clamped to
// the nearest valid rank before the float-to-int conversion: converting a
// NaN or out-of-range float to int64 is implementation-defined in Go, so the
// clamping must happen in float space to be portable.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	var rank int64
	switch {
	case !(q > 0): // q ≤ 0 and NaN: the minimum, rank 1
		rank = 1
	case q >= 1:
		rank = h.count
	default:
		rank = int64(math.Ceil(q * float64(h.count)))
		if rank < 1 {
			rank = 1
		}
		if rank > h.count {
			rank = h.count
		}
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			if u := bucketUpper(i); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket: Count observations with values
// ≤ UpperNs (per-bucket, not cumulative).
type Bucket struct {
	UpperNs int64
	Count   int64
}

// Buckets returns the non-empty buckets in increasing value order, the raw
// material for a Prometheus histogram exposition.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bucketsLocked()
}

func (h *Histogram) bucketsLocked() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n > 0 {
			out = append(out, Bucket{UpperNs: bucketUpper(i), Count: n})
		}
	}
	return out
}

// HistogramSnapshot is a point-in-time copy of a histogram taken under one
// lock acquisition, so Count, Sum and the bucket counts are mutually
// consistent even while other goroutines observe. The Prometheus exposition
// renders from a snapshot, never from piecewise accessor calls: an
// observation landing between two accessor reads would otherwise yield a
// page whose +Inf bucket disagrees with its _count line.
type HistogramSnapshot struct {
	Count   int64
	SumNs   int64
	MaxNs   int64
	Buckets []Bucket // non-empty, increasing UpperNs, per-bucket counts
}

// Snapshot captures the histogram's state atomically.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{Count: h.count, SumNs: h.sum, MaxNs: h.max, Buckets: h.bucketsLocked()}
}

// AddHistogram folds o's observations into h. Because both histograms share
// the same fixed log-bucket boundaries, the merge is exact — bucket-wise
// addition loses nothing — which is what makes a fleet-level histogram
// aggregated across shards as trustworthy as any single shard's. o is
// snapshotted first, so h.AddHistogram(o) is safe while o is being observed
// (but h must not be o).
func (h *Histogram) AddHistogram(o *Histogram) {
	snap := o.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count += snap.Count
	h.sum += snap.SumNs
	if snap.MaxNs > h.max {
		h.max = snap.MaxNs
	}
	for _, b := range snap.Buckets {
		h.buckets[bucketIndex(b.UpperNs)] += b.Count
	}
}

// Gauge is a settable instantaneous value, safe for concurrent use. The zero
// value reads 0 and is ready. Unlike Counter it may move down as well as up
// (queue depths, burn rates, utilization).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d (atomically, via compare-and-swap).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	r := New(Limits{})
	root := r.Start("fedcons").Int("m", 8).Str("mode", "ls-scan")
	p1 := root.Child("phase1")
	mu := p1.Child("mu").Int("mu", 3).Float("bound", 12.5).Bool("ok", false)
	mu.Finish()
	p1.Finish()
	root.Finish()

	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	roots := r.Roots()
	if len(roots) != 1 || roots[0].Name() != "fedcons" {
		t.Fatalf("roots = %v", roots)
	}
	if a, ok := roots[0].Lookup("m"); !ok || a.Int64() != 8 {
		t.Errorf("attr m = %v %v", a, ok)
	}
	if a, ok := mu.Lookup("bound"); !ok || a.Float64() != 12.5 {
		t.Errorf("attr bound = %v %v", a, ok)
	}
	if a, ok := mu.Lookup("ok"); !ok || a.Bool() {
		t.Errorf("attr ok = %v %v", a, ok)
	}
	if _, ok := mu.Lookup("absent"); ok {
		t.Error("Lookup of missing key succeeded")
	}
	if mu.Duration() < 0 {
		t.Errorf("negative duration %v", mu.Duration())
	}
	if got := len(r.FindAll("mu")); got != 1 {
		t.Errorf("FindAll(mu) = %d spans", got)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder // the Noop
	sp := r.Start("x")
	if sp != nil {
		t.Fatal("nil recorder returned a live span")
	}
	// Every operation on the nil span must be a safe no-op.
	sp.Child("c").Int("i", 1).Float("f", 2).Str("s", "v").Bool("b", true).Finish()
	sp.Finish()
	if r.Len() != 0 || r.Dropped() != 0 || r.Roots() != nil {
		t.Error("nil recorder accumulated state")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}, ExportOptions{}); err != nil {
		t.Errorf("WriteJSONL on nil recorder: %v", err)
	}
	if r.JSON(ExportOptions{}) != nil {
		t.Error("JSON on nil recorder not nil")
	}
}

// TestNoopZeroAlloc pins the disabled-tracing contract: recording through a
// nil recorder/span allocates nothing, so the pipeline can call span
// operations unconditionally.
func TestNoopZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start("fedcons")
		c := sp.Child("mu").Int("mu", 3).Float("bound", 12.5).Bool("ok", false)
		c.Finish()
		sp.Str("s", "x").Finish()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder span ops allocate %v per run, want 0", allocs)
	}
}

func TestLimitsBoundDepthAndSize(t *testing.T) {
	r := New(Limits{MaxDepth: 2, MaxSpans: 4, MaxAttrs: 1})
	root := r.Start("root").Int("a", 1).Int("b", 2) // b dropped by MaxAttrs
	c1 := root.Child("c1")
	tooDeep := c1.Child("grandchild") // depth 3 > 2: dropped
	if tooDeep != nil {
		t.Error("span beyond MaxDepth was recorded")
	}
	tooDeep.Child("x").Int("y", 1).Finish() // still safe to use
	root.Child("c2")
	root.Child("c3")
	if extra := root.Child("c4"); extra != nil { // span 5 > MaxSpans
		t.Error("span beyond MaxSpans was recorded")
	}
	if got := r.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	if got := len(root.Attrs()); got != 1 {
		t.Errorf("root has %d attrs, want 1 (MaxAttrs)", got)
	}
}

func TestWriteJSONLDeterministicAndValid(t *testing.T) {
	build := func() *Recorder {
		r := New(Limits{})
		root := r.Start("fedcons").Int("m", 8).Float("usum", 0.5625).Str("mode", `ls-"scan"`)
		root.Child("phase1").Bool("ok", true).Finish()
		root.Child("phase2").Finish()
		root.Finish()
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // real time passes; bytes must not change
	if err := build().WriteJSONL(&b, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("timing-free export not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), a.String())
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if _, has := obj["dur_ns"]; has {
			t.Errorf("timing field present without Timings: %q", line)
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["name"] != "fedcons" || first["parent"] != float64(0) || first["id"] != float64(1) {
		t.Errorf("unexpected root line: %v", first)
	}
	attrs := first["attrs"].(map[string]any)
	if attrs["usum"] != 0.5625 || attrs["mode"] != `ls-"scan"` {
		t.Errorf("attrs did not round-trip: %v", attrs)
	}
}

func TestExportWithTimings(t *testing.T) {
	r := New(Limits{})
	sp := r.Start("op")
	time.Sleep(time.Millisecond)
	sp.Finish()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, ExportOptions{Timings: true}); err != nil {
		t.Fatal(err)
	}
	var obj struct {
		DurNs int64 `json:"dur_ns"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj.DurNs < int64(time.Millisecond) {
		t.Errorf("dur_ns = %d, want ≥ 1ms", obj.DurNs)
	}
}

func TestJSONArray(t *testing.T) {
	r := New(Limits{})
	root := r.Start("a")
	root.Child("b").Finish()
	root.Finish()
	raw := r.JSON(ExportOptions{})
	var arr []map[string]any
	if err := json.Unmarshal(raw, &arr); err != nil {
		t.Fatalf("JSON() not a valid array: %v\n%s", err, raw)
	}
	if len(arr) != 2 || arr[1]["parent"] != float64(1) {
		t.Errorf("unexpected array: %v", arr)
	}
	// Empty recorder renders the empty array, not invalid JSON.
	if got := string(New(Limits{}).JSON(ExportOptions{})); got != "[]" {
		t.Errorf("empty trace = %q, want []", got)
	}
}

func TestDroppedRecordedInExport(t *testing.T) {
	r := New(Limits{MaxSpans: 2})
	root := r.Start("root")
	root.Child("kept")
	root.Child("dropped1")
	root.Child("dropped2")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped":2`) {
		t.Errorf("export does not surface the drop count:\n%s", buf.String())
	}
}

package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Add(5)
	if got := c.Inc(); got != 6 {
		t.Errorf("Inc = %d, want 6", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Inc() }()
	}
	wg.Wait()
	if c.Value() != 14 {
		t.Errorf("Value = %d, want 14", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(100 * time.Nanosecond)
	h.Observe(200 * time.Nanosecond)
	h.ObserveNs(-5) // clamps to 0
	if h.Count() != 3 || h.SumNs() != 300 || h.MaxNs() != 200 {
		t.Errorf("count=%d sum=%d max=%d", h.Count(), h.SumNs(), h.MaxNs())
	}
	if h.MeanNs() != 100 {
		t.Errorf("mean = %d", h.MeanNs())
	}
}

// TestQuantileCeilNearestRank pins the rounding fix: with one large outlier
// among n = 10 samples, ceil nearest-rank gives rank ⌈0.99·10⌉ = 10 — the
// outlier — where the old floor(p·(n−1)) indexing picked the 9th order
// statistic and under-reported p99 for every window smaller than 100.
func TestQuantileCeilNearestRank(t *testing.T) {
	var h Histogram
	for i := 0; i < 9; i++ {
		h.ObserveNs(1000)
	}
	h.ObserveNs(1 << 20) // the single tail outlier; n = 10
	p99 := h.Quantile(0.99)
	if p99 < 1<<20 {
		t.Fatalf("p99 = %d, want the outlier (≥ %d): floor-rank under-reporting", p99, 1<<20)
	}
	// p50 stays in the bulk bucket.
	if p50 := h.Quantile(0.50); p50 >= 1<<20 || p50 < 1000 {
		t.Errorf("p50 = %d, want within the 1000ns bucket bound", p50)
	}
	// Quantiles are clamped to the observed max, never a loose power of two.
	if got := h.Quantile(1.0); got != 1<<20 {
		t.Errorf("p100 = %d, want exact max %d", got, 1<<20)
	}
}

func TestQuantileSmallWindows(t *testing.T) {
	var h Histogram
	h.ObserveNs(10)
	// A single sample is every quantile.
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 10 {
			t.Errorf("Quantile(%v) = %d, want 10", q, got)
		}
	}
	h.ObserveNs(1000)
	// n=2: ⌈0.99·2⌉ = 2 → the larger sample, even though floor(0.99·1) = 0
	// would have picked the smaller.
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 of {10, 1000} = %d, want 1000", got)
	}
}

// TestQuantileDegenerateInputs is the table-driven regression for the rank
// clamping: q values at and beyond the [0, 1] edges — including NaN, whose
// float→int64 conversion is implementation-defined and must never reach
// one — map to the nearest valid rank on both single- and multi-sample
// windows.
func TestQuantileDegenerateInputs(t *testing.T) {
	single := &Histogram{}
	single.ObserveNs(10)
	multi := &Histogram{}
	for _, v := range []int64{10, 20, 1 << 20} {
		multi.ObserveNs(v)
	}
	cases := []struct {
		name   string
		h      *Histogram
		q      float64
		want   int64
		wantLE int64 // when > 0, assert want ≤ got ≤ wantLE instead
	}{
		{name: "zero-single-sample", h: single, q: 0, want: 10},
		{name: "negative-single-sample", h: single, q: -1, want: 10},
		{name: "nan-single-sample", h: single, q: math.NaN(), want: 10},
		{name: "above-one-single-sample", h: single, q: 1.5, want: 10},
		{name: "inf-single-sample", h: single, q: math.Inf(1), want: 10},
		{name: "zero-multi", h: multi, q: 0, want: 10, wantLE: 16}, // bucket upper bound of the minimum
		{name: "nan-multi", h: multi, q: math.NaN(), want: 10, wantLE: 16},
		{name: "neg-inf-multi", h: multi, q: math.Inf(-1), want: 10, wantLE: 16},
		{name: "one-multi", h: multi, q: 1, want: 1 << 20},
		{name: "above-one-multi", h: multi, q: 42, want: 1 << 20},
	}
	for _, tc := range cases {
		got := tc.h.Quantile(tc.q)
		if tc.wantLE > 0 {
			if got < tc.want || got > tc.wantLE {
				t.Errorf("%s: Quantile(%v) = %d, want in [%d, %d]", tc.name, tc.q, got, tc.want, tc.wantLE)
			}
		} else if got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	var empty Histogram
	if got := empty.Quantile(math.NaN()); got != 0 {
		t.Errorf("empty NaN quantile = %d, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.ObserveNs(0)
	h.ObserveNs(1)
	h.ObserveNs(2)
	h.ObserveNs(3)
	h.ObserveNs(1000)
	buckets := h.Buckets()
	want := []Bucket{{0, 1}, {1, 1}, {3, 2}, {1023, 1}}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", buckets, want)
	}
	for i, b := range buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, b, want[i])
		}
	}
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, count is %d", total, h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveNs(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v     int64
		upper int64
	}{
		{0, 0}, {1, 1}, {2, 3}, {3, 3}, {4, 7}, {1023, 1023}, {1024, 2047},
		{math.MaxInt64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := bucketUpper(bucketIndex(c.v)); got != c.upper {
			t.Errorf("bucketUpper(bucketIndex(%d)) = %d, want %d", c.v, got, c.upper)
		}
		if c.v > bucketUpper(bucketIndex(c.v)) {
			t.Errorf("value %d above its bucket upper bound", c.v)
		}
	}
}

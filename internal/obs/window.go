package obs

import (
	"sync"
	"time"
)

// Window is a rolling-window event counter: Add records events now, Sum
// returns how many landed within the trailing span. It is the primitive
// behind the daemon's SLO burn-rate gauges, where "how many admissions blew
// the latency budget *recently*" matters and a lifetime counter would never
// recover from one bad minute.
//
// The window is a ring of fixed-width time buckets expired lazily: each
// bucket remembers which interval it last counted for and is zeroed on first
// touch after that interval passes, so neither Add nor Sum ever walks more
// than the ring. Resolution is span/len(buckets); events age out at bucket
// granularity, which overestimates Sum by at most one bucket's worth — the
// conservative direction for burn-rate alerting.
type Window struct {
	mu      sync.Mutex
	width   time.Duration // one bucket's time width
	buckets []int64
	epochs  []int64 // interval index each bucket last counted for
	now     func() time.Time
}

// NewWindow returns a rolling counter covering span with n buckets.
// span must be positive; n < 1 selects 60 buckets.
func NewWindow(span time.Duration, n int) *Window {
	return newWindowAt(span, n, time.Now)
}

// newWindowAt is NewWindow with an injectable clock, for tests.
func newWindowAt(span time.Duration, n int, now func() time.Time) *Window {
	if n < 1 {
		n = 60
	}
	if span <= 0 {
		span = time.Minute
	}
	w := &Window{
		width:   span / time.Duration(n),
		buckets: make([]int64, n),
		epochs:  make([]int64, n),
		now:     now,
	}
	if w.width <= 0 {
		w.width = time.Nanosecond
	}
	for i := range w.epochs {
		w.epochs[i] = -1
	}
	return w
}

// Add records n events at the current instant.
func (w *Window) Add(n int64) {
	if w == nil {
		return
	}
	epoch := int64(w.now().UnixNano()) / int64(w.width)
	i := int(epoch % int64(len(w.buckets)))
	w.mu.Lock()
	if w.epochs[i] != epoch {
		w.epochs[i] = epoch
		w.buckets[i] = 0
	}
	w.buckets[i] += n
	w.mu.Unlock()
}

// Sum returns the events recorded within the trailing span.
func (w *Window) Sum() int64 {
	if w == nil {
		return 0
	}
	epoch := int64(w.now().UnixNano()) / int64(w.width)
	oldest := epoch - int64(len(w.buckets)) + 1
	var sum int64
	w.mu.Lock()
	for i, e := range w.epochs {
		if e >= oldest {
			sum += w.buckets[i]
		}
	}
	w.mu.Unlock()
	return sum
}

// Span returns the window's covered duration.
func (w *Window) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.width * time.Duration(len(w.buckets))
}

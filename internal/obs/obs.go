// Package obs is the repository's stdlib-only observability layer: a
// hierarchical span recorder for decision traces, plus counter and
// log-bucketed latency-histogram primitives shared by the analysis pipeline,
// the experiment runner and the fedschedd daemon.
//
// The recorder exists because a FEDCONS verdict is not explainable from its
// boolean alone: no constant speedup factor can vouch for a rejection of a
// constrained-deadline system (paper Example 2; Chen, arXiv:1510.07254), so
// the only evidence that a rejection is justified — or spurious — is the
// concrete analysis trail: which μ values MINPROCS tried, what LS makespan
// each produced against the Lemma-1 bound, and which DBF* inequality ended
// the Phase-2 first-fit scan. Spans capture exactly that trail.
//
// Design constraints, in priority order:
//
//  1. Near-zero overhead when disabled. A nil *Recorder (the Noop) is a
//     valid recorder: every method on a nil *Recorder or nil *Span is a
//     no-op that allocates nothing, so call sites are written
//     unconditionally and pay only a pointer test when tracing is off.
//     Callers must keep attribute *arguments* cheap (ints and floats
//     already at hand), since argument evaluation precedes the nil test.
//  2. Bounded memory. Limits cap tree depth, total span count and
//     attributes per span; excess spans are counted in Dropped rather than
//     recorded, so a pathological μ-scan cannot balloon a trace.
//  3. Deterministic export. WriteJSONL emits spans in creation (pre-order)
//     sequence with attributes in insertion order; with Timings disabled
//     the bytes are a pure function of the recorded structure, which is how
//     `fedsched -trace` achieves byte-identical output across runs.
//
// Timestamps are monotonic: every span records offsets from the recorder's
// creation instant via time.Since, which Go guarantees uses the monotonic
// clock, so span durations are immune to wall-clock steps.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Limits bounds a Recorder's memory. The zero value selects the defaults.
type Limits struct {
	// MaxDepth is the deepest span nesting recorded (roots are depth 1).
	// Children beyond it are dropped (and counted). Default 16.
	MaxDepth int
	// MaxSpans caps the total spans a recorder retains. Default 16384.
	MaxSpans int
	// MaxAttrs caps the attributes retained per span. Default 32.
	MaxAttrs int
}

// DefaultLimits are the caps applied where a Limits field is zero.
var DefaultLimits = Limits{MaxDepth: 16, MaxSpans: 16384, MaxAttrs: 32}

func (l Limits) withDefaults() Limits {
	if l.MaxDepth <= 0 {
		l.MaxDepth = DefaultLimits.MaxDepth
	}
	if l.MaxSpans <= 0 {
		l.MaxSpans = DefaultLimits.MaxSpans
	}
	if l.MaxAttrs <= 0 {
		l.MaxAttrs = DefaultLimits.MaxAttrs
	}
	return l
}

// Recorder collects a bounded forest of spans. The zero value is not usable;
// construct with New. A nil *Recorder is the Noop recorder: all methods
// no-op, so tracing call sites need no conditionals.
//
// A Recorder is safe for concurrent use; the analysis pipeline records from
// a single goroutine, but the daemon may export while a request records.
type Recorder struct {
	mu      sync.Mutex
	epoch   time.Time
	limits  Limits
	roots   []*Span
	spans   int
	dropped int
}

// Noop is the disabled recorder: nil, so every operation through it
// compiles to a pointer test. Exists for readable call sites
// (core.Schedule(sys, m, core.Options{Trace: obs.Noop})).
var Noop *Recorder

// New returns an empty Recorder with the given limits (zero fields take
// DefaultLimits).
func New(l Limits) *Recorder {
	return &Recorder{epoch: time.Now(), limits: l.withDefaults()}
}

// Start opens a root span. On a nil Recorder it returns a nil *Span, on
// which every method is a no-op.
func (r *Recorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	return r.newSpan(nil, name, 1)
}

func (r *Recorder) newSpan(parent *Span, name string, depth int) *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans >= r.limits.MaxSpans || depth > r.limits.MaxDepth {
		r.dropped++
		if parent != nil {
			parent.dropped++
		}
		return nil
	}
	s := &Span{rec: r, name: name, depth: depth, start: time.Since(r.epoch)}
	r.spans++
	if parent == nil {
		r.roots = append(r.roots, s)
	} else {
		parent.children = append(parent.children, s)
	}
	return s
}

// Roots returns the recorded root spans in creation order (nil recorder:
// none).
func (r *Recorder) Roots() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.roots...)
}

// Len returns the number of spans retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// Dropped returns how many spans the limits refused.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Span is one node of the decision trace: a named operation with typed
// attributes, children, and monotonic start/end offsets. All methods are
// nil-safe no-ops so disabled tracing costs only pointer tests.
type Span struct {
	rec      *Recorder
	name     string
	depth    int
	start    time.Duration
	end      time.Duration
	finished bool
	attrs    []Attr
	children []*Span
	dropped  int
}

// Child opens a sub-span. Beyond the recorder's depth or span caps it
// returns nil (and counts the drop).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.newSpan(s, name, s.depth+1)
}

// Finish records the span's end timestamp. Idempotent; unfinished spans
// export with a zero duration.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	if !s.finished {
		s.finished = true
		s.end = time.Since(s.rec.epoch)
	}
	s.rec.mu.Unlock()
}

func (s *Span) addAttr(a Attr) *Span {
	if s == nil {
		return nil
	}
	s.rec.mu.Lock()
	if len(s.attrs) < s.rec.limits.MaxAttrs {
		s.attrs = append(s.attrs, a)
	}
	s.rec.mu.Unlock()
	return s
}

// Int attaches an integer attribute. Setters chain and are nil-safe.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.addAttr(Attr{Key: key, Kind: KindInt, IntV: v})
}

// Float attaches a float attribute.
func (s *Span) Float(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	return s.addAttr(Attr{Key: key, Kind: KindFloat, FloatV: v})
}

// Str attaches a string attribute.
func (s *Span) Str(key, v string) *Span {
	if s == nil {
		return nil
	}
	return s.addAttr(Attr{Key: key, Kind: KindStr, StrV: v})
}

// Bool attaches a boolean attribute.
func (s *Span) Bool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	return s.addAttr(Attr{Key: key, Kind: KindBool, BoolV: v})
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns the recorded sub-spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Attrs returns the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Lookup returns the first attribute with the given key.
func (s *Span) Lookup(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	for _, a := range s.attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Duration returns end − start (zero for nil or unfinished spans).
func (s *Span) Duration() time.Duration {
	if s == nil || !s.finished {
		return 0
	}
	return s.end - s.start
}

// Kind discriminates an attribute's typed value.
type Kind uint8

// Attribute kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindStr
	KindBool
)

// Attr is one typed key/value attribute of a span. Exactly the field
// selected by Kind is meaningful.
type Attr struct {
	Key    string
	Kind   Kind
	IntV   int64
	FloatV float64
	StrV   string
	BoolV  bool
}

// Int64 returns the integer value (0 if the attribute is not an int).
func (a Attr) Int64() int64 { return a.IntV }

// Float64 returns the float value, widening an int attribute.
func (a Attr) Float64() float64 {
	if a.Kind == KindInt {
		return float64(a.IntV)
	}
	return a.FloatV
}

// Str returns the string value ("" if not a string).
func (a Attr) Str() string { return a.StrV }

// Bool returns the boolean value (false if not a bool).
func (a Attr) Bool() bool { return a.BoolV }

// String renders the attribute for debugging.
func (a Attr) String() string {
	switch a.Kind {
	case KindInt:
		return fmt.Sprintf("%s=%d", a.Key, a.IntV)
	case KindFloat:
		return fmt.Sprintf("%s=%g", a.Key, a.FloatV)
	case KindBool:
		return fmt.Sprintf("%s=%t", a.Key, a.BoolV)
	default:
		return fmt.Sprintf("%s=%q", a.Key, a.StrV)
	}
}

// Walk visits every span of the recorder in pre-order (the JSONL export
// order), calling fn with each span and its parent (nil for roots).
func (r *Recorder) Walk(fn func(s, parent *Span)) {
	if r == nil {
		return
	}
	var rec func(s, parent *Span)
	rec = func(s, parent *Span) {
		fn(s, parent)
		for _, c := range s.children {
			rec(c, s)
		}
	}
	for _, root := range r.Roots() {
		rec(root, nil)
	}
}

// FindAll returns every span with the given name, in pre-order.
func (r *Recorder) FindAll(name string) []*Span {
	var out []*Span
	r.Walk(func(s, _ *Span) {
		if s.name == name {
			out = append(out, s)
		}
	})
	return out
}


package obs

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramPrometheusConformance renders a histogram while other
// goroutines are observing into it and checks the exposition invariants a
// Prometheus scraper assumes: cumulative le buckets are monotone
// non-decreasing, the +Inf bucket equals _count, and the whole block is
// internally consistent (one snapshot, not piecewise reads).
func TestHistogramPrometheusConformance(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveNs(rng.Int63n(1 << 30))
				}
			}
		}(int64(w))
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		WriteHistogram(&buf, "x", "", &h)
		checkHistogramBlock(t, buf.String())
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()

	// And once quiescent: the rendered totals must match the accessors.
	var buf bytes.Buffer
	WriteHistogram(&buf, "x", "", &h)
	inf, count, _ := checkHistogramBlock(t, buf.String())
	if inf != h.Count() || count != h.Count() {
		t.Fatalf("quiescent +Inf=%d _count=%d, want %d", inf, count, h.Count())
	}
}

// checkHistogramBlock parses one WriteHistogram block and enforces the
// exposition invariants, returning (+Inf bucket, _count, _sum line present).
func checkHistogramBlock(t *testing.T, page string) (inf, count int64, sum string) {
	t.Helper()
	var prev int64 = -1
	inf, count = -1, -1
	for _, line := range strings.Split(strings.TrimSuffix(page, "\n"), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed line %q", line)
		}
		switch {
		case strings.Contains(name, `le="+Inf"`):
			inf, _ = strconv.ParseInt(val, 10, 64)
			if inf < prev {
				t.Errorf("+Inf bucket %d < previous cumulative %d", inf, prev)
			}
		case strings.Contains(name, "_bucket{"):
			cum, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			if cum < prev {
				t.Errorf("cumulative buckets not monotone: %d after %d in\n%s", cum, prev, page)
			}
			prev = cum
		case strings.HasSuffix(name, "_sum"):
			sum = val
		case strings.HasSuffix(name, "_count"):
			count, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if inf < 0 || count < 0 || sum == "" {
		t.Fatalf("block missing +Inf/_count/_sum:\n%s", page)
	}
	if inf != count {
		t.Errorf("+Inf bucket %d != _count %d (piecewise read?):\n%s", inf, count, page)
	}
	if count > 0 && sum == "0" {
		// sum of positive observations with count>0 can be 0 only if every
		// observation was 0; the random workload makes that impossible.
		t.Errorf("_count=%d but _sum=0", count)
	}
	return inf, count, sum
}

func TestHistogramAddHistogramExact(t *testing.T) {
	var a, b, merged Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := rng.Int63n(1 << 40)
		a.ObserveNs(v)
		merged.ObserveNs(v)
	}
	for i := 0; i < 300; i++ {
		v := rng.Int63n(1 << 20)
		b.ObserveNs(v)
		merged.ObserveNs(v)
	}
	var sum Histogram
	sum.AddHistogram(&a)
	sum.AddHistogram(&b)
	got, want := sum.Snapshot(), merged.Snapshot()
	if got.Count != want.Count || got.SumNs != want.SumNs || got.MaxNs != want.MaxNs {
		t.Fatalf("merge totals = %+v, want %+v", got, want)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("merge has %d buckets, want %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if sum.Quantile(q) != merged.Quantile(q) {
			t.Fatalf("q%.3f = %d, want %d", q, sum.Quantile(q), merged.Quantile(q))
		}
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	g.Add(-1.25)
	if g.Value() != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8002.25 {
		t.Fatalf("concurrent adds = %v, want 8002.25", g.Value())
	}
	var nilG *Gauge = nil
	_ = nilG // Gauge has no nil-safe contract; zero value is the API.
}

func TestWindowRolls(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	w := newWindowAt(10*time.Second, 10, now)
	if w.Span() != 10*time.Second {
		t.Fatalf("span = %v", w.Span())
	}
	w.Add(3)
	clock = clock.Add(2 * time.Second)
	w.Add(4)
	if got := w.Sum(); got != 7 {
		t.Fatalf("sum = %d, want 7", got)
	}
	// Advance so the first bucket ages out but the second survives.
	clock = time.Unix(0, 0).Add(10 * time.Second)
	if got := w.Sum(); got != 4 {
		t.Fatalf("after first expiry sum = %d, want 4", got)
	}
	// Far future: everything expired, including wrapped reuse of buckets.
	clock = time.Unix(0, 0).Add(time.Hour)
	if got := w.Sum(); got != 0 {
		t.Fatalf("after full expiry sum = %d, want 0", got)
	}
	// Nil window is inert.
	var nilW *Window
	nilW.Add(1)
	if nilW.Sum() != 0 || nilW.Span() != 0 {
		t.Fatal("nil window not inert")
	}
}

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", Label{"shard", "1"}).Add(2)
	r.Counter("zeta_total", Label{"shard", "0"}).Add(5)
	r.Gauge("alpha").Set(1.5)
	r.GaugeFunc("mid_rate", func() float64 { return 0.25 }, Label{"window", "60s"})
	r.Histogram("lat_seconds").ObserveNs(3)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	want := `# TYPE alpha gauge
alpha 1.5
# TYPE lat_seconds histogram
lat_seconds_bucket{le="3e-09"} 1
lat_seconds_bucket{le="+Inf"} 1
lat_seconds_sum 3e-09
lat_seconds_count 1
# TYPE mid_rate gauge
mid_rate{window="60s"} 0.25
# TYPE zeta_total counter
zeta_total{shard="1"} 2
zeta_total{shard="0"} 5
`
	if buf.String() != want {
		t.Fatalf("rendering mismatch:\n got:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Re-render is byte-stable.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf2.String() != want {
		t.Fatal("second render differs")
	}
	// Same name + labels returns the same series.
	r.Counter("zeta_total", Label{"shard", "0"}).Add(1)
	if got := r.Counter("zeta_total", Label{"shard", "0"}).Value(); got != 6 {
		t.Fatalf("series not shared: %d", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total")
	r.Gauge("x_total")
}

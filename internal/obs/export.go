package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strconv"
)

// ExportOptions configures trace serialization.
type ExportOptions struct {
	// Timings includes each span's start_ns and dur_ns. Timings vary run to
	// run, so exports meant to be byte-deterministic (fedsched -trace, the
	// golden tests) leave this false; exports meant for latency analysis
	// (the daemon's inline ?trace=1 payload) set it.
	Timings bool
}

// WriteJSONL writes the trace as JSON Lines: one object per span, pre-order,
// each carrying a 1-based id, its parent's id (0 for roots), the span name,
// optional timings, the attributes in insertion order, and a dropped count
// when the limits truncated the span's children. With opt.Timings false the
// output is a pure function of the recorded structure.
func (r *Recorder) WriteJSONL(w io.Writer, opt ExportOptions) error {
	if r == nil {
		return nil
	}
	var buf bytes.Buffer
	r.encodeAll(&buf, opt, '\n')
	_, err := w.Write(buf.Bytes())
	return err
}

// JSON renders the trace as a JSON array of the same objects WriteJSONL
// emits, for embedding in a response body (nil recorder: nil).
func (r *Recorder) JSON(opt ExportOptions) json.RawMessage {
	if r == nil {
		return nil
	}
	var buf bytes.Buffer
	buf.WriteByte('[')
	r.encodeAll(&buf, opt, ',')
	// Drop the trailing separator left by the last span, if any.
	if b := buf.Bytes(); b[len(b)-1] == ',' {
		buf.Truncate(len(b) - 1)
	}
	buf.WriteByte(']')
	return buf.Bytes()
}

// encodeAll writes every span object followed by sep.
func (r *Recorder) encodeAll(buf *bytes.Buffer, opt ExportOptions, sep byte) {
	id := 0
	ids := map[*Span]int{}
	r.Walk(func(s, parent *Span) {
		id++
		ids[s] = id
		encodeSpan(buf, s, id, ids[parent], opt)
		buf.WriteByte(sep)
	})
}

func encodeSpan(buf *bytes.Buffer, s *Span, id, parent int, opt ExportOptions) {
	buf.WriteString(`{"id":`)
	buf.WriteString(strconv.Itoa(id))
	buf.WriteString(`,"parent":`)
	buf.WriteString(strconv.Itoa(parent))
	buf.WriteString(`,"name":`)
	writeJSONString(buf, s.name)
	if opt.Timings {
		buf.WriteString(`,"start_ns":`)
		buf.WriteString(strconv.FormatInt(s.start.Nanoseconds(), 10))
		buf.WriteString(`,"dur_ns":`)
		buf.WriteString(strconv.FormatInt(s.Duration().Nanoseconds(), 10))
	}
	if len(s.attrs) > 0 {
		buf.WriteString(`,"attrs":{`)
		for i, a := range s.attrs {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(buf, a.Key)
			buf.WriteByte(':')
			switch a.Kind {
			case KindInt:
				buf.WriteString(strconv.FormatInt(a.IntV, 10))
			case KindFloat:
				writeJSONFloat(buf, a.FloatV)
			case KindBool:
				buf.WriteString(strconv.FormatBool(a.BoolV))
			default:
				writeJSONString(buf, a.StrV)
			}
		}
		buf.WriteByte('}')
	}
	if s.dropped > 0 {
		buf.WriteString(`,"dropped":`)
		buf.WriteString(strconv.Itoa(s.dropped))
	}
	buf.WriteByte('}')
}

// writeJSONString appends a JSON-encoded string. encoding/json is the
// reference escaper; its output for a string never fails.
func writeJSONString(buf *bytes.Buffer, s string) {
	b, _ := json.Marshal(s)
	buf.Write(b)
}

// writeJSONFloat appends the shortest round-trip decimal form of f, the same
// deterministic rendering for every run. Non-finite values (never produced
// by the pipeline) encode as null to stay valid JSON.
func writeJSONFloat(buf *bytes.Buffer, f float64) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		buf.WriteString("null")
		return
	}
	buf.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
}

// Package perfgate implements the continuous perf-regression gate: it parses
// `go test -bench` output, reduces repeated runs to per-benchmark medians,
// and compares them against a committed baseline with a relative threshold.
//
// The gate is deliberately simple — medians over -count repetitions, one
// ratio per benchmark — because its job is to catch the large, accidental
// regressions (an O(n²) slipped into the admission path, a lock added to the
// warm path) on every `make check`, not to resolve single-digit-percent
// drifts that need a quiet lab host. Medians make it robust to one noisy
// run; the threshold (default 25%) keeps it quiet under normal scheduler
// jitter.
package perfgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed benchmark result line.
type Sample struct {
	Name    string  // benchmark name with the -GOMAXPROCS suffix stripped
	NsPerOp float64 // nanoseconds per operation
}

// ParseBench reads `go test -bench` text output and returns every benchmark
// sample in order. Lines that are not benchmark results (headers, PASS/ok
// trailers, log output) are skipped. The trailing -N GOMAXPROCS suffix is
// stripped from names so baselines survive a change in test parallelism;
// sub-benchmark paths (BenchmarkAdmit/warm-cache) are preserved.
func ParseBench(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is: name, iteration count, value, "ns/op", [more].
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		idx := -1
		for i, f := range fields {
			if f == "ns/op" {
				idx = i
				break
			}
		}
		if idx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[idx-1], 64)
		if err != nil {
			return nil, fmt.Errorf("perfgate: bad ns/op value in %q: %v", sc.Text(), err)
		}
		out = append(out, Sample{Name: stripProcs(fields[0]), NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfgate: reading bench output: %v", err)
	}
	return out, nil
}

// stripProcs removes the -N GOMAXPROCS suffix go test appends to benchmark
// names. Only a wholly numeric suffix after the last dash is stripped, so
// sub-benchmark labels like "warm-cache" or "par=8" are left intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Medians groups samples by name and reduces each group to its median
// ns/op (the mean of the middle pair for even-sized groups).
func Medians(samples []Sample) map[string]float64 {
	byName := map[string][]float64{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s.NsPerOp)
	}
	out := make(map[string]float64, len(byName))
	for name, vals := range byName {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			out[name] = vals[n/2]
		} else {
			out[name] = (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	return out
}

// Host fingerprints the machine a baseline was recorded on. Benchmark
// numbers are only comparable on like hardware; the gate downgrades
// failures to warnings when the fingerprint changed (advisory mode).
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// CurrentHost fingerprints the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Comparable reports whether baselines recorded on h can be held against
// results from other: same platform and CPU count. The Go patch version is
// deliberately excluded — toolchain updates rarely move these benchmarks by
// anywhere near the gate's threshold, and including it would invalidate the
// committed baseline on every upgrade.
func (h Host) Comparable(other Host) bool {
	return h.GOOS == other.GOOS && h.GOARCH == other.GOARCH && h.NumCPU == other.NumCPU
}

// MismatchReason names the fingerprint fields that make a baseline recorded
// on h incomparable to results from other — the note an advisory history
// line must carry so a later reader of bench_history.jsonl can tell a
// downgraded regression from a clean pass. It returns "" when the hosts are
// comparable.
func (h Host) MismatchReason(other Host) string {
	if h.Comparable(other) {
		return ""
	}
	var parts []string
	if h.GOOS != other.GOOS {
		parts = append(parts, fmt.Sprintf("goos %s→%s", h.GOOS, other.GOOS))
	}
	if h.GOARCH != other.GOARCH {
		parts = append(parts, fmt.Sprintf("goarch %s→%s", h.GOARCH, other.GOARCH))
	}
	if h.NumCPU != other.NumCPU {
		parts = append(parts, fmt.Sprintf("cpus %d→%d", h.NumCPU, other.NumCPU))
	}
	return "host mismatch: " + strings.Join(parts, ", ")
}

// Baseline is the committed reference: per-benchmark median ns/op plus the
// fingerprint of the host that recorded them.
type Baseline struct {
	Host       Host               `json:"host"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("perfgate: parsing baseline %s: %v", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("perfgate: baseline %s holds no benchmarks", path)
	}
	return b, nil
}

// Write saves the baseline as deterministic indented JSON (sorted keys), so
// regenerating an unchanged baseline produces no diff.
func (b Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Delta is one benchmark's baseline-vs-current comparison. Ratio is
// current/baseline: 1.30 means 30% slower than baseline.
type Delta struct {
	Name   string  `json:"name"`
	BaseNs float64 `json:"base_ns"`
	CurNs  float64 `json:"cur_ns"`
	Ratio  float64 `json:"ratio"`
}

// Report is the outcome of holding current medians against a baseline.
type Report struct {
	Deltas      []Delta  `json:"deltas"`      // every benchmark present in both, sorted by name
	Regressions []Delta  `json:"regressions"` // deltas whose ratio exceeds 1+threshold
	Missing     []string `json:"missing"`     // in the baseline but not the current run
	New         []string `json:"new"`         // in the current run but not the baseline
}

// Compare holds current medians against baseline medians. A benchmark
// regresses when its ratio exceeds 1+threshold. Benchmarks missing from the
// current run are reported (a renamed benchmark silently leaving the gate is
// itself a regression of coverage); new benchmarks are listed so -update
// runs pick them up.
func Compare(baseline, current map[string]float64, threshold float64) Report {
	var rep Report
	for name, base := range baseline {
		cur, ok := current[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		d := Delta{Name: name, BaseNs: base, CurNs: cur, Ratio: cur / base}
		rep.Deltas = append(rep.Deltas, d)
		if d.Ratio > 1+threshold {
			rep.Regressions = append(rep.Regressions, d)
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			rep.New = append(rep.New, name)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	sort.Slice(rep.Regressions, func(i, j int) bool { return rep.Regressions[i].Name < rep.Regressions[j].Name })
	sort.Strings(rep.Missing)
	sort.Strings(rep.New)
	return rep
}

// HistoryEntry is one line of the append-only bench history JSONL: the run's
// medians, host, and gate outcome. The history is the longitudinal record
// the committed baseline snapshots; plotting it shows drift the per-run gate
// is too coarse to flag.
type HistoryEntry struct {
	Time       string             `json:"time"` // RFC 3339, recorded by the caller
	Host       Host               `json:"host"`
	Medians    map[string]float64 `json:"medians"`
	WorstRatio float64            `json:"worst_ratio,omitempty"` // max current/baseline ratio, 0 when no baseline
	Pass       bool               `json:"pass"`
	Note       string             `json:"note,omitempty"` // e.g. "baseline update"
}

// AppendHistory appends one entry to the JSONL history at path, creating the
// file if needed.
func AppendHistory(path string, e HistoryEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(data, '\n'))
	return err
}

// WorstRatio returns the largest current/baseline ratio in the report, or 0
// when nothing was comparable.
func (r Report) WorstRatio() float64 {
	worst := 0.0
	for _, d := range r.Deltas {
		if d.Ratio > worst {
			worst = d.Ratio
		}
	}
	return worst
}

package perfgate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// benchOutput is a verbatim-shaped `go test -bench` transcript: headers,
// sub-benchmarks, -benchmem columns, repeated counts, and trailer lines.
const benchOutput = `goos: linux
goarch: amd64
pkg: fedsched/internal/service
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAdmit/warm-cache-8         	    8124	    168563 ns/op
BenchmarkAdmit/warm-cache-8         	    8000	    170001 ns/op
BenchmarkAdmit/warm-cache-8         	    8100	    166001 ns/op
BenchmarkRemove/warm-incremental-8  	    7548	    149086 ns/op	1024 B/op	12 allocs/op
BenchmarkSchedulePar/par=8-8        	    3822	    323879 ns/op
BenchmarkSuiteQuick 	       1	3238361465 ns/op	1766691344 B/op	17614530 allocs/op
PASS
ok  	fedsched/internal/service	14.334s
`

func TestParseBench(t *testing.T) {
	samples, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range samples {
		names = append(names, s.Name)
	}
	want := []string{
		"BenchmarkAdmit/warm-cache",
		"BenchmarkAdmit/warm-cache",
		"BenchmarkAdmit/warm-cache",
		"BenchmarkRemove/warm-incremental",
		"BenchmarkSchedulePar/par=8", // "par=8" is a label, not a GOMAXPROCS suffix
		"BenchmarkSuiteQuick",        // no suffix at all
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("parsed names = %v, want %v", names, want)
	}
	if samples[5].NsPerOp != 3238361465 {
		t.Errorf("SuiteQuick ns/op = %v, want 3238361465", samples[5].NsPerOp)
	}
}

func TestParseBenchRejectsCorruptValue(t *testing.T) {
	_, err := ParseBench(strings.NewReader("BenchmarkX-8  100  oops ns/op\n"))
	if err == nil {
		t.Fatal("corrupt ns/op parsed without error")
	}
}

func TestMedians(t *testing.T) {
	samples := []Sample{
		{"a", 300}, {"a", 100}, {"a", 200}, // odd: middle value
		{"b", 10}, {"b", 30}, {"b", 20}, {"b", 40}, // even: mean of middle pair
	}
	got := Medians(samples)
	if got["a"] != 200 {
		t.Errorf("median a = %v, want 200", got["a"])
	}
	if got["b"] != 25 {
		t.Errorf("median b = %v, want 25", got["b"])
	}
}

// TestCompareFailsOnInjectedSlowdown is the gate's core acceptance check: a
// >25% slowdown injected into one benchmark must surface as a regression,
// while ±threshold noise on the others must not.
func TestCompareFailsOnInjectedSlowdown(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkAdmit/warm-cache": 168563,
		"BenchmarkSchedulePar":      323879,
		"BenchmarkSuiteQuick":       3.2e9,
	}
	current := map[string]float64{
		"BenchmarkAdmit/warm-cache": 168563 * 1.30, // injected 30% slowdown
		"BenchmarkSchedulePar":      323879 * 1.20, // within the 25% gate
		"BenchmarkSuiteQuick":       3.2e9 * 0.90,  // improvement
	}
	rep := Compare(baseline, current, 0.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "BenchmarkAdmit/warm-cache" {
		t.Fatalf("regressions = %+v, want exactly the injected slowdown", rep.Regressions)
	}
	if r := rep.Regressions[0].Ratio; r < 1.299 || r > 1.301 {
		t.Errorf("regression ratio = %v, want ~1.30", r)
	}
	if len(rep.Missing) != 0 || len(rep.New) != 0 {
		t.Errorf("missing/new = %v/%v, want none", rep.Missing, rep.New)
	}
	if w := rep.WorstRatio(); w < 1.299 || w > 1.301 {
		t.Errorf("worst ratio = %v, want the injected 1.30", w)
	}
}

func TestCompareReportsMissingAndNew(t *testing.T) {
	rep := Compare(
		map[string]float64{"old": 100, "both": 100},
		map[string]float64{"new": 100, "both": 100},
		0.25,
	)
	if !reflect.DeepEqual(rep.Missing, []string{"old"}) {
		t.Errorf("missing = %v, want [old]", rep.Missing)
	}
	if !reflect.DeepEqual(rep.New, []string{"new"}) {
		t.Errorf("new = %v, want [new]", rep.New)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("unchanged benchmark flagged: %+v", rep.Regressions)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	want := Baseline{
		Host:       CurrentHost(),
		Benchmarks: map[string]float64{"BenchmarkAdmit/warm-cache": 168563, "BenchmarkSuiteQuick": 3.2e9},
	}
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("absent baseline loaded without error")
	}
}

func TestHostComparable(t *testing.T) {
	h := Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8}
	if !h.Comparable(Host{GoVersion: "go1.24.5", GOOS: "linux", GOARCH: "amd64", NumCPU: 8}) {
		t.Error("patch-version difference must stay comparable")
	}
	if h.Comparable(Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "arm64", NumCPU: 8}) {
		t.Error("different architecture must not be comparable")
	}
	if h.Comparable(Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4}) {
		t.Error("different CPU count must not be comparable")
	}
}

func TestHostMismatchReason(t *testing.T) {
	h := Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8}
	if got := h.MismatchReason(h); got != "" {
		t.Errorf("identical hosts: reason %q, want empty", got)
	}
	if got := h.MismatchReason(Host{GoVersion: "go1.24.5", GOOS: "linux", GOARCH: "amd64", NumCPU: 8}); got != "" {
		t.Errorf("patch-version difference: reason %q, want empty (stays comparable)", got)
	}
	got := h.MismatchReason(Host{GoVersion: "go1.24.0", GOOS: "darwin", GOARCH: "arm64", NumCPU: 4})
	for _, want := range []string{"host mismatch", "goos linux→darwin", "goarch amd64→arm64", "cpus 8→4"} {
		if !strings.Contains(got, want) {
			t.Errorf("reason %q missing %q", got, want)
		}
	}
	if got := h.MismatchReason(Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4}); strings.Contains(got, "goos") || strings.Contains(got, "goarch") {
		t.Errorf("cpu-only mismatch names matching fields: %q", got)
	}
}

// TestAppendHistoryKeepsMismatchNote is the regression test for the advisory
// append dropping the mismatch reason: an entry written with a Note must
// come back with it on the JSONL line.
func TestAppendHistoryKeepsMismatchNote(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	base := Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8}
	cur := Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4}
	if err := AppendHistory(path, HistoryEntry{
		Time:    "2026-08-08T00:00:00Z",
		Host:    cur,
		Medians: map[string]float64{"BenchmarkAdmit": 100},
		Pass:    true, // downgraded: regression on a mismatched host
		Note:    base.MismatchReason(cur),
	}); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e HistoryEntry
	if err := json.Unmarshal([]byte(strings.TrimSuffix(data, "\n")), &e); err != nil {
		t.Fatal(err)
	}
	if want := "host mismatch: cpus 8→4"; e.Note != want {
		t.Errorf("history note = %q, want %q", e.Note, want)
	}
}

func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	for i := 0; i < 2; i++ {
		if err := AppendHistory(path, HistoryEntry{
			Time:    "2026-08-08T00:00:00Z",
			Host:    CurrentHost(),
			Medians: map[string]float64{"BenchmarkAdmit": float64(100 + i)},
			Pass:    true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(data, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d lines after two appends, want 2:\n%s", len(lines), data)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Errorf("history line is not a JSON object: %q", line)
		}
	}
}

// readFile is a tiny wrapper so the test reads like the assertions it makes.
func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

package reservation

import (
	"errors"
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// randomTask draws a DAG task; tight deadlines bias toward high density.
func randomTask(r *rand.Rand) *task.DAGTask {
	nv := 1 + r.Intn(8)
	b := dag.NewBuilder(nv)
	for v := 0; v < nv; v++ {
		b.AddJob(task.Time(1 + r.Intn(6)))
	}
	for u := 0; u < nv; u++ {
		for v := u + 1; v < nv; v++ {
			if r.Float64() < 0.25 {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.MustBuild()
	l := g.LongestChain()
	d := l + task.Time(r.Intn(int(g.Volume())+1))
	return task.MustNew("t", g, d, d+task.Time(r.Intn(30)))
}

func randomSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		sys = append(sys, randomTask(r))
	}
	return sys
}

// Servers must satisfy r·E ≥ vol + (r−1)·len with E ≤ w — and E ≤ w must
// hold from minimality of r alone, without any budget clamping.
func TestServersServiceCondition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	highs := 0
	for trial := 0; trial < 2000; trial++ {
		tk := randomTask(r)
		if !tk.HighDensity() {
			continue
		}
		highs++
		vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
		rr, e, ok := Servers(tk)
		if !ok {
			if l < w {
				t.Fatalf("Servers failed with slack: vol=%d len=%d w=%d", vol, l, w)
			}
			continue
		}
		if rr < 1 {
			t.Fatalf("server count %d < 1", rr)
		}
		if e < 1 || e > w {
			t.Fatalf("budget %d outside [1, %d] (vol=%d len=%d r=%d)", e, w, vol, l, rr)
		}
		if task.Time(rr)*e < vol+task.Time(rr-1)*l {
			t.Fatalf("service condition violated: %d·%d < %d + %d·%d", rr, e, vol, rr-1, l)
		}
		// Minimality: one server fewer cannot satisfy the condition with any
		// budget ≤ w.
		if rr > 1 && task.Time(rr-1)*w >= vol+task.Time(rr-2)*l {
			t.Fatalf("r=%d not minimal: r−1 servers of full budget suffice (vol=%d len=%d w=%d)", rr, vol, l, w)
		}
	}
	if highs == 0 {
		t.Fatal("test vacuous: no high-density draws")
	}
}

// Every accepted allocation passes the policy-aware verifier; reservation-
// shape allocations grant no dedicated processors and are rejected by the
// strict verifier once the tag is stripped.
func TestScheduleVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	splits := 0
	for trial := 0; trial < 300; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		alloc, err := core.Schedule(sys, m, core.Options{Policy: core.PolicyReservation})
		if err != nil {
			continue
		}
		if err := core.Verify(sys, m, alloc); err != nil {
			t.Fatalf("trial %d: accepted allocation fails Verify: %v", trial, err)
		}
		if alloc.Policy != core.PolicyReservation {
			continue // fallback path
		}
		splits++
		if len(alloc.High) != 0 {
			t.Fatalf("trial %d: reservation allocation grants dedicated processors", trial)
		}
		if len(alloc.SharedProcs) != m {
			t.Fatalf("trial %d: reservation shape must share all %d processors, got %d", trial, m, len(alloc.SharedProcs))
		}
		if len(alloc.Servers) > 0 {
			stripped := *alloc
			stripped.Policy = ""
			if core.Verify(sys, m, &stripped) == nil {
				t.Fatalf("trial %d: strict verifier accepted a reservation allocation", trial)
			}
		}
	}
	if splits == 0 {
		t.Fatal("test vacuous: no reservation-shape acceptances")
	}
}

// Acceptance dominance over strict FEDCONS via the fallback.
func TestDominatesFedcons(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	hits := 0
	for trial := 0; trial < 300; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		if !core.Schedulable(sys, m, core.Options{}) {
			continue
		}
		if !core.Schedulable(sys, m, core.Options{Policy: core.PolicyReservation}) {
			t.Fatalf("trial %d: fedcons accepts but reservation rejects", trial)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("test vacuous: no fedcons acceptances")
	}
}

// A critical path filling the window admits no reservation system; the
// fallback must return the strict shape.
func TestFallbackWhenNoServersExist(t *testing.T) {
	b := dag.NewBuilder(2)
	b.AddJob(5)
	b.AddJob(5)
	g := b.MustBuild()
	tk := task.MustNew("rigid", g, 5, 5)
	if _, _, ok := Servers(tk); ok {
		t.Fatal("Servers should be infeasible when len == window < vol")
	}
	sys := task.System{tk}
	alloc, err := core.Schedule(sys, 2, core.Options{Policy: core.PolicyReservation})
	if err != nil {
		t.Fatalf("fallback did not engage: %v", err)
	}
	if alloc.Policy != "" || len(alloc.Servers) != 0 {
		t.Fatalf("fallback allocation not strict-shaped: policy=%q servers=%d", alloc.Policy, len(alloc.Servers))
	}
	if err := core.Verify(sys, 2, alloc); err != nil {
		t.Fatalf("fallback allocation fails Verify: %v", err)
	}
	_, err = core.Schedule(sys, 1, core.Options{Policy: core.PolicyReservation})
	var fe *core.FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("double failure: want *core.FailureError, got %T: %v", err, err)
	}
}

// Dropping a server or shrinking its budget must break verification.
func TestVerifyRejectsMutatedServers(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	checked := 0
	for trial := 0; trial < 400 && checked < 25; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		alloc, err := core.Schedule(sys, m, core.Options{Policy: core.PolicyReservation})
		if err != nil || alloc.Policy != core.PolicyReservation || len(alloc.Servers) == 0 {
			continue
		}
		checked++
		// Dropping any single server breaks either the service inequality or
		// the partition coverage.
		for j := range alloc.Servers {
			mut := *alloc
			mut.Servers = append([]core.ServerSpec(nil), alloc.Servers[:j]...)
			mut.Servers = append(mut.Servers, alloc.Servers[j+1:]...)
			if err := core.Verify(sys, m, &mut); err == nil {
				t.Fatalf("trial %d: dropped server %d still verifies", trial, j)
			}
		}
		// Zero and over-window budgets are out of range.
		mut := *alloc
		mut.Servers = append([]core.ServerSpec(nil), alloc.Servers...)
		mut.Servers[0].Budget = 0
		if err := core.Verify(sys, m, &mut); err == nil {
			t.Fatalf("trial %d: zero budget still verifies", trial)
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous: no reservation allocations")
	}
}

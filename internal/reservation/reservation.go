// Package reservation implements reservation-based federated scheduling
// (Ueter, von der Brüggen, Chen, Li, Agrawal: "Reservation-Based Federated
// Scheduling for Parallel Real-Time Tasks", arXiv 1712.05040) as a pluggable
// core.Policy.
//
// Where strict federation dedicates whole processors to each high-density
// task and semi-federated scheduling splits off one fractional share, this
// policy abstracts every high-density task τ_i into r_i identical reservation
// servers of budget E_i released with each dag-job and sharing its window
// w_i = min(D_i, T_i) as relative deadline. No processor is dedicated at all:
// the servers are ordinary constrained-deadline sporadic tasks that the
// existing Baruah–Fisher partitioner places on the full platform alongside
// the low-density tasks, which makes the policy compose with any partitioned
// schedulability machinery.
//
// Sizing (the equal-budget instantiation of Ueter et al.'s service condition;
// see DESIGN.md §13): work-conserving execution of the dag-job inside its
// reservations meets the deadline whenever
//
//	r_i·E_i ≥ vol_i + (r_i − 1)·len_i,  with E_i ≤ w_i.
//
// The minimal feasible count is r_i = ⌈(vol_i − len_i)/(w_i − len_i)⌉ (and
// r_i = 1 when vol_i ≤ w_i), with budget E_i = ⌈(vol_i + (r_i−1)·len_i)/r_i⌉.
// Minimality of r_i guarantees E_i ≤ w_i: r_i·(w_i − len_i) ≥ vol_i − len_i
// rearranges to (vol_i + (r_i−1)·len_i)/r_i ≤ w_i, and w_i is an integer, so
// the ceiling cannot exceed it. core.Verify re-checks the service inequality
// and every budget bound independently.
//
// Like semifed, the policy falls back to strict FEDCONS whenever the
// reservation attempt fails (a critical path filling the window, or the
// partitioner rejecting the server set), so its acceptance dominates the
// paper's algorithm pointwise.
package reservation

import (
	"errors"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

func init() { core.RegisterPolicy(policy{}) }

// policy implements core.Policy.
type policy struct{}

// Name returns the registry key, "reservation".
func (policy) Name() string { return core.PolicyReservation }

// Schedule tries the reservation-server shape first and falls back to strict
// FEDCONS on any failure. Only the strict path's error surfaces when both
// fail.
func (policy) Schedule(sys task.System, m int, opt core.Options, fallback core.ScheduleFunc) (*core.Allocation, error) {
	if err := core.ValidateInput(sys, m, opt); err != nil {
		return nil, err
	}
	if alloc, err := schedule(sys, m, opt); err == nil {
		return alloc, nil
	}
	fopt := opt
	fopt.Policy = ""
	return fallback(sys, m, fopt)
}

// Servers sizes the reservation system of one high-density task: r equal
// servers of budget E satisfying r·E ≥ vol + (r−1)·len with E ≤ w. ok is
// false when no reservation system exists (len ≥ w with vol > w).
func Servers(tk *task.DAGTask) (r int, budget task.Time, ok bool) {
	vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
	if vol <= w {
		// δ = 1 exactly: a single full-window server suffices.
		return 1, w, true
	}
	if l >= w {
		return 0, 0, false
	}
	rr := (vol - l + (w - l) - 1) / (w - l) // ⌈(vol−len)/(w−len)⌉ ≥ 2 here
	budget = (vol + (rr-1)*l + rr - 1) / rr // ⌈(vol+(r−1)·len)/r⌉
	if budget > w {
		// Unreachable by minimality of rr (see package comment); kept as a
		// defensive guard so a future sizing change cannot emit an
		// unverifiable allocation.
		return 0, 0, false
	}
	return int(rr), budget, true
}

// schedule is the reservation-shape attempt: size every high-density task
// into servers, then partition servers plus low-density tasks over the whole
// platform. No dedicated processors are granted (High stays empty).
func schedule(sys task.System, m int, opt core.Options) (*core.Allocation, error) {
	alloc := &core.Allocation{M: m, Policy: core.PolicyReservation}

	root := opt.Trace.Start("reservation")
	if root != nil {
		root.Int("m", int64(m)).Int("tasks", int64(len(sys)))
	}

	phase1 := root.Child("phase1")
	for i, tk := range sys {
		var tsp *obs.Span
		if phase1 != nil {
			vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
			tsp = phase1.Child("task").Str("task", tk.Name).Int("index", int64(i)).
				Int("vol", int64(vol)).Int("len", int64(l)).Int("window", int64(w)).
				Float("density", float64(vol)/float64(w)).Bool("high", tk.HighDensity())
		}
		if !tk.HighDensity() {
			tsp.Finish()
			alloc.LowIndices = append(alloc.LowIndices, i)
			continue
		}
		r, budget, ok := Servers(tk)
		if !ok {
			tsp.Bool("failed", true).Finish()
			phase1.Finish()
			root.Bool("schedulable", false).Str("phase", core.PhaseHighDensity.String()).Finish()
			return nil, &core.FailureError{Phase: core.PhaseHighDensity, TaskIndex: i, TaskName: tk.Name, Remaining: m}
		}
		tsp.Int("servers", int64(r)).Int("budget", int64(budget)).Finish()
		for j := 0; j < r; j++ {
			alloc.Servers = append(alloc.Servers, core.ServerSpec{TaskIndex: i, Budget: budget})
		}
	}
	phase1.Int("dedicated", 0).Int("remaining", int64(m)).Finish()

	for p := 0; p < m; p++ {
		alloc.SharedProcs = append(alloc.SharedProcs, p)
	}
	combined, err := core.PartitionSystem(sys, alloc)
	if err != nil {
		root.Bool("schedulable", false).Finish()
		return nil, err
	}
	phase2 := root.Child("phase2")
	if phase2 != nil {
		phase2.Int("procs", int64(m)).Int("servers", int64(len(alloc.Servers))).
			Int("low", int64(len(alloc.LowIndices))).
			Str("heuristic", opt.Partition.Heuristic.String()).
			Str("test", opt.Partition.Test.String())
	}
	popt := opt.Partition
	popt.Trace = phase2
	res, err := partition.Partition(combined, m, popt)
	if err != nil {
		fe := &core.FailureError{Phase: core.PhaseLowDensity, Remaining: m, Err: err}
		var pf *partition.FailureError
		if errors.As(err, &pf) {
			fe.TaskIndex = inputIndex(alloc, pf.TaskIndex)
			fe.TaskName = pf.TaskName
		}
		phase2.Bool("failed", true).Finish()
		root.Bool("schedulable", false).Str("phase", core.PhaseLowDensity.String()).Finish()
		return nil, fe
	}
	phase2.Finish()
	root.Bool("schedulable", true).Finish()
	alloc.Low = res
	return alloc, nil
}

// inputIndex maps a combined-partition position (servers first, then low
// tasks) back to the input-system index for failure reporting.
func inputIndex(a *core.Allocation, pos int) int {
	if pos < len(a.Servers) {
		return a.Servers[pos].TaskIndex
	}
	if rest := pos - len(a.Servers); rest < len(a.LowIndices) {
		return a.LowIndices[rest]
	}
	return -1
}

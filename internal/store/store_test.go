package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/task"
)

var updateGolden = flag.Bool("update", false, "rewrite the snapshot golden")

func hashOf(tk *task.DAGTask) string { return core.TaskHash(tk).String() }

func openStore(t *testing.T, dir string, every int) (*Store, *Recovery) {
	t.Helper()
	st, rec, err := Open(dir, every)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rec
}

func TestStoreRecoversLoggedMutations(t *testing.T) {
	dir := t.TempDir()
	a, b, c := testTask(t, "a"), testTask(t, "b"), testTask(t, "c")

	st, rec := openStore(t, dir, 0)
	if len(rec.Tasks) != 0 || rec.Seq != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	if err := st.LogAdmit([]*task.DAGTask{a}, []string{hashOf(a)}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAdmit([]*task.DAGTask{b, c}, []string{hashOf(b), hashOf(c)}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogRemove("b", "", ""); err != nil {
		t.Fatal(err)
	}
	st.Close() // crash-equivalent: no snapshot written

	_, rec = openStore(t, dir, 0)
	if rec.Seq != 3 {
		t.Fatalf("recovered seq %d, want 3", rec.Seq)
	}
	names := []string{}
	for _, tk := range rec.Tasks {
		names = append(names, tk.Name)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("recovered tasks %v, want [a c] in installation order", names)
	}
	if rec.Hashes[0] != hashOf(a) || rec.Hashes[1] != hashOf(c) {
		t.Fatalf("recovered hashes misaligned: %v", rec.Hashes)
	}
	if rec.M != 0 {
		t.Fatalf("no snapshot yet, M should be 0, got %d", rec.M)
	}
}

func TestStoreSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, 2)
	var sys task.System
	var keys []string
	for _, name := range []string{"a", "b", "c"} {
		tk := testTask(t, name)
		sys = append(sys, tk)
		keys = append(keys, hashOf(tk))
		if err := st.LogAdmit([]*task.DAGTask{tk}, []string{hashOf(tk)}, "", ""); err != nil {
			t.Fatal(err)
		}
		if _, err := st.MaybeSnapshot(sys, keys, 8, ""); err != nil {
			t.Fatal(err)
		}
	}
	// every=2: the second mutation snapshotted and truncated the WAL, the
	// third sits in the WAL on top of it.
	snap, err := readSnapshot(dir)
	if err != nil || snap == nil {
		t.Fatalf("no snapshot after 3 mutations at every=2: %v", err)
	}
	if snap.Seq != 2 || len(snap.Tasks) != 2 || snap.M != 8 {
		t.Fatalf("snapshot %+v, want seq=2 with 2 tasks on m=8", snap)
	}
	_, recs, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("wal after snapshot: %d records, want just seq 3", len(recs))
	}
	st.Close()

	_, rec := openStore(t, dir, 2)
	if rec.Seq != 3 || len(rec.Tasks) != 3 || rec.M != 8 {
		t.Fatalf("snapshot+wal recovery: seq=%d tasks=%d m=%d", rec.Seq, len(rec.Tasks), rec.M)
	}
	for i, name := range []string{"a", "b", "c"} {
		if rec.Tasks[i].Name != name {
			t.Fatalf("task %d = %q, want %q", i, rec.Tasks[i].Name, name)
		}
	}
}

// TestStoreSnapshotCrashBeforeWALReset covers the one crash window the
// snapshot protocol leaves: snapshot installed, WAL not yet truncated. The
// stale records at or before the snapshot's seq must be skipped, not
// reapplied.
func TestStoreSnapshotCrashBeforeWALReset(t *testing.T) {
	dir := t.TempDir()
	a, b := testTask(t, "a"), testTask(t, "b")
	st, _ := openStore(t, dir, 1000) // never auto-snapshot
	if err := st.LogAdmit([]*task.DAGTask{a}, []string{hashOf(a)}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAdmit([]*task.DAGTask{b}, []string{hashOf(b)}, "", ""); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand without resetting the WAL — exactly the
	// state a crash between writeSnapshot and wal.Reset leaves behind.
	snap := &Snapshot{Format: snapshotFormat, Seq: 2, M: 4,
		Tasks: task.System{a, b}, CacheKeys: []string{hashOf(a), hashOf(b)}}
	if err := writeSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	st.Close()

	_, rec := openStore(t, dir, 0)
	if rec.Seq != 2 || len(rec.Tasks) != 2 {
		t.Fatalf("recovery reapplied stale wal records: seq=%d tasks=%d", rec.Seq, len(rec.Tasks))
	}
}

func TestReplayRejectsInconsistentLog(t *testing.T) {
	a := testTask(t, "a")
	cases := []struct {
		name string
		snap *Snapshot
		recs []Record
	}{
		{"gap", nil, []Record{{Seq: 2, Op: OpAdmit, Tasks: []*task.DAGTask{a}, Hashes: []string{"h"}}}},
		{"dup-admit", nil, []Record{
			{Seq: 1, Op: OpAdmit, Tasks: []*task.DAGTask{a}, Hashes: []string{"h"}},
			{Seq: 2, Op: OpAdmit, Tasks: []*task.DAGTask{testTask(t, "a")}, Hashes: []string{"h"}},
		}},
		{"remove-unknown", nil, []Record{{Seq: 1, Op: OpRemove, Name: "ghost"}}},
		{"bad-op", nil, []Record{{Seq: 1, Op: "compact"}}},
		{"hash-misalign", nil, []Record{{Seq: 1, Op: OpAdmit, Tasks: []*task.DAGTask{a}}}},
	}
	for _, tc := range cases {
		if _, err := replay(tc.snap, tc.recs); err == nil {
			t.Errorf("%s: replay accepted an inconsistent log", tc.name)
		}
	}
}

// TestSnapshotGolden pins the snapshot file format byte for byte. If this
// breaks, recovery of existing -wal-dir state breaks: bump snapshotFormat
// and add migration instead of editing the golden.
func TestSnapshotGolden(t *testing.T) {
	ex := testTask(t, "example1")
	two := task.MustNew("pair", dag.Independent(3, 4), 6, 9)
	snap := &Snapshot{
		Format:    snapshotFormat,
		Seq:       7,
		M:         8,
		Tasks:     task.System{ex, two},
		CacheKeys: []string{hashOf(ex), hashOf(two)},
	}
	got, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot encoding drifted from the on-disk format:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	back, err := DecodeSnapshot(want)
	if err != nil {
		t.Fatalf("golden does not decode: %v", err)
	}
	if back.Seq != 7 || back.M != 8 || len(back.Tasks) != 2 || back.Tasks[1].Name != "pair" {
		t.Fatalf("golden decoded to %+v", back)
	}
}

func TestDecodeSnapshotRejects(t *testing.T) {
	cases := map[string]string{
		"not-json":     "{",
		"bad-format":   `{"format":99,"seq":0,"m":4,"tasks":[],"cacheKeys":[]}`,
		"bad-m":        `{"format":1,"seq":0,"m":0,"tasks":[],"cacheKeys":[]}`,
		"key-mismatch": `{"format":1,"seq":0,"m":4,"tasks":[],"cacheKeys":["x"]}`,
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

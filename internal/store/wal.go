// Package store gives a fedschedd shard durable state: an append-only
// write-ahead log of installed admission/removal records plus periodic
// atomic snapshots of the installed task system. A shard restarted with the
// same directory replays snapshot+WAL into its exact pre-crash system, and
// the logged content hashes double as an end-to-end integrity check on the
// recovered tasks (core.TaskHash is recomputed and compared after replay).
//
// Durability protocol: a record is appended and fsynced *before* the new
// state is installed or acknowledged, so every state a client ever observed
// is recoverable. Clean shutdown deliberately writes nothing extra — closing
// a store is indistinguishable from crashing, which keeps the recovery path
// the only path and therefore permanently exercised.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"fedsched/internal/task"
)

// Record ops. A batch admission is a single OpAdmit record carrying every
// task, so the log can never half-apply an atomic batch.
const (
	OpAdmit  = "admit"
	OpRemove = "remove"
)

// Record is one logged mutation of the installed system.
type Record struct {
	// Seq is the record's position in the shard's mutation history; records
	// in a WAL are strictly consecutive.
	Seq uint64 `json:"seq"`
	// Op is OpAdmit or OpRemove.
	Op string `json:"op"`
	// Name is the removed task's name (OpRemove only).
	Name string `json:"name,omitempty"`
	// Tasks are the admitted tasks (OpAdmit; one for a single admit, all of
	// them for an atomic batch).
	Tasks []*task.DAGTask `json:"tasks,omitempty"`
	// Hashes are the content hashes (core.TaskHash hex) of Tasks, index
	// aligned. They prewarm-check the Phase-1 cache on recovery: the
	// recovered tasks must hash to exactly these values.
	Hashes []string `json:"hashes,omitempty"`
	// Trace is the decision trace ID of the mutation that produced this
	// record, linking the durable log to the flight recorder and any audit
	// stream. Optional: records written before the field existed decode with
	// Trace empty, and replay never depends on it.
	Trace string `json:"trace,omitempty"`
	// Cluster is the logical cluster the mutation addressed ("" for the
	// default cluster). Optional, like Trace.
	Cluster string `json:"cluster,omitempty"`
}

// walMagic is the 8-byte file header; a mismatch means the file was never a
// fedschedd WAL and is refused rather than clobbered.
var walMagic = []byte("FEDWAL01")

// Wire format after the header, per record:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload JSON
//
// maxRecordLen bounds a record (matching the daemon's 16 MiB batch body cap)
// so a corrupt length prefix cannot drive a giant allocation.
const (
	recordHeaderLen = 8
	maxRecordLen    = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord renders rec in the WAL wire format.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record %d: %w", rec.Seq, err)
	}
	if len(payload) > maxRecordLen {
		return nil, fmt.Errorf("store: record %d is %d bytes, over the %d limit", rec.Seq, len(payload), maxRecordLen)
	}
	buf := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[recordHeaderLen:], payload)
	return buf, nil
}

// DecodeRecord reads one record from r. io.EOF means a clean end;
// io.ErrUnexpectedEOF or a CRC/length violation means a torn or corrupt
// tail — the caller stops at the last valid record.
func DecodeRecord(r io.Reader) (Record, error) {
	var rec Record
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxRecordLen {
		return rec, io.ErrUnexpectedEOF
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return rec, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return rec, io.ErrUnexpectedEOF
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		// The CRC passed, so the bytes are exactly what was written: this is
		// an encoder incompatibility, not a torn write, and hiding it would
		// silently drop acknowledged state.
		return rec, fmt.Errorf("store: record payload is valid but undecodable: %w", err)
	}
	return rec, nil
}

// WAL is an append-only record log over one file. It is not safe for
// concurrent use; in the daemon every call comes from one shard's
// single-writer loop.
type WAL struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

// OpenWAL opens (creating if absent) the log at path and returns every
// complete record. A torn tail — from a crash mid-append — is detected by the
// length/CRC framing, truncated away, and the valid prefix returned; the next
// append then continues from the last durable record.
func OpenWAL(path string) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening wal: %w", err)
	}
	recs, end, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop any torn tail so the next append starts on a record boundary.
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, w: bufio.NewWriter(f), path: path}
	if end == 0 {
		if _, err := w.w.Write(walMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := w.Commit(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return w, recs, nil
}

// scanWAL reads the valid record prefix and reports the offset where it ends.
func scanWAL(f *os.File) ([]Record, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if info.Size() < int64(len(walMagic)) {
		// Empty or torn before the header finished: treat as a fresh log.
		return nil, 0, nil
	}
	r := bufio.NewReader(io.NewSectionReader(f, 0, info.Size()))
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, 0, nil
	}
	if !bytes.Equal(magic, walMagic) {
		return nil, 0, fmt.Errorf("store: %s is not a fedschedd WAL (bad magic %q)", f.Name(), magic)
	}
	var recs []Record
	end := int64(len(walMagic))
	for {
		var hdr [recordHeaderLen]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, end, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == 0 || n > maxRecordLen {
			return recs, end, nil // corrupt length prefix: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, end, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return recs, end, nil // bit rot or torn write: stop at last valid record
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// CRC-valid but undecodable: an encoder incompatibility, not a
			// torn write; hiding it would silently drop acknowledged state.
			return nil, 0, fmt.Errorf("store: wal record at offset %d is valid but undecodable: %w", end, err)
		}
		end += int64(recordHeaderLen) + int64(n)
		recs = append(recs, rec)
	}
}

// ReadWAL reads the valid record prefix of the WAL at path without opening
// it for appends — unlike OpenWAL it never truncates a torn tail, so it is
// safe to point at a live shard's log. It returns the records and the number
// of trailing bytes after the last valid record (0 = clean tail). A file
// that was never a fedschedd WAL (bad magic) is refused.
func ReadWAL(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening wal: %w", err)
	}
	defer f.Close()
	recs, end, err := scanWAL(f)
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	return recs, info.Size() - end, nil
}

// Append buffers rec; it is not durable until Commit returns.
func (w *WAL) Append(rec Record) error {
	buf, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("store: appending wal record %d: %w", rec.Seq, err)
	}
	return nil
}

// Commit makes every buffered append durable: flush, then fsync. Batched
// mutations append many records and pay one Commit.
func (w *WAL) Commit() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsyncing wal: %w", err)
	}
	return nil
}

// Reset discards every record, leaving just the header — called after a
// snapshot has made the log's contents redundant. The truncation is synced
// before returning.
func (w *WAL) Reset() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: resetting wal: %w", err)
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	return w.f.Sync()
}

// Close flushes and closes the file. No final snapshot or marker is written:
// see the package comment — close must be crash-equivalent.
func (w *WAL) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

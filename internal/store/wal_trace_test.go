package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"fedsched/internal/task"
)

// TestWALTraceRoundTrip checks that trace IDs and cluster names written
// through LogAdmit/LogRemove survive a reopen — the property -wal-dump and
// the postmortem workflow depend on.
func TestWALTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, b := testTask(t, "a"), testTask(t, "b")
	st, _ := openStore(t, dir, 0)
	if err := st.LogAdmit([]*task.DAGTask{a}, []string{hashOf(a)}, "s0-000001", "tenant-a"); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAdmit([]*task.DAGTask{b}, []string{hashOf(b)}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.LogRemove("a", "s0-000002", "tenant-a"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	wal, recs, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if len(recs) != 3 {
		t.Fatalf("reopened %d records, want 3", len(recs))
	}
	if recs[0].Trace != "s0-000001" || recs[0].Cluster != "tenant-a" {
		t.Fatalf("record 1 trace=%q cluster=%q", recs[0].Trace, recs[0].Cluster)
	}
	if recs[1].Trace != "" || recs[1].Cluster != "" {
		t.Fatalf("untraced record carries trace=%q cluster=%q", recs[1].Trace, recs[1].Cluster)
	}
	if recs[2].Op != OpRemove || recs[2].Trace != "s0-000002" {
		t.Fatalf("remove record %+v", recs[2])
	}

	// And the recovered state is unaffected by the annotations.
	_, rec := openStore(t, dir, 0)
	if rec.Seq != 3 || len(rec.Tasks) != 1 || rec.Tasks[0].Name != "b" {
		t.Fatalf("recovery with traced records: seq=%d tasks=%v", rec.Seq, rec.Tasks)
	}
}

// TestWALReplaysPreTraceFormat writes a WAL whose record payloads predate the
// trace/cluster fields — framed by hand, byte for byte what the old encoder
// produced — and checks it still opens and replays. The trace-id extension
// must stay a pure addition to the FEDWAL01 framing.
func TestWALReplaysPreTraceFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	payloads := []string{
		`{"seq":1,"op":"admit","tasks":[` + taskJSON(t, "a") + `],"hashes":["` + hashOf(testTask(t, "a")) + `"]}`,
		`{"seq":2,"op":"remove","name":"a"}`,
	}
	var raw []byte
	raw = append(raw, walMagic...)
	for _, p := range payloads {
		var hdr [recordHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum([]byte(p), crcTable))
		raw = append(raw, hdr[:]...)
		raw = append(raw, p...)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openStore(t, dir, 0)
	if rec.Seq != 2 || len(rec.Tasks) != 0 {
		t.Fatalf("pre-trace WAL replayed to seq=%d tasks=%d, want seq=2 tasks=0", rec.Seq, len(rec.Tasks))
	}
}

// taskJSON renders one task the way the WAL payload embeds it.
func taskJSON(t *testing.T, name string) string {
	t.Helper()
	rec := Record{Seq: 1, Op: OpAdmit, Tasks: []*task.DAGTask{testTask(t, name)}, Hashes: []string{"x"}}
	buf, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	payload := string(buf[recordHeaderLen:])
	// Strip down to just the task object between "tasks":[ and ].
	const open = `"tasks":[`
	i := indexOf(payload, open)
	j := indexOf(payload[i+len(open):], `],"hashes"`)
	return payload[i+len(open) : i+len(open)+j]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"fedsched/internal/task"
)

// DefaultSnapshotEvery is the default number of logged mutations between
// snapshots (and WAL truncations).
const DefaultSnapshotEvery = 256

// Store is one shard's durable state: a WAL of installed mutations plus a
// periodic snapshot. Mutations are not safe for concurrent use — every call
// comes from the owning shard's single-writer loop; Seq alone may be read
// concurrently (the metrics endpoint samples it).
type Store struct {
	dir       string
	wal       *WAL
	seq       atomic.Uint64 // last logged mutation
	every     int           // mutations between snapshots
	sinceSnap int
}

// Recovery is the state reconstructed from snapshot+WAL at Open: the
// installed system in installation order, the logged content hash of each
// task (index aligned), the platform size it was admitted against (0 when
// nothing was ever snapshotted), and the last mutation sequence number.
type Recovery struct {
	Tasks  task.System
	Hashes []string
	M      int
	Policy string // admission policy recorded in the snapshot ("" = fedcons)
	Seq    uint64
}

// Open loads (creating if needed) the shard store in dir and replays
// snapshot+WAL into a Recovery. snapshotEvery ≤ 0 selects
// DefaultSnapshotEvery.
func Open(dir string, snapshotEvery int) (*Store, *Recovery, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	snap, err := readSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	wal, recs, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, nil, err
	}
	rec, err := replay(snap, recs)
	if err != nil {
		wal.Close()
		return nil, nil, err
	}
	st := &Store{dir: dir, wal: wal, every: snapshotEvery}
	st.seq.Store(rec.Seq)
	return st, rec, nil
}

// replay folds WAL records on top of the snapshot. Records at or before the
// snapshot's sequence are skipped (a crash between snapshot install and WAL
// reset leaves such records behind); the rest must be consecutive.
func replay(snap *Snapshot, recs []Record) (*Recovery, error) {
	rec := &Recovery{}
	if snap != nil {
		rec.Tasks = snap.Tasks.Clone()
		rec.Hashes = append([]string(nil), snap.CacheKeys...)
		rec.M = snap.M
		rec.Policy = snap.Policy
		rec.Seq = snap.Seq
	}
	byName := make(map[string]int, len(rec.Tasks))
	for i, tk := range rec.Tasks {
		byName[tk.Name] = i
	}
	for _, r := range recs {
		if r.Seq <= rec.Seq {
			continue
		}
		if r.Seq != rec.Seq+1 {
			return nil, fmt.Errorf("store: wal gap: record %d follows %d", r.Seq, rec.Seq)
		}
		switch r.Op {
		case OpAdmit:
			if len(r.Hashes) != len(r.Tasks) {
				return nil, fmt.Errorf("store: wal record %d has %d tasks but %d hashes", r.Seq, len(r.Tasks), len(r.Hashes))
			}
			for i, tk := range r.Tasks {
				if tk == nil || tk.Name == "" {
					return nil, fmt.Errorf("store: wal record %d admits an unnamed task", r.Seq)
				}
				if _, dup := byName[tk.Name]; dup {
					return nil, fmt.Errorf("store: wal record %d re-admits installed task %q", r.Seq, tk.Name)
				}
				byName[tk.Name] = len(rec.Tasks)
				rec.Tasks = append(rec.Tasks, tk)
				rec.Hashes = append(rec.Hashes, r.Hashes[i])
			}
		case OpRemove:
			i, ok := byName[r.Name]
			if !ok {
				return nil, fmt.Errorf("store: wal record %d removes unknown task %q", r.Seq, r.Name)
			}
			rec.Tasks = append(rec.Tasks[:i], rec.Tasks[i+1:]...)
			rec.Hashes = append(rec.Hashes[:i], rec.Hashes[i+1:]...)
			delete(byName, r.Name)
			for name, j := range byName {
				if j > i {
					byName[name] = j - 1
				}
			}
		default:
			return nil, fmt.Errorf("store: wal record %d has unknown op %q", r.Seq, r.Op)
		}
		rec.Seq = r.Seq
	}
	return rec, nil
}

// LogAdmit makes an admission (single or atomic batch) durable: one record,
// one fsync. hashes are the content hashes of tks, index aligned. trace and
// cluster annotate the record for post-hoc forensics and may be empty.
func (s *Store) LogAdmit(tks []*task.DAGTask, hashes []string, trace, cluster string) error {
	if len(tks) != len(hashes) {
		return fmt.Errorf("store: %d tasks with %d hashes", len(tks), len(hashes))
	}
	return s.log(Record{Seq: s.seq.Load() + 1, Op: OpAdmit, Tasks: tks, Hashes: hashes, Trace: trace, Cluster: cluster})
}

// LogRemove makes a removal durable.
func (s *Store) LogRemove(name, trace, cluster string) error {
	return s.log(Record{Seq: s.seq.Load() + 1, Op: OpRemove, Name: name, Trace: trace, Cluster: cluster})
}

func (s *Store) log(rec Record) error {
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	if err := s.wal.Commit(); err != nil {
		return err
	}
	s.seq.Store(rec.Seq)
	s.sinceSnap++
	return nil
}

// MaybeSnapshot checkpoints the installed system once enough mutations have
// accumulated, then truncates the WAL. Called after a mutation is installed;
// sys/keys must be the state including that mutation. Reports whether a
// snapshot was written.
func (s *Store) MaybeSnapshot(sys task.System, keys []string, m int, policy string) (bool, error) {
	if s.sinceSnap < s.every {
		return false, nil
	}
	return true, s.Snapshot(sys, keys, m, policy)
}

// Snapshot unconditionally checkpoints the installed system and truncates
// the WAL.
func (s *Store) Snapshot(sys task.System, keys []string, m int, policy string) error {
	snap := &Snapshot{Format: snapshotFormat, Seq: s.seq.Load(), M: m, Policy: policy, Tasks: sys, CacheKeys: keys}
	if err := writeSnapshot(s.dir, snap); err != nil {
		return err
	}
	if err := s.wal.Reset(); err != nil {
		return err
	}
	s.sinceSnap = 0
	return nil
}

// Seq returns the last logged mutation sequence number. Safe to call
// concurrently with mutations.
func (s *Store) Seq() uint64 { return s.seq.Load() }

// Close closes the WAL. Deliberately no final snapshot: closing must remain
// crash-equivalent so the replay path is the only recovery path.
func (s *Store) Close() error { return s.wal.Close() }

package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"fedsched/internal/task"
)

// snapshotFormat versions the on-disk snapshot encoding.
const snapshotFormat = 1

// snapshotFile is the snapshot's basename inside a shard directory.
const snapshotFile = "snapshot.json"

// Snapshot is the periodic checkpoint of a shard's installed system. It
// makes the WAL truncatable: recovery = snapshot + every WAL record with a
// later sequence number.
type Snapshot struct {
	// Format is snapshotFormat; an unknown value is refused on read.
	Format int `json:"format"`
	// Seq is the last mutation folded into this snapshot; WAL records with
	// Seq beyond it are replayed on top.
	Seq uint64 `json:"seq"`
	// M is the platform size the system was admitted against. A daemon
	// restarted with a different -m is refused: the recovered allocation
	// would silently differ from every verdict the shard ever served.
	M int `json:"m"`
	// Policy is the admission policy the system was admitted under ("" =
	// strict fedcons). A daemon restarted with a different -policy is refused
	// for the same reason as an M mismatch. omitempty keeps fedcons snapshots
	// byte-identical to the pre-policy format, so old snapshots read as "".
	Policy string `json:"policy,omitempty"`
	// Tasks is the installed system in installation order.
	Tasks task.System `json:"tasks"`
	// CacheKeys are the content hashes (core.TaskHash hex) of Tasks, index
	// aligned: the analysis-cache keys to prewarm — and integrity-check —
	// on recovery.
	CacheKeys []string `json:"cacheKeys"`
}

// EncodeSnapshot renders snap as indented JSON with a trailing newline — the
// exact bytes written to disk, pinned by a golden-file test.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	if len(snap.CacheKeys) != len(snap.Tasks) {
		return nil, fmt.Errorf("store: snapshot has %d tasks but %d cache keys", len(snap.Tasks), len(snap.CacheKeys))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encoding snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeSnapshot parses and validates snapshot bytes.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("store: unsupported snapshot format %d (want %d)", snap.Format, snapshotFormat)
	}
	if snap.M < 1 {
		return nil, fmt.Errorf("store: snapshot platform size must be ≥ 1, got %d", snap.M)
	}
	if len(snap.CacheKeys) != len(snap.Tasks) {
		return nil, fmt.Errorf("store: snapshot has %d tasks but %d cache keys", len(snap.Tasks), len(snap.CacheKeys))
	}
	if len(snap.Tasks) > 0 { // the empty system (everything removed) is a legal checkpoint
		if err := snap.Tasks.Validate(); err != nil {
			return nil, fmt.Errorf("store: snapshot tasks: %w", err)
		}
	}
	return &snap, nil
}

// writeSnapshot atomically replaces dir's snapshot: write to a temp file,
// fsync it, rename over the old snapshot, fsync the directory. A crash at
// any point leaves either the old snapshot or the new one, never a torn mix.
func writeSnapshot(dir string, snap *Snapshot) error {
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, snapshotFile+".tmp-")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: fsyncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	return syncDir(dir)
}

// readSnapshot loads dir's snapshot, or (nil, nil) when none exists yet.
func readSnapshot(dir string) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

package store

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"fedsched/internal/task"
)

// FuzzWALRecord fuzzes the WAL framing from both directions. The input is
// interpreted twice:
//
//  1. As a record payload: if it is a decodable Record JSON, the record must
//     survive an encode/decode round trip unchanged.
//  2. As raw log bytes: DecodeRecord must never panic, never allocate
//     unboundedly, and classify the input as a record, a torn tail
//     (ErrUnexpectedEOF/EOF), or a hard corruption error.
func FuzzWALRecord(f *testing.F) {
	seedTask := func(name string) *task.DAGTask {
		// Mirrors dag.Independent(2, 3) with D=4, T=5 in wire form.
		data := []byte(`{"name":"` + name + `","deadline":4,"period":5,"dag":{"vertices":[{"wcet":2},{"wcet":3}],"edges":[]}}`)
		var tk task.DAGTask
		if err := json.Unmarshal(data, &tk); err != nil {
			f.Fatal(err)
		}
		return &tk
	}
	for _, rec := range []Record{
		{Seq: 1, Op: OpAdmit, Tasks: []*task.DAGTask{seedTask("a")}, Hashes: []string{"00ff"}},
		{Seq: 2, Op: OpRemove, Name: "a"},
		{Seq: 3, Op: OpAdmit, Tasks: []*task.DAGTask{seedTask("x"), seedTask("y")}, Hashes: []string{"1", "2"}},
	} {
		buf, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		payload, _ := json.Marshal(rec)
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data as payload JSON.
		var rec Record
		if err := json.Unmarshal(data, &rec); err == nil && validFuzzRecord(rec) {
			buf, err := EncodeRecord(rec)
			if err == nil {
				got, err := DecodeRecord(bytes.NewReader(buf))
				if err != nil {
					t.Fatalf("round trip of valid record failed: %v", err)
				}
				a, _ := json.Marshal(rec)
				b, _ := json.Marshal(got)
				if !bytes.Equal(a, b) {
					t.Fatalf("round trip changed record:\n%s\nvs\n%s", a, b)
				}
			}
		}
		// Direction 2: data as raw framed bytes — must never panic and a
		// "successful" decode must re-encode to a valid frame.
		if got, err := DecodeRecord(bytes.NewReader(data)); err == nil {
			if _, err := EncodeRecord(got); err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
		} else if err != io.EOF && err != io.ErrUnexpectedEOF && !isCorruptionErr(err) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// validFuzzRecord filters payloads whose JSON round trip is well-defined:
// tasks decoded from JSON are validated on the way in, so a nil entry or
// failed decode never makes it into a real WAL.
func validFuzzRecord(rec Record) bool {
	for _, tk := range rec.Tasks {
		if tk == nil {
			return false
		}
	}
	return true
}

func isCorruptionErr(err error) bool { return err != nil }

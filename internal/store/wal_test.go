package store

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func testTask(t *testing.T, name string) *task.DAGTask {
	t.Helper()
	return task.MustNew(name, dag.Example1(), dag.Example1D, dag.Example1T)
}

func testRecords(t *testing.T) []Record {
	t.Helper()
	return []Record{
		{Seq: 1, Op: OpAdmit, Tasks: []*task.DAGTask{testTask(t, "a")}, Hashes: []string{"aaaa"}},
		{Seq: 2, Op: OpAdmit, Tasks: []*task.DAGTask{testTask(t, "b"), testTask(t, "c")}, Hashes: []string{"bbbb", "cccc"}},
		{Seq: 3, Op: OpRemove, Name: "b"},
	}
}

// sameRecord compares records through their JSON-visible content (task
// pointers differ after a decode round trip).
func sameRecord(a, b Record) bool {
	if a.Seq != b.Seq || a.Op != b.Op || a.Name != b.Name ||
		len(a.Tasks) != len(b.Tasks) || !reflect.DeepEqual(a.Hashes, b.Hashes) {
		return false
	}
	for i := range a.Tasks {
		x, y := a.Tasks[i], b.Tasks[i]
		if x.Name != y.Name || x.D != y.D || x.T != y.T || !x.G.Equal(y.G) {
			return false
		}
	}
	return true
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords(t) {
		buf, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecord(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("decode seq %d: %v", rec.Seq, err)
		}
		if !sameRecord(rec, got) {
			t.Errorf("round trip changed record %d:\n%+v\nvs\n%+v", rec.Seq, rec, got)
		}
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	rec := testRecords(t)[0]
	buf, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the CRC must catch it.
	for _, i := range []int{recordHeaderLen, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, err := DecodeRecord(bytes.NewReader(bad)); err != io.ErrUnexpectedEOF {
			t.Errorf("flipped byte %d: err = %v, want ErrUnexpectedEOF", i, err)
		}
	}
	// A zero or giant length prefix must not drive an allocation.
	for _, n := range []uint32{0, maxRecordLen + 1, 1<<32 - 1} {
		bad := append([]byte(nil), buf...)
		bad[0], bad[1], bad[2], bad[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
		if _, err := DecodeRecord(bytes.NewReader(bad)); err != io.ErrUnexpectedEOF {
			t.Errorf("length %d: err = %v, want ErrUnexpectedEOF", n, err)
		}
	}
}

// writeWAL builds a WAL file holding recs and returns its path and contents.
func writeWAL(t *testing.T, recs []Record) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, got, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh wal returned %d records", len(got))
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestWALReopenReturnsRecords(t *testing.T) {
	recs := testRecords(t)
	path, _ := writeWAL(t, recs)
	w, got, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(got) != len(recs) {
		t.Fatalf("reopen returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !sameRecord(recs[i], got[i]) {
			t.Errorf("record %d changed across reopen", i)
		}
	}
	// Appending after reopen continues the log.
	extra := Record{Seq: 4, Op: OpRemove, Name: "c"}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, got, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)+1 || !sameRecord(got[len(got)-1], extra) {
		t.Fatalf("append after reopen lost data: %d records", len(got))
	}
}

// TestWALTornWriteEveryOffset is the torn-write sweep: the log truncated at
// every possible byte offset must recover cleanly to the longest valid
// record prefix — never an error, never a partial record.
func TestWALTornWriteEveryOffset(t *testing.T) {
	recs := testRecords(t)
	_, full := writeWAL(t, recs)

	// Record boundaries: magic, then each framed record's end offset.
	bounds := []int{len(walMagic)}
	off := len(walMagic)
	for _, rec := range recs {
		buf, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		off += len(buf)
		bounds = append(bounds, off)
	}
	if off != len(full) {
		t.Fatalf("frame accounting is off: %d vs file size %d", off, len(full))
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut at %d: OpenWAL errored: %v", cut, err)
		}
		wantComplete := 0
		for i, b := range bounds[1:] {
			if cut >= b {
				wantComplete = i + 1
			}
		}
		if len(got) != wantComplete {
			w.Close()
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), wantComplete)
		}
		for i := 0; i < wantComplete; i++ {
			if !sameRecord(got[i], recs[i]) {
				t.Errorf("cut at %d: record %d corrupted by recovery", cut, i)
			}
		}
		// Recovery truncated the torn tail: the file must now end exactly at
		// the last valid boundary and accept new appends.
		next := Record{Seq: uint64(wantComplete) + 1, Op: OpRemove, Name: "x"}
		if err := w.Append(next); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		w.Close()
		_, reread, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut at %d: reopen after heal: %v", cut, err)
		}
		if len(reread) != wantComplete+1 {
			t.Fatalf("cut at %d: after heal+append got %d records, want %d", cut, len(reread), wantComplete+1)
		}
		os.Remove(path)
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("PLAINTEXT LOG\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("OpenWAL accepted a non-WAL file; it should refuse rather than clobber")
	}
}

func TestWALReset(t *testing.T) {
	recs := testRecords(t)
	path, _ := writeWAL(t, recs)
	w, got, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	after := Record{Seq: 9, Op: OpRemove, Name: "a"}
	if err := w.Append(after); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, got, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !sameRecord(got[0], after) {
		t.Fatalf("after reset want exactly the new record, got %d", len(got))
	}
}

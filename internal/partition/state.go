package partition

import (
	"fmt"
	"sort"

	"fedsched/internal/task"
)

// State is the live, incremental form of Partition: it retains the
// per-processor assignment sets (and through them each processor's DBF* load
// curve) of a partitioned low-density system, so that admitting or removing
// one task does not re-partition the whole system from scratch.
//
// Correctness model — memoized replay. Partition offers tasks in
// non-decreasing deadline order and probes processors with a pure admission
// test of (processor set, candidate). State keeps the entries in exactly that
// offer order and, on every mutation, replays the batch algorithm over it,
// skipping any probe whose outcome is already known: tasks ordered before the
// insertion/removal point see byte-for-byte the processor sets the batch run
// would build, and a suffix task whose own processor (and every lower-indexed
// processor the batch run would have probed first) is untouched by the
// mutation keeps its placement with zero probes. Probes are only re-run
// against "dirty" processors — those whose set differs from the previous
// run — so the replay commits the identical assignment the batch algorithm
// would compute, for every heuristic and admission test, without any
// monotonicity assumption. The differential matrix, fuzzer and random-walk
// tests in state_test.go pin this equivalence after every operation.
//
// The warm first-fit/DBF* path performs no heap allocations in steady state
// (scratch buffers are retained across operations; see
// TestStateZeroAllocWarmOps). State is not safe for concurrent use: like the
// batch partitioner it belongs to a single writer.
type State struct {
	m   int
	opt Options // Trace forced nil: replay probes are never traced

	// entries holds the live tasks in the batch offer order: non-decreasing
	// deadline, ties broken by input index (Partition's stable sort).
	entries []stateEntry

	// Scratch reused across operations.
	sets    [][]task.Sporadic // per-processor sets rebuilt during replay
	dirty   []bool            // processors whose set differs from last run
	newProc []int             // replayed placement per entry position
}

// stateEntry is one live task: its index in the input (admission) order, its
// sporadic collapse, and the processor it is assigned to.
type stateEntry struct {
	idx  int
	sp   task.Sporadic
	proc int
}

// NewState returns an empty State over m shared processors. opt.Trace is
// ignored — incremental replays are never traced; traced analyses take the
// batch path.
func NewState(m int, opt Options) (*State, error) {
	if m < 0 {
		return nil, fmt.Errorf("partition: negative processor count %d", m)
	}
	opt.Trace = nil
	return &State{m: m, opt: opt, sets: make([][]task.Sporadic, m)}, nil
}

// Rebuild constructs the State mirroring an existing batch partition of sys
// over m processors: the state Partition(sys, m, opt) would leave behind.
// res must be that call's Result (it is validated for exactly-once coverage,
// not re-checked for schedulability — the caller owns having verified it).
func Rebuild(sys task.System, m int, res *Result, opt Options) (*State, error) {
	s, err := NewState(m, opt)
	if err != nil {
		return nil, err
	}
	if len(sys) == 0 {
		return s, nil
	}
	if res == nil || len(res.Assignment) != m {
		return nil, fmt.Errorf("partition: rebuild result covers %d processors, want %d", resLen(res), m)
	}
	procOf := make([]int, len(sys))
	for i := range procOf {
		procOf[i] = -1
	}
	for k := range res.Assignment {
		for _, i := range res.Assignment[k] {
			if i < 0 || i >= len(sys) {
				return nil, fmt.Errorf("partition: rebuild index %d out of range", i)
			}
			if procOf[i] != -1 {
				return nil, fmt.Errorf("partition: rebuild task %d assigned twice", i)
			}
			procOf[i] = k
		}
	}
	order := make([]int, len(sys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sys[order[a]].D < sys[order[b]].D })
	s.entries = make([]stateEntry, 0, len(sys))
	for _, i := range order {
		if procOf[i] == -1 {
			return nil, fmt.Errorf("partition: rebuild task %d unassigned", i)
		}
		s.entries = append(s.entries, stateEntry{idx: i, sp: sys[i].AsSporadic(), proc: procOf[i]})
	}
	return s, nil
}

func resLen(res *Result) int {
	if res == nil {
		return 0
	}
	return len(res.Assignment)
}

// Len returns the number of tasks currently partitioned.
func (s *State) Len() int { return len(s.entries) }

// M returns the number of shared processors.
func (s *State) M() int { return s.m }

// Result materializes the current assignment in the batch encoding:
// Assignment[k] lists input indices in placement (offer) order, exactly as
// Partition would have produced for the same input. The result is freshly
// allocated and safe to retain.
func (s *State) Result() *Result {
	res := &Result{Assignment: make([][]int, s.m)}
	for _, e := range s.entries {
		res.Assignment[e.proc] = append(res.Assignment[e.proc], e.idx)
	}
	return res
}

// Admit places one new task, appended at the end of the input order, and
// commits the resulting assignment. On failure the error is the identical
// *FailureError the batch Partition would return for the grown system (with
// TaskIndex in input order), and the State is left unchanged.
func (s *State) Admit(sp task.Sporadic) error {
	idx := len(s.entries)
	if s.m == 0 {
		// Partition fails on the first task in *input* order when m == 0;
		// incrementally the state is necessarily empty here, so the new task
		// is that first task.
		return &FailureError{TaskIndex: idx, TaskName: sp.Name, M: 0}
	}
	// The new task carries the largest input index, so the stable sort places
	// it after every entry with D ≤ sp.D.
	pos := sort.Search(len(s.entries), func(q int) bool { return s.entries[q].sp.D > sp.D })
	s.reset()
	for q := 0; q < pos; q++ {
		e := &s.entries[q]
		s.sets[e.proc] = append(s.sets[e.proc], e.sp)
	}
	// The new task has no prior placement: full probe, exactly as in batch.
	candProc, ok := choose(s.sets, sp, s.opt, nil)
	if !ok {
		return &FailureError{TaskIndex: idx, TaskName: sp.Name, M: s.m}
	}
	s.dirty[candProc] = true
	s.sets[candProc] = append(s.sets[candProc], sp)
	if err := s.replaySuffix(pos); err != nil {
		return err
	}
	// Commit: shift the suffix up one slot, applying its replayed placements.
	s.entries = append(s.entries, stateEntry{})
	copy(s.entries[pos+1:], s.entries[pos:])
	for q := pos + 1; q < len(s.entries); q++ {
		s.entries[q].proc = s.newProc[q-1]
	}
	s.entries[pos] = stateEntry{idx: idx, sp: sp, proc: candProc}
	return nil
}

// Remove deletes the task at input index idx and commits the re-packed
// assignment; remaining input indices above idx shift down by one, matching
// how the caller's input slice shrinks. Removal can fail — deadline-ordered
// bin packing is not monotone under task removal — and then the error is the
// identical *FailureError batch Partition would return for the shrunken
// system, with the State left unchanged (mirroring a service that keeps the
// old verified system installed).
func (s *State) Remove(idx int) error {
	pos := -1
	for q := range s.entries {
		if s.entries[q].idx == idx {
			pos = q
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("partition: no task with input index %d in state", idx)
	}
	s.reset()
	for q := 0; q < pos; q++ {
		e := &s.entries[q]
		s.sets[e.proc] = append(s.sets[e.proc], e.sp)
	}
	s.dirty[s.entries[pos].proc] = true
	if err := s.replaySuffix(pos + 1); err != nil {
		// The batch oracle partitions the shrunken input, where indices
		// above the removed one have shifted down; report the failing task
		// by its post-removal index.
		if fe, ok := err.(*FailureError); ok && fe.TaskIndex > idx {
			fe.TaskIndex--
		}
		return err
	}
	// Commit: shift the suffix down over the removed slot.
	for q := pos + 1; q < len(s.entries); q++ {
		s.entries[q-1] = s.entries[q]
		s.entries[q-1].proc = s.newProc[q]
	}
	s.entries = s.entries[:len(s.entries)-1]
	for q := range s.entries {
		if s.entries[q].idx > idx {
			s.entries[q].idx--
		}
	}
	return nil
}

// replaySuffix replays the batch placement of entries[from:] against the
// prefix already bucketed into s.sets, recording tentative placements in
// s.newProc. On failure the error is the batch FailureError (in input-order
// indices) for the first suffix task that no longer fits; the caller then
// abandons the uncommitted replay.
func (s *State) replaySuffix(from int) error {
	for q := from; q < len(s.entries); q++ {
		e := &s.entries[q]
		k, ok := s.replayOne(e)
		if !ok {
			// TaskIndex is the pre-mutation input index; Remove shifts it to
			// the post-removal numbering before surfacing the error.
			return &FailureError{TaskIndex: e.idx, TaskName: e.sp.Name, M: s.m}
		}
		s.newProc[q] = k
		if k != e.proc {
			s.dirty[e.proc] = true
			s.dirty[k] = true
		}
		s.sets[k] = append(s.sets[k], e.sp)
	}
	return nil
}

// replayOne decides where one suffix task lands in the replay. For first-fit
// it skips every probe whose outcome carries over from the previous run:
// clean processors below the old placement are known rejections, and a clean
// old placement is a known acceptance — only dirty processors (and, after a
// displacement, the untouched tail) are actually probed. Best-fit/worst-fit
// compare slack across all fitting processors, so any dirty processor can
// steal the choice and the full selection is re-run.
func (s *State) replayOne(e *stateEntry) (int, bool) {
	if s.opt.Heuristic != FirstFit {
		return choose(s.sets, e.sp, s.opt, nil)
	}
	old := e.proc
	for k := 0; k < old; k++ {
		if s.dirty[k] && fitsOn(s.sets[k], e.sp, s.opt.Test) {
			return k, true
		}
	}
	if !s.dirty[old] {
		return old, true
	}
	if fitsOn(s.sets[old], e.sp, s.opt.Test) {
		return old, true
	}
	for k := old + 1; k < s.m; k++ {
		if fitsOn(s.sets[k], e.sp, s.opt.Test) {
			return k, true
		}
	}
	return 0, false
}

// reset prepares the scratch buffers for one replay, retaining capacity.
func (s *State) reset() {
	for k := range s.sets {
		s.sets[k] = s.sets[k][:0]
	}
	if cap(s.dirty) < s.m {
		s.dirty = make([]bool, s.m)
	}
	s.dirty = s.dirty[:s.m]
	for k := range s.dirty {
		s.dirty[k] = false
	}
	if cap(s.newProc) < len(s.entries)+1 {
		s.newProc = make([]int, len(s.entries)+1)
	}
	s.newProc = s.newProc[:len(s.entries)+1]
}

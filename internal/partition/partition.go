// Package partition implements the Baruah–Fisher partitioning algorithm for
// constrained-deadline sporadic task systems (paper Fig. 4), used as the
// second phase of FEDCONS to place the low-density DAG tasks — collapsed to
// three-parameter sporadic tasks (C = vol_i, D_i, T_i) — onto the shared
// processors, each of which runs preemptive uniprocessor EDF.
//
// The admission test per processor is the DBF* approximation of Equation (1)
// evaluated at the candidate's deadline, plus the per-processor utilization
// condition of Baruah–Fisher (IEEE TC 2006, Corollary 1); the paper's Fig. 4
// shows only the DBF check, a pseudo-code simplification (see DESIGN.md).
// Candidates are offered in non-decreasing deadline order, which makes the
// incremental breakpoint checks sound (Lemma 2: speedup 3 − 1/m_r).
//
// Besides the paper's first-fit rule, the package exposes best-fit and
// worst-fit placement and an exact-EDF (QPA) admission test, for the E8
// ablation experiment.
package partition

import (
	"fmt"
	"sort"

	"fedsched/internal/dbf"
	"fedsched/internal/fp"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// Heuristic selects how a processor is chosen among those that can accept a
// candidate task.
type Heuristic int

const (
	// FirstFit assigns to the lowest-indexed processor that fits — the
	// paper's Fig. 4 rule.
	FirstFit Heuristic = iota
	// BestFit assigns to the fitting processor with minimum remaining slack.
	BestFit
	// WorstFit assigns to the fitting processor with maximum remaining slack.
	WorstFit
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// AdmissionTest selects the per-processor schedulability test.
type AdmissionTest int

const (
	// ApproxDBF is the paper's DBF* test (exact rational arithmetic).
	ApproxDBF AdmissionTest = iota
	// ExactEDF is the exact processor-demand test (QPA). Strictly more
	// permissive than ApproxDBF; exponential-time in principle but fast in
	// practice. Not covered by the Lemma 2 speedup proof — ablation only.
	ExactEDF
	// DMRta admits a task if the whole processor remains schedulable under
	// preemptive deadline-monotonic fixed-priority scheduling per exact
	// response-time analysis. The shared processor then runs DM instead of
	// EDF at run time — the E16 ablation. Incomparable with ApproxDBF,
	// dominated by ExactEDF (EDF is uniprocessor-optimal).
	DMRta
)

// String names the admission test.
func (a AdmissionTest) String() string {
	switch a {
	case ApproxDBF:
		return "dbf-approx"
	case ExactEDF:
		return "edf-exact"
	case DMRta:
		return "dm-rta"
	default:
		return fmt.Sprintf("AdmissionTest(%d)", int(a))
	}
}

// Options configures Partition. The zero value is the paper's algorithm:
// first-fit with the DBF* test.
type Options struct {
	Heuristic Heuristic
	Test      AdmissionTest
	// Trace, when non-nil, receives one "place" child span per candidate
	// (in the non-decreasing-deadline offer order) with one "fit" span per
	// processor probed, carrying the DBF* admission inequalities. Nil — the
	// default, and every untraced caller — skips all trace work, including
	// the extra inequality evaluation.
	Trace *obs.Span
}

// Result is a successful partition: Assignment[k] lists the indices (into
// the input system) of the tasks placed on shared processor k.
type Result struct {
	Assignment [][]int
}

// Tasks returns the sporadic tasks on processor k, given the original system.
func (r *Result) Tasks(sys task.System, k int) []task.Sporadic {
	out := make([]task.Sporadic, 0, len(r.Assignment[k]))
	for _, i := range r.Assignment[k] {
		out = append(out, sys[i].AsSporadic())
	}
	return out
}

// FailureError reports which task could not be placed.
type FailureError struct {
	TaskIndex int
	TaskName  string
	M         int
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("partition: task %d (%q) does not fit on any of %d processors", e.TaskIndex, e.TaskName, e.M)
}

// Partition places the low-density DAG task system sys onto m processors
// per the configured heuristic and admission test. On success it returns the
// per-processor assignment; on failure it returns a *FailureError naming the
// first task that could not be placed (paper Fig. 4, line 6: FAILURE).
//
// Per the paper, tasks are considered in order of non-decreasing relative
// deadline regardless of their order in sys; Result indices refer to sys.
func Partition(sys task.System, m int, opt Options) (*Result, error) {
	if m < 0 {
		return nil, fmt.Errorf("partition: negative processor count %d", m)
	}
	if len(sys) == 0 {
		return &Result{Assignment: make([][]int, m)}, nil
	}
	if m == 0 {
		return nil, &FailureError{TaskIndex: 0, TaskName: sys[0].Name, M: 0}
	}

	order := make([]int, len(sys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sys[order[a]].D < sys[order[b]].D })

	assigned := make([][]task.Sporadic, m)
	res := &Result{Assignment: make([][]int, m)}

	for _, idx := range order {
		cand := sys[idx].AsSporadic()
		sp := opt.Trace.Child("place").
			Str("task", sys[idx].Name).Int("index", int64(idx)).
			Int("C", int64(cand.C)).Int("D", int64(cand.D)).Int("T", int64(cand.T))
		k, ok := choose(assigned, cand, opt, sp)
		if !ok {
			sp.Bool("failed", true).Finish()
			return nil, &FailureError{TaskIndex: idx, TaskName: sys[idx].Name, M: m}
		}
		sp.Int("proc", int64(k)).Finish()
		assigned[k] = append(assigned[k], cand)
		res.Assignment[k] = append(res.Assignment[k], idx)
	}
	return res, nil
}

// fitsOn is the untraced admission probe shared by Partition's choose and the
// incremental State replay: can cand join the set already assigned to one
// processor, under the configured test? For the paper's DBF* test it runs the
// allocation-free integer evaluation (dbf.FitsApproxFast), which decides the
// identical exact inequalities as dbf.FitsApprox.
func fitsOn(assigned []task.Sporadic, cand task.Sporadic, test AdmissionTest) bool {
	switch test {
	case ExactEDF:
		trial := append(append([]task.Sporadic(nil), assigned...), cand)
		return dbf.ExactFeasible(trial)
	case DMRta:
		return fp.Fits(assigned, cand)
	default:
		return dbf.FitsApproxFast(assigned, cand)
	}
}

// choose returns the processor to receive cand, per the heuristic, or false
// if no processor admits it. sp, when non-nil, receives one "fit" span per
// processor probed; for the paper's DBF* test the span carries both
// admission inequalities (via dbf.ExplainFit), which is exactly the
// evidence a Phase-2 rejection leaves behind.
func choose(assigned [][]task.Sporadic, cand task.Sporadic, opt Options, sp *obs.Span) (int, bool) {
	fits := func(k int) bool {
		if sp == nil {
			return fitsOn(assigned[k], cand, opt.Test)
		}
		fit := sp.Child("fit").Int("proc", int64(k)).Str("test", opt.Test.String())
		defer fit.Finish()
		switch opt.Test {
		case ExactEDF, DMRta:
			ok := fitsOn(assigned[k], cand, opt.Test)
			fit.Bool("ok", ok)
			return ok
		default:
			rep := dbf.ExplainFit(assigned[k], cand)
			fit.Float("util", rep.Util).Bool("util_ok", rep.UtilOK).
				Float("demand", rep.Demand).Int("capacity", int64(rep.Capacity)).
				Bool("demand_ok", rep.DemandOK).Bool("ok", rep.OK())
			return rep.OK()
		}
	}
	switch opt.Heuristic {
	case BestFit, WorstFit:
		bestK, found := -1, false
		var bestSlack float64
		for k := range assigned {
			if !fits(k) {
				continue
			}
			slack := dbf.SlackApprox(assigned[k], cand)
			better := !found ||
				(opt.Heuristic == BestFit && slack < bestSlack) ||
				(opt.Heuristic == WorstFit && slack > bestSlack)
			if better {
				bestK, bestSlack, found = k, slack, true
			}
		}
		return bestK, found
	default: // FirstFit
		for k := range assigned {
			if fits(k) {
				return k, true
			}
		}
		return -1, false
	}
}

// Verify checks that a Result is actually EDF-schedulable processor by
// processor under the exact test, and that every task is assigned exactly
// once. It is the independent auditor used by tests and experiments.
func Verify(sys task.System, m int, res *Result) error {
	if len(res.Assignment) != m {
		return fmt.Errorf("partition: result covers %d processors, want %d", len(res.Assignment), m)
	}
	seen := make([]bool, len(sys))
	for k := range res.Assignment {
		set := res.Tasks(sys, k)
		for _, i := range res.Assignment[k] {
			if i < 0 || i >= len(sys) {
				return fmt.Errorf("partition: index %d out of range", i)
			}
			if seen[i] {
				return fmt.Errorf("partition: task %d assigned twice", i)
			}
			seen[i] = true
		}
		if !dbf.ExactFeasible(set) {
			return fmt.Errorf("partition: processor %d not EDF-schedulable: %v", k, set)
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: task %d unassigned", i)
		}
	}
	return nil
}

package partition

import (
	"errors"
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// lowTask builds a low-density DAG task whose sporadic collapse is (c, d, t).
func lowTask(name string, c, d, t task.Time) *task.DAGTask {
	return task.MustNew(name, dag.Singleton(c), d, t)
}

func TestEmptySystem(t *testing.T) {
	res, err := Partition(nil, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 3 {
		t.Errorf("assignment for %d processors, want 3", len(res.Assignment))
	}
	if err := Verify(nil, 3, res); err != nil {
		t.Error(err)
	}
}

func TestZeroProcessorsFails(t *testing.T) {
	sys := task.System{lowTask("a", 1, 4, 8)}
	_, err := Partition(sys, 0, Options{})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("want FailureError, got %v", err)
	}
}

func TestNegativeProcessorsRejected(t *testing.T) {
	if _, err := Partition(nil, -1, Options{}); err == nil {
		t.Fatal("accepted m=-1")
	}
}

func TestSingleTaskFits(t *testing.T) {
	sys := task.System{lowTask("a", 3, 8, 10)}
	res, err := Partition(sys, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sys, 1, res); err != nil {
		t.Error(err)
	}
}

func TestDeadlineOrderIsUsed(t *testing.T) {
	// Input deliberately in reverse-deadline order; partition must succeed
	// regardless (it sorts internally).
	sys := task.System{
		lowTask("late", 2, 20, 40),
		lowTask("early", 2, 4, 40),
	}
	res, err := Partition(sys, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sys, 1, res); err != nil {
		t.Error(err)
	}
}

func TestOverloadFails(t *testing.T) {
	// Two tasks each demanding the full window [0, D) cannot share one
	// processor but fit on two.
	sys := task.System{
		lowTask("a", 4, 5, 100),
		lowTask("b", 4, 5, 100),
	}
	if _, err := Partition(sys, 1, Options{}); err == nil {
		t.Fatal("overload on m=1 must fail")
	}
	res, err := Partition(sys, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sys, 2, res); err != nil {
		t.Error(err)
	}
	// They must be on different processors.
	if len(res.Assignment[0]) != 1 || len(res.Assignment[1]) != 1 {
		t.Errorf("assignment = %v, want one task per processor", res.Assignment)
	}
}

func TestUtilizationConditionImpliedForConstrained(t *testing.T) {
	// For constrained-deadline tasks the DBF* breakpoint check at the
	// largest deadline implies Σu ≤ 1 (DBF*(τj, Dmax) ≥ uj·Dmax whenever
	// Dj ≤ Tj), so FitsApprox acceptances never exceed unit utilization.
	r := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		sys := randomLowDensitySystem(r, 2+r.Intn(6))
		res, err := Partition(sys, 1, Options{})
		if err != nil {
			continue
		}
		checked++
		u := 0.0
		for _, i := range res.Assignment[0] {
			u += sys[i].Utilization()
		}
		if u > 1+1e-9 {
			t.Fatalf("accepted constrained set with Σu = %v > 1", u)
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous")
	}
}

func TestUtilizationConditionGuardsArbitraryDeadlines(t *testing.T) {
	// For an arbitrary-deadline task (D > T) the DBF* check at D alone is
	// not enough: τ = (3, 10, 2) has u = 1.5 yet demand 3 ≤ 10 at its own
	// deadline. The explicit Σu ≤ 1 condition must reject it.
	over := task.MustNew("over", dag.Singleton(3), 10, 2)
	if _, err := Partition(task.System{over}, 1, Options{}); err == nil {
		t.Fatal("u = 1.5 arbitrary-deadline task must be rejected")
	}
}

func randomLowDensitySystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		tt := task.Time(10 + r.Intn(90))
		d := task.Time(2 + r.Intn(int(tt)-1))
		c := task.Time(1 + r.Intn(int(d)))
		if c >= d { // keep density < 1
			c = d - 1
		}
		if c < 1 {
			c = 1
		}
		sys = append(sys, lowTask("r", c, d, tt))
	}
	return sys
}

func TestRandomPartitionsAlwaysVerify(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	succeeded := 0
	for trial := 0; trial < 200; trial++ {
		sys := randomLowDensitySystem(r, 1+r.Intn(10))
		m := 1 + r.Intn(6)
		for _, h := range []Heuristic{FirstFit, BestFit, WorstFit} {
			res, err := Partition(sys, m, Options{Heuristic: h})
			if err != nil {
				continue
			}
			succeeded++
			if verr := Verify(sys, m, res); verr != nil {
				t.Fatalf("trial %d %v: %v", trial, h, verr)
			}
		}
	}
	if succeeded == 0 {
		t.Fatal("test vacuous: no partition ever succeeded")
	}
}

func TestExactTestDominatesApprox(t *testing.T) {
	// Whatever ApproxDBF can place, ExactEDF can place too (possibly
	// differently); count acceptances over a random ensemble.
	r := rand.New(rand.NewSource(22))
	approxWins, exactWins := 0, 0
	for trial := 0; trial < 150; trial++ {
		sys := randomLowDensitySystem(r, 2+r.Intn(8))
		m := 1 + r.Intn(3)
		_, errA := Partition(sys, m, Options{Test: ApproxDBF})
		resE, errE := Partition(sys, m, Options{Test: ExactEDF})
		if errA == nil {
			approxWins++
			if errE != nil {
				t.Fatalf("approx placed but exact failed: %v", errE)
			}
		}
		if errE == nil {
			exactWins++
			if verr := Verify(sys, m, resE); verr != nil {
				t.Fatal(verr)
			}
		}
	}
	if exactWins < approxWins {
		t.Errorf("exact admission accepted %d < approx %d", exactWins, approxWins)
	}
}

func TestHeuristicsDiffer(t *testing.T) {
	// Construct a case where first-fit and worst-fit place differently:
	// after a big task lands on proc 0, worst-fit sends the next to proc 1.
	sys := task.System{
		lowTask("big", 6, 10, 20),
		lowTask("small", 1, 10, 20),
	}
	ff, err := Partition(sys, 2, Options{Heuristic: FirstFit})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := Partition(sys, 2, Options{Heuristic: WorstFit})
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.Assignment[0]) != 2 {
		t.Errorf("first-fit should stack both on processor 0: %v", ff.Assignment)
	}
	if len(wf.Assignment[0]) != 1 || len(wf.Assignment[1]) != 1 {
		t.Errorf("worst-fit should spread: %v", wf.Assignment)
	}
}

func TestBestFitPrefersTighterBin(t *testing.T) {
	// Prime two bins with different loads, then check best-fit picks the
	// fuller one for a small task.
	sys := task.System{
		lowTask("loadA", 8, 10, 20), // goes to proc 0 (first-fit order: D=10)
		lowTask("loadB", 2, 12, 20), // best-fit: slack on proc0 smaller...
		lowTask("tiny", 1, 100, 200),
	}
	res, err := Partition(sys, 2, Options{Heuristic: BestFit})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sys, 2, res); err != nil {
		t.Error(err)
	}
}

func TestFailureErrorIdentifiesTask(t *testing.T) {
	sys := task.System{
		lowTask("fits", 1, 10, 20),
		lowTask("huge", 9, 10, 11),
		lowTask("huge2", 9, 10, 11),
	}
	_, err := Partition(sys, 1, Options{})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("want FailureError, got %v", err)
	}
	if fe.TaskName != "huge" && fe.TaskName != "huge2" {
		t.Errorf("failure names %q, want one of the huge tasks", fe.TaskName)
	}
}

func TestVerifyCatchesBadResult(t *testing.T) {
	sys := task.System{lowTask("a", 4, 5, 10), lowTask("b", 4, 5, 10)}
	// Force both tasks onto one processor: exact test must reject.
	bad := &Result{Assignment: [][]int{{0, 1}, {}}}
	if err := Verify(sys, 2, bad); err == nil {
		t.Error("Verify accepted overloaded processor")
	}
	// Unassigned task.
	bad2 := &Result{Assignment: [][]int{{0}, {}}}
	if err := Verify(sys, 2, bad2); err == nil {
		t.Error("Verify accepted missing task")
	}
	// Double assignment.
	bad3 := &Result{Assignment: [][]int{{0}, {0, 1}}}
	if err := Verify(sys, 2, bad3); err == nil {
		t.Error("Verify accepted duplicate task")
	}
}

func TestLemma2FlavorSpeedup(t *testing.T) {
	// Sanity-scale check of Lemma 2's direction: if a system partitions on
	// m processors, scaling every WCET down by 3 must still partition
	// (equivalently, the original partitions on speed-3 processors). Not the
	// lemma itself (which compares against OPT) but a monotonicity corollary
	// the implementation must satisfy.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		sys := randomLowDensitySystem(r, 2+r.Intn(8))
		m := 1 + r.Intn(4)
		if _, err := Partition(sys, m, Options{}); err != nil {
			continue
		}
		scaled := make(task.System, len(sys))
		for i, tk := range sys {
			c := tk.Volume() / 3
			if c < 1 {
				c = 1
			}
			scaled[i] = lowTask(tk.Name, c, tk.D, tk.T)
		}
		if _, err := Partition(scaled, m, Options{}); err != nil {
			t.Fatalf("scaled-down system failed to partition: %v", err)
		}
	}
}

func BenchmarkPartitionFirstFit(b *testing.B) {
	r := rand.New(rand.NewSource(24))
	sys := randomLowDensitySystem(r, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Partition(sys, 16, Options{})
	}
}

func TestDMRtaAdmission(t *testing.T) {
	// EDF-feasible-only set: DM must reject on one processor, EDF accepts.
	sys := task.System{
		lowTask("a", 3, 6, 6),
		lowTask("b", 4, 8, 8),
	}
	if _, err := Partition(sys, 1, Options{Test: DMRta}); err == nil {
		t.Fatal("DM-RTA accepted an EDF-only set")
	}
	res, err := Partition(sys, 1, Options{Test: ApproxDBF})
	if err != nil {
		t.Fatalf("DBF* should accept the implicit U=1 set: %v", err)
	}
	if err := Verify(sys, 1, res); err != nil {
		t.Fatal(err)
	}
	// DM spreads it over two processors.
	res2, err := Partition(sys, 2, Options{Test: DMRta})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sys, 2, res2); err != nil {
		t.Fatal(err)
	}
}

func TestDMRtaPlacementsAreEDFFeasible(t *testing.T) {
	// Per-processor, DM feasibility implies EDF feasibility (EDF is
	// uniprocessor-optimal), so every DM-RTA placement must pass the
	// exact-EDF auditor. (System-level acceptance is NOT comparable across
	// admission tests — first-fit packs differently under each — so only
	// the per-processor invariant is asserted.)
	r := rand.New(rand.NewSource(71))
	dmAccepted := 0
	for trial := 0; trial < 150; trial++ {
		sys := randomLowDensitySystem(r, 2+r.Intn(8))
		m := 1 + r.Intn(3)
		res, errDM := Partition(sys, m, Options{Test: DMRta})
		if errDM != nil {
			continue
		}
		dmAccepted++
		if err := Verify(sys, m, res); err != nil {
			t.Fatalf("DM placement failed the exact-EDF audit: %v", err)
		}
	}
	if dmAccepted == 0 {
		t.Fatal("test vacuous")
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{FirstFit.String(), "first-fit"},
		{BestFit.String(), "best-fit"},
		{WorstFit.String(), "worst-fit"},
		{ApproxDBF.String(), "dbf-approx"},
		{ExactEDF.String(), "edf-exact"},
		{DMRta.String(), "dm-rta"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String = %q, want %q", c.got, c.want)
		}
	}
	if Heuristic(9).String() == "" || AdmissionTest(9).String() == "" {
		t.Error("unknown enum values must still render")
	}
}

func TestFailureErrorMessage(t *testing.T) {
	sys := task.System{lowTask("whale", 9, 10, 11)}
	_, err := Partition(sys, 0, Options{})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatal(err)
	}
	msg := fe.Error()
	if !errors.As(err, &fe) || msg == "" {
		t.Fatal("empty failure message")
	}
	for _, want := range []string{"whale", "0 processors"} {
		if !containsStr(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

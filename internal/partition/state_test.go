package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fedsched/internal/task"
)

// randLowTask draws a sporadic-collapsible task with moderate parameters, so
// that random systems mix comfortable fits, tight fits and rejections.
func randLowTask(r *rand.Rand, name string) *task.DAGTask {
	c := task.Time(1 + r.Intn(6))
	d := c + task.Time(r.Intn(20))
	t := d + task.Time(r.Intn(20))
	return lowTask(name, c, d, t)
}

// stateOptions is the full heuristic × admission-test matrix the incremental
// replay must stay byte-identical to batch under.
func stateOptions() []Options {
	var opts []Options
	for _, h := range []Heuristic{FirstFit, BestFit, WorstFit} {
		for _, a := range []AdmissionTest{ApproxDBF, ExactEDF, DMRta} {
			opts = append(opts, Options{Heuristic: h, Test: a})
		}
	}
	return opts
}

// checkAgainstBatch asserts the State's committed assignment equals the batch
// partition of the same input, including identical placement order.
func checkAgainstBatch(t *testing.T, st *State, sys task.System, m int, opt Options, step string) {
	t.Helper()
	want, err := Partition(sys, m, opt)
	if err != nil {
		t.Fatalf("%s: batch oracle failed on a system the state holds: %v", step, err)
	}
	if got := st.Result(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: state diverged from batch:\nstate: %v\nbatch: %v", step, got.Assignment, want.Assignment)
	}
}

// TestPartitionStateDifferential is the 20-seed × heuristic × admission-test
// differential matrix: a randomized interleaving of admits and removes, where
// after every operation the incremental State must match a from-scratch batch
// Partition exactly — same assignment encoding on success, same FailureError
// string on rejection, and an untouched state after any failed operation.
func TestPartitionStateDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, opt := range stateOptions() {
			opt := opt
			t.Run(fmt.Sprintf("seed=%d/%v/%v", seed, opt.Heuristic, opt.Test), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				m := 2 + r.Intn(4)
				st, err := NewState(m, opt)
				if err != nil {
					t.Fatal(err)
				}
				var sys task.System
				next := 0
				for step := 0; step < 60; step++ {
					if len(sys) == 0 || r.Float64() < 0.6 {
						tk := randLowTask(r, fmt.Sprintf("t%d", next))
						next++
						trial := append(sys.Clone(), tk)
						stErr := st.Admit(tk.AsSporadic())
						_, batchErr := Partition(trial, m, opt)
						if (stErr == nil) != (batchErr == nil) {
							t.Fatalf("step %d admit: state err %v, batch err %v", step, stErr, batchErr)
						}
						if stErr != nil {
							if stErr.Error() != batchErr.Error() {
								t.Fatalf("step %d admit errors differ:\nstate: %v\nbatch: %v", step, stErr, batchErr)
							}
							checkAgainstBatch(t, st, sys, m, opt, fmt.Sprintf("step %d post-failed-admit", step))
							continue
						}
						sys = trial
					} else {
						idx := r.Intn(len(sys))
						trial := append(append(task.System{}, sys[:idx]...), sys[idx+1:]...)
						stErr := st.Remove(idx)
						_, batchErr := Partition(trial, m, opt)
						if (stErr == nil) != (batchErr == nil) {
							t.Fatalf("step %d remove(%d): state err %v, batch err %v", step, idx, stErr, batchErr)
						}
						if stErr != nil {
							if stErr.Error() != batchErr.Error() {
								t.Fatalf("step %d remove errors differ:\nstate: %v\nbatch: %v", step, stErr, batchErr)
							}
							checkAgainstBatch(t, st, sys, m, opt, fmt.Sprintf("step %d post-failed-remove", step))
							continue
						}
						sys = trial
					}
					checkAgainstBatch(t, st, sys, m, opt, fmt.Sprintf("step %d", step))
				}
			})
		}
	}
}

// TestStateAdmitRemoveInverse is the inverse property: Admit of a task that
// succeeds, followed by Remove of that same task, restores the exact prior
// state — entries, placements and input numbering all byte-equal.
func TestStateAdmitRemoveInverse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, opt := range stateOptions() {
			r := rand.New(rand.NewSource(seed ^ 0x5eed))
			m := 2 + r.Intn(4)
			st, err := NewState(m, opt)
			if err != nil {
				t.Fatal(err)
			}
			// Grow a base population (ignoring rejections).
			n := 0
			for i := 0; i < 12; i++ {
				if st.Admit(randLowTask(r, fmt.Sprintf("base%d", i)).AsSporadic()) == nil {
					n++
				}
			}
			for trial := 0; trial < 20; trial++ {
				before := append([]stateEntry(nil), st.entries...)
				probe := randLowTask(r, fmt.Sprintf("probe%d", trial)).AsSporadic()
				if st.Admit(probe) != nil {
					continue // rejection already leaves the state untouched
				}
				if err := st.Remove(n); err != nil {
					t.Fatalf("seed %d trial %d: removing the just-admitted task failed: %v", seed, trial, err)
				}
				if !reflect.DeepEqual(st.entries, before) {
					t.Fatalf("seed %d trial %d (%v/%v): admit∘remove is not identity:\nbefore: %+v\nafter:  %+v",
						seed, trial, opt.Heuristic, opt.Test, before, st.entries)
				}
			}
		}
	}
}

// TestStateRebuildMatchesBatch: Rebuild from a batch result replays future
// mutations identically to a state grown incrementally from empty.
func TestStateRebuildMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, opt := range stateOptions() {
		var sys task.System
		for i := 0; i < 10; i++ {
			sys = append(sys, randLowTask(r, fmt.Sprintf("t%d", i)))
		}
		const m = 4
		res, err := Partition(sys, m, opt)
		if err != nil {
			continue // an unpackable draw: nothing to rebuild from
		}
		st, err := Rebuild(sys, m, res, opt)
		if err != nil {
			t.Fatalf("%v/%v: rebuild: %v", opt.Heuristic, opt.Test, err)
		}
		if !reflect.DeepEqual(st.Result(), res) {
			t.Fatalf("%v/%v: rebuild does not round-trip the batch result", opt.Heuristic, opt.Test)
		}
		tk := randLowTask(r, "extra")
		trial := append(sys.Clone(), tk)
		stErr := st.Admit(tk.AsSporadic())
		_, batchErr := Partition(trial, m, opt)
		if (stErr == nil) != (batchErr == nil) {
			t.Fatalf("%v/%v: rebuilt state err %v, batch err %v", opt.Heuristic, opt.Test, stErr, batchErr)
		}
		if stErr == nil {
			checkAgainstBatch(t, st, trial, m, opt, "post-rebuild admit")
		}
	}
}

// TestStateRebuildRejectsCorruptResult: Rebuild validates coverage rather
// than trusting the caller.
func TestStateRebuildRejectsCorruptResult(t *testing.T) {
	sys := task.System{lowTask("a", 1, 4, 8), lowTask("b", 1, 5, 9)}
	res, err := Partition(sys, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	twice := &Result{Assignment: [][]int{{0, 0}, {1}}}
	if _, err := Rebuild(sys, 2, twice, Options{}); err == nil {
		t.Error("rebuild accepted a doubly-assigned task")
	}
	missing := &Result{Assignment: [][]int{{0}, {}}}
	if _, err := Rebuild(sys, 2, missing, Options{}); err == nil {
		t.Error("rebuild accepted an unassigned task")
	}
	if _, err := Rebuild(sys, 3, res, Options{}); err == nil {
		t.Error("rebuild accepted a result for the wrong processor count")
	}
}

// TestStateZeroProcs mirrors the batch m==0 edge: the first admission fails
// with the batch error, and an empty state's Result matches the batch result
// for an empty system.
func TestStateZeroProcs(t *testing.T) {
	st, err := NewState(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := task.System{lowTask("a", 1, 4, 8)}
	stErr := st.Admit(sys[0].AsSporadic())
	_, batchErr := Partition(sys, 0, Options{})
	if stErr == nil || batchErr == nil || stErr.Error() != batchErr.Error() {
		t.Fatalf("m=0 errors differ: state %v, batch %v", stErr, batchErr)
	}
	batchEmpty, err := Partition(nil, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Result(), batchEmpty) {
		t.Error("empty m=0 state result differs from batch")
	}
	if _, err := NewState(-1, Options{}); err == nil {
		t.Error("NewState accepted m=-1")
	}
}

// TestStateZeroAllocWarmOps pins the warm-path allocation contract (the
// incremental analogue of core's TestNoopTraceZeroOverhead): once the scratch
// buffers have warmed up, a steady-state first-fit/DBF* admit+remove cycle
// performs no heap allocations at all.
func TestStateZeroAllocWarmOps(t *testing.T) {
	st, err := NewState(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	n := 0
	for i := 0; i < 8; i++ {
		if st.Admit(randLowTask(r, fmt.Sprintf("base%d", i)).AsSporadic()) == nil {
			n++
		}
	}
	probe := lowTask("probe", 1, 12, 30).AsSporadic()
	if err := st.Admit(probe); err != nil {
		t.Fatalf("probe does not fit the warm-up population: %v", err)
	}
	if err := st.Remove(n); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := st.Admit(probe); err != nil {
			t.Fatal(err)
		}
		if err := st.Remove(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Admit+Remove allocated %.1f times per cycle, want 0", allocs)
	}
}

package partition

import (
	"fmt"
	"reflect"
	"testing"

	"fedsched/internal/task"
)

// FuzzPartitionState mutates an (options, op-sequence) encoding and cross-
// checks every incremental operation against the batch oracle: identical
// Result on success, identical FailureError string on rejection, state
// untouched after any failure. The byte format is: data[0] → m, data[1] →
// heuristic/test, then one 4-byte record per operation (op selector, C, D, T
// deltas). The committed corpus in testdata/fuzz/FuzzPartitionState seeds
// every heuristic × test pair plus admit/remove/failure interleavings.
func FuzzPartitionState(f *testing.F) {
	// One seed per heuristic × test pair over a mixed op tape, plus shapes
	// that force rejections (huge C) and removal re-packs.
	tape := []byte{
		0x02, 0x11, 0x21, 0x31, // admits of varied sizes
		0x01, 0x05, 0x10, 0x22, // remove, then more admits
		0x03, 0xff, 0x01, 0x01, // an admit that cannot fit anywhere
		0x01, 0x30, 0x08, 0x04,
	}
	for hb := byte(0); hb < 3; hb++ {
		for tb := byte(0); tb < 3; tb++ {
			f.Add(append([]byte{2, hb + 4*tb}, tape...))
		}
	}
	f.Add([]byte{0, 0, 0x02, 0x01, 0x01, 0x01})          // m = 1, minimal admit
	f.Add([]byte{3, 1, 0x02, 0x04, 0x00, 0x00, 0x01, 0}) // short trailing record

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		m := int(data[0] % 4) // 0..3: include the m=0 edge
		opt := Options{
			Heuristic: Heuristic(int(data[1]) % 3),
			Test:      AdmissionTest(int(data[1]/4) % 3),
		}
		st, err := NewState(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		var sys task.System
		next := 0
		ops := data[2:]
		for len(ops) >= 4 && next < 24 {
			op, c, d, dt := ops[0], ops[1], ops[2], ops[3]
			ops = ops[4:]
			if op%2 == 0 || len(sys) == 0 {
				C := task.Time(c)%64 + 1
				D := C + task.Time(d)%64
				T := D + task.Time(dt)%64
				tk := lowTask(fmt.Sprintf("t%d", next), C, D, T)
				next++
				trial := append(sys.Clone(), tk)
				stErr := st.Admit(tk.AsSporadic())
				_, batchErr := Partition(trial, m, opt)
				if (stErr == nil) != (batchErr == nil) {
					t.Fatalf("admit: state err %v, batch err %v", stErr, batchErr)
				}
				if stErr != nil {
					if stErr.Error() != batchErr.Error() {
						t.Fatalf("admit errors differ:\nstate: %v\nbatch: %v", stErr, batchErr)
					}
					continue
				}
				sys = trial
			} else {
				idx := int(c) % len(sys)
				trial := append(append(task.System{}, sys[:idx]...), sys[idx+1:]...)
				stErr := st.Remove(idx)
				_, batchErr := Partition(trial, m, opt)
				if (stErr == nil) != (batchErr == nil) {
					t.Fatalf("remove(%d): state err %v, batch err %v", idx, stErr, batchErr)
				}
				if stErr != nil {
					if stErr.Error() != batchErr.Error() {
						t.Fatalf("remove errors differ:\nstate: %v\nbatch: %v", stErr, batchErr)
					}
					continue
				}
				sys = trial
			}
			want, err := Partition(sys, m, opt)
			if err != nil {
				t.Fatalf("batch oracle rejects a system the state committed: %v", err)
			}
			if got := st.Result(); !reflect.DeepEqual(got, want) {
				t.Fatalf("state diverged from batch:\nstate: %v\nbatch: %v", got.Assignment, want.Assignment)
			}
		}
	})
}

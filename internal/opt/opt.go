// Package opt computes exact optimal makespans of small DAGs on identical
// processors by branch and bound — a concrete stand-in for the "optimal
// scheduler" that the paper's speedup bounds (Definition 1, Lemma 1) are
// stated against.
//
// The search explores non-preemptive schedules. For P|prec|Cmax an optimal
// non-preemptive schedule exists in which every job starts either at time 0
// or at some job's completion (left-shifting any other schedule loses
// nothing), so branching happens only at completion instants, over subsets
// of ready jobs to dispatch onto free processors. Two admissible lower
// bounds prune the search:
//
//	LB₁ = now + (remaining work)/m        (capacity bound)
//	LB₂ = max over unfinished jobs of earliest-start + tail chain
//
// The LS makespan seeds the incumbent, so the search only explores where LS
// might be suboptimal. Note that optimal *preemptive* makespans can be
// smaller still; since OPT_np ≥ OPT_pre, every ratio LS/OPT_np measured by
// experiment E18 is a lower bound on the true LS/OPT_pre ratio, and Graham's
// (2 − 1/m) guarantee applies to both.
//
// The exponential search is intended for |V| ≤ ~14; Makespan gives up (ok ==
// false) after the node budget.
package opt

import (
	"math/bits"

	"fedsched/internal/dag"
	"fedsched/internal/listsched"
)

// Time is re-exported for convenience.
type Time = dag.Time

// DefaultNodeBudget bounds the branch-and-bound search size.
const DefaultNodeBudget = 2_000_000

// Makespan returns the optimal non-preemptive makespan of g on m identical
// processors. ok is false if |V| > 30 or the node budget was exhausted
// before the search completed (the returned value is then the best
// incumbent, an upper bound).
func Makespan(g *dag.DAG, m int, nodeBudget int) (makespan Time, ok bool) {
	n := g.N()
	if n == 0 {
		return 0, true
	}
	if n > 30 || m < 1 {
		return 0, false
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	// Incumbent: LS with a critical-path list (usually near-optimal).
	inc := Time(1) << 62
	for _, prio := range []listsched.Priority{listsched.LongestPathFirst, nil, listsched.LargestWCETFirst} {
		if s, err := listsched.Run(g, m, prio); err == nil && s.Makespan < inc {
			inc = s.Makespan
		}
	}
	if m >= g.Width() {
		// Theorem: with at least Width processors, LS achieves len(G),
		// which is a universal lower bound — already optimal.
		return g.LongestChain(), true
	}

	bb := &search{
		g:      g,
		m:      m,
		n:      n,
		budget: nodeBudget,
		best:   inc,
		tail:   tails(g),
		wcet:   make([]Time, n),
		preds:  make([]uint32, n),
	}
	var totalWork Time
	for v := 0; v < n; v++ {
		bb.wcet[v] = g.WCET(v)
		totalWork += bb.wcet[v]
		for _, p := range g.Predecessors(v) {
			bb.preds[v] |= 1 << uint(p)
		}
	}
	bb.totalWork = totalWork
	bb.dfs(0, 0, nil, 0)
	if bb.budget <= 0 {
		return bb.best, false
	}
	return bb.best, true
}

// tails returns, per vertex, the longest chain length starting at the vertex
// (inclusive) — the tail used by LB₂.
func tails(g *dag.DAG) []Time {
	n := g.N()
	tail := make([]Time, n)
	order := g.TopologicalOrder()
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		var best Time
		for _, w := range g.Successors(v) {
			if tail[w] > best {
				best = tail[w]
			}
		}
		tail[v] = best + g.WCET(v)
	}
	return tail
}

type running struct {
	job    int
	finish Time
}

type search struct {
	g         *dag.DAG
	m, n      int
	budget    int
	best      Time
	tail      []Time
	wcet      []Time
	preds     []uint32
	totalWork Time
}

// dfs explores decisions at time `now` with `done` completed, `run` active
// (sorted by finish), and workDone the total work of done plus the elapsed
// part of running jobs — not tracked exactly; remaining work is recomputed.
func (s *search) dfs(done uint32, startedWork Time, run []running, now Time) {
	if s.budget <= 0 {
		return
	}
	s.budget--

	allMask := uint32(1)<<uint(s.n) - 1
	started := done
	for _, r := range run {
		started |= 1 << uint(r.job)
	}

	// Completion: everything started and nothing running means done.
	if started == allMask && len(run) == 0 {
		if now < s.best {
			s.best = now
		}
		return
	}

	// Lower bounds.
	remaining := s.totalWork - startedWork // work of unstarted jobs
	var runTail Time                       // latest running finish, and running leftovers
	var leftover Time
	for _, r := range run {
		if r.finish > runTail {
			runTail = r.finish
		}
		leftover += r.finish - now
	}
	lb := now + (remaining+leftover+Time(s.m)-1)/Time(s.m)
	if runTail > lb {
		lb = runTail
	}
	// Chain bound over unstarted jobs (they can start at `now` at best).
	for v := 0; v < s.n; v++ {
		if started&(1<<uint(v)) == 0 {
			if b := now + s.tail[v]; b > lb {
				lb = b
			}
		}
	}
	// Chain bound through running jobs.
	for _, r := range run {
		if b := r.finish + s.tail[r.job] - s.wcet[r.job]; b > lb {
			lb = b
		}
	}
	if lb >= s.best {
		return
	}

	free := s.m - len(run)
	ready := s.readyMask(done, started)

	if free > 0 && ready != 0 {
		// Branch over non-empty subsets of ready jobs of size ≤ free,
		// largest-tail-first ordering for better pruning.
		jobs := maskJobs(ready)
		s.branchStarts(done, startedWork, run, now, jobs, free)
	}
	// Always also consider starting nothing and advancing to the next
	// completion (required: the optimal choice may hold a processor idle
	// for a job that becomes ready later).
	if len(run) > 0 {
		s.advance(done, startedWork, run, now)
	}
}

// branchStarts enumerates subsets of `jobs` (size ≤ free) to start at now.
func (s *search) branchStarts(done uint32, startedWork Time, run []running, now Time, jobs []int, free int) {
	k := len(jobs)
	for sub := 1; sub < 1<<uint(k); sub++ {
		if bits.OnesCount32(uint32(sub)) > free {
			continue
		}
		if s.budget <= 0 {
			return
		}
		nrun := append([]running(nil), run...)
		work := startedWork
		for i := 0; i < k; i++ {
			if sub&(1<<uint(i)) != 0 {
				j := jobs[i]
				nrun = append(nrun, running{job: j, finish: now + s.wcet[j]})
				work += s.wcet[j]
			}
		}
		s.advance(done, work, nrun, now)
	}
}

// advance jumps to the earliest completion among run, retires every job
// finishing then, and recurses.
func (s *search) advance(done uint32, startedWork Time, run []running, now Time) {
	next := run[0].finish
	for _, r := range run[1:] {
		if r.finish < next {
			next = r.finish
		}
	}
	var keep []running
	ndone := done
	for _, r := range run {
		if r.finish == next {
			ndone |= 1 << uint(r.job)
		} else {
			keep = append(keep, r)
		}
	}
	s.dfs(ndone, startedWork, keep, next)
}

// readyMask returns unstarted jobs whose predecessors are all done.
func (s *search) readyMask(done, started uint32) uint32 {
	var ready uint32
	for v := 0; v < s.n; v++ {
		bit := uint32(1) << uint(v)
		if started&bit != 0 {
			continue
		}
		if s.preds[v]&^done == 0 {
			ready |= bit
		}
	}
	return ready
}

func maskJobs(mask uint32) []int {
	var out []int
	for mask != 0 {
		v := bits.TrailingZeros32(mask)
		out = append(out, v)
		mask &^= 1 << uint(v)
	}
	return out
}

// MinprocsOPT returns the smallest μ ≤ cap for which the optimal
// non-preemptive makespan of g is ≤ window, and the makespan at that μ.
// ok is false if no μ within cap works or a search was inconclusive.
// This is what procedure MINPROCS would return with a clairvoyant optimal
// scheduler in place of LS — the reference point of Lemma 1.
func MinprocsOPT(g *dag.DAG, window Time, cap int, nodeBudget int) (mu int, makespan Time, ok bool) {
	if g.LongestChain() > window {
		return 0, 0, false
	}
	limit := g.Width()
	if cap < limit {
		limit = cap
	}
	for mu = 1; mu <= limit; mu++ {
		ms, complete := Makespan(g, mu, nodeBudget)
		if !complete {
			return 0, 0, false
		}
		if ms <= window {
			return mu, ms, true
		}
	}
	return 0, 0, false
}

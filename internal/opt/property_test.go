package opt

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
)

func TestOptimalMonotoneInProcessors(t *testing.T) {
	// More processors never hurt the optimum (unlike LS, which is anomalous
	// in m as well): OPT(m+1) ≤ OPT(m).
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 80; trial++ {
		g := randomSmallDAG(r, 3+r.Intn(7))
		var prev Time = 1 << 62
		for m := 1; m <= 4; m++ {
			ms, ok := Makespan(g, m, 0)
			if !ok {
				t.Fatalf("inconclusive at m=%d", m)
			}
			if ms > prev {
				t.Fatalf("OPT rose from %d to %d when adding a processor", prev, ms)
			}
			prev = ms
		}
		// And it bottoms out at len(G).
		msW, ok := Makespan(g, g.Width(), 0)
		if !ok || msW != g.LongestChain() {
			t.Fatalf("OPT at width = %d, want len %d", msW, g.LongestChain())
		}
	}
}

func TestOptimalMonotoneUnderWCETReduction(t *testing.T) {
	// Reducing a WCET never increases the optimum (any schedule remains
	// feasible) — the property LS famously lacks.
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 80; trial++ {
		g := randomSmallDAG(r, 3+r.Intn(7))
		m := 1 + r.Intn(3)
		before, ok := Makespan(g, m, 0)
		if !ok {
			t.Fatal("inconclusive")
		}
		v := r.Intn(g.N())
		if g.WCET(v) <= 1 {
			continue
		}
		g2, err := g.WithWCET(v, g.WCET(v)-1)
		if err != nil {
			t.Fatal(err)
		}
		after, ok := Makespan(g2, m, 0)
		if !ok {
			t.Fatal("inconclusive")
		}
		if after > before {
			t.Fatalf("OPT anomalous: %d → %d after reducing vertex %d", before, after, v)
		}
	}
}

func TestOptimalSubadditiveInWCET(t *testing.T) {
	// Increasing one WCET by k increases OPT by at most k (insert idle
	// time): OPT(g + k·e_v) ≤ OPT(g) + k.
	r := rand.New(rand.NewSource(203))
	for trial := 0; trial < 60; trial++ {
		g := randomSmallDAG(r, 3+r.Intn(6))
		m := 1 + r.Intn(3)
		base, ok := Makespan(g, m, 0)
		if !ok {
			t.Fatal("inconclusive")
		}
		v := r.Intn(g.N())
		k := Time(1 + r.Intn(4))
		g2, err := g.WithWCET(v, g.WCET(v)+k)
		if err != nil {
			t.Fatal(err)
		}
		grown, ok := Makespan(g2, m, 0)
		if !ok {
			t.Fatal("inconclusive")
		}
		if grown > base+k {
			t.Fatalf("OPT grew by %d > %d after +%d on one vertex", grown-base, k, k)
		}
		if grown < base {
			t.Fatalf("OPT shrank after a WCET increase: %d → %d", base, grown)
		}
	}
}

func dagBudgetExhausts(t *testing.T) *dag.DAG {
	t.Helper()
	b := dag.NewBuilder(14)
	for i := 0; i < 14; i++ {
		b.AddJob(Time(1 + i%5))
	}
	return b.MustBuild()
}

func TestNodeBudgetInconclusive(t *testing.T) {
	// A tiny budget on a wide instance must report inconclusive, returning
	// the incumbent (which is still an upper bound ≥ the true optimum).
	g := dagBudgetExhausts(t)
	ms, ok := Makespan(g, 3, 2)
	if ok {
		t.Skip("instance solved within 2 nodes (width short-circuit?)")
	}
	full, okFull := Makespan(g, 3, 50_000_000)
	if !okFull {
		t.Fatal("full-budget search inconclusive")
	}
	if ms < full {
		t.Fatalf("inconclusive incumbent %d below true optimum %d", ms, full)
	}
}

package opt

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/listsched"
)

func TestMakespanKnownShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *dag.DAG
		m    int
		want Time
	}{
		{"empty", dag.NewBuilder(0).MustBuild(), 2, 0},
		{"singleton", dag.Singleton(7), 3, 7},
		{"chain", dag.Chain(2, 3, 4), 4, 9},
		{"independent m=2", dag.Independent(3, 3, 3, 3), 2, 6},
		{"independent m=3", dag.Independent(3, 3, 3, 3), 3, 6},
		{"independent m=4", dag.Independent(3, 3, 3, 3), 4, 3},
		{"example1 m=1", dag.Example1(), 1, 9},
		{"example1 m=2", dag.Example1(), 2, 6},
		{"example1 m=3", dag.Example1(), 3, 6},
	}
	for _, c := range cases {
		got, ok := Makespan(c.g, c.m, 0)
		if !ok {
			t.Errorf("%s: search inconclusive", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: OPT = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMakespanRejectsBigInputs(t *testing.T) {
	b := dag.NewBuilder(31)
	for i := 0; i < 31; i++ {
		b.AddJob(1)
	}
	if _, ok := Makespan(b.MustBuild(), 2, 0); ok {
		t.Error("accepted |V| > 30")
	}
	if _, ok := Makespan(dag.Singleton(1), 0, 0); ok {
		t.Error("accepted m = 0")
	}
}

func randomSmallDAG(r *rand.Rand, n int) *dag.DAG {
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(Time(1 + r.Intn(8)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

func TestOptimalNeverAboveLSAndRespectsLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		g := randomSmallDAG(r, 3+r.Intn(8))
		m := 1 + r.Intn(3)
		optMs, ok := Makespan(g, m, 0)
		if !ok {
			t.Fatalf("trial %d: inconclusive (|V|=%d m=%d)", trial, g.N(), m)
		}
		lb := listsched.MakespanLowerBound(g, m)
		if optMs < lb {
			t.Fatalf("OPT %d below lower bound %d", optMs, lb)
		}
		for _, prio := range []listsched.Priority{nil, listsched.LongestPathFirst} {
			s, err := listsched.Run(g, m, prio)
			if err != nil {
				t.Fatal(err)
			}
			if optMs > s.Makespan {
				t.Fatalf("OPT %d above LS %d", optMs, s.Makespan)
			}
			// Graham: LS ≤ (2 − 1/m)·OPT, i.e. LS·m ≤ (2m−1)·OPT.
			if s.Makespan*Time(m) > (2*Time(m)-1)*optMs {
				t.Fatalf("Lemma 1 violated: LS=%d OPT=%d m=%d", s.Makespan, optMs, m)
			}
		}
	}
}

func TestOptimalIsAnomalyFree(t *testing.T) {
	// Unlike LS, the optimal makespan is monotone under WCET reduction:
	// any schedule of the original is feasible for the reduced instance.
	an := listsched.FindAnomaly(rand.New(rand.NewSource(1)), 20_000, nil)
	if an == nil {
		t.Fatal("no anomaly instance")
	}
	before, ok1 := Makespan(an.Original, an.M, 0)
	after, ok2 := Makespan(an.Reduced, an.M, 0)
	if !ok1 || !ok2 {
		t.Fatal("inconclusive")
	}
	if after > before {
		t.Fatalf("OPT anomalous: %d → %d", before, after)
	}
	// And the anomaly means LS(reduced) > OPT(reduced).
	ls, err := listsched.Run(an.Reduced, an.M, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan <= after {
		t.Skip("this anomaly instance is LS-optimal on the reduced DAG; rare but possible")
	}
}

func TestMakespanBeatsLSWhereExpected(t *testing.T) {
	// A case where LS is strictly suboptimal: the classic trap where greedy
	// work-conservation occupies both processors with short jobs while the
	// long chain waits. Jobs: a(1)→c(4); b1(2), b2(2) independent; m=2.
	// LS (insertion order a,b1,b2,c): t0 a(P0), b1(P1); t1 a done, b2(P0);
	// t2: b1 done... c starts at min(3): makespan 1+... compute: c ready at
	// t1 but both procs busy until t2 (b1) → c at t2? P1 frees at 2 → c
	// 2..6 → makespan 6. OPT: a(P0 0-1), c(P0 1-5), b1(P1 0-2), b2(P1 2-4)
	// → 5.
	b := dag.NewBuilder(4)
	a := b.AddJob(1)
	b.AddJob(2) // b1
	b.AddJob(2) // b2
	c := b.AddJob(4)
	b.AddEdge(a, c)
	g := b.MustBuild()
	optMs, ok := Makespan(g, 2, 0)
	if !ok {
		t.Fatal("inconclusive")
	}
	if optMs != 5 {
		t.Fatalf("OPT = %d, want 5", optMs)
	}
	ls, err := listsched.Run(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan <= optMs {
		t.Logf("note: LS matched OPT here (makespan %d); trap not triggered by this list", ls.Makespan)
	}
}

func TestMinprocsOPT(t *testing.T) {
	// 4 independent jobs of 5 with window 10: OPT needs 2 processors.
	g := dag.Independent(5, 5, 5, 5)
	mu, ms, ok := MinprocsOPT(g, 10, 8, 0)
	if !ok || mu != 2 || ms != 10 {
		t.Fatalf("MinprocsOPT = %d,%d,%v; want 2,10,true", mu, ms, ok)
	}
	// Window below len: impossible.
	if _, _, ok := MinprocsOPT(dag.Chain(6, 6), 10, 8, 0); ok {
		t.Error("accepted window < len")
	}
	// Cap too small.
	if _, _, ok := MinprocsOPT(g, 10, 1, 0); ok {
		t.Error("cap=1 cannot meet window 10 for vol 20")
	}
}

func TestWidthShortCircuit(t *testing.T) {
	// m ≥ width returns len immediately (and exactly).
	g := dag.Example1()
	ms, ok := Makespan(g, g.Width(), 0)
	if !ok || ms != g.LongestChain() {
		t.Fatalf("Makespan at width = %d,%v, want len=%d", ms, ok, g.LongestChain())
	}
}

func BenchmarkMakespanBB(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := randomSmallDAG(r, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Makespan(g, 2, 0); !ok {
			b.Fatal("inconclusive")
		}
	}
}

// Package fp implements fixed-priority preemptive uniprocessor scheduling
// analysis for constrained-deadline sporadic task sets: deadline-monotonic
// (DM) priority assignment and exact response-time analysis (RTA, the
// Joseph–Pandya / Audsley recurrence).
//
// The paper's shared processors run EDF; DM is the classical alternative,
// and Baruah–Fisher-style partitioning was originally studied for both. The
// package exists for the E16 ablation: FEDCONS with DM-scheduled shared
// processors (RTA admission) versus the paper's EDF/DBF* configuration.
// DM is optimal among fixed-priority orderings for constrained deadlines
// (Leung & Whitehead), so the comparison is fixed-priority-best vs EDF.
package fp

import (
	"sort"

	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// DMOrder returns the indices of set sorted by deadline-monotonic priority:
// smaller relative deadline = higher priority, ties by smaller C then input
// order (deterministic).
func DMOrder(set []task.Sporadic) []int {
	order := make([]int, len(set))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := set[order[a]], set[order[b]]
		if ta.D != tb.D {
			return ta.D < tb.D
		}
		return ta.C < tb.C
	})
	return order
}

// ResponseTime computes the worst-case response time of the task at position
// pos in the priority order (order[0] = highest priority), by iterating
//
//	R ← C_i + Σ_{j higher priority} ⌈R / T_j⌉ · C_j
//
// to its least fixed point. ok is false if the iteration exceeds the task's
// deadline (the task is unschedulable at this priority, and for constrained
// deadlines the response time beyond D is not needed).
func ResponseTime(set []task.Sporadic, order []int, pos int) (Time, bool) {
	self := set[order[pos]]
	r := self.C
	for {
		total := self.C
		for j := 0; j < pos; j++ {
			hp := set[order[j]]
			total += ceilDiv(r, hp.T) * hp.C
		}
		if total == r {
			return r, r <= self.D
		}
		if total > self.D {
			return total, false
		}
		r = total
	}
}

func ceilDiv(a, b Time) Time { return (a + b - 1) / b }

// Feasible reports whether the task set is schedulable by preemptive
// deadline-monotonic fixed-priority scheduling on one unit-speed processor:
// every task's RTA response time is within its deadline. Exact for
// constrained-deadline sporadic tasks under the DM ordering.
func Feasible(set []task.Sporadic) bool {
	if len(set) == 0 {
		return true
	}
	for _, s := range set {
		if s.D > s.T {
			// RTA's single-busy-window recurrence is only exact for
			// constrained deadlines; reject arbitrary-deadline inputs
			// conservatively rather than answer wrongly.
			return false
		}
	}
	order := DMOrder(set)
	for pos := range order {
		if _, ok := ResponseTime(set, order, pos); !ok {
			return false
		}
	}
	return true
}

// Fits reports whether cand can join the tasks already assigned to a
// processor under DM scheduling. Unlike the EDF/DBF* admission, adding a
// task can change every response time (cand may take any priority slot), so
// the whole set is re-analyzed.
func Fits(assigned []task.Sporadic, cand task.Sporadic) bool {
	trial := make([]task.Sporadic, 0, len(assigned)+1)
	trial = append(trial, assigned...)
	trial = append(trial, cand)
	return Feasible(trial)
}

package fp

import (
	"math/rand"
	"testing"

	"fedsched/internal/dbf"
	"fedsched/internal/task"
)

func sp(c, d, t Time) task.Sporadic { return task.Sporadic{C: c, D: d, T: t} }

func TestDMOrder(t *testing.T) {
	set := []task.Sporadic{sp(3, 20, 20), sp(1, 5, 10), sp(2, 5, 8), sp(1, 12, 12)}
	order := DMOrder(set)
	// D=5 (C=1) first, then D=5 (C=2), then D=12, then D=20.
	want := []int{1, 2, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResponseTimeClassic(t *testing.T) {
	// Textbook example: τ1=(1,4,4), τ2=(2,6,6), τ3=(3,13,13).
	// R1=1; R2=1+2=3; R3: r=3 → 3+2·1+1·2=... iterate:
	// r0=3; r=3+⌈3/4⌉1+⌈3/6⌉2=3+1+2=6; r=3+⌈6/4⌉+⌈6/6⌉2=3+2+2=7;
	// r=3+⌈7/4⌉+⌈7/6⌉2=3+2+4=9; r=3+⌈9/4⌉+⌈9/6⌉2=3+3+4=10;
	// r=3+⌈10/4⌉+⌈10/6⌉2=3+3+4=10 → R3=10 ≤ 13.
	set := []task.Sporadic{sp(1, 4, 4), sp(2, 6, 6), sp(3, 13, 13)}
	order := DMOrder(set)
	wants := []Time{1, 3, 10}
	for pos, want := range wants {
		r, ok := ResponseTime(set, order, pos)
		if !ok || r != want {
			t.Errorf("pos %d: R = %d,%v, want %d,true", pos, r, ok, want)
		}
	}
	if !Feasible(set) {
		t.Error("classic set must be DM-feasible")
	}
}

func TestResponseTimeOverload(t *testing.T) {
	set := []task.Sporadic{sp(3, 5, 5), sp(3, 6, 6)}
	order := DMOrder(set)
	if _, ok := ResponseTime(set, order, 1); ok {
		t.Error("R2 = 3+3 = 6 ≤ 6... actually feasible; check construction")
	}
	// R2: r=3 → 3+⌈3/5⌉·3=6 → 3+⌈6/5⌉·3=9 > 6 → infeasible. Confirmed.
}

func TestFeasibleEmptyAndSingle(t *testing.T) {
	if !Feasible(nil) {
		t.Error("empty set must be feasible")
	}
	if !Feasible([]task.Sporadic{sp(5, 5, 9)}) {
		t.Error("single task with C ≤ D must be feasible")
	}
	if Feasible([]task.Sporadic{sp(6, 5, 9)}) {
		t.Error("C > D must be infeasible")
	}
}

func TestFeasibleRejectsArbitraryDeadlines(t *testing.T) {
	if Feasible([]task.Sporadic{sp(1, 20, 10)}) {
		t.Error("D > T must be rejected conservatively")
	}
}

func TestEDFDominatesDM(t *testing.T) {
	// EDF is optimal on one processor: anything DM schedules, EDF schedules.
	// The converse famously fails; count both directions.
	r := rand.New(rand.NewSource(81))
	dmOnly, edfOnly, both := 0, 0, 0
	for trial := 0; trial < 600; trial++ {
		n := 1 + r.Intn(4)
		set := make([]task.Sporadic, 0, n)
		for i := 0; i < n; i++ {
			tt := Time(2 + r.Intn(30))
			d := Time(1 + r.Intn(int(tt)))
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		dm := Feasible(set)
		edf := dbf.ExactFeasible(set)
		switch {
		case dm && edf:
			both++
		case dm && !edf:
			dmOnly++
		case edf && !dm:
			edfOnly++
		}
	}
	if dmOnly > 0 {
		t.Errorf("%d sets DM-feasible but EDF-infeasible — impossible (EDF optimal)", dmOnly)
	}
	if edfOnly == 0 {
		t.Error("expected some EDF-only sets (DM is not optimal)")
	}
	if both == 0 {
		t.Error("test vacuous")
	}
}

func TestFitsMatchesFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(4)
		set := make([]task.Sporadic, 0, n)
		for i := 0; i < n; i++ {
			tt := Time(2 + r.Intn(30))
			d := Time(1 + r.Intn(int(tt)))
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		cand := set[len(set)-1]
		rest := set[:len(set)-1]
		if Fits(rest, cand) != Feasible(set) {
			t.Fatalf("Fits and Feasible disagree on %v", set)
		}
	}
}

// simulateDM is a tiny reference simulator: fixed DM priorities, preemptive,
// synchronous release, periodic arrivals over one hyperperiod-ish horizon.
// Cross-validates RTA's verdicts on the critical instant (synchronous
// release is the worst case for constrained-deadline FP).
func simulateDM(set []task.Sporadic, horizon Time) bool {
	order := DMOrder(set)
	prio := make([]int, len(set)) // task → priority rank
	for rank, i := range order {
		prio[i] = rank
	}
	type job struct {
		task     int
		release  Time
		deadline Time
		rem      Time
	}
	var jobs []job
	for i, s := range set {
		for rel := Time(0); rel < horizon; rel += s.T {
			jobs = append(jobs, job{i, rel, rel + s.D, s.C})
		}
	}
	for now := Time(0); now < horizon+100; now++ {
		// pick highest-priority pending job
		best := -1
		for j := range jobs {
			if jobs[j].rem == 0 || jobs[j].release > now {
				continue
			}
			if best == -1 || prio[jobs[j].task] < prio[jobs[best].task] {
				best = j
			}
		}
		if best >= 0 {
			jobs[best].rem--
			if jobs[best].rem == 0 && now+1 > jobs[best].deadline {
				return false
			}
		}
		// missed deadline with work left?
		for j := range jobs {
			if jobs[j].rem > 0 && jobs[j].deadline <= now {
				return false
			}
		}
	}
	for j := range jobs {
		if jobs[j].rem > 0 {
			return false
		}
	}
	return true
}

func TestRTAMatchesSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	checked := 0
	for trial := 0; trial < 150; trial++ {
		n := 1 + r.Intn(3)
		set := make([]task.Sporadic, 0, n)
		for i := 0; i < n; i++ {
			tt := Time(2 + r.Intn(12))
			d := Time(1 + r.Intn(int(tt)))
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		hyper := Time(1)
		over := false
		for _, s := range set {
			hyper = lcm(hyper, s.T)
			if hyper > 5000 {
				over = true
				break
			}
		}
		if over {
			continue
		}
		checked++
		rta := Feasible(set)
		sim := simulateDM(set, hyper)
		// RTA exact ⇒ verdicts must agree (synchronous periodic arrivals are
		// the critical instant for constrained-deadline FP).
		if rta != sim {
			t.Fatalf("RTA=%v sim=%v for %v", rta, sim, set)
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous")
	}
}

func gcd(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b Time) Time { return a / gcd(a, b) * b }

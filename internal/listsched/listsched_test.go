package listsched

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
)

func randomDAG(r *rand.Rand, n int, p float64, maxW int) *dag.DAG {
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(Time(1 + r.Intn(maxW)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

func TestRunRejectsBadM(t *testing.T) {
	if _, err := Run(dag.Singleton(1), 0, nil); err == nil {
		t.Fatal("accepted m=0")
	}
}

func TestRunEmptyDAG(t *testing.T) {
	s, err := Run(dag.NewBuilder(0).MustBuild(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 0 || len(s.Intervals) != 0 {
		t.Errorf("empty schedule: %+v", s)
	}
}

func TestSingleJob(t *testing.T) {
	s, err := Run(dag.Singleton(7), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 7 {
		t.Errorf("makespan = %d, want 7", s.Makespan)
	}
	if err := s.Validate(dag.Singleton(7)); err != nil {
		t.Error(err)
	}
}

func TestChainIsSequential(t *testing.T) {
	g := dag.Chain(2, 3, 4)
	s, err := Run(g, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 9 {
		t.Errorf("chain makespan = %d, want 9 (no parallelism possible)", s.Makespan)
	}
	if err := s.Validate(g); err != nil {
		t.Error(err)
	}
}

func TestIndependentJobsPack(t *testing.T) {
	g := dag.Independent(3, 3, 3, 3)
	s, err := Run(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 6 {
		t.Errorf("makespan = %d, want 6 (two rounds of two)", s.Makespan)
	}
	s1, _ := Run(g, 4, nil)
	if s1.Makespan != 3 {
		t.Errorf("makespan on m=4 = %d, want 3", s1.Makespan)
	}
	s2, _ := Run(g, 1, nil)
	if s2.Makespan != 12 {
		t.Errorf("makespan on m=1 = %d, want 12", s2.Makespan)
	}
}

func TestExample1Makespans(t *testing.T) {
	g := dag.Example1()
	// On one processor the makespan must be vol = 9.
	s1, _ := Run(g, 1, nil)
	if s1.Makespan != 9 {
		t.Errorf("m=1 makespan = %d, want 9", s1.Makespan)
	}
	// On many processors it cannot beat len = 6.
	s8, _ := Run(g, 8, nil)
	if s8.Makespan < 6 {
		t.Errorf("m=8 makespan = %d below len=6", s8.Makespan)
	}
	// The DAG fits its deadline 16 on a single processor (9 ≤ 16).
	if s1.Makespan > dag.Example1D {
		t.Errorf("Example 1 must meet D=16 even on one processor")
	}
}

func TestWorkConservation(t *testing.T) {
	// In a work-conserving schedule, a processor is idle at time t only if
	// no job is available at t. Verify on random instances by replaying.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(r, 3+r.Intn(20), 0.25, 6)
		m := 1 + r.Intn(4)
		s, err := Run(g, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertWorkConserving(t, g, s)
	}
}

// assertWorkConserving checks that at every job start boundary, there is no
// instant where a processor idles while a job is ready-but-unstarted.
func assertWorkConserving(t *testing.T, g *dag.DAG, s *Schedule) {
	t.Helper()
	// Sample at every event time: job starts and ends.
	events := map[Time]bool{}
	for _, iv := range s.Intervals {
		events[iv.Start] = true
		events[iv.End] = true
	}
	for at := range events {
		busy := 0
		for _, iv := range s.Intervals {
			if iv.Start <= at && at < iv.End {
				busy++
			}
		}
		if busy == s.M {
			continue
		}
		// Some processor idle at `at`: no job may be available yet unstarted.
		for j := 0; j < g.N(); j++ {
			if s.Intervals[j].Start <= at {
				continue // already started
			}
			avail := true
			for _, p := range g.Predecessors(j) {
				if s.Intervals[p].End > at {
					avail = false
					break
				}
			}
			if avail {
				t.Fatalf("at t=%d: %d/%d busy but job %d available and unstarted",
					at, busy, s.M, j)
			}
		}
	}
}

func TestGrahamBoundHolds(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		g := randomDAG(r, 2+r.Intn(40), r.Float64()*0.4, 10)
		m := 1 + r.Intn(8)
		for _, prio := range []Priority{nil, LongestPathFirst, LargestWCETFirst} {
			s, err := Run(g, m, prio)
			if err != nil {
				t.Fatal(err)
			}
			if !WithinGrahamBound(s, g) {
				t.Fatalf("Graham bound violated: makespan=%d m=%d vol=%d len=%d",
					s.Makespan, m, g.Volume(), g.LongestChain())
			}
			if s.Makespan < MakespanLowerBound(g, m) {
				t.Fatalf("makespan %d below lower bound %d", s.Makespan, MakespanLowerBound(g, m))
			}
		}
	}
}

func TestLongestPathFirstNotWorseOnForkJoin(t *testing.T) {
	// On a fork-join with one long branch, critical-path priority starts the
	// long branch first and is at least as good as insertion order.
	b := dag.NewBuilder(6)
	src := b.AddJob(1)
	short1 := b.AddJob(2)
	short2 := b.AddJob(2)
	long := b.AddJob(10)
	sink := b.AddJob(1)
	b.AddEdge(src, short1)
	b.AddEdge(src, short2)
	b.AddEdge(src, long)
	b.AddEdge(short1, sink)
	b.AddEdge(short2, sink)
	b.AddEdge(long, sink)
	g := b.MustBuild()
	ins, _ := Run(g, 2, nil)
	lpf, _ := Run(g, 2, LongestPathFirst)
	if lpf.Makespan > ins.Makespan {
		t.Errorf("LPF makespan %d > insertion %d", lpf.Makespan, ins.Makespan)
	}
	if lpf.Makespan != 12 { // 1 + 10 + 1 on the critical path
		t.Errorf("LPF makespan = %d, want 12", lpf.Makespan)
	}
}

func TestMakespanMonotoneInWCETIncrease(t *testing.T) {
	// LS is anomalous under WCET *decreases*, but our deterministic LS on the
	// *same* list must never produce a makespan exceeding Graham's bound
	// after changes; also verify schedules stay valid after increases.
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(r, 3+r.Intn(15), 0.3, 5)
		v := r.Intn(g.N())
		g2, err := g.WithWCET(v, g.WCET(v)+3)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Run(g2, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Validate(g2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFindAnomalyDiscoversInstance(t *testing.T) {
	a := FindAnomaly(rand.New(rand.NewSource(1)), 20000, nil)
	if a == nil {
		t.Fatal("no anomaly found within budget — LS anomaly search broken")
	}
	// Re-verify the instance end to end.
	before, err := Run(a.Original, a.M, nil)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Run(a.Reduced, a.M, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before.Makespan != a.Before || after.Makespan != a.After {
		t.Fatalf("recorded makespans %d→%d, replay %d→%d", a.Before, a.After, before.Makespan, after.Makespan)
	}
	if a.After <= a.Before {
		t.Fatalf("not an anomaly: %d → %d", a.Before, a.After)
	}
	if a.Reduced.WCET(a.Vertex) != a.Original.WCET(a.Vertex)-1 {
		t.Error("reduced instance does not differ by exactly one tick at Vertex")
	}
}

func TestClassicAnomalyStable(t *testing.T) {
	a := ClassicAnomaly()
	if a.After <= a.Before {
		t.Fatalf("ClassicAnomaly not anomalous: %d → %d", a.Before, a.After)
	}
}

func TestByProcessorPartitionsIntervals(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(13)), 20, 0.2, 5)
	s, err := Run(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	per := s.ByProcessor()
	total := 0
	for p, ivs := range per {
		for i, iv := range ivs {
			if iv.Proc != p {
				t.Fatalf("interval on wrong processor: %+v in bucket %d", iv, p)
			}
			if i > 0 && ivs[i-1].End > iv.Start {
				t.Fatalf("processor %d intervals overlap", p)
			}
			total++
		}
	}
	if total != g.N() {
		t.Fatalf("ByProcessor lost intervals: %d of %d", total, g.N())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := dag.Chain(2, 3)
	s, _ := Run(g, 1, nil)
	// Break precedence.
	bad := *s
	bad.Intervals = append([]Interval(nil), s.Intervals...)
	bad.Intervals[1].Start = 0
	bad.Intervals[1].End = 3
	if err := bad.Validate(g); err == nil {
		t.Error("Validate accepted precedence violation")
	}
	// Wrong duration.
	bad2 := *s
	bad2.Intervals = append([]Interval(nil), s.Intervals...)
	bad2.Intervals[0].End = bad2.Intervals[0].Start + 1
	if err := bad2.Validate(g); err == nil {
		t.Error("Validate accepted wrong duration")
	}
	// Wrong makespan.
	bad3 := *s
	bad3.Makespan = 1
	if err := bad3.Validate(g); err == nil {
		t.Error("Validate accepted wrong makespan")
	}
}

func TestDeterminism(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(14)), 30, 0.2, 8)
	a, _ := Run(g, 4, LongestPathFirst)
	b, _ := Run(g, 4, LongestPathFirst)
	for i := range a.Intervals {
		if a.Intervals[i] != b.Intervals[i] {
			t.Fatal("LS is not deterministic")
		}
	}
}

func BenchmarkRunLS(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 300, 0.05, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, 8, LongestPathFirst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMakespanCollapsesToLenAtWidth(t *testing.T) {
	// On Width(G) processors no available job ever waits (running ∪ ready
	// sets are antichains), so LS achieves exactly len(G) regardless of the
	// priority list. This is the theorem MINPROCS uses to cap its scan.
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		g := randomDAG(r, 1+r.Intn(25), r.Float64()*0.4, 8)
		w := g.Width()
		for _, prio := range []Priority{nil, LongestPathFirst, LargestWCETFirst} {
			s, err := Run(g, w, prio)
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan != g.LongestChain() {
				t.Fatalf("makespan %d != len %d at m=width=%d for %s",
					s.Makespan, g.LongestChain(), w, g)
			}
			// More processors cannot help (nor hurt) beyond the width.
			s2, err := Run(g, w+3, prio)
			if err != nil {
				t.Fatal(err)
			}
			if s2.Makespan != g.LongestChain() {
				t.Fatalf("makespan %d != len beyond width", s2.Makespan)
			}
		}
	}
}

// Typed list scheduling: Graham's LS generalized to a platform with
// per-type processor budgets, after the typed federated model of Han et al.
// (improved federated scheduling of typed DAG tasks on heterogeneous
// multi-cores). Each vertex carries a processor type and may only execute on
// processors of that type; the dispatcher stays work-conserving per type —
// whenever a type-s processor is idle and a ready type-s job exists, one
// starts immediately.
//
// The analogue of Graham's bound follows from the same chain-stall argument,
// applied per type: the schedule induces some chain λ such that, whenever λ
// is stalled at a type-s vertex, every type-s processor is busy with
// non-chain work; type-s stall time is then at most (vol_s − len_s(λ))/m_s,
// where len_s(λ) is the type-s work on λ. Rearranged,
//
//	makespan ≤ Σ_s vol_s/m_s + Σ_s (1 − 1/m_s)·len_s(λ),
//
// and since λ is the schedule's chain — not necessarily a longest one — the
// a-priori bound maximizes the weighted term over all chains of G. (The
// homogeneous case hides this: with one type the weights are uniform, so the
// longest chain maximizes the term. With per-type weights it need not.)
//
// As in the homogeneous case the bound is only the a-priori guarantee: the
// certification FEDCONS relies on is the concrete witness schedule's makespan
// fitting the scheduling window.
package listsched

import (
	"fmt"

	"fedsched/internal/dag"
)

// TypedProcBase returns, for per-type budgets mtypes, the first global
// processor id of each type under the repo's type-major numbering: type 0
// owns ids [0, mtypes[0]), type 1 the next mtypes[1] ids, and so on. The
// returned slice has len(mtypes)+1 entries; the last is the total processor
// count, so type s owns [base[s], base[s+1]).
func TypedProcBase(mtypes []int) []int {
	base := make([]int, len(mtypes)+1)
	for s, m := range mtypes {
		base[s+1] = base[s] + m
	}
	return base
}

// RunTyped executes typed list scheduling of g on a platform with mtypes[s]
// processors of type s, using the given priority (nil means InsertionOrder).
// Processor ids in the returned schedule are local and type-major: type 0
// owns ids [0, mtypes[0]), type 1 the next mtypes[1], … (see TypedProcBase).
// Within each type the free-processor pop order is ascending, matching Run,
// so RunTyped(g, []int{m}, prio) on an untyped graph reproduces
// Run(g, m, prio) exactly.
func RunTyped(g *dag.DAG, mtypes []int, prio Priority) (*Schedule, error) {
	if len(mtypes) == 0 {
		return nil, fmt.Errorf("listsched: no processor types")
	}
	if g.NumTypes() > len(mtypes) {
		return nil, fmt.Errorf("listsched: graph uses %d types, platform has %d", g.NumTypes(), len(mtypes))
	}
	total := 0
	for s, m := range mtypes {
		if m < 0 {
			return nil, fmt.Errorf("listsched: type %d has negative budget %d", s, m)
		}
		total += m
	}
	for s, need := range g.CountByType() {
		if need > 0 && mtypes[s] == 0 {
			return nil, fmt.Errorf("listsched: graph needs type-%d processors, budget is 0", s)
		}
	}
	if prio == nil {
		prio = InsertionOrder
	}
	n := g.N()
	s := &Schedule{M: total, MTypes: append([]int(nil), mtypes...), Intervals: make([]Interval, n)}
	if n == 0 {
		return s, nil
	}
	pv := prio(g)
	if len(pv) != n {
		return nil, fmt.Errorf("listsched: priority returned %d values for %d jobs", len(pv), n)
	}

	base := TypedProcBase(mtypes)
	pending := make([]int, n)
	ready := &jobHeap{prio: pv}
	for v := 0; v < n; v++ {
		pending[v] = g.InDegree(v)
		if pending[v] == 0 {
			ready.push(v)
		}
	}

	running := &runHeap{}
	// One idle-processor stack per type, each popping in ascending id order
	// exactly like Run's single stack.
	free := make([][]int, len(mtypes))
	for st, m := range mtypes {
		free[st] = make([]int, m)
		for p := 0; p < m; p++ {
			free[st][p] = base[st] + m - 1 - p
		}
	}
	idle := total

	var blocked []int // ready jobs whose type had no free processor this round
	now := Time(0)
	scheduled := 0
	for scheduled < n || running.len() > 0 {
		// Dispatch: scan the ready heap in priority order, starting every job
		// whose type has a free processor; jobs of saturated types go back on
		// the heap afterwards so lower-priority jobs of other types still run
		// (work conservation is per type).
		blocked = blocked[:0]
		for idle > 0 && ready.len() > 0 {
			v := ready.pop()
			st := g.TypeOf(v)
			fp := free[st]
			if len(fp) == 0 {
				blocked = append(blocked, v)
				continue
			}
			p := fp[len(fp)-1]
			free[st] = fp[:len(fp)-1]
			idle--
			end := now + g.WCET(v)
			s.Intervals[v] = Interval{Job: v, Proc: p, Start: now, End: end}
			running.push(runEntry{finish: end, job: v, proc: p})
			scheduled++
		}
		for _, v := range blocked {
			ready.push(v)
		}
		if running.len() == 0 {
			return nil, fmt.Errorf("listsched: stalled with %d/%d jobs scheduled", scheduled, n)
		}
		now = running.peek().finish
		for running.len() > 0 && running.peek().finish == now {
			e := running.pop()
			st := g.TypeOf(e.job)
			free[st] = append(free[st], e.proc)
			idle++
			for _, w := range g.Successors(e.job) {
				pending[w]--
				if pending[w] == 0 {
					ready.push(w)
				}
			}
		}
		if now > s.Makespan {
			s.Makespan = now
		}
	}
	return s, nil
}

// ChainWorkByType returns the per-type work along one critical path of g
// (the path CriticalPath picks deterministically), padded to ntypes entries.
// MINPROCS' residual heuristic uses it; the typed bound does not (the
// binding chain under per-type weights need not be a longest one — see
// weightedChainScaled).
func ChainWorkByType(g *dag.DAG, ntypes int) []Time {
	lens := make([]Time, ntypes)
	path, _ := g.CriticalPath()
	for _, v := range path {
		lens[g.TypeOf(v)] += g.WCET(v)
	}
	return lens
}

// weightedChainScaled returns max over all chains λ of Σ_v∈λ wfac[type(v)]·WCET(v)
// by the usual topological-order dynamic program. Vertices whose type has no
// wfac entry weigh scale (they can never be absorbed by parallelism).
func weightedChainScaled(g *dag.DAG, wfac []Time, scale Time) Time {
	dp := make([]Time, g.N())
	var best Time
	for _, v := range g.TopologicalOrder() {
		f := Time(0)
		for _, p := range g.Predecessors(v) {
			if dp[p] > f {
				f = dp[p]
			}
		}
		w := scale
		if s := g.TypeOf(v); s < len(wfac) {
			w = wfac[s]
		}
		dp[v] = f + g.WCET(v)*w
		if dp[v] > best {
			best = dp[v]
		}
	}
	return best
}

// TypedBoundScaled returns the typed Graham bound
//
//	Σ_s vol_s/m_s + max_λ Σ_s (1 − 1/m_s)·len_s(λ)
//
// as an exact value scaled by P = Π_{s: m_s>0} m_s; the caller compares
// makespan·P ≤ TypedBoundScaled. Types with a zero budget contribute no
// term (a schedulable graph has no work of such a type).
func TypedBoundScaled(g *dag.DAG, mtypes []int) (bound Time, scale Time) {
	scale = 1
	for _, m := range mtypes {
		if m > 0 {
			scale *= Time(m)
		}
	}
	// Per-vertex chain weight, scaled: type-s work counts (1 − 1/m_s)·P.
	wfac := make([]Time, len(mtypes))
	for s, m := range mtypes {
		if m > 0 {
			wfac[s] = scale - scale/Time(m)
		} else {
			wfac[s] = scale
		}
	}
	bound = weightedChainScaled(g, wfac, scale)
	vols := g.VolumeByType()
	for s, m := range mtypes {
		if s < len(vols) && m > 0 {
			bound += vols[s] * (scale / Time(m))
		}
	}
	return bound, scale
}

// TypedBound returns the typed Graham bound as a float64, the human-facing
// rendering used by decision traces (exact comparisons use
// TypedBoundScaled).
func TypedBound(g *dag.DAG, mtypes []int) float64 {
	bound, scale := TypedBoundScaled(g, mtypes)
	return float64(bound) / float64(scale)
}

// WithinTypedBound reports whether the typed schedule's makespan respects
// the typed Graham bound for graph g.
func WithinTypedBound(s *Schedule, g *dag.DAG) bool {
	bound, scale := TypedBoundScaled(g, s.MTypes)
	return s.Makespan*scale <= bound
}

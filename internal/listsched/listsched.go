// Package listsched implements Graham's List Scheduling (LS) algorithm for
// precedence-constrained jobs on m identical processors, as used by the
// paper's MINPROCS procedure (Fig. 3) to construct the template schedule σ_i
// of a high-density task's dag-job.
//
// LS constructs a work-conserving schedule: whenever a processor is idle and
// a job is available (all predecessors complete), some available job starts
// on it immediately. Ties are broken by a caller-chosen priority order (the
// "list"). Graham's bound guarantees the resulting makespan satisfies
//
//	makespan ≤ len(G) + (vol(G) − len(G)) / m,
//
// which is within a factor (2 − 1/m) of the optimal makespan — the speedup of
// Lemma 1 in the paper.
//
// The schedule produced is a fixed table of (job, processor, start, end)
// entries. Footnote 2 of the paper explains why the table — and not a re-run
// of LS — must drive the run-time dispatcher: LS is subject to Graham's
// timing anomalies (reducing a job's execution time can increase the
// makespan), so jobs completing early must leave their processor idle until
// the next tabulated start time. Package sim implements that replay.
package listsched

import (
	"fmt"
	"sort"

	"fedsched/internal/dag"
)

// Time is re-exported for convenience.
type Time = dag.Time

// Interval is one scheduled job: job runs on processor Proc during
// [Start, End), with End − Start equal to the job's WCET.
type Interval struct {
	Job   int
	Proc  int
	Start Time
	End   Time
}

// Schedule is a complete non-preemptive schedule of one dag-job on M
// processors. Intervals is indexed by job (vertex) id.
//
// MTypes, set only by RunTyped, records the per-type processor budgets of a
// typed schedule (Σ MTypes = M) under the type-major local numbering of
// TypedProcBase. It is omitted from JSON when absent, so schedules produced
// by Run keep their pre-typed wire bytes.
type Schedule struct {
	M         int
	MTypes    []int `json:",omitempty"`
	Intervals []Interval
	Makespan  Time
}

// ByProcessor groups the schedule's intervals per processor, each sorted by
// start time. Useful for rendering and for the run-time replay.
func (s *Schedule) ByProcessor() [][]Interval {
	out := make([][]Interval, s.M)
	for _, iv := range s.Intervals {
		out[iv.Proc] = append(out[iv.Proc], iv)
	}
	for p := range out {
		sort.Slice(out[p], func(i, j int) bool { return out[p][i].Start < out[p][j].Start })
	}
	return out
}

// Validate checks that the schedule is a correct execution of g: every job
// scheduled exactly once for exactly its WCET, processors never double-
// booked, every precedence constraint respected, and Makespan consistent.
func (s *Schedule) Validate(g *dag.DAG) error {
	if len(s.Intervals) != g.N() {
		return fmt.Errorf("listsched: %d intervals for %d jobs", len(s.Intervals), g.N())
	}
	var makespan Time
	for j, iv := range s.Intervals {
		if iv.Job != j {
			return fmt.Errorf("listsched: interval %d records job %d", j, iv.Job)
		}
		if iv.Proc < 0 || iv.Proc >= s.M {
			return fmt.Errorf("listsched: job %d on processor %d of %d", j, iv.Proc, s.M)
		}
		if iv.End-iv.Start != g.WCET(j) {
			return fmt.Errorf("listsched: job %d runs %d ticks, WCET %d", j, iv.End-iv.Start, g.WCET(j))
		}
		if iv.Start < 0 {
			return fmt.Errorf("listsched: job %d starts at %d", j, iv.Start)
		}
		if iv.End > makespan {
			makespan = iv.End
		}
	}
	if makespan != s.Makespan {
		return fmt.Errorf("listsched: recorded makespan %d, actual %d", s.Makespan, makespan)
	}
	for _, per := range s.ByProcessor() {
		for i := 1; i < len(per); i++ {
			if per[i].Start < per[i-1].End {
				return fmt.Errorf("listsched: processor %d overlap: %v then %v", per[i].Proc, per[i-1], per[i])
			}
		}
	}
	for _, e := range g.Edges() {
		if s.Intervals[e[1]].Start < s.Intervals[e[0]].End {
			return fmt.Errorf("listsched: precedence (%d→%d) violated: succ starts %d before pred ends %d",
				e[0], e[1], s.Intervals[e[1]].Start, s.Intervals[e[0]].End)
		}
	}
	if len(s.MTypes) > 0 {
		total := 0
		for st, m := range s.MTypes {
			if m < 0 {
				return fmt.Errorf("listsched: type %d has negative budget %d", st, m)
			}
			total += m
		}
		if total != s.M {
			return fmt.Errorf("listsched: type budgets sum to %d, M=%d", total, s.M)
		}
		if g.NumTypes() > len(s.MTypes) {
			return fmt.Errorf("listsched: graph uses %d types, schedule declares %d", g.NumTypes(), len(s.MTypes))
		}
		base := TypedProcBase(s.MTypes)
		for j, iv := range s.Intervals {
			st := g.TypeOf(j)
			if iv.Proc < base[st] || iv.Proc >= base[st+1] {
				return fmt.Errorf("listsched: job %d requires type %d but runs on processor %d (type block [%d,%d))",
					j, st, iv.Proc, base[st], base[st+1])
			}
		}
	}
	return nil
}

// Priority assigns each job a priority used to order the ready list; lower
// values are dispatched first. Ties break by job index for determinism.
type Priority func(g *dag.DAG) []int64

// InsertionOrder prioritizes jobs by vertex index — the "arbitrary list" of
// Graham's original formulation.
func InsertionOrder(g *dag.DAG) []int64 {
	p := make([]int64, g.N())
	for i := range p {
		p[i] = int64(i)
	}
	return p
}

// LongestPathFirst prioritizes jobs by decreasing downward rank: the length
// of the longest chain starting at the job (inclusive). This is the
// critical-path heuristic; it keeps Graham's worst-case bound and typically
// shortens makespans.
func LongestPathFirst(g *dag.DAG) []int64 {
	n := g.N()
	rank := make([]Time, n)
	order := g.TopologicalOrder()
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		var best Time
		for _, w := range g.Successors(v) {
			if rank[w] > best {
				best = rank[w]
			}
		}
		rank[v] = best + g.WCET(v)
	}
	p := make([]int64, n)
	for v := 0; v < n; v++ {
		p[v] = -int64(rank[v]) // larger rank → smaller priority value → first
	}
	return p
}

// LargestWCETFirst prioritizes jobs by decreasing WCET (the LPT rule applied
// to the ready list).
func LargestWCETFirst(g *dag.DAG) []int64 {
	p := make([]int64, g.N())
	for v := range p {
		p[v] = -int64(g.WCET(v))
	}
	return p
}

// Run executes Graham's LS on g with m processors using the given priority
// (nil means InsertionOrder) and returns the constructed schedule.
// It runs in O(|V| log |V| + |E|).
func Run(g *dag.DAG, m int, prio Priority) (*Schedule, error) {
	if m < 1 {
		return nil, fmt.Errorf("listsched: m must be ≥ 1, got %d", m)
	}
	if prio == nil {
		prio = InsertionOrder
	}
	n := g.N()
	s := &Schedule{M: m, Intervals: make([]Interval, n)}
	if n == 0 {
		return s, nil
	}
	pv := prio(g)
	if len(pv) != n {
		return nil, fmt.Errorf("listsched: priority returned %d values for %d jobs", len(pv), n)
	}

	pending := make([]int, n) // unfinished predecessor count
	ready := &jobHeap{prio: pv}
	for v := 0; v < n; v++ {
		pending[v] = g.InDegree(v)
		if pending[v] == 0 {
			ready.push(v)
		}
	}

	// running is a min-heap of (finish time, job, proc).
	running := &runHeap{}
	freeProcs := make([]int, m) // stack of idle processor ids
	for p := 0; p < m; p++ {
		freeProcs[p] = m - 1 - p // pop order 0,1,2,... for determinism
	}

	now := Time(0)
	scheduled := 0
	for scheduled < n || running.len() > 0 {
		// Dispatch: fill free processors from the ready heap.
		for len(freeProcs) > 0 && ready.len() > 0 {
			v := ready.pop()
			p := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			end := now + g.WCET(v)
			s.Intervals[v] = Interval{Job: v, Proc: p, Start: now, End: end}
			running.push(runEntry{finish: end, job: v, proc: p})
			scheduled++
		}
		if running.len() == 0 {
			// No job running and nothing ready ⇒ the graph had a cycle;
			// DAG invariant makes this unreachable.
			return nil, fmt.Errorf("listsched: stalled with %d/%d jobs scheduled", scheduled, n)
		}
		// Advance to the next completion; release all jobs finishing then.
		now = running.peek().finish
		for running.len() > 0 && running.peek().finish == now {
			e := running.pop()
			freeProcs = append(freeProcs, e.proc)
			for _, w := range g.Successors(e.job) {
				pending[w]--
				if pending[w] == 0 {
					ready.push(w)
				}
			}
		}
		if now > s.Makespan {
			s.Makespan = now
		}
	}
	return s, nil
}

// MakespanLowerBound returns the trivial lower bound on the optimal makespan
// of g on m processors: max(len(G), ⌈vol(G)/m⌉).
func MakespanLowerBound(g *dag.DAG, m int) Time {
	vol, l := g.Volume(), g.LongestChain()
	per := (vol + Time(m) - 1) / Time(m)
	if l > per {
		return l
	}
	return per
}

// GrahamBound returns Graham's upper bound on the LS makespan of g on m
// processors: len(G) + (vol(G) − len(G))/m, as an exact real value reported
// in 1/m-ticks — the caller compares makespan·m ≤ GrahamBoundScaled.
func GrahamBoundScaled(g *dag.DAG, m int) Time {
	vol, l := g.Volume(), g.LongestChain()
	return l*Time(m) + (vol - l)
}

// GrahamBound returns Graham's bound len + (vol − len)/m as a float64, the
// human-facing rendering used by decision traces and `fedsched -explain`
// (the exact comparisons use GrahamBoundScaled).
func GrahamBound(g *dag.DAG, m int) float64 {
	vol, l := g.Volume(), g.LongestChain()
	return float64(l) + float64(vol-l)/float64(m)
}

// WithinGrahamBound reports whether the schedule's makespan respects
// Graham's bound for graph g (it always must; exposed for tests and the E3
// experiment).
func WithinGrahamBound(s *Schedule, g *dag.DAG) bool {
	return s.Makespan*Time(s.M) <= GrahamBoundScaled(g, s.M)
}

// jobHeap is a min-heap of jobs ordered by (priority, id).
type jobHeap struct {
	prio []int64
	a    []int
}

func (h *jobHeap) len() int { return len(h.a) }

func (h *jobHeap) less(x, y int) bool {
	if h.prio[x] != h.prio[y] {
		return h.prio[x] < h.prio[y]
	}
	return x < y
}

func (h *jobHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.a[i], h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *jobHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(h.a[l], h.a[s]) {
			s = l
		}
		if r < last && h.less(h.a[r], h.a[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

type runEntry struct {
	finish Time
	job    int
	proc   int
}

// runHeap is a min-heap of running jobs by (finish, job).
type runHeap struct{ a []runEntry }

func (h *runHeap) len() int       { return len(h.a) }
func (h *runHeap) peek() runEntry { return h.a[0] }
func (h *runHeap) less(x, y int) bool {
	if h.a[x].finish != h.a[y].finish {
		return h.a[x].finish < h.a[y].finish
	}
	return h.a[x].job < h.a[y].job
}

func (h *runHeap) push(e runEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *runHeap) pop() runEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < last && h.less(l, s) {
			s = l
		}
		if r < last && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

package listsched

import (
	"math/rand"

	"fedsched/internal/dag"
)

// Anomaly records one instance of Graham's timing anomaly: on the same m
// processors, Reduced — obtained from Original by lowering one vertex's
// WCET — has a strictly larger LS makespan.
//
// The paper's footnote 2 cites exactly this phenomenon as the reason FEDCONS
// replays the template schedule σ_i as a lookup table instead of re-running
// LS online when jobs finish early.
type Anomaly struct {
	Original *dag.DAG
	Reduced  *dag.DAG
	Vertex   int  // the vertex whose WCET was reduced
	M        int  // processor count exhibiting the anomaly
	Before   Time // LS makespan of Original
	After    Time // LS makespan of Reduced (strictly larger)
}

// FindAnomaly searches random DAGs for a timing anomaly under LS with the
// given priority (nil = InsertionOrder). It returns the first instance found
// within the trial budget, or nil. The search is deterministic for a given
// source.
func FindAnomaly(r *rand.Rand, trials int, prio Priority) *Anomaly {
	for trial := 0; trial < trials; trial++ {
		n := 4 + r.Intn(10)
		m := 2 + r.Intn(3)
		b := dag.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddJob(Time(1 + r.Intn(8)))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.MustBuild()
		before, err := Run(g, m, prio)
		if err != nil {
			continue
		}
		for v := 0; v < n; v++ {
			if g.WCET(v) <= 1 {
				continue
			}
			reduced, err := g.WithWCET(v, g.WCET(v)-1)
			if err != nil {
				continue
			}
			after, err := Run(reduced, m, prio)
			if err != nil {
				continue
			}
			if after.Makespan > before.Makespan {
				return &Anomaly{
					Original: g, Reduced: reduced, Vertex: v, M: m,
					Before: before.Makespan, After: after.Makespan,
				}
			}
		}
	}
	return nil
}

// ClassicAnomaly returns Graham's canonical 1969 anomaly construction on
// m = 3 processors with 9 jobs. With the insertion-order list, reducing every
// execution time by one unit increases the LS makespan from 12 to 13.
//
// Jobs (1-indexed in Graham's paper, 0-indexed here) with WCETs
// {3, 2, 2, 2, 4, 4, 4, 4, 9} and precedence
// 0→8, 1→4, 1→5, 3→5, 3→6? — Graham's exact figure varies by edition, so
// this constructor instead returns a seed-stable instance discovered by
// FindAnomaly, which is verified (by construction and by tests) to exhibit
// the anomaly under this package's deterministic LS.
func ClassicAnomaly() *Anomaly {
	a := FindAnomaly(rand.New(rand.NewSource(classicAnomalySeed)), 20000, nil)
	if a == nil {
		panic("listsched: classic anomaly seed no longer yields an instance")
	}
	return a
}

// classicAnomalySeed is fixed so ClassicAnomaly is reproducible; tests pin
// the resulting makespans.
const classicAnomalySeed = 1

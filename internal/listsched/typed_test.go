package listsched

import (
	"math/rand"
	"testing"

	"fedsched/internal/dag"
)

// randomTypedDAG is randomDAG with each vertex independently pinned to type b
// with probability pb.
func randomTypedDAG(r *rand.Rand, n int, p, pb float64, maxW int) *dag.DAG {
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		ty := 0
		if r.Float64() < pb {
			ty = 1
		}
		b.AddTypedVertex("", Time(1+r.Intn(maxW)), ty)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// retypeSwapped rebuilds g with the type labels a and b exchanged.
func retypeSwapped(g *dag.DAG) *dag.DAG {
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), 1-g.TypeOf(v))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func TestTypedProcBase(t *testing.T) {
	base := TypedProcBase([]int{3, 0, 2})
	want := []int{0, 3, 3, 5}
	if len(base) != len(want) {
		t.Fatalf("base = %v, want %v", base, want)
	}
	for i := range want {
		if base[i] != want[i] {
			t.Fatalf("base = %v, want %v", base, want)
		}
	}
}

func TestRunTypedRejections(t *testing.T) {
	g := randomTypedDAG(rand.New(rand.NewSource(1)), 6, 0.3, 0.5, 5)
	cases := []struct {
		name   string
		mtypes []int
	}{
		{"no types", nil},
		{"fewer types than graph", []int{4}},
		{"negative budget", []int{4, -1}},
		{"needed type budget zero", []int{4, 0}},
	}
	for _, tc := range cases {
		if _, err := RunTyped(g, tc.mtypes, nil); err == nil {
			t.Errorf("%s: RunTyped accepted mtypes %v", tc.name, tc.mtypes)
		}
	}
}

// TestRunTypedSingleTypeMatchesRun: on a single-type platform with an untyped
// graph, RunTyped must reproduce Run interval-for-interval — the engine-level
// half of the degenerate-platform byte-identity pin.
func TestRunTypedSingleTypeMatchesRun(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	prios := []Priority{nil, LongestPathFirst, LargestWCETFirst}
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(r, 1+r.Intn(20), 0.25, 6)
		m := 1 + r.Intn(5)
		prio := prios[trial%len(prios)]
		want, err := Run(g, m, prio)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunTyped(g, []int{m}, prio)
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan != want.Makespan || got.M != want.M {
			t.Fatalf("trial %d: makespan %d/%d vs %d/%d", trial, got.Makespan, got.M, want.Makespan, want.M)
		}
		for v := range want.Intervals {
			if got.Intervals[v] != want.Intervals[v] {
				t.Fatalf("trial %d vertex %d: %+v vs %+v", trial, v, got.Intervals[v], want.Intervals[v])
			}
		}
	}
}

// TestRunTypedRespectsTypeBlocks: every vertex runs inside its type's
// type-major processor block, Validate agrees, and the typed Graham bound
// holds on the witness.
func TestRunTypedRespectsTypeBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		g := randomTypedDAG(r, 1+r.Intn(20), 0.25, 0.4, 6)
		mtypes := []int{1 + r.Intn(4), 1 + r.Intn(4)}
		s, err := RunTyped(g, mtypes, nil)
		if err != nil {
			t.Fatal(err)
		}
		base := TypedProcBase(mtypes)
		for v := 0; v < g.N(); v++ {
			st := g.TypeOf(v)
			p := s.Intervals[v].Proc
			if p < base[st] || p >= base[st+1] {
				t.Fatalf("trial %d: type-%d vertex %d on processor %d, block [%d,%d)",
					trial, st, v, p, base[st], base[st+1])
			}
		}
		if err := s.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !WithinTypedBound(s, g) {
			t.Fatalf("trial %d: makespan %d violates typed Graham bound %v on mtypes %v",
				trial, s.Makespan, TypedBound(g, mtypes), mtypes)
		}
	}
}

// TestRunTypedSwapMirror: exchanging type labels on every vertex and
// exchanging the per-type budgets yields the mirrored schedule — same
// makespan, every vertex's processor reflected into the other type's block.
func TestRunTypedSwapMirror(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		g := randomTypedDAG(r, 1+r.Intn(16), 0.25, 0.4, 6)
		mtypes := []int{1 + r.Intn(4), 1 + r.Intn(4)}
		swapped := []int{mtypes[1], mtypes[0]}
		s, err := RunTyped(g, mtypes, nil)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := RunTyped(retypeSwapped(g), swapped, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sm.Makespan != s.Makespan {
			t.Fatalf("trial %d: makespan %d under swap, %d originally", trial, sm.Makespan, s.Makespan)
		}
		for v := 0; v < g.N(); v++ {
			a, b := s.Intervals[v], sm.Intervals[v]
			if a.Start != b.Start || a.End != b.End {
				t.Fatalf("trial %d vertex %d: interval (%d,%d) vs (%d,%d) under swap",
					trial, v, a.Start, a.End, b.Start, b.End)
			}
			// Reflect the processor id: offset within its block is preserved,
			// the block moves to the other type's base.
			base, sbase := TypedProcBase(mtypes), TypedProcBase(swapped)
			st := g.TypeOf(v)
			if b.Proc-sbase[1-st] != a.Proc-base[st] {
				t.Fatalf("trial %d vertex %d: proc %d vs %d not mirrored", trial, v, a.Proc, b.Proc)
			}
		}
	}
}

// TestRunTypedWorkConservingPerType: typed list scheduling is
// work-conserving per type — whenever a type's processor idles, no ready
// unstarted job of that type exists.
func TestRunTypedWorkConservingPerType(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		g := randomTypedDAG(r, 3+r.Intn(16), 0.25, 0.4, 6)
		mtypes := []int{1 + r.Intn(3), 1 + r.Intn(3)}
		s, err := RunTyped(g, mtypes, nil)
		if err != nil {
			t.Fatal(err)
		}
		events := map[Time]bool{}
		for _, iv := range s.Intervals {
			events[iv.Start] = true
			events[iv.End] = true
		}
		base := TypedProcBase(mtypes)
		for at := range events {
			busy := make([]int, len(mtypes))
			for v, iv := range s.Intervals {
				if iv.Start <= at && at < iv.End {
					busy[g.TypeOf(v)]++
				}
			}
			for j := 0; j < g.N(); j++ {
				st := g.TypeOf(j)
				if busy[st] == base[st+1]-base[st] || s.Intervals[j].Start <= at {
					continue
				}
				avail := true
				for _, p := range g.Predecessors(j) {
					if s.Intervals[p].End > at {
						avail = false
						break
					}
				}
				if avail {
					t.Fatalf("trial %d at t=%d: %d/%d type-%d procs busy but job %d available and unstarted",
						trial, at, busy[st], base[st+1]-base[st], st, j)
				}
			}
		}
	}
}

// TestValidateTypedRejections: typed Validate refuses budget/type
// inconsistencies and wrong-block placements.
func TestValidateTypedRejections(t *testing.T) {
	g := randomTypedDAG(rand.New(rand.NewSource(25)), 8, 0.3, 0.5, 5)
	mtypes := []int{3, 3}
	s, err := RunTyped(g, mtypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, f func(c *Schedule)) {
		t.Helper()
		c := &Schedule{M: s.M, MTypes: append([]int(nil), s.MTypes...), Makespan: s.Makespan,
			Intervals: append([]Interval(nil), s.Intervals...)}
		f(c)
		if err := c.Validate(g); err == nil {
			t.Errorf("%s: Validate accepted the corrupted schedule", name)
		}
	}
	corrupt("budget sum mismatch", func(c *Schedule) { c.MTypes = []int{3, 2} })
	corrupt("negative budget", func(c *Schedule) { c.MTypes = []int{7, -1} })
	corrupt("fewer types than graph", func(c *Schedule) { c.MTypes = []int{6} })
	corrupt("vertex outside its type block", func(c *Schedule) {
		// Move some vertex into the other type's block.
		base := TypedProcBase(c.MTypes)
		for v := 0; v < g.N(); v++ {
			st := g.TypeOf(v)
			other := 1 - st
			if base[other+1] > base[other] {
				iv := c.Intervals[v]
				iv.Proc = base[other]
				c.Intervals[v] = iv
				return
			}
		}
	})
}

package trace

import (
	"fmt"
	"sort"
)

// CheckGlobalEDF validates the global-EDF rule on an m-processor trace:
// whenever a job is available (its dag-job released and all predecessors
// complete) with remaining demand but not executing, every one of the m
// processors must be executing a job with no later absolute deadline.
// Equivalently: no pending job ever outranks a running one while any
// processor idles or runs lower-priority work.
//
// The check samples every event instant (slice boundaries and availability
// times); schedulers that reshuffle only at events — like sim.GlobalEDF —
// are validated exactly.
func (t *Trace) CheckGlobalEDF(m int, cons []Precedence) error {
	if m < 1 {
		return fmt.Errorf("trace: m must be ≥ 1")
	}
	info := make(map[JobID]JobInfo, len(t.Jobs))
	for _, ji := range t.Jobs {
		info[ji.ID] = ji
	}
	done := t.CompletionTimes()

	// Availability: release, pushed later by predecessor completions.
	avail := make(map[JobID]Time, len(t.Jobs))
	for _, ji := range t.Jobs {
		avail[ji.ID] = ji.Release
	}
	for _, c := range cons {
		for id := range info {
			if id.Task != c.Task || id.Vertex != c.To {
				continue
			}
			pred := JobID{Task: c.Task, Inst: id.Inst, Vertex: c.From}
			if pd, ok := done[pred]; ok && pd > avail[id] {
				avail[id] = pd
			}
		}
	}

	// Event instants.
	eventSet := make(map[Time]bool)
	for _, s := range t.Slices {
		eventSet[s.Start] = true
		eventSet[s.End] = true
	}
	for _, a := range avail {
		eventSet[a] = true
	}
	events := make([]Time, 0, len(eventSet))
	for e := range eventSet {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	// Precompute per-job sorted slices for executed-before queries.
	byJob := make(map[JobID][]Slice)
	for _, s := range t.Slices {
		byJob[s.Job] = append(byJob[s.Job], s)
	}
	for id := range byJob {
		ss := byJob[id]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		byJob[id] = ss
	}
	executedBefore := func(id JobID, at Time) Time {
		var got Time
		for _, s := range byJob[id] {
			if s.End <= at {
				got += s.End - s.Start
			} else if s.Start < at {
				got += at - s.Start
			}
		}
		return got
	}
	runningAt := func(id JobID, at Time) bool {
		for _, s := range byJob[id] {
			if s.Start <= at && at < s.End {
				return true
			}
		}
		return false
	}

	if len(events) > 0 {
		// The final event is the end of all execution; nothing to check there.
		events = events[:len(events)-1]
	}
	for _, at := range events {
		// Partition jobs into running and pending at `at`.
		var running []JobInfo
		var pending []JobInfo
		for id, ji := range info {
			if runningAt(id, at) {
				running = append(running, ji)
				continue
			}
			if avail[id] <= at && executedBefore(id, at) < ji.Demand {
				pending = append(pending, ji)
			}
		}
		if len(pending) == 0 {
			continue
		}
		// Highest-priority pending job.
		best := pending[0]
		for _, p := range pending[1:] {
			if p.Deadline < best.Deadline {
				best = p
			}
		}
		if len(running) < m {
			return fmt.Errorf("trace: global EDF violated at t=%d: %v pending while %d/%d processors busy",
				at, best.ID, len(running), m)
		}
		for _, r := range running {
			if r.Deadline > best.Deadline {
				return fmt.Errorf("trace: global EDF violated at t=%d: %v (d=%d) pending while %v (d=%d) runs",
					at, best.ID, best.Deadline, r.ID, r.Deadline)
			}
		}
	}
	return nil
}

// Package trace records and audits execution traces of the run-time
// simulators: which job ran on which processor during which interval, plus
// release and completion events.
//
// A trace is the ground truth the analysis promises something about; the
// package's checkers re-derive the promised properties from the raw
// intervals instead of trusting the simulator:
//
//   - Check validates the platform rules: a processor executes at most one
//     job at a time, a job executes on at most one processor at a time (no
//     intra-job parallelism), execution happens only between release and
//     completion, and every job receives exactly its recorded demand.
//   - CheckPrecedence validates DAG precedence between jobs of one dag-job.
//   - CheckEDF validates the EDF priority rule on a single processor: at no
//     instant does a job run while another pending job has an earlier
//     absolute deadline.
//   - Gantt renders a per-processor ASCII time chart for inspection.
//
// The sim package emits traces when a Recorder is attached to its Config
// counterpart (see sim.TracedUniprocEDF); tests feed adversarial traces to
// the checkers directly.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Time mirrors the simulator's tick type.
type Time = int64

// JobID identifies one vertex job of one dag-job instance of one task.
type JobID struct {
	Task   int // input-system task index
	Inst   int // dag-job instance number
	Vertex int // vertex within the DAG (0 for collapsed sequential jobs)
}

// String renders the id as task/instance/vertex.
func (j JobID) String() string { return fmt.Sprintf("T%d.J%d.v%d", j.Task, j.Inst, j.Vertex) }

// Slice is one contiguous execution interval of one job on one processor.
type Slice struct {
	Job   JobID
	Proc  int
	Start Time
	End   Time
}

// JobInfo carries the per-job metadata the checkers validate against.
type JobInfo struct {
	ID       JobID
	Release  Time
	Deadline Time // absolute
	Demand   Time // total execution the job must receive
}

// Trace is a complete record of one simulation.
type Trace struct {
	Procs  int
	Slices []Slice
	Jobs   []JobInfo
}

// Recorder accumulates slices with automatic merging of back-to-back
// execution of the same job on the same processor.
type Recorder struct {
	tr Trace
}

// NewRecorder returns a Recorder for a platform with procs processors.
func NewRecorder(procs int) *Recorder {
	return &Recorder{tr: Trace{Procs: procs}}
}

// Job registers a job's metadata.
func (r *Recorder) Job(info JobInfo) { r.tr.Jobs = append(r.tr.Jobs, info) }

// Run records execution of job on proc during [start, end). Zero-length
// slices are ignored; adjacent slices of the same job/processor merge.
func (r *Recorder) Run(job JobID, proc int, start, end Time) {
	if end <= start {
		return
	}
	if n := len(r.tr.Slices); n > 0 {
		last := &r.tr.Slices[n-1]
		if last.Job == job && last.Proc == proc && last.End == start {
			last.End = end
			return
		}
	}
	r.tr.Slices = append(r.tr.Slices, Slice{Job: job, Proc: proc, Start: start, End: end})
}

// Trace returns the accumulated trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Check validates the platform rules (see package comment). It runs in
// O(S log S) for S slices.
func (t *Trace) Check() error {
	// Per-processor non-overlap.
	byProc := make(map[int][]Slice)
	for _, s := range t.Slices {
		if s.Proc < 0 || s.Proc >= t.Procs {
			return fmt.Errorf("trace: slice %v on processor %d of %d", s, s.Proc, t.Procs)
		}
		if s.End <= s.Start {
			return fmt.Errorf("trace: empty slice %v", s)
		}
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	for p, ss := range byProc {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End {
				return fmt.Errorf("trace: processor %d overlap: %v then %v", p, ss[i-1], ss[i])
			}
		}
	}
	// Per-job: no parallel self-execution, window containment, exact demand.
	byJob := make(map[JobID][]Slice)
	for _, s := range t.Slices {
		byJob[s.Job] = append(byJob[s.Job], s)
	}
	info := make(map[JobID]JobInfo, len(t.Jobs))
	for _, ji := range t.Jobs {
		if _, dup := info[ji.ID]; dup {
			return fmt.Errorf("trace: duplicate job info for %v", ji.ID)
		}
		info[ji.ID] = ji
	}
	for id, ss := range byJob {
		ji, ok := info[id]
		if !ok {
			return fmt.Errorf("trace: slice for unregistered job %v", id)
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		var got Time
		for i, s := range ss {
			if i > 0 && s.Start < ss[i-1].End {
				return fmt.Errorf("trace: job %v executes in parallel with itself: %v, %v", id, ss[i-1], s)
			}
			if s.Start < ji.Release {
				return fmt.Errorf("trace: job %v runs at %d before release %d", id, s.Start, ji.Release)
			}
			got += s.End - s.Start
		}
		if got != ji.Demand {
			return fmt.Errorf("trace: job %v received %d of %d demand", id, got, ji.Demand)
		}
	}
	// Registered jobs with demand must appear.
	for _, ji := range t.Jobs {
		if ji.Demand > 0 && len(byJob[ji.ID]) == 0 {
			return fmt.Errorf("trace: job %v never executed (demand %d)", ji.ID, ji.Demand)
		}
	}
	return nil
}

// CompletionTimes returns each job's completion time (end of its last
// slice). Jobs with no slices are absent.
func (t *Trace) CompletionTimes() map[JobID]Time {
	done := make(map[JobID]Time)
	for _, s := range t.Slices {
		if s.End > done[s.Job] {
			done[s.Job] = s.End
		}
	}
	return done
}

// Misses returns the jobs whose completion exceeds their deadline.
func (t *Trace) Misses() []JobID {
	done := t.CompletionTimes()
	var out []JobID
	for _, ji := range t.Jobs {
		if c, ok := done[ji.ID]; ok && c > ji.Deadline {
			out = append(out, ji.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func less(a, b JobID) bool {
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	if a.Inst != b.Inst {
		return a.Inst < b.Inst
	}
	return a.Vertex < b.Vertex
}

// Precedence is one intra-dag-job ordering constraint: within every instance
// of task Task, vertex From must complete before vertex To starts.
type Precedence struct {
	Task     int
	From, To int
}

// CheckPrecedence validates the given constraints against the trace.
func (t *Trace) CheckPrecedence(constraints []Precedence) error {
	starts := make(map[JobID]Time)
	for _, s := range t.Slices {
		if cur, ok := starts[s.Job]; !ok || s.Start < cur {
			starts[s.Job] = s.Start
		}
	}
	done := t.CompletionTimes()
	// Group instances per task.
	instances := make(map[int]map[int]bool)
	for _, ji := range t.Jobs {
		if instances[ji.ID.Task] == nil {
			instances[ji.ID.Task] = make(map[int]bool)
		}
		instances[ji.ID.Task][ji.ID.Inst] = true
	}
	for _, c := range constraints {
		for inst := range instances[c.Task] {
			from := JobID{Task: c.Task, Inst: inst, Vertex: c.From}
			to := JobID{Task: c.Task, Inst: inst, Vertex: c.To}
			fd, fok := done[from]
			ts, tok := starts[to]
			if !fok || !tok {
				continue // unexecuted jobs are caught by Check
			}
			if ts < fd {
				return fmt.Errorf("trace: precedence %d→%d violated in %v: succ starts %d before pred ends %d",
					c.From, c.To, to, ts, fd)
			}
		}
	}
	return nil
}

// CheckEDF validates the EDF rule on a single-processor trace: whenever a
// job executes, no other registered job is pending (released, not yet
// complete, with remaining demand) with a strictly earlier deadline.
// The trace must be for one processor's jobs only.
func (t *Trace) CheckEDF() error {
	return t.CheckPriority(func(a, b JobInfo) bool { return a.Deadline < b.Deadline })
}

// CheckPriority validates an arbitrary preemptive priority rule on a
// single-processor trace: whenever a job executes, no pending job has
// strictly higher priority per the given predicate (higher(a, b) reports
// whether a outranks b). CheckEDF is CheckPriority on absolute deadlines;
// fixed-priority audits pass a rank comparison on the task ids.
func (t *Trace) CheckPriority(higher func(a, b JobInfo) bool) error {
	info := make(map[JobID]JobInfo, len(t.Jobs))
	for _, ji := range t.Jobs {
		info[ji.ID] = ji
	}
	// EDF decisions change only at events, and every execution interval
	// begins at an event, so sampling each slice's start instant suffices.
	slices := append([]Slice(nil), t.Slices...)
	sort.Slice(slices, func(i, j int) bool { return slices[i].Start < slices[j].Start })
	executedBefore := func(id JobID, at Time) Time {
		var got Time
		for _, s := range slices {
			if s.Job != id {
				continue
			}
			if s.End <= at {
				got += s.End - s.Start
			} else if s.Start < at {
				got += at - s.Start
			}
		}
		return got
	}
	for _, s := range slices {
		running, ok := info[s.Job]
		if !ok {
			return fmt.Errorf("trace: slice for unregistered job %v", s.Job)
		}
		// Priority state changes only at slice starts and job releases;
		// check both kinds of instants that fall inside this slice.
		for id, ji := range info {
			if id == s.Job || !higher(ji, running) {
				continue
			}
			// Sample the later of the slice start and the rival's release;
			// the rival must already be released within the slice to compete.
			at := s.Start
			if ji.Release > at {
				at = ji.Release
			}
			if at >= s.End {
				continue // rival released after this slice ended
			}
			if executedBefore(id, at) < ji.Demand {
				return fmt.Errorf("trace: priority rule violated at t=%d: %v (d=%d) runs while %v (d=%d) pending",
					at, s.Job, running.Deadline, id, ji.Deadline)
			}
		}
	}
	return nil
}

// Gantt renders the trace as a per-processor ASCII chart covering
// [from, to), one character per scale ticks. Each job is labelled by a
// rotating letter; idle time prints as '.'.
func (t *Trace) Gantt(from, to, scale Time) string {
	if scale < 1 {
		scale = 1
	}
	width := int((to - from + scale - 1) / scale)
	if width < 1 {
		return ""
	}
	labels := make(map[JobID]byte)
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	next := 0
	label := func(id JobID) byte {
		if b, ok := labels[id]; ok {
			return b
		}
		b := alphabet[next%len(alphabet)]
		next++
		labels[id] = b
		return b
	}
	rows := make([][]byte, t.Procs)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	for _, s := range t.Slices {
		if s.End <= from || s.Start >= to {
			continue // outside the window: don't draw, don't label
		}
		b := label(s.Job)
		for tt := s.Start; tt < s.End; tt++ {
			if tt < from || tt >= to {
				continue
			}
			rows[s.Proc][int((tt-from)/scale)] = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%d..%d (1 char = %d tick(s))\n", from, to, scale)
	for p, row := range rows {
		fmt.Fprintf(&sb, "P%-2d |%s|\n", p, row)
	}
	// Legend, sorted for determinism.
	ids := make([]JobID, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return less(ids[i], ids[j]) })
	for _, id := range ids {
		fmt.Fprintf(&sb, "  %c = %v\n", labels[id], id)
	}
	return sb.String()
}

// Normalize returns a copy of the trace in canonical form: jobs sorted by
// id, slices coalesced (adjacent fragments of the same job on the same
// processor merged) and sorted by (start, proc, job). Two traces describing
// the same execution function — who runs where at every instant — normalize
// identically regardless of how finely their recorders fragmented the
// slices, which is exactly the equivalence the differential oracle between
// the simulator engines needs.
func (t *Trace) Normalize() *Trace {
	out := &Trace{Procs: t.Procs}
	out.Jobs = append([]JobInfo(nil), t.Jobs...)
	sort.Slice(out.Jobs, func(i, j int) bool { return less(out.Jobs[i].ID, out.Jobs[j].ID) })

	// Coalesce per (job, proc): sort fragments by start and merge contiguous
	// runs. Overlaps are a trace bug Check reports; Normalize leaves them
	// unmerged rather than hiding them.
	type key struct {
		job  JobID
		proc int
	}
	frags := make(map[key][]Slice)
	for _, s := range t.Slices {
		k := key{s.Job, s.Proc}
		frags[k] = append(frags[k], s)
	}
	for _, ss := range frags {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		merged := ss[:0]
		for _, s := range ss {
			if n := len(merged); n > 0 && merged[n-1].End == s.Start {
				merged[n-1].End = s.End
				continue
			}
			merged = append(merged, s)
		}
		out.Slices = append(out.Slices, merged...)
	}
	sort.Slice(out.Slices, func(i, j int) bool {
		a, b := out.Slices[i], out.Slices[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return less(a.Job, b.Job)
	})
	return out
}

// Dump renders the normalized trace as deterministic text, one line per job
// and per coalesced slice. Byte equality of two dumps certifies that the
// traces record the same jobs with the same parameters and the same
// execution function.
func (t *Trace) Dump() string {
	n := t.Normalize()
	var sb strings.Builder
	fmt.Fprintf(&sb, "procs %d\n", n.Procs)
	for _, ji := range n.Jobs {
		fmt.Fprintf(&sb, "job %v release %d deadline %d demand %d\n", ji.ID, ji.Release, ji.Deadline, ji.Demand)
	}
	for _, s := range n.Slices {
		fmt.Fprintf(&sb, "slice %v proc %d [%d,%d)\n", s.Job, s.Proc, s.Start, s.End)
	}
	return sb.String()
}

// Utilization returns, per processor, the fraction of [from, to) spent
// executing jobs. Slices are clipped to the window.
func (t *Trace) Utilization(from, to Time) []float64 {
	out := make([]float64, t.Procs)
	if to <= from {
		return out
	}
	span := float64(to - from)
	for _, s := range t.Slices {
		lo, hi := s.Start, s.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			out[s.Proc] += float64(hi-lo) / span
		}
	}
	return out
}

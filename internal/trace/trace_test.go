package trace

import (
	"strings"
	"testing"
)

func id(t, i, v int) JobID { return JobID{Task: t, Inst: i, Vertex: v} }

func validTwoJobTrace() *Trace {
	r := NewRecorder(2)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 4})
	r.Job(JobInfo{ID: id(1, 0, 0), Release: 2, Deadline: 12, Demand: 3})
	r.Run(id(0, 0, 0), 0, 0, 4)
	r.Run(id(1, 0, 0), 1, 2, 5)
	return r.Trace()
}

func TestCheckAcceptsValidTrace(t *testing.T) {
	if err := validTwoJobTrace().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderMergesAdjacentSlices(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 100, Demand: 6})
	r.Run(id(0, 0, 0), 0, 0, 2)
	r.Run(id(0, 0, 0), 0, 2, 6)
	tr := r.Trace()
	if len(tr.Slices) != 1 {
		t.Fatalf("adjacent slices not merged: %v", tr.Slices)
	}
	if tr.Slices[0].End != 6 {
		t.Errorf("merged slice = %v", tr.Slices[0])
	}
	if err := tr.Check(); err != nil {
		t.Error(err)
	}
}

func TestRecorderIgnoresEmptySlices(t *testing.T) {
	r := NewRecorder(1)
	r.Run(id(0, 0, 0), 0, 5, 5)
	if len(r.Trace().Slices) != 0 {
		t.Fatal("zero-length slice recorded")
	}
}

func TestCheckCatchesProcessorOverlap(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 4})
	r.Job(JobInfo{ID: id(1, 0, 0), Release: 0, Deadline: 10, Demand: 4})
	r.Run(id(0, 0, 0), 0, 0, 4)
	r.Run(id(1, 0, 0), 0, 2, 6)
	if err := r.Trace().Check(); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestCheckCatchesSelfParallelism(t *testing.T) {
	r := NewRecorder(2)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 6})
	r.Run(id(0, 0, 0), 0, 0, 3)
	r.Run(id(0, 0, 0), 1, 1, 4)
	if err := r.Trace().Check(); err == nil {
		t.Fatal("intra-job parallelism not detected")
	}
}

func TestCheckCatchesEarlyExecution(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 5, Deadline: 15, Demand: 2})
	r.Run(id(0, 0, 0), 0, 3, 5)
	if err := r.Trace().Check(); err == nil {
		t.Fatal("pre-release execution not detected")
	}
}

func TestCheckCatchesDemandMismatch(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 5})
	r.Run(id(0, 0, 0), 0, 0, 3)
	if err := r.Trace().Check(); err == nil {
		t.Fatal("short execution not detected")
	}
}

func TestCheckCatchesUnexecutedJob(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 5})
	if err := r.Trace().Check(); err == nil {
		t.Fatal("unexecuted job not detected")
	}
}

func TestCheckCatchesUnknownProcessorAndJob(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 1})
	r.Run(id(0, 0, 0), 3, 0, 1)
	if err := r.Trace().Check(); err == nil {
		t.Fatal("out-of-range processor not detected")
	}
	r2 := NewRecorder(1)
	r2.Run(id(9, 9, 9), 0, 0, 1)
	if err := r2.Trace().Check(); err == nil {
		t.Fatal("unregistered job not detected")
	}
}

func TestCheckCatchesDuplicateJobInfo(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 1})
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 1})
	r.Run(id(0, 0, 0), 0, 0, 1)
	if err := r.Trace().Check(); err == nil {
		t.Fatal("duplicate job info not detected")
	}
}

func TestMisses(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 3, Demand: 5})
	r.Run(id(0, 0, 0), 0, 0, 5)
	misses := r.Trace().Misses()
	if len(misses) != 1 || misses[0] != id(0, 0, 0) {
		t.Fatalf("misses = %v", misses)
	}
	if len(validTwoJobTrace().Misses()) != 0 {
		t.Fatal("false positive miss")
	}
}

func TestCheckPrecedence(t *testing.T) {
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 2})
	r.Job(JobInfo{ID: id(0, 0, 1), Release: 0, Deadline: 10, Demand: 2})
	r.Run(id(0, 0, 0), 0, 0, 2)
	r.Run(id(0, 0, 1), 0, 2, 4)
	cons := []Precedence{{Task: 0, From: 0, To: 1}}
	if err := r.Trace().CheckPrecedence(cons); err != nil {
		t.Fatal(err)
	}
	// Reverse the order: violation.
	r2 := NewRecorder(1)
	r2.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 2})
	r2.Job(JobInfo{ID: id(0, 0, 1), Release: 0, Deadline: 10, Demand: 2})
	r2.Run(id(0, 0, 1), 0, 0, 2)
	r2.Run(id(0, 0, 0), 0, 2, 4)
	if err := r2.Trace().CheckPrecedence(cons); err == nil {
		t.Fatal("precedence violation not detected")
	}
}

func TestCheckEDFAcceptsEDFTrace(t *testing.T) {
	// Job A (d=20) starts; job B (d=10) arrives at 2 and preempts; A resumes.
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 20, Demand: 6})
	r.Job(JobInfo{ID: id(1, 0, 0), Release: 2, Deadline: 10, Demand: 3})
	r.Run(id(0, 0, 0), 0, 0, 2)
	r.Run(id(1, 0, 0), 0, 2, 5)
	r.Run(id(0, 0, 0), 0, 5, 9)
	tr := r.Trace()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckEDF(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEDFCatchesPriorityInversion(t *testing.T) {
	// B (d=10) pending from 2 but A (d=20) keeps running: violation.
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 20, Demand: 6})
	r.Job(JobInfo{ID: id(1, 0, 0), Release: 2, Deadline: 10, Demand: 3})
	r.Run(id(0, 0, 0), 0, 0, 6)
	r.Run(id(1, 0, 0), 0, 6, 9)
	if err := r.Trace().CheckEDF(); err == nil {
		t.Fatal("EDF violation not detected")
	}
}

func TestCheckEDFSliceBoundaryNotViolation(t *testing.T) {
	// A lower-priority job running *before* the higher-priority one is
	// released is fine; and equal deadlines are fine in either order.
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 10, Demand: 2})
	r.Job(JobInfo{ID: id(1, 0, 0), Release: 0, Deadline: 10, Demand: 2})
	r.Run(id(1, 0, 0), 0, 0, 2)
	r.Run(id(0, 0, 0), 0, 2, 4)
	if err := r.Trace().CheckEDF(); err != nil {
		t.Fatal(err)
	}
}

func TestGantt(t *testing.T) {
	tr := validTwoJobTrace()
	g := tr.Gantt(0, 6, 1)
	if !strings.Contains(g, "P0 ") || !strings.Contains(g, "P1 ") {
		t.Fatalf("missing processor rows:\n%s", g)
	}
	lines := strings.Split(g, "\n")
	var p0 string
	for _, l := range lines {
		if strings.HasPrefix(l, "P0 ") {
			p0 = l
		}
	}
	if !strings.Contains(p0, "aaaa..") {
		t.Errorf("P0 row = %q, want job a during [0,4)", p0)
	}
	if !strings.Contains(g, "= T0.J0.v0") {
		t.Errorf("legend missing:\n%s", g)
	}
	// Degenerate ranges do not panic.
	if tr.Gantt(5, 5, 1) != "" {
		t.Error("empty range should render empty")
	}
	// Coarse scale shrinks width.
	coarse := tr.Gantt(0, 6, 3)
	if len(coarse) >= len(g) {
		t.Error("coarser scale did not shrink output")
	}
}

func TestCompletionTimes(t *testing.T) {
	tr := validTwoJobTrace()
	done := tr.CompletionTimes()
	if done[id(0, 0, 0)] != 4 || done[id(1, 0, 0)] != 5 {
		t.Fatalf("completions = %v", done)
	}
}

func TestUtilization(t *testing.T) {
	tr := validTwoJobTrace() // P0: [0,4), P1: [2,5)
	u := tr.Utilization(0, 10)
	if u[0] != 0.4 || u[1] != 0.3 {
		t.Fatalf("utilization = %v, want [0.4 0.3]", u)
	}
	// Clipping.
	u2 := tr.Utilization(3, 5)
	if u2[0] != 0.5 || u2[1] != 1.0 {
		t.Fatalf("clipped utilization = %v, want [0.5 1.0]", u2)
	}
	// Degenerate window.
	if got := tr.Utilization(5, 5); got[0] != 0 || got[1] != 0 {
		t.Fatalf("degenerate window = %v", got)
	}
}

func TestCheckGlobalEDFDetectsViolations(t *testing.T) {
	// m=2. Three jobs released at 0: a(d=5), b(d=6), c(d=20). Valid global
	// EDF runs a and b first, c afterwards.
	mk := func() *Recorder {
		r := NewRecorder(2)
		r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 5, Demand: 3})
		r.Job(JobInfo{ID: id(1, 0, 0), Release: 0, Deadline: 6, Demand: 3})
		r.Job(JobInfo{ID: id(2, 0, 0), Release: 0, Deadline: 20, Demand: 2})
		return r
	}
	good := mk()
	good.Run(id(0, 0, 0), 0, 0, 3)
	good.Run(id(1, 0, 0), 1, 0, 3)
	good.Run(id(2, 0, 0), 0, 3, 5)
	if err := good.Trace().CheckGlobalEDF(2, nil); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Violation: c runs while a pends.
	bad := mk()
	bad.Run(id(2, 0, 0), 0, 0, 2)
	bad.Run(id(1, 0, 0), 1, 0, 3)
	bad.Run(id(0, 0, 0), 0, 2, 5)
	if err := bad.Trace().CheckGlobalEDF(2, nil); err == nil {
		t.Fatal("priority inversion not detected")
	}
	// Violation: idle processor while work pends.
	idle := mk()
	idle.Run(id(0, 0, 0), 0, 0, 3)
	idle.Run(id(1, 0, 0), 0, 3, 6)
	idle.Run(id(2, 0, 0), 0, 6, 8)
	if err := idle.Trace().CheckGlobalEDF(2, nil); err == nil {
		t.Fatal("idling with pending work not detected")
	}
	// The same single-processor serialization is valid global EDF at m=1.
	if err := idle.Trace().CheckGlobalEDF(1, nil); err != nil {
		t.Fatalf("m=1 serialization rejected: %v", err)
	}
}

func TestCheckGlobalEDFRespectsPrecedenceAvailability(t *testing.T) {
	// v1 precedes v2 within the same task instance: v2 pending only after
	// v1 completes, so a lower-priority unrelated job may run meanwhile.
	r := NewRecorder(1)
	r.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 4, Demand: 1})
	r.Job(JobInfo{ID: id(0, 0, 1), Release: 0, Deadline: 4, Demand: 1})
	r.Job(JobInfo{ID: id(1, 0, 0), Release: 0, Deadline: 9, Demand: 1})
	cons := []Precedence{{Task: 0, From: 0, To: 1}}
	// Order: v0 (d=4), then the d=9 job, then v1 (d=4)? That WOULD violate:
	// after v0 completes at 1, v1 is available with d=4 < 9.
	bad := r
	bad.Run(id(0, 0, 0), 0, 0, 1)
	bad.Run(id(1, 0, 0), 0, 1, 2)
	bad.Run(id(0, 0, 1), 0, 2, 3)
	if err := bad.Trace().CheckGlobalEDF(1, cons); err == nil {
		t.Fatal("post-availability inversion not detected")
	}
	// Correct order passes.
	ok := NewRecorder(1)
	ok.Job(JobInfo{ID: id(0, 0, 0), Release: 0, Deadline: 4, Demand: 1})
	ok.Job(JobInfo{ID: id(0, 0, 1), Release: 0, Deadline: 4, Demand: 1})
	ok.Job(JobInfo{ID: id(1, 0, 0), Release: 0, Deadline: 9, Demand: 1})
	ok.Run(id(0, 0, 0), 0, 0, 1)
	ok.Run(id(0, 0, 1), 0, 1, 2)
	ok.Run(id(1, 0, 0), 0, 2, 3)
	if err := ok.Trace().CheckGlobalEDF(1, cons); err != nil {
		t.Fatalf("valid precedence-aware trace rejected: %v", err)
	}
}

func TestCheckGlobalEDFRejectsBadM(t *testing.T) {
	if err := validTwoJobTrace().CheckGlobalEDF(0, nil); err == nil {
		t.Fatal("accepted m=0")
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Ratio() != 0 {
		t.Error("empty counter ratio must be 0")
	}
	for i := 0; i < 7; i++ {
		c.Add(true)
	}
	for i := 0; i < 3; i++ {
		c.Add(false)
	}
	if c.Total != 10 || c.Accepted != 7 {
		t.Fatalf("counter = %+v", c)
	}
	if math.Abs(c.Ratio()-0.7) > 1e-12 {
		t.Errorf("ratio = %v", c.Ratio())
	}
}

func TestWilson95(t *testing.T) {
	var c Counter
	lo, hi := c.Wilson95()
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v,%v], want [0,1]", lo, hi)
	}
	for i := 0; i < 100; i++ {
		c.Add(true)
	}
	lo, hi = c.Wilson95()
	if hi != 1 {
		t.Errorf("all-accept hi = %v, want 1", hi)
	}
	if lo < 0.9 {
		t.Errorf("all-accept (n=100) lo = %v, want > 0.9", lo)
	}
	// Interval must contain the point estimate and be within [0,1].
	c2 := Counter{Accepted: 30, Total: 100}
	lo, hi = c2.Wilson95()
	if lo > c2.Ratio() || hi < c2.Ratio() {
		t.Errorf("interval [%v,%v] excludes ratio %v", lo, hi, c2.Ratio())
	}
	if lo < 0 || hi > 1 {
		t.Errorf("interval [%v,%v] outside [0,1]", lo, hi)
	}
}

func TestWilsonNarrowsWithN(t *testing.T) {
	small := Counter{Accepted: 5, Total: 10}
	large := Counter{Accepted: 500, Total: 1000}
	sl, sh := small.Wilson95()
	ll, lh := large.Wilson95()
	if (lh - ll) >= (sh - sl) {
		t.Errorf("larger sample must give narrower interval: %v vs %v", lh-ll, sh-sl)
	}
}

func TestMeanStdDevMax(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-input conventions broken")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935299395) > 1e-9 {
		t.Errorf("stddev = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("max = %v, want 9", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("single sample stddev must be 0")
	}
}

func TestWeightedSchedulability(t *testing.T) {
	if WeightedSchedulability(nil) != 0 {
		t.Error("empty input must give 0")
	}
	pts := []WeightedPoint{
		{Weight: 1, Ratio: 1},
		{Weight: 3, Ratio: 0},
	}
	if got := WeightedSchedulability(pts); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("weighted = %v, want 0.25", got)
	}
	// All-ones curve scores 1 regardless of weights.
	pts2 := []WeightedPoint{{0.5, 1}, {0.9, 1}, {1.3, 1}}
	if got := WeightedSchedulability(pts2); math.Abs(got-1) > 1e-12 {
		t.Errorf("weighted = %v, want 1", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{Title: "E4", Columns: []string{"U/m", "accept"}}
	tab.AddRow(0.5, 0.98)
	tab.AddRow("1.0", 0)
	md := tab.Markdown()
	for _, want := range []string{"### E4", "| U/m | accept |", "| --- | --- |", "| 0.5 | 0.98 |", "| 1.0 | 0 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("x,y", `he said "hi"`)
	tab.AddRow(1, 2.5)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n1,2.5\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

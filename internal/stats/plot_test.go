package stats

import (
	"math"
	"strings"
	"testing"
)

func TestParseFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"0", 0, true},
		{"1", 1, true},
		{"0.5", 0.5, true},
		{"-2.25", -2.25, true},
		{"+3", 3, true},
		{"3.969e+04", 39690, true},
		{"1e-2", 0.01, true},
		{"", 0, false},
		{"abc", 0, false},
		{"1.2.3", 0, false},
		{"[0.1, 0.2]", 0, false},
		{"1e", 0, false},
	}
	for _, c := range cases {
		got, ok := parseFloat(c.in)
		if ok != c.ok {
			t.Errorf("parseFloat(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && math.Abs(got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("parseFloat(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPlotBasicShape(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	s := []Series{{Name: "accept", Y: []float64{1, 0.5, 0}}}
	out := Plot("test curve", xs, s, 30, 8)
	if !strings.Contains(out, "test curve") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* accept") {
		t.Error("legend missing")
	}
	lines := strings.Split(out, "\n")
	// First grid line (y=max) must contain the first point's glyph at the
	// left; the last grid line must contain the final point at the right.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row missing glyph: %q", lines[1])
	}
	if !strings.Contains(out, "1.00 ") {
		t.Errorf("y-axis max label missing:\n%s", out)
	}
}

func TestPlotMultipleSeriesAndEmpty(t *testing.T) {
	if Plot("x", nil, nil, 10, 5) != "" {
		t.Error("empty input must render empty")
	}
	xs := []float64{1, 2, 3, 4}
	out := Plot("two", xs, []Series{
		{Name: "a", Y: []float64{0.1, 0.2, 0.3, 0.4}},
		{Name: "b", Y: []float64{0.4, 0.3, 0.2, 0.1}},
	}, 20, 6)
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("legends missing:\n%s", out)
	}
}

func TestPlotExpandsAboveOne(t *testing.T) {
	out := Plot("big", []float64{0, 1}, []Series{{Name: "v", Y: []float64{0, 5}}}, 12, 5)
	if !strings.Contains(out, "5.00 ") {
		t.Errorf("y-axis should expand to 5:\n%s", out)
	}
}

func TestPlotTable(t *testing.T) {
	tab := &Table{Title: "E4", Columns: []string{"U/m", "systems", "ratio"}}
	tab.AddRow(0.1, 20, 1.0)
	tab.AddRow(0.5, 20, 0.6)
	tab.AddRow(0.9, 20, 0.0)
	out := PlotTable(tab, 0, []int{2}, 24, 6)
	if out == "" {
		t.Fatal("plottable table rendered empty")
	}
	if !strings.Contains(out, "ratio") {
		t.Errorf("series name missing:\n%s", out)
	}
	// Non-numeric columns yield empty output.
	bad := &Table{Columns: []string{"a", "b"}}
	bad.AddRow("x", "y")
	bad.AddRow("p", "q")
	if PlotTable(bad, 0, []int{1}, 24, 6) != "" {
		t.Error("non-numeric table should not plot")
	}
}

func TestPlotTableSkipsUnparseableRows(t *testing.T) {
	tab := &Table{Columns: []string{"x", "y"}}
	tab.AddRow(0.1, 1.0)
	tab.AddRow("[0.5]", 0.5) // skipped
	tab.AddRow(0.9, 0.0)
	out := PlotTable(tab, 0, []int{1}, 24, 6)
	if out == "" {
		t.Fatal("should plot the two parseable rows")
	}
}

// Package stats provides the small statistical toolkit the experiment
// harness needs: acceptance-ratio counters with Wilson confidence intervals,
// weighted schedulability (Bastoni, Brandenburg & Anderson), descriptive
// statistics, and table rendering (Markdown and CSV) for EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Counter tallies accept/reject outcomes of a schedulability test.
// The zero Counter is ready to use.
type Counter struct {
	Accepted int
	Total    int
}

// Add records one outcome.
func (c *Counter) Add(accepted bool) {
	c.Total++
	if accepted {
		c.Accepted++
	}
}

// Ratio returns the acceptance ratio, or 0 for an empty counter.
func (c *Counter) Ratio() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Accepted) / float64(c.Total)
}

// Wilson95 returns the 95% Wilson score interval for the acceptance ratio.
// It behaves sensibly at ratios of exactly 0 or 1, unlike the normal
// approximation.
func (c *Counter) Wilson95() (lo, hi float64) {
	if c.Total == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	n := float64(c.Total)
	p := c.Ratio()
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// WeightedPoint pairs a workload weight (customarily the normalized system
// utilization) with the acceptance ratio observed at that weight.
type WeightedPoint struct {
	Weight float64
	Ratio  float64
}

// WeightedSchedulability collapses an acceptance-ratio curve into the single
// score Σ w·S(w) / Σ w — the standard summary for comparing schedulers
// across platform sizes (experiment E12). Returns 0 for empty input.
func WeightedSchedulability(points []WeightedPoint) float64 {
	num, den := 0.0, 0.0
	for _, p := range points {
		num += p.Weight * p.Ratio
		den += p.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Table is a rectangular result table with named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row formatted from arbitrary values (%v for strings and
// ints, %.4g for floats).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

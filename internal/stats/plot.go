package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for Plot.
type Series struct {
	Name string
	Y    []float64 // sampled at the shared X grid, in order
}

// Plot renders one or more series over a shared x-grid as an ASCII chart —
// the textual stand-in for the acceptance-ratio figures a paper would print.
// Each series is drawn with its own glyph; overlapping points show the glyph
// of the later series. The y-range is [0, max(1, data max)] unless all
// values exceed 1, in which case it expands to fit.
func Plot(title string, xs []float64, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(xs) == 0 || len(series) == 0 {
		return ""
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	ymax := 1.0
	for _, s := range series {
		for _, y := range s.Y {
			if y > ymax {
				ymax = y
			}
		}
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		if x < xmin {
			xmin = x
		}
		if x > xmax {
			xmax = x
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round(y / ymax * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		n := len(s.Y)
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			grid[row(s.Y[i])][col(xs[i])] = g
		}
	}

	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for r, line := range grid {
		label := "      "
		switch r {
		case 0:
			label = fmt.Sprintf("%5.2f ", ymax)
		case height - 1:
			label = " 0.00 "
		}
		fmt.Fprintf(&sb, "%s|%s|\n", label, line)
	}
	fmt.Fprintf(&sb, "      %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&sb, "      %-*.3g%*.3g\n", width/2+1, xmin, width/2+1, xmax)
	for si, s := range series {
		fmt.Fprintf(&sb, "      %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return sb.String()
}

// PlotTable renders the given numeric columns of a Table against a numeric
// x-column as an ASCII chart. Non-numeric cells are skipped. It returns ""
// when nothing is plottable.
func PlotTable(t *Table, xCol int, yCols []int, width, height int) string {
	var xs []float64
	rows := make([][]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		x, okX := parseFloat(row[xCol])
		if !okX {
			continue
		}
		ys := make([]float64, 0, len(yCols))
		ok := true
		for _, c := range yCols {
			if c >= len(row) {
				ok = false
				break
			}
			y, okY := parseFloat(row[c])
			if !okY {
				ok = false
				break
			}
			ys = append(ys, y)
		}
		if !ok {
			continue
		}
		xs = append(xs, x)
		rows = append(rows, ys)
	}
	if len(xs) < 2 {
		return ""
	}
	series := make([]Series, len(yCols))
	for j, c := range yCols {
		series[j].Name = t.Columns[c]
		for i := range rows {
			series[j].Y = append(series[j].Y, rows[i][j])
		}
	}
	return Plot(t.Title, xs, series, width, height)
}

// parseFloat is a dependency-free strconv.ParseFloat for the simple decimal
// forms AddRow produces; returns false on anything else.
func parseFloat(s string) (float64, bool) {
	var sign float64 = 1
	i := 0
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		if s[i] == '-' {
			sign = -1
		}
		i++
	}
	mant := 0.0
	digits := 0
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		mant = mant*10 + float64(s[i]-'0')
		digits++
	}
	if i < len(s) && s[i] == '.' {
		i++
		scale := 0.1
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			mant += float64(s[i]-'0') * scale
			scale /= 10
			digits++
		}
	}
	if digits == 0 {
		return 0, false
	}
	// Exponent form (e.g. 3.969e+04 from %.4g).
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		esign := 1
		if i < len(s) && (s[i] == '-' || s[i] == '+') {
			if s[i] == '-' {
				esign = -1
			}
			i++
		}
		exp := 0
		edigits := 0
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			exp = exp*10 + int(s[i]-'0')
			edigits++
		}
		if edigits == 0 {
			return 0, false
		}
		mant *= math.Pow(10, float64(esign*exp))
	}
	if i != len(s) {
		return 0, false
	}
	return sign * mant, true
}

package dbf

import (
	"math/bits"

	"fedsched/internal/task"
)

// This file holds the overflow-checked integer companions to the big.Rat
// arithmetic in ExactFeasible. Both are exact; whenever an intermediate value
// would overflow, the caller falls back to the rational path, so the test's
// boolean outcome never depends on the fast path applying.

// utilizationCmpOne three-way compares Σ C_i/T_i against 1 in integer
// arithmetic. ok is false on overflow (fall back to TotalUtilizationRat).
func utilizationCmpOne(set []task.Sporadic) (cmp int, ok bool) {
	var whole uint64
	var frac fracSum
	frac.init()
	for _, s := range set {
		c, t := uint64(s.C), uint64(s.T)
		q, r := c/t, c%t
		var carry uint64
		whole, carry = bits.Add64(whole, q, 0)
		if carry != 0 {
			return 0, false
		}
		if !frac.add(r, t) {
			return 0, false
		}
	}
	switch {
	case whole > 1:
		return 1, true
	case whole == 1:
		if frac.isZero() {
			return 0, true
		}
		return 1, true
	default:
		return frac.cmp(1), true
	}
}

// exactBoundFast returns an interval bound valid for the QPA iteration,
// requiring Σ u_i < 1 (established by the caller). It over-approximates the
// exact L_a of exactTestBound — QPA's verdict is identical under any upper
// bound ≥ L_a, since Σ DBF(t) ≤ t holds for every t ≥ L_a — trading a
// slightly larger starting deadline for allocation-free arithmetic:
//
//	L_a = Σ (T_i − D_i)·u_i / (1 − U) ≤ (Σ ⌊(T_i−D_i)·C_i/T_i⌋ + n) / (1 − U)
//
// (each of the n per-task floors discards a fractional part < 1).
func exactBoundFast(set []task.Sporadic) (Time, bool) {
	// U = numU/denU as a proper fraction (whole part must be 0 since U < 1).
	var wholeU uint64
	var fu fracSum
	fu.init()
	var dmax Time
	var wholeN uint64
	for _, s := range set {
		if s.D > dmax {
			dmax = s.D
		}
		c, t := uint64(s.C), uint64(s.T)
		q, r := c/t, c%t
		var carry uint64
		wholeU, carry = bits.Add64(wholeU, q, 0)
		if carry != 0 || wholeU > 0 {
			return 0, false
		}
		if !fu.add(r, t) {
			return 0, false
		}
		// ⌊(T−D)·C/T⌋ via 128-by-64 division.
		hi, lo := bits.Mul64(uint64(s.T-s.D), c)
		if hi >= t {
			return 0, false
		}
		nq, _ := bits.Div64(hi, lo, t)
		wholeN, carry = bits.Add64(wholeN, nq, 0)
		if carry != 0 {
			return 0, false
		}
	}
	if fu.numHi != 0 || fu.numLo >= fu.den {
		return 0, false // U ≥ 1 or unreduced overflow: not our precondition
	}
	// ⌈(wholeN + n)·denU / (denU − numU)⌉, overflow-checked.
	num, carry := bits.Add64(wholeN, uint64(len(set)), 0)
	if carry != 0 {
		return 0, false
	}
	d := fu.den - fu.numLo
	hi, lo := bits.Mul64(num, fu.den)
	if hi >= d {
		return 0, false
	}
	q, rem := bits.Div64(hi, lo, d)
	if rem > 0 {
		q++
	}
	if q > uint64(1)<<62 {
		return 0, false
	}
	bound := Time(q)
	if bound < dmax {
		bound = dmax
	}
	return bound, true
}

package dbf

import (
	"testing"

	"fedsched/internal/task"
)

// FuzzExactVsNaive cross-checks the QPA-accelerated exact test against the
// brute-force enumeration on fuzz-chosen small task sets.
func FuzzExactVsNaive(f *testing.F) {
	f.Add(uint8(2), uint16(0x1234), uint16(0x5678), uint16(0x9abc))
	f.Add(uint8(3), uint16(1), uint16(2), uint16(3))
	f.Fuzz(func(t *testing.T, n uint8, a, b, c uint16) {
		words := []uint16{a, b, c}
		count := int(n%3) + 1
		set := make([]task.Sporadic, 0, count)
		for i := 0; i < count; i++ {
			w := words[i]
			// Decode (C, D, T) with D ≤ T (constrained), all ≥ 1.
			tt := task.Time(w%37) + 2
			d := task.Time(w/37%uint16(tt-1)) + 1
			cc := task.Time(w/999%uint16(d)) + 1
			set = append(set, task.Sporadic{C: cc, D: d, T: tt})
		}
		u, _ := TotalUtilizationRat(set).Float64()
		if u >= 1 {
			// Full-utilization path: only check it does not panic and that
			// U > 1 is rejected.
			got := ExactFeasible(set)
			if u > 1+1e-9 && got {
				t.Fatalf("accepted U=%v > 1: %v", u, set)
			}
			return
		}
		bound, ok := exactTestBound(set)
		if !ok {
			t.Fatalf("no bound for U=%v", u)
		}
		if got, want := ExactFeasible(set), naiveFeasible(set, bound); got != want {
			t.Fatalf("QPA=%v naive=%v for %v", got, want, set)
		}
		// DBF* acceptance must imply exact acceptance.
		if ApproxFeasible(set) && !ExactFeasible(set) {
			t.Fatalf("DBF* accepted what exact rejected: %v", set)
		}
	})
}

func naiveFeasible(set []task.Sporadic, horizon task.Time) bool {
	for _, s := range set {
		for d := s.D; d <= horizon; d += s.T {
			if TotalDBF(set, d) > d {
				return false
			}
		}
	}
	return true
}

package dbf

import (
	"math/big"
	"testing"

	"fedsched/internal/task"
)

// FuzzDBFStar checks that Equation 1's linear approximation dominates the
// exact demand bound function on arbitrary constrained-deadline 3-parameter
// tasks: DBF*(τ, t) ≥ DBF(τ, t) for every window length t ≥ 0, with
// equality at t = D (where both equal C). This is the pointwise fact behind
// Theorem 2's speedup bound: DBF* admission is pessimistic, never unsafe.
func FuzzDBFStar(f *testing.F) {
	f.Add(uint16(3), uint16(5), uint16(8), uint32(20))
	f.Add(uint16(1), uint16(1), uint16(1), uint32(0))
	f.Add(uint16(999), uint16(40), uint16(1000), uint32(12345))
	f.Add(uint16(7), uint16(7), uint16(7), uint32(6))
	f.Fuzz(func(t *testing.T, cw, dw, tw uint16, win uint32) {
		// Decode a valid constrained-deadline task: 1 ≤ C ≤ D ≤ T.
		tt := task.Time(tw%1000) + 1
		d := task.Time(dw)%tt + 1
		c := task.Time(cw)%d + 1
		s := task.Sporadic{C: c, D: d, T: tt}
		at := task.Time(win % 100_000)

		exact := DBF(s, at)
		star := ApproxRat(s, at)
		if star.Cmp(new(big.Rat).SetInt64(exact)) < 0 {
			t.Fatalf("DBF*(%+v, %d) = %v < exact DBF = %d", s, at, star, exact)
		}
		if approx := Approx(s, at); approx < float64(exact)-1e-6 {
			t.Fatalf("float DBF*(%+v, %d) = %v < exact DBF = %d", s, at, approx, exact)
		}
		if atD := ApproxRat(s, s.D); atD.Cmp(new(big.Rat).SetInt64(c)) != 0 {
			t.Fatalf("DBF*(%+v, D) = %v, want exactly C = %d", s, atD, c)
		}
		if got := DBF(s, s.D); got != c {
			t.Fatalf("DBF(%+v, D) = %d, want C = %d", s, got, c)
		}
	})
}

// FuzzExactVsNaive cross-checks the QPA-accelerated exact test against the
// brute-force enumeration on fuzz-chosen small task sets.
func FuzzExactVsNaive(f *testing.F) {
	f.Add(uint8(2), uint16(0x1234), uint16(0x5678), uint16(0x9abc))
	f.Add(uint8(3), uint16(1), uint16(2), uint16(3))
	f.Fuzz(func(t *testing.T, n uint8, a, b, c uint16) {
		words := []uint16{a, b, c}
		count := int(n%3) + 1
		set := make([]task.Sporadic, 0, count)
		for i := 0; i < count; i++ {
			w := words[i]
			// Decode (C, D, T) with D ≤ T (constrained), all ≥ 1.
			tt := task.Time(w%37) + 2
			d := task.Time(w/37%uint16(tt-1)) + 1
			cc := task.Time(w/999%uint16(d)) + 1
			set = append(set, task.Sporadic{C: cc, D: d, T: tt})
		}
		u, _ := TotalUtilizationRat(set).Float64()
		if u >= 1 {
			// Full-utilization path: only check it does not panic and that
			// U > 1 is rejected.
			got := ExactFeasible(set)
			if u > 1+1e-9 && got {
				t.Fatalf("accepted U=%v > 1: %v", u, set)
			}
			return
		}
		bound, ok := exactTestBound(set)
		if !ok {
			t.Fatalf("no bound for U=%v", u)
		}
		if got, want := ExactFeasible(set), naiveFeasible(set, bound); got != want {
			t.Fatalf("QPA=%v naive=%v for %v", got, want, set)
		}
		// DBF* acceptance must imply exact acceptance.
		if ApproxFeasible(set) && !ExactFeasible(set) {
			t.Fatalf("DBF* accepted what exact rejected: %v", set)
		}
	})
}

func naiveFeasible(set []task.Sporadic, horizon task.Time) bool {
	for _, s := range set {
		for d := s.D; d <= horizon; d += s.T {
			if TotalDBF(set, d) > d {
				return false
			}
		}
	}
	return true
}

package dbf

import (
	"math/rand"
	"testing"

	"fedsched/internal/task"
)

// TestFitsApproxFastMatchesRat is the differential pin: the integer fast path
// and the big.Rat reference decide the same exact inequalities, so they must
// agree on every input — small parameters (dense tie cases around Σu == 1 and
// demand == capacity) and huge ones (forcing the 128-bit accumulators and,
// past them, the overflow fallback).
func TestFitsApproxFastMatchesRat(t *testing.T) {
	draw := func(r *rand.Rand, huge bool) task.Sporadic {
		if huge {
			c := r.Int63n(1 << 40)
			return task.Sporadic{C: c + 1, D: c + 1 + r.Int63n(1<<41), T: c + 1 + r.Int63n(1<<42)}
		}
		c := int64(1 + r.Intn(8))
		d := c + int64(r.Intn(16))
		return task.Sporadic{C: c, D: d, T: d + int64(r.Intn(16))}
	}
	for _, huge := range []bool{false, true} {
		r := rand.New(rand.NewSource(99))
		for trial := 0; trial < 20000; trial++ {
			n := r.Intn(6)
			assigned := make([]task.Sporadic, n)
			for i := range assigned {
				assigned[i] = draw(r, huge)
			}
			cand := draw(r, huge)
			if got, want := FitsApproxFast(assigned, cand), FitsApprox(assigned, cand); got != want {
				t.Fatalf("huge=%v: FitsApproxFast=%v FitsApprox=%v\nassigned=%v\ncand=%v", huge, got, want, assigned, cand)
			}
		}
	}
}

// TestFitsApproxFastTies hits the exact boundary cases explicitly: full
// utilization, demand exactly at capacity, and a candidate with C > D.
func TestFitsApproxFastTies(t *testing.T) {
	cases := []struct {
		name     string
		assigned []task.Sporadic
		cand     task.Sporadic
	}{
		{"util-exactly-one", []task.Sporadic{{C: 1, D: 2, T: 2}}, task.Sporadic{C: 1, D: 2, T: 2}},
		{"util-just-over", []task.Sporadic{{C: 1, D: 2, T: 2}}, task.Sporadic{C: 2, D: 3, T: 3}},
		{"demand-exactly-capacity", []task.Sporadic{{C: 2, D: 4, T: 8}}, task.Sporadic{C: 2, D: 4, T: 16}},
		{"demand-fractional-tie", []task.Sporadic{{C: 1, D: 3, T: 3}, {C: 1, D: 4, T: 6}}, task.Sporadic{C: 1, D: 7, T: 12}},
		{"cand-exceeds-own-deadline", nil, task.Sporadic{C: 5, D: 3, T: 10}},
		{"empty-proc", nil, task.Sporadic{C: 3, D: 7, T: 9}},
	}
	for _, tc := range cases {
		if got, want := FitsApproxFast(tc.assigned, tc.cand), FitsApprox(tc.assigned, tc.cand); got != want {
			t.Errorf("%s: fast=%v rat=%v", tc.name, got, want)
		}
	}
}

// TestFitsApproxFastZeroAlloc pins the warm-path contract: within 64-bit
// range the integer evaluation allocates nothing.
func TestFitsApproxFastZeroAlloc(t *testing.T) {
	assigned := []task.Sporadic{
		{C: 2, D: 9, T: 12}, {C: 1, D: 11, T: 13}, {C: 3, D: 17, T: 21}, {C: 2, D: 23, T: 40},
	}
	cand := task.Sporadic{C: 2, D: 25, T: 33}
	if allocs := testing.AllocsPerRun(200, func() { FitsApproxFast(assigned, cand) }); allocs != 0 {
		t.Errorf("FitsApproxFast allocated %.1f times, want 0", allocs)
	}
}

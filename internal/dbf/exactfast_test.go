package dbf

import (
	"math/rand"
	"testing"

	"fedsched/internal/task"
)

// refExactFeasible is the pre-fast-path implementation — pure big.Rat
// utilization comparison and the exact L_a bound — kept here as the oracle
// the integer-accelerated ExactFeasible must agree with everywhere.
func refExactFeasible(set []task.Sporadic) bool {
	if len(set) == 0 {
		return true
	}
	cmp := TotalUtilizationRat(set).Cmp(one)
	if cmp > 0 {
		return false
	}
	if cmp == 0 {
		return exactFeasibleFullUtil(set)
	}
	bound, ok := exactTestBound(set)
	if !ok {
		return false
	}
	return qpa(set, bound)
}

func drawSporadic(r *rand.Rand, huge bool) task.Sporadic {
	if huge {
		c := r.Int63n(1 << 40)
		return task.Sporadic{C: c + 1, D: c + 1 + r.Int63n(1<<41), T: c + 1 + r.Int63n(1<<42)}
	}
	c := int64(1 + r.Intn(8))
	d := c + int64(r.Intn(16))
	return task.Sporadic{C: c, D: d, T: d + int64(r.Intn(16))}
}

// TestExactFeasibleFastMatchesReference: the accelerated test and the pure
// rational oracle agree on random sets, small (dense utilization ties) and
// huge (forcing the overflow fallbacks).
func TestExactFeasibleFastMatchesReference(t *testing.T) {
	for _, huge := range []bool{false, true} {
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 5000; trial++ {
			set := make([]task.Sporadic, r.Intn(6))
			for i := range set {
				set[i] = drawSporadic(r, huge)
			}
			if got, want := ExactFeasible(set), refExactFeasible(set); got != want {
				t.Fatalf("huge=%v: ExactFeasible=%v ref=%v\nset=%v", huge, got, want, set)
			}
		}
	}
}

// TestUtilizationCmpOneMatchesRat pins the exact three-way comparison,
// including sets whose utilization is exactly 1.
func TestUtilizationCmpOneMatchesRat(t *testing.T) {
	cases := [][]task.Sporadic{
		{},
		{{C: 1, D: 2, T: 2}, {C: 1, D: 2, T: 2}},                   // exactly 1
		{{C: 1, D: 3, T: 3}, {C: 1, D: 3, T: 3}, {C: 1, D: 3, T: 3}}, // exactly 1 via thirds
		{{C: 2, D: 3, T: 3}, {C: 1, D: 2, T: 2}},                   // just over
		{{C: 1, D: 7, T: 11}, {C: 3, D: 13, T: 17}},                // well under
		{{C: 5, D: 5, T: 5}},                                       // single full task
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		set := make([]task.Sporadic, 1+r.Intn(5))
		for i := range set {
			set[i] = drawSporadic(r, trial%2 == 0)
		}
		cases = append(cases, set)
	}
	for _, set := range cases {
		got, ok := utilizationCmpOne(set)
		if !ok {
			continue // overflow fallback: nothing to compare
		}
		if want := TotalUtilizationRat(set).Cmp(one); got != want {
			t.Fatalf("utilizationCmpOne=%d, Rat cmp=%d\nset=%v", got, want, set)
		}
	}
}

// TestExactBoundFastIsUpperBound: wherever the fast bound applies it must
// dominate the exact L_a — that is the whole correctness argument for using
// it with QPA.
func TestExactBoundFastIsUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 5000; trial++ {
		set := make([]task.Sporadic, 1+r.Intn(6))
		for i := range set {
			set[i] = drawSporadic(r, false)
		}
		if cmp, ok := utilizationCmpOne(set); !ok || cmp >= 0 {
			continue
		}
		fast, ok := exactBoundFast(set)
		if !ok {
			continue
		}
		exact, ok := exactTestBound(set)
		if !ok {
			t.Fatalf("exactTestBound rejected a set with U < 1: %v", set)
		}
		if fast < exact {
			t.Fatalf("fast bound %d < exact L_a %d\nset=%v", fast, exact, set)
		}
		checked++
	}
	if checked < 1000 {
		t.Fatalf("only %d sets exercised the fast bound; generator drifted", checked)
	}
}

// TestExactFeasibleZeroAllocFastPath pins that within 64-bit range the
// accelerated exact test allocates nothing — it sits on VerifyDelta's warm
// admission path.
func TestExactFeasibleZeroAllocFastPath(t *testing.T) {
	set := []task.Sporadic{
		{C: 2, D: 9, T: 12}, {C: 1, D: 11, T: 13}, {C: 3, D: 17, T: 21}, {C: 2, D: 23, T: 40},
	}
	if !ExactFeasible(set) {
		t.Fatal("reference set unexpectedly infeasible")
	}
	if allocs := testing.AllocsPerRun(200, func() { ExactFeasible(set) }); allocs != 0 {
		t.Errorf("ExactFeasible allocated %.1f times, want 0", allocs)
	}
}

// TestFracSumReduceRetry forces the lcm-overflow → gcd-reduce retry in
// fracSum by summing fractions over large pairwise-coprime denominators, and
// cross-checks the fast fit test against the rational one on such inputs.
func TestFracSumReduceRetry(t *testing.T) {
	// Denominators chosen so the running lcm leaves uint64 range quickly.
	primesish := []int64{1<<31 - 1, 1<<29 - 3, 1<<27 - 39, 1<<25 - 35, 1<<23 - 15}
	var assigned []task.Sporadic
	for _, p := range primesish {
		assigned = append(assigned, task.Sporadic{C: p / 3, D: p / 2, T: p})
	}
	cand := task.Sporadic{C: 1 << 20, D: 1 << 40, T: 1 << 41}
	if got, want := FitsApproxFast(assigned, cand), FitsApprox(assigned, cand); got != want {
		t.Fatalf("reduce-retry path diverged: fast=%v rat=%v", got, want)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		set := make([]task.Sporadic, 1+r.Intn(len(primesish)))
		for i := range set {
			p := primesish[r.Intn(len(primesish))]
			c := 1 + r.Int63n(p/2)
			d := c + r.Int63n(p)
			set[i] = task.Sporadic{C: c, D: d, T: d + r.Int63n(p)}
		}
		c := drawSporadic(r, true)
		if got, want := FitsApproxFast(set, c), FitsApprox(set, c); got != want {
			t.Fatalf("trial %d: fast=%v rat=%v\nset=%v cand=%v", trial, got, want, set, c)
		}
	}
}

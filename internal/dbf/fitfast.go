package dbf

import (
	"math/bits"

	"fedsched/internal/task"
)

// FitsApproxFast is FitsApprox computed in overflow-checked integer
// arithmetic instead of math/big.Rat. Both evaluate the same two exact
// rational inequalities
//
//	u(cand) + Σ u_j ≤ 1
//	vol(cand) + Σ DBF*(τ_j, D_cand) ≤ D_cand
//
// so the boolean outcome is identical by construction; the integer path just
// never allocates, which is what the incremental partition.State needs on the
// warm admission path. Whenever an intermediate quantity would overflow the
// 128-bit accumulators, the function falls back to the big.Rat
// implementation — correctness never depends on the fast path applying.
func FitsApproxFast(assigned []task.Sporadic, cand task.Sporadic) bool {
	ok, fits := fitsApproxInt(assigned, cand)
	if !ok {
		return FitsApprox(assigned, cand)
	}
	return fits
}

// fitsApproxInt evaluates both FitsApprox inequalities exactly in integer
// arithmetic. ok is false when an intermediate value overflowed and the
// caller must fall back to the rational path; otherwise fits is the verdict.
func fitsApproxInt(assigned []task.Sporadic, cand task.Sporadic) (ok, fits bool) {
	// Utilization: Σ C_j/T_j + C_cand/T_cand ≤ 1, split into integer parts
	// plus a sum of proper fractions over a common denominator.
	var whole uint64
	var frac fracSum
	frac.init()
	addUtil := func(s task.Sporadic) bool {
		c, t := uint64(s.C), uint64(s.T)
		q, r := c/t, c%t
		var carry uint64
		whole, carry = bits.Add64(whole, q, 0)
		if carry != 0 {
			return false
		}
		return frac.add(r, t)
	}
	if !addUtil(cand) {
		return false, false
	}
	for _, s := range assigned {
		if !addUtil(s) {
			return false, false
		}
	}
	switch {
	case whole > 1:
		return true, false
	case whole == 1:
		if !frac.isZero() {
			return true, false
		}
	default: // whole == 0: need frac ≤ 1, i.e. num ≤ den
		if frac.exceeds(1) {
			return true, false
		}
	}

	// Demand: C_cand + Σ_{D_j ≤ D_cand} (C_j + C_j·(D_cand − D_j)/T_j) ≤ D_cand,
	// again split into an integer part and proper fractions.
	whole = uint64(cand.C)
	frac.init()
	for _, s := range assigned {
		if cand.D < s.D {
			continue // DBF*(s, D_cand) = 0 before s's deadline
		}
		hi, lo := bits.Mul64(uint64(s.C), uint64(cand.D-s.D))
		if hi != 0 {
			return false, false
		}
		t := uint64(s.T)
		q, r := lo/t, lo%t
		var carry uint64
		whole, carry = bits.Add64(whole, uint64(s.C), 0)
		if carry == 0 {
			whole, carry = bits.Add64(whole, q, 0)
		}
		if carry != 0 {
			return false, false
		}
		if !frac.add(r, t) {
			return false, false
		}
	}
	if whole > uint64(cand.D) {
		return true, false
	}
	return true, !frac.exceeds(uint64(cand.D) - whole)
}

// fracSum accumulates Σ r_i/t_i (0 ≤ r_i < t_i) exactly as num/den with a
// 128-bit numerator and a 64-bit common denominator.
type fracSum struct {
	numHi, numLo uint64
	den          uint64
}

func (f *fracSum) init() { f.numHi, f.numLo, f.den = 0, 0, 1 }

// add folds r/t into the sum; false on overflow. The term is reduced to
// lowest form first, and on overflow the accumulated sum is reduced by its
// own gcd and the fold retried — the denominator shrinks strictly each
// retry, so the loop terminates.
func (f *fracSum) add(r, t uint64) bool {
	if r == 0 {
		return true
	}
	if g := gcd64(r, t); g > 1 {
		r /= g
		t /= g
	}
	for {
		if f.tryAdd(r, t) {
			return true
		}
		if !f.reduce() {
			return false
		}
	}
}

// tryAdd folds r/t into the sum; false on overflow.
func (f *fracSum) tryAdd(r, t uint64) bool {
	g := gcd64(f.den, t)
	mult := t / g // den' = den·mult = lcm(den, t)
	hi, den := bits.Mul64(f.den, mult)
	if hi != 0 {
		return false
	}
	// num' = num·mult + r·(den'/t)
	hh, hl := bits.Mul64(f.numHi, mult)
	lh, ll := bits.Mul64(f.numLo, mult)
	if hh != 0 {
		return false
	}
	numHi, carry := bits.Add64(hl, lh, 0)
	if carry != 0 {
		return false
	}
	rh, rl := bits.Mul64(r, den/t)
	numLo, c := bits.Add64(ll, rl, 0)
	numHi, carry = bits.Add64(numHi, rh, c)
	if carry != 0 {
		return false
	}
	f.numHi, f.numLo, f.den = numHi, numLo, den
	return true
}

// reduce divides num/den by their gcd; false when the fraction is already in
// lowest form (or num is too large to take mod den), i.e. no progress.
func (f *fracSum) reduce() bool {
	if f.den == 1 {
		return false
	}
	var mod uint64
	switch {
	case f.numHi == 0:
		mod = f.numLo % f.den
	case f.numHi < f.den:
		_, mod = bits.Div64(f.numHi, f.numLo, f.den)
	default:
		return false
	}
	g := gcd64(f.den, mod)
	if g == 1 {
		return false
	}
	// g divides den and num mod den, hence num: the 128-by-64 division below
	// is exact (remainder 0 by construction).
	hiQ, hiR := f.numHi/g, f.numHi%g
	loQ, _ := bits.Div64(hiR, f.numLo, g)
	f.numHi, f.numLo, f.den = hiQ, loQ, f.den/g
	return true
}

func (f *fracSum) isZero() bool { return f.numHi == 0 && f.numLo == 0 }

// exceeds reports num/den > s, i.e. num > s·den, in 128-bit arithmetic.
func (f *fracSum) exceeds(s uint64) bool {
	hi, lo := bits.Mul64(s, f.den)
	if f.numHi != hi {
		return f.numHi > hi
	}
	return f.numLo > lo
}

// cmp three-way compares num/den against the integer s.
func (f *fracSum) cmp(s uint64) int {
	hi, lo := bits.Mul64(s, f.den)
	switch {
	case f.numHi != hi:
		if f.numHi > hi {
			return 1
		}
		return -1
	case f.numLo != lo:
		if f.numLo > lo {
			return 1
		}
		return -1
	default:
		return 0
	}
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

package dbf

import (
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func sp(c, d, t Time) task.Sporadic { return task.Sporadic{C: c, D: d, T: t} }

func TestDBFBasic(t *testing.T) {
	s := sp(2, 5, 10)
	cases := []struct {
		t    Time
		want Time
	}{
		{0, 0}, {4, 0}, {5, 2}, {14, 2}, {15, 4}, {24, 4}, {25, 6},
	}
	for _, c := range cases {
		if got := DBF(s, c.t); got != c.want {
			t.Errorf("DBF(t=%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestApproxEquation1(t *testing.T) {
	// Paper Eq. (1): DBF*(τ,t) = vol + u(t−D) for t ≥ D; 0 otherwise.
	s := sp(9, 16, 20) // Example 1 as sporadic: vol=9, D=16, T=20
	if got := Approx(s, 15); got != 0 {
		t.Errorf("Approx below D = %v, want 0", got)
	}
	if got := Approx(s, 16); math.Abs(got-9) > 1e-12 {
		t.Errorf("Approx at D = %v, want 9", got)
	}
	// t = 36: 9 + (9/20)*20 = 18.
	if got := Approx(s, 36); math.Abs(got-18) > 1e-12 {
		t.Errorf("Approx(36) = %v, want 18", got)
	}
}

func TestApproxRatMatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s := sp(Time(1+r.Intn(50)), Time(1+r.Intn(100)), Time(1+r.Intn(100)))
		tt := Time(r.Intn(400))
		exact, _ := ApproxRat(s, tt).Float64()
		if math.Abs(exact-Approx(s, tt)) > 1e-6 {
			t.Fatalf("ApproxRat(%v,%d)=%v, Approx=%v", s, tt, exact, Approx(s, tt))
		}
	}
}

func TestApproxUpperBoundsExact(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d := Time(1 + r.Intn(50))
		s := sp(Time(1+r.Intn(20)), d, d+Time(r.Intn(50))) // constrained: T ≥ D
		tt := Time(r.Intn(500))
		if a, e := Approx(s, tt), DBF(s, tt); a+1e-9 < float64(e) {
			t.Fatalf("DBF*(%v,%d)=%v < DBF=%d", s, tt, a, e)
		}
		// Equality at t = D.
		if math.Abs(Approx(s, d)-float64(DBF(s, d))) > 1e-9 {
			t.Fatalf("DBF* != DBF at t=D for %v", s)
		}
	}
}

// naiveExactFeasible checks Σ DBF(t) ≤ t at every absolute deadline up to a
// generous bound. Ground truth for QPA.
func naiveExactFeasible(set []task.Sporadic, horizon Time) bool {
	for _, s := range set {
		for d := s.D; d <= horizon; d += s.T {
			if TotalDBF(set, d) > d {
				return false
			}
		}
	}
	return true
}

func TestExactFeasibleMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(5)
		set := make([]task.Sporadic, 0, n)
		for i := 0; i < n; i++ {
			tt := Time(2 + r.Intn(30))
			d := Time(1 + r.Intn(int(tt)))
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		u, _ := TotalUtilizationRat(set).Float64()
		if u >= 1 {
			continue // QPA path only; full-util path tested separately
		}
		bound, ok := exactTestBound(set)
		if !ok {
			t.Fatalf("bound failed for U=%v", u)
		}
		got := ExactFeasible(set)
		want := naiveExactFeasible(set, bound)
		if got != want {
			t.Fatalf("ExactFeasible=%v naive=%v for %v (bound=%d)", got, want, set, bound)
		}
	}
}

func TestExactFeasibleKnownCases(t *testing.T) {
	// Two tasks, trivially schedulable.
	if !ExactFeasible([]task.Sporadic{sp(1, 4, 8), sp(2, 8, 16)}) {
		t.Error("light set must be feasible")
	}
	// Demand 2 by time 1: infeasible.
	if ExactFeasible([]task.Sporadic{sp(1, 1, 10), sp(1, 1, 10)}) {
		t.Error("two C=1,D=1 tasks on one processor must be infeasible")
	}
	// Exactly full utilization, harmonic, implicit deadlines: feasible.
	if !ExactFeasible([]task.Sporadic{sp(1, 2, 2), sp(2, 4, 4)}) {
		t.Error("U=1 harmonic implicit set must be feasible")
	}
	// Full utilization with a tight constrained deadline but harmonic
	// structure: h(t) ≤ t at every deadline, so still feasible.
	if !ExactFeasible([]task.Sporadic{sp(1, 1, 2), sp(2, 4, 4)}) {
		t.Error("harmonic U=1 set with D1=1 is feasible (h(1)=1, h(4)=4, h(5)=5, ...)")
	}
}

func TestExactFeasibleFullUtilConstrained(t *testing.T) {
	// U = 1 with constrained deadlines that overload a window:
	// τ1 = (2, 2, 4), τ2 = (2, 3, 4): h(3) = 2 + 2 = 4 > 3 → infeasible.
	if ExactFeasible([]task.Sporadic{sp(2, 2, 4), sp(2, 3, 4)}) {
		t.Error("overloaded window must be detected at full utilization")
	}
	// τ1 = (2, 2, 4), τ2 = (2, 4, 4): h(2)=2, h(4)=4, h(6)=4... feasible.
	if !ExactFeasible([]task.Sporadic{sp(2, 2, 4), sp(2, 4, 4)}) {
		t.Error("staggered full-utilization set must be feasible")
	}
}

func TestExactFeasibleOverUtilization(t *testing.T) {
	if ExactFeasible([]task.Sporadic{sp(3, 4, 4), sp(2, 4, 4)}) {
		t.Error("U > 1 must be infeasible")
	}
}

func TestEmptySetFeasible(t *testing.T) {
	if !ExactFeasible(nil) || !ApproxFeasible(nil) {
		t.Error("empty set must be feasible under both tests")
	}
}

func TestApproxFeasibleSufficiency(t *testing.T) {
	// Whatever ApproxFeasible accepts, ExactFeasible must accept too.
	r := rand.New(rand.NewSource(4))
	accepted := 0
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(4)
		set := make([]task.Sporadic, 0, n)
		for i := 0; i < n; i++ {
			tt := Time(2 + r.Intn(40))
			d := Time(1 + r.Intn(int(tt)))
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		if ApproxFeasible(set) {
			accepted++
			if !ExactFeasible(set) {
				t.Fatalf("DBF* accepted but exact test rejected: %v", set)
			}
		}
	}
	if accepted == 0 {
		t.Error("test vacuous: ApproxFeasible never accepted")
	}
}

func TestFitsApproxIncrementalAgreesWithWhole(t *testing.T) {
	// Admitting tasks one at a time in non-decreasing deadline order via
	// FitsApprox must be exactly equivalent to ApproxFeasible on the set.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(5)
		set := make([]task.Sporadic, 0, n)
		for i := 0; i < n; i++ {
			tt := Time(2 + r.Intn(40))
			d := Time(1 + r.Intn(int(tt)))
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		// Sort by deadline.
		for i := range set {
			for j := i + 1; j < len(set); j++ {
				if set[j].D < set[i].D {
					set[i], set[j] = set[j], set[i]
				}
			}
		}
		var assigned []task.Sporadic
		incOK := true
		for _, s := range set {
			if !FitsApprox(assigned, s) {
				incOK = false
				break
			}
			assigned = append(assigned, s)
		}
		if incOK != ApproxFeasible(set) {
			t.Fatalf("incremental=%v whole=%v for %v", incOK, ApproxFeasible(set), set)
		}
	}
}

func TestSlackApproxSignAgreesWithFits(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		var assigned []task.Sporadic
		for i := 0; i < r.Intn(3); i++ {
			tt := Time(4 + r.Intn(30))
			d := Time(2 + r.Intn(int(tt)-1))
			assigned = append(assigned, sp(Time(1+r.Intn(int(d))), d, tt))
		}
		tt := Time(4 + r.Intn(30))
		d := Time(2 + r.Intn(int(tt)-1))
		cand := sp(Time(1+r.Intn(int(d))), d, tt)
		fits := FitsApprox(assigned, cand)
		slack := SlackApprox(assigned, cand)
		if fits != (slack >= 0) {
			t.Fatalf("fits=%v but slack=%v for cand=%v assigned=%v", fits, slack, cand, assigned)
		}
	}
}

func TestMaxDeadlineBelow(t *testing.T) {
	set := []task.Sporadic{sp(1, 3, 5), sp(1, 4, 7)}
	// Absolute deadlines: 3,8,13,18,... and 4,11,18,...
	cases := []struct {
		t    Time
		want Time
		ok   bool
	}{
		{3, -1, false}, {4, 3, true}, {5, 4, true}, {12, 11, true}, {19, 18, true},
	}
	for _, c := range cases {
		got, ok := maxDeadlineBelow(set, c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("maxDeadlineBelow(%d) = %d,%v want %d,%v", c.t, got, ok, c.want, c.ok)
		}
	}
}

func TestExactTestBoundDominatesDeadlines(t *testing.T) {
	set := []task.Sporadic{sp(2, 9, 10), sp(3, 30, 40)}
	bound, ok := exactTestBound(set)
	if !ok {
		t.Fatal("bound must exist for U<1")
	}
	if bound < 30 {
		t.Errorf("bound %d < D_max 30", bound)
	}
}

func TestAsSporadics(t *testing.T) {
	sys := task.System{
		task.MustNew("a", dag.Example1(), 16, 20),
		task.MustNew("b", dag.Singleton(3), 7, 9),
	}
	set := AsSporadics(sys)
	if len(set) != 2 || set[0].C != 9 || set[0].D != 16 || set[1].C != 3 {
		t.Errorf("AsSporadics = %v", set)
	}
}

func TestPaperExample2DemandExplosion(t *testing.T) {
	// Example 2: n tasks (C=1, D=1, T=n). Demand at t=1 is n, so the set is
	// exactly n-times over capacity at that instant: ExactFeasible must
	// reject for n ≥ 2 and accept n = 1.
	for n := 1; n <= 8; n++ {
		set := make([]task.Sporadic, n)
		for i := range set {
			set[i] = sp(1, 1, Time(n))
		}
		want := n == 1
		if got := ExactFeasible(set); got != want {
			t.Errorf("n=%d: ExactFeasible = %v, want %v", n, got, want)
		}
	}
}

func BenchmarkExactFeasibleQPA(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	sets := make([][]task.Sporadic, 32)
	for i := range sets {
		var set []task.Sporadic
		for j := 0; j < 8; j++ {
			tt := Time(10 + r.Intn(1000))
			d := Time(1+r.Intn(int(tt))) | 1
			c := Time(1 + r.Intn(int(d)))
			set = append(set, sp(c, d, tt))
		}
		sets[i] = set
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactFeasible(sets[i%len(sets)])
	}
}

func BenchmarkApproxFeasible(b *testing.B) {
	set := []task.Sporadic{sp(2, 9, 10), sp(3, 30, 40), sp(5, 50, 60), sp(1, 7, 100)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ApproxFeasible(set)
	}
}

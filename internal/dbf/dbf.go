// Package dbf implements demand bound functions and uniprocessor EDF
// schedulability analysis for constrained-deadline sporadic task sets.
//
// It provides three layers:
//
//  1. The exact demand bound function DBF(τ, t) of Baruah, Mok and Rosier
//     (RTSS 1990): the maximum cumulative execution demand of jobs of τ with
//     both arrival and deadline inside any interval of length t.
//  2. The paper's Equation (1): the DBF* linear approximation
//     DBF*(τ, t) = 0 for t < D, and vol + u·(t − D) otherwise, which upper-
//     bounds DBF and is what the PARTITION algorithm (paper Fig. 4) tests.
//  3. Uniprocessor EDF schedulability tests built on the two: the sufficient
//     DBF*-based test underlying Baruah–Fisher partitioning, and the exact
//     processor-demand test accelerated by QPA (Zhang & Burns, 2009).
//
// Exactness note: DBF* is a rational-valued function (slope u = C/T). The
// package computes it both in float64 (fast path) and in math/big.Rat
// (ExactApprox* functions) so that the bin-packing comparisons that decide
// schedulability never hinge on floating-point rounding.
package dbf

import (
	"fmt"
	"math/big"
	"sort"

	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// DBF returns the exact demand bound function of the sporadic task s at
// interval length t:
//
//	DBF(s, t) = max(0, ⌊(t − D)/T⌋ + 1) · C
//
// i.e. the total WCET of the maximum number of jobs that can have both their
// release and their deadline within a window of length t.
func DBF(s task.Sporadic, t Time) Time {
	if t < s.D {
		return 0
	}
	n := (t-s.D)/s.T + 1
	return n * s.C
}

// Approx returns DBF*(s, t) per the paper's Equation (1), in float64:
//
//	DBF*(s, t) = 0            if t < D
//	           = C + u·(t−D)  otherwise, where u = C/T.
//
// Approx(s, t) ≥ DBF(s, t) for all t, with equality at t = D.
func Approx(s task.Sporadic, t Time) float64 {
	if t < s.D {
		return 0
	}
	return float64(s.C) + float64(s.C)/float64(s.T)*float64(t-s.D)
}

// ApproxRat returns DBF*(s, t) exactly as a rational.
func ApproxRat(s task.Sporadic, t Time) *big.Rat {
	if t < s.D {
		return new(big.Rat)
	}
	// C + C·(t−D)/T = (C·T + C·(t−D)) / T, computed in big to avoid overflow.
	num := new(big.Int).Mul(big.NewInt(s.C), big.NewInt(s.T+t-s.D))
	return new(big.Rat).SetFrac(num, big.NewInt(s.T))
}

// TotalDBF returns Σ_i DBF(τ_i, t).
func TotalDBF(set []task.Sporadic, t Time) Time {
	var h Time
	for _, s := range set {
		h += DBF(s, t)
	}
	return h
}

// TotalApproxRat returns Σ_i DBF*(τ_i, t) exactly.
func TotalApproxRat(set []task.Sporadic, t Time) *big.Rat {
	sum := new(big.Rat)
	for _, s := range set {
		sum.Add(sum, ApproxRat(s, t))
	}
	return sum
}

// TotalUtilizationRat returns Σ_i C_i/T_i exactly.
func TotalUtilizationRat(set []task.Sporadic) *big.Rat {
	sum := new(big.Rat)
	for _, s := range set {
		sum.Add(sum, s.UtilizationRat())
	}
	return sum
}

// one is the rational constant 1, shared read-only.
var one = big.NewRat(1, 1)

// ApproxFeasible reports whether the task set passes the sufficient
// DBF*-based uniprocessor EDF test used by Baruah–Fisher partitioning:
//
//	Σ u_i ≤ 1, and Σ_j DBF*(τ_j, D_i) ≤ D_i at every relative deadline D_i.
//
// Because each DBF* is linear beyond its own deadline, demand between
// breakpoints grows at slope Σ u ≤ 1, so checking the breakpoints D_i plus
// the slope condition establishes Σ DBF*(t) ≤ t for all t ≥ 0 — and since
// DBF ≤ DBF*, the set is EDF-schedulable on a unit-speed processor.
// Comparisons are performed in exact rational arithmetic.
func ApproxFeasible(set []task.Sporadic) bool {
	if len(set) == 0 {
		return true
	}
	if TotalUtilizationRat(set).Cmp(one) > 0 {
		return false
	}
	for _, s := range set {
		if TotalApproxRat(set, s.D).Cmp(new(big.Rat).SetInt64(s.D)) > 0 {
			return false
		}
	}
	return true
}

// FitsApprox reports whether cand can be added to the set already assigned to
// a processor, per the Baruah–Fisher first-fit admission condition (paper
// Fig. 4, line 3, plus the utilization condition of [7, Corollary 1]):
//
//	vol(cand) + Σ_{τ_j ∈ assigned} DBF*(τ_j, D_cand) ≤ D_cand
//	u(cand)   + Σ_{τ_j ∈ assigned} u_j                ≤ 1
//
// The caller must offer candidates in non-decreasing deadline order for the
// resulting assignment to be EDF-schedulable (already-assigned tasks then
// have deadlines ≤ D_cand, so all DBF* breakpoints were checked on their own
// admission). See package comment for the exactness guarantee.
func FitsApprox(assigned []task.Sporadic, cand task.Sporadic) bool {
	u := TotalUtilizationRat(assigned)
	u.Add(u, cand.UtilizationRat())
	if u.Cmp(one) > 0 {
		return false
	}
	demand := TotalApproxRat(assigned, cand.D)
	demand.Add(demand, new(big.Rat).SetInt64(cand.C))
	return demand.Cmp(new(big.Rat).SetInt64(cand.D)) <= 0
}

// FitReport is the explained form of FitsApprox: both Baruah–Fisher
// admission inequalities for one candidate against one processor, with the
// quantities an engineer needs to see why a placement was refused. The
// verdict fields come from exact rational comparisons; the float fields are
// renderings for traces and diagnostics.
type FitReport struct {
	// Util is u(cand) + Σ u_j; UtilOK reports Util ≤ 1.
	Util   float64
	UtilOK bool
	// Demand is vol(cand) + Σ DBF*(τ_j, D_cand); Capacity is D_cand;
	// DemandOK reports Demand ≤ Capacity.
	Demand   float64
	Capacity Time
	DemandOK bool
}

// OK reports whether both inequalities hold — identical to FitsApprox.
func (r FitReport) OK() bool { return r.UtilOK && r.DemandOK }

// Inequality renders the decisive inequality: the failing one (utilization
// first, matching the evaluation order of FitsApprox), or the satisfied
// demand inequality when the candidate fits.
func (r FitReport) Inequality() string {
	if !r.UtilOK {
		return fmt.Sprintf("Σu = %.4g > 1", r.Util)
	}
	rel := "≤"
	if !r.DemandOK {
		rel = ">"
	}
	return fmt.Sprintf("C + ΣDBF*(D=%d) = %.4g %s %d", r.Capacity, r.Demand, rel, r.Capacity)
}

// ExplainFit evaluates both admission inequalities of FitsApprox and
// returns them with their operands. Unlike FitsApprox it does not
// short-circuit on the utilization test, so a trace always shows both
// sides; it is therefore only called on traced (or diagnosing) paths.
func ExplainFit(assigned []task.Sporadic, cand task.Sporadic) FitReport {
	u := TotalUtilizationRat(assigned)
	u.Add(u, cand.UtilizationRat())
	demand := TotalApproxRat(assigned, cand.D)
	demand.Add(demand, new(big.Rat).SetInt64(cand.C))
	rep := FitReport{Capacity: cand.D, UtilOK: u.Cmp(one) <= 0}
	rep.Util, _ = u.Float64()
	rep.Demand, _ = demand.Float64()
	rep.DemandOK = demand.Cmp(new(big.Rat).SetInt64(cand.D)) <= 0
	return rep
}

// SlackApprox returns D − (vol(cand) + Σ DBF*(assigned, D_cand)) as a float,
// the admission margin used by best-fit/worst-fit partitioning heuristics.
// Negative slack means cand does not fit.
func SlackApprox(assigned []task.Sporadic, cand task.Sporadic) float64 {
	demand := TotalApproxRat(assigned, cand.D)
	demand.Add(demand, new(big.Rat).SetInt64(cand.C))
	slack := new(big.Rat).Sub(new(big.Rat).SetInt64(cand.D), demand)
	f, _ := slack.Float64()
	u := TotalUtilizationRat(assigned)
	u.Add(u, cand.UtilizationRat())
	if u.Cmp(one) > 0 {
		return -1
	}
	return f
}

// exactTestBound computes an upper bound L on the length of the interval the
// exact processor-demand test must examine, assuming Σ u_i < 1:
//
//	L_a = max( D_max, Σ_i (T_i − D_i)·u_i / (1 − U) )
//
// For constrained deadlines every term (T_i − D_i) is ≥ 0. The returned bound
// is rounded up to the next integer tick.
func exactTestBound(set []task.Sporadic) (Time, bool) {
	u := TotalUtilizationRat(set)
	if u.Cmp(one) >= 0 {
		return 0, false
	}
	num := new(big.Rat)
	var dmax Time
	for _, s := range set {
		if s.D > dmax {
			dmax = s.D
		}
		term := new(big.Rat).Mul(big.NewRat(s.T-s.D, 1), s.UtilizationRat())
		num.Add(num, term)
	}
	den := new(big.Rat).Sub(one, u)
	la := new(big.Rat).Quo(num, den)
	// Round up to integer.
	i := new(big.Int).Div(la.Num(), la.Denom())
	bound := Time(i.Int64())
	if new(big.Rat).SetInt64(bound).Cmp(la) < 0 {
		bound++
	}
	if bound < dmax {
		bound = dmax
	}
	return bound, true
}

// maxDeadlineBelow returns the largest absolute deadline k·T_i + D_i that is
// strictly smaller than t, over all tasks, and whether one exists.
func maxDeadlineBelow(set []task.Sporadic, t Time) (Time, bool) {
	var best Time = -1
	for _, s := range set {
		if s.D >= t {
			continue
		}
		// Largest k with k·T + D < t:  k = ⌈(t − D)/T⌉ − 1 = ⌊(t − D − 1)/T⌋.
		k := (t - s.D - 1) / s.T
		d := k*s.T + s.D
		if d > best {
			best = d
		}
	}
	return best, best >= 0
}

// ExactFeasible reports whether the constrained-deadline sporadic task set is
// EDF-schedulable on one unit-speed preemptive processor, using the exact
// processor-demand criterion  ∀t ≥ 0: Σ DBF(τ_i, t) ≤ t,  accelerated by the
// QPA iteration of Zhang & Burns. This is an exact (necessary and
// sufficient) test whenever Σ u_i < 1; for Σ u_i == 1 exactly the test falls
// back to checking all absolute deadlines up to the hyperperiod (and reports
// false on hyperperiod overflow — a conservative answer). Σ u_i > 1 is
// always infeasible.
func ExactFeasible(set []task.Sporadic) bool {
	if len(set) == 0 {
		return true
	}
	// Integer fast paths with big.Rat fallbacks: same exact comparisons, and
	// the fast interval bound only ever over-approximates L_a, under which
	// the QPA verdict is invariant.
	cmp, fast := utilizationCmpOne(set)
	if !fast {
		cmp = TotalUtilizationRat(set).Cmp(one)
	}
	if cmp > 0 {
		return false
	}
	if cmp == 0 {
		return exactFeasibleFullUtil(set)
	}
	bound, ok := exactBoundFast(set)
	if !ok {
		bound, ok = exactTestBound(set)
		if !ok {
			return false
		}
	}
	return qpa(set, bound)
}

// qpa runs the QPA iteration: starting from the largest absolute deadline
// below the bound L, it walks t downward via t ← h(t) (or the next smaller
// deadline when h(t) = t), declaring failure the moment h(t) > t.
func qpa(set []task.Sporadic, l Time) bool {
	dmin := set[0].D
	for _, s := range set[1:] {
		if s.D < dmin {
			dmin = s.D
		}
	}
	t, ok := maxDeadlineBelow(set, l+1) // largest deadline ≤ L
	if !ok {
		return true // no deadline within the bound: vacuously schedulable
	}
	for {
		h := TotalDBF(set, t)
		if h > t {
			return false
		}
		if h <= dmin {
			return true
		}
		if h < t {
			t = h
		} else { // h == t: step to the next smaller absolute deadline
			nt, ok := maxDeadlineBelow(set, t)
			if !ok {
				return true
			}
			t = nt
		}
	}
}

// exactFeasibleFullUtil handles Σ u_i == 1 by enumerating every absolute
// deadline up to hyperperiod + D_max. Returns false conservatively if the
// hyperperiod overflows the enumeration budget.
func exactFeasibleFullUtil(set []task.Sporadic) bool {
	const maxHyper = Time(1) << 32
	hyper := Time(1)
	for _, s := range set {
		hyper = lcm(hyper, s.T)
		if hyper <= 0 || hyper > maxHyper {
			return false // overflow / too large: conservative answer
		}
	}
	var dmax Time
	for _, s := range set {
		if s.D > dmax {
			dmax = s.D
		}
	}
	limit := hyper + dmax
	// Collect all absolute deadlines ≤ limit and check demand at each.
	var deadlines []Time
	for _, s := range set {
		for d := s.D; d <= limit; d += s.T {
			deadlines = append(deadlines, d)
		}
		if len(deadlines) > 1<<22 {
			return false // enumeration budget exceeded: conservative
		}
	}
	sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })
	for _, t := range deadlines {
		if TotalDBF(set, t) > t {
			return false
		}
	}
	return true
}

func gcd(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b Time) Time {
	return a / gcd(a, b) * b
}

// AsSporadics collapses a DAG task system into three-parameter tasks
// (C = vol_i, D_i, T_i), the representation PARTITION operates on.
func AsSporadics(sys task.System) []task.Sporadic {
	out := make([]task.Sporadic, len(sys))
	for i, tk := range sys {
		out[i] = tk.AsSporadic()
	}
	return out
}

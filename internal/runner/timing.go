package runner

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// Per-analyzer timing: when enabled, every Analyzer handed out by Lookup is
// wrapped so each Schedulable call is observed into a per-name latency
// histogram (internal/obs). Off by default — the sweep engine's hot loops pay
// only one atomic load — and intended for `experiments -timing` and ad-hoc
// profiling of which analyzers dominate a sweep's wall-clock.
var (
	timingOn atomic.Bool

	timingMu sync.Mutex
	timings  = map[string]*obs.Histogram{}
)

// EnableTiming turns on per-analyzer latency recording for all analyzers
// subsequently returned by Lookup/MustLookup.
func EnableTiming() { timingOn.Store(true) }

// TimingEnabled reports whether analyzer timing is on.
func TimingEnabled() bool { return timingOn.Load() }

// ResetTiming clears recorded timings and disables recording (tests).
func ResetTiming() {
	timingOn.Store(false)
	timingMu.Lock()
	timings = map[string]*obs.Histogram{}
	timingMu.Unlock()
}

// histFor returns (creating if needed) the histogram for one analyzer name.
func histFor(name string) *obs.Histogram {
	timingMu.Lock()
	defer timingMu.Unlock()
	h, ok := timings[name]
	if !ok {
		h = &obs.Histogram{}
		timings[name] = h
	}
	return h
}

// timed wraps an Analyzer so each Schedulable call lands in the shared
// per-name histogram. Name is forwarded unchanged — the registry contract
// Lookup(name).Name() == name survives wrapping.
type timed struct {
	inner Analyzer
	hist  *obs.Histogram
}

func (t timed) Name() string { return t.inner.Name() }

func (t timed) Schedulable(sys task.System, m int) bool {
	start := time.Now()
	ok := t.inner.Schedulable(sys, m)
	t.hist.Observe(time.Since(start))
	return ok
}

// maybeTimed wraps a in a timing recorder iff timing is enabled.
func maybeTimed(a Analyzer) Analyzer {
	if !timingOn.Load() {
		return a
	}
	return timed{inner: a, hist: histFor(a.Name())}
}

// AnalyzerTiming is one analyzer's aggregate latency record.
type AnalyzerTiming struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// TimingSnapshot returns the recorded per-analyzer timings, sorted by name;
// analyzers never invoked (count 0) are omitted.
func TimingSnapshot() []AnalyzerTiming {
	timingMu.Lock()
	names := make([]string, 0, len(timings))
	hists := make([]*obs.Histogram, 0, len(timings))
	for name, h := range timings {
		names = append(names, name)
		hists = append(hists, h)
	}
	timingMu.Unlock()
	out := make([]AnalyzerTiming, 0, len(names))
	for i, name := range names {
		h := hists[i]
		if h.Count() == 0 {
			continue
		}
		out = append(out, AnalyzerTiming{
			Name:   name,
			Count:  h.Count(),
			SumNs:  h.SumNs(),
			MeanNs: h.MeanNs(),
			P50Ns:  h.Quantile(0.50),
			P99Ns:  h.Quantile(0.99),
			MaxNs:  h.MaxNs(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

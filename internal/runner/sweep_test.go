package runner

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestSeedForDistinct checks the derived seeds are collision-free across a
// realistic coordinate grid and sensitive to every coordinate.
func TestSeedForDistinct(t *testing.T) {
	seen := map[int64][4]int64{}
	for _, suite := range []int64{0, 1, 2015, -7} {
		for _, exp := range []int64{4, 21, 1700, 1702} {
			for point := 0; point < 12; point++ {
				for trial := 0; trial < 50; trial++ {
					s := SeedFor(suite, exp, point, trial)
					key := [4]int64{suite, exp, int64(point), int64(trial)}
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision: %v and %v both derive %d", prev, key, s)
					}
					seen[s] = key
				}
			}
		}
	}
}

func TestSeedForDeterministic(t *testing.T) {
	if SeedFor(2015, 4, 3, 17) != SeedFor(2015, 4, 3, 17) {
		t.Fatal("SeedFor is not a pure function")
	}
}

// trialID records the coordinates and first random draw of a trial, which is
// enough to detect both misrouted results and order-dependent randomness.
type trialID struct {
	Point, Trial int
	Draw         int64
}

func runGrid(t *testing.T, workers int) [][]trialID {
	t.Helper()
	out, err := Run(Sweep{Seed: 99, Exp: 7, Points: 5, Trials: 40, Workers: workers},
		func(point, trial int, r *rand.Rand) (trialID, error) {
			return trialID{Point: point, Trial: trial, Draw: r.Int63()}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunDeterministicAcrossWorkerCounts is the engine-level statement of
// the suite's load-bearing guarantee: worker count never changes results.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	seq := runGrid(t, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		par := runGrid(t, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
	for p, row := range seq {
		for tr, v := range row {
			if v.Point != p || v.Trial != tr {
				t.Fatalf("result for (%d,%d) landed at [%d][%d]", v.Point, v.Trial, p, tr)
			}
		}
	}
}

func TestRunProgressMonotone(t *testing.T) {
	var calls []int
	_, err := Run(Sweep{Seed: 1, Exp: 1, Points: 3, Trials: 7, Workers: 4,
		OnTrial: func(done, total int) {
			if total != 21 {
				t.Errorf("total = %d, want 21", total)
			}
			calls = append(calls, done)
		}},
		func(point, trial int, r *rand.Rand) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 21 {
		t.Fatalf("%d progress calls, want 21", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d", i, d)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Sweep{Seed: 1, Exp: 2, Points: 4, Trials: 25, Workers: 8},
		func(point, trial int, r *rand.Rand) (int, error) {
			if point == 2 && trial == 3 {
				return 0, boom
			}
			return 1, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunEmptyAndInvalid(t *testing.T) {
	out, err := Run(Sweep{Points: 0, Trials: 10}, func(p, tr int, r *rand.Rand) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	if _, err := Run(Sweep{Points: -1, Trials: 1}, func(p, tr int, r *rand.Rand) (int, error) { return 0, nil }); err == nil {
		t.Error("negative Points accepted")
	}
	if _, err := Run[int](Sweep{Points: 1, Trials: 1}, nil); err == nil {
		t.Error("nil trial function accepted")
	}
}

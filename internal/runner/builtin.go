package runner

import (
	"runtime"

	"fedsched/internal/baseline"
	"fedsched/internal/core"
	"fedsched/internal/partition"
	"fedsched/internal/sim"
	"fedsched/internal/task"

	// Register the pluggable admission policies the analyzers below select
	// by name.
	_ "fedsched/internal/reservation"
	_ "fedsched/internal/semifed"
	_ "fedsched/internal/typedfed"
)

// Built-in analyzers: FEDCONS in both MINPROCS modes and its partition-phase
// ablation variants, the baseline algorithms of package baseline, and the
// pure-partition (no federation) variants used by the E8 ablation. The names
// are the vocabulary the experiment tables use.
func init() {
	// FEDCONS, paper configuration: LS-scan MINPROCS, first-fit DBF*.
	Register(fedcons("fedcons", core.Options{}))
	// The same analysis with Phase-1 MINPROCS scans fanned out across a
	// GOMAXPROCS worker pool — byte-identical verdicts (core's differential
	// matrix pins this; TestFedconsParEquivalence diffs the analyzers), so
	// sweeps may substitute it freely for wall-clock.
	Register(fedcons("fedcons-par", core.Options{Par: runtime.GOMAXPROCS(0)}))
	// FEDCONS with the analytic closed-form MINPROCS (E7 ablation).
	Register(fedcons("fedcons-analytic", core.Options{Minprocs: core.Analytic}))
	// FEDCONS with alternative phase-2 packings and admission tests
	// (E8/E16 ablations).
	Register(fedcons("fedcons-bf", core.Options{Partition: partition.Options{Heuristic: partition.BestFit}}))
	Register(fedcons("fedcons-wf", core.Options{Partition: partition.Options{Heuristic: partition.WorstFit}}))
	Register(fedcons("fedcons-exact-edf", core.Options{Partition: partition.Options{Test: partition.ExactEDF}}))
	Register(fedcons("fedcons-dm-rta", core.Options{Partition: partition.Options{Test: partition.DMRta}}))

	// The pluggable policies (E22): semi-federated fractional grants and
	// reservation-based federated scheduling, each falling back to strict
	// FEDCONS, so their acceptance dominates "fedcons" pointwise.
	Register(fedcons("semifed", core.Options{Policy: core.PolicySemi}))
	Register(fedcons("reservation", core.Options{Policy: core.PolicyReservation}))

	// Typed federated scheduling (E23): "typed" runs the degenerate
	// single-type platform (delegates to strict FEDCONS on untyped systems),
	// "typed-even" splits the platform evenly between types a and b.
	Register(fedcons("typed", core.Options{Policy: core.PolicyTyped}))
	Register(NewFunc("typed-even", func(sys task.System, m int) bool {
		return core.Schedulable(sys, m, core.Options{Policy: core.PolicyTyped, MTypes: []int{m - m/2, m / 2}})
	}))

	// Baselines (package baseline documents each).
	Register(NewFunc("part-seq", baseline.PartSeq))
	Register(NewFunc("li-fed", baseline.LiFed))
	Register(NewFunc("li-fed-d", baseline.LiFedD))
	Register(NewFunc("necessary", baseline.Necessary))

	// Pure partitioned scheduling of the collapsed sequential tasks under
	// each heuristic/test combination — PART-SEQ is "part-seq-ff-dbf" by
	// another name; the variants are what E8 sweeps.
	Register(partSeq("part-seq-ff-dbf", partition.Options{}))
	Register(partSeq("part-seq-bf-dbf", partition.Options{Heuristic: partition.BestFit}))
	Register(partSeq("part-seq-wf-dbf", partition.Options{Heuristic: partition.WorstFit}))
	Register(partSeq("part-seq-ff-exact", partition.Options{Test: partition.ExactEDF}))

	// Empirical cross-check: FEDCONS acceptance followed by a stress
	// simulation (sporadic arrivals, random execution times) under the fast
	// event-calendar engine, accepting only miss-free runs. An analytic
	// accept/simulation miss disagreement in a sweep would expose a soundness
	// bug, so experiments can diff this column against "fedcons".
	Register(NewFunc("fedcons-sim", fedconsSim))
}

// simCheckConfig is the fixed stress scenario fedcons-sim replays. The
// horizon is long enough to cover many hyperperiods of the generator's
// period range while staying cheap under the event-calendar engine.
var simCheckConfig = sim.Config{
	Horizon:  20_000,
	Arrivals: sim.SporadicRandom,
	Exec:     sim.UniformExec,
	Seed:     1,
}

func fedconsSim(sys task.System, m int) bool {
	alloc, err := core.Schedule(sys, m, core.Options{})
	if err != nil {
		return false
	}
	rep, err := sim.Federated(sys, alloc, simCheckConfig)
	if err != nil {
		return false
	}
	return rep.TotalMissed() == 0
}

func fedcons(name string, opt core.Options) Analyzer {
	return NewFunc(name, func(sys task.System, m int) bool {
		return core.Schedulable(sys, m, opt)
	})
}

func partSeq(name string, opt partition.Options) Analyzer {
	return NewFunc(name, func(sys task.System, m int) bool {
		_, err := partition.Partition(sys, m, opt)
		return err == nil
	})
}

// Package runner is the shared execution engine of the experiment suite: a
// registry of schedulability analyzers behind one interface, and a
// deterministic parallel sweep runner.
//
// Before this package existed every sweep-style experiment hand-rolled the
// same `for point { for trial { generate → analyze → count } }` loop over a
// single sequential RNG stream, which made the suite impossible to
// parallelize: any change in evaluation order changed which random system a
// trial saw. The engine fixes that by deriving every trial's RNG
// independently from the tuple (suite seed, experiment id, point index,
// trial index) — see SeedFor — so the result of a sweep is a pure function
// of its coordinates and is byte-identical regardless of worker count or
// scheduling order. That determinism-under-parallelism is a load-bearing
// property: the reproduction claims in EXPERIMENTS.md are tied to a seed,
// and they must not depend on how many cores regenerated them.
package runner

import (
	"fmt"
	"sort"
	"sync"

	"fedsched/internal/task"
)

// Analyzer is a schedulability test: it decides whether a sporadic DAG task
// system is accepted on m unit-speed processors. Implementations must be
// safe for concurrent use — the sweep engine calls them from many
// goroutines. All analyzers in this repository are pure functions of
// (sys, m), which satisfies that trivially.
type Analyzer interface {
	// Name is the registry key (stable, lower-case, hyphenated).
	Name() string
	// Schedulable reports acceptance of sys on m processors.
	Schedulable(sys task.System, m int) bool
}

// Func adapts a plain function to the Analyzer interface.
type Func struct {
	name string
	fn   func(task.System, int) bool
}

// NewFunc wraps fn as a named Analyzer.
func NewFunc(name string, fn func(task.System, int) bool) Func {
	return Func{name: name, fn: fn}
}

// Name implements Analyzer.
func (f Func) Name() string { return f.name }

// Schedulable implements Analyzer.
func (f Func) Schedulable(sys task.System, m int) bool { return f.fn(sys, m) }

// registry is the process-wide analyzer table. Built-in analyzers are
// registered at init time (builtin.go); extensions register at their own
// init. Guarded for concurrent Lookup during parallel sweeps.
var (
	registryMu sync.RWMutex
	registry   = map[string]Analyzer{}
)

// Register adds a to the registry. It panics on an empty name or a duplicate
// registration — both are programming errors, and a one-line Register call
// in an init function is the intended extension point for new baselines.
func Register(a Analyzer) {
	name := a.Name()
	if name == "" {
		panic("runner: Register with empty analyzer name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("runner: duplicate analyzer %q", name))
	}
	registry[name] = a
}

// Lookup returns the registered analyzer, or an error naming the known set.
// When analyzer timing is enabled (EnableTiming) the returned value is a
// transparent wrapper that records each Schedulable call's latency into the
// per-name histogram served by TimingSnapshot; Name() is unaffected.
func Lookup(name string) (Analyzer, error) {
	registryMu.RLock()
	a, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runner: unknown analyzer %q (have %v)", name, Names())
	}
	return maybeTimed(a), nil
}

// MustLookup is Lookup for registry keys known at compile time.
func MustLookup(name string) Analyzer {
	a, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names lists the registered analyzers in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package runner

import (
	"math/rand"
	"runtime"
	"testing"

	"fedsched/internal/baseline"
	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/partition"
	"fedsched/internal/sim"
	"fedsched/internal/task"
)

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"fedcons", "fedcons-analytic", "part-seq", "li-fed", "li-fed-d", "necessary"} {
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := Lookup("no-such-analyzer"); err == nil {
		t.Error("Lookup of unknown analyzer succeeded")
	}
	names := Names()
	if len(names) < 10 {
		t.Errorf("only %d built-in analyzers registered: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(NewFunc("fedcons", func(task.System, int) bool { return false }))
}

func TestRegisterRejectsEmptyName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty-name Register did not panic")
		}
	}()
	Register(NewFunc("", func(task.System, int) bool { return false }))
}

// corpus is a fixed set of generated systems — plus the paper's Example 1 —
// on which every registered analyzer must agree with the function it wraps.
func corpus(t *testing.T) []task.System {
	t.Helper()
	example1 := task.System{task.MustNew("e1", dag.Example1(), dag.Example1D, dag.Example1T)}
	out := []task.System{example1}
	r := rand.New(rand.NewSource(42))
	params := []gen.Params{
		gen.DefaultParams(6, 3.5),
		gen.DefaultParams(10, 6),
		gen.DefaultParams(4, 2),
	}
	params[1].BetaMin, params[1].BetaMax = 0.2, 0.5 // density-heavy
	params[2].BetaMin, params[2].BetaMax = 1, 1     // implicit deadlines
	for _, p := range params {
		for i := 0; i < 8; i++ {
			sys, err := gen.System(r, p)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, sys)
		}
	}
	return out
}

// TestBuiltinsAgreeWithWrappedFunctions pins every registry entry to the
// underlying algorithm it adapts, over the fixed corpus and several platform
// sizes. A disagreement means the adapter wired the wrong options.
func TestBuiltinsAgreeWithWrappedFunctions(t *testing.T) {
	direct := map[string]func(task.System, int) bool{
		"fedcons": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{})
		},
		"fedcons-analytic": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Minprocs: core.Analytic})
		},
		"fedcons-par": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Par: runtime.GOMAXPROCS(0)})
		},
		"fedcons-bf": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Partition: partition.Options{Heuristic: partition.BestFit}})
		},
		"fedcons-wf": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Partition: partition.Options{Heuristic: partition.WorstFit}})
		},
		"fedcons-exact-edf": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Partition: partition.Options{Test: partition.ExactEDF}})
		},
		"fedcons-dm-rta": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Partition: partition.Options{Test: partition.DMRta}})
		},
		"semifed": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Policy: core.PolicySemi})
		},
		"reservation": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Policy: core.PolicyReservation})
		},
		"typed": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Policy: core.PolicyTyped})
		},
		"typed-even": func(sys task.System, m int) bool {
			return core.Schedulable(sys, m, core.Options{Policy: core.PolicyTyped, MTypes: []int{m - m/2, m / 2}})
		},
		"part-seq": baseline.PartSeq,
		"li-fed":   baseline.LiFed,
		"li-fed-d": baseline.LiFedD,
		"necessary": func(sys task.System, m int) bool {
			return baseline.Necessary(sys, m)
		},
		"part-seq-ff-dbf": func(sys task.System, m int) bool {
			_, err := partition.Partition(sys, m, partition.Options{})
			return err == nil
		},
		"part-seq-bf-dbf": func(sys task.System, m int) bool {
			_, err := partition.Partition(sys, m, partition.Options{Heuristic: partition.BestFit})
			return err == nil
		},
		"part-seq-wf-dbf": func(sys task.System, m int) bool {
			_, err := partition.Partition(sys, m, partition.Options{Heuristic: partition.WorstFit})
			return err == nil
		},
		"part-seq-ff-exact": func(sys task.System, m int) bool {
			_, err := partition.Partition(sys, m, partition.Options{Test: partition.ExactEDF})
			return err == nil
		},
		"fedcons-sim": func(sys task.System, m int) bool {
			alloc, err := core.Schedule(sys, m, core.Options{})
			if err != nil {
				return false
			}
			rep, err := sim.Federated(sys, alloc, sim.Config{
				Horizon:  20_000,
				Arrivals: sim.SporadicRandom,
				Exec:     sim.UniformExec,
				Seed:     1,
			})
			return err == nil && rep.TotalMissed() == 0
		},
	}
	systems := corpus(t)
	for _, name := range Names() {
		want, covered := direct[name]
		if !covered {
			t.Errorf("registered analyzer %q has no direct reference in this test — add one", name)
			continue
		}
		a := MustLookup(name)
		for si, sys := range systems {
			for _, m := range []int{1, 2, 4, 8} {
				if got, exp := a.Schedulable(sys, m), want(sys, m); got != exp {
					t.Errorf("%s: system %d, m=%d: registry says %v, wrapped function says %v", name, si, m, got, exp)
				}
			}
		}
	}
	// Example 1 sanity anchor: the paper schedules it on 2 processors with
	// FEDCONS (δ = 9/16 < 1, so it is a low-density task packed by DBF*).
	e1 := systems[0]
	if !MustLookup("fedcons").Schedulable(e1, 2) {
		t.Error("fedcons rejects Example 1 on m=2")
	}
	if MustLookup("fedcons").Schedulable(e1, 0) {
		t.Error("fedcons accepts Example 1 on m=0")
	}
}

// TestFedconsParEquivalence diffs the fedcons-par analyzer against fedcons
// over the whole corpus and a platform sweep: the worker pool must never
// change a verdict (core's parallel engine is byte-deterministic; this pins
// the registry wiring end to end).
func TestFedconsParEquivalence(t *testing.T) {
	seq, err := Lookup("fedcons")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Lookup("fedcons-par")
	if err != nil {
		t.Fatal(err)
	}
	for i, sys := range corpus(t) {
		for m := 1; m <= 64; m *= 2 {
			want, got := seq.Schedulable(sys, m), par.Schedulable(sys, m)
			if got != want {
				t.Errorf("corpus[%d] m=%d: fedcons-par=%v, fedcons=%v", i, m, got, want)
			}
		}
	}
}

package runner

import (
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func TestTimingDisabledByDefault(t *testing.T) {
	ResetTiming()
	a := MustLookup("fedcons")
	if _, wrapped := a.(timed); wrapped {
		t.Fatal("Lookup wraps analyzers while timing is disabled")
	}
	sys := task.System{task.MustNew("x", dag.Singleton(1), 2, 2)}
	a.Schedulable(sys, 1)
	if got := TimingSnapshot(); len(got) != 0 {
		t.Errorf("snapshot = %v, want empty", got)
	}
}

func TestTimingRecordsPerAnalyzer(t *testing.T) {
	ResetTiming()
	defer ResetTiming()
	EnableTiming()
	a := MustLookup("fedcons")
	if a.Name() != "fedcons" {
		t.Fatalf("wrapped Name = %q", a.Name())
	}
	sys := task.System{task.MustNew("x", dag.Singleton(1), 2, 2)}
	for i := 0; i < 5; i++ {
		if !a.Schedulable(sys, 1) {
			t.Fatal("trivial system rejected")
		}
	}
	// A second analyzer gets its own histogram.
	b := MustLookup("necessary")
	b.Schedulable(sys, 1)

	snap := TimingSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2: %v", len(snap), snap)
	}
	// Sorted by name: fedcons before necessary.
	if snap[0].Name != "fedcons" || snap[1].Name != "necessary" {
		t.Fatalf("snapshot order %q, %q", snap[0].Name, snap[1].Name)
	}
	fc := snap[0]
	if fc.Count != 5 {
		t.Errorf("fedcons count = %d, want 5", fc.Count)
	}
	if fc.SumNs < fc.MaxNs || fc.P99Ns > fc.MaxNs || fc.MeanNs > fc.MaxNs {
		t.Errorf("inconsistent aggregates: %+v", fc)
	}
}

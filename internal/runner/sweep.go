package runner

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// SeedFor derives the RNG seed of one trial from its coordinates. Each of
// the four inputs is folded into a splitmix64-style avalanche, so trials of
// the same suite seed but different (experiment, point, trial) coordinates
// receive decorrelated streams — unlike the previous shared-stream design,
// where trial k's randomness depended on everything drawn by trials 0..k−1
// across every point of the experiment.
func SeedFor(suiteSeed, expID int64, point, trial int) int64 {
	h := uint64(suiteSeed)
	for _, v := range [...]uint64{uint64(expID), uint64(point), uint64(trial)} {
		h = mix64(h + 0x9e3779b97f4a7c15 + v)
	}
	return int64(h)
}

// mix64 is the splitmix64 finalizer (Steele, Lea & Flood).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sweep describes a points × trials grid of independent experiment trials.
type Sweep struct {
	// Seed is the suite seed (exp.Config.Seed).
	Seed int64
	// Exp identifies the experiment (sub-sweeps of one experiment use
	// distinct ids so their streams never collide).
	Exp int64
	// Points is the number of sweep points (x-axis values).
	Points int
	// Trials is the number of trials evaluated at each point.
	Trials int
	// Workers bounds the worker pool; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnTrial, when non-nil, is called after each completed trial with the
	// running completion count. Calls are serialized and done is strictly
	// increasing up to Points×Trials.
	OnTrial func(done, total int)
}

// Run evaluates fn at every (point, trial) coordinate of the sweep on a
// bounded worker pool and returns the results indexed [point][trial].
//
// Each invocation receives its own *rand.Rand seeded by SeedFor, so the
// returned slice is byte-for-byte deterministic in (Seed, Exp, Points,
// Trials) — Workers only changes wall-clock time, never results. fn must not
// share mutable state across calls; everything it needs beyond the trial
// coordinates should be captured immutably.
//
// The first error stops dispatch of further trials and is returned after
// in-flight trials drain.
func Run[T any](s Sweep, fn func(point, trial int, r *rand.Rand) (T, error)) ([][]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("runner: nil trial function")
	}
	if s.Points < 0 || s.Trials < 0 {
		return nil, fmt.Errorf("runner: negative sweep shape %d×%d", s.Points, s.Trials)
	}
	out := make([][]T, s.Points)
	for p := range out {
		out[p] = make([]T, s.Trials)
	}
	total := s.Points * s.Trials
	if total == 0 {
		return out, nil
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	var (
		jobs = make(chan int)
		stop = make(chan struct{})
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
			close(stop)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				p, t := idx/s.Trials, idx%s.Trials
				r := rand.New(rand.NewSource(SeedFor(s.Seed, s.Exp, p, t)))
				v, err := fn(p, t, r)
				if err != nil {
					fail(fmt.Errorf("runner: point %d trial %d: %w", p, t, err))
					continue
				}
				out[p][t] = v
				mu.Lock()
				done++
				if s.OnTrial != nil && firstErr == nil {
					s.OnTrial(done, total)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for idx := 0; idx < total; idx++ {
		select {
		case jobs <- idx:
		case <-stop:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return out, firstErr
}

package dag

import (
	"encoding/json"
	"fmt"
	"strings"
)

// jsonDAG is the wire form of a DAG.
type jsonDAG struct {
	Vertices []jsonVertex `json:"vertices"`
	Edges    [][2]int     `json:"edges"`
}

type jsonVertex struct {
	Name string `json:"name,omitempty"`
	WCET Time   `json:"wcet"`
	// Type is omitted for the default type 0, so untyped graphs keep their
	// pre-typed wire bytes (and hence content hashes of encoded systems).
	Type int `json:"type,omitempty"`
}

// MarshalJSON encodes the DAG as {"vertices":[{name,wcet}...],"edges":[[u,v]...]}.
func (g *DAG) MarshalJSON() ([]byte, error) {
	jd := jsonDAG{
		Vertices: make([]jsonVertex, g.N()),
		Edges:    g.Edges(),
	}
	for v := 0; v < g.N(); v++ {
		jd.Vertices[v] = jsonVertex{Name: g.verts[v].Name, WCET: g.verts[v].WCET, Type: g.verts[v].Type}
	}
	if jd.Edges == nil {
		jd.Edges = [][2]int{}
	}
	return json.Marshal(jd)
}

// UnmarshalJSON decodes and validates a DAG from its wire form.
func (g *DAG) UnmarshalJSON(data []byte) error {
	var jd jsonDAG
	if err := json.Unmarshal(data, &jd); err != nil {
		return fmt.Errorf("dag: decoding: %w", err)
	}
	b := NewBuilder(len(jd.Vertices))
	for _, v := range jd.Vertices {
		b.AddTypedVertex(v.Name, v.WCET, v.Type)
	}
	for _, e := range jd.Edges {
		b.AddEdge(e[0], e[1])
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*g = *built
	return nil
}

// DOT renders the DAG in Graphviz DOT syntax. Vertices are labelled with
// their name (or index) and WCET, mirroring the paper's Figure 1 style where
// vertex size encodes WCET.
func (g *DAG) DOT(graphName string) string {
	var sb strings.Builder
	if graphName == "" {
		graphName = "G"
	}
	fmt.Fprintf(&sb, "digraph %q {\n", graphName)
	sb.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for v := 0; v < g.N(); v++ {
		label := g.verts[v].Name
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		// Scale node size with WCET, as in the paper's figure.
		size := 0.4 + 0.1*float64(g.verts[v].WCET)
		if size > 2.0 {
			size = 2.0
		}
		fmt.Fprintf(&sb, "  %d [label=\"%s\\n%d\", width=%.2f];\n", v, label, g.verts[v].WCET, size)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -> %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Equal reports structural equality: same vertices (names, WCETs, order) and
// same edge set.
func (g *DAG) Equal(h *DAG) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if g.verts[v] != h.verts[v] {
			return false
		}
		gs, hs := g.succ[v], h.succ[v]
		if len(gs) != len(hs) {
			return false
		}
		for i := range gs {
			if gs[i] != hs[i] {
				return false
			}
		}
	}
	return true
}

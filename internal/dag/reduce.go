package dag

// TransitiveClosure returns a DAG on the same vertices with an edge (u, v)
// for every pair where v is reachable from u by a directed path of length
// ≥ 1. The closure preserves vol, len and all precedence semantics; it is
// the graph on which chain/antichain arguments (Width, MinChainCover) run.
func (g *DAG) TransitiveClosure() *DAG {
	n := g.N()
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddVertex(g.verts[v].Name, g.verts[v].WCET)
	}
	for u := 0; u < n; u++ {
		reach := g.Reachable(u)
		for v := 0; v < n; v++ {
			if reach[v] {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// TransitiveReduction returns the unique minimal DAG with the same
// reachability relation: every edge (u, v) for which some longer path u ⇝ v
// exists is removed. Reductions make generated workloads canonical (the
// Erdős–Rényi method produces many redundant edges) without changing any
// scheduling-relevant quantity.
func (g *DAG) TransitiveReduction() *DAG {
	n := g.N()
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddVertex(g.verts[v].Name, g.verts[v].WCET)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.succ[u] {
			// (u, v) is redundant iff v is reachable from some other
			// successor of u.
			redundant := false
			for _, w := range g.succ[u] {
				if w != v && g.Reachable(w)[v] {
					redundant = true
					break
				}
			}
			if !redundant {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// SameReachability reports whether g and h (on the same vertex count) have
// identical reachability relations.
func (g *DAG) SameReachability(h *DAG) bool {
	if g.N() != h.N() {
		return false
	}
	for v := 0; v < g.N(); v++ {
		a, b := g.Reachable(v), h.Reachable(v)
		for u := range a {
			if a[u] != b[u] {
				return false
			}
		}
	}
	return true
}

package dag

// Width computes the exact maximum antichain size of the DAG — the largest
// set of pairwise-incomparable vertices, i.e. the true maximum number of
// jobs that can ever execute simultaneously. (MaxParallelism's level width
// is only a lower bound on this quantity.)
//
// By Dilworth's theorem the maximum antichain equals the minimum number of
// chains covering all vertices, and for a DAG the minimum chain cover equals
// |V| − M where M is a maximum matching in the bipartite graph whose left
// and right copies of V are joined for every pair (u, v) with u reachable to
// v (the transitive closure). The matching is found with the standard
// augmenting-path algorithm, O(|V|·E⁺) on the closure.
//
// Width is what caps the useful processor count for a single dag-job: any
// set of simultaneously-running jobs is an antichain, so on Width(G)
// processors a work-conserving scheduler never makes a job wait, and the LS
// makespan collapses to len(G). MINPROCS uses this to bound its scan.
//
// The result is memoized on first call (the DAG is immutable after Build);
// Width is safe to call concurrently.
func (g *DAG) Width() int {
	if g.wmemo == nil { // zero-value DAG (never produced by Build)
		return g.computeWidth()
	}
	g.wmemo.once.Do(func() { g.wmemo.width = g.computeWidth() })
	return g.wmemo.width
}

func (g *DAG) computeWidth() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	// Transitive closure via DFS from each vertex: adj[u] lists all v ≠ u
	// reachable from u.
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		seen := g.Reachable(u)
		for v := 0; v < n; v++ {
			if seen[v] {
				adj[u] = append(adj[u], v)
			}
		}
	}
	// Maximum bipartite matching (left = chain predecessors, right = chain
	// successors) via augmenting paths.
	matchR := make([]int, n) // right vertex → matched left vertex
	for i := range matchR {
		matchR[i] = -1
	}
	var tryAugment func(u int, visited []bool) bool
	tryAugment = func(u int, visited []bool) bool {
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || tryAugment(matchR[v], visited) {
				matchR[v] = u
				return true
			}
		}
		return false
	}
	matched := 0
	for u := 0; u < n; u++ {
		visited := make([]bool, n)
		if tryAugment(u, visited) {
			matched++
		}
	}
	return n - matched
}

// MinChainCover returns a partition of the vertices into the minimum number
// of chains (paths in the transitive closure), witnessing Width via
// Dilworth's theorem: len(cover) == Width().
func (g *DAG) MinChainCover() [][]int {
	n := g.N()
	if n == 0 {
		return nil
	}
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		seen := g.Reachable(u)
		for v := 0; v < n; v++ {
			if seen[v] {
				adj[u] = append(adj[u], v)
			}
		}
	}
	matchR := make([]int, n)
	matchL := make([]int, n)
	for i := range matchR {
		matchR[i] = -1
		matchL[i] = -1
	}
	var tryAugment func(u int, visited []bool) bool
	tryAugment = func(u int, visited []bool) bool {
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || tryAugment(matchR[v], visited) {
				matchR[v] = u
				matchL[u] = v
				return true
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		visited := make([]bool, n)
		tryAugment(u, visited)
	}
	// Chains start at vertices that are nobody's matched successor.
	isSucc := make([]bool, n)
	for v := 0; v < n; v++ {
		if matchR[v] != -1 {
			isSucc[v] = true
		}
	}
	var cover [][]int
	for v := 0; v < n; v++ {
		if isSucc[v] {
			continue
		}
		var chain []int
		for u := v; u != -1; u = matchL[u] {
			chain = append(chain, u)
		}
		cover = append(cover, chain)
	}
	return cover
}

package dag

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON checks that arbitrary input never panics the decoder and
// that anything it accepts satisfies the DAG invariants.
func FuzzUnmarshalJSON(f *testing.F) {
	seed, _ := json.Marshal(Example1())
	f.Add(seed)
	f.Add([]byte(`{"vertices":[{"wcet":1}],"edges":[]}`))
	f.Add([]byte(`{"vertices":[{"wcet":1},{"wcet":2}],"edges":[[0,1],[1,0]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g DAG
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected input is fine
		}
		// Accepted: full invariant audit.
		if len(g.TopologicalOrder()) != g.N() {
			t.Fatal("accepted graph is not acyclic")
		}
		if g.LongestChain() > g.Volume() {
			t.Fatal("len > vol")
		}
		for v := 0; v < g.N(); v++ {
			if g.WCET(v) <= 0 {
				t.Fatal("non-positive WCET accepted")
			}
		}
		for _, e := range g.Edges() {
			if e[0] == e[1] {
				t.Fatal("self-loop accepted")
			}
			if !g.HasEdge(e[0], e[1]) {
				t.Fatal("Edges/HasEdge mismatch")
			}
		}
		// Round trip must be stable.
		again, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var g2 DAG
		if err := json.Unmarshal(again, &g2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !g.Equal(&g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzBuilder drives the Builder with a byte-coded construction script and
// validates everything a successful Build returns.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 0, 1, 1, 2})
	f.Add([]byte{1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%16) + 1
		b := NewBuilder(n)
		i := 1
		for v := 0; v < n && i < len(data); v++ {
			b.AddJob(Time(data[i]%32) + 1)
			i++
		}
		built := 0
		for ; i+1 < len(data); i += 2 {
			b.AddEdge(int(data[i]%32), int(data[i+1]%32))
			built++
		}
		g, err := b.Build()
		if err != nil {
			return
		}
		if len(g.TopologicalOrder()) != g.N() {
			t.Fatal("built graph not acyclic")
		}
		path, l := g.CriticalPath()
		var sum Time
		for j, v := range path {
			sum += g.WCET(v)
			if j > 0 && !g.HasEdge(path[j-1], v) {
				t.Fatal("critical path not a chain")
			}
		}
		if sum != l {
			t.Fatal("critical path length mismatch")
		}
	})
}

package dag

import (
	"math/rand"
	"testing"
)

func TestWidthBasicShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *DAG
		want int
	}{
		{"empty", NewBuilder(0).MustBuild(), 0},
		{"singleton", Singleton(3), 1},
		{"chain", Chain(1, 2, 3, 4), 1},
		{"independent", Independent(1, 1, 1, 1, 1), 5},
		{"fork-join", ForkJoin(1, 4, 2, 1), 4},
		{"example1", Example1(), 2},
	}
	for _, c := range cases {
		if got := c.g.Width(); got != c.want {
			t.Errorf("%s: Width = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWidthDiamondWithCross(t *testing.T) {
	// a → b, a → c, b → d, c → d plus b → c: antichain max is... b and c
	// comparable via b→c, so the widest antichain is {b} level... width 1?
	// No: {b} alone, {c} alone — everything is on one path a,b,c,d → width 1.
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddJob(1)
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if got := g.Width(); got != 1 {
		t.Errorf("totally-ordered diamond: Width = %d, want 1", got)
	}
}

func TestWidthBeatsLevelWidth(t *testing.T) {
	// Two chains of different lengths: a0→a1→a2 and b0. Level width:
	// level0={a0,b0}=2; the antichain {a2, b0} also size 2 — construct a
	// case where staggered levels beat per-level width:
	// x0→x1, y0, with edge x0→y0? Keep simple: verify Width ≥ MaxParallelism
	// on random DAGs (levels are antichains... no! Levels are NOT
	// necessarily antichains — two same-level vertices are incomparable?
	// A vertex's level = 1 + max pred level, so an edge u→v forces
	// level(v) > level(u): same-level vertices ARE incomparable. So levels
	// are antichains and Width ≥ MaxParallelism always.)
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(r, 2+r.Intn(25), r.Float64()*0.4)
		if g.Width() < g.MaxParallelism() {
			t.Fatalf("Width %d < level width %d", g.Width(), g.MaxParallelism())
		}
	}
}

func TestMinChainCoverWitnessesWidth(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(r, 1+r.Intn(20), r.Float64()*0.4)
		cover := g.MinChainCover()
		if len(cover) != g.Width() {
			t.Fatalf("cover size %d != width %d", len(cover), g.Width())
		}
		seen := make([]bool, g.N())
		for _, chain := range cover {
			for i, v := range chain {
				if seen[v] {
					t.Fatalf("vertex %d in two chains", v)
				}
				seen[v] = true
				if i > 0 && !g.Reachable(chain[i-1])[v] {
					t.Fatalf("chain step %d→%d not a reachability edge", chain[i-1], v)
				}
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("vertex %d not covered", v)
			}
		}
	}
}

func TestWidthMatchesBruteForceAntichain(t *testing.T) {
	// Exhaustive check on small DAGs: Width equals the largest set of
	// pairwise-unreachable vertices.
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 200; trial++ {
		g := randomDAG(r, 1+r.Intn(10), r.Float64()*0.5)
		n := g.N()
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = g.Reachable(v)
		}
		best := 0
		for mask := 1; mask < 1<<n; mask++ {
			ok := true
			size := 0
			for u := 0; u < n && ok; u++ {
				if mask&(1<<u) == 0 {
					continue
				}
				size++
				for v := u + 1; v < n; v++ {
					if mask&(1<<v) == 0 {
						continue
					}
					if reach[u][v] || reach[v][u] {
						ok = false
						break
					}
				}
			}
			if ok && size > best {
				best = size
			}
		}
		if got := g.Width(); got != best {
			t.Fatalf("Width = %d, brute force = %d for %s", got, best, g)
		}
	}
}

func BenchmarkWidth(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 120, 0.08)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Width()
	}
}

package dag

// Example1 returns the DAG of the paper's Example 1 (Figure 1): five
// vertices, five precedence edges, longest chain len = 6 and volume vol = 9.
// Together with D = 16 and T = 20 the task has density 9/16 and utilization
// 9/20, making it a low-density task.
//
// The figure's exact topology is not recoverable from the paper text; this is
// a faithful reconstruction with the same vertex count, edge count, volume
// and longest-chain length, which are the only quantities the example (and
// the analysis) depends on.
func Example1() *DAG {
	b := NewBuilder(5)
	a := b.AddVertex("a", 2)
	c := b.AddVertex("b", 1)
	d := b.AddVertex("c", 3)
	e := b.AddVertex("d", 2)
	f := b.AddVertex("e", 1)
	b.AddEdge(a, d) // 2 → 3
	b.AddEdge(c, d) // 1 → 3
	b.AddEdge(a, e) // 2 → 2
	b.AddEdge(d, f) // 3 → 1: chain a→c→e has length 2+3+1 = 6
	b.AddEdge(e, f) // 2 → 1
	return b.MustBuild()
}

// Example1D and Example1T are the deadline and period of the paper's
// Example 1 task.
const (
	Example1D Time = 16
	Example1T Time = 20
)

// Chain returns a pure chain DAG v0 → v1 → … with the given WCETs: the
// degenerate fully-sequential workload (len = vol).
func Chain(wcets ...Time) *DAG {
	b := NewBuilder(len(wcets))
	for i, w := range wcets {
		b.AddJob(w)
		if i > 0 {
			b.AddEdge(i-1, i)
		}
	}
	return b.MustBuild()
}

// Independent returns a DAG of fully parallel jobs with the given WCETs
// (no edges): the degenerate fully-parallel workload.
func Independent(wcets ...Time) *DAG {
	b := NewBuilder(len(wcets))
	for _, w := range wcets {
		b.AddJob(w)
	}
	return b.MustBuild()
}

// Singleton returns the one-vertex DAG with the given WCET, as used by the
// paper's Example 2 construction.
func Singleton(wcet Time) *DAG {
	b := NewBuilder(1)
	b.AddJob(wcet)
	return b.MustBuild()
}

// ForkJoin returns a fork-join DAG: a source of WCET srcW, fan parallel
// branches of WCET branchW each, and a sink of WCET sinkW.
func ForkJoin(srcW Time, fan int, branchW, sinkW Time) *DAG {
	b := NewBuilder(fan + 2)
	src := b.AddVertex("fork", srcW)
	sink := fan + 1
	for i := 0; i < fan; i++ {
		v := b.AddJob(branchW)
		b.AddEdge(src, v)
		b.AddEdge(v, sink)
	}
	b.AddVertex("join", sinkW)
	return b.MustBuild()
}

package dag

import (
	"math/rand"
	"testing"
)

func TestTransitiveClosureBasic(t *testing.T) {
	g := Chain(1, 1, 1) // 0→1→2
	c := g.TransitiveClosure()
	if c.M() != 3 { // 0→1, 1→2, 0→2
		t.Fatalf("closure has %d edges, want 3", c.M())
	}
	if !c.HasEdge(0, 2) {
		t.Error("closure missing 0→2")
	}
}

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	b := NewBuilder(3)
	b.AddJob(1)
	b.AddJob(1)
	b.AddJob(1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2) // redundant shortcut
	g := b.MustBuild()
	r := g.TransitiveReduction()
	if r.M() != 2 {
		t.Fatalf("reduction has %d edges, want 2", r.M())
	}
	if r.HasEdge(0, 2) {
		t.Error("shortcut 0→2 survived reduction")
	}
}

func TestReductionAndClosureInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(r, 2+r.Intn(20), r.Float64()*0.5)
		red := g.TransitiveReduction()
		clo := g.TransitiveClosure()
		// Reachability is preserved by both.
		if !g.SameReachability(red) {
			t.Fatal("reduction changed reachability")
		}
		if !g.SameReachability(clo) {
			t.Fatal("closure changed reachability")
		}
		// Scheduling-relevant quantities are invariant.
		if red.Volume() != g.Volume() || red.LongestChain() != g.LongestChain() || red.Width() != g.Width() {
			t.Fatalf("reduction changed vol/len/width: %s vs %s", g, red)
		}
		if clo.LongestChain() != g.LongestChain() || clo.Width() != g.Width() {
			t.Fatalf("closure changed len/width: %s vs %s", g, clo)
		}
		// Edge-count sandwich: reduction ≤ original ≤ closure.
		if red.M() > g.M() || g.M() > clo.M() {
			t.Fatalf("edge counts: red=%d orig=%d clo=%d", red.M(), g.M(), clo.M())
		}
		// Reduction is a fixed point.
		again := red.TransitiveReduction()
		if !again.Equal(red) {
			t.Fatal("reduction not idempotent")
		}
		// Closure is a fixed point.
		cagain := clo.TransitiveClosure()
		if !cagain.Equal(clo) {
			t.Fatal("closure not idempotent")
		}
		// Reduction of the closure equals reduction of the original
		// (uniqueness of the minimal equivalent DAG).
		if !clo.TransitiveReduction().Equal(red) {
			t.Fatal("closure→reduction differs from direct reduction")
		}
	}
}

func TestReductionMinimality(t *testing.T) {
	// Removing any edge from a reduction must change reachability.
	r := rand.New(rand.NewSource(45))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(r, 2+r.Intn(10), 0.4).TransitiveReduction()
		for _, drop := range g.Edges() {
			b := NewBuilder(g.N())
			for v := 0; v < g.N(); v++ {
				b.AddVertex(g.Vertex(v).Name, g.WCET(v))
			}
			for _, e := range g.Edges() {
				if e != drop {
					b.AddEdge(e[0], e[1])
				}
			}
			h := b.MustBuild()
			if g.SameReachability(h) {
				t.Fatalf("edge %v of a reduction is redundant", drop)
			}
		}
	}
}

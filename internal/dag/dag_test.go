package dag

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyDAG(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty DAG: N=%d M=%d", g.N(), g.M())
	}
	if g.Volume() != 0 {
		t.Errorf("Volume = %d, want 0", g.Volume())
	}
	if g.LongestChain() != 0 {
		t.Errorf("LongestChain = %d, want 0", g.LongestChain())
	}
	if g.Depth() != 0 {
		t.Errorf("Depth = %d, want 0", g.Depth())
	}
	if path, l := g.CriticalPath(); path != nil || l != 0 {
		t.Errorf("CriticalPath = %v,%d, want nil,0", path, l)
	}
}

func TestExample1MatchesPaper(t *testing.T) {
	g := Example1()
	if g.N() != 5 {
		t.Errorf("|V| = %d, want 5", g.N())
	}
	if g.M() != 5 {
		t.Errorf("|E| = %d, want 5", g.M())
	}
	if got := g.Volume(); got != 9 {
		t.Errorf("vol = %d, want 9 (paper Example 1)", got)
	}
	if got := g.LongestChain(); got != 6 {
		t.Errorf("len = %d, want 6 (paper Example 1)", got)
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewBuilder(3)
	b.AddJob(1)
	b.AddJob(1)
	b.AddJob(1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a 3-cycle")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(1)
	b.AddJob(1)
	b.AddEdge(0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a self-loop")
	}
}

func TestBuilderRejectsBadEdgeRange(t *testing.T) {
	b := NewBuilder(1)
	b.AddJob(1)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an out-of-range edge")
	}
}

func TestBuilderRejectsNonPositiveWCET(t *testing.T) {
	for _, w := range []Time{0, -3} {
		b := NewBuilder(1)
		b.AddJob(w)
		if _, err := b.Build(); err == nil {
			t.Errorf("Build accepted WCET %d", w)
		}
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddJob(1)
	b.AddJob(1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 after deduplication", g.M())
	}
}

func TestChainProperties(t *testing.T) {
	g := Chain(3, 1, 4, 1, 5)
	if g.Volume() != 14 {
		t.Errorf("vol = %d, want 14", g.Volume())
	}
	if g.LongestChain() != 14 {
		t.Errorf("len = %d, want 14 (chain: len == vol)", g.LongestChain())
	}
	if g.Depth() != 5 {
		t.Errorf("Depth = %d, want 5", g.Depth())
	}
	if g.MaxParallelism() != 1 {
		t.Errorf("MaxParallelism = %d, want 1", g.MaxParallelism())
	}
}

func TestIndependentProperties(t *testing.T) {
	g := Independent(2, 2, 2, 2)
	if g.Volume() != 8 {
		t.Errorf("vol = %d, want 8", g.Volume())
	}
	if g.LongestChain() != 2 {
		t.Errorf("len = %d, want 2", g.LongestChain())
	}
	if g.MaxParallelism() != 4 {
		t.Errorf("MaxParallelism = %d, want 4", g.MaxParallelism())
	}
}

func TestForkJoin(t *testing.T) {
	g := ForkJoin(1, 3, 5, 2)
	if g.N() != 5 {
		t.Errorf("|V| = %d, want 5", g.N())
	}
	if g.Volume() != 1+3*5+2 {
		t.Errorf("vol = %d, want 18", g.Volume())
	}
	if g.LongestChain() != 1+5+2 {
		t.Errorf("len = %d, want 8", g.LongestChain())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("sources=%v sinks=%v, want single source/sink", g.Sources(), g.Sinks())
	}
}

func TestCriticalPathIsAChain(t *testing.T) {
	g := Example1()
	path, l := g.CriticalPath()
	var sum Time
	for i, v := range path {
		sum += g.WCET(v)
		if i > 0 && !g.HasEdge(path[i-1], v) {
			t.Fatalf("critical path %v: no edge %d→%d", path, path[i-1], v)
		}
	}
	if sum != l {
		t.Errorf("path WCET sum %d != reported length %d", sum, l)
	}
}

func TestTopologicalOrderRespectsEdges(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(1)), 50, 0.2)
	order := g.TopologicalOrder()
	if len(order) != g.N() {
		t.Fatalf("order has %d vertices, want %d", len(order), g.N())
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violated by topological order", e)
		}
	}
}

func TestLevelsAreConsistent(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(2)), 40, 0.15)
	levels := g.Levels()
	level := make([]int, g.N())
	seen := 0
	for l, vs := range levels {
		for _, v := range vs {
			level[v] = l
			seen++
		}
	}
	if seen != g.N() {
		t.Fatalf("levels cover %d vertices, want %d", seen, g.N())
	}
	for _, e := range g.Edges() {
		if level[e[0]] >= level[e[1]] {
			t.Errorf("edge %v: level %d !< %d", e, level[e[0]], level[e[1]])
		}
	}
	// Every non-source vertex must have a predecessor exactly one level up.
	for v := 0; v < g.N(); v++ {
		if level[v] == 0 {
			continue
		}
		ok := false
		for _, p := range g.Predecessors(v) {
			if level[p] == level[v]-1 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("vertex %d at level %d has no predecessor at level %d", v, level[v], level[v]-1)
		}
	}
}

func TestReachableAndAncestorsAreInverse(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(3)), 30, 0.2)
	for v := 0; v < g.N(); v++ {
		reach := g.Reachable(v)
		for u := 0; u < g.N(); u++ {
			if reach[u] != g.Ancestors(u)[v] {
				t.Fatalf("Reachable(%d)[%d]=%v but Ancestors(%d)[%d]=%v",
					v, u, reach[u], u, v, g.Ancestors(u)[v])
			}
		}
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	g := Example1()
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c2, err := c.WithWCET(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if g.WCET(0) == 99 {
		t.Error("WithWCET mutated the original")
	}
	if c2.WCET(0) != 99 {
		t.Error("WithWCET did not apply")
	}
	if g.Equal(c2) {
		t.Error("Equal failed to detect WCET difference")
	}
}

func TestWithWCETValidation(t *testing.T) {
	g := Example1()
	if _, err := g.WithWCET(-1, 5); err == nil {
		t.Error("accepted negative vertex index")
	}
	if _, err := g.WithWCET(0, 0); err == nil {
		t.Error("accepted zero WCET")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, g := range []*DAG{Example1(), Chain(1, 2, 3), Independent(4, 4), NewBuilder(0).MustBuild()} {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back DAG
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !g.Equal(&back) {
			t.Errorf("round trip changed graph: %s vs %s", g, &back)
		}
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	var g DAG
	err := json.Unmarshal([]byte(`{"vertices":[{"wcet":1},{"wcet":1}],"edges":[[0,1],[1,0]]}`), &g)
	if err == nil {
		t.Fatal("unmarshal accepted a cyclic graph")
	}
}

func TestDOTContainsAllVertices(t *testing.T) {
	g := Example1()
	dot := g.DOT("example1")
	for _, want := range []string{"digraph", "->"} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// randomDAG builds a random layered-free DAG: edges only i→j for i<j with
// probability p. Used across the test suite as a structural fuzzer.
func randomDAG(r *rand.Rand, n int, p float64) *DAG {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(Time(1 + r.Intn(20)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// Property: for every DAG, max(len over chains through any single vertex)
// bounds: LongestChain ≥ max vertex WCET, and LongestChain ≤ Volume.
func TestPropertyChainBounds(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomDAG(rr, 1+rr.Intn(40), rr.Float64()*0.4)
		l := g.LongestChain()
		var maxW Time
		for v := 0; v < g.N(); v++ {
			if g.WCET(v) > maxW {
				maxW = g.WCET(v)
			}
		}
		return l >= maxW && l <= g.Volume()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the longest chain equals volume iff the DAG's transitive closure
// is a total order on a chain cover... too strong; instead check the simpler
// invariant that adding an edge never decreases the longest chain.
func TestPropertyEdgeMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g := randomDAG(r, 2+r.Intn(20), 0.15)
		u := r.Intn(g.N())
		v := r.Intn(g.N())
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u // keep i<j orientation, guaranteeing acyclicity
		}
		b := NewBuilder(g.N())
		for i := 0; i < g.N(); i++ {
			b.AddVertex(g.Vertex(i).Name, g.WCET(i))
		}
		for _, e := range g.Edges() {
			b.AddEdge(e[0], e[1])
		}
		b.AddEdge(u, v)
		g2 := b.MustBuild()
		if g2.LongestChain() < g.LongestChain() {
			t.Fatalf("adding edge (%d,%d) decreased len from %d to %d",
				u, v, g.LongestChain(), g2.LongestChain())
		}
		if g2.Volume() != g.Volume() {
			t.Fatalf("adding edge changed volume")
		}
	}
}

func TestPropertyTopoOrderDeterministic(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(11)), 60, 0.1)
	a := g.TopologicalOrder()
	b := g.TopologicalOrder()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopologicalOrder is not deterministic")
		}
	}
}

func BenchmarkLongestChain(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 500, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.LongestChain()
	}
}

func BenchmarkTopologicalOrder(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 500, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.TopologicalOrder()
	}
}

// Package dag implements the directed-acyclic-graph workload structure that
// underlies the sporadic DAG task model of Baruah (DATE 2015).
//
// A DAG G = (V, E) models one dag-job of a recurrent task: each vertex is a
// sequential job with a worst-case execution time (WCET), and each directed
// edge (v, w) is a precedence constraint requiring job v to complete before
// job w may begin. Jobs not ordered by the transitive closure of E may run in
// parallel on distinct processors.
//
// The package provides construction and validation, the two quantities the
// schedulability analysis needs — the total volume vol(G) and the longest
// chain len(G) — plus topological orders, depth/level structure, reachability,
// serialization (JSON) and visualization (Graphviz DOT).
//
// Time is measured in abstract integer ticks (the paper has WCETs in ℕ).
package dag

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Time is a point in, or duration of, discrete time, in abstract ticks.
type Time = int64

// Vertex is one sequential job inside a DAG.
type Vertex struct {
	// Name is an optional human-readable label; it need not be unique.
	Name string
	// WCET is the worst-case execution time of the job, in ticks. It must
	// be positive: zero-cost synchronization points should be modelled by
	// direct edges instead.
	WCET Time
	// Type is the processor type the job must execute on, as a dense index
	// (0 = type "a", 1 = type "b", …). The zero value models the classic
	// homogeneous platform, so untyped graphs behave exactly as before.
	Type int
}

// DAG is an immutable directed acyclic graph of jobs. Construct one with a
// Builder; the zero DAG is the valid empty graph.
//
// Vertices are identified by dense indices 0..N()-1 assigned in insertion
// order. A DAG returned by Builder.Build is guaranteed acyclic, with no
// self-loops and no duplicate edges.
type DAG struct {
	verts []Vertex
	succ  [][]int // succ[v] = sorted successor indices of v
	pred  [][]int // pred[v] = sorted predecessor indices of v
	m     int     // number of edges

	// wmemo memoizes Width(): the Dilworth computation is by far the most
	// expensive graph query (transitive closure + bipartite matching), the
	// structure is immutable after Build, and Phase-1 analysis asks for the
	// width of the same DAG from several goroutines. Held by pointer so the
	// struct stays copyable (UnmarshalJSON assigns *g = *built); Build and
	// Clone allocate a fresh memo for each new structure.
	wmemo *widthMemo
}

// widthMemo is the once-guarded cache behind Width.
type widthMemo struct {
	once  sync.Once
	width int
}

// N returns the number of vertices.
func (g *DAG) N() int { return len(g.verts) }

// M returns the number of edges.
func (g *DAG) M() int { return g.m }

// Vertex returns the vertex with index v. It panics if v is out of range.
func (g *DAG) Vertex(v int) Vertex { return g.verts[v] }

// WCET returns the worst-case execution time of vertex v.
func (g *DAG) WCET(v int) Time { return g.verts[v].WCET }

// TypeOf returns the processor type of vertex v (0 for untyped graphs).
func (g *DAG) TypeOf(v int) int { return g.verts[v].Type }

// Typed reports whether any vertex carries a nonzero processor type. An
// untyped graph (all vertices type 0) is exactly the classic homogeneous
// model, and every analysis treats it identically to a pre-typed build.
func (g *DAG) Typed() bool {
	for _, v := range g.verts {
		if v.Type != 0 {
			return true
		}
	}
	return false
}

// NumTypes returns 1 + the maximum vertex type, i.e. the number of distinct
// processor types the graph may reference (1 for untyped graphs, including
// the empty graph).
func (g *DAG) NumTypes() int {
	maxT := 0
	for _, v := range g.verts {
		if v.Type > maxT {
			maxT = v.Type
		}
	}
	return maxT + 1
}

// UniformType returns the single processor type shared by every vertex, and
// whether such a type exists. The empty graph is uniformly the default type.
// Only uniformly-typed tasks can be collapsed to a sporadic task on one
// (matching-type) processor, so this is the typed Phase-2 eligibility test.
func (g *DAG) UniformType() (int, bool) {
	if len(g.verts) == 0 {
		return 0, true
	}
	t := g.verts[0].Type
	for _, v := range g.verts[1:] {
		if v.Type != t {
			return 0, false
		}
	}
	return t, true
}

// VolumeByType returns the per-type work vector: out[s] is the summed WCET
// of the vertices requiring processor type s. The slice has NumTypes()
// entries.
func (g *DAG) VolumeByType() []Time {
	out := make([]Time, g.NumTypes())
	for _, v := range g.verts {
		out[v.Type] += v.WCET
	}
	return out
}

// CountByType returns out[s] = the number of vertices requiring processor
// type s. With out[s] processors of each type s no job ever waits for a
// processor, so list scheduling achieves makespan len(G) — it is the typed
// MINPROCS scan's per-type saturation cap.
func (g *DAG) CountByType() []int {
	out := make([]int, g.NumTypes())
	for _, v := range g.verts {
		out[v.Type]++
	}
	return out
}

// Successors returns the successor indices of v. The returned slice is
// owned by the DAG and must not be modified.
func (g *DAG) Successors(v int) []int { return g.succ[v] }

// Predecessors returns the predecessor indices of v. The returned slice is
// owned by the DAG and must not be modified.
func (g *DAG) Predecessors(v int) []int { return g.pred[v] }

// InDegree returns the number of predecessors of v.
func (g *DAG) InDegree(v int) int { return len(g.pred[v]) }

// OutDegree returns the number of successors of v.
func (g *DAG) OutDegree(v int) int { return len(g.succ[v]) }

// HasEdge reports whether the edge (u, v) is present.
func (g *DAG) HasEdge(u, v int) bool {
	s := g.succ[u]
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// Sources returns the vertices with no predecessors, in index order.
func (g *DAG) Sources() []int {
	var out []int
	for v := range g.verts {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the vertices with no successors, in index order.
func (g *DAG) Sinks() []int {
	var out []int
	for v := range g.verts {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Volume returns vol(G): the sum of all vertex WCETs, i.e. the total
// execution requirement of one dag-job. It runs in O(|V|).
func (g *DAG) Volume() Time {
	var vol Time
	for _, v := range g.verts {
		vol += v.WCET
	}
	return vol
}

// LongestChain returns len(G): the maximum, over all directed chains
// v1 → v2 → … → vk in G, of the sum of the chain's WCETs. This is the
// minimum possible makespan of the dag-job on infinitely many processors.
// It runs in O(|V| + |E|) via a topological-order dynamic program, exactly
// as the paper prescribes.
func (g *DAG) LongestChain() Time {
	_, length := g.CriticalPath()
	return length
}

// CriticalPath returns one longest chain as a vertex sequence, together with
// its length. For the empty DAG it returns (nil, 0).
func (g *DAG) CriticalPath() (path []int, length Time) {
	n := g.N()
	if n == 0 {
		return nil, 0
	}
	order := g.TopologicalOrder()
	// finish[v]: longest chain length ending at (and including) v.
	finish := make([]Time, n)
	from := make([]int, n)
	for i := range from {
		from[i] = -1
	}
	best := 0
	for _, v := range order {
		f := Time(0)
		for _, p := range g.pred[v] {
			if finish[p] > f {
				f = finish[p]
				from[v] = p
			}
		}
		finish[v] = f + g.verts[v].WCET
		if finish[v] > finish[best] {
			best = v
		}
	}
	for v := best; v != -1; v = from[v] {
		path = append(path, v)
	}
	// Reverse into source→sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, finish[best]
}

// TopologicalOrder returns a topological order of the vertices (Kahn's
// algorithm, smallest-index-first for determinism). The DAG invariant
// guarantees such an order exists.
func (g *DAG) TopologicalOrder() []int {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.pred[v])
	}
	// Min-index frontier keeps the order deterministic.
	frontier := &intMinHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			frontier.push(v)
		}
	}
	order := make([]int, 0, n)
	for frontier.len() > 0 {
		v := frontier.pop()
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier.push(w)
			}
		}
	}
	return order
}

// Levels partitions the vertices into precedence levels: level 0 holds the
// sources, and each vertex's level is 1 + the maximum level among its
// predecessors. The result is indexed by level.
func (g *DAG) Levels() [][]int {
	n := g.N()
	level := make([]int, n)
	maxLevel := 0
	for _, v := range g.TopologicalOrder() {
		l := 0
		for _, p := range g.pred[v] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[v] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]int, maxLevel+1)
	for v := 0; v < n; v++ {
		out[level[v]] = append(out[level[v]], v)
	}
	return out
}

// Depth returns the number of vertices on a longest chain by vertex count
// (i.e. 1 + the maximum level), or 0 for the empty DAG.
func (g *DAG) Depth() int {
	if g.N() == 0 {
		return 0
	}
	return len(g.Levels())
}

// Reachable returns, for vertex v, the set of vertices reachable from v by
// directed paths of length ≥ 1, as a boolean slice indexed by vertex.
func (g *DAG) Reachable(v int) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), g.succ[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.succ[u]...)
	}
	return seen
}

// Ancestors returns the set of vertices from which v is reachable, as a
// boolean slice indexed by vertex.
func (g *DAG) Ancestors(v int) []bool {
	seen := make([]bool, g.N())
	stack := append([]int(nil), g.pred[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		stack = append(stack, g.pred[u]...)
	}
	return seen
}

// MaxParallelism returns an upper bound on the number of jobs that can ever
// execute simultaneously: the maximum width over precedence levels. (Exact
// maximum antichain computation is not needed by the analysis; level width is
// the customary structural proxy.)
func (g *DAG) MaxParallelism() int {
	w := 0
	for _, lv := range g.Levels() {
		if len(lv) > w {
			w = len(lv)
		}
	}
	return w
}

// Clone returns a deep copy of the DAG.
func (g *DAG) Clone() *DAG {
	c := &DAG{
		verts: append([]Vertex(nil), g.verts...),
		succ:  make([][]int, g.N()),
		pred:  make([][]int, g.N()),
		m:     g.m,
		wmemo: &widthMemo{},
	}
	for v := range g.verts {
		c.succ[v] = append([]int(nil), g.succ[v]...)
		c.pred[v] = append([]int(nil), g.pred[v]...)
	}
	return c
}

// WithWCET returns a copy of the DAG in which vertex v has WCET w.
// It is used by anomaly experiments that shrink execution times.
func (g *DAG) WithWCET(v int, w Time) (*DAG, error) {
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("dag: vertex %d out of range [0,%d)", v, g.N())
	}
	if w <= 0 {
		return nil, fmt.Errorf("dag: WCET must be positive, got %d", w)
	}
	c := g.Clone()
	c.verts[v].WCET = w
	return c, nil
}

// Edges returns all edges as (from, to) pairs in lexicographic order.
func (g *DAG) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := range g.verts {
		for _, v := range g.succ[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// String summarizes the DAG.
func (g *DAG) String() string {
	return fmt.Sprintf("DAG{|V|=%d |E|=%d vol=%d len=%d}", g.N(), g.M(), g.Volume(), g.LongestChain())
}

// Builder constructs DAGs incrementally. The zero Builder is ready to use.
type Builder struct {
	verts []Vertex
	edges map[[2]int]struct{}
}

// NewBuilder returns a Builder expecting roughly n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{
		verts: make([]Vertex, 0, n),
		edges: make(map[[2]int]struct{}),
	}
}

// AddVertex appends a vertex of the default processor type (0) and returns
// its index.
func (b *Builder) AddVertex(name string, wcet Time) int {
	return b.AddTypedVertex(name, wcet, 0)
}

// AddTypedVertex appends a vertex pinned to processor type ptype and returns
// its index. Type validity (non-negative) is checked by Build.
func (b *Builder) AddTypedVertex(name string, wcet Time, ptype int) int {
	b.verts = append(b.verts, Vertex{Name: name, WCET: wcet, Type: ptype})
	return len(b.verts) - 1
}

// AddJob appends an unnamed vertex and returns its index.
func (b *Builder) AddJob(wcet Time) int { return b.AddVertex("", wcet) }

// AddEdge records the precedence constraint u → v. Duplicate edges are
// ignored. Validity (range, self-loops, acyclicity) is checked by Build.
func (b *Builder) AddEdge(u, v int) {
	if b.edges == nil {
		b.edges = make(map[[2]int]struct{})
	}
	b.edges[[2]int{u, v}] = struct{}{}
}

// Errors returned by Builder.Build.
var (
	ErrCycle         = errors.New("dag: graph contains a cycle")
	ErrSelfLoop      = errors.New("dag: self-loop edge")
	ErrEdgeRange     = errors.New("dag: edge endpoint out of range")
	ErrNonPositiveEt = errors.New("dag: vertex WCET must be positive")
	ErrNegativeType  = errors.New("dag: vertex processor type must be non-negative")
)

// Build validates the accumulated vertices and edges and returns the DAG.
func (b *Builder) Build() (*DAG, error) {
	n := len(b.verts)
	for i, v := range b.verts {
		if v.WCET <= 0 {
			return nil, fmt.Errorf("%w: vertex %d has WCET %d", ErrNonPositiveEt, i, v.WCET)
		}
		if v.Type < 0 {
			return nil, fmt.Errorf("%w: vertex %d has type %d", ErrNegativeType, i, v.Type)
		}
	}
	g := &DAG{
		verts: append([]Vertex(nil), b.verts...),
		succ:  make([][]int, n),
		pred:  make([][]int, n),
		wmemo: &widthMemo{},
	}
	for e := range b.edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: (%d,%d) with |V|=%d", ErrEdgeRange, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
		}
		g.succ[u] = append(g.succ[u], v)
		g.pred[v] = append(g.pred[v], u)
		g.m++
	}
	for v := 0; v < n; v++ {
		sort.Ints(g.succ[v])
		sort.Ints(g.pred[v])
	}
	if len(g.TopologicalOrder()) != n {
		return nil, ErrCycle
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for tests and
// compile-time-constant example graphs.
func (b *Builder) MustBuild() *DAG {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// intMinHeap is a small binary min-heap of ints used by TopologicalOrder.
// (container/heap's interface indirection is avoidable for this hot path.)
type intMinHeap struct{ a []int }

func (h *intMinHeap) len() int { return len(h.a) }

func (h *intMinHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intMinHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.a[l] < h.a[s] {
			s = l
		}
		if r < last && h.a[r] < h.a[s] {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}

// Package typedfed implements federated scheduling on a typed heterogeneous
// platform (after Han, Zhu, Guan et al.'s typed federated scheduling of DAG
// tasks on multi-cores with processor types) as a pluggable core.Policy.
//
// The platform has MTypes[s] processors of type s (Σ_s MTypes[s] = m), and
// every DAG vertex carries the type it must execute on. The two FEDCONS
// phases generalize per type:
//
//   - Phase 1 grants dedicated processors to every high-density task and to
//     every mixed-type task (one whose vertices span several types — such a
//     task cannot be collapsed onto a single shared processor at any
//     density). The per-type budget vector is sized by core.MinprocsTyped,
//     the typed analogue of MINPROCS: start each type at its density floor
//     and grow the type with the largest Graham-residual until the typed
//     list schedule's makespan fits the window min(D, T). The witness
//     template is retained for table-driven replay, exactly as in the
//     homogeneous algorithm.
//   - Phase 2 partitions the remaining (low-density, uniformly-typed) tasks
//     with the ordinary Baruah–Fisher partitioner, run once per type over
//     that type's leftover processors: a uniformly type-s task collapses to
//     a sporadic task on a type-s processor just as in the identical-machine
//     model.
//
// Processor numbering is type-major: type s owns the global ids
// [Σ_{t<s} MTypes[t], Σ_{t≤s} MTypes[t]); dedicated grants take the low ids
// of each block and the leftovers become the shared processors.
//
// On the degenerate single-type platform with an untyped workload the typed
// model *is* the paper's model, and the policy delegates wholesale to the
// strict FEDCONS fallback — so its output (verdict JSON, decision traces,
// explain text) is byte-identical to -policy=fedcons, pinned by the
// differential matrix in cmd/fedsched.
package typedfed

import (
	"errors"
	"fmt"

	"fedsched/internal/core"
	"fedsched/internal/listsched"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

func init() { core.RegisterPolicy(policy{}) }

// policy implements core.Policy.
type policy struct{}

// Name returns the registry key, "typed".
func (policy) Name() string { return core.PolicyTyped }

// Schedule runs the typed federated analysis. Unlike the semi-federated and
// reservation policies there is no fallback on failure — the strict
// algorithm is not defined on a typed platform — except in the degenerate
// all-default-type case, where the fallback is the whole analysis.
func (policy) Schedule(sys task.System, m int, opt core.Options, fallback core.ScheduleFunc) (*core.Allocation, error) {
	if err := core.ValidateInput(sys, m, opt); err != nil {
		return nil, err
	}
	mtypes := opt.MTypes
	if len(mtypes) == 0 {
		mtypes = []int{m}
	}
	total := 0
	for s, mt := range mtypes {
		if mt < 0 {
			return nil, fmt.Errorf("typedfed: type %s has negative budget %d", core.TypeName(s), mt)
		}
		total += mt
	}
	if total != m {
		return nil, fmt.Errorf("typedfed: per-type budgets %s sum to %d, want m=%d", core.FormatMTypes(mtypes), total, m)
	}
	if !sys.Typed() && singleType(mtypes) {
		fopt := opt
		fopt.Policy = ""
		fopt.MTypes = nil
		return fallback(sys, m, fopt)
	}
	return schedule(sys, m, mtypes, opt)
}

// singleType reports whether every processor is the default type 0 (given
// that the budgets sum to m).
func singleType(mtypes []int) bool {
	for s, mt := range mtypes {
		if s > 0 && mt != 0 {
			return false
		}
	}
	return true
}

// schedule is the typed two-phase analysis proper.
func schedule(sys task.System, m int, mtypes []int, opt core.Options) (*core.Allocation, error) {
	ntypes := len(mtypes)
	if st := sys.NumTypes(); st > ntypes {
		return nil, fmt.Errorf("typedfed: system references %d processor types, platform declares %d (%s)",
			st, ntypes, core.FormatMTypes(mtypes))
	}
	alloc := &core.Allocation{M: m, Policy: core.PolicyTyped, MTypes: append([]int(nil), mtypes...)}
	base := listsched.TypedProcBase(mtypes)
	next := append([]int(nil), base[:ntypes]...) // next free global id per type block
	avail := append([]int(nil), mtypes...)       // remaining budget per type

	root := opt.Trace.Start("typedfed")
	if root != nil {
		root.Int("m", int64(m)).Int("tasks", int64(len(sys))).Str("mtypes", core.FormatMTypes(mtypes))
	}

	// Phase 1: dedicated grants for high-density and mixed-type tasks.
	phase1 := root.Child("phase1")
	dedicated := 0
	for i, tk := range sys {
		var tsp *obs.Span
		if phase1 != nil {
			vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
			tsp = phase1.Child("task").Str("task", tk.Name).Int("index", int64(i)).
				Int("vol", int64(vol)).Int("len", int64(l)).Int("window", int64(w)).
				Float("density", float64(vol)/float64(w)).Bool("high", tk.HighDensity()).
				Bool("eligible", core.TypedEligible(tk))
		}
		if !core.TypedEligible(tk) {
			tsp.Finish()
			alloc.LowIndices = append(alloc.LowIndices, i)
			continue
		}
		mu, tmpl, ok := core.MinprocsTyped(tk, avail, opt.Priority, tsp)
		if !ok {
			tsp.Bool("failed", true).Finish()
			phase1.Finish()
			root.Bool("schedulable", false).Str("phase", core.PhaseHighDensity.String()).Finish()
			return nil, &core.FailureError{Phase: core.PhaseHighDensity, TaskIndex: i, TaskName: tk.Name, Remaining: sum(avail)}
		}
		tsp.Str("mu", core.FormatMTypes(mu)).Int("mu_total", int64(tmpl.M)).Finish()
		procs := make([]int, 0, tmpl.M)
		for s := 0; s < ntypes; s++ {
			for k := 0; k < mu[s]; k++ {
				procs = append(procs, next[s])
				next[s]++
			}
			avail[s] -= mu[s]
		}
		dedicated += tmpl.M
		alloc.High = append(alloc.High, core.HighAssignment{TaskIndex: i, Procs: procs, Template: tmpl})
	}
	phase1.Int("dedicated", int64(dedicated)).Int("remaining", int64(sum(avail))).Finish()

	// Leftover ids per type block, globally ascending because blocks are
	// type-major.
	for s := 0; s < ntypes; s++ {
		for p := next[s]; p < base[s+1]; p++ {
			alloc.SharedProcs = append(alloc.SharedProcs, p)
		}
	}

	// Phase 2: one Baruah–Fisher partition per type over that type's
	// leftover processors; the per-type results are stitched into a single
	// Result aligned with SharedProcs.
	phase2 := root.Child("phase2")
	if phase2 != nil {
		phase2.Int("procs", int64(len(alloc.SharedProcs))).Int("low", int64(len(alloc.LowIndices))).
			Str("heuristic", opt.Partition.Heuristic.String()).
			Str("test", opt.Partition.Test.String())
	}
	lowPosByType := make([][]int, ntypes) // positions into LowIndices, per type
	for pos, i := range alloc.LowIndices {
		t, _ := sys[i].G.UniformType() // uniform by TypedEligible
		lowPosByType[t] = append(lowPosByType[t], pos)
	}
	assignment := make([][]int, 0, len(alloc.SharedProcs))
	for s := 0; s < ntypes; s++ {
		rs := base[s+1] - next[s]
		if len(lowPosByType[s]) == 0 {
			assignment = append(assignment, make([][]int, rs)...)
			continue
		}
		subsys := make(task.System, 0, len(lowPosByType[s]))
		for _, pos := range lowPosByType[s] {
			subsys = append(subsys, sys[alloc.LowIndices[pos]])
		}
		tspan := phase2.Child("type")
		if tspan != nil {
			tspan.Str("type", core.TypeName(s)).Int("procs", int64(rs)).Int("low", int64(len(subsys)))
		}
		popt := opt.Partition
		popt.Trace = tspan
		res, err := partition.Partition(subsys, rs, popt)
		if err != nil {
			fe := &core.FailureError{Phase: core.PhaseLowDensity, Remaining: rs, Err: err}
			var pf *partition.FailureError
			if errors.As(err, &pf) {
				fe.TaskIndex = alloc.LowIndices[lowPosByType[s][pf.TaskIndex]]
				fe.TaskName = pf.TaskName
			}
			tspan.Bool("failed", true).Finish()
			phase2.Finish()
			root.Bool("schedulable", false).Str("phase", core.PhaseLowDensity.String()).Finish()
			return nil, fe
		}
		tspan.Finish()
		for k := range res.Assignment {
			var procTasks []int
			for _, sub := range res.Assignment[k] {
				procTasks = append(procTasks, lowPosByType[s][sub])
			}
			assignment = append(assignment, procTasks)
		}
	}
	phase2.Finish()
	root.Bool("schedulable", true).Finish()
	alloc.Low = &partition.Result{Assignment: assignment}
	return alloc, nil
}

func sum(v []int) int {
	t := 0
	for _, x := range v {
		t += x
	}
	return t
}

package task

import (
	"encoding/json"
	"fmt"

	"fedsched/internal/dag"
)

// jsonTask is the wire form of a DAGTask.
type jsonTask struct {
	Name string   `json:"name,omitempty"`
	D    Time     `json:"deadline"`
	T    Time     `json:"period"`
	G    *dag.DAG `json:"dag"`
}

// MarshalJSON encodes the task with its graph inline.
func (tk *DAGTask) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTask{Name: tk.Name, D: tk.D, T: tk.T, G: tk.G})
}

// UnmarshalJSON decodes and validates a DAGTask.
func (tk *DAGTask) UnmarshalJSON(data []byte) error {
	var jt jsonTask
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("task: decoding: %w", err)
	}
	built, err := New(jt.Name, jt.G, jt.D, jt.T)
	if err != nil {
		return err
	}
	*tk = *built
	return nil
}

// SystemFile is the on-disk representation of a task system together with
// the platform it targets, as consumed by cmd/fedsched and produced by
// cmd/taskgen.
type SystemFile struct {
	// Processors is the number of identical unit-speed processors m.
	Processors int `json:"processors"`
	// Tasks is the task system τ.
	Tasks System `json:"tasks"`
}

// Validate validates the platform size and every task.
func (f *SystemFile) Validate() error {
	if f.Processors < 1 {
		return fmt.Errorf("task: processors must be ≥ 1, got %d", f.Processors)
	}
	return f.Tasks.Validate()
}

// EncodeSystem marshals a SystemFile with indentation.
func EncodeSystem(f *SystemFile) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(f, "", "  ")
}

// DecodeSystem unmarshals and validates a SystemFile.
func DecodeSystem(data []byte) (*SystemFile, error) {
	var f SystemFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("task: decoding system file: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

func min64(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

package task

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fedsched/internal/dag"
)

func example1Task() *DAGTask {
	return MustNew("tau1", dag.Example1(), dag.Example1D, dag.Example1T)
}

func TestExample1Quantities(t *testing.T) {
	tk := example1Task()
	if tk.Volume() != 9 {
		t.Errorf("vol = %d, want 9", tk.Volume())
	}
	if tk.Len() != 6 {
		t.Errorf("len = %d, want 6", tk.Len())
	}
	if got, want := tk.Density(), 9.0/16.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("δ = %v, want %v", got, want)
	}
	if got, want := tk.Utilization(), 9.0/20.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("u = %v, want %v", got, want)
	}
	if tk.HighDensity() {
		t.Error("Example 1 must be a low-density task (δ = 9/16 < 1)")
	}
	if !tk.Constrained() {
		t.Error("Example 1 is constrained-deadline (D=16 ≤ T=20)")
	}
	if tk.Implicit() {
		t.Error("Example 1 is not implicit-deadline")
	}
	if !tk.Feasible() {
		t.Error("Example 1 is feasible (len=6 ≤ D=16)")
	}
}

func TestDensityUsesMinDT(t *testing.T) {
	g := dag.Independent(4, 4) // vol=8, len=4
	// Arbitrary-deadline task with D > T: density must divide by T.
	tk := MustNew("x", g, 20, 10)
	if got, want := tk.Density(), 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("density with D>T = %v, want %v (divide by T)", got, want)
	}
	// Constrained task: density divides by D.
	tk2 := MustNew("y", g, 10, 20)
	if got, want := tk2.Density(), 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("density with D<T = %v, want %v (divide by D)", got, want)
	}
}

func TestHighDensityBoundary(t *testing.T) {
	// δ == 1 exactly must be classified high-density ("density ≥ 1").
	g := dag.Singleton(10)
	tk := MustNew("b", g, 10, 10)
	if !tk.HighDensity() {
		t.Error("δ = 1 task must be high-density")
	}
	tk2 := MustNew("b2", g, 11, 11)
	if tk2.HighDensity() {
		t.Error("δ = 10/11 task must be low-density")
	}
}

func TestHighUtilizationBoundary(t *testing.T) {
	g := dag.Independent(5, 5)
	if !MustNew("a", g, 10, 10).HighUtilization() {
		t.Error("u = 1 must be high-utilization")
	}
	if MustNew("b", g, 10, 11).HighUtilization() {
		t.Error("u = 10/11 must be low-utilization")
	}
}

func TestValidation(t *testing.T) {
	g := dag.Singleton(1)
	cases := []struct {
		name string
		tk   *DAGTask
	}{
		{"nil graph", &DAGTask{Name: "n", G: nil, D: 1, T: 1}},
		{"empty graph", &DAGTask{Name: "e", G: dag.NewBuilder(0).MustBuild(), D: 1, T: 1}},
		{"zero deadline", &DAGTask{Name: "d", G: g, D: 0, T: 1}},
		{"zero period", &DAGTask{Name: "t", G: g, D: 1, T: 0}},
	}
	for _, c := range cases {
		if err := c.tk.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid task", c.name)
		}
	}
	if err := MustNew("ok", g, 1, 1).Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestSporadicValidateAndClassify(t *testing.T) {
	s := Sporadic{Name: "s", C: 2, D: 5, T: 10}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Constrained() || s.Implicit() {
		t.Error("C=2,D=5,T=10 must be constrained and not implicit")
	}
	if got := s.Utilization(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("u = %v, want 0.2", got)
	}
	if got := s.Density(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("δ = %v, want 0.4", got)
	}
	bad := Sporadic{C: 0, D: 1, T: 1}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted C=0")
	}
}

func TestAsSporadic(t *testing.T) {
	tk := example1Task()
	s := tk.AsSporadic()
	if s.C != 9 || s.D != 16 || s.T != 20 {
		t.Errorf("AsSporadic = %v, want C=9 D=16 T=20", s)
	}
}

func TestSystemAggregates(t *testing.T) {
	sys := System{
		example1Task(),
		MustNew("hi", dag.Independent(8, 8), 8, 16), // vol=16, δ=2, u=1: high-density
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	wantU := 9.0/20.0 + 16.0/16.0
	if got := sys.USum(); math.Abs(got-wantU) > 1e-12 {
		t.Errorf("USum = %v, want %v", got, wantU)
	}
	wantD := 9.0/16.0 + 2.0
	if got := sys.DensitySum(); math.Abs(got-wantD) > 1e-12 {
		t.Errorf("DensitySum = %v, want %v", got, wantD)
	}
	high, low := sys.SplitByDensity()
	if len(high) != 1 || len(low) != 1 || high[0].Name != "hi" {
		t.Errorf("SplitByDensity: high=%v low=%v", high, low)
	}
	if !sys.Constrained() {
		t.Error("system is constrained-deadline")
	}
	if sys.Implicit() {
		t.Error("system is not implicit-deadline")
	}
}

func TestSplitByUtilization(t *testing.T) {
	sys := System{
		MustNew("lowU", dag.Singleton(1), 10, 10),
		MustNew("highU", dag.Independent(6, 6), 10, 10),
	}
	high, low := sys.SplitByUtilization()
	if len(high) != 1 || high[0].Name != "highU" || len(low) != 1 {
		t.Errorf("SplitByUtilization: high=%v low=%v", high, low)
	}
}

func TestSystemFeasibleNecessaryConditions(t *testing.T) {
	// U_sum = 2 needs m ≥ 2.
	sys := System{
		MustNew("a", dag.Independent(5, 5), 10, 10),
		MustNew("b", dag.Independent(5, 5), 10, 10),
	}
	if sys.Feasible(1) {
		t.Error("U_sum=2 cannot be feasible on m=1")
	}
	if !sys.Feasible(2) {
		t.Error("U_sum=2, len≤D should pass necessary conditions on m=2")
	}
	// len > D is infeasible on any m.
	bad := System{MustNew("c", dag.Chain(6, 6), 10, 100)}
	if bad.Feasible(64) {
		t.Error("len=12 > D=10 must be infeasible regardless of m")
	}
}

func TestExample2CapacityAugmentationConstruction(t *testing.T) {
	// The paper's Example 2: n tasks with C=1, D=1, T=n. U_sum = 1,
	// len_i = 1 ≤ D_i, yet total demand in [0,1) is n: only schedulable on
	// a speed-n processor. Verify the system's density sum is n while its
	// utilization is 1 — the quantity capacity augmentation cannot see.
	for _, n := range []int{2, 5, 17} {
		var sys System
		for i := 0; i < n; i++ {
			sys = append(sys, MustNew("e", dag.Singleton(1), 1, Time(n)))
		}
		if got := sys.USum(); math.Abs(got-1.0) > 1e-9 {
			t.Errorf("n=%d: USum = %v, want 1", n, got)
		}
		if got := sys.DensitySum(); math.Abs(got-float64(n)) > 1e-9 {
			t.Errorf("n=%d: DensitySum = %v, want %d", n, got, n)
		}
		for _, tk := range sys {
			if !tk.Feasible() {
				t.Errorf("n=%d: len ≤ D must hold", n)
			}
		}
	}
}

func TestJSONRoundTripTask(t *testing.T) {
	tk := example1Task()
	data, err := json.Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}
	var back DAGTask
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != tk.Name || back.D != tk.D || back.T != tk.T || !back.G.Equal(tk.G) {
		t.Errorf("round trip mismatch: %s vs %s", tk, &back)
	}
	if back.Volume() != 9 || back.Len() != 6 {
		t.Error("decoded task quantities wrong")
	}
}

func TestJSONRejectsInvalidTask(t *testing.T) {
	var tk DAGTask
	err := json.Unmarshal([]byte(`{"deadline":0,"period":5,"dag":{"vertices":[{"wcet":1}],"edges":[]}}`), &tk)
	if err == nil {
		t.Fatal("accepted zero deadline")
	}
}

func TestSystemFileRoundTrip(t *testing.T) {
	f := &SystemFile{
		Processors: 4,
		Tasks:      System{example1Task(), MustNew("s", dag.Singleton(3), 5, 9)},
	}
	data, err := EncodeSystem(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Processors != 4 || len(back.Tasks) != 2 {
		t.Errorf("round trip: %+v", back)
	}
}

func TestSystemFileValidation(t *testing.T) {
	if _, err := DecodeSystem([]byte(`{"processors":0,"tasks":[]}`)); err == nil {
		t.Error("accepted zero processors")
	}
	if _, err := EncodeSystem(&SystemFile{Processors: 2, Tasks: nil}); err == nil {
		t.Error("accepted empty system")
	}
}

func TestStringFormats(t *testing.T) {
	tk := example1Task()
	s := tk.String()
	for _, want := range []string{"vol=9", "len=6", "D=16", "T=20"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	sp := Sporadic{C: 1, D: 2, T: 3}
	if !strings.Contains(sp.String(), "C=1") {
		t.Errorf("Sporadic.String() = %q", sp.String())
	}
}

// Property: density ≥ utilization always (min(D,T) ≤ T), with equality iff
// D ≥ T; and a high-utilization task is always high-density.
func TestPropertyDensityDominatesUtilization(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		wcets := make([]Time, n)
		for i := range wcets {
			wcets[i] = Time(1 + r.Intn(30))
		}
		g := dag.Independent(wcets...)
		d := Time(1 + r.Intn(100))
		tt := Time(1 + r.Intn(100))
		tk := MustNew("p", g, d, tt)
		if tk.Density() < tk.Utilization()-1e-12 {
			return false
		}
		if tk.HighUtilization() && !tk.HighDensity() {
			return false
		}
		// Exact rationals must agree with floats.
		du, _ := tk.DensityRat().Float64()
		if math.Abs(du-tk.Density()) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: USum is additive over concatenation of systems.
func TestPropertyUSumAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	mk := func() System {
		var sys System
		for i := 0; i < 1+r.Intn(5); i++ {
			sys = append(sys, MustNew("x", dag.Singleton(Time(1+r.Intn(9))), Time(1+r.Intn(50)), Time(1+r.Intn(50))))
		}
		return sys
	}
	for trial := 0; trial < 50; trial++ {
		a, b := mk(), mk()
		both := append(a.Clone(), b...)
		if math.Abs(both.USum()-(a.USum()+b.USum())) > 1e-9 {
			t.Fatal("USum not additive")
		}
	}
}

func TestSummarize(t *testing.T) {
	sys := System{
		example1Task(), // low, constrained, δ=9/16
		MustNew("hi", dag.Independent(8, 8), 8, 16), // high, δ=2, u=1
		MustNew("imp", dag.Singleton(2), 10, 10),    // implicit
	}
	s := sys.Summarize()
	if s.Tasks != 3 || s.HighDensity != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.MaxDensity-2.0) > 1e-12 {
		t.Errorf("MaxDensity = %v, want 2", s.MaxDensity)
	}
	if math.Abs(s.USum-sys.USum()) > 1e-12 || math.Abs(s.DensitySum-sys.DensitySum()) > 1e-12 {
		t.Error("summary aggregates disagree with direct computations")
	}
	if !s.Constrained || s.Implicit {
		t.Errorf("classification flags: %+v", s)
	}
	empty := System{}.Summarize()
	if empty.Tasks != 0 || empty.Constrained || empty.Implicit {
		t.Errorf("empty summary = %+v", empty)
	}
	implicit := System{MustNew("a", dag.Singleton(1), 5, 5)}.Summarize()
	if !implicit.Implicit || !implicit.Constrained {
		t.Errorf("implicit flags: %+v", implicit)
	}
}

package task

import (
	"encoding/binary"
	"sort"
)

// Canonical content encoding of a DAG task.
//
// AppendCanonical serializes exactly the analysis-relevant content of a task
// — D, T, vertex WCETs and the precedence relation — into a byte string that
// is a pure function of that content:
//
//   - vertex names are excluded (FEDCONS never reads them);
//   - the order in which edges were added to the Builder or listed in a JSON
//     file is irrelevant (the DAG already normalizes adjacency);
//   - vertices are enumerated in a canonical order computed from the graph
//     structure alone, so re-listing the same vertices in a different order
//     (with edges renumbered accordingly) yields the same bytes.
//
// The canonical vertex order is found by iterated structural refinement
// (1-WL colour refinement seeded with WCETs): each vertex starts with a
// signature of its WCET, and each round folds in the sorted multisets of its
// predecessors' and successors' signatures, until the partition into
// signature classes stabilizes. Vertices are then sorted by signature.
// Vertices left tied after refinement are structurally interchangeable in
// every DAG family this repo generates (parallel identical branches and the
// like), where any tie-break produces identical bytes; as a determinism
// backstop, residual ties fall back to the original index.
//
// The encoding is injective on labeled content: two tasks with equal
// canonical bytes have identical (D, T) and identical adjacency structure
// over identically-WCET'd vertices, which is exactly the input FEDCONS's
// analysis depends on. core.TaskHash hashes these bytes to produce the
// content address used by the admission service's memo cache.
func (tk *DAGTask) AppendCanonical(b []byte) []byte {
	b = append(b, "fedsched/task/v1\x00"...)
	b = binary.BigEndian.AppendUint64(b, uint64(tk.D))
	b = binary.BigEndian.AppendUint64(b, uint64(tk.T))

	g := tk.G
	n := g.N()
	b = binary.BigEndian.AppendUint64(b, uint64(n))
	b = binary.BigEndian.AppendUint64(b, uint64(g.M()))

	order := tk.CanonicalOrder() // order[k] = original index of canonical vertex k
	rank := make([]int, n)       // rank[v] = canonical index of original vertex v
	for k, v := range order {
		rank[v] = k
	}
	for _, v := range order {
		b = binary.BigEndian.AppendUint64(b, uint64(g.WCET(v)))
	}
	edges := make([][2]int, 0, g.M())
	for v := 0; v < n; v++ {
		for _, w := range g.Successors(v) {
			edges = append(edges, [2]int{rank[v], rank[w]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		b = binary.BigEndian.AppendUint64(b, uint64(e[0]))
		b = binary.BigEndian.AppendUint64(b, uint64(e[1]))
	}
	// Typed graphs append a per-vertex type section. Untyped graphs (every
	// vertex the default type 0) skip it entirely, so their canonical bytes —
	// and hence core.TaskHash, the memo cache keys, and every WAL/snapshot
	// replay — are unchanged from the pre-typed encoding. Injectivity is
	// preserved: the untyped encoding's length is fully determined by its own
	// n and edge-count fields, so a typed encoding (strictly longer, with a
	// distinguishing magic) can never collide with an untyped one.
	if g.Typed() {
		b = append(b, "fedsched/task/typed/v1\x00"...)
		for _, v := range order {
			b = binary.BigEndian.AppendUint64(b, uint64(g.TypeOf(v)))
		}
	}
	return b
}

// CanonicalOrder returns a permutation of the task's vertex indices — the
// canonical enumeration order used by AppendCanonical. order[k] is the
// original index of the vertex placed at canonical position k.
func (tk *DAGTask) CanonicalOrder() []int {
	g := tk.G
	n := g.N()
	sig := make([]uint64, n)
	next := make([]uint64, n)
	// The processor type is folded into the seed only for typed graphs, so
	// the canonical order of every untyped graph is bit-for-bit what it was
	// before types existed; on typed graphs it keeps same-WCET vertices of
	// different types in distinct refinement classes.
	typed := g.Typed()
	for v := 0; v < n; v++ {
		sig[v] = mix(0x9e3779b97f4a7c15, uint64(g.WCET(v)))
		if typed {
			sig[v] = mix(sig[v], uint64(g.TypeOf(v)))
		}
	}
	// Refine until the number of distinct signatures stops growing. Each
	// round propagates one more hop of structure; n rounds always suffice.
	classes := distinct(sig)
	for round := 0; round < n; round++ {
		var scratch []uint64
		for v := 0; v < n; v++ {
			h := mix(sig[v], 0x517cc1b727220a95)
			scratch = scratch[:0]
			for _, p := range g.Predecessors(v) {
				scratch = append(scratch, sig[p])
			}
			sortUint64(scratch)
			for _, s := range scratch {
				h = mix(h, s)
			}
			h = mix(h, 0xbf58476d1ce4e5b9) // separator: preds vs succs
			scratch = scratch[:0]
			for _, s := range g.Successors(v) {
				scratch = append(scratch, sig[s])
			}
			sortUint64(scratch)
			for _, s := range scratch {
				h = mix(h, s)
			}
			next[v] = h
		}
		sig, next = next, sig
		if c := distinct(sig); c == classes {
			break
		} else {
			classes = c
		}
	}
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if sig[a] != sig[b] {
			return sig[a] < sig[b]
		}
		return a < b // determinism backstop for residual ties
	})
	return order
}

// mix is the splitmix64 finalizer applied to a ^ rotated b — a cheap,
// well-distributed combiner for signature refinement.
func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func distinct(sig []uint64) int {
	seen := make(map[uint64]struct{}, len(sig))
	for _, s := range sig {
		seen[s] = struct{}{}
	}
	return len(seen)
}

// SameAnalysisInput reports whether two tasks present identical input to the
// schedulability analysis: equal D, T, and labeled graph structure (vertex
// WCETs and adjacency under the same labeling; names are ignored). This is
// the equality the admission cache uses to guard hash lookups, so a cache
// hit implies a byte-identical Phase-1 analysis.
func SameAnalysisInput(a, b *DAGTask) bool {
	if a.D != b.D || a.T != b.T || a.G.N() != b.G.N() || a.G.M() != b.G.M() {
		return false
	}
	for v := 0; v < a.G.N(); v++ {
		if a.G.WCET(v) != b.G.WCET(v) || a.G.TypeOf(v) != b.G.TypeOf(v) {
			return false
		}
		as, bs := a.G.Successors(v), b.G.Successors(v)
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

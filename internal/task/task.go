// Package task defines the recurrent-task abstractions of the paper: the
// three-parameter sporadic task of Mok, the sporadic DAG task of Baruah et
// al., and task systems with their classification into implicit-,
// constrained- and arbitrary-deadline systems and into high-/low-density
// tasks.
//
// All derived quantities follow Section II of the paper verbatim:
//
//	vol_i = Σ_{v∈V_i} e_v                  (total WCET of a dag-job)
//	len_i = longest chain length in G_i
//	u_i   = vol_i / T_i                    (utilization)
//	δ_i   = vol_i / min(D_i, T_i)          (density)
//
// A task is high-utilization if u_i ≥ 1 and high-density if δ_i ≥ 1.
package task

import (
	"errors"
	"fmt"
	"math/big"

	"fedsched/internal/dag"
)

// Time is a point in, or duration of, discrete time, in abstract ticks.
type Time = dag.Time

// Sporadic is a three-parameter sporadic task (C, D, T): jobs arrive with
// minimum inter-arrival time T, execute for at most C, and must finish
// within D of arrival. Jobs have no internal parallelism.
type Sporadic struct {
	Name string
	C    Time // worst-case execution time
	D    Time // relative deadline
	T    Time // period (minimum inter-arrival separation)
}

// Validate checks the basic sanity constraints C ≥ 1, D ≥ 1, T ≥ 1.
func (s Sporadic) Validate() error {
	if s.C < 1 || s.D < 1 || s.T < 1 {
		return fmt.Errorf("task %q: parameters must be ≥ 1, got C=%d D=%d T=%d", s.Name, s.C, s.D, s.T)
	}
	return nil
}

// Utilization returns C/T.
func (s Sporadic) Utilization() float64 { return float64(s.C) / float64(s.T) }

// Density returns C/min(D,T).
func (s Sporadic) Density() float64 { return float64(s.C) / float64(min64(s.D, s.T)) }

// UtilizationRat returns C/T exactly.
func (s Sporadic) UtilizationRat() *big.Rat { return big.NewRat(s.C, s.T) }

// Constrained reports whether D ≤ T.
func (s Sporadic) Constrained() bool { return s.D <= s.T }

// Implicit reports whether D == T.
func (s Sporadic) Implicit() bool { return s.D == s.T }

// String renders the task compactly.
func (s Sporadic) String() string {
	name := s.Name
	if name == "" {
		name = "τ"
	}
	return fmt.Sprintf("%s(C=%d,D=%d,T=%d)", name, s.C, s.D, s.T)
}

// DAGTask is a sporadic DAG task τ_i = (G_i, D_i, T_i).
//
// A release of a dag-job at instant t makes all |V_i| jobs of G_i available
// (subject to the precedence constraints); they must all complete by t + D_i,
// and at least T_i must elapse before the next release.
type DAGTask struct {
	Name string
	G    *dag.DAG
	D    Time
	T    Time

	// vol/len are memoized on first use; a DAGTask's graph is immutable.
	vol, length Time
	cached      bool
}

// New constructs a validated DAGTask.
func New(name string, g *dag.DAG, d, t Time) (*DAGTask, error) {
	tk := &DAGTask{Name: name, G: g, D: d, T: t}
	if err := tk.Validate(); err != nil {
		return nil, err
	}
	return tk, nil
}

// MustNew is New that panics on error; for tests and fixtures.
func MustNew(name string, g *dag.DAG, d, t Time) *DAGTask {
	tk, err := New(name, g, d, t)
	if err != nil {
		panic(err)
	}
	return tk
}

// Validate checks that the graph is present and non-empty and that D and T
// are positive.
func (tk *DAGTask) Validate() error {
	if tk.G == nil {
		return fmt.Errorf("task %q: nil DAG", tk.Name)
	}
	if tk.G.N() == 0 {
		return fmt.Errorf("task %q: empty DAG", tk.Name)
	}
	if tk.D < 1 || tk.T < 1 {
		return fmt.Errorf("task %q: D and T must be ≥ 1, got D=%d T=%d", tk.Name, tk.D, tk.T)
	}
	return nil
}

func (tk *DAGTask) memoize() {
	if !tk.cached {
		tk.vol = tk.G.Volume()
		tk.length = tk.G.LongestChain()
		tk.cached = true
	}
}

// Volume returns vol_i, the total WCET of one dag-job.
func (tk *DAGTask) Volume() Time { tk.memoize(); return tk.vol }

// Len returns len_i, the length of the longest chain in G_i.
func (tk *DAGTask) Len() Time { tk.memoize(); return tk.length }

// Utilization returns u_i = vol_i / T_i.
func (tk *DAGTask) Utilization() float64 { return float64(tk.Volume()) / float64(tk.T) }

// UtilizationRat returns u_i exactly as a rational.
func (tk *DAGTask) UtilizationRat() *big.Rat { return big.NewRat(tk.Volume(), tk.T) }

// Density returns δ_i = vol_i / min(D_i, T_i).
func (tk *DAGTask) Density() float64 {
	return float64(tk.Volume()) / float64(min64(tk.D, tk.T))
}

// DensityRat returns δ_i exactly as a rational.
func (tk *DAGTask) DensityRat() *big.Rat { return big.NewRat(tk.Volume(), min64(tk.D, tk.T)) }

// HighDensity reports whether δ_i ≥ 1 (the paper's criterion for granting a
// task exclusive processors in FEDCONS).
func (tk *DAGTask) HighDensity() bool { return tk.Volume() >= min64(tk.D, tk.T) }

// HighUtilization reports whether u_i ≥ 1 (the criterion used by the
// implicit-deadline federated scheduling of Li et al.).
func (tk *DAGTask) HighUtilization() bool { return tk.Volume() >= tk.T }

// Constrained reports whether D_i ≤ T_i.
func (tk *DAGTask) Constrained() bool { return tk.D <= tk.T }

// Implicit reports whether D_i == T_i.
func (tk *DAGTask) Implicit() bool { return tk.D == tk.T }

// Feasible reports the elementary necessary conditions for the task to be
// schedulable at all, on any number of unit-speed processors:
// len_i ≤ D_i (the critical path fits in the scheduling window) and
// u_i ≤ some capacity — only the first is per-task; see System.Feasible.
func (tk *DAGTask) Feasible() bool { return tk.Len() <= tk.D }

// Typed reports whether the task's graph references a nonzero processor
// type; untyped tasks are analyzed exactly as on the homogeneous platform.
func (tk *DAGTask) Typed() bool { return tk.G.Typed() }

// NumTypes returns the number of processor types the task references
// (1 for untyped tasks).
func (tk *DAGTask) NumTypes() int { return tk.G.NumTypes() }

// VolumeByType returns the per-type work vector of one dag-job.
func (tk *DAGTask) VolumeByType() []Time { return tk.G.VolumeByType() }

// AsSporadic collapses the task to the three-parameter sporadic task
// (C = vol_i, D_i, T_i). This is exact for tasks confined to a single
// processor, where intra-task parallelism cannot be exploited (Section IV-B).
func (tk *DAGTask) AsSporadic() Sporadic {
	return Sporadic{Name: tk.Name, C: tk.Volume(), D: tk.D, T: tk.T}
}

// String summarizes the task.
func (tk *DAGTask) String() string {
	name := tk.Name
	if name == "" {
		name = "τ"
	}
	return fmt.Sprintf("%s(|V|=%d vol=%d len=%d D=%d T=%d δ=%.3f u=%.3f)",
		name, tk.G.N(), tk.Volume(), tk.Len(), tk.D, tk.T, tk.Density(), tk.Utilization())
}

// System is a sporadic DAG task system τ = {τ_1, …, τ_n}.
type System []*DAGTask

// ErrEmptySystem is returned by Validate for a system with no tasks.
var ErrEmptySystem = errors.New("task: empty system")

// Validate validates every task in the system.
func (sys System) Validate() error {
	if len(sys) == 0 {
		return ErrEmptySystem
	}
	for i, tk := range sys {
		if tk == nil {
			return fmt.Errorf("task: system[%d] is nil", i)
		}
		if err := tk.Validate(); err != nil {
			return fmt.Errorf("system[%d]: %w", i, err)
		}
	}
	return nil
}

// USum returns U_sum(τ) = Σ u_i.
func (sys System) USum() float64 {
	u := 0.0
	for _, tk := range sys {
		u += tk.Utilization()
	}
	return u
}

// DensitySum returns Σ δ_i.
func (sys System) DensitySum() float64 {
	d := 0.0
	for _, tk := range sys {
		d += tk.Density()
	}
	return d
}

// Constrained reports whether every task has D_i ≤ T_i.
func (sys System) Constrained() bool {
	for _, tk := range sys {
		if !tk.Constrained() {
			return false
		}
	}
	return true
}

// Implicit reports whether every task has D_i == T_i.
func (sys System) Implicit() bool {
	for _, tk := range sys {
		if !tk.Implicit() {
			return false
		}
	}
	return true
}

// SplitByDensity partitions the system into τ_high (δ_i ≥ 1) and τ_low
// (δ_i < 1), preserving order, as the first step of FEDCONS.
func (sys System) SplitByDensity() (high, low System) {
	for _, tk := range sys {
		if tk.HighDensity() {
			high = append(high, tk)
		} else {
			low = append(low, tk)
		}
	}
	return high, low
}

// SplitByUtilization partitions into u_i ≥ 1 and u_i < 1 (the Li et al.
// implicit-deadline criterion).
func (sys System) SplitByUtilization() (high, low System) {
	for _, tk := range sys {
		if tk.HighUtilization() {
			high = append(high, tk)
		} else {
			low = append(low, tk)
		}
	}
	return high, low
}

// Feasible reports the elementary necessary conditions for feasibility on m
// unit-speed processors: U_sum ≤ m and len_i ≤ D_i for all i. Failing either
// means no scheduling algorithm whatsoever can succeed. (These conditions are
// not jointly sufficient.)
func (sys System) Feasible(m int) bool {
	if sys.USum() > float64(m)+1e-9 {
		return false
	}
	for _, tk := range sys {
		if !tk.Feasible() {
			return false
		}
	}
	return true
}

// Typed reports whether any task in the system references a nonzero
// processor type.
func (sys System) Typed() bool {
	for _, tk := range sys {
		if tk.Typed() {
			return true
		}
	}
	return false
}

// NumTypes returns the number of processor types the system references:
// the maximum over its tasks (1 for untyped or empty systems).
func (sys System) NumTypes() int {
	n := 1
	for _, tk := range sys {
		if t := tk.NumTypes(); t > n {
			n = t
		}
	}
	return n
}

// Clone returns a shallow copy of the system slice (tasks are shared).
func (sys System) Clone() System {
	return append(System(nil), sys...)
}

// Summary aggregates the classification statistics of a system.
type Summary struct {
	Tasks       int
	HighDensity int
	USum        float64
	DensitySum  float64
	MaxDensity  float64
	Constrained bool
	Implicit    bool
}

// Summarize computes the system's Summary in one pass.
func (sys System) Summarize() Summary {
	s := Summary{Tasks: len(sys), Constrained: true, Implicit: true}
	for _, tk := range sys {
		u := tk.Utilization()
		d := tk.Density()
		s.USum += u
		s.DensitySum += d
		if d > s.MaxDensity {
			s.MaxDensity = d
		}
		if tk.HighDensity() {
			s.HighDensity++
		}
		if !tk.Constrained() {
			s.Constrained = false
		}
		if !tk.Implicit() {
			s.Implicit = false
		}
	}
	if len(sys) == 0 {
		s.Constrained = false
		s.Implicit = false
	}
	return s
}

package task

import (
	"bytes"
	"testing"

	"fedsched/internal/dag"
)

func TestCanonicalOrderIsPermutation(t *testing.T) {
	tk := MustNew("x", dag.Example1(), dag.Example1D, dag.Example1T)
	order := tk.CanonicalOrder()
	if len(order) != tk.G.N() {
		t.Fatalf("order has %d entries for %d vertices", len(order), tk.G.N())
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[v] = true
	}
}

func TestAppendCanonicalDeterministic(t *testing.T) {
	tk := MustNew("x", dag.Example1(), dag.Example1D, dag.Example1T)
	a := tk.AppendCanonical(nil)
	b := tk.AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("canonical encoding not deterministic")
	}
	// Appending extends the prefix in place.
	prefix := []byte("prefix")
	c := tk.AppendCanonical(prefix)
	if !bytes.HasPrefix(c, prefix) || !bytes.Equal(c[len(prefix):], a) {
		t.Fatal("AppendCanonical does not append to the given buffer")
	}
}

func TestAppendCanonicalIgnoresNames(t *testing.T) {
	named := MustNew("alpha", dag.Example1(), 16, 20)
	b := dag.NewBuilder(5)
	// Same structure as Example1 but unnamed vertices.
	g := dag.Example1()
	for v := 0; v < g.N(); v++ {
		b.AddJob(g.WCET(v))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	anon := MustNew("beta", b.MustBuild(), 16, 20)
	if !bytes.Equal(named.AppendCanonical(nil), anon.AppendCanonical(nil)) {
		t.Fatal("canonical encoding depends on names")
	}
}

func TestSameAnalysisInput(t *testing.T) {
	a := MustNew("a", dag.Example1(), 16, 20)
	b := MustNew("b", dag.Example1(), 16, 20)
	if !SameAnalysisInput(a, b) {
		t.Fatal("identical structure with different names should match")
	}
	if SameAnalysisInput(a, MustNew("a", dag.Example1(), 15, 20)) {
		t.Fatal("different D should not match")
	}
	if SameAnalysisInput(a, MustNew("a", dag.Example1(), 16, 21)) {
		t.Fatal("different T should not match")
	}
	if SameAnalysisInput(a, MustNew("a", dag.Chain(2, 1, 3, 2, 1), 16, 20)) {
		t.Fatal("different structure should not match")
	}
	bumped, err := dag.Example1().WithWCET(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if SameAnalysisInput(a, MustNew("a", bumped, 16, 20)) {
		t.Fatal("different WCET should not match")
	}
}

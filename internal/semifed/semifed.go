// Package semifed implements semi-federated scheduling (Jiang, Guan, Long,
// Yi: "Semi-Federated Scheduling of Parallel Real-Time Tasks on
// Multiprocessors", arXiv 1705.03245) as a pluggable core.Policy.
//
// Strict federation rounds the processor grant of every high-density task up
// to an integer, wasting up to one processor per task. Semi-federated
// scheduling splits the grant instead: a high-density task τ_i with volume
// vol_i, critical-path length len_i and scheduling window w_i = min(D_i, T_i)
// receives
//
//	d_i dedicated processors  +  one reservation server of budget E_i ≤ w_i,
//
// and the fractional servers are packed onto the shared processors by the
// ordinary Phase-2 partitioner, alongside the low-density tasks. The sizing
// used here is the equal-deadline specialization of the container condition:
// with r_i = d_i + 1 reservation units, work-conserving execution of the
// dag-job inside its reservations meets the deadline whenever
//
//	d_i·w_i + E_i ≥ vol_i + (d_i + 1 − 1)·len_i = vol_i + d_i·len_i,
//
// (see DESIGN.md §13; core.Verify re-checks exactly this inequality). Solving
// for the smallest d_i with a feasible budget E_i ≤ w_i gives
//
//	d_i = ⌈(vol_i − w_i)/(w_i − len_i)⌉,   E_i = vol_i − d_i·(w_i − len_i),
//
// which satisfies the condition with equality and keeps 1 ≤ E_i ≤ w_i. When
// vol_i = w_i (density exactly 1) no dedicated processor is needed and the
// task becomes a single server of budget w_i.
//
// The policy is strictly admission-dominant over FEDCONS: if the split-shape
// attempt fails for any reason (a window with no slack past the critical
// path, dedicated processors exhausted, or the combined partition failing),
// it falls back to the strict algorithm, so every system FEDCONS accepts is
// accepted here too.
package semifed

import (
	"errors"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

func init() { core.RegisterPolicy(policy{}) }

// policy implements core.Policy.
type policy struct{}

// Name returns the registry key, "semi".
func (policy) Name() string { return core.PolicySemi }

// Schedule tries the semi-federated split first and falls back to strict
// FEDCONS on any failure, so acceptance dominates the paper's algorithm
// pointwise. Only the strict path's error surfaces when both fail.
func (policy) Schedule(sys task.System, m int, opt core.Options, fallback core.ScheduleFunc) (*core.Allocation, error) {
	if err := core.ValidateInput(sys, m, opt); err != nil {
		return nil, err
	}
	if alloc, err := schedule(sys, m, opt); err == nil {
		return alloc, nil
	}
	fopt := opt
	fopt.Policy = ""
	return fallback(sys, m, fopt)
}

// Split sizes the semi-federated grant of one high-density task: d dedicated
// processors plus one server of budget E, satisfying the service condition
// d·w + E ≥ vol + d·len with equality. ok is false when no split exists
// (len ≥ w with vol > w: the critical path fills the window, so no finite
// budget closes the gap).
func Split(tk *task.DAGTask) (d int, budget task.Time, ok bool) {
	vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
	if vol <= w {
		// δ = 1 exactly (high-density means vol ≥ w): one pure server.
		return 0, w, true
	}
	if l >= w {
		return 0, 0, false
	}
	dd := (vol - w + (w - l) - 1) / (w - l) // ⌈(vol−w)/(w−l)⌉ ≥ 1
	return int(dd), vol - dd*(w-l), true
}

// schedule is the split-shape attempt. Phase 1 sizes every high-density task
// with Split and hands out dedicated processors; Phase 2 partitions the
// fractional servers together with the low-density tasks onto the remaining
// processors.
func schedule(sys task.System, m int, opt core.Options) (*core.Allocation, error) {
	alloc := &core.Allocation{M: m, Policy: core.PolicySemi}
	nextProc := 0
	mr := m

	root := opt.Trace.Start("semifed")
	if root != nil {
		root.Int("m", int64(m)).Int("tasks", int64(len(sys)))
	}

	phase1 := root.Child("phase1")
	for i, tk := range sys {
		var tsp *obs.Span
		if phase1 != nil {
			vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
			tsp = phase1.Child("task").Str("task", tk.Name).Int("index", int64(i)).
				Int("vol", int64(vol)).Int("len", int64(l)).Int("window", int64(w)).
				Float("density", float64(vol)/float64(w)).Bool("high", tk.HighDensity())
		}
		if !tk.HighDensity() {
			tsp.Finish()
			alloc.LowIndices = append(alloc.LowIndices, i)
			continue
		}
		d, budget, ok := Split(tk)
		if !ok || d > mr {
			tsp.Bool("failed", true).Finish()
			phase1.Finish()
			root.Bool("schedulable", false).Str("phase", core.PhaseHighDensity.String()).Finish()
			return nil, &core.FailureError{Phase: core.PhaseHighDensity, TaskIndex: i, TaskName: tk.Name, Remaining: mr}
		}
		tsp.Int("dedicated", int64(d)).Int("budget", int64(budget)).Finish()
		if d > 0 {
			procs := make([]int, d)
			for p := range procs {
				procs[p] = nextProc
				nextProc++
			}
			alloc.High = append(alloc.High, core.HighAssignment{TaskIndex: i, Procs: procs})
			mr -= d
		}
		alloc.Servers = append(alloc.Servers, core.ServerSpec{TaskIndex: i, Budget: budget})
	}
	phase1.Int("dedicated", int64(nextProc)).Int("remaining", int64(mr)).Finish()

	for p := 0; p < mr; p++ {
		alloc.SharedProcs = append(alloc.SharedProcs, nextProc+p)
	}
	combined, err := core.PartitionSystem(sys, alloc)
	if err != nil {
		root.Bool("schedulable", false).Finish()
		return nil, err
	}
	phase2 := root.Child("phase2")
	if phase2 != nil {
		phase2.Int("procs", int64(mr)).Int("servers", int64(len(alloc.Servers))).
			Int("low", int64(len(alloc.LowIndices))).
			Str("heuristic", opt.Partition.Heuristic.String()).
			Str("test", opt.Partition.Test.String())
	}
	popt := opt.Partition
	popt.Trace = phase2
	res, err := partition.Partition(combined, mr, popt)
	if err != nil {
		fe := &core.FailureError{Phase: core.PhaseLowDensity, Remaining: mr, Err: err}
		var pf *partition.FailureError
		if errors.As(err, &pf) {
			fe.TaskIndex = inputIndex(alloc, pf.TaskIndex)
			fe.TaskName = pf.TaskName
		}
		phase2.Bool("failed", true).Finish()
		root.Bool("schedulable", false).Str("phase", core.PhaseLowDensity.String()).Finish()
		return nil, fe
	}
	phase2.Finish()
	root.Bool("schedulable", true).Finish()
	alloc.Low = res
	return alloc, nil
}

// inputIndex maps a combined-partition position (servers first, then low
// tasks) back to the input-system index for failure reporting.
func inputIndex(a *core.Allocation, pos int) int {
	if pos < len(a.Servers) {
		return a.Servers[pos].TaskIndex
	}
	if rest := pos - len(a.Servers); rest < len(a.LowIndices) {
		return a.LowIndices[rest]
	}
	return -1
}

package semifed

import (
	"errors"
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// randomTask draws a DAG task; tight deadlines (D close to the critical
// path) bias the draw toward high density.
func randomTask(r *rand.Rand) *task.DAGTask {
	nv := 1 + r.Intn(8)
	b := dag.NewBuilder(nv)
	for v := 0; v < nv; v++ {
		b.AddJob(task.Time(1 + r.Intn(6)))
	}
	for u := 0; u < nv; u++ {
		for v := u + 1; v < nv; v++ {
			if r.Float64() < 0.25 {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.MustBuild()
	l := g.LongestChain()
	d := l + task.Time(r.Intn(int(g.Volume())+1))
	return task.MustNew("t", g, d, d+task.Time(r.Intn(30)))
}

func randomSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		sys = append(sys, randomTask(r))
	}
	return sys
}

// Split must satisfy the service condition d·w + E ≥ vol + d·len with
// equality, keep the budget in [1, w], and fail exactly when the critical
// path fills the window with volume left over.
func TestSplitServiceCondition(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	highs := 0
	for trial := 0; trial < 2000; trial++ {
		tk := randomTask(r)
		if !tk.HighDensity() {
			continue
		}
		highs++
		vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
		d, e, ok := Split(tk)
		if !ok {
			if l < w {
				t.Fatalf("Split failed with slack: vol=%d len=%d w=%d", vol, l, w)
			}
			continue
		}
		if e < 1 || e > w {
			t.Fatalf("budget %d outside [1, %d] (vol=%d len=%d d=%d)", e, w, vol, l, d)
		}
		if d < 0 || (vol > w && d < 1) {
			t.Fatalf("vol=%d > w=%d needs a dedicated processor, got d=%d", vol, w, d)
		}
		supply := task.Time(d)*w + e
		need := vol + task.Time(d)*l
		if supply != need {
			t.Fatalf("service condition not tight: %d·%d+%d = %d, want %d", d, w, e, supply, need)
		}
	}
	if highs == 0 {
		t.Fatal("test vacuous: no high-density draws")
	}
}

// Split saves exactly one whole processor against the analytic strict bound:
// the Graham-style dedicated count is μ = ⌈(vol−len)/(w−len)⌉, and because
// (vol−w)/(w−len) = (vol−len)/(w−len) − 1 exactly, the semi split always
// yields d = μ − 1 dedicated processors plus a fractional server E ≤ w — the
// reclaimed rounding loss.
func TestSplitSavesOneProcessor(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	hits := 0
	for trial := 0; trial < 2000; trial++ {
		tk := randomTask(r)
		if !tk.HighDensity() {
			continue
		}
		vol, l, w := tk.Volume(), tk.Len(), core.Window(tk)
		if vol <= w || l >= w {
			continue
		}
		d, _, ok := Split(tk)
		if !ok {
			t.Fatalf("Split failed with slack: vol=%d len=%d w=%d", vol, l, w)
		}
		mu := int((vol - l + (w - l) - 1) / (w - l))
		if d != mu-1 {
			t.Fatalf("d=%d, want analytic μ−1 = %d (vol=%d len=%d w=%d)", d, mu-1, vol, l, w)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("test vacuous")
	}
}

// Every allocation the policy returns must pass the policy-aware verifier,
// and split-shape results must be rejected by the dedicated-only (strict)
// verifier once the tag is stripped.
func TestScheduleVerifies(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	splits, stricts := 0, 0
	for trial := 0; trial < 300; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		alloc, err := core.Schedule(sys, m, core.Options{Policy: core.PolicySemi})
		if err != nil {
			continue
		}
		if err := core.Verify(sys, m, alloc); err != nil {
			t.Fatalf("trial %d: accepted allocation fails Verify: %v", trial, err)
		}
		if alloc.Policy != core.PolicySemi {
			stricts++ // fallback path
			continue
		}
		splits++
		if len(alloc.Servers) > 0 {
			stripped := *alloc
			stripped.Policy = ""
			if core.Verify(sys, m, &stripped) == nil {
				t.Fatalf("trial %d: strict verifier accepted a split-shape allocation", trial)
			}
		}
		for _, h := range alloc.High {
			if h.Template != nil {
				t.Fatalf("trial %d: split grant carries a template", trial)
			}
		}
	}
	if splits == 0 {
		t.Fatal("test vacuous: no split-shape acceptances")
	}
}

// Acceptance dominance: every system strict FEDCONS accepts, the semi policy
// accepts too (the fallback guarantees it).
func TestDominatesFedcons(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	flips := 0
	for trial := 0; trial < 300; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		if !core.Schedulable(sys, m, core.Options{}) {
			continue
		}
		if !core.Schedulable(sys, m, core.Options{Policy: core.PolicySemi}) {
			t.Fatalf("trial %d: fedcons accepts but semi rejects", trial)
		}
		flips++
	}
	if flips == 0 {
		t.Fatal("test vacuous: no fedcons acceptances")
	}
}

// A task whose critical path fills its window admits no split (Split is
// undefined there) but strict federation can still schedule it on width
// processors — the fallback must kick in and return a strict-shape
// allocation.
func TestFallbackWhenNoSplitExists(t *testing.T) {
	b := dag.NewBuilder(2)
	b.AddJob(5)
	b.AddJob(5) // two parallel chains: len = 5, vol = 10
	g := b.MustBuild()
	tk := task.MustNew("rigid", g, 5, 5) // w = 5 = len, vol > w
	if _, _, ok := Split(tk); ok {
		t.Fatal("Split should be infeasible when len == window < vol")
	}
	sys := task.System{tk}
	alloc, err := core.Schedule(sys, 2, core.Options{Policy: core.PolicySemi})
	if err != nil {
		t.Fatalf("fallback did not engage: %v", err)
	}
	if alloc.Policy != "" || len(alloc.Servers) != 0 {
		t.Fatalf("fallback allocation not strict-shaped: policy=%q servers=%d", alloc.Policy, len(alloc.Servers))
	}
	if err := core.Verify(sys, 2, alloc); err != nil {
		t.Fatalf("fallback allocation fails Verify: %v", err)
	}
}

// When both the split and the strict path fail, the strict path's error (a
// *core.FailureError) is what surfaces.
func TestDoubleFailureReturnsStrictError(t *testing.T) {
	b := dag.NewBuilder(2)
	b.AddJob(5)
	b.AddJob(5)
	g := b.MustBuild()
	tk := task.MustNew("rigid", g, 5, 5)
	_, err := core.Schedule(task.System{tk}, 1, core.Options{Policy: core.PolicySemi})
	if err == nil {
		t.Fatal("expected failure on m=1")
	}
	var fe *core.FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("want *core.FailureError, got %T: %v", err, err)
	}
	if fe.Phase != core.PhaseHighDensity {
		t.Fatalf("want high-density failure, got %v", fe.Phase)
	}
}

// Mutating a server budget in either direction must break verification: the
// sizing is tight, so any decrement starves the service inequality, and any
// increment past the window breaks the budget bound.
func TestVerifyRejectsMutatedBudget(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	checked := 0
	for trial := 0; trial < 400 && checked < 25; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		alloc, err := core.Schedule(sys, m, core.Options{Policy: core.PolicySemi})
		if err != nil || alloc.Policy != core.PolicySemi || len(alloc.Servers) == 0 {
			continue
		}
		checked++
		for j := range alloc.Servers {
			mut := *alloc
			mut.Servers = append([]core.ServerSpec(nil), alloc.Servers...)
			mut.Servers[j].Budget--
			if err := core.Verify(sys, m, &mut); err == nil {
				t.Fatalf("trial %d: decremented budget of server %d still verifies", trial, j)
			}
			mut.Servers = append([]core.ServerSpec(nil), alloc.Servers...)
			mut.Servers[j].Budget = core.Window(sys[mut.Servers[j].TaskIndex]) + 1
			if err := core.Verify(sys, m, &mut); err == nil {
				t.Fatalf("trial %d: over-window budget of server %d still verifies", trial, j)
			}
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous: no split allocations with servers")
	}
}

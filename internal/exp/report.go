package exp

import (
	"fmt"
	"io"
	"strings"
)

// ReportOptions configures WriteReport.
type ReportOptions struct {
	// Figures renders each experiment's ASCII figure under its table.
	Figures bool
	// FigureWidth/FigureHeight size the ASCII charts (defaults 56×14).
	FigureWidth  int
	FigureHeight int
}

// WriteReport renders a slice of experiment results as the Markdown body
// recorded in EXPERIMENTS.md: one section per experiment with its table,
// optional figure, and notes. The caller prepends whatever preamble it
// wants; cmd/experiments exposes this via -o.
func WriteReport(w io.Writer, results []*Result, opt ReportOptions) error {
	width, height := opt.FigureWidth, opt.FigureHeight
	if width == 0 {
		width = 56
	}
	if height == 0 {
		height = 14
	}
	for _, res := range results {
		if _, err := io.WriteString(w, res.Table.Markdown()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if opt.Figures {
			if fig := res.Render(width, height); fig != "" {
				if _, err := fmt.Fprintf(w, "```\n%s```\n\n", fig); err != nil {
					return err
				}
			}
		}
		for _, n := range res.Notes {
			if _, err := fmt.Fprintf(w, "> %s\n", n); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Summary produces the one-line-per-experiment overview table used at the
// top of EXPERIMENTS.md: id, title, and a PASS/ATTENTION flag derived from
// the notes (any UNEXPECTED note flags attention).
func Summary(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("| ID | Experiment | Status |\n| --- | --- | --- |\n")
	for _, res := range results {
		status := "ok"
		for _, n := range res.Notes {
			if strings.Contains(n, "UNEXPECTED") {
				status = "ATTENTION"
				break
			}
		}
		fmt.Fprintf(&sb, "| %s | %s | %s |\n", res.ID, res.Title, status)
	}
	return sb.String()
}

// Package exp implements the experiment suite of DESIGN.md §4 (E1–E12):
// the code that regenerates every evaluation claim of the paper — the worked
// examples, the Lemma 1 / Theorem 1 bounds, the schedulability experiments
// the paper reports in prose, and the ablations of FEDCONS's design choices.
//
// Each experiment is a pure function of a Config (seed and sample sizes) and
// returns a Result whose Table is what EXPERIMENTS.md records. cmd/experiments
// runs the whole suite; bench_test.go exposes one benchmark per experiment.
package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// Config scales the experiment suite. The zero value is invalid; use
// DefaultConfig or QuickConfig.
type Config struct {
	// Seed drives all generation; the suite is reproducible from it.
	Seed int64
	// SystemsPerPoint is the number of random task systems evaluated at
	// each sweep point.
	SystemsPerPoint int
	// SimHorizon is the release horizon for simulation-based experiments.
	SimHorizon Time
	// Par bounds the worker pool of engine-backed sweep experiments;
	// 0 means GOMAXPROCS and negative values are rejected by Validate.
	// Results are byte-identical for every value — trial RNGs derive from
	// (Seed, experiment, point, trial), never from execution order (see
	// internal/runner).
	Par int
	// Policy selects the admission policy the single-policy acceptance
	// sweeps (E4, E5) analyze: "" or "fedcons" is the paper's strict
	// algorithm (the default, and what the committed tables record); "semi"
	// and "reservation" rerun those sweeps under the corresponding policy.
	// E22 always compares all three side by side. Unknown values are
	// rejected by Validate.
	Policy string
	// Progress, when non-nil, receives trial-completion updates from
	// engine-backed experiments. It may be called concurrently with the
	// experiment's own work but calls are serialized; done increases
	// strictly to total.
	Progress ProgressFunc
}

// ProgressFunc receives sweep progress: the experiment id and how many of
// its trials have completed.
type ProgressFunc func(id string, done, total int)

// DefaultConfig is the full-size configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: 2015, SystemsPerPoint: 200, SimHorizon: 50_000}
}

// QuickConfig is a scaled-down configuration for benchmarks and smoke tests.
func QuickConfig() Config {
	return Config{Seed: 2015, SystemsPerPoint: 20, SimHorizon: 5_000}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SystemsPerPoint < 1 {
		return fmt.Errorf("exp: SystemsPerPoint must be ≥ 1, got %d", c.SystemsPerPoint)
	}
	if c.SimHorizon < 1 {
		return fmt.Errorf("exp: SimHorizon must be ≥ 1, got %d", c.SimHorizon)
	}
	if c.Par < 0 {
		return fmt.Errorf("exp: Par must be ≥ 0 (0 = GOMAXPROCS), got %d", c.Par)
	}
	if _, err := core.NormalizePolicy(c.Policy); err != nil {
		return fmt.Errorf("exp: %v", err)
	}
	return nil
}

// policyAnalyzer resolves cfg.Policy (validated upstream) to its registered
// analyzer: the strict "fedcons" for the empty default.
func policyAnalyzer(cfg Config) runner.Analyzer {
	switch cfg.Policy {
	case core.PolicySemi:
		return runner.MustLookup("semifed")
	case core.PolicyReservation:
		return runner.MustLookup("reservation")
	default:
		return runner.MustLookup("fedcons")
	}
}

// PlotSpec tells renderers how to draw the experiment's figure from its
// table: which column is the x-axis and which columns are curves.
type PlotSpec struct {
	XCol  int
	YCols []int
}

// Result is one experiment's output.
type Result struct {
	// ID is the DESIGN.md experiment id (e.g. "E4").
	ID string
	// Title describes the claim being regenerated.
	Title string
	// Table holds the measured rows.
	Table *stats.Table
	// Notes are prose observations recorded alongside the table
	// (paper-vs-measured commentary, invariant checks).
	Notes []string
	// Plot, when non-nil, identifies the figure columns (cmd/experiments
	// renders it with stats.PlotTable under -plot).
	Plot *PlotSpec
}

// Render returns the ASCII figure for the result, or "" if it has none.
func (r *Result) Render(width, height int) string {
	if r.Plot == nil || r.Table == nil {
		return ""
	}
	return stats.PlotTable(r.Table, r.Plot.XCol, r.Plot.YCols, width, height)
}

// Experiment is a runnable suite entry.
type Experiment struct {
	ID   string
	Run  func(Config) (*Result, error)
	Name string
}

// Suite lists all experiments in DESIGN.md order.
func Suite() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "Paper Example 1 quantities", Run: E1Example1},
		{ID: "E2", Name: "Example 2: capacity augmentation unbounded", Run: E2CapacityAugmentation},
		{ID: "E3", Name: "Lemma 1: LS makespan bound", Run: E3LSMakespanBound},
		{ID: "E4", Name: "Acceptance ratio vs normalized utilization", Run: E4AcceptanceVsUtil},
		{ID: "E5", Name: "Acceptance ratio vs deadline tightness", Run: E5AcceptanceVsDeadlineRatio},
		{ID: "E6", Name: "Baseline comparison", Run: E6BaselineComparison},
		{ID: "E7", Name: "Ablation: MINPROCS LS scan vs analytic", Run: E7MinprocsAblation},
		{ID: "E8", Name: "Ablation: partition heuristics and tests", Run: E8PartitionAblation},
		{ID: "E9", Name: "Graham anomaly and template replay", Run: E9Anomaly},
		{ID: "E10", Name: "Simulation validation of accepted systems", Run: E10SimulationValidation},
		{ID: "E11", Name: "Analysis scalability", Run: E11Scalability},
		{ID: "E12", Name: "Weighted schedulability vs platform size", Run: E12WeightedSchedVsM},
		{ID: "E13", Name: "Extension: arbitrary-deadline systems", Run: E13ArbitraryDeadlines},
		{ID: "E14", Name: "Extension: implicit-deadline comparison with LI-FED", Run: E14ImplicitDeadlineComparison},
		{ID: "E15", Name: "Extension: empirical speedup-bound conservatism", Run: E15EmpiricalSpeedup},
		{ID: "E16", Name: "Ablation: EDF vs deadline-monotonic shared processors", Run: E16SharedSchedulerAblation},
		{ID: "E17", Name: "Extension: sustainability under WCET reduction", Run: E17SustainabilityProbe},
		{ID: "E18", Name: "Extension: Lemma 1 measured against the exact optimum", Run: E18LemmaOneVsOptimal},
		{ID: "E19", Name: "Extension: empirical speed factors vs Theorem 1", Run: E19SpeedFactorSearch},
		{ID: "E20", Name: "Extension: partition optimality gap on implicit systems", Run: E20PartitionOptimality},
		{ID: "E21", Name: "Extension: generator-sensitivity of the acceptance curve", Run: E21GeneratorSensitivity},
		{ID: "E22", Name: "Policy comparison: fedcons vs semi vs reservation", Run: E22PolicyComparison},
		{ID: "E23", Name: "Typed federated scheduling: acceptance vs platform type mix", Run: E23TypedMixSweep},
	}
}

// All runs the full suite in order.
func All(cfg Config) ([]*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []*Result
	for _, e := range Suite() {
		res, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// rng derives a deterministic per-experiment random source for the
// experiments that still run sequentially (worked examples, timing, and
// simulation studies). Sweep experiments instead derive one source per
// trial through the engine — see sweep.
func (c Config) rng(experiment int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + experiment))
}

// sweep runs points × trials independent trials of fn on the shared engine
// (internal/runner) and returns the outcomes indexed [point][trial]. id is
// the experiment id used for progress reporting; sweepID keys the RNG
// derivation and must be unique per sweep (experiments with several
// sub-sweeps use expID*100+k — see sweepID).
func sweep[T any](cfg Config, id string, sweepID int64, points, trials int, fn func(point, trial int, r *rand.Rand) (T, error)) ([][]T, error) {
	s := runner.Sweep{Seed: cfg.Seed, Exp: sweepID, Points: points, Trials: trials, Workers: cfg.Par}
	if cfg.Progress != nil {
		s.OnTrial = func(done, total int) { cfg.Progress(id, done, total) }
	}
	return runner.Run(s, fn)
}

// sweepID namespaces the RNG stream of sub-sweep k of experiment expNum.
// Experiments with a single sweep use k = 0.
func sweepID(expNum, k int64) int64 { return expNum*100 + k }

// sweepParams builds the generator parameters shared by the acceptance
// sweeps: n tasks on m processors at normalized utilization normU = U_sum/m.
func sweepParams(n, m int, normU float64) gen.Params {
	p := gen.DefaultParams(n, normU*float64(m))
	return p
}

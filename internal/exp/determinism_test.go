package exp

import (
	"strings"
	"testing"
)

// TestSweepExperimentsDeterministicUnderParallelism is the load-bearing
// guarantee of the engine migration: the rendered result tables (and notes)
// of every engine-backed experiment are byte-identical whether the sweep ran
// on one worker or many. Reproduction claims are tied to a seed, so worker
// count must never leak into results.
func TestSweepExperimentsDeterministicUnderParallelism(t *testing.T) {
	experiments := map[string]func(Config) (*Result, error){
		"E4":  E4AcceptanceVsUtil,
		"E6":  E6BaselineComparison,
		"E12": E12WeightedSchedVsM,
		"E17": E17SustainabilityProbe,
		"E21": E21GeneratorSensitivity,
	}
	for id, fn := range experiments {
		id, fn := id, fn
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := quick()
			seq.Par = 1
			par := quick()
			par.Par = 8
			rSeq, err := fn(seq)
			if err != nil {
				t.Fatal(err)
			}
			rPar, err := fn(par)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := rSeq.Table.Markdown(), rPar.Table.Markdown(); a != b {
				t.Errorf("tables differ between par=1 and par=8:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", a, b)
			}
			if a, b := strings.Join(rSeq.Notes, "\n"), strings.Join(rPar.Notes, "\n"); a != b {
				t.Errorf("notes differ between par=1 and par=8:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", a, b)
			}
		})
	}
}

// TestSweepExperimentsIgnoreTrialOrder re-runs one experiment twice at the
// same parallelism and asserts identity — a flake detector for analyzers
// with hidden mutable state.
func TestSweepExperimentsIgnoreTrialOrder(t *testing.T) {
	cfg := quick()
	cfg.Par = 4
	a, err := E4AcceptanceVsUtil(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E4AcceptanceVsUtil(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.Markdown() != b.Table.Markdown() {
		t.Error("same config, different tables across runs")
	}
}

package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E13ArbitraryDeadlines exercises the extension the paper poses as future
// work (Section V): arbitrary-deadline systems (D_i may exceed T_i). This
// implementation handles them conservatively — high-density tasks are sized
// against the window min(D, T); the partition keeps true deadlines (DBF*
// remains an upper bound for D > T). The comparison point is the cruder
// fully-constrained transform that clamps every deadline to min(D, T)
// before running FEDCONS, which forfeits the partition-phase slack of late
// deadlines.
func E13ArbitraryDeadlines(cfg Config) (*Result, error) {
	const m, n = 8, 10
	betaGrid := [][2]float64{{0.5, 1.0}, {0.75, 1.25}, {1.0, 1.5}, {1.0, 2.0}, {1.5, 2.5}}
	fedcons := runner.MustLookup("fedcons")
	tab := &stats.Table{
		Title:   "E13 — arbitrary deadlines (extension): window-based FEDCONS vs full constrain-transform (m=8, n=10, U/m=0.75)",
		Columns: []string{"β range", "share D>T tasks", "accept (window)", "accept (transform)"},
	}
	res := &Result{ID: "E13", Title: "Extension: arbitrary-deadline systems", Table: tab}
	type trial struct {
		Arb, Total int
		Win, Trans bool
	}
	outcomes, err := sweep(cfg, "E13", sweepID(13, 0), len(betaGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, 0.75)
			p.BetaMin, p.BetaMax = betaGrid[point][0], betaGrid[point][1]
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			tr := trial{Total: len(sys)}
			for _, tk := range sys {
				if tk.D > tk.T {
					tr.Arb++
				}
			}
			tr.Win = fedcons.Schedulable(sys, m)
			tr.Trans = fedcons.Schedulable(constrainTransform(sys), m)
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	transformOnly, windowOnly := 0, 0
	for p, betas := range betaGrid {
		var win, tra stats.Counter
		arbTasks, total := 0, 0
		for _, tr := range outcomes[p] {
			arbTasks += tr.Arb
			total += tr.Total
			win.Add(tr.Win)
			tra.Add(tr.Trans)
			if tr.Trans && !tr.Win {
				transformOnly++
			}
			if tr.Win && !tr.Trans {
				windowOnly++
			}
		}
		tab.AddRow(fmt.Sprintf("[%.2f, %.2f]", betas[0], betas[1]),
			float64(arbTasks)/float64(total), win.Ratio(), tra.Ratio())
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"Window-only acceptances: %d; transform-only: %d. Per assignment, the true-deadline DBF* test",
		windowOnly, transformOnly),
		"dominates the clamped one, so keeping late deadlines in the partition is what the window approach",
		"buys; whole-system acceptance is only near-comparable because clamping reorders the first-fit",
		"deadline order (transform-only wins are that ordering effect, and stay rare). High-density tasks see",
		"no benefit — both size against min(D,T) — and handling them better is exactly the open problem the",
		"paper names: List Scheduling templates stop working once dag-jobs of one task may overlap.")
	return res, nil
}

// constrainTransform clamps every deadline to min(D, T).
func constrainTransform(sys task.System) task.System {
	out := make(task.System, len(sys))
	for i, tk := range sys {
		d := tk.D
		if tk.T < d {
			d = tk.T
		}
		out[i] = task.MustNew(tk.Name, tk.G, d, tk.T)
	}
	return out
}

// E14ImplicitDeadlineComparison revisits the paper's Section III note: for
// implicit-deadline systems, the federated algorithm of Li et al. [17] and
// FEDCONS coincide in their split (δ = u when D = T) but differ in both
// phases — LI-FED sizes analytically and packs by utilization, FEDCONS
// searches with LS and packs by DBF*. The experiment measures whether the
// constrained-deadline machinery gives anything away on implicit workloads.
func E14ImplicitDeadlineComparison(cfg Config) (*Result, error) {
	const m, n = 8, 10
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	fedconsA, liFedA := runner.MustLookup("fedcons"), runner.MustLookup("li-fed")
	tab := &stats.Table{
		Title:   "E14 — implicit-deadline systems: FEDCONS vs LI-FED [17] (m=8, n=10)",
		Columns: []string{"U/m", "FEDCONS", "LI-FED", "FEDCONS-only", "LI-FED-only"},
	}
	res := &Result{ID: "E14", Title: "Extension: implicit-deadline comparison with LI-FED", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2}}}
	type trial struct{ Fed, Li bool }
	outcomes, err := sweep(cfg, "E14", sweepID(14, 0), len(grid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, grid[point])
			p.BetaMin, p.BetaMax = 1.0, 1.0 // implicit deadlines
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			return trial{Fed: fedconsA.Schedulable(sys, m), Li: liFedA.Schedulable(sys, m)}, nil
		})
	if err != nil {
		return nil, err
	}
	for p, normU := range grid {
		var fed, li stats.Counter
		fedOnly, liOnly := 0, 0
		for _, tr := range outcomes[p] {
			fed.Add(tr.Fed)
			li.Add(tr.Li)
			if tr.Fed && !tr.Li {
				fedOnly++
			}
			if tr.Li && !tr.Fed {
				liOnly++
			}
		}
		tab.AddRow(normU, fed.Ratio(), li.Ratio(), fedOnly, liOnly)
	}
	res.Notes = append(res.Notes,
		"On implicit workloads FEDCONS matches or beats LI-FED overall: the LS scan never allocates more",
		"processors to a high-utilization task than the analytic bound does, and that sizing advantage",
		"dominates. The packing phases pull the other way — per bin, LI-FED's Σu ≤ 1 test is exact for",
		"implicit-deadline EDF while DBF* is merely sufficient (E20 measures that conservatism in the pure",
		"packing regime) — so per-system outcomes are formally incomparable and occasional LI-FED-only wins",
		"are possible. The net effect realizes the paper's Section III note: generalizing to constrained",
		"deadlines costs nothing on implicit-deadline systems.")
	return res, nil
}

// E15EmpiricalSpeedup quantifies the conservatism of Theorem 1 directly in
// the paper's own currency. For each random system it finds m0, the fewest
// processors passing the necessary feasibility conditions (a lower bound on
// what the optimal clairvoyant federated scheduler of Definition 1 needs),
// and m*, the fewest processors FEDCONS needs; the platform inflation m*/m0
// is an upper bound on FEDCONS's effective resource augmentation on that
// instance. Theorem 1 guarantees (in speed) no worse than 3 − 1/m.
func E15EmpiricalSpeedup(cfg Config) (*Result, error) {
	uGrid := []float64{1.5, 3, 6, 12}
	fedconsA, necessaryA := runner.MustLookup("fedcons"), runner.MustLookup("necessary")
	tab := &stats.Table{
		Title:   "E15 — empirical platform inflation m*/m0 vs the 3 − 1/m guarantee",
		Columns: []string{"U_sum target", "systems", "mean m*/m0", "p95", "max", "guarantee at mean m0"},
	}
	res := &Result{ID: "E15", Title: "Extension: empirical speedup-bound conservatism", Table: tab}
	type trial struct {
		Skip       bool
		Ratio      float64
		M0         int
		Unexpected bool
	}
	outcomes, err := sweep(cfg, "E15", sweepID(15, 0), len(uGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := gen.DefaultParams(6, uGrid[point])
			p.MinVerts, p.MaxVerts = 10, 30
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			m0 := minProcsWhere(64, func(m int) bool { return necessaryA.Schedulable(sys, m) })
			mStar := minProcsWhere(64, func(m int) bool { return fedconsA.Schedulable(sys, m) })
			if m0 == 0 || mStar == 0 {
				return trial{Skip: true}, nil
			}
			return trial{Ratio: float64(mStar) / float64(m0), M0: m0, Unexpected: mStar < m0}, nil
		})
	if err != nil {
		return nil, err
	}
	for p, uTarget := range uGrid {
		var ratios []float64
		var m0sum int
		for _, tr := range outcomes[p] {
			if tr.Skip {
				continue
			}
			if tr.Unexpected {
				res.Notes = append(res.Notes, "UNEXPECTED: FEDCONS beat the necessary lower bound")
			}
			ratios = append(ratios, tr.Ratio)
			m0sum += tr.M0
		}
		if len(ratios) == 0 {
			continue
		}
		meanM0 := float64(m0sum) / float64(len(ratios))
		tab.AddRow(uTarget, len(ratios), stats.Mean(ratios), percentile(ratios, 0.95), stats.Max(ratios),
			3-1/meanM0)
	}
	res.Notes = append(res.Notes,
		"Mean platform inflation sits near 1.3–1.7 with rare worst cases near 2.5 — well inside the 3 − 1/m",
		"envelope, and m0 is itself optimistic (necessary conditions only), so true inflation is smaller still.")
	return res, nil
}

// percentile returns the q-quantile of xs (copied, sorted; q in [0,1]).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ { // insertion sort: n is small
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

package exp

import (
	"fmt"

	"fedsched/internal/baseline"
	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E1Example1 regenerates the quantities of the paper's Example 1 (Fig. 1)
// and checks them against the published values: len = 6, vol = 9, δ = 9/16,
// u = 9/20, low-density.
func E1Example1(cfg Config) (*Result, error) {
	tk := task.MustNew("tau1", dag.Example1(), dag.Example1D, dag.Example1T)
	tab := &stats.Table{
		Title:   "E1 — Example 1 quantities (paper vs measured)",
		Columns: []string{"quantity", "paper", "measured", "match"},
	}
	check := func(name, paper string, measured string) bool {
		ok := paper == measured
		tab.AddRow(name, paper, measured, ok)
		return ok
	}
	allOK := true
	allOK = check("|V|", "5", fmt.Sprint(tk.G.N())) && allOK
	allOK = check("|E|", "5", fmt.Sprint(tk.G.M())) && allOK
	allOK = check("len", "6", fmt.Sprint(tk.Len())) && allOK
	allOK = check("vol", "9", fmt.Sprint(tk.Volume())) && allOK
	allOK = check("density", "9/16", tk.DensityRat().RatString()) && allOK
	allOK = check("utilization", "9/20", tk.UtilizationRat().RatString()) && allOK
	allOK = check("classification", "low-density", classify(tk)) && allOK

	res := &Result{ID: "E1", Title: "Paper Example 1 quantities", Table: tab}
	if allOK {
		res.Notes = append(res.Notes, "All quantities match the paper exactly.")
	} else {
		res.Notes = append(res.Notes, "MISMATCH against the paper — investigate.")
	}
	// A low-density task must be handled by the partition phase alone; on a
	// single processor the system {τ1} is trivially schedulable.
	if core.Schedulable(task.System{tk}, 1, core.Options{}) {
		res.Notes = append(res.Notes, "FEDCONS schedules {τ1} on a single processor (vol=9 ≤ D=16).")
	} else {
		res.Notes = append(res.Notes, "UNEXPECTED: FEDCONS rejected {τ1} on one processor.")
	}
	return res, nil
}

func classify(tk *task.DAGTask) string {
	if tk.HighDensity() {
		return "high-density"
	}
	return "low-density"
}

// E2CapacityAugmentation regenerates Example 2: n singleton tasks with
// C = 1, D = 1, T = n have U_sum ≤ 1 and len_i ≤ D_i, yet need m = n unit
// processors (equivalently speed n on one processor) — so no capacity
// augmentation bound exists for constrained deadlines. The table records,
// for growing n, the system utilization, the density sum (the quantity that
// actually grows), and the minimum m at which the necessary conditions and
// FEDCONS each succeed.
func E2CapacityAugmentation(cfg Config) (*Result, error) {
	tab := &stats.Table{
		Title:   "E2 — Example 2: required processors grow as n while U_sum ≤ 1",
		Columns: []string{"n", "U_sum", "Σδ", "min m (necessary)", "min m (FEDCONS)"},
	}
	res := &Result{ID: "E2", Title: "Example 2: capacity augmentation unbounded", Table: tab}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		var sys task.System
		for i := 0; i < n; i++ {
			sys = append(sys, task.MustNew(fmt.Sprintf("e%d", i), dag.Singleton(1), 1, Time(n)))
		}
		minNec := minProcsWhere(n+2, func(m int) bool { return baseline.Necessary(sys, m) })
		minFed := minProcsWhere(n+2, func(m int) bool { return core.Schedulable(sys, m, core.Options{}) })
		tab.AddRow(n, sys.USum(), sys.DensitySum(), minNec, minFed)
		if minFed != n || minNec != n {
			res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED at n=%d: necessary=%d fedcons=%d (want n)", n, minNec, minFed))
		}
	}
	if len(res.Notes) == 0 {
		res.Notes = append(res.Notes,
			"Both the necessary conditions and FEDCONS require exactly m = n processors while U_sum ≤ 1:",
			"speedup needed on a fixed platform grows without bound, so the capacity augmentation bound of any",
			"algorithm is vacuous for constrained deadlines — the paper's argument for using speedup bounds instead.")
	}
	return res, nil
}

// minProcsWhere returns the smallest m ∈ [1, cap] satisfying ok, or 0.
func minProcsWhere(cap int, ok func(m int) bool) int {
	for m := 1; m <= cap; m++ {
		if ok(m) {
			return m
		}
	}
	return 0
}

package exp

import (
	"fmt"

	"fedsched/internal/gen"
	"fedsched/internal/listsched"
	"fedsched/internal/stats"
)

// E3LSMakespanBound regenerates Lemma 1 empirically: over random DAGs and
// platform sizes, Graham's LS never exceeds len + (vol − len)/m, hence it is
// within (2 − 1/m) of the optimal makespan. The table reports, per m, the
// worst observed ratio of LS makespan to the trivial lower bound
// max(len, ⌈vol/m⌉) — an upper bound on the true approximation ratio — and
// the number of Graham-bound violations (which must be zero).
func E3LSMakespanBound(cfg Config) (*Result, error) {
	r := cfg.rng(3)
	tab := &stats.Table{
		Title:   "E3 — Lemma 1: LS makespan vs bounds (random DAGs)",
		Columns: []string{"m", "DAGs", "worst makespan/LB", "guarantee 2−1/m", "Graham-bound violations"},
	}
	res := &Result{ID: "E3", Title: "Lemma 1: LS makespan bound", Table: tab}
	p := gen.DefaultParams(1, 1)
	p.MinVerts, p.MaxVerts = 10, 100
	for _, m := range []int{2, 4, 8, 16} {
		worst := 0.0
		violations := 0
		trials := cfg.SystemsPerPoint * 5
		for i := 0; i < trials; i++ {
			g := gen.Graph(r, p)
			s, err := listsched.Run(g, m, nil)
			if err != nil {
				return nil, err
			}
			if !listsched.WithinGrahamBound(s, g) {
				violations++
			}
			lb := listsched.MakespanLowerBound(g, m)
			ratio := float64(s.Makespan) / float64(lb)
			if ratio > worst {
				worst = ratio
			}
		}
		tab.AddRow(m, trials, worst, 2-1.0/float64(m), violations)
		if violations > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: %d Graham-bound violations at m=%d", violations, m))
		}
	}
	if len(res.Notes) == 0 {
		res.Notes = append(res.Notes,
			"Zero Graham-bound violations; observed worst-case ratios sit well below the 2−1/m guarantee,",
			"previewing the E4 finding that the analytical worst case is conservative in practice.")
	}
	return res, nil
}

// E9Anomaly regenerates footnote 2's justification for template replay:
// Graham's timing anomaly. For seed-stable anomaly instances, the table
// shows the nominal LS makespan (taken as the deadline), the makespan when
// one job's execution time shrinks by one tick and LS is re-run online
// (anomalously larger ⇒ deadline miss), and the worst finish time under
// template replay with the same shrunken execution (never later than the
// template makespan ⇒ deadline met).
func E9Anomaly(cfg Config) (*Result, error) {
	r := cfg.rng(9)
	tab := &stats.Table{
		Title:   "E9 — Graham anomaly: naive online LS misses, template replay does not",
		Columns: []string{"instance", "m", "|V|", "deadline (=nominal)", "rerun makespan", "replay worst finish", "rerun misses", "replay misses"},
	}
	res := &Result{ID: "E9", Title: "Graham anomaly and template replay", Table: tab}
	found := 0
	for found < 5 {
		an := listsched.FindAnomaly(r, 50_000, nil)
		if an == nil {
			return nil, fmt.Errorf("no anomaly instance found within search budget")
		}
		found++
		d := an.Before // deadline equal to the nominal template makespan
		tmpl, err := listsched.Run(an.Original, an.M, nil)
		if err != nil {
			return nil, err
		}
		// Template replay of the reduced execution times: each job starts at
		// its tabulated time and finishes no later than its tabulated end.
		replayFinish := Time(0)
		for v := 0; v < an.Original.N(); v++ {
			end := tmpl.Intervals[v].Start + an.Reduced.WCET(v)
			if end > replayFinish {
				replayFinish = end
			}
		}
		rerun, err := listsched.Run(an.Reduced, an.M, nil)
		if err != nil {
			return nil, err
		}
		rerunMiss := rerun.Makespan > d
		replayMiss := replayFinish > d
		tab.AddRow(found, an.M, an.Original.N(), d, rerun.Makespan, replayFinish,
			boolMiss(rerunMiss), boolMiss(replayMiss))
		if !rerunMiss || replayMiss {
			res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED outcome on instance %d", found))
		}
	}
	if len(res.Notes) == 0 {
		res.Notes = append(res.Notes,
			"On every instance, shrinking one WCET by a single tick makes the re-run LS schedule longer than",
			"the deadline while template replay still meets it — the behaviour footnote 2 warns about and the",
			"reason σ_i is used as a lookup table at run time.")
	}
	return res, nil
}

func boolMiss(b bool) string {
	if b {
		return "MISS"
	}
	return "ok"
}

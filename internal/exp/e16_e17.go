package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/listsched"
	"fedsched/internal/partition"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E16SharedSchedulerAblation compares the paper's shared-processor scheduler
// (preemptive EDF admitted by DBF*) with deadline-monotonic fixed priority
// admitted by exact response-time analysis. EDF is uniprocessor-optimal, so
// the exact-EDF column upper-bounds both; DM-with-exact-RTA and EDF-with-
// approximate-DBF* are incomparable — which one accepts more, and where, is
// the empirical question.
func E16SharedSchedulerAblation(cfg Config) (*Result, error) {
	const m, n = 8, 16
	r := cfg.rng(16)
	tab := &stats.Table{
		Title:   "E16 — shared-processor scheduler ablation (low-density systems, m=8, n=16)",
		Columns: []string{"U/m", "EDF+DBF* (paper)", "DM+RTA", "EDF+exact"},
	}
	res := &Result{ID: "E16", Title: "Ablation: EDF vs deadline-monotonic shared processors", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2, 3}}}
	for _, normU := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
		var edf, dm, exact stats.Counter
		for i := 0; i < cfg.SystemsPerPoint; i++ {
			p := sweepParams(n, m, normU)
			p.BetaMin = 0.5
			sys, err := gen.System(r, p)
			if err != nil {
				return nil, err
			}
			if high, _ := sys.SplitByDensity(); len(high) > 0 {
				continue
			}
			e := core.Schedulable(sys, m, core.Options{})
			d := core.Schedulable(sys, m, core.Options{Partition: partition.Options{Test: partition.DMRta}})
			x := core.Schedulable(sys, m, core.Options{Partition: partition.Options{Test: partition.ExactEDF}})
			edf.Add(e)
			dm.Add(d)
			exact.Add(x)
		}
		tab.AddRow(normU, edf.Ratio(), dm.Ratio(), exact.Ratio())
	}
	res.Notes = append(res.Notes,
		"Per processor, DM-feasible ⊂ EDF-feasible (EDF is uniprocessor-optimal), so every DM placement",
		"passes the exact-EDF audit; system-level acceptances of the three configurations are otherwise",
		"formally incomparable (first-fit packs differently under each admission test). DM+RTA's exact",
		"per-bin test recovers some of what DBF*'s approximation loses, while DM's priority inversions lose",
		"some of what EDF's optimality wins — the columns quantify that trade.")
	return res, nil
}

// E17SustainabilityProbe investigates a subtle consequence of Graham
// anomalies inside MINPROCS: FEDCONS is not self-evidently sustainable with
// respect to WCET reductions. Shrinking one vertex's WCET shrinks δ_i and
// vol_i (never hurting the partition phase or the analytic bound) but can
// lengthen the LS makespan at the previously chosen processor count, moving
// a high-density task's minimum to a larger μ — potentially flipping a
// schedulable system to unschedulable. The probe searches random systems for
// such reversals and reports how often WCET reduction changes each phase.
func E17SustainabilityProbe(cfg Config) (*Result, error) {
	r := cfg.rng(17)
	tab := &stats.Table{
		Title:   "E17 — sustainability probe: effect of reducing one vertex WCET by one tick",
		Columns: []string{"population", "probes", "μ decreased", "μ unchanged", "μ increased", "schedulable→unschedulable"},
	}
	res := &Result{ID: "E17", Title: "Extension: sustainability of FEDCONS under WCET reduction", Table: tab}
	probes := cfg.SystemsPerPoint * 20

	// Per-task view: how does MINPROCS's μ respond to a 1-tick reduction?
	muDown, muSame, muUp := 0, 0, 0
	flips := 0
	tried := 0
	for tried < probes {
		g := randomProbeDAG(r)
		if g.Volume() <= g.LongestChain()+1 {
			continue
		}
		d := g.LongestChain() + 1 + task.Time(r.Intn(int(g.Volume()-g.LongestChain())))
		tk := task.MustNew("p", g, d, d)
		if !tk.HighDensity() {
			continue
		}
		mu0, _, ok0 := core.Minprocs(tk, 64, nil)
		if !ok0 {
			continue
		}
		v := r.Intn(g.N())
		if g.WCET(v) <= 1 {
			continue
		}
		tried++
		g2, err := g.WithWCET(v, g.WCET(v)-1)
		if err != nil {
			return nil, err
		}
		tk2 := task.MustNew("p", g2, d, d)
		mu1, _, ok1 := core.Minprocs(tk2, 64, nil)
		if !ok1 {
			return nil, fmt.Errorf("reduction made task infeasible at unbounded budget")
		}
		switch {
		case mu1 < mu0:
			muDown++
		case mu1 == mu0:
			muSame++
		default:
			muUp++
			// System-level flip: with exactly mu0 processors the original is
			// schedulable and the reduced one is not.
			if core.Schedulable(task.System{tk}, mu0, core.Options{}) &&
				!core.Schedulable(task.System{tk2}, mu0, core.Options{}) {
				flips++
			}
		}
	}
	tab.AddRow("high-density tasks (random)", tried, muDown, muSame, muUp, flips)

	// Targeted population: derive instances from known Graham anomalies
	// (deadline = the nominal makespan), where the μ increase is by
	// construction much more likely.
	tMuDown, tMuSame, tMuUp, tFlips := 0, 0, 0, 0
	targeted := 0
	for targeted < 20 {
		an := listsched.FindAnomaly(r, 50_000, nil)
		if an == nil {
			break
		}
		targeted++
		d := an.Before
		tk := task.MustNew("o", an.Original, d, d)
		tk2 := task.MustNew("r", an.Reduced, d, d)
		mu0, _, ok0 := core.Minprocs(tk, 64, nil)
		mu1, _, ok1 := core.Minprocs(tk2, 64, nil)
		if !ok0 || !ok1 {
			continue
		}
		switch {
		case mu1 < mu0:
			tMuDown++
		case mu1 == mu0:
			tMuSame++
		default:
			tMuUp++
			if core.Schedulable(task.System{tk}, mu0, core.Options{}) &&
				!core.Schedulable(task.System{tk2}, mu0, core.Options{}) {
				tFlips++
			}
		}
	}
	tab.AddRow("anomaly-derived (targeted)", targeted, tMuDown, tMuSame, tMuUp, tFlips)
	if tFlips > 0 || flips > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("Found %d tasks (random: %d) whose MINPROCS minimum *rose* after a WCET reduction,", tMuUp+muUp, muUp),
			fmt.Sprintf("%d of which flip a schedulable platform to unschedulable: FEDCONS with LS-scan sizing is NOT", tFlips+flips),
			"sustainable w.r.t. execution-time reduction. This inherits directly from Graham's anomaly (E9) and",
			"is avoided by the Analytic sizing mode, whose bound len + (vol−len)/μ is monotone in every WCET.",
			"(Run-time safety is unaffected — template replay never re-runs LS — this is an analysis-time,",
			"change-the-WCET-estimate-and-reanalyze phenomenon.)")
	} else {
		res.Notes = append(res.Notes,
			"UNEXPECTED: no sustainability violation found even in the anomaly-derived population.")
	}
	// Control: the analytic mode is provably monotone; verify empirically.
	violations := 0
	for i := 0; i < probes/4; i++ {
		g := randomProbeDAG(r)
		if g.Volume() <= g.LongestChain()+1 {
			continue
		}
		d := g.LongestChain() + 1 + task.Time(r.Intn(int(g.Volume()-g.LongestChain())))
		tk := task.MustNew("p", g, d, d)
		mu0, _, ok0 := core.MinprocsAnalytic(tk, 256, nil)
		v := r.Intn(g.N())
		if !ok0 || g.WCET(v) <= 1 {
			continue
		}
		g2, _ := g.WithWCET(v, g.WCET(v)-1)
		tk2 := task.MustNew("p", g2, d, d)
		mu1, _, ok1 := core.MinprocsAnalytic(tk2, 256, nil)
		if ok1 && mu1 > mu0 {
			violations++
		}
	}
	tab.AddRow("analytic control", probes/4, "-", "-", violations, 0)
	if violations > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: analytic sizing rose after reduction %d times", violations))
	}
	return res, nil
}

func randomProbeDAG(r *rand.Rand) *dag.DAG {
	n := 4 + r.Intn(12)
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(task.Time(1 + r.Intn(8)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

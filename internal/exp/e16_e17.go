package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/listsched"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E16SharedSchedulerAblation compares the paper's shared-processor scheduler
// (preemptive EDF admitted by DBF*) with deadline-monotonic fixed priority
// admitted by exact response-time analysis. EDF is uniprocessor-optimal, so
// the exact-EDF column upper-bounds both; DM-with-exact-RTA and EDF-with-
// approximate-DBF* are incomparable — which one accepts more, and where, is
// the empirical question.
func E16SharedSchedulerAblation(cfg Config) (*Result, error) {
	const m, n = 8, 16
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	analyzers := lookupAll("fedcons", "fedcons-dm-rta", "fedcons-exact-edf")
	tab := &stats.Table{
		Title:   "E16 — shared-processor scheduler ablation (low-density systems, m=8, n=16)",
		Columns: []string{"U/m", "EDF+DBF* (paper)", "DM+RTA", "EDF+exact"},
	}
	res := &Result{ID: "E16", Title: "Ablation: EDF vs deadline-monotonic shared processors", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2, 3}}}
	type trial struct {
		Skip bool
		OK   [3]bool
	}
	outcomes, err := sweep(cfg, "E16", sweepID(16, 0), len(grid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, grid[point])
			p.BetaMin = 0.5
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			if high, _ := sys.SplitByDensity(); len(high) > 0 {
				return trial{Skip: true}, nil
			}
			var tr trial
			for k, a := range analyzers {
				tr.OK[k] = a.Schedulable(sys, m)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	for p, normU := range grid {
		var edf, dm, exact stats.Counter
		for _, tr := range outcomes[p] {
			if tr.Skip {
				continue
			}
			edf.Add(tr.OK[0])
			dm.Add(tr.OK[1])
			exact.Add(tr.OK[2])
		}
		tab.AddRow(normU, edf.Ratio(), dm.Ratio(), exact.Ratio())
	}
	res.Notes = append(res.Notes,
		"Per processor, DM-feasible ⊂ EDF-feasible (EDF is uniprocessor-optimal), so every DM placement",
		"passes the exact-EDF audit; system-level acceptances of the three configurations are otherwise",
		"formally incomparable (first-fit packs differently under each admission test). DM+RTA's exact",
		"per-bin test recovers some of what DBF*'s approximation loses, while DM's priority inversions lose",
		"some of what EDF's optimality wins — the columns quantify that trade.")
	return res, nil
}

// muShift classifies how a WCET reduction moved the MINPROCS minimum.
type muShift int

const (
	muDown muShift = iota
	muSame
	muUp
	muSkip // probe invalid (no anomaly found, infeasible, …)
)

// E17SustainabilityProbe investigates a subtle consequence of Graham
// anomalies inside MINPROCS: FEDCONS is not self-evidently sustainable with
// respect to WCET reductions. Shrinking one vertex's WCET shrinks δ_i and
// vol_i (never hurting the partition phase or the analytic bound) but can
// lengthen the LS makespan at the previously chosen processor count, moving
// a high-density task's minimum to a larger μ — potentially flipping a
// schedulable system to unschedulable. The probe searches random systems for
// such reversals and reports how often WCET reduction changes each phase.
func E17SustainabilityProbe(cfg Config) (*Result, error) {
	fedcons := runner.MustLookup("fedcons")
	tab := &stats.Table{
		Title:   "E17 — sustainability probe: effect of reducing one vertex WCET by one tick",
		Columns: []string{"population", "probes", "μ decreased", "μ unchanged", "μ increased", "schedulable→unschedulable"},
	}
	res := &Result{ID: "E17", Title: "Extension: sustainability of FEDCONS under WCET reduction", Table: tab}
	probes := cfg.SystemsPerPoint * 20

	// Per-task view: how does MINPROCS's μ respond to a 1-tick reduction?
	// Each trial rejection-samples from its own stream until it lands on a
	// valid probe (a feasible high-density task with a shrinkable vertex).
	random, err := sweep(cfg, "E17", sweepID(17, 0), 1, probes,
		func(_, _ int, r *rand.Rand) (muProbe, error) {
			for {
				g := randomProbeDAG(r)
				if g.Volume() <= g.LongestChain()+1 {
					continue
				}
				d := g.LongestChain() + 1 + task.Time(r.Intn(int(g.Volume()-g.LongestChain())))
				tk := task.MustNew("p", g, d, d)
				if !tk.HighDensity() {
					continue
				}
				mu0, _, ok0 := core.Minprocs(tk, 64, nil)
				if !ok0 {
					continue
				}
				v := r.Intn(g.N())
				if g.WCET(v) <= 1 {
					continue
				}
				g2, err := g.WithWCET(v, g.WCET(v)-1)
				if err != nil {
					return muProbe{}, err
				}
				tk2 := task.MustNew("p", g2, d, d)
				mu1, _, ok1 := core.Minprocs(tk2, 64, nil)
				if !ok1 {
					return muProbe{}, fmt.Errorf("reduction made task infeasible at unbounded budget")
				}
				return classifyShift(fedcons, tk, tk2, mu0, mu1), nil
			}
		})
	if err != nil {
		return nil, err
	}
	down, same, up, flips := tallyProbes(random[0])
	tab.AddRow("high-density tasks (random)", probes, down, same, up, flips)

	// Targeted population: derive instances from known Graham anomalies
	// (deadline = the nominal makespan), where the μ increase is by
	// construction much more likely.
	targetedOut, err := sweep(cfg, "E17", sweepID(17, 1), 1, 20,
		func(_, _ int, r *rand.Rand) (muProbe, error) {
			an := listsched.FindAnomaly(r, 50_000, nil)
			if an == nil {
				return muProbe{Shift: muSkip}, nil
			}
			d := an.Before
			tk := task.MustNew("o", an.Original, d, d)
			tk2 := task.MustNew("r", an.Reduced, d, d)
			mu0, _, ok0 := core.Minprocs(tk, 64, nil)
			mu1, _, ok1 := core.Minprocs(tk2, 64, nil)
			if !ok0 || !ok1 {
				return muProbe{Shift: muSkip}, nil
			}
			return classifyShift(fedcons, tk, tk2, mu0, mu1), nil
		})
	if err != nil {
		return nil, err
	}
	tDown, tSame, tUp, tFlips := tallyProbes(targetedOut[0])
	targeted := tDown + tSame + tUp
	tab.AddRow("anomaly-derived (targeted)", targeted, tDown, tSame, tUp, tFlips)
	if tFlips > 0 || flips > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("Found %d tasks (random: %d) whose MINPROCS minimum *rose* after a WCET reduction,", tUp+up, up),
			fmt.Sprintf("%d of which flip a schedulable platform to unschedulable: FEDCONS with LS-scan sizing is NOT", tFlips+flips),
			"sustainable w.r.t. execution-time reduction. This inherits directly from Graham's anomaly (E9) and",
			"is avoided by the Analytic sizing mode, whose bound len + (vol−len)/μ is monotone in every WCET.",
			"(Run-time safety is unaffected — template replay never re-runs LS — this is an analysis-time,",
			"change-the-WCET-estimate-and-reanalyze phenomenon.)")
	} else {
		res.Notes = append(res.Notes,
			"UNEXPECTED: no sustainability violation found even in the anomaly-derived population.")
	}
	// Control: the analytic mode is provably monotone; verify empirically.
	controlOut, err := sweep(cfg, "E17", sweepID(17, 2), 1, probes/4,
		func(_, _ int, r *rand.Rand) (bool, error) {
			g := randomProbeDAG(r)
			if g.Volume() <= g.LongestChain()+1 {
				return false, nil
			}
			d := g.LongestChain() + 1 + task.Time(r.Intn(int(g.Volume()-g.LongestChain())))
			tk := task.MustNew("p", g, d, d)
			mu0, _, ok0 := core.MinprocsAnalytic(tk, 256, nil)
			v := r.Intn(g.N())
			if !ok0 || g.WCET(v) <= 1 {
				return false, nil
			}
			g2, _ := g.WithWCET(v, g.WCET(v)-1)
			tk2 := task.MustNew("p", g2, d, d)
			mu1, _, ok1 := core.MinprocsAnalytic(tk2, 256, nil)
			return ok1 && mu1 > mu0, nil
		})
	if err != nil {
		return nil, err
	}
	violations := 0
	for _, rose := range controlOut[0] {
		if rose {
			violations++
		}
	}
	tab.AddRow("analytic control", probes/4, "-", "-", violations, 0)
	if violations > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: analytic sizing rose after reduction %d times", violations))
	}
	return res, nil
}

// muProbe is the outcome of one sustainability probe.
type muProbe struct {
	Shift muShift
	Flip  bool
}

// classifyShift compares the MINPROCS minima before/after the reduction and,
// when μ rose, checks whether the platform that sufficed before now fails.
func classifyShift(a runner.Analyzer, tk, tk2 *task.DAGTask, mu0, mu1 int) (p muProbe) {
	switch {
	case mu1 < mu0:
		p.Shift = muDown
	case mu1 == mu0:
		p.Shift = muSame
	default:
		p.Shift = muUp
		p.Flip = a.Schedulable(task.System{tk}, mu0) && !a.Schedulable(task.System{tk2}, mu0)
	}
	return p
}

func tallyProbes(ps []muProbe) (down, same, up, flips int) {
	for _, p := range ps {
		switch p.Shift {
		case muDown:
			down++
		case muSame:
			same++
		case muUp:
			up++
			if p.Flip {
				flips++
			}
		}
	}
	return down, same, up, flips
}

func randomProbeDAG(r *rand.Rand) *dag.DAG {
	n := 4 + r.Intn(12)
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(task.Time(1 + r.Intn(8)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

package exp

import (
	"errors"
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E23's workload typing. Typing at the vertex level alone would make every
// 20–50-vertex DAG mixed-type with near certainty, and a mixed-type task
// always needs dedicated processors — ten of them can never fit on m = 8. So
// tasks are typed at task granularity with a mixed minority: e23TypeProb of
// the tasks are uniformly type b, e23MixedProb are genuinely mixed (each
// vertex independently type b with probability e23TypeProb), and the rest are
// uniformly type a. The workload's type demand is fixed while the platform's
// type supply sweeps.
const (
	e23TypeProb  = 0.3
	e23MixedProb = 0.15
)

// E23TypedMixSweep sweeps the platform's type mix at fixed total size m = 8 —
// from an all-type-a machine (a:8) through every split to all-type-b (b:8) —
// and measures the typed policy's acceptance ratio on typed workloads whose
// type demand stays constant. Acceptance must peak where supply matches the
// ~70/30 demand mix and collapse at both extremes (work of the starved type
// has nowhere to run), which is the qualitative signature that the per-type
// MINPROCS scan and per-type partition actually bind on the declared budgets
// rather than on the total.
//
// Every accepted allocation is re-audited in-trial by the policy-aware
// core.Verify (type preservation on dedicated groups, per-type shared
// processors, per-processor DBF* admission); a verification failure aborts
// the experiment, so a committed table certifies zero in-trial verification
// failures. The phase columns attribute each rejection to the phase that
// refused it.
func E23TypedMixSweep(cfg Config) (*Result, error) {
	const m, n = 8, 10
	const normU = 0.4
	tab := &stats.Table{
		Title: fmt.Sprintf("E23 — typed acceptance vs platform type mix (m=%d, n=%d, U/m=%.2f, P[task type b]=%.2f, P[mixed]=%.2f)",
			m, n, normU, e23TypeProb, e23MixedProb),
		Columns: []string{"m_b", "TYPED", "phase1 fail%", "phase2 fail%"},
	}
	res := &Result{ID: "E23", Title: "Typed federated scheduling: acceptance vs platform type mix", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1}}}
	type trial struct {
		OK     bool
		Phase1 bool // rejected sizing a dedicated grant
		Phase2 bool // rejected partitioning a type's low tasks
	}
	points := m + 1 // m_b = 0 … m
	outcomes, err := sweep(cfg, "E23", sweepID(23, 0), points, cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, normU)
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			for i, tk := range sys {
				sys[i] = e23Retype(r, tk)
			}
			mtypes := []int{m - point, point}
			alloc, err := core.Schedule(sys, m, core.Options{Policy: core.PolicyTyped, MTypes: mtypes})
			if err != nil {
				var fe *core.FailureError
				tr := trial{}
				if errors.As(err, &fe) {
					tr.Phase1 = fe.Phase == core.PhaseHighDensity
					tr.Phase2 = fe.Phase == core.PhaseLowDensity
				}
				return tr, nil
			}
			if verr := core.Verify(sys, m, alloc); verr != nil {
				return trial{}, fmt.Errorf("typed policy at %s accepted an unverifiable allocation: %w",
					core.FormatMTypes(mtypes), verr)
			}
			return trial{OK: true}, nil
		})
	if err != nil {
		return nil, err
	}
	for mb := 0; mb < points; mb++ {
		var ok, p1, p2 stats.Counter
		for _, tr := range outcomes[mb] {
			ok.Add(tr.OK)
			p1.Add(tr.Phase1)
			p2.Add(tr.Phase2)
		}
		tab.AddRow(float64(mb), ok.Ratio(), 100*p1.Ratio(), 100*p2.Ratio())
	}
	res.Notes = append(res.Notes,
		"Every accepted allocation passed the policy-aware core.Verify in-trial (0 verification failures — a failure aborts the run).",
		"Type demand is fixed (~30% of tasks type b, ~15% mixed) while type supply sweeps a:8..b:8 at constant total m;",
		"the acceptance ridge where supply matches demand shows the per-type budgets, not the total, are what binds.")
	return res, nil
}

// e23Retype rebuilds one generated task with E23's typing mix: with
// probability e23MixedProb the task is mixed (per-vertex type-b draws), with
// probability e23TypeProb it is uniformly type b, otherwise it stays
// uniformly type a. WCETs, edges, D and T are untouched, so feasibility is
// preserved.
func e23Retype(r *rand.Rand, tk *task.DAGTask) *task.DAGTask {
	g := tk.G
	u := r.Float64()
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		t := 0
		switch {
		case u < e23MixedProb:
			if r.Float64() < e23TypeProb {
				t = 1
			}
		case u < e23MixedProb+e23TypeProb:
			t = 1
		}
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), t)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
}

package exp

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Config { return Config{Seed: 7, SystemsPerPoint: 8, SimHorizon: 2000} }

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config must be invalid")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Error(err)
	}
}

// TestConfigValidatePolicy pins the Policy vocabulary: the strict default
// spellings and both registered split policies validate, anything else is
// rejected with the -policy error message.
func TestConfigValidatePolicy(t *testing.T) {
	cases := []struct {
		policy string
		ok     bool
	}{
		{"", true},
		{"fedcons", true},
		{"semi", true},
		{"reservation", true},
		{"typed", true},
		{"quantum", false},
		{"SEMI", false},
		{"semi ", false},
	}
	for _, tc := range cases {
		cfg := quick()
		cfg.Policy = tc.policy
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("Policy %q: %v, want valid", tc.policy, err)
		}
		if !tc.ok {
			if err == nil || !strings.Contains(err.Error(), "unknown policy") {
				t.Errorf("Policy %q: err = %v, want unknown-policy rejection", tc.policy, err)
			}
		}
	}
}

// TestE22DominanceAndVerification runs the policy-comparison experiment at
// quick scale: the result must certify zero dominance violations (the Notes
// record the per-trial check) and the SEMI and RESERVATION columns must be
// pointwise ≥ the FEDCONS column.
func TestE22DominanceAndVerification(t *testing.T) {
	res, err := E22PolicyComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "UNEXPECTED") {
			t.Errorf("dominance violation recorded: %s", n)
		}
		if strings.Contains(n, "0 violations") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes do not certify the dominance check: %v", res.Notes)
	}
	col := func(row []string, k int) float64 {
		v, err := strconv.ParseFloat(row[k], 64)
		if err != nil {
			t.Fatalf("column %d of row %v: %v", k, row, err)
		}
		return v
	}
	for _, row := range res.Table.Rows {
		fedcons, semi, resv := col(row, 2), col(row, 3), col(row, 4)
		if semi < fedcons || resv < fedcons {
			t.Errorf("U/m=%s: split policy below FEDCONS: fedcons=%.3f semi=%.3f reservation=%.3f",
				row[0], fedcons, semi, resv)
		}
	}
}

// TestE23TypeMixAndVerification runs the typed type-mix sweep at quick scale:
// the Notes must certify zero in-trial verification failures (a failure
// aborts the run), acceptance must actually depend on the platform's type
// mix — some interior split beats both single-type extremes, whose starved
// type leaves part of the fixed demand with nowhere to run — and the phase
// attribution columns must be well-formed percentages.
func TestE23TypeMixAndVerification(t *testing.T) {
	res, err := E23TypedMixSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "0 verification failures") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes do not certify the in-trial verification: %v", res.Notes)
	}
	if len(res.Table.Rows) != 9 {
		t.Fatalf("type-mix sweep has %d rows, want 9 (m_b = 0..8)", len(res.Table.Rows))
	}
	col := func(row []string, k int) float64 {
		v, err := strconv.ParseFloat(row[k], 64)
		if err != nil {
			t.Fatalf("column %d of row %v: %v", k, row, err)
		}
		return v
	}
	var interiorMax float64
	for i, row := range res.Table.Rows {
		if mb := col(row, 0); mb != float64(i) {
			t.Errorf("row %d: m_b = %v, want %d", i, mb, i)
		}
		for _, k := range []int{2, 3} {
			if p := col(row, k); p < 0 || p > 100 {
				t.Errorf("m_b=%s: phase column %d = %v, not a percentage", row[0], k, p)
			}
		}
		if acc := col(row, 1); i > 0 && i < 8 && acc > interiorMax {
			interiorMax = acc
		}
	}
	allA, allB := col(res.Table.Rows[0], 1), col(res.Table.Rows[8], 1)
	if interiorMax <= allA || interiorMax <= allB {
		t.Errorf("acceptance does not peak at an interior type mix: interior max %.3f vs a:8 %.3f, b:8 %.3f",
			interiorMax, allA, allB)
	}
}

func TestSuiteCoversDesignDoc(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Suite() {
		if e.Run == nil || e.ID == "" || e.Name == "" {
			t.Fatalf("incomplete suite entry %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for i := 1; i <= 12; i++ {
		id := "E" + itoa(i)
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestE1MatchesPaperExactly(t *testing.T) {
	res, err := E1Example1(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		if row[3] != "true" {
			t.Errorf("quantity %s: paper %s vs measured %s", row[0], row[1], row[2])
		}
	}
	assertNoUnexpected(t, res)
}

func TestE2RequiresExactlyNProcessors(t *testing.T) {
	res, err := E2CapacityAugmentation(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	// Spot-check the n=8 row: min m must equal 8 for both columns.
	for _, row := range res.Table.Rows {
		if row[0] == "8" {
			if row[3] != "8" || row[4] != "8" {
				t.Errorf("n=8 row = %v, want min m = 8", row)
			}
			return
		}
	}
	t.Error("n=8 row missing")
}

func TestE3NoBoundViolations(t *testing.T) {
	res, err := E3LSMakespanBound(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	for _, row := range res.Table.Rows {
		if row[4] != "0" {
			t.Errorf("Graham bound violations in row %v", row)
		}
	}
}

func TestE4CurveShape(t *testing.T) {
	res, err := E4AcceptanceVsUtil(quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Table.Rows
	if len(rows) != len(utilGrid) {
		t.Fatalf("%d rows, want %d", len(rows), len(utilGrid))
	}
	// Acceptance at the lightest point must beat the heaviest point.
	first, last := rows[0][3], rows[len(rows)-1][3]
	if first == "0" {
		t.Errorf("acceptance at U/m=0.05 is zero")
	}
	if first == last {
		t.Logf("warning: flat acceptance curve (%s..%s) — small sample?", first, last)
	}
}

func TestE6OrderingHolds(t *testing.T) {
	res, err := E6BaselineComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
}

func TestE9AnomalyRowsAreConclusive(t *testing.T) {
	res, err := E9Anomaly(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) < 5 {
		t.Fatalf("only %d anomaly instances", len(res.Table.Rows))
	}
	for _, row := range res.Table.Rows {
		if row[6] != "MISS" || row[7] != "ok" {
			t.Errorf("row %v: want rerun MISS, replay ok", row)
		}
	}
}

func TestE10ZeroMisses(t *testing.T) {
	res, err := E10SimulationValidation(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	for _, row := range res.Table.Rows {
		if row[3] != "0" {
			t.Errorf("misses in row %v", row)
		}
	}
}

func TestE8DominanceHolds(t *testing.T) {
	res, err := E8PartitionAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	results, err := All(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Suite()) {
		t.Fatalf("%d results for %d experiments", len(results), len(Suite()))
	}
	for _, res := range results {
		if res.Table == nil || len(res.Table.Rows) == 0 {
			t.Errorf("%s: empty table", res.ID)
		}
		if len(res.Notes) == 0 {
			t.Errorf("%s: no notes", res.ID)
		}
	}
}

func assertNoUnexpected(t *testing.T, res *Result) {
	t.Helper()
	for _, n := range res.Notes {
		if strings.Contains(n, "UNEXPECTED") {
			t.Errorf("%s: %s", res.ID, n)
		}
	}
}

package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/listsched"
	"fedsched/internal/opt"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E18LemmaOneVsOptimal measures Lemma 1 against the *actual* optimum rather
// than a lower bound: for small random DAGs, the branch-and-bound scheduler
// of package opt yields the exact optimal (non-preemptive) makespan, so the
// ratio LS/OPT is the true approximation factor of the paper's first phase.
// The experiment also compares MINPROCS's processor count against
// MINPROCS-with-a-clairvoyant-optimal-scheduler — the per-task resource cost
// of using LS instead of OPT, which Lemma 1 bounds by speedup 2 − 1/m.
func E18LemmaOneVsOptimal(cfg Config) (*Result, error) {
	r := cfg.rng(18)
	tab := &stats.Table{
		Title:   "E18 — Lemma 1 vs the exact optimum (branch-and-bound, |V| ≤ 10)",
		Columns: []string{"m", "DAGs", "mean LS/OPT", "max LS/OPT", "bound 2−1/m", "LS optimal %", "mean extra procs (MINPROCS vs OPT)", "max extra"},
	}
	res := &Result{ID: "E18", Title: "Extension: Lemma 1 measured against the exact optimum", Table: tab}
	for _, m := range []int{2, 3} {
		var ratios []float64
		optimal := 0
		var extras []float64
		samples := 0
		violations := 0
		for samples < cfg.SystemsPerPoint*4 {
			g := smallDAG(r)
			optMs, ok := opt.Makespan(g, m, 0)
			if !ok {
				continue
			}
			ls, err := listsched.Run(g, m, nil)
			if err != nil {
				return nil, err
			}
			samples++
			ratio := float64(ls.Makespan) / float64(optMs)
			ratios = append(ratios, ratio)
			if ls.Makespan == optMs {
				optimal++
			}
			if ls.Makespan*Time(m) > (2*Time(m)-1)*optMs {
				violations++
			}
			// Per-task processor inflation at a feasible window.
			window := optMs + Time(r.Intn(int(optMs)+1))
			muOpt, _, okOpt := opt.MinprocsOPT(g, window, 8, 0)
			tk := task.MustNew("p", g, window, window)
			muLS, _, okLS := core.Minprocs(tk, 8, nil)
			if okOpt && okLS {
				extras = append(extras, float64(muLS-muOpt))
			}
		}
		if violations > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: %d Lemma 1 violations at m=%d", violations, m))
		}
		tab.AddRow(m, samples, stats.Mean(ratios), stats.Max(ratios), 2-1.0/float64(m),
			float64(optimal)/float64(samples)*100, stats.Mean(extras), stats.Max(extras))
	}
	res.Notes = append(res.Notes,
		"Against the exact optimum, LS is optimal on the large majority of instances and never near the",
		"2 − 1/m ceiling; MINPROCS rarely needs more than one processor beyond what a clairvoyant optimal",
		"scheduler would (and often none) — the Lemma 1 guarantee is loose in exactly the way the paper's",
		"'conservative characterization' remark anticipates. (OPT here is the optimal non-preemptive",
		"makespan; the preemptive optimum can only be smaller, so true ratios are ≥ the ones reported,",
		"while Graham's bound covers both.)")
	return res, nil
}

func smallDAG(r *rand.Rand) *dag.DAG {
	n := 4 + r.Intn(7) // 4..10 vertices: exact search stays fast
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(Time(1 + r.Intn(8)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

package exp

import (
	"bytes"
	"strings"
	"testing"

	"fedsched/internal/stats"
)

func fakeResults() []*Result {
	tab := &stats.Table{Title: "T", Columns: []string{"x", "y"}}
	tab.AddRow(0.1, 1.0)
	tab.AddRow(0.9, 0.0)
	return []*Result{
		{ID: "EA", Title: "alpha", Table: tab, Notes: []string{"fine"}, Plot: &PlotSpec{XCol: 0, YCols: []int{1}}},
		{ID: "EB", Title: "beta", Table: tab, Notes: []string{"UNEXPECTED: broken"}},
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, fakeResults(), ReportOptions{Figures: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### T", "> fine", "> UNEXPECTED: broken", "```"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Without figures no code fences appear.
	var plain bytes.Buffer
	if err := WriteReport(&plain, fakeResults(), ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "```") {
		t.Error("figures rendered without Figures option")
	}
}

func TestSummary(t *testing.T) {
	s := Summary(fakeResults())
	if !strings.Contains(s, "| EA | alpha | ok |") {
		t.Errorf("summary: %s", s)
	}
	if !strings.Contains(s, "| EB | beta | ATTENTION |") {
		t.Errorf("summary: %s", s)
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// Same config ⇒ byte-identical tables (the whole suite is seeded).
	cfg := quick()
	for _, id := range []string{"E4", "E15"} {
		var runs []*Result
		for i := 0; i < 2; i++ {
			for _, e := range Suite() {
				if e.ID != id {
					continue
				}
				res, err := e.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, res)
			}
		}
		if runs[0].Table.Markdown() != runs[1].Table.Markdown() {
			t.Errorf("%s is not deterministic", id)
		}
	}
}

package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
)

// E22PolicyComparison sweeps normalized utilization under deadline-tightened
// generation (the E7 bias, which produces many high-density tasks) and
// compares the acceptance ratio of the three admission policies side by side:
// the paper's strict FEDCONS, semi-federated fractional grants (Jiang et al.)
// and reservation-based federated scheduling (Ueter et al.). Because both
// split policies fall back to strict FEDCONS on failure, their curves must
// dominate the FEDCONS column pointwise — the experiment counts per-trial
// dominance violations (always expected 0) rather than assuming it — and the
// capacity reclaimed from grant rounding shows as a strictly higher ratio in
// the saturated region. Every accepted allocation is re-audited in-trial by
// the policy-aware core.Verify; a verification failure aborts the experiment,
// so a row in the committed table certifies that every acceptance behind it
// verified.
func E22PolicyComparison(cfg Config) (*Result, error) {
	const m, n = 8, 10
	necessary := runner.MustLookup("necessary")
	policies := []string{"", core.PolicySemi, core.PolicyReservation}
	tab := &stats.Table{
		Title:   "E22 — acceptance ratio by admission policy (m=8, n=10, β∈[0.25,0.6])",
		Columns: []string{"U/m", "NECESSARY (UB)", "FEDCONS", "SEMI", "RESERVATION", "semi split%", "resv split%"},
	}
	res := &Result{ID: "E22", Title: "Policy comparison: fedcons vs semi vs reservation", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{2, 3, 4}}}
	type trial struct {
		Necessary bool
		OK        [3]bool // acceptance per policies[k]
		Split     [3]bool // accepted with the split shape (not the fallback)
	}
	outcomes, err := sweep(cfg, "E22", sweepID(22, 0), len(utilGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, utilGrid[point])
			p.BetaMin, p.BetaMax = 0.25, 0.6 // tighter deadlines → more high-density tasks
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			tr := trial{Necessary: necessary.Schedulable(sys, m)}
			for k, pol := range policies {
				alloc, err := core.Schedule(sys, m, core.Options{Policy: pol})
				if err != nil {
					continue
				}
				if verr := core.Verify(sys, m, alloc); verr != nil {
					return trial{}, fmt.Errorf("policy %q accepted an unverifiable allocation: %w", pol, verr)
				}
				tr.OK[k] = true
				tr.Split[k] = alloc.Policy != ""
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	dominanceViolations := 0
	for p, normU := range utilGrid {
		var nec stats.Counter
		var counters, split [3]stats.Counter
		for _, tr := range outcomes[p] {
			nec.Add(tr.Necessary)
			for k := range counters {
				counters[k].Add(tr.OK[k])
			}
			for k := 1; k < 3; k++ {
				if tr.OK[0] && !tr.OK[k] {
					dominanceViolations++
				}
				if tr.OK[k] {
					split[k].Add(tr.Split[k])
				}
			}
		}
		tab.AddRow(normU, nec.Ratio(), counters[0].Ratio(), counters[1].Ratio(), counters[2].Ratio(),
			100*split[1].Ratio(), 100*split[2].Ratio())
	}
	if dominanceViolations > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"UNEXPECTED: %d trials accepted by FEDCONS were rejected by a split policy (the fallback should make this impossible)",
			dominanceViolations))
	} else {
		res.Notes = append(res.Notes,
			"Dominance verified per trial: every system strict FEDCONS accepted, both split policies accepted too (0 violations).")
	}
	res.Notes = append(res.Notes,
		"Every accepted allocation passed the policy-aware core.Verify in-trial (service inequality, budget bounds, EDF partition).",
		"The split columns show how often the fractional shape itself (not the strict fallback) carried the acceptance;",
		"the SEMI/RESERVATION gain over FEDCONS in the saturated region is the reclaimed grant-rounding capacity.")
	return res, nil
}

package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/gen"
	"fedsched/internal/sim"
	"fedsched/internal/stats"
)

// E10SimulationValidation takes every system FEDCONS accepts during a sweep
// and simulates its federated run time with sporadic release jitter and
// random early completions. Accepted systems must show zero deadline misses;
// the table also reports response-time headroom (how early, relative to the
// deadline, the worst dag-job finished).
func E10SimulationValidation(cfg Config) (*Result, error) {
	const m, n = 8, 10
	r := cfg.rng(10)
	tab := &stats.Table{
		Title:   "E10 — run-time validation of accepted systems (sporadic jitter + early completion)",
		Columns: []string{"U/m", "accepted systems", "dag-jobs simulated", "deadline misses", "worst lateness/D"},
	}
	res := &Result{ID: "E10", Title: "Simulation validation of accepted systems", Table: tab}
	totalMisses := 0
	for _, normU := range []float64{0.2, 0.4, 0.6, 0.8} {
		accepted, jobs, misses := 0, 0, 0
		worstRel := -1.0
		for i := 0; i < cfg.SystemsPerPoint; i++ {
			sys, err := gen.System(r, sweepParams(n, m, normU))
			if err != nil {
				return nil, err
			}
			alloc, err := core.Schedule(sys, m, core.Options{})
			if err != nil {
				continue
			}
			accepted++
			rep, err := sim.Federated(sys, alloc, sim.Config{
				Horizon:  cfg.SimHorizon,
				Arrivals: sim.SporadicRandom,
				Exec:     sim.UniformExec,
				Seed:     cfg.Seed + int64(i),
			})
			if err != nil {
				return nil, err
			}
			jobs += rep.TotalReleased()
			misses += rep.TotalMissed()
			for ti, st := range rep.PerTask {
				if st.Released == 0 {
					continue
				}
				rel := float64(st.MaxLateness) / float64(sys[ti].D)
				if rel > worstRel {
					worstRel = rel
				}
			}
		}
		totalMisses += misses
		tab.AddRow(normU, accepted, jobs, misses, worstRel)
	}
	if totalMisses == 0 {
		res.Notes = append(res.Notes,
			"Zero deadline misses across every accepted system: the analysis is sound end to end, including",
			"under release jitter and early completions (the anomaly-prone regime handled by template replay).")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: %d deadline misses in accepted systems", totalMisses))
	}
	return res, nil
}

// E11Scalability measures the analysis cost of FEDCONS (the offline phase)
// as task count, DAG size and platform size grow — supporting the paper's
// positioning of federated scheduling as retaining partitioned scheduling's
// "simplicity of analysis".
func E11Scalability(cfg Config) (*Result, error) {
	r := cfg.rng(11)
	tab := &stats.Table{
		Title:   "E11 — FEDCONS analysis cost",
		Columns: []string{"tasks", "|V| per task", "m", "accept ratio"},
	}
	res := &Result{ID: "E11", Title: "Analysis scalability", Table: tab}
	shapes := []struct {
		n, vmin, vmax, m int
	}{
		{10, 20, 50, 8},
		{50, 20, 50, 8},
		{200, 20, 50, 8},
		{10, 200, 500, 8},
		{10, 20, 50, 64},
		{50, 200, 500, 64},
	}
	reps := cfg.SystemsPerPoint / 4
	if reps < 3 {
		reps = 3
	}
	// Timings stay out of the table so that the tables of a run are
	// byte-for-byte reproducible from the seed on any machine; the
	// measured (machine-dependent) cost is reported as a note. E11 runs
	// sequentially on purpose — timing individual analyses while other
	// trials share the cores would measure contention, not cost.
	var timing []string
	for _, sh := range shapes {
		var c stats.Counter
		var elapsed time.Duration
		for i := 0; i < reps; i++ {
			p := sweepParams(sh.n, sh.m, 0.5)
			p.MinVerts, p.MaxVerts = sh.vmin, sh.vmax
			sys, err := gen.System(r, p)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			ok := core.Schedulable(sys, sh.m, core.Options{})
			elapsed += time.Since(start)
			c.Add(ok)
		}
		tab.AddRow(sh.n, fmt.Sprintf("%d–%d", sh.vmin, sh.vmax), sh.m, c.Ratio())
		timing = append(timing, fmt.Sprintf("n=%d |V|=%d–%d m=%d: %.0fµs",
			sh.n, sh.vmin, sh.vmax, sh.m, float64(elapsed.Microseconds())/float64(reps)))
	}
	res.Notes = append(res.Notes,
		"Measured mean analysis cost per system (machine-dependent): "+strings.Join(timing, "; ")+".",
		"Analysis cost grows polynomially (LS is near-linear per processor count tried; partitioning is",
		"O(n·m) DBF* evaluations); whole platforms analyze in milliseconds.")
	return res, nil
}

// E12WeightedSchedVsM collapses the acceptance-vs-utilization curve into the
// weighted schedulability score for each platform size m, for FEDCONS and
// the baselines — the customary way to show how capacity loss trends with m
// (the Theorem 1 guarantee 1/(3 − 1/m) also varies, mildly, with m).
func E12WeightedSchedVsM(cfg Config) (*Result, error) {
	const n = 10
	ms := []int{2, 4, 8, 16, 32}
	analyzers := lookupAll("fedcons", "li-fed-d", "part-seq")
	tab := &stats.Table{
		Title:   "E12 — weighted schedulability vs platform size (n=10)",
		Columns: []string{"m", "FEDCONS", "LI-FED-D", "PART-SEQ", "guarantee 1/(3−1/m)"},
	}
	res := &Result{ID: "E12", Title: "Weighted schedulability vs platform size", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2, 3}}}
	perPoint := cfg.SystemsPerPoint / 2
	if perPoint < 5 {
		perPoint = 5
	}
	// The sweep grid is (m, U/m) flattened: point = mi*len(utilGrid) + ui.
	outcomes, err := sweep(cfg, "E12", sweepID(12, 0), len(ms)*len(utilGrid), perPoint,
		func(point, _ int, r *rand.Rand) ([3]bool, error) {
			m, normU := ms[point/len(utilGrid)], utilGrid[point%len(utilGrid)]
			sys, err := gen.System(r, sweepParams(n, m, normU))
			if err != nil {
				return [3]bool{}, err
			}
			var v [3]bool
			for k, a := range analyzers {
				v[k] = a.Schedulable(sys, m)
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}
	for mi, m := range ms {
		var curves [3][]stats.WeightedPoint
		for ui, normU := range utilGrid {
			var counters [3]stats.Counter
			for _, v := range outcomes[mi*len(utilGrid)+ui] {
				for k := range counters {
					counters[k].Add(v[k])
				}
			}
			for k := range curves {
				curves[k] = append(curves[k], stats.WeightedPoint{Weight: normU, Ratio: counters[k].Ratio()})
			}
		}
		tab.AddRow(m,
			stats.WeightedSchedulability(curves[0]),
			stats.WeightedSchedulability(curves[1]),
			stats.WeightedSchedulability(curves[2]),
			1/(3-1.0/float64(m)))
	}
	res.Notes = append(res.Notes,
		"FEDCONS's weighted schedulability sits far above the Theorem 1 floor at every m and dominates both",
		"baselines; PART-SEQ degrades with m because larger platforms host more (unpartitionable) high-density tasks.")
	return res, nil
}

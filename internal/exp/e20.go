package exp

import (
	"math/big"

	"fedsched/internal/baseline"
	"fedsched/internal/binpack"
	"fedsched/internal/core"
	"fedsched/internal/gen"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E20PartitionOptimality quantifies the paper's Section III "bottleneck"
// remark. For implicit-deadline systems of low-utilization tasks the
// partitioning problem is pure bin packing of utilizations (per-processor
// EDF is exact at Σu ≤ 1), which the paper notes can be solved to speedup
// (1 + ε) via the Hochbaum–Shmoys PTAS; this experiment uses the exact
// branch-and-bound packer (the ε → 0 endpoint) as OPT and measures how much
// acceptance the practical first-fit policies give up against it —
// contrasted with the constrained-deadline regime, where no comparable
// near-optimal partitioner is known and Lemma 2's 3 − 1/m is the bottleneck.
func E20PartitionOptimality(cfg Config) (*Result, error) {
	const m, n = 8, 16
	r := cfg.rng(20)
	tab := &stats.Table{
		Title:   "E20 — implicit-deadline partitioning vs the optimal packer (m=8, n=16, all u<1)",
		Columns: []string{"U/m", "systems", "OPT packing", "FEDCONS (FF+DBF*)", "LI-FED (FF util)", "FF gap vs OPT"},
	}
	res := &Result{
		ID:    "E20",
		Title: "Extension: partition optimality gap on implicit systems",
		Table: tab,
		Plot:  &PlotSpec{XCol: 0, YCols: []int{2, 3, 4}},
	}
	subopt := 0
	for _, normU := range []float64{0.6, 0.7, 0.8, 0.85, 0.9, 0.95} {
		var opt, fed, li stats.Counter
		for i := 0; i < cfg.SystemsPerPoint; i++ {
			p := sweepParams(n, m, normU)
			p.BetaMin, p.BetaMax = 1.0, 1.0 // implicit deadlines
			// Packing regime: cap every task at u < 1 (UUniFastDiscard).
			utils := gen.UUniFastDiscard(r, n, normU*float64(m), 0.99, 1000)
			if utils == nil {
				continue
			}
			sys := make(task.System, 0, n)
			genFailed := false
			for _, u := range utils {
				if u < 1e-4 {
					u = 1e-4
				}
				tk, err := gen.TaskFor(r, gen.Graph(r, p), u, p)
				if err != nil {
					genFailed = true
					break
				}
				sys = append(sys, tk)
			}
			if genFailed {
				continue
			}
			if high, _ := sys.SplitByUtilization(); len(high) > 0 {
				continue // T got floored at len for some task: skip
			}
			items := make([]*big.Rat, len(sys))
			for j, tk := range sys {
				items[j] = tk.UtilizationRat()
			}
			ok, conclusive := binpack.Feasible(items, m, 0)
			if !conclusive {
				continue
			}
			f := core.Schedulable(sys, m, core.Options{})
			l := baseline.LiFed(sys, m)
			opt.Add(ok)
			fed.Add(f)
			li.Add(l)
			if (f || l) && !ok {
				subopt++ // heuristic accepted what OPT proves impossible: bug
			}
		}
		gap := opt.Ratio() - fed.Ratio()
		tab.AddRow(normU, opt.Total, opt.Ratio(), fed.Ratio(), li.Ratio(), gap)
	}
	if subopt > 0 {
		res.Notes = append(res.Notes, "UNEXPECTED: a first-fit heuristic accepted a system the exact packer proves infeasible")
	}
	res.Notes = append(res.Notes,
		"On implicit systems the optimal packer upper-bounds both first-fit policies, and the gap only",
		"opens near saturation (U/m ≳ 0.8) — consistent with the paper's Section III remark that for",
		"implicit deadlines partitioning is solvable near-optimally (PTAS [13]; exact B&B here) and the",
		"high-utilization tasks are the real bottleneck. Under constrained deadlines there is no analogous",
		"optimal reference, and Lemma 2's 3 − 1/m partitioning bound becomes the binding term of Theorem 1.")
	return res, nil
}

package exp

import (
	"math/big"
	"math/rand"

	"fedsched/internal/binpack"
	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E20PartitionOptimality quantifies the paper's Section III "bottleneck"
// remark. For implicit-deadline systems of low-utilization tasks the
// partitioning problem is pure bin packing of utilizations (per-processor
// EDF is exact at Σu ≤ 1), which the paper notes can be solved to speedup
// (1 + ε) via the Hochbaum–Shmoys PTAS; this experiment uses the exact
// branch-and-bound packer (the ε → 0 endpoint) as OPT and measures how much
// acceptance the practical first-fit policies give up against it —
// contrasted with the constrained-deadline regime, where no comparable
// near-optimal partitioner is known and Lemma 2's 3 − 1/m is the bottleneck.
func E20PartitionOptimality(cfg Config) (*Result, error) {
	const m, n = 8, 16
	grid := []float64{0.6, 0.7, 0.8, 0.85, 0.9, 0.95}
	fedcons, liFed := runner.MustLookup("fedcons"), runner.MustLookup("li-fed")
	tab := &stats.Table{
		Title:   "E20 — implicit-deadline partitioning vs the optimal packer (m=8, n=16, all u<1)",
		Columns: []string{"U/m", "systems", "OPT packing", "FEDCONS (FF+DBF*)", "LI-FED (FF util)", "FF gap vs OPT"},
	}
	res := &Result{
		ID:    "E20",
		Title: "Extension: partition optimality gap on implicit systems",
		Table: tab,
		Plot:  &PlotSpec{XCol: 0, YCols: []int{2, 3, 4}},
	}
	type trial struct {
		Skip         bool
		Opt, Fed, Li bool
		Subopt       bool
	}
	outcomes, err := sweep(cfg, "E20", sweepID(20, 0), len(grid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			normU := grid[point]
			p := sweepParams(n, m, normU)
			p.BetaMin, p.BetaMax = 1.0, 1.0 // implicit deadlines
			// Packing regime: cap every task at u < 1 (UUniFastDiscard).
			utils := gen.UUniFastDiscard(r, n, normU*float64(m), 0.99, 1000)
			if utils == nil {
				return trial{Skip: true}, nil
			}
			sys := make(task.System, 0, n)
			for _, u := range utils {
				if u < 1e-4 {
					u = 1e-4
				}
				tk, err := gen.TaskFor(r, gen.Graph(r, p), u, p)
				if err != nil {
					return trial{Skip: true}, nil
				}
				sys = append(sys, tk)
			}
			if high, _ := sys.SplitByUtilization(); len(high) > 0 {
				return trial{Skip: true}, nil // T got floored at len for some task: skip
			}
			items := make([]*big.Rat, len(sys))
			for j, tk := range sys {
				items[j] = tk.UtilizationRat()
			}
			ok, conclusive := binpack.Feasible(items, m, 0)
			if !conclusive {
				return trial{Skip: true}, nil
			}
			tr := trial{Opt: ok, Fed: fedcons.Schedulable(sys, m), Li: liFed.Schedulable(sys, m)}
			tr.Subopt = (tr.Fed || tr.Li) && !ok // heuristic accepted what OPT proves impossible: bug
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	subopt := 0
	for p, normU := range grid {
		var opt, fed, li stats.Counter
		for _, tr := range outcomes[p] {
			if tr.Skip {
				continue
			}
			opt.Add(tr.Opt)
			fed.Add(tr.Fed)
			li.Add(tr.Li)
			if tr.Subopt {
				subopt++
			}
		}
		gap := opt.Ratio() - fed.Ratio()
		tab.AddRow(normU, opt.Total, opt.Ratio(), fed.Ratio(), li.Ratio(), gap)
	}
	if subopt > 0 {
		res.Notes = append(res.Notes, "UNEXPECTED: a first-fit heuristic accepted a system the exact packer proves infeasible")
	}
	res.Notes = append(res.Notes,
		"On implicit systems the optimal packer upper-bounds both first-fit policies, and the gap only",
		"opens near saturation (U/m ≳ 0.8) — consistent with the paper's Section III remark that for",
		"implicit deadlines partitioning is solvable near-optimally (PTAS [13]; exact B&B here) and the",
		"high-utilization tasks are the real bottleneck. Under constrained deadlines there is no analogous",
		"optimal reference, and Lemma 2's 3 − 1/m partitioning bound becomes the binding term of Theorem 1.")
	return res, nil
}

package exp

import (
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func TestE13WindowDominatesTransform(t *testing.T) {
	res, err := E13ArbitraryDeadlines(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Table.Rows))
	}
}

func TestE14FedconsAtLeastMatchesLiFed(t *testing.T) {
	// First-fit packings under different orders are formally incomparable,
	// so strict dominance is not guaranteed per system; but in aggregate
	// FEDCONS (exact-minimal sizing + DBF* packing) must win at least as
	// often as LI-FED on implicit workloads.
	res, err := E14ImplicitDeadlineComparison(quick())
	if err != nil {
		t.Fatal(err)
	}
	fedOnly, liOnly := 0, 0
	for _, row := range res.Table.Rows {
		fedOnly += atoiLoose(row[3])
		liOnly += atoiLoose(row[4])
	}
	if liOnly > fedOnly {
		t.Errorf("LI-FED-only wins (%d) exceed FEDCONS-only wins (%d)", liOnly, fedOnly)
	}
}

func atoiLoose(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestE15RatiosWithinGuarantee(t *testing.T) {
	res, err := E15EmpiricalSpeedup(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentile mutated its input")
	}
}

func TestE16ExactEDFDominates(t *testing.T) {
	res, err := E16SharedSchedulerAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
}

func TestE17AnalyticControlIsMonotone(t *testing.T) {
	res, err := E17SustainabilityProbe(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (random, targeted, analytic control)", len(res.Table.Rows))
	}
	// The targeted anomaly-derived population must exhibit μ increases.
	targeted := res.Table.Rows[1]
	if targeted[4] == "0" {
		t.Errorf("targeted row shows no μ increases: %v", targeted)
	}
}

func TestE18NoLemmaViolations(t *testing.T) {
	res, err := E18LemmaOneVsOptimal(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Table.Rows))
	}
}

func TestE19SpeedFactors(t *testing.T) {
	res, err := E19SpeedFactorSearch(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Table.Rows))
	}
}

func TestScaleSystem(t *testing.T) {
	sys := task.System{task.MustNew("x", dag.Chain(10, 10), 30, 40)}
	scaled := scaleSystem(sys, 2.0)
	if scaled[0].Volume() != 10 {
		t.Fatalf("vol = %d, want 10 at speed 2", scaled[0].Volume())
	}
	if scaled[0].D != 30 || scaled[0].T != 40 {
		t.Error("scaling must not touch D or T")
	}
	// Rounding never understates: ceil(3/2)=2 per vertex.
	sys2 := task.System{task.MustNew("y", dag.Chain(3, 3), 30, 40)}
	if got := scaleSystem(sys2, 2.0)[0].Volume(); got != 4 {
		t.Fatalf("vol = %d, want 4 (ceil rounding)", got)
	}
	// Speed 1 must be an identity on volumes.
	if scaleSystem(sys, 1.0)[0].Volume() != 20 {
		t.Fatal("speed 1 changed volume")
	}
}

func TestE20OptimalPackerDominates(t *testing.T) {
	res, err := E20PartitionOptimality(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Table.Rows))
	}
}

func TestE21AllEnsemblesCovered(t *testing.T) {
	res, err := E21GeneratorSensitivity(quick())
	if err != nil {
		t.Fatal(err)
	}
	assertNoUnexpected(t, res)
	if len(res.Table.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 ensembles", len(res.Table.Rows))
	}
	// Every ensemble must accept at U/m = 0.3 (far below the bound floor).
	for _, row := range res.Table.Rows {
		if row[1] == "0" {
			t.Errorf("ensemble %q accepts nothing at U/m=0.3", row[0])
		}
	}
}

package exp

import (
	"fmt"
	"math/rand"

	"fedsched/internal/core"
	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
)

// utilGrid is the normalized-utilization sweep used by E4/E6/E7/E12.
var utilGrid = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// E4AcceptanceVsUtil regenerates the paper's (prose-reported) schedulability
// experiment: the acceptance ratio of FEDCONS over randomly-generated
// constrained-deadline systems as a function of the normalized utilization
// U_sum/m, on m = 8 processors with n = 10 tasks per system. The paper's
// claim — performance "overwhelmingly better" than the conservative
// Theorem 1 bound — corresponds to the curve staying near 1 far beyond
// U/m = 1/(3 − 1/m) ≈ 0.35.
func E4AcceptanceVsUtil(cfg Config) (*Result, error) {
	const m, n = 8, 10
	fedcons := policyAnalyzer(cfg)
	tab := &stats.Table{
		Title:   "E4 — FEDCONS acceptance ratio vs U_sum/m (m=8, n=10)",
		Columns: []string{"U/m", "systems", "accepted", "ratio", "95% CI"},
	}
	res := &Result{ID: "E4", Title: "Acceptance ratio vs normalized utilization", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{3}}}
	guarantee := 1 / (3 - 1.0/float64(m))
	outcomes, err := sweep(cfg, "E4", sweepID(4, 0), len(utilGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (bool, error) {
			sys, err := gen.System(r, sweepParams(n, m, utilGrid[point]))
			if err != nil {
				return false, err
			}
			return fedcons.Schedulable(sys, m), nil
		})
	if err != nil {
		return nil, err
	}
	for p, normU := range utilGrid {
		var c stats.Counter
		for _, ok := range outcomes[p] {
			c.Add(ok)
		}
		lo, hi := c.Wilson95()
		tab.AddRow(normU, c.Total, c.Accepted, c.Ratio(), fmt.Sprintf("[%.3f, %.3f]", lo, hi))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"Theorem 1 worst-case guarantee corresponds to U/m = %.3f; measured acceptance stays near 1 well past it,",
		guarantee),
		"matching the paper's observation that the speedup bound is a conservative characterization.")
	return res, nil
}

// E5AcceptanceVsDeadlineRatio sweeps the deadline tightness β (D = len +
// β·(T − len)) at fixed normalized utilization, isolating the effect the
// constrained-deadline generalization introduces: small β inflates densities
// and pushes work into the (dedicated-processor) first phase.
func E5AcceptanceVsDeadlineRatio(cfg Config) (*Result, error) {
	const m, n = 8, 10
	const normU = 0.5
	betaGrid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	fedcons := policyAnalyzer(cfg)
	tab := &stats.Table{
		Title:   "E5 — acceptance vs deadline tightness β (m=8, n=10, U/m=0.5)",
		Columns: []string{"β", "accepted ratio", "mean Σδ", "mean high-density tasks"},
	}
	res := &Result{ID: "E5", Title: "Acceptance ratio vs deadline tightness", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1}}}
	type trial struct {
		OK   bool
		Dens float64
		High int
	}
	outcomes, err := sweep(cfg, "E5", sweepID(5, 0), len(betaGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, normU)
			p.BetaMin, p.BetaMax = betaGrid[point], betaGrid[point]
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			high, _ := sys.SplitByDensity()
			return trial{OK: fedcons.Schedulable(sys, m), Dens: sys.DensitySum(), High: len(high)}, nil
		})
	if err != nil {
		return nil, err
	}
	for p, beta := range betaGrid {
		var c stats.Counter
		var densSum, highCount float64
		for _, tr := range outcomes[p] {
			c.Add(tr.OK)
			densSum += tr.Dens
			highCount += float64(tr.High)
		}
		tab.AddRow(beta, c.Ratio(), densSum/float64(c.Total), highCount/float64(c.Total))
	}
	res.Notes = append(res.Notes,
		"Acceptance degrades monotonically as deadlines tighten (β→0): densities grow even though U_sum is fixed,",
		"the exact phenomenon that makes capacity augmentation meaningless (E2) and motivates the density-based split.")
	return res, nil
}

// E6BaselineComparison sweeps U_sum/m and compares FEDCONS against PART-SEQ
// (no federation), LI-FED-D (naive adaptation of the implicit-deadline
// algorithm) and the NECESSARY upper bound — the "who wins, where" table.
func E6BaselineComparison(cfg Config) (*Result, error) {
	const m, n = 8, 10
	analyzers := lookupAll("necessary", "fedcons", "li-fed-d", "part-seq")
	tab := &stats.Table{
		Title:   "E6 — acceptance ratios: FEDCONS vs baselines (m=8, n=10)",
		Columns: []string{"U/m", "NECESSARY (UB)", "FEDCONS", "LI-FED-D", "PART-SEQ"},
	}
	res := &Result{ID: "E6", Title: "Baseline comparison", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2, 3, 4}}}
	outcomes, err := sweep(cfg, "E6", sweepID(6, 0), len(utilGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) ([4]bool, error) {
			sys, err := gen.System(r, sweepParams(n, m, utilGrid[point]))
			if err != nil {
				return [4]bool{}, err
			}
			var v [4]bool
			for k, a := range analyzers {
				v[k] = a.Schedulable(sys, m)
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}
	orderViolations := 0
	for p, normU := range utilGrid {
		var counters [4]stats.Counter
		for _, v := range outcomes[p] {
			for k := range counters {
				counters[k].Add(v[k])
			}
			if v[1] && !v[0] { // FEDCONS accepted, NECESSARY rejected
				orderViolations++
			}
		}
		tab.AddRow(normU, counters[0].Ratio(), counters[1].Ratio(), counters[2].Ratio(), counters[3].Ratio())
	}
	if orderViolations > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: %d FEDCONS acceptances failed NECESSARY", orderViolations))
	}
	res.Notes = append(res.Notes,
		"Expected shape: NECESSARY ≥ FEDCONS ≥ LI-FED-D; PART-SEQ collapses once high-density tasks appear",
		"(it cannot exploit intra-task parallelism at all), which is the gap federated scheduling closes.")
	return res, nil
}

// E7MinprocsAblation compares the paper's LS-scan MINPROCS with the analytic
// closed-form sizing, both as a per-task processor count (savings) and as
// end-to-end acceptance.
func E7MinprocsAblation(cfg Config) (*Result, error) {
	const m, n = 8, 10
	grid := []float64{0.3, 0.5, 0.7, 0.9}
	scanA, anaA := runner.MustLookup("fedcons"), runner.MustLookup("fedcons-analytic")
	tab := &stats.Table{
		Title:   "E7 — MINPROCS ablation: LS scan vs analytic sizing (m=8, n=10)",
		Columns: []string{"U/m", "accept (scan)", "accept (analytic)", "mean procs saved/high task", "max saved"},
	}
	res := &Result{ID: "E7", Title: "Ablation: MINPROCS LS scan vs analytic", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2}}}
	type trial struct {
		Scan, Ana bool
		Saved     []float64
	}
	outcomes, err := sweep(cfg, "E7", sweepID(7, 0), len(grid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, grid[point])
			p.BetaMin, p.BetaMax = 0.25, 0.6 // tighter deadlines → more high-density tasks
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			tr := trial{Scan: scanA.Schedulable(sys, m), Ana: anaA.Schedulable(sys, m)}
			for _, tk := range sys {
				if !tk.HighDensity() {
					continue
				}
				muS, _, okS := core.Minprocs(tk, 64, nil)
				muA, _, okA := core.MinprocsAnalytic(tk, 64, nil)
				if okS && okA {
					tr.Saved = append(tr.Saved, float64(muA-muS))
				}
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	for p, normU := range grid {
		var scan, ana stats.Counter
		var saved []float64
		for _, tr := range outcomes[p] {
			scan.Add(tr.Scan)
			ana.Add(tr.Ana)
			saved = append(saved, tr.Saved...)
		}
		tab.AddRow(normU, scan.Ratio(), ana.Ratio(), stats.Mean(saved), stats.Max(saved))
	}
	res.Notes = append(res.Notes,
		"The LS scan finds the true minimum under LS and therefore dominates the closed form; the saved",
		"processors translate directly into extra capacity for the partition phase.")
	return res, nil
}

// E8PartitionAblation compares partitioning heuristics (FF/BF/WF) and
// admission tests (DBF* vs exact QPA) on low-density-only systems — the
// regime where Lemma 2 (the FEDCONS bottleneck) is the binding constraint.
func E8PartitionAblation(cfg Config) (*Result, error) {
	const m, n = 8, 16
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	variants := lookupAll("part-seq-ff-dbf", "part-seq-bf-dbf", "part-seq-wf-dbf", "part-seq-ff-exact")
	tab := &stats.Table{
		Title:   "E8 — partition ablation on low-density systems (m=8, n=16)",
		Columns: []string{"U/m", "FF+DBF*", "BF+DBF*", "WF+DBF*", "FF+exactEDF"},
	}
	res := &Result{ID: "E8", Title: "Ablation: partition heuristics and tests", Table: tab, Plot: &PlotSpec{XCol: 0, YCols: []int{1, 2, 3, 4}}}
	type trial struct {
		Skip bool
		OK   [4]bool
	}
	outcomes, err := sweep(cfg, "E8", sweepID(8, 0), len(grid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			p := sweepParams(n, m, grid[point])
			p.BetaMin = 0.5 // keep densities < 1 most of the time
			sys, err := gen.System(r, p)
			if err != nil {
				return trial{}, err
			}
			if high, _ := sys.SplitByDensity(); len(high) > 0 {
				return trial{Skip: true}, nil // low-density-only regime
			}
			var tr trial
			for v, a := range variants {
				tr.OK[v] = a.Schedulable(sys, m)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	domViolations := 0
	for p, normU := range grid {
		counters := make([]stats.Counter, len(variants))
		for _, tr := range outcomes[p] {
			if tr.Skip {
				continue
			}
			for v := range counters {
				counters[v].Add(tr.OK[v])
			}
			if tr.OK[0] && !tr.OK[3] { // FF+DBF* accepted, FF+exact rejected
				domViolations++
			}
		}
		tab.AddRow(normU, counters[0].Ratio(), counters[1].Ratio(), counters[2].Ratio(), counters[3].Ratio())
	}
	if domViolations > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("UNEXPECTED: %d systems accepted by DBF* but rejected by exact EDF", domViolations))
	}
	res.Notes = append(res.Notes,
		"The exact-EDF admission dominates DBF* (it accepts everything DBF* accepts); the paper uses DBF*",
		"because only it carries the polynomial-time Lemma 2 speedup proof.")
	return res, nil
}

// lookupAll fetches several registered analyzers at once.
func lookupAll(names ...string) []runner.Analyzer {
	out := make([]runner.Analyzer, len(names))
	for i, name := range names {
		out[i] = runner.MustLookup(name)
	}
	return out
}

package exp

import (
	"math"
	"math/rand"

	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
	"fedsched/internal/task"
)

// E19SpeedFactorSearch measures the paper's speedup metric directly: for
// each random system that passes the necessary feasibility conditions on m
// unit-speed processors (a superset of what the optimal federated scheduler
// of Definition 1 could schedule) but is rejected by FEDCONS, it searches
// for the smallest processor speed s ≥ 1 at which FEDCONS accepts — running
// the platform at speed s is modelled by dividing every WCET by s (rounded
// up, a pessimistic integerization). Theorem 1 promises s ≤ 3 − 1/m whenever
// the system is truly optimally schedulable at speed 1; since NECESSARY
// over-approximates that set, observed factors above the bound would not
// contradict the theorem, and observed factors below it measure its slack.
//
// The search also records non-monotone acceptance along the speed grid —
// possible in principle because faster processors shrink WCETs and WCET
// reduction can flip the LS scan (E17).
func E19SpeedFactorSearch(cfg Config) (*Result, error) {
	const m, n = 8, 10
	normUGrid := []float64{0.5, 0.6, 0.7, 0.8}
	fedcons, necessary := runner.MustLookup("fedcons"), runner.MustLookup("necessary")
	tab := &stats.Table{
		Title:   "E19 — speed factor FEDCONS needs on NECESSARY-feasible systems (m=8, n=10)",
		Columns: []string{"U/m", "rejected@1", "resolved", "mean s", "p95 s", "max s", "bound 3−1/m", "non-monotone"},
	}
	res := &Result{ID: "E19", Title: "Extension: empirical speed factors vs Theorem 1", Table: tab}
	grid := speedGrid()
	bound := 3 - 1.0/float64(m)
	type trial struct {
		Skip      bool // fails NECESSARY: outside the reference set
		Immediate bool // accepted at speed 1
		First     float64
		NonMono   bool
	}
	outcomes, err := sweep(cfg, "E19", sweepID(19, 0), len(normUGrid), cfg.SystemsPerPoint,
		func(point, _ int, r *rand.Rand) (trial, error) {
			sys, err := gen.System(r, sweepParams(n, m, normUGrid[point]))
			if err != nil {
				return trial{}, err
			}
			if !necessary.Schedulable(sys, m) {
				return trial{Skip: true}, nil
			}
			if fedcons.Schedulable(sys, m) {
				return trial{Immediate: true}, nil
			}
			// Scan the speed grid for the first acceptance, and check
			// whether acceptance ever flips back off afterwards.
			tr := trial{First: -1}
			accepted := false
			for _, s := range grid {
				ok := fedcons.Schedulable(scaleSystem(sys, s), m)
				if ok && tr.First < 0 {
					tr.First = s
					accepted = true
				}
				if !ok && accepted {
					tr.NonMono = true
				}
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}
	for p, normU := range normUGrid {
		rejected, resolved, nonMono := 0, 0, 0
		var factors []float64
		for _, tr := range outcomes[p] {
			switch {
			case tr.Skip:
			case tr.Immediate:
				factors = append(factors, 1)
			default:
				rejected++
				if tr.NonMono {
					nonMono++
				}
				if tr.First > 0 {
					resolved++
					factors = append(factors, tr.First)
				}
			}
		}
		tab.AddRow(normU, rejected, resolved, stats.Mean(factors),
			percentile(factors, 0.95), stats.Max(factors), bound, nonMono)
	}
	res.Notes = append(res.Notes,
		"Most NECESSARY-feasible systems need no speedup at all, and the ones FEDCONS initially rejects",
		"resolve at modest factors — the distribution sits comfortably under 3 − 1/m even against the",
		"over-permissive NECESSARY reference (true optimal-schedulable systems would need less).",
		"Occasional non-monotone acceptance along the speed grid is the E17 anomaly surfacing: faster",
		"processors mean smaller WCETs, and the LS scan is not sustainable under WCET reduction.")
	return res, nil
}

func speedGrid() []float64 {
	var out []float64
	for s := 1.05; s <= 3.001; s += 0.05 {
		out = append(out, s)
	}
	return out
}

// scaleSystem models speed-s processors by dividing every WCET by s,
// rounding up (never understates demand).
func scaleSystem(sys task.System, s float64) task.System {
	out := make(task.System, len(sys))
	for i, tk := range sys {
		b := dag.NewBuilder(tk.G.N())
		for v := 0; v < tk.G.N(); v++ {
			w := task.Time(math.Ceil(float64(tk.G.WCET(v)) / s))
			if w < 1 {
				w = 1
			}
			b.AddVertex(tk.G.Vertex(v).Name, w)
		}
		for _, e := range tk.G.Edges() {
			b.AddEdge(e[0], e[1])
		}
		out[i] = task.MustNew(tk.Name, b.MustBuild(), tk.D, tk.T)
	}
	return out
}

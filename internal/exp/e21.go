package exp

import (
	"math/rand"

	"fedsched/internal/gen"
	"fedsched/internal/runner"
	"fedsched/internal/stats"
)

// e21Variants are the orthogonal generator variations E21 sweeps; the order
// is the table's row order and indexes the sweep-point grid.
var e21Variants = []struct {
	name   string
	mutate func(p *gen.Params)
}{
	{"baseline (ER, n=10, |V| 20–50, e 1–100)", func(p *gen.Params) {}},
	{"fork-join DAGs", func(p *gen.Params) { p.Shape = gen.ForkJoin }},
	{"series-parallel DAGs", func(p *gen.Params) { p.Shape = gen.SeriesParallel }},
	{"layered DAGs", func(p *gen.Params) { p.Shape = gen.Layered }},
	{"dense ER (p=0.4)", func(p *gen.Params) { p.EdgeProb = 0.4 }},
	{"few tasks (n=4)", func(p *gen.Params) { p.Tasks = 4 }},
	{"many tasks (n=25)", func(p *gen.Params) { p.Tasks = 25 }},
	{"small DAGs (|V| 5–10)", func(p *gen.Params) { p.MinVerts, p.MaxVerts = 5, 10 }},
	{"large DAGs (|V| 100–200)", func(p *gen.Params) { p.MinVerts, p.MaxVerts = 100, 200 }},
	{"uniform WCETs (e 50–50)", func(p *gen.Params) { p.WCETMin, p.WCETMax = 50, 50 }},
	{"heavy-tailed WCETs (e 1–1000)", func(p *gen.Params) { p.WCETMax = 1000 }},
}

// E21GeneratorSensitivity answers the caveat the paper itself raises about
// its schedulability experiments — "such results are necessarily deeply
// influenced by the manner in which we generate our task systems" — by
// re-measuring the FEDCONS acceptance curve across orthogonal generator
// variations: DAG topology, task count, per-vertex WCET dispersion and DAG
// size. The headline claim (acceptance far above the Theorem-1 floor,
// degrading only at high normalized utilization) should be, and is,
// invariant across all of them; the curves shift, the shape does not.
func E21GeneratorSensitivity(cfg Config) (*Result, error) {
	const m = 8
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	fedcons := runner.MustLookup("fedcons")
	tab := &stats.Table{
		Title:   "E21 — generator sensitivity: FEDCONS acceptance across workload ensembles (m=8)",
		Columns: []string{"ensemble", "U/m=0.3", "0.4", "0.5", "0.6", "0.7"},
	}
	res := &Result{ID: "E21", Title: "Extension: generator-sensitivity of the acceptance curve", Table: tab}
	perPoint := cfg.SystemsPerPoint / 2
	if perPoint < 5 {
		perPoint = 5
	}
	// Point grid is (variant, U/m) flattened: point = vi*len(grid) + ui.
	outcomes, err := sweep(cfg, "E21", sweepID(21, 0), len(e21Variants)*len(grid), perPoint,
		func(point, _ int, r *rand.Rand) (bool, error) {
			p := sweepParams(10, m, grid[point%len(grid)])
			e21Variants[point/len(grid)].mutate(&p)
			sys, err := gen.System(r, p)
			if err != nil {
				return false, err
			}
			return fedcons.Schedulable(sys, m), nil
		})
	if err != nil {
		return nil, err
	}
	monotoneViolations := 0
	for vi, v := range e21Variants {
		row := make([]any, 0, len(grid)+1)
		row = append(row, v.name)
		prev := 1.1
		for ui := range grid {
			var c stats.Counter
			for _, ok := range outcomes[vi*len(grid)+ui] {
				c.Add(ok)
			}
			// Allow small sampling noise in the monotonicity check.
			if c.Ratio() > prev+0.15 {
				monotoneViolations++
			}
			prev = c.Ratio()
			row = append(row, c.Ratio())
		}
		tab.AddRow(row...)
	}
	if monotoneViolations > 0 {
		res.Notes = append(res.Notes,
			"Note: some curves rose noticeably with utilization — sampling noise at this scale, or a genuinely",
			"non-monotone ensemble; inspect the CSV before drawing conclusions.")
	}
	res.Notes = append(res.Notes,
		"Across topology, task count, DAG size and WCET dispersion, every ensemble reproduces the same",
		"qualitative curve — near-total acceptance through U/m ≈ 0.4 and graceful degradation after — which",
		"is the robustness check the paper's own caveat about generator influence calls for. Task count is",
		"the biggest mover, and in both directions: the n=10 baseline sits near the worst case (tasks heavy",
		"enough to be awkward to pack, too light to earn dedicated processors), while n=4 (mostly",
		"high-density, handled by MINPROCS) and n=25 (light, easy to pack) are both easier.")
	return res, nil
}

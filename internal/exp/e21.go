package exp

import (
	"fedsched/internal/core"
	"fedsched/internal/gen"
	"fedsched/internal/stats"
)

// E21GeneratorSensitivity answers the caveat the paper itself raises about
// its schedulability experiments — "such results are necessarily deeply
// influenced by the manner in which we generate our task systems" — by
// re-measuring the FEDCONS acceptance curve across orthogonal generator
// variations: DAG topology, task count, per-vertex WCET dispersion and DAG
// size. The headline claim (acceptance far above the Theorem-1 floor,
// degrading only at high normalized utilization) should be, and is,
// invariant across all of them; the curves shift, the shape does not.
func E21GeneratorSensitivity(cfg Config) (*Result, error) {
	const m = 8
	r := cfg.rng(21)
	grid := []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	tab := &stats.Table{
		Title:   "E21 — generator sensitivity: FEDCONS acceptance across workload ensembles (m=8)",
		Columns: []string{"ensemble", "U/m=0.3", "0.4", "0.5", "0.6", "0.7"},
	}
	res := &Result{ID: "E21", Title: "Extension: generator-sensitivity of the acceptance curve", Table: tab}

	variants := []struct {
		name   string
		mutate func(p *gen.Params)
	}{
		{"baseline (ER, n=10, |V| 20–50, e 1–100)", func(p *gen.Params) {}},
		{"fork-join DAGs", func(p *gen.Params) { p.Shape = gen.ForkJoin }},
		{"series-parallel DAGs", func(p *gen.Params) { p.Shape = gen.SeriesParallel }},
		{"layered DAGs", func(p *gen.Params) { p.Shape = gen.Layered }},
		{"dense ER (p=0.4)", func(p *gen.Params) { p.EdgeProb = 0.4 }},
		{"few tasks (n=4)", func(p *gen.Params) { p.Tasks = 4 }},
		{"many tasks (n=25)", func(p *gen.Params) { p.Tasks = 25 }},
		{"small DAGs (|V| 5–10)", func(p *gen.Params) { p.MinVerts, p.MaxVerts = 5, 10 }},
		{"large DAGs (|V| 100–200)", func(p *gen.Params) { p.MinVerts, p.MaxVerts = 100, 200 }},
		{"uniform WCETs (e 50–50)", func(p *gen.Params) { p.WCETMin, p.WCETMax = 50, 50 }},
		{"heavy-tailed WCETs (e 1–1000)", func(p *gen.Params) { p.WCETMax = 1000 }},
	}
	perPoint := cfg.SystemsPerPoint / 2
	if perPoint < 5 {
		perPoint = 5
	}
	monotoneViolations := 0
	for _, v := range variants {
		row := make([]any, 0, len(grid)+1)
		row = append(row, v.name)
		prev := 1.1
		for _, normU := range grid {
			var c stats.Counter
			for i := 0; i < perPoint; i++ {
				p := sweepParams(10, m, normU)
				v.mutate(&p)
				sys, err := gen.System(r, p)
				if err != nil {
					return nil, err
				}
				c.Add(core.Schedulable(sys, m, core.Options{}))
			}
			// Allow small sampling noise in the monotonicity check.
			if c.Ratio() > prev+0.15 {
				monotoneViolations++
			}
			prev = c.Ratio()
			row = append(row, c.Ratio())
		}
		tab.AddRow(row...)
	}
	if monotoneViolations > 0 {
		res.Notes = append(res.Notes,
			"Note: some curves rose noticeably with utilization — sampling noise at this scale, or a genuinely",
			"non-monotone ensemble; inspect the CSV before drawing conclusions.")
	}
	res.Notes = append(res.Notes,
		"Across topology, task count, DAG size and WCET dispersion, every ensemble reproduces the same",
		"qualitative curve — near-total acceptance through U/m ≈ 0.4 and graceful degradation after — which",
		"is the robustness check the paper's own caveat about generator influence calls for. Task count is",
		"the biggest mover, and in both directions: the n=10 baseline sits near the worst case (tasks heavy",
		"enough to be awkward to pack, too light to earn dedicated processors), while n=4 (mostly",
		"high-density, handled by MINPROCS) and n=25 (light, easy to pack) are both easier.")
	return res, nil
}

package baseline

import (
	"math/rand"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func lowTask(c, d, t Time) *task.DAGTask {
	return task.MustNew("l", dag.Singleton(c), d, t)
}

func parTask(k int, w, d, t Time) *task.DAGTask {
	wcets := make([]Time, k)
	for i := range wcets {
		wcets[i] = w
	}
	return task.MustNew("p", dag.Independent(wcets...), d, t)
}

func TestPartSeqRejectsHighDensity(t *testing.T) {
	// vol = 20 > D = 10: sequential execution cannot meet the deadline,
	// no matter how many processors.
	sys := task.System{parTask(4, 5, 10, 10)}
	if PartSeq(sys, 64) {
		t.Fatal("PART-SEQ accepted a high-density task")
	}
	// FEDCONS handles it with 2 processors.
	if !core.Schedulable(sys, 2, core.Options{}) {
		t.Fatal("FEDCONS must schedule the same task on 2 processors")
	}
}

func TestPartSeqAcceptsSequentialSystems(t *testing.T) {
	sys := task.System{lowTask(2, 8, 16), lowTask(3, 10, 20), lowTask(4, 12, 24)}
	if !PartSeq(sys, 2) {
		t.Fatal("light sequential system must partition")
	}
}

func TestLiFedRequiresImplicitDeadlines(t *testing.T) {
	sys := task.System{lowTask(2, 8, 16)} // constrained, not implicit
	if LiFed(sys, 4) {
		t.Fatal("LI-FED must decline non-implicit systems")
	}
}

func TestLiFedImplicitSystem(t *testing.T) {
	// High-utilization task: vol=20, len=5, T=D=10 ⇒ n = ⌈15/5⌉ = 3.
	high := parTask(4, 5, 10, 10)
	low1 := lowTask(4, 10, 10) // u = 0.4
	low2 := lowTask(5, 10, 10) // u = 0.5
	sys := task.System{high, low1, low2}
	if !LiFed(sys, 4) {
		t.Fatal("3 dedicated + 1 shared (u=0.9) must be accepted")
	}
	if LiFed(sys, 3) {
		t.Fatal("no processor left for the low tasks on m=3")
	}
}

func TestLiFedInfeasibleCriticalPath(t *testing.T) {
	sys := task.System{task.MustNew("c", dag.Chain(6, 6), 10, 10)}
	if LiFed(sys, 64) {
		t.Fatal("len > T must be rejected")
	}
}

func TestLiFedDConstrained(t *testing.T) {
	// High-density: vol=20, len=5, D=10 (T=20) ⇒ n = ⌈15/5⌉ = 3.
	high := parTask(4, 5, 10, 20)
	low := lowTask(2, 8, 16) // δ = 0.25
	sys := task.System{high, low}
	if !LiFedD(sys, 4) {
		t.Fatal("LI-FED-D must accept with 3+1 processors")
	}
	if LiFedD(sys, 3) {
		t.Fatal("LI-FED-D must reject with no shared processor left")
	}
}

func TestLiFedDRejectsArbitraryDeadline(t *testing.T) {
	sys := task.System{task.MustNew("a", dag.Singleton(1), 20, 10)}
	if LiFedD(sys, 4) {
		t.Fatal("LI-FED-D is defined for constrained deadlines only")
	}
}

func TestLiFedDWindowEqualsCriticalPath(t *testing.T) {
	// vol > D == len: needs unbounded parallelism, must be rejected.
	b := dag.NewBuilder(3)
	b.AddJob(5)
	b.AddJob(5)
	b.AddJob(1)
	b.AddEdge(0, 2)
	g := b.MustBuild() // vol=11, len=6
	sys := task.System{task.MustNew("t", g, 6, 10)}
	if LiFedD(sys, 64) {
		t.Fatal("D == len with vol > len must be rejected by the analytic bound")
	}
}

func TestNecessaryConditions(t *testing.T) {
	// U_sum > m.
	sys := task.System{lowTask(9, 10, 10), lowTask(9, 10, 10)}
	if Necessary(sys, 1) {
		t.Error("U_sum=1.8 > m=1 must fail")
	}
	if !Necessary(sys, 2) {
		t.Error("two u=0.9 tasks pass necessary conditions on m=2")
	}
	// len > D.
	bad := task.System{task.MustNew("c", dag.Chain(6, 6), 10, 100)}
	if Necessary(bad, 64) {
		t.Error("len > D must fail")
	}
}

func TestNecessaryDemandBound(t *testing.T) {
	// Paper Example 2 with n=4: U_sum = 1, len ≤ D, but demand at t=1 is 4:
	// needs m ≥ 4 by condition (iii).
	n := 4
	var sys task.System
	for i := 0; i < n; i++ {
		sys = append(sys, task.MustNew("e", dag.Singleton(1), 1, Time(n)))
	}
	for m := 1; m < n; m++ {
		if Necessary(sys, m) {
			t.Errorf("Example 2 demand bound must reject m=%d", m)
		}
	}
	if !Necessary(sys, n) {
		t.Errorf("Example 2 passes necessary conditions at m=%d", n)
	}
}

func TestNecessaryDominatesFedcons(t *testing.T) {
	// Soundness ordering: anything FEDCONS accepts must pass NECESSARY
	// (a sufficient test can never beat a necessary condition).
	r := rand.New(rand.NewSource(41))
	accepted := 0
	for trial := 0; trial < 200; trial++ {
		sys := randomSystem(r, 1+r.Intn(6))
		m := 1 + r.Intn(8)
		if core.Schedulable(sys, m, core.Options{}) {
			accepted++
			if !Necessary(sys, m) {
				t.Fatalf("trial %d: FEDCONS accepted but NECESSARY rejected", trial)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("test vacuous")
	}
}

func TestFedconsDominatesPartSeq(t *testing.T) {
	// FEDCONS phase 2 is exactly PART-SEQ's algorithm, and phase 1 only
	// removes tasks PART-SEQ cannot place at all — so PART-SEQ acceptance
	// must imply FEDCONS acceptance whenever no high-density tasks exist.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		sys := randomLowSystem(r, 1+r.Intn(8))
		m := 1 + r.Intn(6)
		if PartSeq(sys, m) && !core.Schedulable(sys, m, core.Options{}) {
			t.Fatalf("trial %d: PART-SEQ accepted a low-density system FEDCONS rejected", trial)
		}
	}
}

func randomLowSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		tt := Time(10 + r.Intn(90))
		d := Time(2 + r.Intn(int(tt)-1))
		c := Time(1 + r.Intn(int(d)))
		if c >= d {
			c = d - 1
		}
		if c < 1 {
			c = 1
		}
		sys = append(sys, lowTask(c, d, tt))
	}
	return sys
}

func randomSystem(r *rand.Rand, n int) task.System {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + r.Intn(6)
		b := dag.NewBuilder(nv)
		for v := 0; v < nv; v++ {
			b.AddJob(Time(1 + r.Intn(6)))
		}
		for u := 0; u < nv; u++ {
			for v := u + 1; v < nv; v++ {
				if r.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		d := g.LongestChain() + Time(r.Intn(int(2*g.Volume())))
		tt := d + Time(r.Intn(40))
		sys = append(sys, task.MustNew("r", g, d, tt))
	}
	return sys
}

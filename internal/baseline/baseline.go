// Package baseline implements the comparator schedulers and bounds used by
// the experiment suite (DESIGN.md E6):
//
//   - PART-SEQ: pure partitioned scheduling that ignores intra-task
//     parallelism entirely — every DAG task is collapsed to a sequential
//     sporadic task and Baruah–Fisher-partitioned. This is the pre-federated
//     state of the art the paper generalizes; it necessarily fails as soon as
//     any task has density ≥ 1, which is precisely the gap federation closes.
//   - LI-FED: the implicit-deadline federated scheduling algorithm of Li,
//     Saifullah, Agrawal, Gill & Lu (ECRTS 2014), the paper's reference [17]:
//     high-utilization tasks get n_i = ⌈(vol_i − len_i)/(T_i − len_i)⌉
//     dedicated processors; low-utilization tasks are partitioned by
//     utilization (per-processor Σu ≤ 1 suffices for implicit-deadline EDF).
//     Valid only for implicit-deadline systems.
//   - LI-FED-D: the naive constrained-deadline adaptation of LI-FED obtained
//     by substituting D_i for T_i: analytic sizing by deadline, and
//     density-based (Σδ ≤ 1) partitioning of the low-density tasks. A
//     strictly cruder phase 2 than FEDCONS's DBF*-based partition; the E6
//     experiment quantifies the gap.
//   - NECESSARY: necessary-only feasibility conditions (U_sum ≤ m,
//     len_i ≤ D_i, and the m-processor demand bound Σ DBF ≤ m·t): an upper
//     bound on what *any* scheduler — including the optimal clairvoyant
//     federated scheduler of Definition 1 — could accept.
package baseline

import (
	"sort"

	"fedsched/internal/dbf"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// PartSeq reports whether the system is schedulable by pure partitioned
// scheduling of the collapsed sequential tasks (no federation). Any task
// with vol_i > D_i is immediately unschedulable this way.
func PartSeq(sys task.System, m int) bool {
	_, err := partition.Partition(sys, m, partition.Options{})
	return err == nil
}

// LiFed reports whether the implicit-deadline system is schedulable by the
// federated algorithm of Li et al. [17]. Returns false for systems that are
// not implicit-deadline (the algorithm is not defined for them — that is the
// gap this paper fills).
func LiFed(sys task.System, m int) bool {
	if !sys.Implicit() {
		return false
	}
	return liFedGeneric(sys, m, func(tk *task.DAGTask) Time { return tk.T }, utilizationPartition)
}

// LiFedD reports whether the constrained-deadline system is schedulable by
// the naive D-for-T adaptation of Li et al.: high-density tasks sized
// analytically against their deadlines, low-density tasks partitioned by the
// sufficient density condition Σδ ≤ 1 per processor.
func LiFedD(sys task.System, m int) bool {
	if !sys.Constrained() {
		return false
	}
	return liFedGeneric(sys, m, func(tk *task.DAGTask) Time { return tk.D }, densityPartition)
}

// liFedGeneric is the shared two-phase skeleton: analytic sizing of tasks
// whose vol exceeds the window, then a bin-packing of the rest.
func liFedGeneric(sys task.System, m int, window func(*task.DAGTask) Time, pack func(task.System, int) bool) bool {
	remaining := m
	var low task.System
	for _, tk := range sys {
		w := window(tk)
		vol, l := tk.Volume(), tk.Len()
		if l > w {
			return false
		}
		if vol <= w { // low task for this classification
			low = append(low, tk)
			continue
		}
		if w == l {
			return false // needs infinite parallelism under the bound
		}
		ni := int((vol - l + (w - l) - 1) / (w - l))
		if ni < 1 {
			ni = 1
		}
		remaining -= ni
		if remaining < 0 {
			return false
		}
	}
	return pack(low, remaining)
}

// utilizationPartition first-fit packs tasks by decreasing utilization with
// the per-processor condition Σu ≤ 1 (exact for implicit-deadline EDF).
func utilizationPartition(low task.System, m int) bool {
	if len(low) == 0 {
		return true
	}
	if m <= 0 {
		return false
	}
	order := make([]int, len(low))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return low[order[a]].Utilization() > low[order[b]].Utilization()
	})
	// Exact per-bin utilization accounting: numerators over a running LCM
	// would overflow; use vol/T comparisons via cross-multiplication on
	// big-free int64 is risky too, so track with float and a tight epsilon —
	// acceptance here is a baseline heuristic, not a proof obligation.
	load := make([]float64, m)
	for _, i := range order {
		u := low[i].Utilization()
		placed := false
		for k := 0; k < m && !placed; k++ {
			if load[k]+u <= 1+1e-12 {
				load[k] += u
				placed = true
			}
		}
		if !placed {
			return false
		}
	}
	return true
}

// densityPartition first-fit packs tasks by decreasing density with the
// sufficient uniprocessor EDF condition Σδ ≤ 1.
func densityPartition(low task.System, m int) bool {
	if len(low) == 0 {
		return true
	}
	if m <= 0 {
		return false
	}
	order := make([]int, len(low))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return low[order[a]].Density() > low[order[b]].Density()
	})
	load := make([]float64, m)
	for _, i := range order {
		d := low[i].Density()
		placed := false
		for k := 0; k < m && !placed; k++ {
			if load[k]+d <= 1+1e-12 {
				load[k] += d
				placed = true
			}
		}
		if !placed {
			return false
		}
	}
	return true
}

// Necessary reports whether the system passes the necessary feasibility
// conditions on m unit-speed processors:
//
//	(i)   U_sum(τ) ≤ m,
//	(ii)  len_i ≤ D_i for every task, and
//	(iii) Σ_i DBF(vol_i, D_i, T_i; t) ≤ m·t at every absolute deadline
//	      t = k·T_i + D_i up to the horizon 2·max(T_i) + max(D_i).
//
// Condition (iii) holds because work whose release and deadline both fall in
// a window of length t can occupy at most m·t processor-ticks. A true verdict
// does NOT imply schedulability; a false verdict proves that no scheduler —
// including the optimal clairvoyant federated scheduler — can succeed, which
// is what makes Necessary the upper-bound curve in experiment E6.
func Necessary(sys task.System, m int) bool {
	if !sys.Feasible(m) {
		return false
	}
	set := dbf.AsSporadics(sys)
	var maxT, maxD Time
	for _, s := range set {
		if s.T > maxT {
			maxT = s.T
		}
		if s.D > maxD {
			maxD = s.D
		}
	}
	horizon := 2*maxT + maxD
	mm := Time(m)
	for _, s := range set {
		for t := s.D; t <= horizon; t += s.T {
			if dbf.TotalDBF(set, t) > mm*t {
				return false
			}
		}
	}
	return true
}

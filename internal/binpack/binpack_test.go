package binpack

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(num, den int64) *big.Rat { return big.NewRat(num, den) }

func TestFeasibleBasics(t *testing.T) {
	cases := []struct {
		name  string
		items []*big.Rat
		m     int
		want  bool
	}{
		{"empty", nil, 0, true},
		{"single fits", []*big.Rat{rat(1, 2)}, 1, true},
		{"single full", []*big.Rat{rat(1, 1)}, 1, true},
		{"two halves one bin", []*big.Rat{rat(1, 2), rat(1, 2)}, 1, true},
		{"over half pair", []*big.Rat{rat(51, 100), rat(51, 100)}, 1, false},
		{"over half pair two bins", []*big.Rat{rat(51, 100), rat(51, 100)}, 2, true},
		{"no bins", []*big.Rat{rat(1, 2)}, 0, false},
		{"thirds exact", []*big.Rat{rat(1, 3), rat(1, 3), rat(1, 3)}, 1, true},
	}
	for _, c := range cases {
		got, conc := Feasible(c.items, c.m, 0)
		if !conc {
			t.Errorf("%s: inconclusive", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: feasible = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFeasibleRejectsBadItems(t *testing.T) {
	if ok, _ := Feasible([]*big.Rat{rat(3, 2)}, 4, 0); ok {
		t.Error("accepted item > 1")
	}
	if ok, _ := Feasible([]*big.Rat{rat(0, 1)}, 4, 0); ok {
		t.Error("accepted zero item")
	}
}

func TestExactBeatsFFD(t *testing.T) {
	// Classic FFD-suboptimal instance: items {0.6, 0.5, 0.5, 0.4} in 2 bins.
	// FFD: [0.6, ...0.5 no, 0.4→1.0][0.5, 0.5] — actually that packs! Use
	// the known 2-bin case FFD fails: {0.51, 0.27, 0.27, 0.27, 0.34, 0.34}
	// in 2 bins of 1.0: total = 2.0 exactly; packing: [0.51+0.27+...]. Try
	// {6,5,5,4,4,4}/12 in 2 bins (total 28/12 > 2 — no). Construct directly:
	// {0.55, 0.45, 0.40, 0.35, 0.25} into 2 bins: total 2.0.
	// Exact: [0.55+0.45] [0.40+0.35+0.25]. FFD: 0.55,0.45→1.0 ✓; 0.40,0.35,
	// 0.25 → 1.0 ✓ — FFD also finds it. Known hard: {0.42,0.42,0.34,0.34,
	// 0.24,0.24} in 2: total 2.0; exact [0.42+0.34+0.24]×2. FFD: 0.42,0.42
	// →0.84; +0.34? 1.18 no → bin2 0.34; bin1 0.84+? 0.34 no; bin2 0.68;
	// 0.24: bin1 1.08 no; bin2 0.92 ✓... then last 0.24: bin1 no, bin2
	// 1.16 no → FFD fails with 2 bins; exact succeeds.
	items := []*big.Rat{rat(42, 100), rat(42, 100), rat(34, 100), rat(34, 100), rat(24, 100), rat(24, 100)}
	if ffd(items, 2) {
		t.Fatal("FFD unexpectedly packed the adversarial instance (check construction)")
	}
	ok, conc := Feasible(items, 2, 0)
	if !conc || !ok {
		t.Fatalf("exact search must pack the instance: ok=%v conclusive=%v", ok, conc)
	}
}

func TestMinBinsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		n := 1 + r.Intn(8)
		items := make([]*big.Rat, n)
		for i := range items {
			items[i] = rat(int64(1+r.Intn(99)), 100)
		}
		m, conc := MinBins(items, n, 0)
		if !conc {
			t.Fatalf("inconclusive at trial %d", trial)
		}
		want := bruteMinBins(items)
		if m != want {
			t.Fatalf("MinBins = %d, brute force = %d for %v", m, want, items)
		}
	}
}

// bruteMinBins enumerates all assignments (n ≤ 8).
func bruteMinBins(items []*big.Rat) int {
	n := len(items)
	best := n
	assign := make([]int, n)
	var rec func(i, used int)
	rec = func(i, used int) {
		if used >= best {
			return
		}
		if i == n {
			best = used
			return
		}
		loads := make([]*big.Rat, used)
		for b := range loads {
			loads[b] = new(big.Rat)
		}
		for j := 0; j < i; j++ {
			loads[assign[j]].Add(loads[assign[j]], items[j])
		}
		for b := 0; b <= used && b < n; b++ {
			nu := used
			if b == used {
				nu++
			} else if new(big.Rat).Add(loads[b], items[i]).Cmp(one) > 0 {
				continue
			}
			assign[i] = b
			rec(i+1, nu)
		}
	}
	rec(0, 0)
	return best
}

func TestSymmetryPruningStillExact(t *testing.T) {
	// Many equal items: heavy symmetry; exact answer is ceil(n·u / 1) with
	// u = 1/3: 3 per bin.
	items := make([]*big.Rat, 9)
	for i := range items {
		items[i] = rat(1, 3)
	}
	m, conc := MinBins(items, 9, 0)
	if !conc || m != 3 {
		t.Fatalf("MinBins = %d,%v, want 3,true", m, conc)
	}
}

func BenchmarkFeasibleHard(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	items := make([]*big.Rat, 20)
	for i := range items {
		items[i] = rat(int64(20+r.Intn(60)), 100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Feasible(items, 9, 0)
	}
}

func TestFeasibleMonotoneInBins(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		items := make([]*big.Rat, n)
		for i := range items {
			items[i] = rat(int64(1+r.Intn(99)), 100)
		}
		prev := false
		for m := 0; m <= n+1; m++ {
			ok, conc := Feasible(items, m, 0)
			if !conc {
				t.Fatal("inconclusive")
			}
			if prev && !ok {
				t.Fatalf("feasible at m=%d but not m=%d", m-1, m)
			}
			prev = ok
		}
		// n bins always suffice (each item ≤ 1).
		if ok, _ := Feasible(items, n, 0); !ok {
			t.Fatal("n bins must always suffice")
		}
	}
}

func TestFeasibleSupersetMonotone(t *testing.T) {
	// Removing an item never breaks feasibility.
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(8)
		items := make([]*big.Rat, n)
		for i := range items {
			items[i] = rat(int64(1+r.Intn(99)), 100)
		}
		m := 1 + r.Intn(n)
		full, conc := Feasible(items, m, 0)
		if !conc || !full {
			continue
		}
		drop := r.Intn(n)
		sub := append(append([]*big.Rat(nil), items[:drop]...), items[drop+1:]...)
		ok, conc := Feasible(sub, m, 0)
		if !conc || !ok {
			t.Fatalf("subset infeasible where superset feasible (m=%d)", m)
		}
	}
}

// Package binpack decides exact feasibility of packing task utilizations
// into m unit-capacity bins — optimal partitioning of implicit-deadline
// sequential tasks (per-processor EDF needs exactly Σu ≤ 1 when D = T).
//
// Section III of the paper observes that for implicit deadlines the
// partitioning step can be solved to speedup (1 + ε) in polynomial time via
// the Hochbaum–Shmoys PTAS [13], making the high-utilization tasks the
// bottleneck; for constrained deadlines the partitioning step (Lemma 2's
// 3 − 1/m) is the bottleneck instead. At the scale of the experiment suite
// an *exact* branch-and-bound packer is both simpler and stronger than a
// PTAS — it realizes the ε → 0 endpoint of the paper's remark — so E20 uses
// it as the optimal-partitioning reference. (DESIGN.md records this
// substitution.)
//
// Capacities compare in exact rational arithmetic; there is no floating-
// point feasibility cliff.
package binpack

import (
	"math/big"
	"sort"
)

// DefaultNodeBudget bounds the branch-and-bound search.
const DefaultNodeBudget = 5_000_000

// one is the shared read-only rational 1.
var one = big.NewRat(1, 1)

// Feasible reports whether the items (each in (0, 1]) can be partitioned
// into at most m bins with each bin's sum ≤ 1. conclusive is false when the
// node budget was exhausted first (feasible is then false but unproven).
//
// The search uses first-fit-decreasing as a fast accept, total-sum and
// item-count lower bounds, and load-symmetry pruning, which together make it
// exact and fast for the n ≤ ~40 item counts the experiments use.
func Feasible(items []*big.Rat, m int, nodeBudget int) (feasible, conclusive bool) {
	if m < 0 {
		return false, true
	}
	if len(items) == 0 {
		return true, true
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	sorted := make([]*big.Rat, len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cmp(sorted[j]) > 0 })

	// Sanity: every item must fit a bin at all.
	total := new(big.Rat)
	for _, it := range sorted {
		if it.Sign() <= 0 || it.Cmp(one) > 0 {
			return false, true
		}
		total.Add(total, it)
	}
	if m == 0 {
		return false, true
	}
	// Volume lower bound.
	if total.Cmp(new(big.Rat).SetInt64(int64(m))) > 0 {
		return false, true
	}
	// Fast accept: first-fit decreasing.
	if ffd(sorted, m) {
		return true, true
	}
	s := &packSearch{m: m, items: sorted, budget: nodeBudget}
	bins := make([]*big.Rat, 0, m)
	ok := s.place(0, bins)
	return ok, s.budget > 0 || ok
}

// ffd runs first-fit decreasing (items pre-sorted descending).
func ffd(items []*big.Rat, m int) bool {
	loads := make([]*big.Rat, 0, m)
	for _, it := range items {
		placed := false
		for _, l := range loads {
			if new(big.Rat).Add(l, it).Cmp(one) <= 0 {
				l.Add(l, it)
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if len(loads) == m {
			return false
		}
		loads = append(loads, new(big.Rat).Set(it))
	}
	return true
}

type packSearch struct {
	m      int
	items  []*big.Rat
	budget int
}

// place tries to put item i given current bin loads; exact with symmetry
// pruning (never try two bins with equal load for the same item).
func (s *packSearch) place(i int, bins []*big.Rat) bool {
	if i == len(s.items) {
		return true
	}
	if s.budget <= 0 {
		return false
	}
	s.budget--
	it := s.items[i]
	seen := make(map[string]bool, len(bins))
	for _, b := range bins {
		key := b.RatString()
		if seen[key] {
			continue // symmetric to a load already tried
		}
		seen[key] = true
		nl := new(big.Rat).Add(b, it)
		if nl.Cmp(one) > 0 {
			continue
		}
		old := new(big.Rat).Set(b)
		b.Set(nl)
		if s.place(i+1, bins) {
			return true
		}
		b.Set(old)
	}
	// Open a new bin (items are sorted, so opening one empty bin suffices —
	// all empty bins are symmetric).
	if len(bins) < s.m {
		bins = append(bins, new(big.Rat).Set(it))
		if s.place(i+1, bins) {
			return true
		}
		bins = bins[:len(bins)-1]
	}
	return false
}

// MinBins returns the minimum number of unit bins needed, searching m = 1…
// cap. conclusive is false if any search was budget-limited.
func MinBins(items []*big.Rat, cap int, nodeBudget int) (m int, conclusive bool) {
	for m = 1; m <= cap; m++ {
		ok, conc := Feasible(items, m, nodeBudget)
		if !conc {
			return 0, false
		}
		if ok {
			return m, true
		}
	}
	return 0, true
}

// Package gen generates random sporadic DAG task systems for the
// schedulability experiments (the paper evaluates on "randomly-generated
// task systems"; DESIGN.md §3 records the substitution of the real-time
// community's standard generator).
//
// Utilizations come from UUniFast (Bini & Buttazzo), DAG structure from the
// layered Erdős–Rényi method (edges i→j, i<j, with probability p), fork-join
// or recursive series-parallel expansion. Periods are derived from the target
// utilization (T = vol/u, floored at len so every task is feasible), and
// constrained deadlines are drawn as D = len + β·(T − len) with β uniform in
// a configurable range — β small yields tight (density-heavy) systems.
//
// All randomness flows through the caller's *rand.Rand; generation is fully
// reproducible from a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// Time is re-exported for convenience.
type Time = task.Time

// UUniFast draws n utilizations summing to total, uniformly over the simplex
// (Bini & Buttazzo's UUniFast). Individual values may exceed 1 when
// total > 1 — exactly how high-utilization (and hence high-density) DAG
// tasks arise in federated-scheduling experiments.
func UUniFast(r *rand.Rand, n int, total float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-1-i))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// UUniFastDiscard repeats UUniFast until every utilization is ≤ cap,
// returning nil after maxTries failures (e.g. total > n·cap is impossible).
func UUniFastDiscard(r *rand.Rand, n int, total, cap float64, maxTries int) []float64 {
	if total > float64(n)*cap {
		return nil
	}
	for try := 0; try < maxTries; try++ {
		u := UUniFast(r, n, total)
		ok := true
		for _, v := range u {
			if v > cap {
				ok = false
				break
			}
		}
		if ok {
			return u
		}
	}
	return nil
}

// Shape selects the random DAG topology.
type Shape int

const (
	// ErdosRenyi: edges i→j (i<j) independently with probability EdgeProb.
	ErdosRenyi Shape = iota
	// ForkJoin: a source, a random fan of parallel branches, a sink.
	ForkJoin
	// SeriesParallel: recursive series/parallel composition.
	SeriesParallel
	// Layered: vertices arranged in random layers with edges only between
	// adjacent layers (the Qamhieh–Midonnet style generator).
	Layered
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ErdosRenyi:
		return "erdos-renyi"
	case ForkJoin:
		return "fork-join"
	case SeriesParallel:
		return "series-parallel"
	case Layered:
		return "layered"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Params configures system generation. See DefaultParams for a baseline.
type Params struct {
	// Tasks is the number of tasks n.
	Tasks int
	// TotalUtilization is U_sum(τ), split across tasks by UUniFast.
	TotalUtilization float64
	// Shape, MinVerts, MaxVerts, EdgeProb control the DAG structure.
	Shape    Shape
	MinVerts int
	MaxVerts int
	EdgeProb float64
	// WCETMin, WCETMax bound per-vertex WCETs (inclusive).
	WCETMin Time
	WCETMax Time
	// BetaMin, BetaMax bound the deadline tightness: D = len + β·(T − len)
	// with β uniform in [BetaMin, BetaMax]. With BetaMax ≤ 1 every deadline
	// is constrained (D ≤ T; β = 1 means implicit whenever T ≥ len); a
	// BetaMax in (1, 3] generates arbitrary-deadline tasks (D may exceed T)
	// for the E13 extension experiment.
	BetaMin float64
	BetaMax float64
	// TypeProb, when positive, marks each generated vertex type-b (index 1)
	// with this probability, producing workloads for the typed heterogeneous
	// model (-policy=typed). Zero leaves generation untyped and draws nothing
	// from the random stream, so every existing seeded corpus is
	// bit-identical to the pre-typed generator.
	TypeProb float64
}

// DefaultParams is the baseline configuration used across experiments:
// 10 tasks, moderately parallel 20–50-vertex Erdős–Rényi DAGs, deadlines
// uniformly constrained.
func DefaultParams(tasks int, totalU float64) Params {
	return Params{
		Tasks:            tasks,
		TotalUtilization: totalU,
		Shape:            ErdosRenyi,
		MinVerts:         20,
		MaxVerts:         50,
		EdgeProb:         0.1,
		WCETMin:          1,
		WCETMax:          100,
		BetaMin:          0.25,
		BetaMax:          1.0,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Tasks < 1:
		return fmt.Errorf("gen: Tasks must be ≥ 1, got %d", p.Tasks)
	case p.TotalUtilization <= 0:
		return fmt.Errorf("gen: TotalUtilization must be positive, got %v", p.TotalUtilization)
	case p.MinVerts < 1 || p.MaxVerts < p.MinVerts:
		return fmt.Errorf("gen: vertex range [%d,%d] invalid", p.MinVerts, p.MaxVerts)
	case p.EdgeProb < 0 || p.EdgeProb > 1:
		return fmt.Errorf("gen: EdgeProb %v outside [0,1]", p.EdgeProb)
	case p.WCETMin < 1 || p.WCETMax < p.WCETMin:
		return fmt.Errorf("gen: WCET range [%d,%d] invalid", p.WCETMin, p.WCETMax)
	case p.BetaMin <= 0 || p.BetaMax < p.BetaMin || p.BetaMax > 3:
		return fmt.Errorf("gen: beta range [%v,%v] invalid", p.BetaMin, p.BetaMax)
	case p.TypeProb < 0 || p.TypeProb > 1:
		return fmt.Errorf("gen: TypeProb %v outside [0,1]", p.TypeProb)
	}
	return nil
}

// System generates one random task system under p. Every generated task is
// individually feasible (len_i ≤ D_i ≤ T_i) and the system's USum is close
// to (never above by more than rounding) TotalUtilization.
func System(r *rand.Rand, p Params) (task.System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	utils := UUniFast(r, p.Tasks, p.TotalUtilization)
	sys := make(task.System, 0, p.Tasks)
	for i, u := range utils {
		g := Graph(r, p)
		tk, err := TaskFor(r, g, u, p)
		if err != nil {
			return nil, fmt.Errorf("gen: task %d: %w", i, err)
		}
		tk.Name = fmt.Sprintf("tau%d", i+1)
		sys = append(sys, tk)
	}
	return sys, nil
}

// Graph generates one random DAG under p.
func Graph(r *rand.Rand, p Params) *dag.DAG {
	n := p.MinVerts
	if p.MaxVerts > p.MinVerts {
		n += r.Intn(p.MaxVerts - p.MinVerts + 1)
	}
	var g *dag.DAG
	switch p.Shape {
	case ForkJoin:
		g = forkJoin(r, n, p)
	case SeriesParallel:
		g = seriesParallel(r, n, p)
	case Layered:
		g = layered(r, n, p)
	default:
		g = erdosRenyi(r, n, p)
	}
	if p.TypeProb > 0 {
		g = retype(r, g, p.TypeProb)
	}
	return g
}

// retype rebuilds g with each vertex independently marked type-b with
// probability prob. Applied as a post-pass so the structural draws above stay
// identical to the untyped generator for the same seed.
func retype(r *rand.Rand, g *dag.DAG, prob float64) *dag.DAG {
	b := dag.NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		t := 0
		if r.Float64() < prob {
			t = 1
		}
		b.AddTypedVertex(g.Vertex(v).Name, g.WCET(v), t)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// TaskFor wraps a DAG into a sporadic DAG task with utilization ≈ u:
// T = max(len, round(vol/u)) and D = len + β·(T − len). The len floor keeps
// the task feasible; it caps the achievable per-task utilization at
// vol/len (a task cannot demand more than its maximum parallel speed).
func TaskFor(r *rand.Rand, g *dag.DAG, u float64, p Params) (*task.DAGTask, error) {
	if u <= 0 {
		return nil, fmt.Errorf("utilization %v must be positive", u)
	}
	vol := g.Volume()
	l := g.LongestChain()
	t := Time(math.Round(float64(vol) / u))
	if t < l {
		t = l
	}
	if t < 1 {
		t = 1
	}
	beta := p.BetaMin + r.Float64()*(p.BetaMax-p.BetaMin)
	d := l + Time(math.Round(beta*float64(t-l)))
	if d < 1 {
		d = 1
	}
	// With BetaMax ≤ 1 the system is guaranteed constrained; clamp away any
	// rounding overshoot. BetaMax > 1 deliberately permits D > T.
	if p.BetaMax <= 1 && d > t {
		d = t
	}
	return task.New("", g, d, t)
}

func wcet(r *rand.Rand, p Params) Time {
	return p.WCETMin + Time(r.Int63n(int64(p.WCETMax-p.WCETMin+1)))
}

func erdosRenyi(r *rand.Rand, n int, p Params) *dag.DAG {
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(wcet(r, p))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p.EdgeProb {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

func forkJoin(r *rand.Rand, n int, p Params) *dag.DAG {
	if n < 3 {
		n = 3
	}
	fan := n - 2
	b := dag.NewBuilder(n)
	src := b.AddVertex("fork", wcet(r, p))
	for i := 0; i < fan; i++ {
		v := b.AddJob(wcet(r, p))
		b.AddEdge(src, v)
		b.AddEdge(v, fan+1)
	}
	b.AddVertex("join", wcet(r, p))
	return b.MustBuild()
}

// seriesParallel builds a two-terminal series-parallel graph with about n
// vertices by recursive composition, then attaches WCETs.
func seriesParallel(r *rand.Rand, n int, p Params) *dag.DAG {
	b := dag.NewBuilder(n)
	var build func(budget int) (entry, exit int)
	build = func(budget int) (int, int) {
		if budget <= 1 {
			v := b.AddJob(wcet(r, p))
			return v, v
		}
		left := 1 + r.Intn(budget-1)
		right := budget - left
		if r.Intn(2) == 0 { // series
			e1, x1 := build(left)
			e2, x2 := build(right)
			b.AddEdge(x1, e2)
			return e1, x2
		}
		// parallel: shared entry/exit wrappers around two branches
		e1, x1 := build(left)
		e2, x2 := build(right)
		entry := b.AddJob(wcet(r, p))
		exit := b.AddJob(wcet(r, p))
		b.AddEdge(entry, e1)
		b.AddEdge(entry, e2)
		b.AddEdge(x1, exit)
		b.AddEdge(x2, exit)
		return entry, exit
	}
	build(n)
	return b.MustBuild()
}

// layered distributes n vertices over random layers and adds edges between
// adjacent layers with probability max(EdgeProb, enough to keep each
// non-source vertex connected).
func layered(r *rand.Rand, n int, p Params) *dag.DAG {
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(wcet(r, p))
	}
	layers := 1 + r.Intn(maxInt(1, n/2))
	layerOf := make([]int, n)
	for v := range layerOf {
		layerOf[v] = r.Intn(layers)
	}
	// Bucket vertices per layer (empty layers simply vanish).
	buckets := make([][]int, layers)
	for v, l := range layerOf {
		buckets[l] = append(buckets[l], v)
	}
	prev := -1
	for l := 0; l < layers; l++ {
		if len(buckets[l]) == 0 {
			continue
		}
		if prev >= 0 {
			for _, v := range buckets[l] {
				connected := false
				for _, u := range buckets[prev] {
					if r.Float64() < p.EdgeProb {
						b.AddEdge(u, v)
						connected = true
					}
				}
				if !connected { // keep the layering meaningful
					b.AddEdge(buckets[prev][r.Intn(len(buckets[prev]))], v)
				}
			}
		}
		prev = l
	}
	return b.MustBuild()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestUUniFastSumsToTotal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(20)
		total := r.Float64() * 16
		if total == 0 {
			total = 0.5
		}
		u := UUniFast(r, n, total)
		if len(u) != n {
			t.Fatalf("len = %d, want %d", len(u), n)
		}
		sum := 0.0
		for _, v := range u {
			if v < 0 {
				t.Fatalf("negative utilization %v", v)
			}
			sum += v
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("sum = %v, want %v", sum, total)
		}
	}
}

func TestUUniFastZeroTasks(t *testing.T) {
	if UUniFast(rand.New(rand.NewSource(1)), 0, 1) != nil {
		t.Error("n=0 must return nil")
	}
}

func TestUUniFastDiscardRespectsCap(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	u := UUniFastDiscard(r, 8, 4.0, 1.0, 1000)
	if u == nil {
		t.Fatal("feasible cap produced nil")
	}
	for _, v := range u {
		if v > 1.0+1e-12 {
			t.Fatalf("utilization %v exceeds cap", v)
		}
	}
	if UUniFastDiscard(r, 2, 3.0, 1.0, 10) != nil {
		t.Error("impossible cap (3 > 2·1) must return nil")
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(10, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.Tasks = 0 },
		func(p *Params) { p.TotalUtilization = 0 },
		func(p *Params) { p.MinVerts = 0 },
		func(p *Params) { p.MaxVerts = p.MinVerts - 1 },
		func(p *Params) { p.EdgeProb = 1.5 },
		func(p *Params) { p.WCETMin = 0 },
		func(p *Params) { p.WCETMax = 0 },
		func(p *Params) { p.BetaMin = 0 },
		func(p *Params) { p.BetaMax = 3.5 },
	}
	for i, mutate := range cases {
		p := DefaultParams(10, 4)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSystemGeneratesFeasibleConstrainedTasks(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		p := DefaultParams(1+r.Intn(15), 0.5+r.Float64()*8)
		sys, err := System(r, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(sys) != p.Tasks {
			t.Fatalf("generated %d tasks, want %d", len(sys), p.Tasks)
		}
		if !sys.Constrained() {
			t.Fatal("generated system not constrained-deadline")
		}
		for _, tk := range sys {
			if tk.Len() > tk.D {
				t.Fatalf("infeasible task generated: %s", tk)
			}
			if tk.G.N() < p.MinVerts || tk.G.N() > p.MaxVerts {
				t.Fatalf("vertex count %d outside [%d,%d]", tk.G.N(), p.MinVerts, p.MaxVerts)
			}
		}
		// USum should approximate the target (the len floor may shave it).
		if sys.USum() > p.TotalUtilization*1.05+0.1 {
			t.Fatalf("USum %v far above target %v", sys.USum(), p.TotalUtilization)
		}
	}
}

func TestSystemDeterministicPerSeed(t *testing.T) {
	p := DefaultParams(5, 3)
	a, err := System(rand.New(rand.NewSource(7)), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := System(rand.New(rand.NewSource(7)), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].D != b[i].D || a[i].T != b[i].T || !a[i].G.Equal(b[i].G) {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestShapes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, shape := range []Shape{ErdosRenyi, ForkJoin, SeriesParallel} {
		p := DefaultParams(1, 1)
		p.Shape = shape
		p.MinVerts, p.MaxVerts = 10, 30
		for trial := 0; trial < 20; trial++ {
			g := Graph(r, p)
			if g.N() == 0 {
				t.Fatalf("%v: empty graph", shape)
			}
			if g.LongestChain() > g.Volume() {
				t.Fatalf("%v: len > vol", shape)
			}
			switch shape {
			case ForkJoin:
				if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
					t.Fatalf("fork-join must have single source and sink")
				}
				if g.Depth() != 3 {
					t.Fatalf("fork-join depth = %d, want 3", g.Depth())
				}
			case SeriesParallel:
				if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
					t.Fatalf("series-parallel must be two-terminal, got %d sources %d sinks",
						len(g.Sources()), len(g.Sinks()))
				}
			}
		}
	}
}

func TestBetaControlsDeadlineTightness(t *testing.T) {
	// β near 0 ⇒ D near len; β = 1 ⇒ D = T (implicit).
	r := rand.New(rand.NewSource(6))
	tight := DefaultParams(10, 2)
	tight.BetaMin, tight.BetaMax = 0.01, 0.05
	sysT, err := System(r, tight)
	if err != nil {
		t.Fatal(err)
	}
	loose := DefaultParams(10, 2)
	loose.BetaMin, loose.BetaMax = 1.0, 1.0
	sysL, err := System(r, loose)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range sysL {
		if tk.D != tk.T {
			t.Fatalf("β=1 must give implicit deadlines, got D=%d T=%d", tk.D, tk.T)
		}
	}
	// Tight systems have strictly higher density sums for the same total U.
	if sysT.DensitySum() <= sysL.DensitySum() {
		t.Errorf("tight density %v not above loose %v", sysT.DensitySum(), sysL.DensitySum())
	}
}

func TestHighUtilizationYieldsHighDensityTasks(t *testing.T) {
	// With total utilization well above the task count, some tasks must be
	// high-density (u > 1 ⇒ δ > 1).
	r := rand.New(rand.NewSource(8))
	p := DefaultParams(4, 12)
	found := false
	for trial := 0; trial < 10 && !found; trial++ {
		sys, err := System(r, p)
		if err != nil {
			t.Fatal(err)
		}
		high, _ := sys.SplitByDensity()
		found = len(high) > 0
	}
	if !found {
		t.Fatal("U_sum=12 across 4 tasks never produced a high-density task")
	}
}

func TestTaskForUtilizationAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p := DefaultParams(1, 1)
	for trial := 0; trial < 100; trial++ {
		g := Graph(r, p)
		target := 0.05 + r.Float64()*0.9
		tk, err := TaskFor(r, g, target, p)
		if err != nil {
			t.Fatal(err)
		}
		got := tk.Utilization()
		// T rounding distorts u by at most one part in T.
		if math.Abs(got-target)/target > 0.02 && math.Abs(got-target) > 0.02 {
			t.Fatalf("utilization %v too far from target %v (vol=%d T=%d)",
				got, target, tk.Volume(), tk.T)
		}
	}
}

func TestTaskForRejectsNonPositiveU(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	p := DefaultParams(1, 1)
	if _, err := TaskFor(r, Graph(r, p), 0, p); err == nil {
		t.Fatal("accepted u=0")
	}
}

func TestLayeredShape(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	p := DefaultParams(1, 1)
	p.Shape = Layered
	p.MinVerts, p.MaxVerts = 8, 40
	for trial := 0; trial < 40; trial++ {
		g := Graph(r, p)
		if g.N() < 8 || g.N() > 40 {
			t.Fatalf("vertex count %d out of range", g.N())
		}
		// Layered structure: every non-source vertex has at least one
		// predecessor (by construction), unless it sits in the first
		// non-empty layer.
		levels := g.Levels()
		if len(levels) == 0 {
			t.Fatal("no levels")
		}
		for _, lv := range levels[1:] {
			for _, v := range lv {
				if g.InDegree(v) == 0 {
					t.Fatalf("vertex %d beyond layer 0 has no predecessor", v)
				}
			}
		}
	}
}

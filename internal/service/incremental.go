package service

import (
	"errors"
	"fmt"

	"fedsched/internal/core"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// Schedule runs FEDCONS(τ, m) with Phase-1 MINPROCS results drawn from the
// memo cache. It is a drop-in replacement for core.Schedule: for any system,
// platform and options it returns an identical allocation (same processor
// numbering, same templates) or an identical *core.FailureError — the memo
// only removes redundant list-scheduling work, never changes the answer.
// The differential test in incremental_test.go pins this equivalence.
func (c *AnalysisCache) Schedule(sys task.System, m int, opt core.Options) (*core.Allocation, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("fedcons: m must be ≥ 1, got %d", m)
	}

	alloc := &core.Allocation{M: m}
	nextProc := 0
	mr := m

	// Phase 1: size and place each high-density task (paper Fig. 2 lines
	// 2–6), replaying μ* from the cache. μ* ≤ m_r reproduces the bounded
	// scan: the scan visits μ = ⌈δ⌉, ⌈δ⌉+1, … in an order independent of
	// m_r, so the bounded result is μ* exactly when μ* ≤ m_r and FAILURE
	// otherwise.
	var low task.System
	for i, tk := range sys {
		if !tk.HighDensity() {
			low = append(low, tk)
			alloc.LowIndices = append(alloc.LowIndices, i)
			continue
		}
		res := c.minprocs(tk, opt)
		if !res.feasible || res.mu > mr {
			return nil, &core.FailureError{Phase: core.PhaseHighDensity, TaskIndex: i, TaskName: tk.Name, Remaining: mr}
		}
		procs := make([]int, res.mu)
		for p := range procs {
			procs[p] = nextProc
			nextProc++
		}
		alloc.High = append(alloc.High, core.HighAssignment{TaskIndex: i, Procs: procs, Template: res.tmpl})
		mr -= res.mu
	}

	// Phase 2: partition the low-density tasks (Fig. 2 line 7). This is the
	// cheap phase; it is recomputed in full on every admission because the
	// first-fit packing of any task depends on every other low task.
	for p := 0; p < mr; p++ {
		alloc.SharedProcs = append(alloc.SharedProcs, nextProc+p)
	}
	res, err := partition.Partition(low, mr, opt.Partition)
	if err != nil {
		fe := &core.FailureError{Phase: core.PhaseLowDensity, Remaining: mr, Err: err}
		var pf *partition.FailureError
		if errors.As(err, &pf) {
			fe.TaskIndex = alloc.LowIndices[pf.TaskIndex]
			fe.TaskName = pf.TaskName
		}
		return nil, fe
	}
	alloc.Low = res
	return alloc, nil
}

package service

import (
	"errors"
	"fmt"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// Schedule runs the configured admission policy with strict-FEDCONS analyses
// drawn from the memo cache: the strict path ("" or "fedcons") goes straight
// to scheduleFedcons; any other policy is dispatched through the core
// registry with the cache-backed scheduler as its fallback, so a policy's
// strict retry also benefits from the memo.
func (c *AnalysisCache) Schedule(sys task.System, m int, opt core.Options) (*core.Allocation, error) {
	if opt.Policy != "" && opt.Policy != core.PolicyFedcons {
		p, err := core.LookupPolicy(opt.Policy)
		if err != nil {
			return nil, err
		}
		return p.Schedule(sys, m, opt, c.scheduleFedcons)
	}
	return c.scheduleFedcons(sys, m, opt)
}

// scheduleFedcons runs FEDCONS(τ, m) with Phase-1 MINPROCS results drawn from
// the memo cache. It is a drop-in replacement for core.Schedule: for any system,
// platform and options it returns an identical allocation (same processor
// numbering, same templates) or an identical *core.FailureError — the memo
// only removes redundant list-scheduling work, never changes the answer.
// The differential test in incremental_test.go pins this equivalence.
//
// When opt.Trace is set the same span taxonomy as core.Schedule is emitted
// (fedcons → phase1 → per-task spans → phase2 → place/fit spans), with one
// addition: each high-density task span carries a "cache" attr ("hit" or
// "miss"); hits replay μ* without re-running LS, so a hit span has no "mu"
// candidate children.
//
// When opt.Par > 1 the Phase-1 analyses of cache-missing high-density tasks
// run on a worker pool (prewarmPhase1) before the merge loop; allocation,
// verdict and hit/miss accounting are identical to the sequential path (the
// batch differential test pins this), with one trace caveat: a miss analyzed
// in the pool records no per-μ "mu" children, because the scan ran off-trace.
func (c *AnalysisCache) scheduleFedcons(sys task.System, m int, opt core.Options) (*core.Allocation, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("fedcons: m must be ≥ 1, got %d", m)
	}
	if opt.Par < 0 {
		return nil, fmt.Errorf("fedcons: par must be ≥ 0, got %d", opt.Par)
	}
	var pre map[*task.DAGTask]prewarmed
	if opt.Par > 1 {
		pre = c.prewarmPhase1(sys, opt, opt.Par)
	}

	alloc := &core.Allocation{M: m}
	nextProc := 0
	mr := m

	root := opt.Trace.Start("fedcons")
	if root != nil {
		root.Int("m", int64(m)).Int("tasks", int64(len(sys))).
			Str("minprocs", opt.Minprocs.String())
	}

	// Phase 1: size and place each high-density task (paper Fig. 2 lines
	// 2–6), replaying μ* from the cache. μ* ≤ m_r reproduces the bounded
	// scan: the scan visits μ = ⌈δ⌉, ⌈δ⌉+1, … in an order independent of
	// m_r, so the bounded result is μ* exactly when μ* ≤ m_r and FAILURE
	// otherwise.
	phase1 := root.Child("phase1")
	var low task.System
	for i, tk := range sys {
		var tsp *obs.Span
		if phase1 != nil {
			vol, l, d := tk.Volume(), tk.Len(), taskWindow(tk)
			tsp = phase1.Child("task").Str("task", tk.Name).Int("index", int64(i)).
				Int("vol", int64(vol)).Int("len", int64(l)).Int("window", int64(d)).
				Float("density", float64(vol)/float64(d)).Bool("high", tk.HighDensity())
		}
		if !tk.HighDensity() {
			tsp.Finish()
			low = append(low, tk)
			alloc.LowIndices = append(alloc.LowIndices, i)
			continue
		}
		res, hit := phase1Result{}, false
		if p, warmed := pre[tk]; warmed {
			res, hit = p.res, p.hit
		} else {
			res, hit = c.minprocsTraced(tk, opt, tsp)
		}
		if tsp != nil {
			if hit {
				tsp.Str("cache", "hit")
			} else {
				tsp.Str("cache", "miss")
			}
		}
		if !res.feasible || res.mu > mr {
			tsp.Bool("failed", true).Finish()
			phase1.Finish()
			root.Bool("schedulable", false).Str("phase", core.PhaseHighDensity.String()).Finish()
			return nil, &core.FailureError{Phase: core.PhaseHighDensity, TaskIndex: i, TaskName: tk.Name, Remaining: mr}
		}
		tsp.Int("mu", int64(res.mu)).Finish()
		procs := make([]int, res.mu)
		for p := range procs {
			procs[p] = nextProc
			nextProc++
		}
		alloc.High = append(alloc.High, core.HighAssignment{TaskIndex: i, Procs: procs, Template: res.tmpl})
		mr -= res.mu
	}
	phase1.Int("dedicated", int64(nextProc)).Int("remaining", int64(mr)).Finish()

	// Phase 2: partition the low-density tasks (Fig. 2 line 7). This is the
	// cheap phase; it is recomputed in full on every admission because the
	// first-fit packing of any task depends on every other low task.
	for p := 0; p < mr; p++ {
		alloc.SharedProcs = append(alloc.SharedProcs, nextProc+p)
	}
	phase2 := root.Child("phase2")
	if phase2 != nil {
		phase2.Int("procs", int64(mr)).Int("low", int64(len(low))).
			Str("heuristic", opt.Partition.Heuristic.String()).
			Str("test", opt.Partition.Test.String())
	}
	popt := opt.Partition
	popt.Trace = phase2
	res, err := partition.Partition(low, mr, popt)
	if err != nil {
		fe := &core.FailureError{Phase: core.PhaseLowDensity, Remaining: mr, Err: err}
		var pf *partition.FailureError
		if errors.As(err, &pf) {
			fe.TaskIndex = alloc.LowIndices[pf.TaskIndex]
			fe.TaskName = pf.TaskName
		}
		phase2.Bool("failed", true).Finish()
		root.Bool("schedulable", false).Str("phase", core.PhaseLowDensity.String()).Finish()
		return nil, fe
	}
	phase2.Finish()
	root.Bool("schedulable", true).Finish()
	alloc.Low = res
	return alloc, nil
}

// taskWindow mirrors core's min(D, T) dag-job scheduling window.
func taskWindow(tk *task.DAGTask) task.Time {
	if tk.T < tk.D {
		return tk.T
	}
	return tk.D
}

package service

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"fedsched/internal/task"
)

// restartServer closes svc and starts a fresh one on the same Config — the
// in-process equivalent of kill -9 + restart, since Close takes no snapshot
// and recovery always goes through snapshot+WAL replay.
func restartServer(t *testing.T, svc *Server, cfg Config) (*Server, []byte) {
	t.Helper()
	svc.Close()
	again, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(again.Close)
	_, alloc := allocationBytes(t, again)
	return again, alloc
}

// allocationBytes renders the server's /v1/allocation body via the handler,
// the same bytes an HTTP client would read.
func allocationBytes(t *testing.T, svc *Server) (int, []byte) {
	t.Helper()
	sys, alloc := svc.Snapshot()
	res := verdictResult(http.StatusOK, NewVerdict(sys, svc.cfg.M, alloc, nil))
	return res.status, res.body
}

// TestRecoveryByteIdenticalAllocation is the core durability contract: after
// admits (single and batch) and a removal, a restart from the WAL directory
// reproduces the exact allocation bytes the pre-crash server served, and the
// Phase-1 memo cache comes back warm from re-analysis of the logged system.
func TestRecoveryByteIdenticalAllocation(t *testing.T) {
	cfg := Config{M: 12, WALDir: t.TempDir()}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tk := range []string{"ex1", "ex2"} {
		if status, body := svc.Admit(ctx, example1Task(tk)); status != http.StatusOK {
			t.Fatalf("admit %s = %d: %s", tk, status, body)
		}
	}
	// Two high-density tasks with identical DAG content: the Phase-1 memo is
	// what recovery must rebuild.
	for _, tk := range []string{"tri1", "tri2"} {
		if status, _ := svc.Admit(ctx, trijob(tk)); status != http.StatusOK {
			t.Fatalf("admit %s failed", tk)
		}
	}
	if status, body := svc.AdmitBatch(ctx, []*task.DAGTask{example1Task("b1"), example1Task("b2")}); status != http.StatusOK {
		t.Fatalf("batch = %d: %s", status, body)
	}
	if status, _ := svc.Remove(ctx, "ex2"); status != http.StatusOK {
		t.Fatal("remove failed")
	}
	_, before := allocationBytes(t, svc)

	again, after := restartServer(t, svc, cfg)
	if !bytes.Equal(before, after) {
		t.Errorf("allocation changed across restart:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
	// Recovery re-analyzed [ex1, tri1, tri2, b1, b2]: tri1 and tri2 share DAG
	// content, so the replay itself must have hit the freshly warmed memo
	// (only high-density tasks run Phase-1 MINPROCS and touch it).
	hits, _ := again.Cache().Stats()
	if hits < 1 {
		t.Errorf("cache hits after recovery = %d; replay did not prewarm the memo", hits)
	}
	// And a re-admission of known content is a pure hit: the trial analysis
	// re-runs Phase-1 for tri1, tri2 and the newcomer, all memoized.
	h0, m0 := again.Cache().Stats()
	if status, body := again.Admit(context.Background(), trijob("fresh")); status != http.StatusOK {
		t.Fatalf("post-recovery admit = %d: %s", status, body)
	}
	h1, m1 := again.Cache().Stats()
	if m1 != m0 || h1 <= h0 {
		t.Errorf("post-recovery admit of cached content: hits %d→%d misses %d→%d, want pure hits", h0, h1, m0, m1)
	}
}

// TestRecoveryRebuildsPartitionState: a kill-9 replay must leave the shard
// with a live incremental Phase-2 state, and the next low-density mutations
// must run warm (state mutated in place, not rebuilt) while staying
// byte-identical to a never-crashed daemon fed the same history.
func TestRecoveryRebuildsPartitionState(t *testing.T) {
	cfg := Config{M: 10, WALDir: t.TempDir()}
	crash, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := New(Config{M: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(twin.Close)
	ctx := context.Background()
	apply := func(label string, op func(s *Server) (int, []byte)) {
		t.Helper()
		s1, b1 := op(crash)
		s2, b2 := op(twin)
		if s1 != s2 || !bytes.Equal(b1, b2) {
			t.Fatalf("%s: daemons diverged before the crash (%d vs %d)\n%s\nvs\n%s", label, s1, s2, b1, b2)
		}
		if s1 != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, s1, b1)
		}
	}
	for _, n := range []string{"low1", "low2", "low3"} {
		n := n
		apply("admit "+n, func(s *Server) (int, []byte) { return s.Admit(ctx, example1Task(n)) })
	}
	apply("admit hi", func(s *Server) (int, []byte) { return s.Admit(ctx, trijob("hi")) })
	apply("remove low2", func(s *Server) (int, []byte) { return s.Remove(ctx, "low2") })

	again, after := restartServer(t, crash, cfg)
	_, want := allocationBytes(t, twin)
	if !bytes.Equal(after, want) {
		t.Fatalf("recovered allocation differs from never-crashed twin:\n--- recovered ---\n%s--- twin ---\n%s", after, want)
	}
	st := again.Shard.pstate
	if st == nil {
		t.Fatal("recovery did not rebuild the incremental partition state")
	}
	step := func(label string, op func(s *Server) (int, []byte)) {
		t.Helper()
		s1, b1 := op(again)
		s2, b2 := op(twin)
		if s1 != s2 || !bytes.Equal(b1, b2) {
			t.Fatalf("%s diverged from twin (%d vs %d)\n%s\nvs\n%s", label, s1, s2, b1, b2)
		}
		if s1 != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, s1, b1)
		}
		if again.Shard.pstate != st {
			t.Errorf("%s rebuilt the partition state; warm path not taken", label)
		}
	}
	step("post-recovery admit", func(s *Server) (int, []byte) { return s.Admit(ctx, example1Task("post")) })
	step("post-recovery remove", func(s *Server) (int, []byte) { return s.Remove(ctx, "low3") })
	_, a1 := allocationBytes(t, again)
	_, a2 := allocationBytes(t, twin)
	if !bytes.Equal(a1, a2) {
		t.Errorf("final allocations diverged:\n--- recovered ---\n%s--- twin ---\n%s", a1, a2)
	}
}

// TestRecoveryAcrossSnapshots drives enough mutations to cross the snapshot
// cadence, so recovery exercises snapshot+WAL rather than WAL alone.
func TestRecoveryAcrossSnapshots(t *testing.T) {
	cfg := Config{M: 8, WALDir: t.TempDir(), SnapshotEvery: 2}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		if status, _ := svc.Admit(ctx, example1Task(n)); status != http.StatusOK {
			t.Fatalf("admit %s failed", n)
		}
	}
	if status, _ := svc.Remove(ctx, "c"); status != http.StatusOK {
		t.Fatal("remove failed")
	}
	_, before := allocationBytes(t, svc)

	_, after := restartServer(t, svc, cfg)
	if !bytes.Equal(before, after) {
		t.Errorf("snapshot+wal recovery drifted:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

// TestRecoveryEmptyAfterRemoveAll: a fully drained system is a legal durable
// state and restarts to the empty allocation.
func TestRecoveryEmptyAfterRemoveAll(t *testing.T) {
	cfg := Config{M: 4, WALDir: t.TempDir(), SnapshotEvery: 1}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if status, _ := svc.Admit(ctx, example1Task("only")); status != http.StatusOK {
		t.Fatal("admit failed")
	}
	if status, _ := svc.Remove(ctx, "only"); status != http.StatusOK {
		t.Fatal("remove failed")
	}
	again, _ := restartServer(t, svc, cfg)
	sys, alloc := again.Snapshot()
	if len(sys) != 0 || alloc != nil {
		t.Errorf("restart of drained system recovered %d tasks", len(sys))
	}
}

// TestRecoveryRefusesMismatchedM: state admitted against one platform size
// must not be reinterpreted on another — the recovered allocation would
// silently disagree with every verdict the shard served.
func TestRecoveryRefusesMismatchedM(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{M: 8, WALDir: dir, SnapshotEvery: 1} // snapshot records M
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := svc.Admit(context.Background(), example1Task("a")); status != http.StatusOK {
		t.Fatal("admit failed")
	}
	svc.Close()
	if _, err := New(Config{M: 4, WALDir: dir, SnapshotEvery: 1}); err == nil {
		t.Fatal("New accepted a WAL directory recorded against a different m")
	}
}

// TestRecoveryPerShardIsolation: each shard recovers exactly its own
// mutations from its own WAL subdirectory.
func TestRecoveryPerShardIsolation(t *testing.T) {
	cfg := Config{M: 4, Shards: 4, WALDir: t.TempDir()}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := distinctClusters(t, svc, 3)
	ctx := context.Background()
	for i, cl := range clusters {
		sh := svc.ShardFor(cl)
		if status, _ := sh.Admit(ctx, example1Task(clusters[i])); status != http.StatusOK {
			t.Fatalf("admit into %s failed", cl)
		}
	}
	svc.Close()

	again, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	for _, cl := range clusters {
		sys, _ := again.ShardFor(cl).Snapshot()
		if len(sys) != 1 || sys[0].Name != cl {
			t.Errorf("shard for %s recovered %d tasks", cl, len(sys))
		}
	}
	// The on-disk layout really is one subdirectory per shard.
	for _, cl := range clusters {
		dir := filepath.Join(cfg.WALDir, "shard-"+strconv.Itoa(again.ShardFor(cl).ID()))
		if _, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil {
			t.Errorf("shard owning %s has no WAL at %s: %v", cl, dir, err)
		}
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/task"
)

func batchBody(t *testing.T, tks ...*task.DAGTask) []byte {
	t.Helper()
	data, err := json.Marshal(BatchRequest{Tasks: tks})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAdmitBatchAccept admits a mixed high/low-density batch atomically and
// checks the verdict, the installed snapshot, and the batch counters.
func TestAdmitBatchAccept(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 8})
	status, body, hdr := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/admit/batch",
		batchBody(t, trijob("tri"), example1Task("ex1")))
	if status != http.StatusOK {
		t.Fatalf("batch admit: %d %s", status, body)
	}
	if hdr.Get("X-Trace-Id") == "" {
		t.Error("no X-Trace-Id on batch response")
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || v.Tasks != 2 || len(v.High) != 1 || v.Dedicated != 3 || v.Shared != 5 {
		t.Fatalf("batch verdict: %+v", v)
	}
	sys, _ := svc.Snapshot()
	if len(sys) != 2 {
		t.Fatalf("snapshot has %d tasks, want 2", len(sys))
	}
	_, metricsBody, _ := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/metrics", nil)
	for _, want := range []string{"fedschedd_batch_admits_total 1\n", "fedschedd_admits_total 2\n"} {
		if !bytes.Contains(metricsBody, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
}

// TestAdmitBatchAtomicReject: one member of the batch fits on its own, but
// the batch as a whole does not — nothing may be installed.
func TestAdmitBatchAtomicReject(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()
	if status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("h1"))); status != http.StatusOK {
		t.Fatalf("seed admit: %d %s", status, body)
	}
	// ex1 alone would fit on the remaining shared processor; h2 needs 3 more.
	status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit/batch",
		batchBody(t, example1Task("ex1"), trijob("h2")))
	if status != http.StatusConflict {
		t.Fatalf("batch over capacity: %d %s, want 409", status, body)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Schedulable || v.Reason == "" {
		t.Fatalf("rejection verdict: %+v", v)
	}
	sys, _ := svc.Snapshot()
	if len(sys) != 1 || sys[0].Name != "h1" {
		t.Fatalf("reject mutated the system: %d tasks", len(sys))
	}
	// ex1 alone still fits: the rejection must not have poisoned any state.
	if status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("ex1"))); status != http.StatusOK {
		t.Fatalf("ex1 after batch reject: %d %s", status, body)
	}
}

// TestAdmitBatchNameConflicts covers both 409 name paths: collision with an
// installed task and a duplicate within the batch itself.
func TestAdmitBatchNameConflicts(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 8})
	c := ts.Client()
	if status, _, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("dup"))); status != http.StatusOK {
		t.Fatal("seed admit failed")
	}
	status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit/batch",
		batchBody(t, example1Task("fresh"), example1Task("dup")))
	if status != http.StatusConflict {
		t.Fatalf("installed-name collision: %d %s, want 409", status, body)
	}
	status, body, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit/batch",
		batchBody(t, example1Task("twin"), example1Task("twin")))
	if status != http.StatusConflict {
		t.Fatalf("in-batch duplicate: %d %s, want 409", status, body)
	}
	if sys, _ := svc.Snapshot(); len(sys) != 1 {
		t.Fatalf("conflict installed tasks: %d, want 1", len(sys))
	}
}

// TestAdmitBatchValidation pins the 400 paths: malformed JSON, an empty
// batch, and an unnamed member.
func TestAdmitBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()
	unnamed := task.MustNew("", dag.Example1(), dag.Example1D, dag.Example1T)
	for name, body := range map[string][]byte{
		"malformed": []byte(`{"tasks": [`),
		"empty":     batchBody(t),
		"unnamed":   batchBody(t, unnamed),
	} {
		status, resp, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit/batch", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, status, resp)
		}
	}
}

// TestAdmitBatchShed fills the admission queue and checks the batch endpoint
// sheds with the same 429 + trace-ID contract as single admission.
func TestAdmitBatchShed(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 4, QueueBound: 1})
	release := make(chan struct{})
	blocked := make(chan struct{})
	go svc.submit(context.Background(), "admit", "stall", func() opResult {
		close(blocked)
		<-release
		return opResult{status: http.StatusOK}
	})
	<-blocked
	go svc.submit(context.Background(), "admit", "fill", func() opResult { return opResult{status: http.StatusOK} })
	deadline := time.Now().Add(time.Second)
	for len(svc.reqs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	status, body, hdr := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/admit/batch",
		batchBody(t, example1Task("x")))
	close(release)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("429 body not JSON: %s", body)
	}
	if e["trace_id"] == "" || e["trace_id"] != hdr.Get("X-Trace-Id") {
		t.Errorf("429 body trace_id = %q, header %q", e["trace_id"], hdr.Get("X-Trace-Id"))
	}
}

// TestAdmitBatchInlineTrace: ?trace=1 on the batch endpoint returns the
// decision trace for the trial analysis.
func TestAdmitBatchInlineTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 8})
	status, body, _ := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/admit/batch?trace=1",
		batchBody(t, trijob("h1"), example1Task("e1")))
	if status != http.StatusOK {
		t.Fatalf("batch admit: %d %s", status, body)
	}
	var v struct {
		Trace []struct {
			Name string `json:"name"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Trace) == 0 || v.Trace[0].Name != "fedcons" {
		t.Fatalf("batch trace = %+v", v.Trace)
	}
}

// batchSystem draws n distinct tasks, most high-density, for the batch
// differential tests: the regime where the parallel prewarm actually fans out.
func batchSystem(t testing.TB, seed int64, n int) (task.System, int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := gen.DefaultParams(n, float64(n))
	p.MinVerts, p.MaxVerts = 20, 60
	p.BetaMin, p.BetaMax = 0.1, 0.4
	sys, err := gen.System(r, p)
	if err != nil {
		t.Fatal(err)
	}
	for m := 8; m <= 1<<16; m *= 2 {
		if _, err := core.Schedule(sys, m, core.Options{}); err == nil {
			return sys, m
		}
	}
	t.Fatal("batch system unschedulable at every platform size")
	return nil, 0
}

// TestAdmitBatchParMatchesSequential is the service-level differential test:
// a batch admission through a Par-configured server must produce exactly the
// same status, verdict bytes, installed snapshot, and cache hit/miss totals
// as a sequential server, cold and warm.
func TestAdmitBatchParMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		sys, m := batchSystem(t, seed, 10)
		run := func(par int) (int, []byte, int64, int64, task.System) {
			cfg := Config{M: m}
			cfg.Options.Par = par
			svc, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			ctx := context.Background()
			status, body := svc.AdmitBatch(ctx, sys.Clone())
			hits, misses := svc.cache.Stats()
			snap, _ := svc.Snapshot()
			return status, body, hits, misses, snap
		}
		seqStatus, seqBody, seqHits, seqMisses, seqSnap := run(0)
		for _, par := range []int{2, 4, 8} {
			parStatus, parBody, parHits, parMisses, parSnap := run(par)
			if parStatus != seqStatus || !bytes.Equal(parBody, seqBody) {
				t.Errorf("seed %d par %d: status/body diverge:\nseq %d %s\npar %d %s",
					seed, par, seqStatus, seqBody, parStatus, parBody)
			}
			if parHits != seqHits || parMisses != seqMisses {
				t.Errorf("seed %d par %d: cache stats %d/%d, sequential %d/%d",
					seed, par, parHits, parMisses, seqHits, seqMisses)
			}
			if len(parSnap) != len(seqSnap) {
				t.Errorf("seed %d par %d: snapshot %d tasks, sequential %d",
					seed, par, len(parSnap), len(seqSnap))
			}
		}
	}
}

package service

import (
	"encoding/json"

	"fedsched/internal/core"
	"fedsched/internal/task"
)

// Verdict is the machine-readable answer to "is this system schedulable by
// FEDCONS on this platform, and how". It is the single response shape shared
// by the daemon (POST /v1/admit, GET /v1/allocation) and by
// `fedsched -o json`, so the CLI and the service produce byte-identical
// answers for the same system.
type Verdict struct {
	Schedulable bool    `json:"schedulable"`
	Processors  int     `json:"processors"`
	Tasks       int     `json:"tasks"`
	USum        float64 `json:"usum"`
	DensitySum  float64 `json:"densitySum"`
	// Dedicated and Shared count processors by role (schedulable only).
	Dedicated int `json:"dedicated"`
	Shared    int `json:"shared"`
	// High lists the Phase-1 grants in input order (schedulable only).
	High []HighGrant `json:"high,omitempty"`
	// SharedProcs lists each Phase-2 processor and its tasks (schedulable only).
	SharedProcs []SharedProc `json:"sharedProcs,omitempty"`
	// Reason is the failure diagnosis (unschedulable only).
	Reason string `json:"reason,omitempty"`
	// Trace is the FEDCONS decision trace (span array with timings), present
	// only when the caller asked for one (daemon ?trace=1). omitempty keeps
	// the untraced encoding byte-identical to `fedsched -o json`.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// HighGrant is one high-density task's dedicated-processor grant.
type HighGrant struct {
	Task     string    `json:"task"`
	Density  float64   `json:"density"`
	Procs    []int     `json:"procs"`
	Makespan task.Time `json:"makespan"`
	Deadline task.Time `json:"deadline"`
}

// SharedProc is one Phase-2 processor with the tasks partitioned onto it.
type SharedProc struct {
	Proc  int      `json:"proc"`
	Tasks []string `json:"tasks"`
}

// NewVerdict builds the Verdict for a FEDCONS outcome: alloc on success, err
// on failure (exactly one of the two should be set; a nil alloc with nil err
// describes the empty system, trivially schedulable with every processor
// shared and idle).
func NewVerdict(sys task.System, m int, alloc *core.Allocation, err error) Verdict {
	v := Verdict{
		Processors: m,
		Tasks:      len(sys),
		USum:       sys.USum(),
		DensitySum: sys.DensitySum(),
	}
	if err != nil {
		v.Reason = err.Error()
		return v
	}
	v.Schedulable = true
	if alloc == nil {
		v.Shared = m
		return v
	}
	v.Dedicated, v.Shared = alloc.ProcessorsUsed()
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		v.High = append(v.High, HighGrant{
			Task:     tk.Name,
			Density:  tk.Density(),
			Procs:    h.Procs,
			Makespan: h.Template.Makespan,
			Deadline: tk.D,
		})
	}
	for k, p := range alloc.SharedProcs {
		sp := SharedProc{Proc: p, Tasks: []string{}}
		for _, i := range alloc.TasksOnShared(k) {
			sp.Tasks = append(sp.Tasks, sys[i].Name)
		}
		v.SharedProcs = append(v.SharedProcs, sp)
	}
	return v
}

// Encode renders the verdict as indented JSON with a trailing newline — the
// exact bytes both the daemon endpoints and `fedsched -o json` emit.
func (v Verdict) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package service

import (
	"encoding/json"
	"math"
	"strconv"

	"fedsched/internal/core"
	"fedsched/internal/task"
)

// Verdict is the machine-readable answer to "is this system schedulable by
// FEDCONS on this platform, and how". It is the single response shape shared
// by the daemon (POST /v1/admit, GET /v1/allocation) and by
// `fedsched -o json`, so the CLI and the service produce byte-identical
// answers for the same system.
type Verdict struct {
	Schedulable bool    `json:"schedulable"`
	Processors  int     `json:"processors"`
	Tasks       int     `json:"tasks"`
	USum        float64 `json:"usum"`
	DensitySum  float64 `json:"densitySum"`
	// Dedicated and Shared count processors by role (schedulable only).
	Dedicated int `json:"dedicated"`
	Shared    int `json:"shared"`
	// Policy tags a split-shape allocation ("semi" or "reservation") or a
	// typed one ("typed"); omitempty keeps the strict encoding
	// byte-identical to the pre-policy format.
	Policy string `json:"policy,omitempty"`
	// MTypes gives a typed allocation's per-type processor budgets (type s
	// owns the type-major global id block); empty for every other shape.
	MTypes []int `json:"mtypes,omitempty"`
	// High lists the Phase-1 grants in input order (schedulable only).
	High []HighGrant `json:"high,omitempty"`
	// Servers lists a split-shape allocation's reservation servers in
	// allocation order (schedulable only, split shapes only).
	Servers []ServerGrant `json:"servers,omitempty"`
	// SharedProcs lists each Phase-2 processor and its tasks (schedulable only).
	SharedProcs []SharedProc `json:"sharedProcs,omitempty"`
	// Reason is the failure diagnosis (unschedulable only).
	Reason string `json:"reason,omitempty"`
	// Trace is the FEDCONS decision trace (span array with timings), present
	// only when the caller asked for one (daemon ?trace=1). omitempty keeps
	// the untraced encoding byte-identical to `fedsched -o json`.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// HighGrant is one high-density task's dedicated-processor grant.
type HighGrant struct {
	Task     string    `json:"task"`
	Density  float64   `json:"density"`
	Procs    []int     `json:"procs"`
	Makespan task.Time `json:"makespan"`
	Deadline task.Time `json:"deadline"`
}

// ServerGrant is one reservation server of a split-shape allocation: Budget
// execution units per Deadline-long window, re-released every Period.
type ServerGrant struct {
	Task     string    `json:"task"` // display name: owner#srvN
	Budget   task.Time `json:"budget"`
	Deadline task.Time `json:"deadline"`
	Period   task.Time `json:"period"`
}

// SharedProc is one Phase-2 processor with the tasks partitioned onto it.
type SharedProc struct {
	Proc  int      `json:"proc"`
	Tasks []string `json:"tasks"`
}

// NewVerdict builds the Verdict for a FEDCONS outcome: alloc on success, err
// on failure (exactly one of the two should be set; a nil alloc with nil err
// describes the empty system, trivially schedulable with every processor
// shared and idle).
func NewVerdict(sys task.System, m int, alloc *core.Allocation, err error) Verdict {
	v := Verdict{
		Processors: m,
		Tasks:      len(sys),
		USum:       sys.USum(),
		DensitySum: sys.DensitySum(),
	}
	if err != nil {
		v.Reason = err.Error()
		return v
	}
	v.Schedulable = true
	if alloc == nil {
		v.Shared = m
		return v
	}
	v.Dedicated, v.Shared = alloc.ProcessorsUsed()
	v.Policy = alloc.Policy
	v.MTypes = alloc.MTypes
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		g := HighGrant{
			Task:     tk.Name,
			Density:  tk.Density(),
			Procs:    h.Procs,
			Deadline: tk.D,
		}
		if h.Template != nil { // split-shape grants carry no template
			g.Makespan = h.Template.Makespan
		}
		v.High = append(v.High, g)
	}
	srvNames := core.ServerNames(sys, alloc)
	for j, sv := range alloc.Servers {
		owner := sys[sv.TaskIndex]
		v.Servers = append(v.Servers, ServerGrant{
			Task:     srvNames[j],
			Budget:   sv.Budget,
			Deadline: taskWindow(owner),
			Period:   owner.T,
		})
	}
	for k, p := range alloc.SharedProcs {
		sp := SharedProc{Proc: p, Tasks: []string{}}
		for _, pos := range alloc.Low.Assignment[k] {
			if pos < len(alloc.Servers) {
				sp.Tasks = append(sp.Tasks, srvNames[pos])
				continue
			}
			sp.Tasks = append(sp.Tasks, sys[alloc.LowIndices[pos-len(alloc.Servers)]].Name)
		}
		v.SharedProcs = append(v.SharedProcs, sp)
	}
	return v
}

// Encode renders the verdict as indented JSON with a trailing newline — the
// exact bytes both the daemon endpoints and `fedsched -o json` emit. The
// common shape (no trace, plain ASCII names, finite floats) is emitted by a
// single-pass appender; anything else goes through encoding/json, and
// TestEncodeFastMatchesStdlib pins that both spellings are byte-identical.
func (v Verdict) Encode() ([]byte, error) {
	if b, ok := v.appendFast(); ok {
		return b, nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// appendFast emits the MarshalIndent encoding in one pass. ok is false when
// any field needs stdlib treatment (a raw trace, a string that JSON-escapes,
// a non-finite float) — the caller then takes the two-pass path, so the
// response bytes never depend on which encoder ran.
func (v Verdict) appendFast() ([]byte, bool) {
	if len(v.Trace) != 0 || !plainJSONString(v.Reason) ||
		!finite(v.USum) || !finite(v.DensitySum) ||
		v.Policy != "" || len(v.MTypes) != 0 || len(v.Servers) != 0 {
		return nil, false
	}
	for i := range v.High {
		if !plainJSONString(v.High[i].Task) || !finite(v.High[i].Density) {
			return nil, false
		}
	}
	for i := range v.SharedProcs {
		for _, name := range v.SharedProcs[i].Tasks {
			if !plainJSONString(name) {
				return nil, false
			}
		}
	}
	b := make([]byte, 0, v.sizeHint())
	b = append(b, "{\n  \"schedulable\": "...)
	b = strconv.AppendBool(b, v.Schedulable)
	b = append(b, ",\n  \"processors\": "...)
	b = strconv.AppendInt(b, int64(v.Processors), 10)
	b = append(b, ",\n  \"tasks\": "...)
	b = strconv.AppendInt(b, int64(v.Tasks), 10)
	b = append(b, ",\n  \"usum\": "...)
	b = appendJSONFloat(b, v.USum)
	b = append(b, ",\n  \"densitySum\": "...)
	b = appendJSONFloat(b, v.DensitySum)
	b = append(b, ",\n  \"dedicated\": "...)
	b = strconv.AppendInt(b, int64(v.Dedicated), 10)
	b = append(b, ",\n  \"shared\": "...)
	b = strconv.AppendInt(b, int64(v.Shared), 10)
	if len(v.High) > 0 {
		b = append(b, ",\n  \"high\": ["...)
		for i, h := range v.High {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, "\n    {\n      \"task\": \""...)
			b = append(b, h.Task...)
			b = append(b, "\",\n      \"density\": "...)
			b = appendJSONFloat(b, h.Density)
			b = append(b, ",\n      \"procs\": "...)
			b = appendIntArray(b, h.Procs)
			b = append(b, ",\n      \"makespan\": "...)
			b = strconv.AppendInt(b, int64(h.Makespan), 10)
			b = append(b, ",\n      \"deadline\": "...)
			b = strconv.AppendInt(b, int64(h.Deadline), 10)
			b = append(b, "\n    }"...)
		}
		b = append(b, "\n  ]"...)
	}
	if len(v.SharedProcs) > 0 {
		b = append(b, ",\n  \"sharedProcs\": ["...)
		for i, p := range v.SharedProcs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, "\n    {\n      \"proc\": "...)
			b = strconv.AppendInt(b, int64(p.Proc), 10)
			b = append(b, ",\n      \"tasks\": "...)
			b = appendStringArray(b, p.Tasks)
			b = append(b, "\n    }"...)
		}
		b = append(b, "\n  ]"...)
	}
	if v.Reason != "" {
		b = append(b, ",\n  \"reason\": \""...)
		b = append(b, v.Reason...)
		b = append(b, '"')
	}
	b = append(b, "\n}\n"...)
	return b, true
}

func (v Verdict) sizeHint() int {
	n := 192 + len(v.Reason)
	for i := range v.High {
		n += 144 + len(v.High[i].Task) + 10*len(v.High[i].Procs)
	}
	for i := range v.SharedProcs {
		n += 72
		for _, t := range v.SharedProcs[i].Tasks {
			n += len(t) + 9
		}
	}
	return n
}

// plainJSONString reports whether s encodes as itself between quotes: ASCII,
// no control characters, nothing encoding/json escapes (including the
// HTML-safety set & < >).
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '&' || c == '<' || c == '>' {
			return false
		}
	}
	return true
}

func finite(f float64) bool { return !math.IsInf(f, 0) && !math.IsNaN(f) }

// appendJSONFloat mirrors encoding/json's float64 formatting: shortest
// round-trip form, 'f' notation inside [1e-6, 1e21), 'e' outside with the
// exponent's leading zero stripped ("e-09" → "e-9").
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendIntArray writes xs as an indented array at nesting depth 3 (the
// "procs" position): nil is null, empty is [], elements sit one per line.
func appendIntArray(b []byte, xs []int) []byte {
	if xs == nil {
		return append(b, "null"...)
	}
	if len(xs) == 0 {
		return append(b, "[]"...)
	}
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n        "...)
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return append(b, "\n      ]"...)
}

// appendStringArray is appendIntArray for the "tasks" position; every element
// has already passed plainJSONString.
func appendStringArray(b []byte, xs []string) []byte {
	if xs == nil {
		return append(b, "null"...)
	}
	if len(xs) == 0 {
		return append(b, "[]"...)
	}
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n        \""...)
		b = append(b, x...)
		b = append(b, '"')
	}
	return append(b, "\n      ]"...)
}

package service

import (
	"time"

	"fedsched/internal/obs"
)

// SLO objectives. The daemon promises that sloLatencyObjective of admissions
// complete within Config.SLOLatencyBudget, and that sloErrorObjective of all
// mutations avoid server-side failure (5xx) or shedding (429). The burn-rate
// gauges report how fast the rolling window is consuming each error budget:
// 1.0 means exactly on budget, >1 means the budget runs out before the window
// does, 0 means a clean window.
const (
	sloLatencyObjective = 0.99  // 1% of admits may exceed the latency budget
	sloErrorObjective   = 0.999 // 0.1% of mutations may fail or shed
)

// DefaultSLOLatencyBudget is the per-admission latency budget when
// Config.SLOLatencyBudget is 0. Warm admissions run in ~217µs and cold full
// analyses in ~1.5ms on the reference host (results/timing_shards.json), so
// 5ms is a real ceiling, not a vanity target.
const DefaultSLOLatencyBudget = 5 * time.Millisecond

// DefaultSLOWindow is the burn-rate rolling window when Config.SLOWindow is 0.
const DefaultSLOWindow = time.Minute

// sloState is the server-wide SLO ledger: lifetime counters for the
// exposition's _total families and rolling windows for the burn-rate gauges.
// One instance is shared by every shard; all methods are safe for concurrent
// use from the shards' writer loops.
type sloState struct {
	latencyBudget time.Duration

	reqs   obs.Counter // every completed mutation
	latBad obs.Counter // admits over the latency budget
	errBad obs.Counter // mutations answering 5xx or 429

	wReqs   *obs.Window
	wLatBad *obs.Window
	wErrBad *obs.Window
}

func newSLOState(budget, window time.Duration) *sloState {
	if budget == 0 {
		budget = DefaultSLOLatencyBudget
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	return &sloState{
		latencyBudget: budget,
		wReqs:         obs.NewWindow(window, 0),
		wLatBad:       obs.NewWindow(window, 0),
		wErrBad:       obs.NewWindow(window, 0),
	}
}

// observe records one completed mutation. op is the shard's operation label
// ("admit", "admit-batch", "remove"); the latency budget applies to the admit
// family, the error budget to everything.
func (st *sloState) observe(op string, status int, lat time.Duration) {
	if st == nil {
		return
	}
	st.reqs.Add(1)
	st.wReqs.Add(1)
	if (op == "admit" || op == "admit-batch") && lat > st.latencyBudget {
		st.latBad.Add(1)
		st.wLatBad.Add(1)
	}
	if status >= 500 || status == 429 {
		st.errBad.Add(1)
		st.wErrBad.Add(1)
	}
}

// burnRate is (bad fraction in the window) / (allowed bad fraction): the
// standard multi-window burn-rate expression with objective-normalized
// denominator. An empty window burns nothing.
func burnRate(bad, total int64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	allowed := 1 - objective
	return (float64(bad) / float64(total)) / allowed
}

func (st *sloState) latencyBurnRate() float64 {
	return burnRate(st.wLatBad.Sum(), st.wReqs.Sum(), sloLatencyObjective)
}

func (st *sloState) errorBurnRate() float64 {
	return burnRate(st.wErrBad.Sum(), st.wReqs.Sum(), sloErrorObjective)
}

// fleetRegistry declares the server-level metric families: fleet-wide sums
// across shards and the SLO ledger. Everything is a scrape-time Func over
// live state — the registry owns no double-counted copies.
func (s *Server) fleetRegistry() *obs.Registry {
	r := obs.NewRegistry()
	sum := func(get func(*Shard) int64) func() float64 {
		return func() float64 {
			var t int64
			for _, sh := range s.shards {
				t += get(sh)
			}
			return float64(t)
		}
	}
	r.CounterFunc("fedschedd_fleet_admits_total", sum(func(sh *Shard) int64 { return sh.met.admits.Value() }))
	r.CounterFunc("fedschedd_fleet_batch_admits_total", sum(func(sh *Shard) int64 { return sh.met.batches.Value() }))
	r.CounterFunc("fedschedd_fleet_rejects_total", sum(func(sh *Shard) int64 { return sh.met.rejects.Value() }))
	r.CounterFunc("fedschedd_fleet_removes_total", sum(func(sh *Shard) int64 { return sh.met.removes.Value() }))
	r.CounterFunc("fedschedd_fleet_shed_total", sum(func(sh *Shard) int64 { return sh.met.shed.Value() }))
	r.CounterFunc("fedschedd_fleet_timeouts_total", sum(func(sh *Shard) int64 { return sh.met.timeouts.Value() }))
	r.CounterFunc("fedschedd_fleet_errors_total", sum(func(sh *Shard) int64 { return sh.met.errors.Value() }))
	r.GaugeFunc("fedschedd_fleet_shards", func() float64 { return float64(len(s.shards)) })
	r.GaugeFunc("fedschedd_fleet_tasks", sum(func(sh *Shard) int64 {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return int64(len(sh.sys))
	}))
	r.GaugeFunc("fedschedd_slo_admit_latency_budget_seconds", func() float64 {
		return s.slo.latencyBudget.Seconds()
	})
	r.GaugeFunc("fedschedd_slo_window_seconds", func() float64 { return s.slo.wReqs.Span().Seconds() })
	r.CounterFunc("fedschedd_slo_requests_total", func() float64 { return float64(s.slo.reqs.Value()) })
	r.CounterFunc("fedschedd_slo_admit_latency_over_budget_total", func() float64 { return float64(s.slo.latBad.Value()) })
	r.CounterFunc("fedschedd_slo_errors_total", func() float64 { return float64(s.slo.errBad.Value()) })
	r.GaugeFunc("fedschedd_slo_admit_latency_burn_rate", s.slo.latencyBurnRate)
	r.GaugeFunc("fedschedd_slo_error_burn_rate", s.slo.errorBurnRate)
	return r
}

// fleetLatency merges every shard's admit-latency histogram into one. The
// log-bucketed histograms share fixed boundaries, so the bucket-wise add is
// exact: the fleet histogram's quantiles are as trustworthy as any single
// shard's (no cross-histogram interpolation error).
func (s *Server) fleetLatency() *obs.Histogram {
	var merged obs.Histogram
	for _, sh := range s.shards {
		merged.AddHistogram(&sh.met.latency)
	}
	return &merged
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// BatchRequest is the body of POST /v1/admit/batch: a list of tasks admitted
// all-or-nothing.
type BatchRequest struct {
	Tasks []*task.DAGTask `json:"tasks"`
}

// AdmitBatch trial-admits every task in tks atomically: the full two-phase
// FEDCONS test runs once on the current system plus the whole batch, the
// resulting allocation is audited with core.Verify, and either all tasks are
// installed or none is. A cold analysis fans its Phase-1 MINPROCS scans out
// across the configured worker pool (Config.Options.Par); tasks the daemon
// has analyzed before are served from the content-addressed memo. Statuses
// mirror Admit: 200 installed, 409 rejected (duplicate name or analysis
// failure; the body carries the Verdict for the trial system), 429 shed,
// 504 deadline expired, 500 audit failure (state unchanged).
func (s *Shard) AdmitBatch(ctx context.Context, tks []*task.DAGTask) (int, []byte) {
	return s.AdmitBatchTrace(ctx, tks, s.nextTraceID(), nil)
}

// AdmitBatchTrace is AdmitBatch with an explicit trace ID and an optional
// obs.Recorder for the trial analysis's decision trace (?trace=1).
func (s *Shard) AdmitBatchTrace(ctx context.Context, tks []*task.DAGTask, traceID string, rec *obs.Recorder) (int, []byte) {
	return s.admitBatchOp(ctx, tks, traceID, rec, "")
}

// admitBatchOp is AdmitBatchTrace with the request's cluster name.
func (s *Shard) admitBatchOp(ctx context.Context, tks []*task.DAGTask, traceID string, rec *obs.Recorder, cluster string) (int, []byte) {
	names := make([]string, len(tks))
	for i, tk := range tks {
		names[i] = tk.Name
	}
	label := strings.Join(names, ",")
	meta := mutMeta{trace: traceID, cluster: cluster}
	res := s.submit(ctx, "admit-batch", traceID, func() opResult {
		return s.observed(traceID, "admit-batch", label, func() opResult { return s.doAdmitBatch(tks, rec, meta, label) })
	})
	return res.status, res.body
}

// doAdmitBatch runs inside the writer loop (single writer: lock-free reads of
// s.sys are safe; see doAdmit). label is the comma-joined task-name list used
// for flight entries and Observer records.
func (s *Shard) doAdmitBatch(tks []*task.DAGTask, rec *obs.Recorder, meta mutMeta, label string) opResult {
	installed := make(map[string]bool, len(s.sys))
	for _, cur := range s.sys {
		installed[cur.Name] = true
	}
	seen := make(map[string]bool, len(tks))
	for _, tk := range tks {
		switch {
		case installed[tk.Name]:
			s.met.errors.Add(1)
			res := errResult(http.StatusConflict, fmt.Sprintf("task %q already admitted; remove it first", tk.Name))
			return s.noteFlight(res, meta, "admit-batch", label, false, traceBytes(rec))
		case seen[tk.Name]:
			s.met.errors.Add(1)
			res := errResult(http.StatusConflict, fmt.Sprintf("task %q appears twice in the batch", tk.Name))
			return s.noteFlight(res, meta, "admit-batch", label, false, traceBytes(rec))
		}
		seen[tk.Name] = true
	}

	srec, sampled := s.speculate(rec)
	trial := append(s.sys.Clone(), tks...)
	opt := s.cfg.Options
	opt.Trace = srec
	alloc, err := s.cache.Schedule(trial, s.cfg.M, opt)
	if err != nil {
		// All-or-nothing: one infeasible combination rejects the whole batch
		// and leaves the installed system untouched.
		s.met.rejects.Add(1)
		v := NewVerdict(trial, s.cfg.M, nil, err)
		trace := traceBytes(srec)
		if rec != nil {
			v.Trace = trace
		}
		return s.noteFlight(verdictResult(http.StatusConflict, v), meta, "admit-batch", label, sampled, trace)
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
	}
	hashes := make([]string, len(tks))
	for i, tk := range tks {
		hashes[i] = s.cache.hashOf(tk).String()
	}
	// One WAL record for the whole batch: replay is as atomic as admission.
	if res := s.persistAdmit(tks, hashes, meta); res != nil {
		return *res
	}
	s.install(trial, alloc, append(append([]string(nil), s.sysHashes...), hashes...))
	s.syncPartitionState()
	s.met.admits.Add(int64(len(tks)))
	s.met.batches.Add(1)
	s.maybeSnapshot()
	v := NewVerdict(trial, s.cfg.M, alloc, nil)
	trace := traceBytes(srec)
	if rec != nil {
		v.Trace = trace
	}
	res := verdictResult(http.StatusOK, v)
	if sampled || rec != nil {
		res = s.noteFlight(res, meta, "admit-batch", label, sampled, trace)
	}
	return res
}

// handleAdmitBatch decodes and validates the batch body; name-collision and
// schedulability checks run in the writer loop against a quiescent state.
func (s *Shard) handleAdmitBatch(w http.ResponseWriter, r *http.Request) {
	traceID := s.nextTraceID()
	w.Header().Set("X-Trace-Id", traceID)
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "decoding batch: "+err.Error()))
		return
	}
	if len(req.Tasks) == 0 {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "batch must contain at least one task"))
		return
	}
	for i, tk := range req.Tasks {
		if tk == nil || tk.Name == "" {
			s.met.errors.Add(1)
			writeJSON(w, errResult(http.StatusBadRequest, fmt.Sprintf("batch task %d must carry a unique name", i)))
			return
		}
	}
	var rec *obs.Recorder
	if r.URL.Query().Get("trace") == "1" {
		rec = obs.New(obs.DefaultLimits)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, respBody := s.admitBatchOp(ctx, req.Tasks, traceID, rec, requestCluster(r))
	writeJSON(w, opResult{status: status, body: respBody})
}

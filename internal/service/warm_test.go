package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// The warm-path differential harness: a Server with the default incremental
// Phase-2 state must be byte-identical — every response body, every
// allocation encoding, every rejection — to a twin Server running with
// Config.FullRepartition (the pre-PR-7 full re-analysis on every mutation),
// fed the identical request sequence.

// twinServers starts the incremental server and its full-repartition oracle.
func twinServers(t *testing.T, m int) (inc, full *Server) {
	t.Helper()
	inc, err := New(Config{M: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inc.Close)
	full, err = New(Config{M: m, FullRepartition: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(full.Close)
	return inc, full
}

// bothAgree runs op against both servers and requires identical status and
// identical (normalized) bytes; it returns the shared status.
func bothAgree(t *testing.T, inc, full *Server, label string, op func(svc *Server) (int, []byte)) int {
	t.Helper()
	s1, b1 := op(inc)
	s2, b2 := op(full)
	if s1 != s2 || !bytes.Equal(normalizeGolden(b1), normalizeGolden(b2)) {
		t.Fatalf("%s diverged:\nincremental: %d %s\nfull:        %d %s", label, s1, b1, s2, b2)
	}
	return s1
}

// requireAllocParity compares the exact /v1/allocation bytes of both servers.
func requireAllocParity(t *testing.T, inc, full *Server, label string) {
	t.Helper()
	_, b1 := allocationBytes(t, inc)
	_, b2 := allocationBytes(t, full)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("%s: allocation bytes diverged:\n--- incremental ---\n%s--- full ---\n%s", label, b1, b2)
	}
}

// TestWarmPathByteIdenticalToFullRepartition drives 20 seeded mixed
// workloads — low/high admits, removals, rejections, an occasional atomic
// batch and traced request — through twin servers and requires byte parity
// on every response and on the installed allocation after every step.
func TestWarmPathByteIdenticalToFullRepartition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			m := 6 + r.Intn(6)
			inc, full := twinServers(t, m)
			// A pool twice as utilization-heavy as the platform: plenty of
			// accepted admissions and guaranteed rejections.
			pool := genSystem(t, seed+400, 18, float64(m)*1.2)
			live := map[string]bool{}
			ctx := context.Background()
			for step := 0; step < 50; step++ {
				label := fmt.Sprintf("seed %d step %d", seed, step)
				switch {
				case step%17 == 11 && len(live) > 0: // traced admit (falls back)
					tk := pool[r.Intn(len(pool))]
					tid := fmt.Sprintf("%08x-%06d", seed, step)
					status := bothAgree(t, inc, full, label+" traced-admit", func(svc *Server) (int, []byte) {
						s, b := svc.AdmitTrace(ctx, tk, tid, obs.New(obs.DefaultLimits))
						return s, b
					})
					if status == http.StatusOK {
						live[tk.Name] = true
					}
				case step%13 == 7: // atomic batch of two
					a, b := pool[r.Intn(len(pool))], pool[r.Intn(len(pool))]
					status := bothAgree(t, inc, full, label+" batch", func(svc *Server) (int, []byte) {
						return svc.AdmitBatch(ctx, []*task.DAGTask{a, b})
					})
					if status == http.StatusOK {
						live[a.Name], live[b.Name] = true, true
					}
				case len(live) > 0 && r.Float64() < 0.35: // removal
					var names []string
					for n := range live {
						names = append(names, n)
					}
					name := names[r.Intn(len(names))]
					status := bothAgree(t, inc, full, label+" remove "+name, func(svc *Server) (int, []byte) {
						return svc.Remove(ctx, name)
					})
					if status == http.StatusOK {
						delete(live, name)
					}
				default: // plain (warm-path-eligible) admit
					tk := pool[r.Intn(len(pool))]
					status := bothAgree(t, inc, full, label+" admit "+tk.Name, func(svc *Server) (int, []byte) {
						return svc.Admit(ctx, tk)
					})
					if status == http.StatusOK {
						live[tk.Name] = true
					}
				}
				requireAllocParity(t, inc, full, label)
			}
		})
	}
}

// TestServiceStateRandomWalk is the stateful soak: 500+ admit/remove ops per
// seed through the service layer, every response and allocation byte-compared
// against the full-repartition oracle. make partition-race runs it under the
// race detector.
func TestServiceStateRandomWalk(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			const m = 10
			inc, full := twinServers(t, m)
			pool := genSystem(t, seed+900, 30, m*1.4)
			var live []string
			isLive := func(n string) bool {
				for _, l := range live {
					if l == n {
						return true
					}
				}
				return false
			}
			ctx := context.Background()
			for step := 0; step < 520; step++ {
				label := fmt.Sprintf("seed %d step %d", seed, step)
				if len(live) == 0 || r.Float64() < 0.55 {
					tk := pool[r.Intn(len(pool))]
					if isLive(tk.Name) {
						// Duplicate admit: still must agree (409 on both).
						bothAgree(t, inc, full, label+" dup-admit", func(svc *Server) (int, []byte) {
							return svc.Admit(ctx, tk)
						})
						continue
					}
					if bothAgree(t, inc, full, label+" admit", func(svc *Server) (int, []byte) {
						return svc.Admit(ctx, tk)
					}) == http.StatusOK {
						live = append(live, tk.Name)
					}
				} else {
					i := r.Intn(len(live))
					name := live[i]
					if bothAgree(t, inc, full, label+" remove", func(svc *Server) (int, []byte) {
						return svc.Remove(ctx, name)
					}) == http.StatusOK {
						live = append(live[:i], live[i+1:]...)
					}
				}
				if step%25 == 0 {
					requireAllocParity(t, inc, full, label)
				}
			}
			requireAllocParity(t, inc, full, "final")
		})
	}
}

// TestWarmPathActuallyTaken is the white-box guard that the differential
// tests are not vacuous: an untraced low-density admit must mutate the live
// partition.State in place (warm path), while traced requests, high-density
// admits and batches must fall back and rebuild it.
func TestWarmPathActuallyTaken(t *testing.T) {
	svc, err := New(Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if status, body := svc.Admit(ctx, example1Task("seed")); status != http.StatusOK {
		t.Fatalf("seed admit: %d %s", status, body)
	}
	sh := svc.Shard
	if sh.pstate == nil {
		t.Fatal("no partition state after first install")
	}

	st0 := sh.pstate
	if status, _ := svc.Admit(ctx, example1Task("low")); status != http.StatusOK {
		t.Fatal("low admit failed")
	}
	if sh.pstate != st0 {
		t.Error("untraced low-density admit rebuilt the state: warm path not taken")
	}
	if status, _ := svc.Remove(ctx, "low"); status != http.StatusOK {
		t.Fatal("low remove failed")
	}
	if sh.pstate != st0 {
		t.Error("untraced low-density removal rebuilt the state: warm path not taken")
	}

	// Traced admit: must fall back (the trace comes from the batch code).
	rec := obs.New(obs.DefaultLimits)
	if status, body := svc.AdmitTrace(ctx, example1Task("traced"), "ffffffff-000001", rec); status != http.StatusOK {
		t.Fatalf("traced admit: %d %s", status, body)
	}
	if sh.pstate == st0 {
		t.Error("traced admit took the warm path; -trace output would bypass the batch code")
	}
	if !bytes.Contains(rec.JSON(obs.ExportOptions{}), []byte(`"fedcons"`)) {
		t.Error("traced fallback recorded no decision trace")
	}

	// High-density admit: changes Phase-1 numbering, must rebuild.
	st1 := sh.pstate
	if status, _ := svc.Admit(ctx, trijob("high")); status != http.StatusOK {
		t.Fatal("high admit failed")
	}
	if sh.pstate == st1 {
		t.Error("high-density admit took the warm path")
	}

	// Warm rejection: fill the remaining shared capacity with warm admits
	// until one is refused. Accepted and rejected warm operations alike must
	// keep mutating the same live state object — a rejection commits nothing.
	st2 := sh.pstate
	rejected := false
	for i := 0; i < 64 && !rejected; i++ {
		switch status, body := svc.Admit(ctx, example1Task(fmt.Sprintf("fill%d", i))); status {
		case http.StatusOK:
		case http.StatusConflict:
			rejected = true
		default:
			t.Fatalf("fill admit %d: %d %s", i, status, body)
		}
	}
	if !rejected {
		t.Fatal("shared capacity never filled; no warm rejection exercised")
	}
	if sh.pstate != st2 {
		t.Error("warm fill admits or the warm rejection rebuilt the state")
	}

	// FullRepartition: the escape hatch really disables the warm path.
	fullSvc, err := New(Config{M: 8, FullRepartition: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fullSvc.Close()
	if status, _ := fullSvc.Admit(ctx, example1Task("a")); status != http.StatusOK {
		t.Fatal("admit failed")
	}
	stf := fullSvc.Shard.pstate
	if status, _ := fullSvc.Admit(ctx, example1Task("b")); status != http.StatusOK {
		t.Fatal("admit failed")
	}
	if fullSvc.Shard.pstate == stf {
		t.Error("FullRepartition server served a mutation from the warm path")
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestHashRingProperties checks the consistent-hash ring is deterministic,
// covers every slot, and keeps most placements stable when a slot is added.
func TestHashRingProperties(t *testing.T) {
	a, b := newHashRing(8), newHashRing(8)
	hit := make(map[int]int)
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("cluster-%d", i)
		if a.owner(name) != b.owner(name) {
			t.Fatalf("ring placement nondeterministic for %q", name)
		}
		hit[a.owner(name)]++
	}
	for slot := 0; slot < 8; slot++ {
		if hit[slot] == 0 {
			t.Errorf("slot %d owns no cluster out of 4096", slot)
		}
	}
	// Growing 8 → 9 slots must move only keys the new slot captures.
	grown := newHashRing(9)
	moved := 0
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("cluster-%d", i)
		if was, now := a.owner(name), grown.owner(name); was != now {
			moved++
			if now != 8 {
				t.Fatalf("%q moved from slot %d to old slot %d on grow", name, was, now)
			}
		}
	}
	if moved == 0 || moved > 4096/4 {
		t.Errorf("grow moved %d/4096 keys; want a small non-zero fraction", moved)
	}
}

// TestGoldenDifferentialWithClusterHeader re-runs the pre-refactor golden
// scenario with an X-Cluster header on every request: at N=1 every cluster
// maps to the one shard, so all responses must stay byte-identical.
func TestGoldenDifferentialWithClusterHeader(t *testing.T) {
	base := runGoldenScenario(t, Config{M: 8}, nil)
	withHdr := runGoldenScenario(t, Config{M: 8}, func(r *http.Request) {
		r.Header.Set(clusterHeader, "payments")
	})
	for _, step := range goldenScenario() {
		if !bytes.Equal(base[step.name], withHdr[step.name]) {
			t.Errorf("%s: X-Cluster header changed a single-shard response:\n%s\nvs\n%s",
				step.name, base[step.name], withHdr[step.name])
		}
	}
}

// TestGoldenDifferentialThroughClusterPaths rewrites every legacy data path
// to its /v1/clusters/{cluster}/... twin and asserts byte-identical responses
// at N=1. healthz has no cluster form and is left alone.
func TestGoldenDifferentialThroughClusterPaths(t *testing.T) {
	base := runGoldenScenario(t, Config{M: 8}, nil)
	viaPath := runGoldenScenario(t, Config{M: 8}, func(r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/healthz") {
			return
		}
		r.URL.Path = "/v1/clusters/default" + strings.TrimPrefix(r.URL.Path, "/v1")
	})
	for _, step := range goldenScenario() {
		if !bytes.Equal(base[step.name], viaPath[step.name]) {
			t.Errorf("%s: cluster-path response differs from legacy path:\n%s\nvs\n%s",
				step.name, base[step.name], viaPath[step.name])
		}
	}
}

// distinctClusters finds cluster names owned by different shards of svc.
func distinctClusters(t *testing.T, svc *Server, want int) []string {
	t.Helper()
	seen := map[int]string{}
	for i := 0; len(seen) < want && i < 65536; i++ {
		name := fmt.Sprintf("c%d", i)
		slot := svc.ring.owner(name)
		if _, ok := seen[slot]; !ok {
			seen[slot] = name
		}
	}
	if len(seen) < want {
		t.Fatalf("could not find %d clusters on distinct shards", want)
	}
	out := make([]string, 0, want)
	for _, name := range seen {
		out = append(out, name)
	}
	return out[:want]
}

// TestShardsAreIndependentDomains: with N>1, the same task name admits into
// two different clusters without a duplicate conflict, and each cluster's
// allocation sees only its own task.
func TestShardsAreIndependentDomains(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 4, Shards: 4})
	clusters := distinctClusters(t, svc, 2)
	c := ts.Client()
	for _, cl := range clusters {
		status, body, _ := doJSON(t, c, http.MethodPost,
			ts.URL+"/v1/clusters/"+cl+"/admit", admitBody(t, example1Task("same-name")))
		if status != http.StatusOK {
			t.Fatalf("admit into %s = %d: %s", cl, status, body)
		}
	}
	for _, cl := range clusters {
		_, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/clusters/"+cl+"/allocation", nil)
		var v struct {
			Tasks int `json:"tasks"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Tasks != 1 {
			t.Errorf("cluster %s sees %d tasks, want exactly its own 1", cl, v.Tasks)
		}
	}
	// Header and path addressing agree: a duplicate via the header form now
	// conflicts on the same shard.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/admit",
		bytes.NewReader(admitBody(t, example1Task("same-name"))))
	req.Header.Set(clusterHeader, clusters[0])
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("header-addressed duplicate = %d, want 409", resp.StatusCode)
	}
}

// TestFleetRedirect: a cluster owned by another fleet member is answered
// with a 307 preserving the request URI, so the client can replay the POST
// against the owner.
func TestFleetRedirect(t *testing.T) {
	fleet := []string{"http://self.example", "http://peer.example"}
	svc, ts := newTestServer(t, Config{M: 4, Fleet: fleet, Self: 0})
	// Find one cluster per member.
	var mine, theirs string
	for i := 0; (mine == "" || theirs == "") && i < 65536; i++ {
		name := fmt.Sprintf("c%d", i)
		if svc.fleet.owner(name) == 0 {
			if mine == "" {
				mine = name
			}
		} else if theirs == "" {
			theirs = name
		}
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	status, _, _ := doJSON(t, client, http.MethodPost,
		ts.URL+"/v1/clusters/"+mine+"/admit", admitBody(t, example1Task("local")))
	if status != http.StatusOK {
		t.Fatalf("locally owned cluster not served: %d", status)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/clusters/"+theirs+"/admit?trace=1",
		bytes.NewReader(admitBody(t, example1Task("remote"))))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign cluster = %d, want 307", resp.StatusCode)
	}
	want := "http://peer.example/v1/clusters/" + theirs + "/admit?trace=1"
	if loc := resp.Header.Get("Location"); loc != want {
		t.Errorf("Location = %q, want %q", loc, want)
	}
	// Process-level endpoints are never redirected.
	if status, _, _ := doJSON(t, client, http.MethodGet, ts.URL+"/v1/healthz", nil); status != http.StatusOK {
		t.Errorf("healthz redirected or failed: %d", status)
	}
}

// TestMultiShardMetricsLabeled: N>1 switches /metrics to one sample per
// shard with a shard label, while keeping one # TYPE line per family.
func TestMultiShardMetricsLabeled(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 4, Shards: 2})
	cl := distinctClusters(t, svc, 2)
	c := ts.Client()
	if status, body, _ := doJSON(t, c, http.MethodPost,
		ts.URL+"/v1/clusters/"+cl[0]+"/admit", admitBody(t, example1Task("e1"))); status != http.StatusOK {
		t.Fatalf("admit = %d: %s", status, body)
	}
	_, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/metrics", nil)
	text := string(body)
	for _, want := range []string{
		`fedschedd_admits_total{shard="0"}`,
		`fedschedd_admits_total{shard="1"}`,
		`fedschedd_admit_latency_seconds_bucket{shard="0",le="+Inf"}`,
		`fedschedd_admit_latency_seconds_count{shard="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("multi-shard exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE fedschedd_admits_total counter"); n != 1 {
		t.Errorf("admits_total declared %d times, want once", n)
	}
	// Exactly one shard observed the admission.
	if !strings.Contains(text, `fedschedd_admits_total{shard="0"} 1`) &&
		!strings.Contains(text, `fedschedd_admits_total{shard="1"} 1`) {
		t.Errorf("no shard recorded the admission:\n%s", text)
	}
}

// TestMultiShardVarsComposite: /debug/vars at N>1 nests each shard's map.
func TestMultiShardVarsComposite(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, Shards: 3})
	_, body, _ := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/debug/vars", nil)
	var v map[string]map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("composite vars not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"shard_0", "shard_1", "shard_2"} {
		m, ok := v[key]
		if !ok {
			t.Fatalf("vars missing %s:\n%s", key, body)
		}
		if _, ok := m["admits_total"]; !ok {
			t.Errorf("%s map lacks admits_total", key)
		}
	}
}

// TestMultiShardHealthz: N>1 healthz reports the shard count and the
// aggregate task total across shards.
func TestMultiShardHealthz(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 4, Shards: 4})
	cl := distinctClusters(t, svc, 2)
	c := ts.Client()
	for i, name := range cl {
		if status, _, _ := doJSON(t, c, http.MethodPost,
			ts.URL+"/v1/clusters/"+name+"/admit", admitBody(t, example1Task(fmt.Sprintf("t%d", i)))); status != http.StatusOK {
			t.Fatal("admit failed")
		}
	}
	_, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/healthz", nil)
	var v struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
		Tasks  int    `json:"tasks"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "ok" || v.Shards != 4 || v.Tasks != 2 {
		t.Errorf("healthz = %+v, want ok/4 shards/2 tasks", v)
	}
}

// TestShardConfigValidation mirrors the -par flag validation style for the
// new sharding and durability knobs.
func TestShardConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default-one-shard", Config{M: 4}, true},
		{"explicit-shards", Config{M: 4, Shards: 8}, true},
		{"negative-shards", Config{M: 4, Shards: -1}, false},
		{"snapshot-without-wal", Config{M: 4, SnapshotEvery: 16}, false},
		{"negative-snapshot", Config{M: 4, WALDir: t.TempDir(), SnapshotEvery: -1}, false},
		{"fleet-self-out-of-range", Config{M: 4, Fleet: []string{"http://a", "http://b"}, Self: 2}, false},
		{"fleet-self-negative", Config{M: 4, Fleet: []string{"http://a"}, Self: -1}, false},
		{"fleet-ok", Config{M: 4, Fleet: []string{"http://a", "http://b"}, Self: 1}, true},
	}
	for _, tc := range cases {
		svc, err := New(tc.cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
		if svc != nil {
			svc.Close()
		}
	}
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/task"
)

// Config parameterizes a Server. The zero value of a field selects its
// default.
type Config struct {
	// M is the platform size (required, ≥ 1).
	M int
	// Options selects the FEDCONS variant (zero value = the paper's
	// algorithm). All cached analyses are computed under these options.
	Options core.Options
	// QueueBound caps the admission queue; beyond it requests are shed with
	// 429 + Retry-After. Default 64.
	QueueBound int
	// AdmitTimeout is the per-request context deadline applied to mutating
	// requests. Default 2s.
	AdmitTimeout time.Duration
}

// Server is the admission-control daemon state: a live task system, its
// current FEDCONS allocation, and the content-addressed Phase-1 memo cache.
//
// Consistency model: all mutations (admit, remove) serialize through a
// single-writer loop, so trial analyses always run against a quiescent
// state; reads take an RWMutex read-lock on the installed snapshot and never
// block behind an analysis in progress. Every state the server installs —
// and therefore every state a reader can observe — has passed core.Verify.
type Server struct {
	cfg   Config
	cache *AnalysisCache

	mu    sync.RWMutex // guards sys and alloc (the installed snapshot)
	sys   task.System
	alloc *core.Allocation // nil iff sys is empty

	reqs    chan *request
	closing chan struct{}
	closed  atomic.Bool
	loop    sync.WaitGroup
	once    sync.Once

	met     metrics
	varsMap http.Handler
	started time.Time
}

// request is one queued mutation for the writer loop.
type request struct {
	ctx  context.Context
	run  func() opResult
	resp chan opResult // buffered: the loop never blocks on a gone client
}

// opResult is a finished operation: an HTTP status and a JSON body.
type opResult struct {
	status int
	body   []byte
}

// New starts a Server (including its writer loop). Call Close to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("service: platform size must be ≥ 1, got %d", cfg.M)
	}
	if cfg.QueueBound == 0 {
		cfg.QueueBound = 64
	}
	if cfg.QueueBound < 1 {
		return nil, fmt.Errorf("service: queue bound must be ≥ 1, got %d", cfg.QueueBound)
	}
	if cfg.AdmitTimeout == 0 {
		cfg.AdmitTimeout = 2 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		cache:   NewAnalysisCache(),
		reqs:    make(chan *request, cfg.QueueBound),
		closing: make(chan struct{}),
		started: time.Now(),
	}
	s.varsMap = varsHandler(s.vars())
	s.loop.Add(1)
	go s.writerLoop()
	return s, nil
}

// Close stops the writer loop after draining every queued request, so no
// client is left waiting on an unanswered channel. It is idempotent.
func (s *Server) Close() {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.closing)
	})
	s.loop.Wait()
}

// Cache exposes the analysis cache (read-only use: stats).
func (s *Server) Cache() *AnalysisCache { return s.cache }

// Snapshot returns the installed system and allocation. The system slice is
// a copy; the allocation is shared and must be treated as immutable.
func (s *Server) Snapshot() (task.System, *core.Allocation) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.Clone(), s.alloc
}

func (s *Server) writerLoop() {
	defer s.loop.Done()
	for {
		select {
		case req := <-s.reqs:
			s.serve(req)
		case <-s.closing:
			for {
				select {
				case req := <-s.reqs:
					s.serve(req)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) serve(req *request) {
	if err := req.ctx.Err(); err != nil {
		s.met.timeouts.Add(1)
		req.resp <- errResult(http.StatusGatewayTimeout, "admission deadline expired while queued: "+err.Error())
		return
	}
	req.resp <- req.run()
}

// submit routes a mutation through the writer loop, shedding load when the
// queue is full and honoring the caller's context deadline.
func (s *Server) submit(ctx context.Context, run func() opResult) opResult {
	if s.closed.Load() {
		return errResult(http.StatusServiceUnavailable, "server shutting down")
	}
	req := &request{ctx: ctx, run: run, resp: make(chan opResult, 1)}
	select {
	case s.reqs <- req:
	default:
		s.met.shed.Add(1)
		return opResult{status: http.StatusTooManyRequests} // handler adds Retry-After
	}
	select {
	case res := <-req.resp:
		return res
	case <-ctx.Done():
		// The loop may still execute the request (it re-checks the context
		// before starting, but cannot un-run an analysis already underway);
		// the client should GET /v1/allocation to learn the outcome.
		s.met.timeouts.Add(1)
		return errResult(http.StatusGatewayTimeout, "admission deadline expired: "+ctx.Err().Error())
	}
}

// Admit trial-admits tk: it runs the full two-phase FEDCONS test on the
// current system plus tk, audits the resulting allocation with core.Verify,
// and installs it only if both succeed. The returned status is the HTTP
// status the daemon would serve: 200 installed, 409 rejected by the
// analysis (body = Verdict with the failure reason) or duplicate name,
// 429 shed, 504 deadline expired, 500 audit failure (state unchanged).
func (s *Server) Admit(ctx context.Context, tk *task.DAGTask) (int, []byte) {
	res := s.submit(ctx, func() opResult {
		start := time.Now()
		defer func() { s.met.latency.observe(time.Since(start)) }()
		return s.doAdmit(tk)
	})
	return res.status, res.body
}

// Remove removes the named task, re-analyzes and installs the shrunken
// system. Status: 200 removed, 404 unknown name, plus the same 429/504
// envelope as Admit.
func (s *Server) Remove(ctx context.Context, name string) (int, []byte) {
	res := s.submit(ctx, func() opResult { return s.doRemove(name) })
	return res.status, res.body
}

// doAdmit runs inside the writer loop: it is the only writer, so reading
// s.sys without the lock is safe, and the lock is taken only to install.
func (s *Server) doAdmit(tk *task.DAGTask) opResult {
	for _, cur := range s.sys {
		if cur.Name == tk.Name {
			s.met.errors.Add(1)
			return errResult(http.StatusConflict, fmt.Sprintf("task %q already admitted; remove it first", tk.Name))
		}
	}
	trial := append(s.sys.Clone(), tk)
	alloc, err := s.cache.Schedule(trial, s.cfg.M, s.cfg.Options)
	if err != nil {
		s.met.rejects.Add(1)
		return verdictResult(http.StatusConflict, NewVerdict(trial, s.cfg.M, nil, err))
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		// The audit is the last line of defense: never install an
		// allocation the independent checker rejects.
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
	}
	s.install(trial, alloc)
	s.met.admits.Add(1)
	return verdictResult(http.StatusOK, NewVerdict(trial, s.cfg.M, alloc, nil))
}

func (s *Server) doRemove(name string) opResult {
	idx := -1
	for i, cur := range s.sys {
		if cur.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.met.errors.Add(1)
		return errResult(http.StatusNotFound, fmt.Sprintf("no task named %q", name))
	}
	trial := make(task.System, 0, len(s.sys)-1)
	trial = append(trial, s.sys[:idx]...)
	trial = append(trial, s.sys[idx+1:]...)
	if len(trial) == 0 {
		s.install(nil, nil)
		s.met.removes.Add(1)
		return verdictResult(http.StatusOK, NewVerdict(nil, s.cfg.M, nil, nil))
	}
	alloc, err := s.cache.Schedule(trial, s.cfg.M, s.cfg.Options)
	if err != nil {
		// Removing a task can, in principle, perturb the deadline-ordered
		// first-fit packing enough to fail; keep the (verified) old state
		// rather than install nothing.
		s.met.errors.Add(1)
		return errResult(http.StatusConflict, fmt.Sprintf("system unschedulable after removing %q: %v", name, err))
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
	}
	s.install(trial, alloc)
	s.met.removes.Add(1)
	return verdictResult(http.StatusOK, NewVerdict(trial, s.cfg.M, alloc, nil))
}

func (s *Server) install(sys task.System, alloc *core.Allocation) {
	s.mu.Lock()
	s.sys, s.alloc = sys, alloc
	s.mu.Unlock()
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/admit        trial-admit a DAG task (body: task JSON)
//	DELETE /v1/tasks/{name} remove an admitted task
//	GET    /v1/allocation   current verdict + allocation
//	GET    /v1/healthz      liveness
//	GET    /debug/vars      expvar metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admit", s.handleAdmit)
	mux.HandleFunc("DELETE /v1/tasks/{name}", s.handleRemove)
	mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", s.varsMap)
	return mux
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var tk task.DAGTask
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&tk); err != nil {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "decoding task: "+err.Error()))
		return
	}
	if tk.Name == "" {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "task must carry a unique name"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, respBody := s.Admit(ctx, &tk)
	writeJSON(w, opResult{status: status, body: respBody})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, body := s.Remove(ctx, r.PathValue("name"))
	writeJSON(w, opResult{status: status, body: body})
}

func (s *Server) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sys, alloc := s.sys, s.alloc
	s.mu.RUnlock()
	writeJSON(w, verdictResult(http.StatusOK, NewVerdict(sys, s.cfg.M, alloc, nil)))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.sys)
	s.mu.RUnlock()
	body, _ := json.Marshal(map[string]any{
		"status":   "ok",
		"tasks":    n,
		"uptime_s": int64(time.Since(s.started).Seconds()),
	})
	writeJSON(w, opResult{status: http.StatusOK, body: append(body, '\n')})
}

func varsHandler(m fmt.Stringer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.String())
	})
}

func writeJSON(w http.ResponseWriter, res opResult) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if res.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(1))
		if res.body == nil {
			res = errResult(http.StatusTooManyRequests, "admission queue full; retry later")
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func verdictResult(status int, v Verdict) opResult {
	body, err := v.Encode()
	if err != nil {
		return errResult(http.StatusInternalServerError, "encoding verdict: "+err.Error())
	}
	return opResult{status: status, body: body}
}

func errResult(status int, msg string) opResult {
	body, _ := json.Marshal(map[string]string{"error": msg})
	return opResult{status: status, body: append(body, '\n')}
}

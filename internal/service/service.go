package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/obs"

	// Every server links the pluggable admission policies, so a shard can
	// recover a WAL written under any of them.
	_ "fedsched/internal/reservation"
	_ "fedsched/internal/semifed"
	_ "fedsched/internal/typedfed"
)

// Config parameterizes a Server. The zero value of a field selects its
// default.
type Config struct {
	// M is the platform size (required, ≥ 1). Each shard admits against its
	// own M-processor platform.
	M int
	// Options selects the FEDCONS variant (zero value = the paper's
	// algorithm). All cached analyses are computed under these options.
	Options core.Options
	// QueueBound caps each shard's admission queue; beyond it requests are
	// shed with 429 + Retry-After. Default 64.
	QueueBound int
	// AdmitTimeout is the per-request context deadline applied to mutating
	// requests. Default 2s.
	AdmitTimeout time.Duration
	// FullRepartition disables the incremental Phase-2 warm path: every
	// mutation re-runs the full (memo-backed) FEDCONS analysis, as before
	// PR 7. The default (false) serves untraced single low-density
	// admissions and removals from the shard's live partition.State —
	// byte-identical output, pinned by the warm-path differential tests —
	// and exists as a debugging escape hatch and as the oracle
	// configuration those tests compare against.
	FullRepartition bool
	// Observer, when non-nil, is called synchronously from a shard's writer
	// loop after every completed admit/remove with that operation's summary
	// record. Single-writer execution makes the per-operation cache deltas
	// well-defined. Keep it fast: it runs on the admission path. The daemon
	// uses it for -v one-line summaries and the -audit JSONL log. With
	// multiple shards the Observer is shared and may be called concurrently
	// from different shards; the record's Shard field says which.
	Observer func(AdmissionRecord)

	// Shards is the number of independent admission domains the server runs
	// (default 1). Requests carry a cluster name — via the X-Cluster header
	// or a /v1/clusters/{cluster}/... path — and are routed to the shard
	// owning that cluster on a consistent-hash ring. Requests with no
	// cluster name all land on the shard owning "".
	Shards int
	// WALDir, when non-empty, makes every shard durable: shard i keeps an
	// append-only WAL and periodic snapshots under WALDir/shard-i, replayed
	// (and re-verified with core.Verify) on restart.
	WALDir string
	// SnapshotEvery is the per-shard mutation count between snapshots
	// (default store.DefaultSnapshotEvery). Requires WALDir.
	SnapshotEvery int

	// FlightRecorderSize is the per-shard flight-recorder capacity: how many
	// recent decision entries (all rejections, plus traced/sampled admits)
	// are retained for GET /debug/traces. 0 selects DefaultFlightEntries;
	// negative disables the recorder entirely.
	FlightRecorderSize int
	// SLOLatencyBudget is the per-admission latency budget the SLO burn-rate
	// metrics are computed against (client-visible latency, queue wait
	// included). 0 selects DefaultSLOLatencyBudget.
	SLOLatencyBudget time.Duration
	// SLOWindow is the rolling window over which burn rates are computed.
	// 0 selects DefaultSLOWindow.
	SLOWindow time.Duration
	// FlightSampleEvery makes one in this many untraced full-analysis
	// admissions record its complete decision trace into the flight recorder
	// (speculative tracing; the warm path is never affected). 0 selects
	// DefaultFlightSampleEvery; negative disables sampling, leaving only
	// client-traced requests with retained span trees.
	FlightSampleEvery int

	// Fleet lists the base URLs of every fedschedd process sharing the
	// cluster space, in a fixed order all members agree on; Self is this
	// process's index into it. A cluster first hashes to a fleet member —
	// requests for clusters owned elsewhere are answered with a 307 redirect
	// to that member — and only then to one of the member's local shards.
	// An empty Fleet (the default) means this process owns every cluster.
	Fleet []string
	Self  int
}

// AdmissionRecord summarizes one completed mutation for Config.Observer.
type AdmissionRecord struct {
	TraceID     string `json:"trace_id"`
	Shard       int    `json:"shard"` // which shard executed the mutation
	Op          string `json:"op"`    // "admit", "admit-batch" or "remove"
	Task        string `json:"task"`
	Status      int    `json:"status"`
	Schedulable bool   `json:"schedulable"`
	LatencyNs   int64  `json:"latency_ns"`
	CacheHits   int64  `json:"cache_hits"`   // Phase-1 memo hits during this operation
	CacheMisses int64  `json:"cache_misses"` // Phase-1 memo misses during this operation
	Tasks       int    `json:"tasks"`        // installed shard system size after the operation
}

// Server is the admission-control front end: a stateless consistent-hash
// router over Config.Shards shared-nothing Shard instances. The shard that
// owns the empty cluster name is embedded as the default, so the single-shard
// Server behaves — method for method and byte for byte — like the pre-shard
// implementation: Admit, Remove, AdmitBatch, Snapshot and Cache all promote
// from it.
type Server struct {
	*Shard // the default shard: owner of cluster ""

	cfg     Config
	shards  []*Shard
	ring    *hashRing // cluster → local shard
	fleet   *hashRing // cluster → fleet member (nil without Config.Fleet)
	started time.Time

	slo      *sloState     // server-wide SLO ledger, shared by every shard
	registry *obs.Registry // fleet + SLO metric families for /metrics
}

// New starts a Server and its shards (including their writer loops and, with
// Config.WALDir, their snapshot+WAL recovery). Call Close to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("service: platform size must be ≥ 1, got %d", cfg.M)
	}
	if cfg.Options.Par < 0 {
		return nil, fmt.Errorf("service: analysis worker pool size must be ≥ 0, got %d", cfg.Options.Par)
	}
	pol, err := core.NormalizePolicy(cfg.Options.Policy)
	if err != nil {
		return nil, fmt.Errorf("service: %v", err)
	}
	cfg.Options.Policy = pol
	if cfg.QueueBound == 0 {
		cfg.QueueBound = 64
	}
	if cfg.QueueBound < 1 {
		return nil, fmt.Errorf("service: queue bound must be ≥ 1, got %d", cfg.QueueBound)
	}
	if cfg.AdmitTimeout == 0 {
		cfg.AdmitTimeout = 2 * time.Second
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: shard count must be ≥ 1, got %d", cfg.Shards)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("service: snapshot cadence must be ≥ 0, got %d", cfg.SnapshotEvery)
	}
	if cfg.SnapshotEvery > 0 && cfg.WALDir == "" {
		return nil, fmt.Errorf("service: snapshot cadence requires a WAL directory")
	}
	if cfg.FlightSampleEvery == 0 {
		cfg.FlightSampleEvery = DefaultFlightSampleEvery
	}
	if len(cfg.Fleet) > 0 && (cfg.Self < 0 || cfg.Self >= len(cfg.Fleet)) {
		return nil, fmt.Errorf("service: fleet self index %d out of range for %d members", cfg.Self, len(cfg.Fleet))
	}
	s := &Server{
		cfg:     cfg,
		ring:    newHashRing(cfg.Shards),
		started: time.Now(),
		slo:     newSLOState(cfg.SLOLatencyBudget, cfg.SLOWindow),
	}
	if len(cfg.Fleet) > 1 {
		s.fleet = newHashRing(len(cfg.Fleet))
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, cfg)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		// Safe un-locked: the shard cannot receive a request until New
		// returns (its channel send establishes the happens-before).
		sh.slo = s.slo
		s.shards = append(s.shards, sh)
	}
	s.Shard = s.shards[s.ring.owner("")]
	s.registry = s.fleetRegistry()
	return s, nil
}

// Close stops every shard. It is idempotent.
func (s *Server) Close() {
	for _, sh := range s.shards {
		sh.Close()
	}
}

// Shards returns the server's shards in index order.
func (s *Server) Shards() []*Shard { return s.shards }

// ShardFor returns the shard owning the given cluster name.
func (s *Server) ShardFor(cluster string) *Shard {
	return s.shards[s.ring.owner(cluster)]
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	tasks := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		tasks += len(sh.sys)
		sh.mu.RUnlock()
	}
	resp := map[string]any{
		"status":   "ok",
		"tasks":    tasks,
		"uptime_s": int64(time.Since(s.started).Seconds()),
	}
	if len(s.shards) > 1 {
		resp["shards"] = len(s.shards)
	}
	body, _ := json.Marshal(resp)
	writeJSON(w, opResult{status: http.StatusOK, body: append(body, '\n')})
}

func writeJSON(w http.ResponseWriter, res opResult) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if res.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(1))
		if res.body == nil {
			res = errResult(http.StatusTooManyRequests, "admission queue full; retry later")
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func verdictResult(status int, v Verdict) opResult {
	body, err := v.Encode()
	if err != nil {
		return errResult(http.StatusInternalServerError, "encoding verdict: "+err.Error())
	}
	return opResult{status: status, body: body}
}

func errResult(status int, msg string) opResult {
	body, _ := json.Marshal(map[string]string{"error": msg})
	return opResult{status: status, body: append(body, '\n')}
}

// errResultTrace is errResult with the request's trace ID in the body.
func errResultTrace(status int, msg, traceID string) opResult {
	if traceID == "" {
		return errResult(status, msg)
	}
	body, _ := json.Marshal(map[string]string{"error": msg, "trace_id": traceID})
	return opResult{status: status, body: append(body, '\n')}
}

package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// Config parameterizes a Server. The zero value of a field selects its
// default.
type Config struct {
	// M is the platform size (required, ≥ 1).
	M int
	// Options selects the FEDCONS variant (zero value = the paper's
	// algorithm). All cached analyses are computed under these options.
	Options core.Options
	// QueueBound caps the admission queue; beyond it requests are shed with
	// 429 + Retry-After. Default 64.
	QueueBound int
	// AdmitTimeout is the per-request context deadline applied to mutating
	// requests. Default 2s.
	AdmitTimeout time.Duration
	// Observer, when non-nil, is called synchronously from the writer loop
	// after every completed admit/remove with that operation's summary
	// record. Single-writer execution makes the per-operation cache deltas
	// well-defined. Keep it fast: it runs on the admission path. The daemon
	// uses it for -v one-line summaries and the -audit JSONL log.
	Observer func(AdmissionRecord)
}

// AdmissionRecord summarizes one completed mutation for Config.Observer.
type AdmissionRecord struct {
	TraceID     string `json:"trace_id"`
	Op          string `json:"op"` // "admit" or "remove"
	Task        string `json:"task"`
	Status      int    `json:"status"`
	Schedulable bool   `json:"schedulable"`
	LatencyNs   int64  `json:"latency_ns"`
	CacheHits   int64  `json:"cache_hits"`   // Phase-1 memo hits during this operation
	CacheMisses int64  `json:"cache_misses"` // Phase-1 memo misses during this operation
	Tasks       int    `json:"tasks"`        // installed system size after the operation
}

// Server is the admission-control daemon state: a live task system, its
// current FEDCONS allocation, and the content-addressed Phase-1 memo cache.
//
// Consistency model: all mutations (admit, remove) serialize through a
// single-writer loop, so trial analyses always run against a quiescent
// state; reads take an RWMutex read-lock on the installed snapshot and never
// block behind an analysis in progress. Every state the server installs —
// and therefore every state a reader can observe — has passed core.Verify.
type Server struct {
	cfg   Config
	cache *AnalysisCache

	mu    sync.RWMutex // guards sys and alloc (the installed snapshot)
	sys   task.System
	alloc *core.Allocation // nil iff sys is empty

	reqs    chan *request
	closing chan struct{}
	closed  atomic.Bool
	loop    sync.WaitGroup
	once    sync.Once

	met      metrics
	varsMap  http.Handler
	promVars *expvar.Map
	started  time.Time

	// tracePrefix + traceSeq mint per-request trace IDs like "a1b2c3d4-000007".
	tracePrefix string
	traceSeq    obs.Counter
}

// request is one queued mutation for the writer loop.
type request struct {
	ctx   context.Context
	trace string // trace ID, echoed in queue-expiry error bodies
	run   func() opResult
	resp  chan opResult // buffered: the loop never blocks on a gone client
}

// opResult is a finished operation: an HTTP status and a JSON body.
type opResult struct {
	status int
	body   []byte
}

// New starts a Server (including its writer loop). Call Close to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("service: platform size must be ≥ 1, got %d", cfg.M)
	}
	if cfg.Options.Par < 0 {
		return nil, fmt.Errorf("service: analysis worker pool size must be ≥ 0, got %d", cfg.Options.Par)
	}
	if cfg.QueueBound == 0 {
		cfg.QueueBound = 64
	}
	if cfg.QueueBound < 1 {
		return nil, fmt.Errorf("service: queue bound must be ≥ 1, got %d", cfg.QueueBound)
	}
	if cfg.AdmitTimeout == 0 {
		cfg.AdmitTimeout = 2 * time.Second
	}
	s := &Server{
		cfg:         cfg,
		cache:       NewAnalysisCache(),
		reqs:        make(chan *request, cfg.QueueBound),
		closing:     make(chan struct{}),
		started:     time.Now(),
		tracePrefix: randomTracePrefix(),
	}
	s.promVars = s.vars()
	s.varsMap = varsHandler(s.promVars)
	s.loop.Add(1)
	go s.writerLoop()
	return s, nil
}

// Close stops the writer loop after draining every queued request, so no
// client is left waiting on an unanswered channel. It is idempotent.
func (s *Server) Close() {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.closing)
	})
	s.loop.Wait()
}

// Cache exposes the analysis cache (read-only use: stats).
func (s *Server) Cache() *AnalysisCache { return s.cache }

// Snapshot returns the installed system and allocation. The system slice is
// a copy; the allocation is shared and must be treated as immutable.
func (s *Server) Snapshot() (task.System, *core.Allocation) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.Clone(), s.alloc
}

func (s *Server) writerLoop() {
	defer s.loop.Done()
	for {
		select {
		case req := <-s.reqs:
			s.serve(req)
		case <-s.closing:
			for {
				select {
				case req := <-s.reqs:
					s.serve(req)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) serve(req *request) {
	if err := req.ctx.Err(); err != nil {
		s.met.timeouts.Add(1)
		req.resp <- errResultTrace(http.StatusGatewayTimeout, "admission deadline expired while queued: "+err.Error(), req.trace)
		return
	}
	req.resp <- req.run()
}

// submit routes a mutation through the writer loop, shedding load when the
// queue is full and honoring the caller's context deadline. The trace ID is
// echoed in every error body minted here (429/503/504), so a client that
// never got a verdict still holds a handle the operator can grep for.
func (s *Server) submit(ctx context.Context, traceID string, run func() opResult) opResult {
	if s.closed.Load() {
		return errResultTrace(http.StatusServiceUnavailable, "server shutting down", traceID)
	}
	req := &request{ctx: ctx, trace: traceID, run: run, resp: make(chan opResult, 1)}
	select {
	case s.reqs <- req:
	default:
		s.met.shed.Add(1)
		return errResultTrace(http.StatusTooManyRequests, "admission queue full; retry later", traceID)
	}
	select {
	case res := <-req.resp:
		return res
	case <-ctx.Done():
		// The loop may still execute the request (it re-checks the context
		// before starting, but cannot un-run an analysis already underway);
		// the client should GET /v1/allocation to learn the outcome.
		s.met.timeouts.Add(1)
		return errResultTrace(http.StatusGatewayTimeout, "admission deadline expired: "+ctx.Err().Error(), traceID)
	}
}

// randomTracePrefix draws the per-server trace-ID prefix.
func randomTracePrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace"
	}
	return hex.EncodeToString(b[:])
}

// nextTraceID mints a server-unique request trace ID.
func (s *Server) nextTraceID() string {
	return fmt.Sprintf("%s-%06d", s.tracePrefix, s.traceSeq.Inc())
}

// Admit trial-admits tk: it runs the full two-phase FEDCONS test on the
// current system plus tk, audits the resulting allocation with core.Verify,
// and installs it only if both succeed. The returned status is the HTTP
// status the daemon would serve: 200 installed, 409 rejected by the
// analysis (body = Verdict with the failure reason) or duplicate name,
// 429 shed, 504 deadline expired, 500 audit failure (state unchanged).
func (s *Server) Admit(ctx context.Context, tk *task.DAGTask) (int, []byte) {
	return s.AdmitTrace(ctx, tk, s.nextTraceID(), nil)
}

// AdmitTrace is Admit with an explicit trace ID (echoed in shed/timeout error
// bodies and the Observer record) and an optional obs.Recorder: when rec is
// non-nil the full FEDCONS decision trace of the trial analysis is recorded
// into it and embedded in the Verdict's "trace" field — the daemon's
// ?trace=1 admit mode.
func (s *Server) AdmitTrace(ctx context.Context, tk *task.DAGTask, traceID string, rec *obs.Recorder) (int, []byte) {
	res := s.submit(ctx, traceID, func() opResult {
		return s.observed(traceID, "admit", tk.Name, func() opResult { return s.doAdmit(tk, rec) })
	})
	return res.status, res.body
}

// Remove removes the named task, re-analyzes and installs the shrunken
// system. Status: 200 removed, 404 unknown name, plus the same 429/504
// envelope as Admit.
func (s *Server) Remove(ctx context.Context, name string) (int, []byte) {
	return s.RemoveTrace(ctx, name, s.nextTraceID())
}

// RemoveTrace is Remove with an explicit trace ID.
func (s *Server) RemoveTrace(ctx context.Context, name, traceID string) (int, []byte) {
	res := s.submit(ctx, traceID, func() opResult {
		return s.observed(traceID, "remove", name, func() opResult { return s.doRemove(name) })
	})
	return res.status, res.body
}

// observed runs one mutation inside the writer loop, timing it into the
// latency histogram and reporting the completed operation to Config.Observer.
func (s *Server) observed(traceID, op, taskName string, run func() opResult) opResult {
	start := time.Now()
	var h0, m0 int64
	if s.cfg.Observer != nil {
		h0, m0 = s.cache.Stats()
	}
	res := run()
	lat := time.Since(start)
	if op == "admit" || op == "admit-batch" {
		s.met.latency.Observe(lat)
	}
	if s.cfg.Observer != nil {
		h1, m1 := s.cache.Stats()
		s.cfg.Observer(AdmissionRecord{
			TraceID:     traceID,
			Op:          op,
			Task:        taskName,
			Status:      res.status,
			Schedulable: res.status == http.StatusOK,
			LatencyNs:   lat.Nanoseconds(),
			CacheHits:   h1 - h0,
			CacheMisses: m1 - m0,
			Tasks:       len(s.sys), // safe: we are the writer loop
		})
	}
	return res
}

// doAdmit runs inside the writer loop: it is the only writer, so reading
// s.sys without the lock is safe, and the lock is taken only to install.
func (s *Server) doAdmit(tk *task.DAGTask, rec *obs.Recorder) opResult {
	for _, cur := range s.sys {
		if cur.Name == tk.Name {
			s.met.errors.Add(1)
			return errResult(http.StatusConflict, fmt.Sprintf("task %q already admitted; remove it first", tk.Name))
		}
	}
	trial := append(s.sys.Clone(), tk)
	opt := s.cfg.Options
	opt.Trace = rec
	alloc, err := s.cache.Schedule(trial, s.cfg.M, opt)
	if err != nil {
		s.met.rejects.Add(1)
		return verdictResult(http.StatusConflict, withTrace(NewVerdict(trial, s.cfg.M, nil, err), rec))
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		// The audit is the last line of defense: never install an
		// allocation the independent checker rejects.
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
	}
	s.install(trial, alloc)
	s.met.admits.Add(1)
	return verdictResult(http.StatusOK, withTrace(NewVerdict(trial, s.cfg.M, alloc, nil), rec))
}

// withTrace embeds rec's spans (with phase-level timings) into the verdict.
func withTrace(v Verdict, rec *obs.Recorder) Verdict {
	if rec != nil {
		v.Trace = rec.JSON(obs.ExportOptions{Timings: true})
	}
	return v
}

func (s *Server) doRemove(name string) opResult {
	idx := -1
	for i, cur := range s.sys {
		if cur.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.met.errors.Add(1)
		return errResult(http.StatusNotFound, fmt.Sprintf("no task named %q", name))
	}
	trial := make(task.System, 0, len(s.sys)-1)
	trial = append(trial, s.sys[:idx]...)
	trial = append(trial, s.sys[idx+1:]...)
	if len(trial) == 0 {
		s.install(nil, nil)
		s.met.removes.Add(1)
		return verdictResult(http.StatusOK, NewVerdict(nil, s.cfg.M, nil, nil))
	}
	alloc, err := s.cache.Schedule(trial, s.cfg.M, s.cfg.Options)
	if err != nil {
		// Removing a task can, in principle, perturb the deadline-ordered
		// first-fit packing enough to fail; keep the (verified) old state
		// rather than install nothing.
		s.met.errors.Add(1)
		return errResult(http.StatusConflict, fmt.Sprintf("system unschedulable after removing %q: %v", name, err))
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
	}
	s.install(trial, alloc)
	s.met.removes.Add(1)
	return verdictResult(http.StatusOK, NewVerdict(trial, s.cfg.M, alloc, nil))
}

func (s *Server) install(sys task.System, alloc *core.Allocation) {
	s.mu.Lock()
	s.sys, s.alloc = sys, alloc
	s.mu.Unlock()
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/admit        trial-admit a DAG task (body: task JSON; ?trace=1
//	                        embeds the FEDCONS decision trace in the verdict)
//	POST   /v1/admit/batch  trial-admit a task list all-or-nothing (body:
//	                        {"tasks": [...]}; cold Phase-1 analyses run on
//	                        the Options.Par worker pool)
//	DELETE /v1/tasks/{name} remove an admitted task
//	GET    /v1/allocation   current verdict + allocation
//	GET    /v1/healthz      liveness
//	GET    /debug/vars      expvar metrics
//	GET    /metrics         Prometheus text exposition
//
// Every mutating response carries an X-Trace-Id header; shed and timed-out
// requests additionally echo the ID in the error body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admit", s.handleAdmit)
	mux.HandleFunc("POST /v1/admit/batch", s.handleAdmitBatch)
	mux.HandleFunc("DELETE /v1/tasks/{name}", s.handleRemove)
	mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", s.varsMap)
	mux.Handle("GET /metrics", s.promHandler())
	return mux
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	traceID := s.nextTraceID()
	w.Header().Set("X-Trace-Id", traceID)
	var tk task.DAGTask
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&tk); err != nil {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "decoding task: "+err.Error()))
		return
	}
	if tk.Name == "" {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "task must carry a unique name"))
		return
	}
	var rec *obs.Recorder
	if r.URL.Query().Get("trace") == "1" {
		rec = obs.New(obs.DefaultLimits)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, respBody := s.AdmitTrace(ctx, &tk, traceID, rec)
	writeJSON(w, opResult{status: status, body: respBody})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	traceID := s.nextTraceID()
	w.Header().Set("X-Trace-Id", traceID)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, body := s.RemoveTrace(ctx, r.PathValue("name"), traceID)
	writeJSON(w, opResult{status: status, body: body})
}

func (s *Server) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sys, alloc := s.sys, s.alloc
	s.mu.RUnlock()
	writeJSON(w, verdictResult(http.StatusOK, NewVerdict(sys, s.cfg.M, alloc, nil)))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.sys)
	s.mu.RUnlock()
	body, _ := json.Marshal(map[string]any{
		"status":   "ok",
		"tasks":    n,
		"uptime_s": int64(time.Since(s.started).Seconds()),
	})
	writeJSON(w, opResult{status: http.StatusOK, body: append(body, '\n')})
}

func varsHandler(m fmt.Stringer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.String())
	})
}

func writeJSON(w http.ResponseWriter, res opResult) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if res.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(1))
		if res.body == nil {
			res = errResult(http.StatusTooManyRequests, "admission queue full; retry later")
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func verdictResult(status int, v Verdict) opResult {
	body, err := v.Encode()
	if err != nil {
		return errResult(http.StatusInternalServerError, "encoding verdict: "+err.Error())
	}
	return opResult{status: status, body: body}
}

func errResult(status int, msg string) opResult {
	body, _ := json.Marshal(map[string]string{"error": msg})
	return opResult{status: status, body: append(body, '\n')}
}

// errResultTrace is errResult with the request's trace ID in the body.
func errResultTrace(status int, msg, traceID string) opResult {
	if traceID == "" {
		return errResult(status, msg)
	}
	body, _ := json.Marshal(map[string]string{"error": msg, "trace_id": traceID})
	return opResult{status: status, body: append(body, '\n')}
}

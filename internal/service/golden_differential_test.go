package service

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fedsched/internal/task"
)

var updateGoldens = flag.Bool("update", false, "rewrite the router differential goldens")

// goldenStep is one request in the fixed endpoint scenario. The scenario was
// captured against the pre-refactor single-server service; re-running it
// through the sharded router with N=1 must reproduce the committed bytes
// exactly (after normalizing the per-server random trace-ID prefix, span
// timings, and healthz uptime).
type goldenStep struct {
	name   string
	method string
	path   string // appended to the server base URL
	body   func(t *testing.T) []byte
}

func rawBody(s string) func(t *testing.T) []byte {
	return func(*testing.T) []byte { return []byte(s) }
}

func taskBody(tk *task.DAGTask) func(t *testing.T) []byte {
	return func(t *testing.T) []byte { return admitBody(t, tk) }
}

func batchStepBody(tks ...*task.DAGTask) func(t *testing.T) []byte {
	return func(t *testing.T) []byte { return batchBody(t, tks...) }
}

// goldenScenario is the fixed request sequence: every pre-refactor endpoint
// and error family (admit, traced admit, duplicate 409, analysis 409, batch
// accept, atomic batch 409, duplicate-in-batch 409, 400s, allocation, remove,
// 404) against an M=8 platform.
func goldenScenario() []goldenStep {
	return []goldenStep{
		{"healthz", http.MethodGet, "/v1/healthz", nil},
		{"admit_ex1", http.MethodPost, "/v1/admit", taskBody(example1Task("ex1"))},
		{"admit_duplicate", http.MethodPost, "/v1/admit", taskBody(example1Task("ex1"))},
		{"admit_tri", http.MethodPost, "/v1/admit", taskBody(trijob("tri"))},
		{"admit_traced", http.MethodPost, "/v1/admit?trace=1", taskBody(example1Task("traced"))},
		{"batch_accept", http.MethodPost, "/v1/admit/batch", batchStepBody(example1Task("b1"), example1Task("b2"))},
		{"batch_atomic_reject", http.MethodPost, "/v1/admit/batch", batchStepBody(trijob("tri2"), trijob("tri3"))},
		{"batch_duplicate_installed", http.MethodPost, "/v1/admit/batch", batchStepBody(example1Task("b1"))},
		{"batch_duplicate_within", http.MethodPost, "/v1/admit/batch", batchStepBody(example1Task("x"), example1Task("x"))},
		{"batch_empty", http.MethodPost, "/v1/admit/batch", rawBody(`{"tasks":[]}`)},
		{"admit_malformed", http.MethodPost, "/v1/admit", rawBody("{")},
		{"admit_anonymous", http.MethodPost, "/v1/admit", rawBody(`{"deadline":5,"period":5,"dag":{"vertices":[{"wcet":1}],"edges":[]}}`)},
		{"allocation", http.MethodGet, "/v1/allocation", nil},
		{"remove_tri", http.MethodDelete, "/v1/tasks/tri", nil},
		{"remove_unknown", http.MethodDelete, "/v1/tasks/nope", nil},
		{"remove_b1", http.MethodDelete, "/v1/tasks/b1", nil},
		{"allocation_final", http.MethodGet, "/v1/allocation", nil},
	}
}

var (
	traceIDRe = regexp.MustCompile(`[0-9a-f]{8}-[0-9]{6}`)
	spanNsRe  = regexp.MustCompile(`"(start_ns|dur_ns)": ?[0-9]+`)
	uptimeRe  = regexp.MustCompile(`"uptime_s":[0-9]+`)
)

// normalizeGolden strips the run-dependent bytes: trace IDs (random per-server
// prefix), span timings inside ?trace=1 verdicts, and healthz uptime.
func normalizeGolden(b []byte) []byte {
	b = traceIDRe.ReplaceAll(b, []byte("TRACEID"))
	b = spanNsRe.ReplaceAll(b, []byte(`"$1":0`))
	b = uptimeRe.ReplaceAll(b, []byte(`"uptime_s":0`))
	return b
}

// renderResponse renders one response as the golden text: status line, the
// deterministic headers, then the normalized body.
func renderResponse(status int, hdr http.Header, body []byte) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "status: %d\n", status)
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := hdr.Get(k); v != "" {
			fmt.Fprintf(&buf, "%s: %s\n", k, v)
		}
	}
	if v := hdr.Get("X-Trace-Id"); v != "" {
		fmt.Fprintf(&buf, "X-Trace-Id: %s\n", string(normalizeGolden([]byte(v))))
	}
	buf.WriteString("\n")
	buf.Write(normalizeGolden(body))
	return buf.Bytes()
}

// runGoldenScenario drives the scenario against a fresh server and returns
// the rendered response per step. mutate, when non-nil, edits every request
// before it is sent (the router variants set a cluster header or rewrite the
// path); responses must be identical regardless.
func runGoldenScenario(t *testing.T, cfg Config, mutate func(*http.Request)) map[string][]byte {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	out := make(map[string][]byte)
	for _, step := range goldenScenario() {
		var body []byte
		if step.body != nil {
			body = step.body(t)
		}
		req, err := http.NewRequest(step.method, ts.URL+step.path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(req)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		data := readAll(t, resp)
		out[step.name] = renderResponse(resp.StatusCode, resp.Header, data)
	}
	return out
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRouterGoldenDifferential pins the single-shard service byte-for-byte:
// the committed goldens were captured against the pre-refactor single-server
// implementation, and the default (N=1) configuration must keep reproducing
// them exactly — bodies and deterministic headers — through the router path.
func TestRouterGoldenDifferential(t *testing.T) {
	got := runGoldenScenario(t, Config{M: 8}, nil)
	dir := filepath.Join("testdata", "router")
	if *updateGoldens {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, step := range goldenScenario() {
		path := filepath.Join(dir, step.name+".golden")
		if *updateGoldens {
			if err := os.WriteFile(path, got[step.name], 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden for %s (run with -update): %v", step.name, err)
		}
		if !bytes.Equal(got[step.name], want) {
			t.Errorf("%s: response differs from pre-refactor golden:\n--- got ---\n%s\n--- want ---\n%s",
				step.name, got[step.name], want)
		}
	}
	if *updateGoldens {
		t.Log("goldens updated; re-run without -update")
	}
}

// TestGoldenScenarioDeterministic guards the harness itself: two fresh
// servers produce identical normalized responses, so any golden mismatch is a
// real behavior change, not noise the normalizer missed.
func TestGoldenScenarioDeterministic(t *testing.T) {
	a := runGoldenScenario(t, Config{M: 8}, nil)
	b := runGoldenScenario(t, Config{M: 8}, nil)
	for _, step := range goldenScenario() {
		if !bytes.Equal(a[step.name], b[step.name]) {
			t.Errorf("%s: nondeterministic after normalization:\n%s\nvs\n%s", step.name, a[step.name], b[step.name])
		}
	}
	if !strings.Contains(string(a["admit_traced"]), `"trace"`) {
		t.Error("traced admit verdict lacks an embedded trace")
	}
}

// Package service implements the fedschedd online admission-control daemon:
// a long-running HTTP server that holds a live constrained-deadline DAG task
// system and answers trial-admission requests with the full two-phase
// FEDCONS test. No constant speedup or capacity-augmentation bound exists
// for constrained-deadline federated scheduling (paper Example 2), so an
// online admission controller cannot substitute a cheap utilization
// threshold — it must run the real analysis on every request. The package
// therefore makes the real analysis cheap to re-run: Phase-1 MINPROCS
// results are memoized in a content-addressed cache keyed by core.TaskHash,
// so admitting or removing one task re-runs list scheduling only for DAGs
// the server has never analyzed before, while the cheap Phase-2 partition is
// always recomputed and every accepted state is audited with core.Verify
// before it is installed.
package service

import (
	"sync"

	"fedsched/internal/core"
	"fedsched/internal/listsched"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// phase1Result is the platform-independent outcome of MINPROCS for one task:
// the minimum processor count μ* over an unbounded platform and its witness
// template, or infeasibility at any processor count. Bounding by the
// processors actually remaining happens at lookup time (μ* ≤ m_r), which is
// exactly equivalent to the paper's bounded scan because the scan order does
// not depend on m_r.
type phase1Result struct {
	feasible bool
	mu       int
	tmpl     *listsched.Schedule
}

// cacheEntry pairs a memoized result with the labeled task content it was
// computed from. Lookups compare content with task.SameAnalysisInput, so a
// hash collision (SHA or a residual canonicalization tie between isomorphic
// relabelings) degrades to a chained miss, never to a wrong answer.
type cacheEntry struct {
	tk  *task.DAGTask
	res phase1Result
}

// AnalysisCache is the content-addressed memo of Phase-1 analyses. It is
// safe for concurrent use; in the daemon all writes come from the single
// admission loop while reads may come from anywhere.
type AnalysisCache struct {
	mu      sync.Mutex
	entries map[core.Hash][]cacheEntry
	// hashes memoizes core.TaskHash per task object: the daemon re-analyzes
	// the same installed *DAGTask pointers on every admission, and canonical
	// hashing (WL refinement) is the dominant cost of a fully warm pass.
	// DAGTask contents are immutable by repo convention, so identity keying
	// is sound.
	hashes map[*task.DAGTask]core.Hash
	hits   int64
	misses int64
}

// NewAnalysisCache returns an empty cache.
func NewAnalysisCache() *AnalysisCache {
	return &AnalysisCache{
		entries: make(map[core.Hash][]cacheEntry),
		hashes:  make(map[*task.DAGTask]core.Hash),
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *AnalysisCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoized analyses.
func (c *AnalysisCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, chain := range c.entries {
		n += len(chain)
	}
	return n
}

// lookup returns the memoized result for tk, if any.
func (c *AnalysisCache) lookup(h core.Hash, tk *task.DAGTask) (phase1Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[h] {
		if task.SameAnalysisInput(e.tk, tk) {
			c.hits++
			return e.res, true
		}
	}
	c.misses++
	return phase1Result{}, false
}

// store memoizes a freshly computed result.
func (c *AnalysisCache) store(h core.Hash, tk *task.DAGTask, res phase1Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[h] = append(c.entries[h], cacheEntry{tk: tk, res: res})
}

// minprocs returns the platform-independent MINPROCS outcome for tk under
// opt, computing and memoizing it on first sight. For the LS scan the
// platform bound passed to core.Minprocs is the DAG width: the scan caps
// there anyway, and (when len ≤ min(D,T)) it is guaranteed to succeed by
// μ = width, so the result is the true unbounded μ*. For the analytic rule
// the closed form is independent of the platform, so any large bound works.
// hashOf returns core.TaskHash(tk), memoized by task identity.
func (c *AnalysisCache) hashOf(tk *task.DAGTask) core.Hash {
	c.mu.Lock()
	h, ok := c.hashes[tk]
	c.mu.Unlock()
	if ok {
		return h
	}
	h = core.TaskHash(tk) // outside the lock: hashing large DAGs is the slow part
	c.mu.Lock()
	c.hashes[tk] = h
	c.mu.Unlock()
	return h
}

func (c *AnalysisCache) minprocs(tk *task.DAGTask, opt core.Options) phase1Result {
	res, _ := c.minprocsTraced(tk, opt, nil)
	return res
}

// minprocsTraced is minprocs with an optional decision-trace span (recorded
// only on a miss, where the real scan runs) and a hit/miss report.
func (c *AnalysisCache) minprocsTraced(tk *task.DAGTask, opt core.Options, sp *obs.Span) (phase1Result, bool) {
	h := c.hashOf(tk)
	if res, ok := c.lookup(h, tk); ok {
		return res, true
	}
	var res phase1Result
	if opt.Minprocs == core.Analytic {
		res.mu, res.tmpl, res.feasible = core.MinprocsAnalyticTrace(tk, int(^uint(0)>>1), opt.Priority, sp)
	} else {
		res.mu, res.tmpl, res.feasible = core.MinprocsTrace(tk, tk.G.Width(), opt.Priority, sp)
	}
	c.store(h, tk, res)
	return res, false
}
